package simrank

import (
	"io"
	"sync"

	"repro/internal/matrix"
)

// ConcurrentEngine wraps an Engine with a readers–writer lock so many
// goroutines can query similarities while updates are serialized — the
// deployment shape of a live recommendation service absorbing a link
// stream.
type ConcurrentEngine struct {
	mu  sync.RWMutex
	eng *Engine
}

// NewConcurrentEngine builds a concurrency-safe engine; see NewEngine.
func NewConcurrentEngine(n int, edges []Edge, opts Options) (*ConcurrentEngine, error) {
	eng, err := NewEngine(n, edges, opts)
	if err != nil {
		return nil, err
	}
	return &ConcurrentEngine{eng: eng}, nil
}

// WrapEngine takes ownership of an existing engine (for example one
// restored via ReadSnapshot). The caller must not use eng directly
// afterwards.
func WrapEngine(eng *Engine) *ConcurrentEngine {
	return &ConcurrentEngine{eng: eng}
}

// Similarity returns s(a, b) under a read lock.
func (c *ConcurrentEngine) Similarity(a, b int) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.Similarity(a, b)
}

// SimilarityStderr returns s(a, b) and its standard error under a read
// lock; see Engine.SimilarityStderr.
func (c *ConcurrentEngine) SimilarityStderr(a, b int) (score, stderr float64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.SimilarityStderr(a, b)
}

// Backend returns the similarity-store backend under a read lock.
func (c *ConcurrentEngine) Backend() Backend {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.Backend()
}

// StoreMemBytes reports the similarity store's resident bytes under a
// read lock; see Engine.StoreMemBytes.
func (c *ConcurrentEngine) StoreMemBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.StoreMemBytes()
}

// TopK returns the k most similar pairs under a read lock.
func (c *ConcurrentEngine) TopK(k int) []Pair {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.TopK(k)
}

// TopKFor returns the nodes most similar to a under a read lock.
func (c *ConcurrentEngine) TopKFor(a, k int) []Pair {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.TopKFor(a, k)
}

// N returns the node count under a read lock.
func (c *ConcurrentEngine) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.N()
}

// M returns the edge count under a read lock.
func (c *ConcurrentEngine) M() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.M()
}

// Size returns the node and edge counts under ONE read lock, so the
// pair is a consistent point-in-time view (separate N() and M() calls
// can straddle a committed write).
func (c *ConcurrentEngine) Size() (n, m int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.N(), c.eng.M()
}

// HasEdge reports edge presence under a read lock.
func (c *ConcurrentEngine) HasEdge(i, j int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.HasEdge(i, j)
}

// detachStats copies the workspace-aliasing DirtyRows out of st. The
// plain Engine documents the slice as valid until the caller's next
// update — a usable contract single-threaded, but meaningless once the
// write lock is released: another writer can rewrite the backing scratch
// before this caller even looks at it. The concurrent facade therefore
// always hands out an independent copy.
func detachStats(st UpdateStats, err error) (UpdateStats, error) {
	st.DirtyRows = append([]int(nil), st.DirtyRows...)
	return st, err
}

// Insert adds an edge under the write lock.
func (c *ConcurrentEngine) Insert(i, j int) (UpdateStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return detachStats(c.eng.Insert(i, j))
}

// Delete removes an edge under the write lock.
func (c *ConcurrentEngine) Delete(i, j int) (UpdateStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return detachStats(c.eng.Delete(i, j))
}

// Apply performs one unit update under the write lock.
func (c *ConcurrentEngine) Apply(up Update) (UpdateStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return detachStats(c.eng.Apply(up))
}

// ApplyBatch folds a batch of updates under one write-lock acquisition.
func (c *ConcurrentEngine) ApplyBatch(ups []Update) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng.ApplyBatch(ups)
}

// Similarities returns a snapshot copy of the similarity matrix under a
// read lock.
func (c *ConcurrentEngine) Similarities() *matrix.Dense {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.Similarities()
}

// Recompute rebuilds the similarities from scratch under the write lock.
func (c *ConcurrentEngine) Recompute() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eng.Recompute()
}

// AddNodes appends count isolated nodes under the write lock, returning
// the id of the first new one.
func (c *ConcurrentEngine) AddNodes(count int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng.AddNodes(count)
}

// Options returns the engine's effective options under a read lock.
func (c *ConcurrentEngine) Options() Options {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.Options()
}

// SetWorkers changes the batch-computation parallelism under the write
// lock; see Engine.SetWorkers.
func (c *ConcurrentEngine) SetWorkers(workers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eng.SetWorkers(workers)
}

// CacheStats returns the query cache's counters under a read lock; see
// Engine.CacheStats.
func (c *ConcurrentEngine) CacheStats() CacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.CacheStats()
}

// SetTopKCacheRows resizes, enables or disables the query cache under
// the write lock; see Engine.SetTopKCacheRows. Cache reads stay correct
// under the RWMutex because every invalidation (like this reset) happens
// while the write lock excludes all readers; concurrent readers filling
// the cache under the shared read lock are serialized by the cache's own
// internal mutex.
func (c *ConcurrentEngine) SetTopKCacheRows(rows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eng.SetTopKCacheRows(rows)
}

// WriteSnapshot serializes the engine under a read lock, so a snapshot
// can be taken while queries keep being served — only writers wait for
// the serialization to finish. ConcurrentEngine therefore satisfies
// SnapshotWriter and can be handed to WriteSnapshotFile directly.
func (c *ConcurrentEngine) WriteSnapshot(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.WriteSnapshot(w)
}

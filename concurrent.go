package simrank

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/matrix"
	"repro/internal/simstore"
	"repro/internal/wal"
)

// ConcurrentEngine serves an Engine to many goroutines with epoch-based
// MVCC snapshot isolation: every read runs against an immutable,
// atomically-published view (sealed similarity store + sealed graph +
// epoch), so readers acquire no mutex and never wait on a writer — not
// on a streaming ApplyBatch, not on a Recompute, not even on another
// reader's O(n²) Similarities copy. The single writer (serialized by a
// plain mutex) mutates its private state through the store's
// copy-on-write machinery and publishes the next view with one atomic
// pointer store.
//
// Consistency: each view is one point in time — (n, m), every score,
// every top-k and the epoch all cohere within a call, and epochs are
// strictly monotone across publishes. A read that starts before a
// commit is published serves the pre-commit state; ?wait=1 writers (or
// anyone who observed Apply return) are guaranteed their next read sees
// the commit, because publish happens before the mutation call returns.
//
// Memory: dense writers keep a second n×n buffer and re-sync only the
// rows updates dirtied (warm Apply stays zero-allocation); packed
// writers copy-on-write ~64 KiB triangle chunks as they touch them;
// approx writers copy-on-write per-node walk rows as repairs touch
// them. A long-running reader
// pinning an old view costs at most its view's buffers — the writer
// detects the straggler and abandons the buffer to the GC instead of
// blocking or racing it.
type ConcurrentEngine struct {
	// writerMu serializes mutations (and only mutations — readers never
	// take it).
	writerMu sync.Mutex
	// eng is the writer-owned mutable state. Readers never touch it.
	eng *Engine
	// view is the published read state; readers do one atomic load.
	view atomic.Pointer[engineView]
	// old collects displaced views that may still have readers inside
	// them. A displaced view stays tracked until it is observed fully
	// drained (readers can never re-enter it: acquire only pins the
	// current view), because consecutive views can share one store
	// buffer — a view must not be forgotten while a straggling reader
	// could still be copying the buffer a future flip would recycle.
	// Writer-owned.
	old []*engineView
	// views counts publishes (the /stats views_published gauge).
	views atomic.Int64
	// wal, when non-nil (SetWAL), receives every committed mutation as
	// an epoch-tagged record before its view publishes. Writer-owned:
	// only touched under writerMu.
	wal *wal.WAL
	// walNotify, when non-nil (SetWALNotify), observes every record the
	// WAL accepted — the replication streaming hook: the server's hub
	// fans each record out to GET /wal subscribers. Called under
	// writerMu, after the durable append and before the view publishes,
	// so a follower can never see a record the leader could not replay.
	// Writer-owned.
	walNotify func(*wal.Record)
}

// NewConcurrentEngine builds a concurrency-safe engine; see NewEngine.
func NewConcurrentEngine(n int, edges []Edge, opts Options) (*ConcurrentEngine, error) {
	eng, err := NewEngine(n, edges, opts)
	if err != nil {
		return nil, err
	}
	return WrapEngine(eng), nil
}

// WrapEngine takes ownership of an existing engine (for example one
// restored via ReadSnapshot) and publishes its first read view. The
// caller must not use eng directly afterwards.
//
// This is one of the two approved publish points (with publish): the
// first view of a fresh wrap has no WAL ordering to respect, since
// every committed record is already in the engine being wrapped.
//
//simrank:publish
func WrapEngine(eng *Engine) *ConcurrentEngine {
	c := &ConcurrentEngine{eng: eng}
	c.view.Store(eng.sealView(false))
	c.views.Add(1)
	return c
}

// acquire pins the current view for the duration of one read. The
// increment-then-recheck dance closes the race against a writer
// recycling buffers: a reader that loses the race (the view moved
// between load and increment) backs off and retries, so it never
// dereferences data the writer might reclaim. Lock-free and wait-free
// in practice — the retry fires only across a concurrent publish.
func (c *ConcurrentEngine) acquire() *engineView {
	for {
		v := c.view.Load()
		v.readers.Add(1)
		if c.view.Load() == v {
			return v
		}
		v.readers.Add(-1)
	}
}

func release(v *engineView) { v.readers.Add(-1) }

// dropDrained forgets displaced views with no readers left — safe
// forever, since acquire only pins the current view. Views remaining in
// c.old afterwards are exactly the busy stragglers.
func (c *ConcurrentEngine) dropDrained() {
	kept := c.old[:0]
	for _, v := range c.old {
		if v.readers.Load() != 0 {
			kept = append(kept, v)
		}
	}
	// Nil out the forgotten tail so retained view structs (and the
	// sealed stores they pin) become collectible.
	for i := len(kept); i < len(c.old); i++ {
		c.old[i] = nil
	}
	c.old = kept
}

// prepareWrite runs before every store-writing mutation: if a displaced
// view that still has a reader inside it pins the exact buffer the
// store's next copy-on-write flip would recycle (consecutive views can
// share one buffer, so every tracked straggler is checked, not just the
// newest), abandon that buffer to the GC rather than block the writer
// or race the reader. Stragglers on other buffers are harmless — after
// one abandon their buffer is orphaned for good, so a long reader costs
// one extra allocation total, not one per subsequent write. Busy views
// stay tracked for the next round; they are only forgotten once
// observed drained.
func (c *ConcurrentEngine) prepareWrite() {
	c.dropDrained()
	for _, v := range c.old { // all still-tracked views are busy
		if c.eng.viewPinsRecycleTarget(v) {
			c.eng.abandonWriteBuffers()
			break
		}
	}
}

// publish seals the writer state into a fresh view and swaps it in,
// retiring the displaced one (and pruning already-drained retirees, so
// publish-only workloads like repeated AddNodes cannot grow the list
// without bound). Called with writerMu held, after the mutation
// committed. withDirty propagates the update's DirtyRows snapshot —
// only Apply publishes one.
//
//simrank:publish
func (c *ConcurrentEngine) publish(withDirty bool) *engineView {
	v := c.eng.sealView(withDirty)
	prev := c.view.Load()
	c.view.Store(v)
	c.dropDrained()
	c.old = append(c.old, prev)
	c.views.Add(1)
	return v
}

// Similarity returns s(a, b) from the current view, lock-free.
func (c *ConcurrentEngine) Similarity(a, b int) float64 {
	v := c.acquire()
	defer release(v)
	return v.similarity(a, b)
}

// SimilarityStderr returns s(a, b) and its standard error from the
// current view; see Engine.SimilarityStderr.
func (c *ConcurrentEngine) SimilarityStderr(a, b int) (score, stderr float64) {
	v := c.acquire()
	defer release(v)
	return v.similarityStderr(a, b)
}

// Backend returns the similarity-store backend.
func (c *ConcurrentEngine) Backend() Backend {
	return c.view.Load().s.Backend()
}

// StoreMemBytes reports the similarity store's resident bytes as of the
// current view's publish; see Engine.StoreMemBytes.
func (c *ConcurrentEngine) StoreMemBytes() int64 {
	return c.view.Load().storeBytes
}

// TopK returns the k most similar pairs from the current view.
func (c *ConcurrentEngine) TopK(k int) []Pair {
	v := c.acquire()
	defer release(v)
	return v.topK(k)
}

// TopKFor returns the nodes most similar to a from the current view.
func (c *ConcurrentEngine) TopKFor(a, k int) []Pair {
	v := c.acquire()
	defer release(v)
	return v.topKFor(a, k)
}

// N returns the node count of the current view.
func (c *ConcurrentEngine) N() int { return c.view.Load().n }

// M returns the edge count of the current view.
func (c *ConcurrentEngine) M() int { return c.view.Load().m }

// Size returns the node and edge counts of ONE view, so the pair is a
// consistent point-in-time reading (separate N() and M() calls can
// straddle a published commit).
func (c *ConcurrentEngine) Size() (n, m int) {
	v := c.view.Load()
	return v.n, v.m
}

// Epoch returns the current view's epoch: 1:1 with Engine.Epoch at the
// view's publish, strictly monotone across publishes.
func (c *ConcurrentEngine) Epoch() uint64 { return c.view.Load().epoch }

// ViewInfo is the observability surface of the MVCC read path, served
// as /stats epoch / view_age_ms / inflight_readers / views_published.
// All fields except Published and the cache counters describe ONE view,
// so a stats reading cannot mix epochs (reporting epoch E+1 alongside
// epoch-E node counts).
type ViewInfo struct {
	// Epoch is the published view's version.
	Epoch uint64
	// Age is how long ago that view was published — how stale the
	// oldest data a fresh read can observe is.
	Age time.Duration
	// Readers is the number of calls inside the view right now.
	Readers int64
	// Published counts views published over the engine's lifetime.
	Published int64
	// N and M are the view's node and edge counts.
	N, M int
	// Backend and StoreBytes describe the view's similarity store.
	Backend    Backend
	StoreBytes int64
	// Cache is the view's query-cache counter snapshot (zero when the
	// cache is disabled). The counters themselves are cache-lifetime
	// monotone, shared across views.
	Cache CacheStats
	// WalksRepaired and WalkResampleFraction are the approx backend's
	// incremental-repair gauges as of the view's seal (zero elsewhere):
	// cumulative walks whose suffix was resampled, and that work as a
	// fraction of what full per-update rebuilds would have resampled —
	// the affected-area win, ≈ the mean walk-visit probability of the
	// updated nodes.
	WalksRepaired        uint64
	WalkResampleFraction float64
}

// ViewInfo returns a coherent reading of the published view — size,
// epoch, age, store and cache gauges all from one atomic load.
func (c *ConcurrentEngine) ViewInfo() ViewInfo {
	v := c.view.Load()
	vi := ViewInfo{
		Epoch:      v.epoch,
		Age:        time.Since(v.published),
		Readers:    v.readers.Load(),
		Published:  c.views.Load(),
		N:          v.n,
		M:          v.m,
		Backend:    v.s.Backend(),
		StoreBytes: v.storeBytes,
	}
	if v.cache != nil {
		vi.Cache = v.cache.Stats()
	}
	if as, ok := v.s.(*simstore.Approx); ok {
		// The sealed view's counters are a point-in-time copy taken at
		// Seal, so these gauges are epoch-coherent with the rest.
		vi.WalksRepaired, _ = as.RepairStats()
		vi.WalkResampleFraction = as.ResampleFraction()
	}
	return vi
}

// HasEdge reports edge presence in the current view.
func (c *ConcurrentEngine) HasEdge(i, j int) bool {
	v := c.acquire()
	defer release(v)
	return v.hasEdge(i, j)
}

// Insert adds an edge under the writer mutex and publishes the new view.
func (c *ConcurrentEngine) Insert(i, j int) (UpdateStats, error) {
	return c.Apply(Update{Edge: Edge{From: i, To: j}, Insert: true})
}

// Delete removes an edge under the writer mutex and publishes the new
// view.
func (c *ConcurrentEngine) Delete(i, j int) (UpdateStats, error) {
	return c.Apply(Update{Edge: Edge{From: i, To: j}, Insert: false})
}

// Apply performs one unit update under the writer mutex; readers keep
// serving the previous view until the commit is published. The returned
// UpdateStats.DirtyRows is the detached copy snapshotted at publish
// time — caller-owned, with no lifetime caveat.
func (c *ConcurrentEngine) Apply(up Update) (UpdateStats, error) {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.prepareWrite()
	st, err := c.eng.Apply(up)
	if err != nil {
		// Failed updates mutate nothing (validated before any write), so
		// there is no new state to publish.
		return UpdateStats{}, err
	}
	werr := c.logRecord(wal.KindUpdate, []Update{up}, 0)
	v := c.publish(true)
	st.DirtyRows = v.dirtyRows
	return st, werr
}

// ApplyBatch folds a batch of updates under one writer-mutex
// acquisition and publishes once, after the whole batch committed —
// readers never observe a half-applied batch.
func (c *ConcurrentEngine) ApplyBatch(ups []Update) error {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.prepareWrite()
	before := c.eng.Epoch()
	err := c.eng.ApplyBatch(ups)
	if c.eng.Epoch() != before {
		// One WAL record for the whole batch — replay re-enters ApplyBatch
		// with the same slice, so batch boundaries (and the
		// recompute-threshold crossover they decide) reproduce exactly.
		werr := c.logRecord(wal.KindBatch, ups, 0)
		// Publish whatever committed — on the validated path that is all
		// of it or none of it.
		c.publish(false)
		if err == nil {
			err = werr
		}
	}
	return err
}

// Similarities returns a point-in-time copy of the similarity matrix:
// the O(n²) materialization runs against the caller's pinned view, so
// a concurrent writer streams on unimpeded and later mutations are not
// reflected in the copy. Nil on the approx backend.
func (c *ConcurrentEngine) Similarities() *matrix.Dense {
	v := c.acquire()
	defer release(v)
	return v.similarities()
}

// Recompute rebuilds the similarities from scratch under the writer
// mutex and publishes the result as one new view. The returned error is
// a durability failure only (ErrDurability with a WAL installed): the
// rebuild itself cannot fail and its result is published regardless.
func (c *ConcurrentEngine) Recompute() error {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.prepareWrite()
	before := c.eng.Epoch()
	c.eng.Recompute()
	if c.eng.Epoch() == before { // every backend bumps today; kept as a guard
		return nil
	}
	werr := c.logRecord(wal.KindRecompute, nil, 0)
	c.publish(false)
	return werr
}

// AddNodes appends count isolated nodes under the writer mutex,
// returning the id of the first new one. The grown store is fresh, so
// no buffer recycling is involved and prior views stay intact.
func (c *ConcurrentEngine) AddNodes(count int) (int, error) {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	first, err := c.eng.AddNodes(count)
	if err != nil {
		return 0, err
	}
	werr := c.logRecord(wal.KindAddNodes, nil, count)
	c.publish(false)
	return first, werr
}

// Options returns the effective options of the current view.
func (c *ConcurrentEngine) Options() Options { return c.view.Load().opts }

// SetWorkers changes the batch-computation and update-path parallelism
// under the writer mutex; see Engine.SetWorkers. The mutex is what
// makes a live SetWorkers safe against a concurrent update stream: the
// per-worker scratch and the worker pool are resized strictly between
// updates, never during one.
func (c *ConcurrentEngine) SetWorkers(workers int) {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.eng.SetWorkers(workers)
	c.publish(false)
}

// Close releases the wrapped engine's background resources (the update
// worker pool) under the writer mutex; see Engine.Close. The facade
// remains usable afterwards — the pool respawns on the next parallel
// update — so Close is the "quiesce now" hook for tests and shutdown
// paths, not a terminal state.
func (c *ConcurrentEngine) Close() {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.eng.Close()
}

// CacheStats returns the query cache's counters for the current view's
// cache; see Engine.CacheStats.
func (c *ConcurrentEngine) CacheStats() CacheStats {
	v := c.view.Load()
	if v.cache == nil {
		return CacheStats{}
	}
	return v.cache.Stats()
}

// SetTopKCacheRows resizes, enables or disables the query cache under
// the writer mutex; see Engine.SetTopKCacheRows. The fresh cache
// arrives with the new view; readers still on older views keep using
// the cache those views were published with.
func (c *ConcurrentEngine) SetTopKCacheRows(rows int) {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.eng.SetTopKCacheRows(rows)
	c.publish(false)
}

// WriteSnapshot serializes the current view: a consistent snapshot at
// that view's epoch, written without taking any engine lock — queries
// keep flowing AND the writer keeps committing while the bytes stream
// out (commits made after the pin are simply not in the file).
// ConcurrentEngine therefore satisfies SnapshotWriter and can be handed
// to WriteSnapshotFile directly.
func (c *ConcurrentEngine) WriteSnapshot(w io.Writer) error {
	v := c.acquire()
	defer release(v)
	return v.writeSnapshot(w)
}

package simrank

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
)

// TestFileToEnginePipeline exercises the cmd/simrank flow end to end:
// generate a graph and update stream, write them to disk, parse them back,
// build an engine, fold the updates, and verify against a rebuild.
func TestFileToEnginePipeline(t *testing.T) {
	dir := t.TempDir()
	g := gen.PrefAttach(60, 4, 5)
	ups := gen.MixedStream(g, 8, 0.75, 6)

	graphPath := filepath.Join(dir, "g.txt")
	upsPath := filepath.Join(dir, "u.txt")
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(graphPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := graph.WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(upsPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	gf, err := os.Open(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := graph.ParseEdgeList(gf, 0)
	gf.Close()
	if err != nil {
		t.Fatal(err)
	}
	uf, err := os.Open(upsPath)
	if err != nil {
		t.Fatal(err)
	}
	parsedUps, err := graph.ParseUpdates(uf)
	uf.Close()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(parsed.N(), parsed.Edges(), Options{C: 0.6, K: 25, RecomputeThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range parsedUps {
		if _, err := eng.Apply(up); err != nil {
			t.Fatalf("apply %v: %v", up, err)
		}
	}

	final := g.Clone()
	for _, up := range ups {
		final.Apply(up)
	}
	fresh, err := NewEngine(final.N(), final.Edges(), Options{C: 0.6, K: 25})
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(eng.Similarities(), fresh.Similarities()); d > 1e-5 {
		t.Fatalf("pipeline drifted %g from rebuild", d)
	}
	// The most similar pairs must agree between incremental and rebuilt.
	a, b := eng.TopK(5), fresh.TopK(5)
	for i := range a {
		if a[i].A != b[i].A || a[i].B != b[i].B {
			t.Fatalf("top-%d pair differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSnapshotPipeline round-trips an engine through disk mid-stream.
func TestSnapshotPipeline(t *testing.T) {
	dir := t.TempDir()
	g := gen.PrefAttach(40, 4, 9)
	eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 25, RecomputeThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	ups := gen.MixedStream(g, 6, 0.5, 10)
	for _, up := range ups[:3] {
		if _, err := eng.Apply(up); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "engine.simr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range ups[3:] {
		if _, err := eng.Apply(up); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Apply(up); err != nil {
			t.Fatal(err)
		}
	}
	// Adjacency iteration order varies run to run (Go map order), so two
	// executions of the same update may differ by accumulation-order ULPs.
	if d := matrix.MaxAbsDiff(eng.Similarities(), restored.Similarities()); d > 1e-12 {
		t.Fatalf("restored engine drifted %g", d)
	}
}

package simrank

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// snapshotBytes serializes an engine over the given graph for corpus use.
func snapshotBytes(t testing.TB, n int, edges []Edge, opts Options) []byte {
	t.Helper()
	e, err := NewEngine(n, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadSnapshot feeds arbitrary bytes to ReadSnapshot. The parser must
// never panic and must keep its allocations proportional to the input (a
// tiny input claiming huge dimensions has to fail, not over-allocate —
// the 1 MiB inputs below would otherwise be free to demand petabytes).
// When the bytes do parse, writing the restored engine back out must be
// deterministic and stable: write → read → write is byte-identical, and
// the re-read engine matches bit for bit.
func FuzzReadSnapshot(f *testing.F) {
	// Valid corpus: the empty engine, isolated nodes only, and the
	// paper's Fig-1 graph (with non-default options for header variety).
	f.Add(snapshotBytes(f, 0, nil, Options{}))
	f.Add(snapshotBytes(f, 3, nil, Options{C: 0.8, K: 7, DisablePruning: true}))
	fig1, _ := graph.Fig1Graph()
	valid := snapshotBytes(f, fig1.N(), fig1.Edges(), Options{})
	f.Add(valid)
	// Corrupt corpus: truncations, a bit flip in the matrix payload, and
	// a length-corrupted header claiming 2²⁴ nodes in a few dozen bytes.
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:27])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	huge := append([]byte(nil), valid[:32]...)
	binary.LittleEndian.PutUint32(huge[24:], 1<<24) // n
	binary.LittleEndian.PutUint32(huge[28:], 0)     // m
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		e, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := e.WriteSnapshot(&first); err != nil {
			t.Fatalf("restored engine failed to re-serialize: %v", err)
		}
		e2, err := ReadSnapshot(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own snapshot output rejected: %v", err)
		}
		if e2.N() != e.N() || e2.M() != e.M() {
			t.Fatalf("round trip changed graph: %d/%d vs %d/%d", e2.N(), e2.M(), e.N(), e.M())
		}
		if e2.Options() != e.Options() {
			t.Fatalf("round trip changed options: %+v vs %+v", e2.Options(), e.Options())
		}
		if d := matrix.MaxAbsDiff(e2.Similarities(), e.Similarities()); d != 0 {
			t.Fatalf("round trip drifted similarities by %g", d)
		}
		var second bytes.Buffer
		if err := e2.WriteSnapshot(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("snapshot serialization is not stable across a round trip")
		}
	})
}

// TestReadSnapshotBoundsAllocations pins the over-allocation guard the
// fuzzer relies on: a header claiming the maximum node count backed by no
// payload must error out instead of attempting the n² (here ≈ 2 PiB)
// matrix allocation, which used to panic the process.
func TestReadSnapshotBoundsAllocations(t *testing.T) {
	valid := snapshotBytes(t, 0, nil, Options{})
	data := append([]byte(nil), valid[:32]...)
	binary.LittleEndian.PutUint32(data[24:], 1<<24) // n = maxNodes
	binary.LittleEndian.PutUint32(data[28:], 0)     // m = 0
	if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
		t.Fatal("want error for length-corrupted header")
	}
	// Same with an m large enough that m×8 bytes dwarf the input.
	data = append([]byte(nil), valid[:32]...)
	binary.LittleEndian.PutUint32(data[24:], 100)
	binary.LittleEndian.PutUint32(data[28:], 1<<27)
	if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
		t.Fatal("want error for edge-count-corrupted header")
	}
}

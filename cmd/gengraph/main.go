// Command gengraph emits synthetic graphs and update streams in the
// formats read by cmd/simrank: an edge list plus an optional "+/- from to"
// update stream.
//
// Usage:
//
//	gengraph -model er|pa -n 1000 -m 5000 [-seed 1] [-out graph.txt]
//	         [-updates 100] [-insert-frac 0.8] [-updates-out updates.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model      = flag.String("model", "pa", "generator: er (Erdős–Rényi) or pa (preferential attachment)")
		n          = flag.Int("n", 1000, "number of nodes")
		m          = flag.Int("m", 5000, "number of edges (er model)")
		outDeg     = flag.Int("outdeg", 5, "citations per node (pa model)")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "-", "graph output file, - for stdout")
		updates    = flag.Int("updates", 0, "also emit this many updates")
		insertFrac = flag.Float64("insert-frac", 0.8, "fraction of insertions in the update stream")
		updatesOut = flag.String("updates-out", "", "update-stream output file (required when -updates > 0)")
	)
	flag.Parse()

	var g *graph.DiGraph
	switch *model {
	case "er":
		g = gen.ER(*n, *m, *seed)
	case "pa":
		g = gen.PrefAttach(*n, *outDeg, *seed)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		return err
	}

	if *updates > 0 {
		if *updatesOut == "" {
			return fmt.Errorf("-updates-out is required with -updates")
		}
		ups := gen.MixedStream(g, *updates, *insertFrac, *seed+1)
		f, err := os.Create(*updatesOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := graph.WriteUpdates(f, ups); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d updates to %s\n", len(ups), *updatesOut)
	}
	return nil
}

// Command experiments regenerates the tables and figures of the paper's
// evaluation section (Fig. 1's table, Fig. 2a–e, Fig. 3, Fig. 4) as
// plain-text tables on stdout.
//
// Usage:
//
//	experiments [-exp all|fig1|exp1a|fig2b|exp1c|exp2|exp2e|exp3|exp4] [-full]
//
// Without -full, the reduced datasets are used (seconds of runtime); with
// -full, the full-size dataset simulators (minutes).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	name := flag.String("exp", "all", "experiment to run: all, fig1, exp1a, fig2b, exp1c, exp2, exp2e, exp3, exp4")
	full := flag.Bool("full", false, "use full-size dataset simulators (slow)")
	flag.Parse()

	cfg := exp.Config{Scale: exp.ScaleSmall}
	if *full {
		cfg.Scale = exp.ScaleFull
	}
	if err := exp.Run(os.Stdout, *name, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// Command simranklint runs the repository's invariant analyzers
// (internal/analysis/passes/...) over the module and exits non-zero on
// any finding. It is the blocking lint gate CI runs next to go vet:
//
//	go run ./cmd/simranklint ./...
//
// Flags select a subset of analyzers for focused runs:
//
//	go run ./cmd/simranklint -run noalloc,detrand ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/detrand"
	"repro/internal/analysis/passes/dirtyrows"
	"repro/internal/analysis/passes/fsyncerr"
	"repro/internal/analysis/passes/noalloc"
	"repro/internal/analysis/passes/publishorder"
	"repro/internal/analysis/passes/sealedwrite"
)

var all = []*analysis.Analyzer{
	sealedwrite.Analyzer,
	publishorder.Analyzer,
	noalloc.Analyzer,
	detrand.Analyzer,
	dirtyrows.Analyzer,
	fsyncerr.Analyzer,
}

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simranklint [-run names] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := all
	if *runFlag != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runFlag, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "simranklint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simranklint:", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simranklint:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(analyzers, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simranklint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel(wd, pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "simranklint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// rel trims the working directory prefix for readable output.
func rel(wd, path string) string {
	if strings.HasPrefix(path, wd+string(os.PathSeparator)) {
		return path[len(wd)+1:]
	}
	return path
}

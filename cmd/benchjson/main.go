// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark result line:
//
//	go test -run=^$ -bench=. -benchtime=1x ./... | benchjson > BENCH_topk.json
//
// Each object carries the benchmark name (GOMAXPROCS suffix stripped),
// the iteration count, and every reported metric ("ns/op", "B/op",
// "allocs/op", plus custom b.ReportMetric units) keyed by its unit. CI
// uploads the result as an artifact so the repository's performance
// trajectory is tracked per commit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans go-test output, keeping benchmark result lines and the
// "pkg:" headers that attribute them. Lines that don't parse as results
// (test chatter, PASS/ok trailers) are skipped, so the tool can eat the
// full `go test ./...` stream. Returns an empty (non-nil) slice when no
// benchmarks ran.
func parse(r io.Reader) ([]Result, error) {
	results := []Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if res, ok := parseLine(line); ok {
			res.Package = pkg
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// parseLine parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// Shortest valid line: name, runs, value, unit.
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || runs < 0 {
		return Result{}, false
	}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false
	}
	metrics := make(map[string]float64, len(rest)/2)
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		metrics[rest[i+1]] = v
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across runners.
	if idx := strings.LastIndexByte(name, '-'); idx > 0 {
		if _, err := strconv.Atoi(name[idx+1:]); err == nil {
			name = name[:idx]
		}
	}
	return Result{Name: name, Runs: runs, Metrics: metrics}, true
}

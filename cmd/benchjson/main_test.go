package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTopKForCached-8         	 1000000	       309.0 ns/op	     227 B/op	       0 allocs/op
BenchmarkTopKForMixedReadHeavy/cached-8 	  520770	       694.4 ns/op	     295 B/op	       2 allocs/op
BenchmarkExp2Pruning/Inc-SR-8    	     100	    123456 ns/op	        12.50 affected-%
PASS
ok  	repro	5.513s
?   	repro/cmd/simrankd	[no test files]
--- FAIL: TestSomething
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(got), got)
	}
	r := got[0]
	if r.Name != "BenchmarkTopKForCached" || r.Package != "repro" || r.Runs != 1000000 {
		t.Fatalf("result 0 = %+v", r)
	}
	if r.Metrics["ns/op"] != 309 || r.Metrics["B/op"] != 227 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics 0 = %v", r.Metrics)
	}
	// Sub-benchmark names keep their /suffix but lose -GOMAXPROCS; the
	// custom ReportMetric unit comes through keyed by its unit string.
	if got[1].Name != "BenchmarkTopKForMixedReadHeavy/cached" {
		t.Fatalf("result 1 name = %q", got[1].Name)
	}
	if got[2].Metrics["affected-%"] != 12.5 {
		t.Fatalf("custom metric = %v", got[2].Metrics)
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkBroken-8 notanumber 3 ns/op\nBenchmarkOdd-8 10 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("garbage parsed as results: %+v", got)
	}
}

func TestParseEmptyIsNonNil(t *testing.T) {
	got, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("want empty non-nil slice, got %#v", got)
	}
}

// Command simrank computes SimRank over an edge-list file and optionally
// folds an update stream incrementally, printing the top-k most similar
// node-pairs after each phase.
//
// Usage:
//
//	simrank -graph edges.txt [-updates updates.txt] [-c 0.6] [-k 15]
//	        [-top 10] [-query NODE] [-no-prune]
//
// The graph file holds "from to" lines; the update stream holds
// "+ from to" / "- from to" lines (comments with # or %).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	simrank "repro"
	"repro/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "simrank: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (required)")
		updates    = flag.String("updates", "", "optional update-stream file (+/- from to)")
		c          = flag.Float64("c", 0.6, "damping factor in (0,1)")
		k          = flag.Int("k", 15, "iteration count")
		top        = flag.Int("top", 10, "number of top pairs to print")
		query      = flag.Int("query", -1, "print top pairs for this node only")
		noPrune    = flag.Bool("no-prune", false, "use Inc-uSR (no pruning) for updates")
		printStats = flag.Bool("stats", false, "print per-update work statistics")
	)
	flag.Parse()
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := graph.ParseEdgeList(f, 0)
	f.Close()
	if err != nil {
		return err
	}
	st := graph.Summarize(g)
	fmt.Printf("graph: %d nodes, %d edges, avg in-degree %.2f\n", st.Nodes, st.Edges, st.AvgInDeg)

	start := time.Now()
	eng, err := simrank.NewEngine(g.N(), g.Edges(), simrank.Options{
		C: *c, K: *k, DisablePruning: *noPrune,
	})
	if err != nil {
		return err
	}
	fmt.Printf("batch SimRank (C=%.2f, K=%d) in %v\n", *c, *k, time.Since(start).Round(time.Millisecond))
	printTop(eng, *query, *top)

	if *updates == "" {
		return nil
	}
	uf, err := os.Open(*updates)
	if err != nil {
		return err
	}
	ups, err := graph.ParseUpdates(uf)
	uf.Close()
	if err != nil {
		return err
	}
	fmt.Printf("\nfolding %d updates incrementally...\n", len(ups))
	start = time.Now()
	for i, up := range ups {
		stats, err := eng.Apply(up)
		if err != nil {
			return fmt.Errorf("update %d (%v): %w", i, up, err)
		}
		if *printStats {
			fmt.Printf("  %v: affected=%d pairs\n", up, stats.AffectedPairs)
		}
	}
	fmt.Printf("done in %v (%d edges now)\n", time.Since(start).Round(time.Millisecond), eng.M())
	printTop(eng, *query, *top)
	return nil
}

func printTop(eng *simrank.Engine, query, top int) {
	if query >= 0 {
		fmt.Printf("top %d pairs for node %d:\n", top, query)
		for _, p := range eng.TopKFor(query, top) {
			fmt.Printf("  (%d, %d)  %.4f\n", p.A, p.B, p.Score)
		}
		return
	}
	fmt.Printf("top %d pairs:\n", top)
	for _, p := range eng.TopK(top) {
		fmt.Printf("  (%d, %d)  %.4f\n", p.A, p.B, p.Score)
	}
}

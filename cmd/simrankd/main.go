// Command simrankd serves a live SimRank engine over HTTP/JSON: query
// endpoints (GET /similarity, /topk, /topkfor, /stats) answered
// lock-free off the engine's published MVCC read views — read latency
// independent of write activity — and a write path (POST /updates) that
// coalesces bursts of link updates into one batched commit + view
// publish per drain cycle. See internal/server for the endpoint and
// coalescing semantics.
//
// The listener binds before the engine boots: GET /healthz is pure
// liveness, GET /readyz answers 503 until -restore (or the initial
// batch computation) completes and the first view is published, then
// 200 with the serving epoch — point load balancers at /readyz.
//
// Usage:
//
//	simrankd -graph edges.txt [-addr :8080] [-snapshot state.simr]
//	         [-c 0.6] [-k 15] [-no-prune] [-workers 0] [-topk-cache 4096]
//	         [-backend dense|packed|approx] [-approx-walks 128] [-approx-seed 1]
//	simrankd -restore state.simr [-addr :8080] [-snapshot state.simr]
//	simrankd -n 100                       # empty graph with 100 nodes
//
// -backend selects the similarity store: dense (exact, 8n² bytes),
// packed (exact, ≈4n² bytes — the same engine at half the memory) or
// approx (Monte-Carlo stored-walk tier, O(n·(walks·k+d)) bytes — the
// only backend that loads graphs whose n² is out of budget; updates are
// absorbed by repairing just the affected walk suffixes, and /stats
// reports the repair work as walks_repaired/walk_resample_fraction).
// The backend is baked into snapshots, so it conflicts with -restore.
//
// With -snapshot set, POST /snapshot persists on demand and a graceful
// shutdown (SIGINT/SIGTERM) drains the write pipeline and writes a final
// snapshot, so `simrankd -restore state.simr` resumes exactly where the
// previous process stopped.
//
// With -wal-dir set, every committed mutation is appended to a
// segmented write-ahead log BEFORE the view exposing it publishes, so
// even a kill -9 loses nothing acknowledged: boot becomes
// restore-newest-snapshot (-restore) + replay-the-log-tail, and a
// successful snapshot truncates the segments it covers. -wal-sync picks
// the fsync policy (always, interval, none; see README "Durability &
// crash recovery"), -wal-segment-bytes the rotation size. A SIGTERM
// during restore or replay aborts the boot cleanly — nonzero exit, no
// snapshot of half-replayed state.
//
// With -follow <leader-url> set, the process is a READ REPLICA: it
// boots its base state as usual (same seed -graph/-n as the leader, or
// a leader snapshot via -restore, plus its own local -wal-dir tail),
// then tails the leader's GET /wal stream, applying each record through
// the same code path crash recovery replays and publishing one MVCC
// view per applied epoch — bit-identical to the leader at the same
// epoch. Writes answer 409 with the leader's address; /readyz answers
// 503 until the follower is connected and within -follow-lag epochs of
// the leader; /stats grows replica_lag_epochs, replica_lag_ms,
// records_streamed and reconnects. The leader paces heartbeat frames
// every -wal-heartbeat; the follower reconnects (with backoff, from its
// last applied epoch) when no frame arrives within -follow-stall. A
// stream that cannot extend the local state — the leader regressed, or
// truncated the needed records after a snapshot — exits the process
// with an error: re-seed from a leader snapshot. See README
// "Replication".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	simrank "repro"
	"repro/internal/graph"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "simrankd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		graphPth = flag.String("graph", "", "edge-list file to boot from (\"from to\" lines)")
		nodes    = flag.Int("n", 0, "boot with an empty graph of this many nodes (if no -graph/-restore)")
		restore  = flag.String("restore", "", "snapshot file to boot from (skips the batch computation)")
		snapshot = flag.String("snapshot", "", "snapshot path for POST /snapshot and the final shutdown snapshot")
		c        = flag.Float64("c", 0.6, "damping factor in (0,1)")
		k        = flag.Int("k", 15, "iteration count")
		noPrune  = flag.Bool("no-prune", false, "use Inc-uSR (no pruning) for updates")
		backend  = flag.String("backend", "dense", "similarity store: dense, packed or approx")
		walks    = flag.Int("approx-walks", 128, "approx backend: walks per pair (stderr shrinks as 1/sqrt)")
		seed     = flag.Int64("approx-seed", 1, "approx backend: derived-seed root for the stored walks")
		workers  = flag.Int("workers", 0, "batch-computation and incremental-update goroutines (0 = auto: GOMAXPROCS, serial updates below 2048 nodes)")
		topkRows = flag.Int("topk-cache", 4096, "rows retained by the dirty-row top-k query cache (0 disables)")
		queue    = flag.Int("queue", 1024, "write-pipeline queue size (requests)")
		maxBatch = flag.Int("max-batch", 1<<16, "max updates coalesced per drain cycle")
		window   = flag.Duration("batch-window", 0, "hold each drain cycle open this long to deepen write coalescing (0 = commit immediately)")
		maxNodes = flag.Int("max-nodes", 1<<14, "largest graph POST /nodes may grow to (the dense matrix costs 8n² bytes)")
		timeout  = flag.Duration("shutdown-timeout", 15*time.Second, "graceful shutdown deadline")

		walDir      = flag.String("wal-dir", "", "write-ahead-log directory (enables durable logging + crash recovery)")
		walSync     = flag.String("wal-sync", "always", "wal fsync policy: always (every append), interval (background timer + ?wait=1 group commit) or none")
		walSyncInt  = flag.Duration("wal-sync-interval", 50*time.Millisecond, "background fsync period under -wal-sync=interval")
		walSegBytes = flag.Int64("wal-segment-bytes", 64<<20, "wal segment rotation size in bytes")

		follow       = flag.String("follow", "", "run as a read replica of this leader base URL (e.g. http://leader:8080)")
		followLag    = flag.Uint64("follow-lag", 0, "replica readiness bound: /readyz answers 200 while the follower is within this many epochs of the leader")
		followStall  = flag.Duration("follow-stall", 10*time.Second, "replica reconnects when no stream frame arrives for this long (keep above the leader's -wal-heartbeat)")
		walHeartbeat = flag.Duration("wal-heartbeat", time.Second, "heartbeat interval on the GET /wal replication stream this process serves")
	)
	flag.Parse()

	syncPolicy, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		return err
	}
	if *walDir == "" {
		// A tuning flag without the enabling flag is a misconfiguration
		// trap (the operator believes they have a durability guarantee
		// they don't); refuse instead of silently ignoring.
		var orphaned []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "wal-sync", "wal-sync-interval", "wal-segment-bytes":
				orphaned = append(orphaned, "-"+f.Name)
			}
		})
		if len(orphaned) > 0 {
			return fmt.Errorf("%s have no effect without -wal-dir", strings.Join(orphaned, ", "))
		}
	}
	if *follow == "" {
		var orphaned []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "follow-lag", "follow-stall":
				orphaned = append(orphaned, "-"+f.Name)
			}
		})
		if len(orphaned) > 0 {
			return fmt.Errorf("%s have no effect without -follow", strings.Join(orphaned, ", "))
		}
	}

	if *restore != "" {
		// C, K and pruning are baked into the restored similarity state;
		// silently running with different values than asked would be a
		// trap, so combining them with -restore is an error. -workers and
		// -topk-cache are the runtime knobs, applied by bootEngine.
		var clash []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "c", "k", "no-prune", "n", "backend", "approx-walks", "approx-seed":
				clash = append(clash, "-"+f.Name)
			}
		})
		if len(clash) > 0 {
			return fmt.Errorf("%s conflict with -restore: the snapshot fixes the graph, the C/K/pruning options and the store backend (drop the flag or boot from -graph)", strings.Join(clash, ", "))
		}
	}
	if _, err := simrank.ParseBackend(*backend); err != nil {
		return err
	}

	// Open (and recover) the log before anything else: a corrupt mid-log
	// record must fail the boot loudly, before the listener raises any
	// expectation of service. A torn tail — the signature of a crash
	// mid-append — is truncated away silently-but-reported here.
	var w *wal.WAL
	if *walDir != "" {
		w, err = wal.Open(*walDir, wal.Options{
			SegmentBytes: *walSegBytes,
			Sync:         syncPolicy,
			SyncInterval: *walSyncInt,
		})
		if err != nil {
			return err
		}
		defer func() {
			// A WAL that fails to close cleanly may hold final records
			// unsynced; surface that at shutdown instead of dropping it.
			if cerr := w.Close(); cerr != nil {
				fmt.Printf("simrankd: wal close: %v\n", cerr)
			}
		}()
		if torn := w.Stats().TornBytes; torn > 0 {
			fmt.Printf("simrankd: wal recovery truncated a torn tail of %d bytes (previous process died mid-append)\n", torn)
		}
	}

	// Signals are armed BEFORE the boot begins, not after it finishes: a
	// SIGTERM that lands during a long -restore or WAL replay must abort
	// the boot cleanly (nonzero exit, no snapshot of half-replayed
	// state), not be dropped on the floor until the kernel escalates.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Bind the listener before booting the engine: a -restore replay or
	// a large initial batch computation can take a while, and during it
	// the process must answer /healthz (alive) while /readyz holds
	// traffic off. Every query endpoint answers 503 until the engine
	// attaches with its first view published.
	srv := server.NewPending(server.Config{
		SnapshotPath:      *snapshot,
		QueueSize:         *queue,
		MaxBatch:          *maxBatch,
		BatchWindow:       *window,
		MaxNodes:          *maxNodes,
		WAL:               w,
		HeartbeatInterval: *walHeartbeat,
		Leader:            *follow,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("simrankd: listening on %s (booting; watch /readyz)\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	// The runtime knobs (workers, cache) ride the options into every boot
	// path — constructor for -graph/-n, ConfigureRestored for -restore —
	// so that booting never advances the epoch: the serving epoch is
	// exactly the restored/replayed history, which is what lets a read
	// replica resume the leader's stream from its own local epoch.
	eng, err := bootEngine(*restore, *graphPth, *nodes, simrank.Options{
		C: *c, K: *k, DisablePruning: *noPrune, Workers: *workers,
		Backend: simrank.Backend(*backend), ApproxWalks: *walks, ApproxSeed: *seed,
		TopKCacheRows: *topkRows,
	})
	if err != nil {
		httpSrv.Close()
		return err
	}
	if err := ctx.Err(); err != nil {
		// Signaled while the base state was loading: nothing replayed,
		// nothing attached, nothing to persist.
		httpSrv.Close()
		return fmt.Errorf("boot aborted: %w", err)
	}
	if w != nil {
		// Replay the log tail above the base state's epoch — everything
		// acknowledged after the restored snapshot was serialized (the
		// whole log when booting from -graph or -n). Only after the replay
		// lands does the engine start logging its own commits.
		applied, err := eng.ReplayWAL(ctx, w)
		if err != nil {
			httpSrv.Close()
			return fmt.Errorf("wal replay: %w", err)
		}
		if applied > 0 {
			fmt.Printf("simrankd: wal replayed %d records (now at epoch %d)\n", applied, eng.Epoch())
		}
		eng.SetWAL(w)
	}
	if *follow != "" {
		// Follower: tail the leader from the epoch the local boot reached
		// (snapshot + local WAL replay), so a restart resumes mid-stream
		// instead of refetching history. Run retries connection failures
		// forever; the errors it RETURNS are terminal — the stream can no
		// longer extend this state — and must kill the process loudly
		// rather than let a silently-forked replica keep serving.
		rep := replica.New(eng, replica.Options{
			Leader:       *follow,
			LagBound:     *followLag,
			StallTimeout: *followStall,
		})
		srv.SetReplica(rep)
		go func() {
			if err := rep.Run(ctx); err != nil {
				errc <- fmt.Errorf("replication: %w", err)
			}
		}()
	}
	srv.Attach(eng)
	fmt.Printf("simrankd: engine ready (%d nodes, %d edges, %s store, %d store bytes, epoch %d)\n",
		eng.N(), eng.M(), eng.Backend(), eng.StoreMemBytes(), eng.Epoch())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Println("simrankd: signal received — draining")
	}

	// Stop accepting HTTP first, then drain the pipeline and persist, so
	// every write we answered 202 for makes it into the final snapshot.
	// The drain-and-snapshot must happen even if Shutdown times out on a
	// stuck connection — accepted writes are never dropped. (The WAL
	// closes last, via the deferred Close above, after the final
	// snapshot has truncated what it covers.)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if err := srv.Close(); err != nil {
		return errors.Join(shutdownErr, fmt.Errorf("drain/snapshot: %w", err))
	}
	if *snapshot != "" {
		fmt.Printf("simrankd: final snapshot written to %s\n", *snapshot)
	}
	if shutdownErr != nil {
		return fmt.Errorf("http shutdown: %w", shutdownErr)
	}
	return nil
}

// bootEngine builds the concurrent engine from, in order of preference, a
// snapshot, an edge-list file, or an empty n-node graph.
func bootEngine(restore, graphPath string, nodes int, opts simrank.Options) (*simrank.ConcurrentEngine, error) {
	switch {
	case restore != "" && graphPath != "":
		return nil, errors.New("-restore and -graph are mutually exclusive")
	case restore != "":
		eng, err := simrank.ReadSnapshotFile(restore)
		if err != nil {
			return nil, fmt.Errorf("restore %s: %w", restore, err)
		}
		// Snapshots persist neither runtime knob; apply them with the
		// boot-time (non-epoch-minting) form before the first view
		// publishes.
		eng.ConfigureRestored(opts.Workers, opts.TopKCacheRows)
		return simrank.WrapEngine(eng), nil
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		g, err := graph.ParseEdgeList(f, 0)
		f.Close()
		if err != nil {
			return nil, err
		}
		return simrank.NewConcurrentEngine(g.N(), g.Edges(), opts)
	case nodes > 0:
		return simrank.NewConcurrentEngine(nodes, nil, opts)
	default:
		return nil, errors.New("one of -graph, -restore or -n is required")
	}
}

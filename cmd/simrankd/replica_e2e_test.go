// Replication end-to-end chaos tests: REAL simrankd processes — one
// leader, one follower tailing it over GET /wal — each killed with
// SIGKILL at the worst moment and restarted, with the follower required
// to converge bit-identically to a serial in-process replay of the
// acknowledged write stream. The leader crash proves the follower's
// reconnect-from-applied-epoch loop; the follower crash proves local
// snapshot+WAL resume (no refetch of already-applied history).
package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	simrank "repro"
)

// startChildAt launches simrankd bound to a SPECIFIC address — the
// leader-restart test needs the reborn leader back at the address the
// follower keeps dialing.
func startChildAt(t *testing.T, addr string, extraArgs ...string) *child {
	t.Helper()
	bin := simrankdBinary(t)
	out := new(bytes.Buffer)
	cmd := exec.Command(bin, append([]string{"-addr", addr}, extraArgs...)...)
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, url: "http://" + addr, out: out}
	t.Cleanup(func() {
		if c.cmd.ProcessState == nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
	})
	waitStatus(t, c, http.StatusOK)
	return c
}

// freePort reserves an ephemeral local address for a child that must be
// restartable at the same place.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitStatus polls /readyz until it answers want.
func waitStatus(t *testing.T, c *child, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if c.cmd.ProcessState != nil {
			t.Fatalf("child exited while waiting for /readyz=%d; output:\n%s", want, c.out.String())
		}
		resp, err := http.Get(c.url + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == want {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("/readyz never answered %d; output:\n%s", want, c.out.String())
}

// replicaStats is the slice of /stats this test watches.
type replicaStats struct {
	Epoch           uint64  `json:"epoch"`
	LagEpochs       uint64  `json:"replica_lag_epochs"`
	RecordsStreamed int64   `json:"records_streamed"`
	Reconnects      int64   `json:"reconnects"`
	LagMS           float64 `json:"replica_lag_ms"`
	Leader          string  `json:"leader"`
}

func getReplicaStats(t *testing.T, base string) replicaStats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st replicaStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitEpoch polls until the child's serving epoch reaches target.
func waitEpoch(t *testing.T, c *child, target uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if c.cmd.ProcessState != nil {
			t.Fatalf("child exited while converging to epoch %d; output:\n%s", target, c.out.String())
		}
		if st := getReplicaStats(t, c.url); st.Epoch >= target {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("never reached epoch %d (at %d); output:\n%s", target, getReplicaStats(t, c.url).Epoch, c.out.String())
}

// TestReplicaChaosKill9 is the tentpole's end-to-end proof. The
// timeline:
//
//  1. Leader (WAL, dense) takes acknowledged writes; a follower with
//     its own WAL dir tails it and converges.
//  2. kill -9 the LEADER mid-stream; restart it at the same address
//     over the same WAL (empty-base + full replay). The follower must
//     reconnect on its own and converge on the post-restart writes.
//  3. Snapshot the FOLLOWER, kill -9 the follower, commit more writes
//     on the leader, restart the follower from its local snapshot +
//     WAL. It must resume from where its local state ends — streaming
//     only the missed records, never refetching from epoch 0.
//  4. Leader, follower, and a serial in-process oracle replay of the
//     acknowledged stream agree on every similarity, bit-for-bit.
func TestReplicaChaosKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	leaderWAL := filepath.Join(dir, "leader-wal")
	followerWAL := filepath.Join(dir, "follower-wal")
	followerSnap := filepath.Join(dir, "follower.simr")

	leaderAddr := freePort(t)
	leaderURL := "http://" + leaderAddr
	leaderArgs := []string{"-n", "8", "-wal-dir", leaderWAL, "-wal-heartbeat", "50ms"}
	leader := startChildAt(t, leaderAddr, leaderArgs...)

	followerArgs := []string{
		"-wal-dir", followerWAL, "-snapshot", followerSnap,
		"-follow", leaderURL, "-follow-stall", "500ms",
	}
	follower := startChild(t, append([]string{"-n", "8"}, followerArgs...)...)

	// Phase 1: acknowledged writes flow; the follower converges and its
	// readiness gate opens (startChild already required /readyz=200,
	// which on a follower means caught up).
	for _, up := range crashPhase1 {
		leader.ack(t, up)
	}
	waitEpoch(t, follower, uint64(len(crashPhase1)))

	// A follower is read-only: writes answer 409 and name the leader.
	resp, err := http.Post(follower.url+"/updates?wait=1", "application/json",
		strings.NewReader(`{"from":0,"to":7}`))
	if err != nil {
		t.Fatal(err)
	}
	var errBody struct {
		Leader string `json:"leader"`
	}
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || errBody.Leader != leaderURL {
		t.Fatalf("follower write: %d (leader %q), want 409 naming %q", resp.StatusCode, errBody.Leader, leaderURL)
	}

	// Phase 2: murder the leader mid-stream, restart it at the SAME
	// address over the same WAL. Its boot replays the full log (no
	// snapshot was ever taken), so the stream resumes exactly where the
	// acknowledged history ends.
	leader.kill9(t)
	leader = startChildAt(t, leaderAddr, leaderArgs...)
	phase2 := crashPhase2[:3]
	for _, up := range phase2 {
		leader.ack(t, up)
	}
	epoch2 := uint64(len(crashPhase1) + len(phase2))
	waitEpoch(t, follower, epoch2)
	if st := getReplicaStats(t, follower.url); st.Reconnects < 1 {
		t.Fatalf("follower converged without recording a reconnect across the leader crash: %+v", st)
	}

	// Phase 3: snapshot the follower, murder it, commit more on the
	// leader, restart the follower from its local snapshot + WAL.
	follower.post(t, "/snapshot")
	follower.kill9(t)
	rest := crashPhase2[3:]
	for _, up := range rest {
		leader.ack(t, up)
	}
	totalEpoch := epoch2 + uint64(len(rest))
	// -restore replaces -n: the follower boots from its own snapshot
	// (epoch 9) and must stream ONLY the records it missed.
	follower = startChild(t, append([]string{"-restore", followerSnap}, followerArgs...)...)
	waitEpoch(t, follower, totalEpoch)
	if st := getReplicaStats(t, follower.url); st.RecordsStreamed > int64(len(rest)) {
		t.Fatalf("restarted follower streamed %d records for %d missed epochs — it refetched history its local snapshot+wal already held", st.RecordsStreamed, len(rest))
	}

	// Phase 4: leader, follower, and a serial oracle of the acknowledged
	// stream agree bit-for-bit on every similarity. (Oracle options
	// mirror the simrankd defaults: -c 0.6 -k 15, dense, pruning on;
	// sequential ?wait=1 posts commit as single-update batches.)
	oracleEng, err := simrank.NewEngine(8, nil, simrank.Options{C: 0.6, K: 15})
	if err != nil {
		t.Fatal(err)
	}
	oracle := simrank.WrapEngine(oracleEng)
	acked := append(append(append([]simrank.Update(nil), crashPhase1...), phase2...), rest...)
	for _, up := range acked {
		if err := oracle.ApplyBatch([]simrank.Update{up}); err != nil {
			t.Fatal(err)
		}
	}
	if got := oracle.Epoch(); got != totalEpoch {
		t.Fatalf("oracle epoch %d, want %d", got, totalEpoch)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := oracle.Similarity(i, j)
			if got := getScore(t, leader.url, i, j); got != want {
				t.Fatalf("leader s(%d,%d) = %v, oracle %v", i, j, got, want)
			}
			if got := getScore(t, follower.url, i, j); got != want {
				t.Fatalf("follower s(%d,%d) = %v, oracle %v (must be bit-identical at the same epoch)", i, j, got, want)
			}
		}
	}
	follower.sigterm(t)
	leader.sigterm(t)
}

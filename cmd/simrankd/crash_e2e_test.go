// Crash-recovery end-to-end tests: a REAL simrankd child process is
// killed with SIGKILL mid-stream and restarted over the same WAL
// directory, and the recovered store must match a serial in-process
// replay of exactly the acknowledged update stream — the durability
// contract ?wait=1 sells. Run as part of `go test ./cmd/simrankd`; the
// binary is built once per test run with the local toolchain.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	simrank "repro"
	"repro/internal/matrix"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// simrankdBinary builds the simrankd binary once and returns its path.
func simrankdBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "simrankd-e2e-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "simrankd")
		cmd := exec.Command("go", "build", "-o", buildBin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// child is one running simrankd process under test.
type child struct {
	cmd *exec.Cmd
	url string
	out *bytes.Buffer
}

// startChild launches simrankd on a fresh local port and waits for
// readiness. extraArgs must not include -addr.
func startChild(t *testing.T, extraArgs ...string) *child {
	t.Helper()
	bin := simrankdBinary(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	out := new(bytes.Buffer)
	cmd := exec.Command(bin, append([]string{"-addr", addr}, extraArgs...)...)
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, url: "http://" + addr, out: out}
	t.Cleanup(func() {
		if c.cmd.ProcessState == nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
	})

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if c.cmd.ProcessState != nil {
			break
		}
		resp, err := http.Get(c.url + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return c
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.cmd.Process.Kill()
	c.cmd.Wait()
	t.Fatalf("simrankd never became ready; output:\n%s", c.out.String())
	return nil
}

// kill9 is the crash: SIGKILL, no drain, no snapshot, no WAL close.
func (c *child) kill9(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c.cmd.Wait()
}

// sigterm asks for a graceful shutdown and requires a clean exit.
func (c *child) sigterm(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := c.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited dirty: %v\noutput:\n%s", err, c.out.String())
	}
}

// ack posts one update with ?wait=1 and requires the 200 — after it
// returns, the update is acknowledged: visible AND durably logged.
func (c *child) ack(t *testing.T, up simrank.Update) {
	t.Helper()
	op := "insert"
	if !up.Insert {
		op = "delete"
	}
	body := fmt.Sprintf(`{"from":%d,"to":%d,"op":%q}`, up.Edge.From, up.Edge.To, op)
	resp, err := http.Post(c.url+"/updates?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ack %s: %d (%s)", body, resp.StatusCode, msg)
	}
}

func (c *child) post(t *testing.T, path string) {
	t.Helper()
	resp, err := http.Post(c.url+path, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d (%s)", path, resp.StatusCode, msg)
	}
}

// crashStream is the acknowledged update schedule: phase one before the
// mid-stream snapshot, phase two after it (recovered from the WAL tail
// alone). All on an empty 8-node graph.
var crashPhase1 = []simrank.Update{
	{Edge: simrank.Edge{From: 0, To: 1}, Insert: true},
	{Edge: simrank.Edge{From: 1, To: 2}, Insert: true},
	{Edge: simrank.Edge{From: 2, To: 0}, Insert: true},
	{Edge: simrank.Edge{From: 3, To: 1}, Insert: true},
	{Edge: simrank.Edge{From: 4, To: 5}, Insert: true},
	{Edge: simrank.Edge{From: 5, To: 6}, Insert: true},
}

var crashPhase2 = []simrank.Update{
	{Edge: simrank.Edge{From: 6, To: 7}, Insert: true},
	{Edge: simrank.Edge{From: 7, To: 0}, Insert: true},
	{Edge: simrank.Edge{From: 4, To: 5}, Insert: false},
	{Edge: simrank.Edge{From: 2, To: 7}, Insert: true},
	{Edge: simrank.Edge{From: 3, To: 1}, Insert: false},
	{Edge: simrank.Edge{From: 1, To: 7}, Insert: true},
}

// TestCrashRecoveryKill9 is the end-to-end durability proof, per
// backend: stream acknowledged writes into a live simrankd (taking a
// mid-stream snapshot so recovery exercises restore + tail replay),
// SIGKILL it with no warning, restart over the same WAL directory, shut
// down gracefully, and compare the final persisted state against a
// serial in-process replay of the acknowledged stream — bit-identical
// for dense, 1e-12 for packed (its store canonicalizes on the upper
// triangle), and bit-identical again for approx: WAL replay repairs the
// walk index through the same pure (graph, seed) function the live
// stream did, so recovery cannot drift even by one bit.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	for _, tc := range []struct {
		backend simrank.Backend
		tol     float64
	}{
		{simrank.BackendDense, 0},
		{simrank.BackendPacked, 1e-12},
		{simrank.BackendApprox, 0},
	} {
		t.Run(string(tc.backend), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			walDir := filepath.Join(dir, "wal")
			snap := filepath.Join(dir, "state.simr")

			args := []string{"-n", "8", "-backend", string(tc.backend),
				"-wal-dir", walDir, "-snapshot", snap}
			if tc.backend == simrank.BackendApprox {
				args = append(args, "-approx-walks", "64", "-approx-seed", "7")
			}
			p1 := startChild(t, args...)
			for _, up := range crashPhase1 {
				p1.ack(t, up)
			}
			p1.post(t, "/snapshot") // sealed segments below this epoch may vanish
			for _, up := range crashPhase2 {
				p1.ack(t, up)
			}
			p1.kill9(t)

			// Restart over the wreckage: restore the mid-stream snapshot,
			// replay the WAL tail. Everything acknowledged must be back.
			p2 := startChild(t, "-restore", snap, "-wal-dir", walDir, "-snapshot", snap)
			p2.sigterm(t) // drains (nothing queued) and persists the final snapshot

			restoredEng, err := simrank.ReadSnapshotFile(snap)
			if err != nil {
				t.Fatal(err)
			}
			restored := simrank.WrapEngine(restoredEng)

			// The oracle: the acknowledged stream applied serially, through
			// the same single-update-batch entry point the server's drain
			// cycles used (sequential ?wait=1 posts never coalesce).
			// The oracle's options must match the child's flags (simrankd
			// defaults: -c 0.6 -k 15, pruning on).
			serialEng, err := simrank.NewEngine(8, nil, simrank.Options{
				C: 0.6, K: 15, Backend: tc.backend, ApproxWalks: 64, ApproxSeed: 7})
			if err != nil {
				t.Fatal(err)
			}
			serial := simrank.WrapEngine(serialEng)
			for _, up := range append(append([]simrank.Update(nil), crashPhase1...), crashPhase2...) {
				if err := serial.ApplyBatch([]simrank.Update{up}); err != nil {
					t.Fatal(err)
				}
			}

			sn, sm := serial.Size()
			rn, rm := restored.Size()
			if sn != rn || sm != rm {
				t.Fatalf("recovered size (%d, %d), want (%d, %d)", rn, rm, sn, sm)
			}
			for i := 0; i < sn; i++ {
				for j := 0; j < sn; j++ {
					if serial.HasEdge(i, j) != restored.HasEdge(i, j) {
						t.Fatalf("edge (%d,%d) presence differs after recovery", i, j)
					}
				}
			}
			if tc.backend == simrank.BackendApprox {
				// No materialized matrix — compare every sampled score, at
				// tolerance zero: replay is the same derived-seed repair.
				for i := 0; i < sn; i++ {
					for j := 0; j < sn; j++ {
						if got, want := restored.Similarity(i, j), serial.Similarity(i, j); got != want {
							t.Fatalf("recovered s(%d,%d) = %v, serial replay %v", i, j, got, want)
						}
					}
				}
				return
			}
			d := matrix.MaxAbsDiff(serial.Similarities(), restored.Similarities())
			if d > tc.tol {
				t.Fatalf("recovered store drifted %g from serial replay (tolerance %g)", d, tc.tol)
			}
		})
	}
}

// TestCrashRecoveryApproxDeterminism: the approx tier's crash story is
// derived-seed determinism — acknowledged updates straddle a mid-stream
// snapshot, the process dies with kill -9, and after restore + WAL tail
// replay every sampled score must come back EXACTLY: snapshot restore
// rebuilds the stored walks from (graph, seed) and tail replay repairs
// them through the same pure function the live stream used.
func TestCrashRecoveryApproxDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	graphFile := filepath.Join(dir, "edges.txt")
	edges := "0 1\n1 2\n2 0\n2 3\n3 4\n4 1\n"
	if err := os.WriteFile(graphFile, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "state.simr")
	walDir := filepath.Join(dir, "wal")

	p1 := startChild(t, "-graph", graphFile, "-backend", "approx",
		"-approx-walks", "64", "-approx-seed", "7",
		"-wal-dir", walDir, "-snapshot", snap)
	p1.ack(t, simrank.Update{Edge: simrank.Edge{From: 3, To: 0}, Insert: true})
	p1.post(t, "/snapshot") // recovery must compose restore + tail replay
	p1.ack(t, simrank.Update{Edge: simrank.Edge{From: 2, To: 3}, Insert: false})
	p1.ack(t, simrank.Update{Edge: simrank.Edge{From: 1, To: 3}, Insert: true})
	var before [5][5]float64
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			before[i][j] = getScore(t, p1.url, i, j)
		}
	}
	p1.kill9(t)

	p2 := startChild(t, "-restore", snap, "-wal-dir", walDir, "-snapshot", snap)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if got := getScore(t, p2.url, i, j); math.Abs(got-before[i][j]) != 0 {
				t.Fatalf("s(%d,%d) = %g after recovery, was %g — approx replay must be deterministic", i, j, got, before[i][j])
			}
		}
	}
	p2.sigterm(t)
}

// TestCorruptWALFailsBootLoudly: damage in the middle of the log is
// disk corruption, not a crash artifact — the process must refuse to
// serve (nonzero exit, never ready) instead of replaying past it.
func TestCorruptWALFailsBootLoudly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")

	p1 := startChild(t, "-n", "8", "-wal-dir", walDir)
	for _, up := range crashPhase1 {
		p1.ack(t, up)
	}
	p1.kill9(t)

	// Flip one byte early in the (only) segment — a mid-log record's CRC
	// now fails with intact records after it.
	segs, err := filepath.Glob(filepath.Join(walDir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments found (%v)", err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[12] ^= 0xFF // inside the first record's payload
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	bin := simrankdBinary(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-n", "8", "-wal-dir", walDir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("boot over a corrupt wal exited clean; output:\n%s", out)
	}
	if !bytes.Contains(out, []byte("wal")) {
		t.Fatalf("corrupt-wal failure does not name the wal; output:\n%s", out)
	}
}

func getScore(t *testing.T, base string, a, b int) float64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/similarity?a=%d&b=%d", base, a, b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("similarity: %d", resp.StatusCode)
	}
	var out struct {
		Score float64 `json:"score"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Score
}

// Command simrankbench is the serving load harness: it drives a running
// simrankd with a mixed read/write workload and reports client-observed
// latency percentiles per class — the numbers that prove (or disprove)
// a serving-path change like the row-parallel update write-back.
//
// The harness is closed-loop by default: -conns goroutines each keep one
// request in flight, so measured latency is pure service latency. With
// -rate > 0 each connection paces itself to its share of the target
// op rate (an open-ish loop), so queueing delay shows up in the tail the
// way a real client would see it.
//
// Reads are GET /similarity and GET /topkfor (50/50); writes are
// POST /updates?wait=1 — acknowledged only after the update's batch has
// committed and its view published, so the write percentiles include
// the full coalescing-pipeline + incremental-update cost. Each
// connection mutates only edges whose source lies in its own slice of
// the node space and tracks what it inserted, so requests never
// conflict across connections and deletes always target live edges.
//
// Output is one JSON document (default BENCH_serving.json) with the
// latency summary per class plus the server's final /stats snapshot,
// so the run's server-side gauges (update_p50_us, coalescing factor,
// worker count) land next to the client-side numbers they explain.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"sync"
	"time"
)

type benchConfig struct {
	Addr       string  `json:"addr"`
	Conns      int     `json:"conns"`
	Duration   string  `json:"duration"`
	Warmup     string  `json:"warmup"`
	WriteRatio float64 `json:"write_ratio"`
	Rate       float64 `json:"rate_ops_per_sec,omitempty"`
	TopK       int     `json:"topk"`
	Seed       int64   `json:"seed"`
}

// classSummary is the per-request-class result block.
type classSummary struct {
	Count     int     `json:"count"`
	Errors    int     `json:"errors"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Us     int64   `json:"p50_us"`
	P95Us     int64   `json:"p95_us"`
	P99Us     int64   `json:"p99_us"`
	MaxUs     int64   `json:"max_us"`
}

type benchReport struct {
	Config      benchConfig     `json:"config"`
	Nodes       int             `json:"nodes"`
	DurationSec float64         `json:"duration_sec"`
	Reads       classSummary    `json:"reads"`
	Writes      classSummary    `json:"writes"`
	ServerStats json.RawMessage `json:"server_stats"`
}

// connResult is one connection's raw measurements, merged after the run.
type connResult struct {
	readUs, writeUs       []int64
	readErrs, writeErrs   int
	readCount, writeCount int
}

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "simrankd base URL")
		conns      = flag.Int("conns", 8, "concurrent connections (one request in flight each)")
		duration   = flag.Duration("duration", 30*time.Second, "measured run length")
		warmup     = flag.Duration("warmup", 2*time.Second, "load before measurement starts (excluded from stats)")
		writeRatio = flag.Float64("write-ratio", 0.1, "fraction of operations that are writes (POST /updates?wait=1)")
		rate       = flag.Float64("rate", 0, "target total ops/sec across all connections (0 = closed loop)")
		topk       = flag.Int("topk", 10, "k for the /topkfor read mix")
		seed       = flag.Int64("seed", 1, "workload RNG seed (runs are reproducible per seed)")
		out        = flag.String("out", "BENCH_serving.json", "report output path (- for stdout)")
		readyWait  = flag.Duration("ready-wait", 60*time.Second, "how long to poll /readyz before giving up")
	)
	flag.Parse()
	if *conns <= 0 || *writeRatio < 0 || *writeRatio > 1 {
		fmt.Fprintln(os.Stderr, "simrankbench: need -conns > 0 and -write-ratio in [0,1]")
		os.Exit(2)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	if err := waitReady(client, *addr, *readyWait); err != nil {
		fmt.Fprintf(os.Stderr, "simrankbench: %v\n", err)
		os.Exit(1)
	}
	n, err := nodeCount(client, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrankbench: %v\n", err)
		os.Exit(1)
	}
	if n < 2 {
		fmt.Fprintf(os.Stderr, "simrankbench: server graph has %d nodes; boot simrankd with -n or -graph first\n", n)
		os.Exit(1)
	}

	// Per-connection pacing interval for the open loop: each connection
	// carries an equal share of the target rate.
	var pace time.Duration
	if *rate > 0 {
		pace = time.Duration(float64(*conns) / *rate * float64(time.Second))
	}

	// Workers persist across the warmup and measured phases: their RNGs
	// and live-edge sets carry over, so the measured run continues the
	// warm stream instead of replaying it (a replay would re-insert the
	// warmup's edges and be rejected as duplicates).
	results := make([]connResult, *conns)
	workers := make([]*worker, *conns)
	for id := 0; id < *conns; id++ {
		workers[id] = &worker{
			client: client,
			addr:   *addr,
			n:      n,
			conns:  *conns,
			id:     id,
			topk:   *topk,
			ratio:  *writeRatio,
			rng:    rand.New(rand.NewSource(*seed + int64(id)*7919)),
			res:    &results[id],
		}
	}
	run := func(d time.Duration, measure bool) {
		deadline := time.Now().Add(d)
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.loop(deadline, pace, measure)
			}(w)
		}
		wg.Wait()
	}

	if *warmup > 0 {
		run(*warmup, false)
	}
	start := time.Now()
	run(*duration, true)
	elapsed := time.Since(start)

	var reads, writes []int64
	var report benchReport
	for i := range results {
		r := &results[i]
		reads = append(reads, r.readUs...)
		writes = append(writes, r.writeUs...)
		report.Reads.Errors += r.readErrs
		report.Writes.Errors += r.writeErrs
		report.Reads.Count += r.readCount
		report.Writes.Count += r.writeCount
	}
	summarize(&report.Reads, reads, elapsed)
	summarize(&report.Writes, writes, elapsed)
	report.Config = benchConfig{
		Addr: *addr, Conns: *conns, Duration: duration.String(),
		Warmup: warmup.String(), WriteRatio: *writeRatio, Rate: *rate,
		TopK: *topk, Seed: *seed,
	}
	report.Nodes = n
	report.DurationSec = elapsed.Seconds()
	if body, err := get(client, *addr+"/stats"); err == nil {
		report.ServerStats = json.RawMessage(body)
	}

	enc, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrankbench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simrankbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr,
		"simrankbench: %d reads (p50 %dµs p99 %dµs), %d acked writes (p50 %dµs p99 %dµs) in %.1fs\n",
		report.Reads.Count, report.Reads.P50Us, report.Reads.P99Us,
		report.Writes.Count, report.Writes.P50Us, report.Writes.P99Us,
		elapsed.Seconds())
}

// worker is one closed-loop connection: it owns the edges whose source
// node falls in its residue class (source % conns == id), so its
// inserts and deletes never conflict with another connection's.
type worker struct {
	client *http.Client
	addr   string
	n      int
	conns  int
	id     int
	topk   int
	ratio  float64
	rng    *rand.Rand
	res    *connResult
	// live is this connection's inserted-and-not-yet-deleted edge list,
	// with a membership set so inserts never re-add a live edge (the
	// server rejects duplicate inserts, and a rejection is a harness bug,
	// not a server latency sample).
	live    [][2]int
	liveSet map[[2]int]bool
}

func (w *worker) loop(deadline time.Time, pace time.Duration, measure bool) {
	next := time.Now()
	for time.Now().Before(deadline) {
		if pace > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(pace)
		}
		if w.rng.Float64() < w.ratio {
			w.write(measure)
		} else {
			w.read(measure)
		}
	}
}

// ownSource maps a random draw onto this connection's residue class.
func (w *worker) ownSource() int {
	span := (w.n + w.conns - 1 - w.id) / w.conns // sources ≡ id (mod conns)
	if span <= 0 {
		return w.id % w.n
	}
	return w.rng.Intn(span)*w.conns + w.id
}

func (w *worker) write(measure bool) {
	var body []byte
	// Grow the live set until it holds a few edges, then hover: half the
	// writes insert, half delete, so the graph neither empties nor
	// densifies over a long run.
	if w.liveSet == nil {
		w.liveSet = make(map[[2]int]bool)
	}
	e, insert := w.pickEdge()
	if insert {
		w.live = append(w.live, e)
		w.liveSet[e] = true
		body = fmt.Appendf(nil, `{"from":%d,"to":%d,"op":"insert"}`, e[0], e[1])
	} else {
		body = fmt.Appendf(nil, `{"from":%d,"to":%d,"op":"delete"}`, e[0], e[1])
	}
	start := time.Now()
	resp, err := w.client.Post(w.addr+"/updates?wait=1", "application/json", bytes.NewReader(body))
	us := time.Since(start).Microseconds()
	ok := err == nil && resp.StatusCode < 300
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if !measure {
		return
	}
	w.res.writeCount++
	if ok {
		w.res.writeUs = append(w.res.writeUs, us)
	} else {
		w.res.writeErrs++
	}
}

// pickEdge chooses the next mutation: insert a fresh edge (returned
// with insert=true, already guaranteed absent from the live set) or
// delete a live one (removed from the tracking structures here; the
// caller just sends it).
func (w *worker) pickEdge() (e [2]int, insert bool) {
	if len(w.live) < 4 || (len(w.live) < 64 && w.rng.Intn(2) == 0) {
		for tries := 0; tries < 16; tries++ {
			from := w.ownSource()
			to := w.rng.Intn(w.n - 1)
			if to >= from {
				to++
			}
			e = [2]int{from, to}
			if !w.liveSet[e] {
				return e, true
			}
		}
		// The residue class is saturated near the hover cap; fall through
		// to a delete, which is always valid.
	}
	i := w.rng.Intn(len(w.live))
	e = w.live[i]
	w.live[i] = w.live[len(w.live)-1]
	w.live = w.live[:len(w.live)-1]
	delete(w.liveSet, e)
	return e, false
}

func (w *worker) read(measure bool) {
	var url string
	if w.rng.Intn(2) == 0 {
		a, b := w.rng.Intn(w.n), w.rng.Intn(w.n)
		url = fmt.Sprintf("%s/similarity?a=%d&b=%d", w.addr, a, b)
	} else {
		url = fmt.Sprintf("%s/topkfor?node=%d&k=%d", w.addr, w.rng.Intn(w.n), w.topk)
	}
	start := time.Now()
	resp, err := w.client.Get(url)
	us := time.Since(start).Microseconds()
	ok := err == nil && resp.StatusCode < 300
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if !measure {
		return
	}
	w.res.readCount++
	if ok {
		w.res.readUs = append(w.res.readUs, us)
	} else {
		w.res.readErrs++
	}
}

func summarize(cs *classSummary, us []int64, elapsed time.Duration) {
	cs.OpsPerSec = float64(cs.Count) / elapsed.Seconds()
	if len(us) == 0 {
		return
	}
	slices.Sort(us)
	cs.P50Us = us[(len(us)-1)*50/100]
	cs.P95Us = us[(len(us)-1)*95/100]
	cs.P99Us = us[(len(us)-1)*99/100]
	cs.MaxUs = us[len(us)-1]
}

func waitReady(client *http.Client, addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(addr + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not ready after %s: %v", addr, wait, err)
			}
			return fmt.Errorf("server at %s not ready after %s", addr, wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func nodeCount(client *http.Client, addr string) (int, error) {
	body, err := get(client, addr+"/stats")
	if err != nil {
		return 0, err
	}
	var st struct {
		Nodes int `json:"nodes"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return 0, fmt.Errorf("decoding /stats: %w", err)
	}
	return st.Nodes, nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

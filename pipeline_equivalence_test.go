package simrank

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// streamModel tracks the edge set an update stream should produce, so a
// fresh engine over the final graph can arbitrate the incremental one.
type streamModel struct {
	n     int
	edges map[Edge]bool
}

func (m *streamModel) edgeList() []Edge {
	out := make([]Edge, 0, len(m.edges))
	for e, ok := range m.edges {
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// randomUpdate returns a valid-in-sequence update against the model
// state (insert if the random pair is absent, delete if present) and
// folds it into the model.
func (m *streamModel) randomUpdate(rng *rand.Rand) Update {
	e := Edge{From: rng.Intn(m.n), To: rng.Intn(m.n)}
	up := Update{Edge: e, Insert: !m.edges[e]}
	m.edges[e] = up.Insert
	return up
}

// TestPipelineEquivalenceRandomStreams is the property test for the
// whole mutation surface: random insert/delete streams on random graphs,
// folded through arbitrary interleavings of Apply, ApplyBatch (whose
// batch sizes straddle the recompute crossover) and AddNodes, must land
// on the same similarities as a fresh engine built over the final edge
// set — within 1e-12, with pruning on and off, sequentially and at
// every parallel worker count the incremental write-back partitions
// over (2, 4, 8 — plus oversubscription relative to the tiny graphs,
// which exercises the empty-range edges of the row partition).
func TestPipelineEquivalenceRandomStreams(t *testing.T) {
	for _, disablePruning := range []bool{false, true} {
		for _, workers := range []int{1, 2, 4, 8} {
			// K = 60 pushes the iterative truncation error C^{K+1} ≈ 3e-14
			// below the 1e-12 gate, so any residual difference is a real
			// divergence between the incremental and batch paths, not
			// truncation noise. The backend comes from the suite's
			// SIMRANK_BACKEND hook (dense by default), so CI's matrix entry
			// replays the whole property against the packed store.
			opts := withTestBackend(t, Options{K: 60, DisablePruning: disablePruning, Workers: workers})
			name := fmt.Sprintf("pruning=%v/workers=%d", !disablePruning, workers)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(workers)*100 + int64(len(name))))
				for trial := 0; trial < 3; trial++ {
					runRandomStream(t, rng, opts)
				}
			})
		}
	}
}

func runRandomStream(t *testing.T, rng *rand.Rand, opts Options) {
	t.Helper()
	model := &streamModel{n: 5 + rng.Intn(5), edges: make(map[Edge]bool)}
	for i := 0; i < model.n; i++ {
		for j := 0; j < model.n; j++ {
			if i != j && rng.Float64() < 0.2 {
				model.edges[Edge{From: i, To: j}] = true
			}
		}
	}
	eng, err := NewEngine(model.n, model.edgeList(), opts)
	if err != nil {
		t.Fatal(err)
	}

	var trace []string
	for step := 0; step < 14; step++ {
		switch op := rng.Intn(4); op {
		case 0, 1: // single incremental update
			up := model.randomUpdate(rng)
			trace = append(trace, up.String())
			if _, err := eng.Apply(up); err != nil {
				t.Fatalf("step %d %v (trace %v): %v", step, up, trace, err)
			}
		case 2: // batch: size 1..6 straddles the recompute threshold
			k := 1 + rng.Intn(6)
			ups := make([]Update, k)
			for i := range ups {
				ups[i] = model.randomUpdate(rng)
				trace = append(trace, ups[i].String())
			}
			if err := eng.ApplyBatch(ups); err != nil {
				t.Fatalf("step %d batch %v (trace %v): %v", step, ups, trace, err)
			}
		case 3: // grow the graph, then keep updating across the boundary
			count := 1 + rng.Intn(2)
			trace = append(trace, fmt.Sprintf("addnodes(%d)", count))
			if _, err := eng.AddNodes(count); err != nil {
				t.Fatal(err)
			}
			model.n += count
		}
	}

	fresh, err := NewEngine(model.n, model.edgeList(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if eng.N() != model.n || eng.M() != len(model.edgeList()) {
		t.Fatalf("graph diverged from model: engine %d/%d, model %d/%d (trace %v)",
			eng.N(), eng.M(), model.n, len(model.edgeList()), trace)
	}
	if opts.Backend == BackendApprox {
		// No materialized matrix on the sampling tier — and no tolerance
		// either: walk repair must land on the exact index a fresh build
		// at the same seed produces, so every pair compares bit-equal.
		for a := 0; a < model.n; a++ {
			for b := 0; b < model.n; b++ {
				if got, want := eng.Similarity(a, b), fresh.Similarity(a, b); got != want {
					t.Fatalf("repaired s(%d,%d) = %v, fresh %v (trace %v)", a, b, got, want, trace)
				}
			}
		}
		return
	}
	if d := matrix.MaxAbsDiff(eng.Similarities(), fresh.Similarities()); d > 1e-12 {
		t.Fatalf("incremental stream drifted %g from fresh engine (n=%d, trace %v)", d, model.n, trace)
	}
}

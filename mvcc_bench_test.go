package simrank

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkContendedReads measures the read path with and without a
// concurrent writer streaming updates — the number the MVCC refactor
// exists for. Each case reports the standard ns/op plus sampled p50/p99
// per-read latencies (custom metrics, so cmd/benchjson lands them in
// BENCH_mvcc.json). Under the old engine-wide RWMutex the "writer"
// cases collapsed to the writer's update latency; with MVCC views,
// reader latency must stay within ~2× of the idle case.
func BenchmarkContendedReads(b *testing.B) {
	for _, backend := range []Backend{BackendDense, BackendPacked} {
		const (
			n = 800
			m = 4 * n
		)
		rng := rand.New(rand.NewSource(17))
		var edges []Edge
		seen := map[Edge]bool{}
		for len(edges) < m {
			e := Edge{From: rng.Intn(n), To: rng.Intn(n)}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
		ce, err := NewConcurrentEngine(n, edges, Options{C: 0.6, K: 8, Backend: backend})
		if err != nil {
			b.Fatal(err)
		}
		for _, withWriter := range []bool{false, true} {
			mode := "idle"
			if withWriter {
				mode = "writer"
			}
			b.Run(fmt.Sprintf("%s/%s", backend, mode), func(b *testing.B) {
				stop := make(chan struct{})
				var wg sync.WaitGroup
				if withWriter {
					wg.Add(1)
					go func() {
						defer wg.Done()
						e0 := edges[0]
						for {
							select {
							case <-stop:
								return
							default:
							}
							if _, err := ce.Delete(e0.From, e0.To); err != nil {
								b.Error(err)
								return
							}
							if _, err := ce.Insert(e0.From, e0.To); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}

				var mu sync.Mutex
				var lat []time.Duration
				var seq atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					local := make([]time.Duration, 0, 1024)
					r := seq.Add(1)
					i := int(r)
					for pb.Next() {
						i++
						a := i % n
						t0 := time.Now()
						_ = ce.TopKFor(a, 10)
						_ = ce.Similarity(a, (a+7)%n)
						_, _ = ce.Size()
						local = append(local, time.Since(t0))
					}
					mu.Lock()
					lat = append(lat, local...)
					mu.Unlock()
				})
				b.StopTimer()
				close(stop)
				wg.Wait()

				if len(lat) > 0 {
					sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
					p := func(q float64) float64 {
						idx := int(q * float64(len(lat)-1))
						return float64(lat[idx].Nanoseconds())
					}
					b.ReportMetric(p(0.50), "p50-read-ns")
					b.ReportMetric(p(0.99), "p99-read-ns")
				}
			})
		}
	}
}

// TestContendedReaderThroughput is the acceptance gate behind the
// benchmark: reader throughput with a writer streaming updates must
// stay within a small factor of the idle throughput (the RWMutex design
// stalled readers for every full update). Generous 4× bound so CI noise
// never flakes it; the benchmark records the real ratio (typically well
// under 2×).
func TestContendedReaderThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison is not meaningful under -short")
	}
	const (
		n        = 400
		duration = 300 * time.Millisecond
	)
	rng := rand.New(rand.NewSource(23))
	var edges []Edge
	seen := map[Edge]bool{}
	for len(edges) < 3*n {
		e := Edge{From: rng.Intn(n), To: rng.Intn(n)}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	ce, err := NewConcurrentEngine(n, edges, Options{C: 0.6, K: 8})
	if err != nil {
		t.Fatal(err)
	}

	measure := func(withWriter bool) int64 {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if withWriter {
			wg.Add(1)
			go func() {
				defer wg.Done()
				e0 := edges[0]
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := ce.Delete(e0.From, e0.To); err != nil {
						t.Error(err)
						return
					}
					if _, err := ce.Insert(e0.From, e0.To); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		var reads atomic.Int64
		const readers = 4
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := r; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_ = ce.TopKFor(i%n, 10)
					reads.Add(1)
				}
			}(r)
		}
		time.Sleep(duration)
		close(stop)
		wg.Wait()
		return reads.Load()
	}

	idle := measure(false)
	contended := measure(true)
	if idle == 0 || contended == 0 {
		t.Fatalf("no reads measured (idle=%d contended=%d)", idle, contended)
	}
	ratio := float64(idle) / float64(contended)
	t.Logf("reader throughput: idle=%d contended=%d (degradation %.2fx)", idle, contended, ratio)
	if ratio > 4 {
		t.Fatalf("contended reader throughput degraded %.1fx vs idle; MVCC promises <2x (gate at 4x for CI noise)", ratio)
	}
}

package simrank

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCacheEquivalenceRandomStreams is the property test for the query
// cache: a random stream of mixed Apply / ApplyBatch / AddNodes /
// Recompute, interleaved with TopK / TopKFor / Similarity queries, must
// produce bit-identical answers with the cache on and off — across
// pruning on/off and Workers ∈ {1, 4}. The cached engine runs with a
// deliberately tiny capacity so LRU eviction, k-upgrades (a larger k
// after a smaller one) and k-prefix hits are all exercised, and every
// query is asked twice so the second answer comes from the warm cache.
func TestCacheEquivalenceRandomStreams(t *testing.T) {
	for _, disablePruning := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			// The suite's backend (dense, or packed under CI's
			// SIMRANK_BACKEND matrix entry) carries the whole property:
			// caching must be bit-transparent on every exact store.
			opts := withTestBackend(t, Options{K: 20, DisablePruning: disablePruning, Workers: workers})
			name := fmt.Sprintf("pruning=%v/workers=%d", !disablePruning, workers)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(workers)*1000 + int64(len(name))))
				for trial := 0; trial < 3; trial++ {
					runCachedStream(t, rng, opts)
				}
			})
		}
	}
}

func runCachedStream(t *testing.T, rng *rand.Rand, opts Options) {
	t.Helper()
	model := &streamModel{n: 6 + rng.Intn(5), edges: make(map[Edge]bool)}
	for i := 0; i < model.n; i++ {
		for j := 0; j < model.n; j++ {
			if i != j && rng.Float64() < 0.25 {
				model.edges[Edge{From: i, To: j}] = true
			}
		}
	}
	plain, err := NewEngine(model.n, model.edgeList(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cachedOpts := opts
	cachedOpts.TopKCacheRows = 4 // tiny: forces LRU eviction under query load
	cached, err := NewEngine(model.n, model.edgeList(), cachedOpts)
	if err != nil {
		t.Fatal(err)
	}

	// compare asks both engines the same queries, twice each (cold then
	// warm), demanding bitwise-equal pairs. The k schedule walks down
	// then up so prefix hits and k-upgrades both happen against entries
	// cached moments earlier.
	compare := func(step int) {
		t.Helper()
		for rep := 0; rep < 2; rep++ {
			for _, k := range []int{3, 1, model.n + 3} {
				want, got := plain.TopK(k), cached.TopK(k)
				if len(want) != len(got) {
					t.Fatalf("step %d TopK(%d): cached %d pairs, want %d", step, k, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("step %d TopK(%d)[%d]: cached %+v, want %+v", step, k, i, got[i], want[i])
					}
				}
				for _, a := range []int{0, rng.Intn(model.n), model.n - 1} {
					want, got := plain.TopKFor(a, k), cached.TopKFor(a, k)
					if len(want) != len(got) {
						t.Fatalf("step %d TopKFor(%d,%d): cached %d pairs, want %d", step, a, k, len(got), len(want))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("step %d TopKFor(%d,%d)[%d]: cached %+v, want %+v", step, a, k, i, got[i], want[i])
						}
					}
				}
			}
			a, b := rng.Intn(model.n), rng.Intn(model.n)
			if w, g := plain.Similarity(a, b), cached.Similarity(a, b); w != g {
				t.Fatalf("step %d Similarity(%d,%d): cached %v, want %v", step, a, b, g, w)
			}
		}
	}

	compare(-1)
	for step := 0; step < 16; step++ {
		switch op := rng.Intn(6); op {
		case 0, 1: // single incremental update
			up := model.randomUpdate(rng)
			if _, err := plain.Apply(up); err != nil {
				t.Fatalf("step %d %v: %v", step, up, err)
			}
			if _, err := cached.Apply(up); err != nil {
				t.Fatalf("step %d %v (cached): %v", step, up, err)
			}
		case 2, 3: // batch straddling the recompute crossover
			k := 1 + rng.Intn(6)
			ups := make([]Update, k)
			for i := range ups {
				ups[i] = model.randomUpdate(rng)
			}
			if err := plain.ApplyBatch(ups); err != nil {
				t.Fatalf("step %d batch: %v", step, err)
			}
			if err := cached.ApplyBatch(ups); err != nil {
				t.Fatalf("step %d batch (cached): %v", step, err)
			}
		case 4: // grow, then keep querying across the boundary
			count := 1 + rng.Intn(2)
			if _, err := plain.AddNodes(count); err != nil {
				t.Fatal(err)
			}
			if _, err := cached.AddNodes(count); err != nil {
				t.Fatal(err)
			}
			model.n += count
		case 5:
			plain.Recompute()
			cached.Recompute()
		}
		compare(step)
	}

	// The stream must actually have exercised the cache, not bypassed it.
	// Except on approx, where bypassing IS the contract (a sampled list
	// shorter than k is not an exhausted row, so caching it would
	// truncate larger-k answers); there the property above checked that
	// the bypass is bit-transparent, and the stats must stay empty.
	st := cached.CacheStats()
	if opts.Backend == BackendApprox {
		if st.RowHits != 0 || st.RowMisses != 0 {
			t.Fatalf("approx queries touched the row cache: %+v", st)
		}
		return
	}
	if st.RowHits == 0 || st.RowMisses == 0 {
		t.Fatalf("stream did not exercise the cache: %+v", st)
	}
}

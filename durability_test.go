package simrank

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/matrix"
	"repro/internal/wal"
)

// driveWALStream runs a fixed mutation schedule — unit applies, a
// coalesced batch, node growth, a recompute, then more unit applies —
// against ce, so the log exercises every record kind. Returns the
// number of committed mutations (= WAL records).
func driveWALStream(t *testing.T, ce *ConcurrentEngine) int {
	t.Helper()
	records := 0
	step := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		records++
	}
	_, err := ce.Insert(0, 2)
	step(err)
	_, err = ce.Insert(2, 3)
	step(err)
	step(ce.ApplyBatch([]Update{
		{Edge: Edge{From: 3, To: 4}, Insert: true},
		{Edge: Edge{From: 4, To: 0}, Insert: true},
		{Edge: Edge{From: 0, To: 2}, Insert: false},
	}))
	first, err := ce.AddNodes(2)
	step(err)
	_, err = ce.Insert(first, 1)
	step(err)
	step(ce.Recompute())
	_, err = ce.Delete(2, 3)
	step(err)
	return records
}

// assertEnginesIdentical requires two engines serving the same backend
// to agree bit-for-bit: size, edges, epoch, every similarity.
func assertEnginesIdentical(t *testing.T, want, got *ConcurrentEngine) {
	t.Helper()
	wn, wm := want.Size()
	gn, gm := got.Size()
	if wn != gn || wm != gm {
		t.Fatalf("size (%d, %d), want (%d, %d)", gn, gm, wn, wm)
	}
	if want.Epoch() != got.Epoch() {
		t.Fatalf("epoch %d, want %d", got.Epoch(), want.Epoch())
	}
	for i := 0; i < wn; i++ {
		for j := 0; j < wn; j++ {
			if want.HasEdge(i, j) != got.HasEdge(i, j) {
				t.Fatalf("edge (%d,%d) presence differs", i, j)
			}
		}
	}
	ws, gs := want.Similarities(), got.Similarities()
	if ws == nil || gs == nil {
		t.Fatal("nil similarity matrix on a materializable backend")
	}
	if d := matrix.MaxAbsDiff(ws, gs); d != 0 {
		t.Fatalf("similarities drifted %g from the live engine; replay must be bit-identical", d)
	}
}

// TestWALRoundTripColdStart is the core durability property at the
// engine level: every committed mutation — unit, batch, node growth,
// recompute — lands in the log before its view publishes, and replaying
// the log onto a fresh engine built from the same initial graph
// reproduces the live engine bit-for-bit, epochs included.
func TestWALRoundTripColdStart(t *testing.T) {
	edges := []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}
	for _, backend := range []Backend{BackendDense, BackendPacked} {
		t.Run(string(backend), func(t *testing.T) {
			opts := Options{K: 8, Workers: 1, Backend: backend}
			dir := t.TempDir()
			w, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ce, err := NewConcurrentEngine(5, edges, opts)
			if err != nil {
				t.Fatal(err)
			}
			ce.SetWAL(w)
			records := driveWALStream(t, ce)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if got := int(w.Stats().Appends); got != records {
				t.Fatalf("logged %d records for %d commits", got, records)
			}

			// "Crash": the only survivor is the log. Boot from the initial
			// conditions and replay.
			w2, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			fresh, err := NewEngine(5, edges, opts)
			if err != nil {
				t.Fatal(err)
			}
			c2 := WrapEngine(fresh)
			applied, err := c2.ReplayWAL(context.Background(), w2)
			if err != nil {
				t.Fatal(err)
			}
			if applied != records {
				t.Fatalf("replayed %d records, want %d", applied, records)
			}
			assertEnginesIdentical(t, ce, c2)
		})
	}
}

// TestWALReplayFromSnapshot is the real boot path: restore the newest
// snapshot (carrying its epoch in the v3 header), then replay only the
// log tail past it.
func TestWALReplayFromSnapshot(t *testing.T) {
	edges := []Edge{{From: 0, To: 1}, {From: 1, To: 2}}
	opts := Options{K: 8, Workers: 1}
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewConcurrentEngine(5, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	ce.SetWAL(w)

	// Part one of the stream, then a mid-stream snapshot.
	if _, err := ce.Insert(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Insert(3, 4); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := ce.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	snapEpoch := ce.Epoch()

	// Part two: everything the restore must recover from the log alone.
	if err := ce.ApplyBatch([]Update{
		{Edge: Edge{From: 4, To: 0}, Insert: true},
		{Edge: Edge{From: 0, To: 1}, Insert: false},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Insert(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != snapEpoch {
		t.Fatalf("restored epoch %d, want %d", restored.Epoch(), snapEpoch)
	}
	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	c2 := WrapEngine(restored)
	applied, err := c2.ReplayWAL(context.Background(), w2)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 { // exactly the post-snapshot records
		t.Fatalf("replayed %d records, want 2", applied)
	}
	assertEnginesIdentical(t, ce, c2)
}

// TestWALReplaySnapshotNewerThanLog: restoring a snapshot taken at (or
// after) the log tail replays nothing — a clean no-op, not an error.
func TestWALReplaySnapshotNewerThanLog(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewConcurrentEngine(4, []Edge{{From: 0, To: 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce.SetWAL(w)
	if _, err := ce.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := ce.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := ReadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	c2 := WrapEngine(restored)
	applied, err := c2.ReplayWAL(context.Background(), w2)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("replayed %d records onto a newer snapshot, want 0", applied)
	}
	assertEnginesIdentical(t, ce, c2)
}

// TestWALReplayAbortsOnContext: a canceled context (the SIGTERM path)
// stops replay between records with the context's error, leaving the
// half-replayed engine for the caller to discard.
func TestWALReplayAbortsOnContext(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewConcurrentEngine(4, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce.SetWAL(w)
	if _, err := ce.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	fresh, err := NewEngine(4, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := WrapEngine(fresh)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	applied, err := c2.ReplayWAL(ctx, w2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if applied != 0 {
		t.Fatalf("applied %d records under a canceled context", applied)
	}
	if c2.Epoch() != 0 {
		t.Fatalf("aborted replay advanced the epoch to %d", c2.Epoch())
	}
}

// TestWALReplayDivergentBaseFailsLoudly: a log that disagrees with the
// state it claims to extend — here, an insert of an edge the base
// already has — must abort replay, not silently skip ahead.
func TestWALReplayDivergentBaseFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewConcurrentEngine(4, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce.SetWAL(w)
	if _, err := ce.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// The wrong base: it already holds the edge the log inserts.
	wrong, err := NewEngine(4, []Edge{{From: 0, To: 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := WrapEngine(wrong)
	if _, err := c2.ReplayWAL(context.Background(), w2); err == nil {
		t.Fatal("replay onto a divergent base succeeded silently")
	}
}

// TestWALAppendFailureKeepsCommit pins the ErrDurability contract: when
// the log cannot take the record, the mutation stays committed and
// published (readers and ?wait=1 waiters already may have seen it) and
// the error tells the caller durability — not the mutation — failed.
func TestWALAppendFailureKeepsCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce, err := NewConcurrentEngine(4, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ce.SetWAL(w)
	if err := w.Close(); err != nil { // every Append from here fails
		t.Fatal(err)
	}

	before := ce.Epoch()
	_, err = ce.Insert(0, 1)
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("error = %v, want ErrDurability", err)
	}
	if !ce.HasEdge(0, 1) {
		t.Fatal("durability failure rolled back a committed insert")
	}
	if ce.Epoch() <= before {
		t.Fatal("durability failure suppressed the view publish")
	}

	err = ce.ApplyBatch([]Update{{Edge: Edge{From: 1, To: 2}, Insert: true}})
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("batch error = %v, want ErrDurability", err)
	}
	if !ce.HasEdge(1, 2) {
		t.Fatal("durability failure rolled back a committed batch")
	}
}

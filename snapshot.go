package simrank

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/simstore"
)

// Snapshot format: a small length-prefixed binary layout with a CRC32
// trailer, so a long-lived engine (hours of folded updates) can be
// persisted and restored without recomputing the O(Kd'n²) batch step.
// The header is versioned per similarity-store backend:
//
// Version 1 — the dense backend, unchanged since the first release (old
// files restore forever):
//
//	magic "SIMR" | version=1 u32 | C f64 | K u32 | flags u32 |
//	n u32 | m u32 | m × (from u32, to u32) |
//	n² × f64 (row-major S) | crc32(IEEE) of everything above
//
// Version 2 — non-dense backends gain a backend id after the flags and a
// backend-specific payload after the edges:
//
//	magic "SIMR" | version=2 u32 | C f64 | K u32 | flags u32 |
//	backend u32 | n u32 | m u32 | m × (from u32, to u32) |
//	payload | crc32(IEEE)
//
//	backend 1 (packed): payload = n(n+1)/2 × f64, the upper triangle
//	  row-major — the file is ~half a dense snapshot, like the store.
//	backend 2 (approx): payload = walks u32 | seed u64; there is no
//	  matrix — the store is rebuilt from the graph on restore.
//
// Version 3 — the current write format for every backend: the backend
// id is always present (0 = dense now has a code) and the engine's
// epoch at serialization time follows it, so a boot that restores the
// snapshot knows exactly where in the write-ahead log to resume
// replay (records with epoch ≤ the header's are already inside the
// file; see internal/wal):
//
//	magic "SIMR" | version=3 u32 | C f64 | K u32 | flags u32 |
//	backend u32 | epoch u64 | n u32 | m u32 | m × (from u32, to u32) |
//	payload | crc32(IEEE)
//
// Version 4 — written only for the approx backend, now that it absorbs
// updates by incremental walk repair: the payload gains the repair
// -generation counter after the seed. The walks themselves are a pure
// function of (graph, seed, walks, K) — the derived-seed invariant — so
// the repaired walk set is persisted *by persisting the graph*: restore
// rebuilds walks bit-identical to the writer's repaired state, and only
// the generation counter needs carrying. Dense and packed keep writing
// v3 — their format did not change:
//
//	magic "SIMR" | version=4 u32 | C f64 | K u32 | flags u32 |
//	backend=2 u32 | epoch u64 | n u32 | m u32 | m × (from u32, to u32) |
//	walks u32 | seed u64 | repairGen u64 | crc32(IEEE)
//
// v1 and v2 files restore forever (with epoch 0 — they predate the
// WAL, so there is never a log tail above them); v3 approx files
// restore with repair generation 0.
const (
	snapshotMagic    = "SIMR"
	snapshotVersion  = 1
	snapshotVersion2 = 2
	snapshotVersion3 = 3
	snapshotVersion4 = 4
	flagNoPruning    = 1 << 0

	backendCodeDense  = 0
	backendCodePacked = 1
	backendCodeApprox = 2
)

// WriteSnapshot serializes the engine's graph, options, epoch and
// similarity store to w in the version-3 format.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	return writeSnapshotData(w, e.opts, e.epoch, e.g.N(), e.g.Edges(), e.s)
}

// writeSnapshotData is the backend-agnostic serializer behind both
// Engine.WriteSnapshot (live writer state) and the MVCC facade's
// view-based snapshot (sealed state at one epoch): it needs only the
// read surface, so a sealed store and graph snapshot serialize exactly
// like live ones. The recorded epoch is the WAL-replay floor a restore
// resumes from.
func writeSnapshotData(w io.Writer, opts Options, epoch uint64, n int, edges []graph.Edge, store simstore.Store) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("simrank: snapshot write: %w", err)
	}
	var flags uint32
	if opts.DisablePruning {
		flags |= flagNoPruning
	}
	code := uint32(backendCodeDense)
	version := uint32(snapshotVersion3)
	switch opts.Backend {
	case BackendPacked:
		code = backendCodePacked
	case BackendApprox:
		code = backendCodeApprox
		// Only approx moved to v4 (repair-generation counter in the
		// payload); the exact backends' format is unchanged, so their
		// files stay readable by pre-v4 binaries.
		version = snapshotVersion4
	}
	hdr := []any{
		version,
		math.Float64bits(opts.C),
		uint32(opts.K),
		flags,
		code,
		epoch,
		uint32(n),
		uint32(len(edges)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("simrank: snapshot header: %w", err)
		}
	}
	for _, edge := range edges {
		if err := binary.Write(bw, binary.LittleEndian, uint32(edge.From)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(edge.To)); err != nil {
			return err
		}
	}
	if err := writeStorePayload(bw, store); err != nil {
		return err
	}
	// Flush the payload so the CRC covers exactly the payload bytes, then
	// append the (unhashed) trailer.
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// writeStorePayload emits the backend-specific tail of the snapshot.
func writeStorePayload(bw *bufio.Writer, store simstore.Store) error {
	writeFloats := func(vals []float64) error {
		var buf [8]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		return nil
	}
	switch s := store.(type) {
	case *simstore.Dense:
		return writeFloats(s.Matrix().Data)
	case *simstore.Packed:
		// The packed row segments are exactly the upper triangle in the
		// payload's row-major order.
		n := s.N()
		for i := 0; i < n; i++ {
			if err := writeFloats(s.UpperRow(i)); err != nil {
				return err
			}
		}
		return nil
	case *simstore.Approx:
		if err := binary.Write(bw, binary.LittleEndian, uint32(s.Walks())); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(s.Seed())); err != nil {
			return err
		}
		return binary.Write(bw, binary.LittleEndian, s.RepairGen())
	}
	return fmt.Errorf("simrank: snapshot: unknown store type %T", store)
}

// ReadSnapshot restores an engine previously written by WriteSnapshot.
// The similarity matrix is trusted as-is after the CRC check, not
// recomputed; use Recompute to rebuild it from the graph if desired.
// The compute workspace (transition matrices, update scratch) is not part
// of the snapshot — a restored engine rebuilds it lazily from the graph
// on its first update or recompute. Options.Workers and
// Options.TopKCacheRows are runtime knobs and are likewise not persisted;
// restored engines use the GOMAXPROCS default with the query cache off
// until SetWorkers/SetTopKCacheRows say otherwise (starting the cache
// cold is also what keeps a restore trivially consistent — there is
// nothing stale to invalidate).
//
// ReadSnapshot is safe on hostile input: its allocations are bounded by
// the bytes actually consumed, never by the header's claimed dimensions.
// Edges and matrix entries are parsed into incrementally grown buffers,
// and the O(n) graph structure is only built once the full payload has
// arrived and its checksum verified — a 50-byte input claiming 2²⁴ nodes
// fails with an error long before any n-sized allocation happens.
func ReadSnapshot(r io.Reader) (*Engine, error) {
	// The tee sits *above* the buffered reader so the CRC sees exactly
	// the bytes the parser consumes — bufio read-ahead stays out of it.
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	tee := io.TeeReader(br, crc)

	magic := make([]byte, 4)
	if _, err := io.ReadFull(tee, magic); err != nil {
		return nil, fmt.Errorf("simrank: snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("simrank: bad snapshot magic %q", magic)
	}
	var (
		version, k, flags, n, m uint32
		cBits, epoch            uint64
	)
	for _, p := range []any{&version, &cBits, &k, &flags} {
		if err := binary.Read(tee, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("simrank: snapshot header: %w", err)
		}
	}
	if version < snapshotVersion || version > snapshotVersion4 {
		return nil, fmt.Errorf("simrank: unsupported snapshot version %d", version)
	}
	backend := BackendDense
	if version >= snapshotVersion2 {
		var code uint32
		if err := binary.Read(tee, binary.LittleEndian, &code); err != nil {
			return nil, fmt.Errorf("simrank: snapshot header: %w", err)
		}
		switch code {
		case backendCodeDense:
			// v2 writers never emitted a dense code; only v3 files carry it.
			if version == snapshotVersion2 {
				return nil, fmt.Errorf("simrank: v2 snapshot names unknown backend code %d", code)
			}
		case backendCodePacked:
			backend = BackendPacked
		case backendCodeApprox:
			backend = BackendApprox
		default:
			return nil, fmt.Errorf("simrank: snapshot names unknown backend code %d", code)
		}
	}
	if version >= snapshotVersion3 {
		// The serialization-time epoch: the floor WAL replay resumes from.
		if err := binary.Read(tee, binary.LittleEndian, &epoch); err != nil {
			return nil, fmt.Errorf("simrank: snapshot header: %w", err)
		}
	}
	for _, p := range []any{&n, &m} {
		if err := binary.Read(tee, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("simrank: snapshot header: %w", err)
		}
	}
	c := math.Float64frombits(cBits)
	if c <= 0 || c >= 1 || k < 1 {
		return nil, fmt.Errorf("simrank: snapshot has invalid options C=%v K=%d", c, k)
	}
	const maxNodes = 1 << 24 // sanity bound against corrupt headers
	if n > maxNodes || m > maxNodes*16 {
		return nil, fmt.Errorf("simrank: snapshot dimensions implausible (n=%d m=%d)", n, m)
	}
	// Growth cap for the parse buffers: large initial capacities must be
	// earned by input actually read, so a corrupt header can make the read
	// fail but not balloon.
	const chunk = 4096
	edges := make([]graph.Edge, 0, min(int(m), chunk))
	var pair [8]byte
	for i := uint32(0); i < m; i++ {
		if _, err := io.ReadFull(tee, pair[:]); err != nil {
			return nil, fmt.Errorf("simrank: snapshot edge %d: %w", i, err)
		}
		from := binary.LittleEndian.Uint32(pair[:4])
		to := binary.LittleEndian.Uint32(pair[4:])
		if from >= n || to >= n {
			return nil, fmt.Errorf("simrank: snapshot edge %d out of range", i)
		}
		edges = append(edges, graph.Edge{From: int(from), To: int(to)})
	}
	// The store payload, still parsed into input-bounded buffers.
	var (
		vals            []float64
		approxWalks     uint32
		approxSeed      uint64
		approxRepairGen uint64
		payloadTotal    int
	)
	switch backend {
	case BackendDense:
		payloadTotal = int(n) * int(n)
	case BackendPacked:
		payloadTotal = int(n) * (int(n) + 1) / 2
	}
	if backend == BackendApprox {
		if err := binary.Read(tee, binary.LittleEndian, &approxWalks); err != nil {
			return nil, fmt.Errorf("simrank: snapshot approx params: %w", err)
		}
		if err := binary.Read(tee, binary.LittleEndian, &approxSeed); err != nil {
			return nil, fmt.Errorf("simrank: snapshot approx params: %w", err)
		}
		// The same bound construction enforces, so every persisted budget
		// restores.
		if approxWalks == 0 || approxWalks > simstore.MaxWalks {
			return nil, fmt.Errorf("simrank: snapshot approx walk budget %d implausible", approxWalks)
		}
		if version >= snapshotVersion4 {
			if err := binary.Read(tee, binary.LittleEndian, &approxRepairGen); err != nil {
				return nil, fmt.Errorf("simrank: snapshot approx params: %w", err)
			}
		}
	} else {
		vals = make([]float64, 0, min(payloadTotal, chunk))
		buf := make([]byte, 8*chunk)
		for len(vals) < payloadTotal {
			want := min(payloadTotal-len(vals), chunk)
			if _, err := io.ReadFull(tee, buf[:8*want]); err != nil {
				return nil, fmt.Errorf("simrank: snapshot matrix: %w", err)
			}
			for i := 0; i < want; i++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("simrank: snapshot matrix entry %d is %v", len(vals), v)
				}
				vals = append(vals, v)
			}
		}
	}
	want := crc.Sum32() // payload fully consumed; trailer not yet read
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("simrank: snapshot checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("simrank: snapshot checksum mismatch (corrupt or truncated)")
	}
	// Payload verified: now the O(n) structures are justified by the
	// payload bytes that actually arrived.
	g := graph.New(int(n))
	for _, e := range edges {
		if !g.AddEdge(e.From, e.To) {
			return nil, fmt.Errorf("simrank: snapshot duplicate edge %d→%d", e.From, e.To)
		}
	}
	opts := Options{C: c, K: int(k), DisablePruning: flags&flagNoPruning != 0, Backend: backend}
	var store simstore.Store
	switch backend {
	case BackendDense:
		store = simstore.WrapDense(&matrix.Dense{Rows: int(n), Cols: int(n), Data: vals})
	case BackendPacked:
		p := simstore.NewPacked(int(n))
		for i, row := 0, 0; row < int(n); row++ {
			seg := p.UpperRow(row)
			copy(seg, vals[i:i+len(seg)])
			i += len(seg)
		}
		store = p
	case BackendApprox:
		opts.ApproxWalks = int(approxWalks)
		opts.ApproxSeed = int64(approxSeed)
		// The rebuild reproduces the serialized walk set bit-identically
		// (walks are a pure function of graph and seed); only the repair
		// -generation counter has to be carried explicitly.
		a, err := simstore.NewApprox(g, c, int(k), opts.ApproxWalks, opts.ApproxSeed)
		if err != nil {
			return nil, fmt.Errorf("simrank: snapshot approx store: %w", err)
		}
		a.SetRepairGen(approxRepairGen)
		store = a
	}
	return &Engine{opts: opts.withDefaults(), g: g, s: store, epoch: epoch}, nil
}

// SnapshotWriter is anything that can serialize itself in the snapshot
// format; *Engine and *ConcurrentEngine both qualify.
type SnapshotWriter interface {
	WriteSnapshot(w io.Writer) error
}

// fileSync and dirSync are the fsync seams, swappable in tests to
// inject sync failures (a real power-loss test being unavailable to a
// unit suite). dirSync flushes a DIRECTORY's entries — the half of
// atomic-rename durability that is easy to forget: rename(2) is atomic
// in the namespace, but the new directory entry itself lives in the
// parent directory's data and can vanish on power loss until the
// directory is fsynced.
var (
	fileSync = func(f *os.File) error { return f.Sync() }
	dirSync  = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		err = fileSync(d)
		if closeErr := d.Close(); err == nil {
			// A directory-handle Close failure is a durability signal
			// like any other; do not let a deferred discard eat it.
			err = closeErr
		}
		return err
	}
)

// WriteSnapshotFile persists a snapshot to path atomically AND durably:
// the bytes go to a temp file in the same directory, the temp file is
// fsynced BEFORE the rename (so the content is on stable storage when
// the name flips) and the parent directory is fsynced AFTER it (so the
// flip itself survives power loss). A crash mid-write can never leave a
// torn snapshot where a previous good one stood, and a returned nil
// means the snapshot is durable — the write-ahead log may truncate up
// to its epoch.
func WriteSnapshotFile(src SnapshotWriter, path string) (err error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("simrank: snapshot temp file: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			// Error-path cleanup of a temp file we are abandoning: the
			// write already failed, so the Close result adds nothing.
			_ = f.Close()
			os.Remove(tmp)
		}
	}()
	if err = src.WriteSnapshot(f); err != nil {
		return err
	}
	if err = fileSync(f); err != nil {
		return fmt.Errorf("simrank: snapshot sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("simrank: snapshot close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("simrank: snapshot rename: %w", err)
	}
	if err = dirSync(filepath.Dir(path)); err != nil {
		// The rename happened but its durability is unproven; surface the
		// error so callers (snapshot-then-truncate-WAL flows in particular)
		// do not treat the snapshot as safely landed.
		return fmt.Errorf("simrank: snapshot dir sync: %w", err)
	}
	return nil
}

// ReadSnapshotFile restores an engine from a snapshot file written by
// WriteSnapshotFile (or any WriteSnapshot output saved to disk).
func ReadSnapshotFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //simrank:errok read-only handle; Close cannot corrupt an already-parsed snapshot
	return ReadSnapshot(f)
}

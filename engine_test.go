package simrank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/matrix"
)

func mustEngine(t *testing.T, n int, edges []Edge, opts Options) *Engine {
	t.Helper()
	e, err := NewEngine(n, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineDefaults(t *testing.T) {
	e := mustEngine(t, 3, nil, Options{})
	o := e.Options()
	if o.C != 0.6 || o.K != 15 || o.RecomputeThreshold != 0.15 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(-1, nil, Options{}); err == nil {
		t.Fatal("want error for negative n")
	}
	if _, err := NewEngine(3, nil, Options{C: 2}); err == nil {
		t.Fatal("want error for C out of range")
	}
	if _, err := NewEngine(3, nil, Options{K: -5}); err == nil {
		t.Fatal("want error for negative K")
	}
}

func TestEngineBatchScores(t *testing.T) {
	// 0→1, 0→2: matrix-form s(1,2) = C(1−C).
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}, {From: 0, To: 2}}, Options{C: 0.8})
	if got, want := e.Similarity(1, 2), 0.8*0.2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("s(1,2) = %v, want %v", got, want)
	}
	if e.N() != 3 || e.M() != 2 || !e.HasEdge(0, 1) {
		t.Fatal("graph accessors wrong")
	}
}

func TestEngineInsertMatchesRebuild(t *testing.T) {
	e := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}}, Options{C: 0.6, K: 40})
	st, err := e.Insert(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.AffectedPairs <= 0 {
		t.Fatal("insert should affect some pairs")
	}
	fresh := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}, {From: 1, To: 2}}, Options{C: 0.6, K: 40})
	if d := matrix.MaxAbsDiff(e.Similarities(), fresh.Similarities()); d > 1e-9 {
		t.Fatalf("incremental insert drifted %g from rebuild", d)
	}
}

func TestEngineDeleteMatchesRebuild(t *testing.T) {
	e := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}}, Options{C: 0.6, K: 40})
	if _, err := e.Delete(3, 2); err != nil {
		t.Fatal(err)
	}
	fresh := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}}, Options{C: 0.6, K: 40})
	if d := matrix.MaxAbsDiff(e.Similarities(), fresh.Similarities()); d > 1e-9 {
		t.Fatalf("incremental delete drifted %g from rebuild", d)
	}
}

func TestEngineErrorsLeaveStateIntact(t *testing.T) {
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}}, Options{})
	before := e.Similarities()
	if _, err := e.Insert(0, 1); err == nil {
		t.Fatal("want error for duplicate insert")
	}
	if _, err := e.Delete(1, 2); err == nil {
		t.Fatal("want error for absent delete")
	}
	if matrix.MaxAbsDiff(before, e.Similarities()) != 0 || e.M() != 1 {
		t.Fatal("failed update must not mutate state")
	}
}

func TestEngineDisablePruningSameResult(t *testing.T) {
	edges := []Edge{{From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0}}
	a := mustEngine(t, 5, edges, Options{C: 0.6, K: 30})
	b := mustEngine(t, 5, edges, Options{C: 0.6, K: 30, DisablePruning: true})
	if _, err := a.Insert(4, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Insert(4, 2); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(a.Similarities(), b.Similarities()); d > 1e-9 {
		t.Fatalf("pruned and unpruned engines differ by %g", d)
	}
}

func TestEngineTopK(t *testing.T) {
	e := mustEngine(t, 4, []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 1}, {From: 3, To: 2}}, Options{C: 0.8})
	top := e.TopK(1)
	if len(top) != 1 {
		t.Fatalf("TopK len %d", len(top))
	}
	if !(top[0].A == 1 && top[0].B == 2) {
		t.Fatalf("top pair = %+v, want (1,2)", top[0])
	}
	forNode := e.TopKFor(1, 2)
	if len(forNode) == 0 || forNode[0].B != 2 {
		t.Fatalf("TopKFor = %+v", forNode)
	}
}

func TestEngineApplyBatchSmallIncremental(t *testing.T) {
	edges := []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 0}, {From: 1, To: 2}}
	e := mustEngine(t, 6, edges, Options{C: 0.6, K: 30, RecomputeThreshold: 0.9})
	ups := []Update{
		{Edge: Edge{From: 5, To: 3}, Insert: true},
	}
	if err := e.ApplyBatch(ups); err != nil {
		t.Fatal(err)
	}
	fresh := mustEngine(t, 6, append(edges, Edge{From: 5, To: 3}), Options{C: 0.6, K: 30})
	// Tolerance covers the K=30 truncation error of the old S (≈ C³¹)
	// flowing through the incremental update.
	if d := matrix.MaxAbsDiff(e.Similarities(), fresh.Similarities()); d > 1e-6 {
		t.Fatalf("batch drifted %g", d)
	}
}

func TestEngineApplyBatchLargeRecomputes(t *testing.T) {
	edges := []Edge{{From: 0, To: 1}, {From: 1, To: 2}}
	e := mustEngine(t, 4, edges, Options{C: 0.6, K: 30, RecomputeThreshold: 0.1})
	// 2 updates ≥ 0.1·2 edges → recompute path.
	ups := []Update{
		{Edge: Edge{From: 2, To: 3}, Insert: true},
		{Edge: Edge{From: 0, To: 1}, Insert: false},
	}
	if err := e.ApplyBatch(ups); err != nil {
		t.Fatal(err)
	}
	fresh := mustEngine(t, 4, []Edge{{From: 1, To: 2}, {From: 2, To: 3}}, Options{C: 0.6, K: 30})
	if d := matrix.MaxAbsDiff(e.Similarities(), fresh.Similarities()); d > 1e-12 {
		t.Fatalf("recompute path drifted %g", d)
	}
}

func TestEngineApplyBatchBadSequence(t *testing.T) {
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}}, Options{RecomputeThreshold: 0.01})
	ups := []Update{{Edge: Edge{From: 0, To: 1}, Insert: true}} // already present
	if err := e.ApplyBatch(ups); err == nil {
		t.Fatal("want error for inapplicable batch")
	}
}

// TestEngineApplyBatchFailureIsAtomic is the regression test for the
// partial-application bug: a batch whose later update is inapplicable must
// leave the graph and similarity matrix exactly as they were, in both the
// incremental and the recompute regime.
func TestEngineApplyBatchFailureIsAtomic(t *testing.T) {
	edges := []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0}}
	for _, tc := range []struct {
		name      string
		threshold float64 // forces the regime
	}{
		{"incremental", 10},
		{"recompute", 0.01},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := mustEngine(t, 5, edges, Options{C: 0.6, K: 20, RecomputeThreshold: tc.threshold})
			before := e.Similarities()
			beforeM := e.M()
			ups := []Update{
				{Edge: Edge{From: 4, To: 0}, Insert: true},  // applicable
				{Edge: Edge{From: 0, To: 2}, Insert: false}, // absent → must fail
				{Edge: Edge{From: 4, To: 1}, Insert: true},
			}
			if err := e.ApplyBatch(ups); err == nil {
				t.Fatal("want error for inapplicable batch")
			}
			if e.M() != beforeM {
				t.Fatalf("failed batch mutated the graph: %d edges, want %d", e.M(), beforeM)
			}
			if e.HasEdge(4, 0) {
				t.Fatal("failed batch left its first update applied")
			}
			if d := matrix.MaxAbsDiff(e.Similarities(), before); d != 0 {
				t.Fatalf("failed batch perturbed similarities by %g", d)
			}
			// The engine stays fully usable after the rejected batch.
			if err := e.ApplyBatch(ups[:1]); err != nil {
				t.Fatalf("engine unusable after failed batch: %v", err)
			}
		})
	}
}

// TestEngineApplyBatchSequenceReuse checks that validation simulates the
// batch *in sequence*: deleting an edge and re-inserting it in the same
// batch is legal, and inserting the same missing edge twice is not.
func TestEngineApplyBatchSequenceReuse(t *testing.T) {
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}}, Options{RecomputeThreshold: 10})
	ok := []Update{
		{Edge: Edge{From: 0, To: 1}, Insert: false},
		{Edge: Edge{From: 0, To: 1}, Insert: true},
	}
	if err := e.ApplyBatch(ok); err != nil {
		t.Fatalf("delete+reinsert of same edge rejected: %v", err)
	}
	bad := []Update{
		{Edge: Edge{From: 1, To: 2}, Insert: true},
		{Edge: Edge{From: 1, To: 2}, Insert: true},
	}
	if err := e.ApplyBatch(bad); err == nil {
		t.Fatal("double insert of same edge accepted")
	}
	if e.HasEdge(1, 2) {
		t.Fatal("rejected batch mutated the graph")
	}
}

func TestEngineApplyBatchEmpty(t *testing.T) {
	e := mustEngine(t, 3, nil, Options{})
	if err := e.ApplyBatch(nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSimilaritiesIsSnapshot(t *testing.T) {
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}}, Options{})
	snap := e.Similarities()
	snap.Set(0, 1, 99)
	if e.Similarity(0, 1) == 99 {
		t.Fatal("Similarities must return a copy")
	}
}

func TestEngineRecompute(t *testing.T) {
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}}, Options{})
	before := e.Similarities()
	e.Recompute()
	if matrix.MaxAbsDiff(before, e.Similarities()) != 0 {
		t.Fatal("recompute of unchanged graph must be a fixed point")
	}
}

// Property: a random walk of engine updates tracks batch recomputation.
func TestQuickEngineTracksBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		g := graph.New(n)
		for g.M() < 2*n {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		e, err := NewEngine(n, g.Edges(), Options{C: 0.6, K: 50, RecomputeThreshold: 10})
		if err != nil {
			return false
		}
		for step := 0; step < 5; step++ {
			var up Update
			if g.M() > 0 && rng.Intn(2) == 0 {
				es := g.Edges()
				up = Update{Edge: es[rng.Intn(len(es))], Insert: false}
			} else {
				for {
					c := Edge{From: rng.Intn(n), To: rng.Intn(n)}
					if !g.HasEdge(c.From, c.To) {
						up = Update{Edge: c, Insert: true}
						break
					}
				}
			}
			if _, err := e.Apply(up); err != nil {
				return false
			}
			g.Apply(up)
		}
		want := batch.MatrixForm(g, 0.6, 50)
		return matrix.MaxAbsDiff(e.Similarities(), want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAddNodes(t *testing.T) {
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}, {From: 0, To: 2}}, Options{C: 0.8, K: 30})
	first, err := e.AddNodes(2)
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 || e.N() != 5 {
		t.Fatalf("first=%d N=%d", first, e.N())
	}
	// Padded matrix must be the exact fixed point of the padded graph.
	fresh := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}}, Options{C: 0.8, K: 30})
	if d := matrix.MaxAbsDiff(e.Similarities(), fresh.Similarities()); d > 1e-12 {
		t.Fatalf("padding drifted %g from rebuild", d)
	}
	// And the engine keeps updating incrementally across the growth.
	if _, err := e.Insert(0, 3); err != nil {
		t.Fatal(err)
	}
	fresh2 := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}}, Options{C: 0.8, K: 30})
	if d := matrix.MaxAbsDiff(e.Similarities(), fresh2.Similarities()); d > 1e-6 {
		t.Fatalf("post-growth update drifted %g", d)
	}
}

func TestEngineAddNodesNegative(t *testing.T) {
	e := mustEngine(t, 2, nil, Options{})
	if _, err := e.AddNodes(-1); err == nil {
		t.Fatal("want error for negative count")
	}
}

func TestEngineAddNodesZero(t *testing.T) {
	e := mustEngine(t, 2, []Edge{{From: 0, To: 1}}, Options{})
	before := e.Similarities()
	if _, err := e.AddNodes(0); err != nil {
		t.Fatal(err)
	}
	if e.N() != 2 || matrix.MaxAbsDiff(before, e.Similarities()) != 0 {
		t.Fatal("AddNodes(0) must be a no-op")
	}
}

func TestSingleSourceScores(t *testing.T) {
	edges := []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}}
	col, err := SingleSourceScores(4, edges, 1, Options{C: 0.8, K: 20})
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, 4, edges, Options{C: 0.8, K: 20})
	for b := 0; b < 4; b++ {
		if math.Abs(col[b]-eng.Similarity(1, b)) > 1e-10 {
			t.Fatalf("col[%d] = %v, want %v", b, col[b], eng.Similarity(1, b))
		}
	}
	if _, err := SingleSourceScores(4, edges, 9, Options{}); err == nil {
		t.Fatal("want error for out-of-range query")
	}
	if _, err := SingleSourceScores(4, edges, 0, Options{C: 3}); err == nil {
		t.Fatal("want error for bad options")
	}
}

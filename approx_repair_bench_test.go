package simrank

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/simstore"
)

// BenchmarkApproxRepair is the cost model of the writable approx tier,
// published by CI as BENCH_approx_repair.json: incremental walk repair
// vs full rebuild on an n = 100,000 graph. The out-degree of the
// toggled edge's endpoint is swept because that is what sets the
// affected-walk fraction — a walk visits node j with probability
// governed by how many nodes list j as an in-neighbor — so the sweep
// ranges from "a handful of owner walks" to "a hub many walks cross".
// The fraction actually resampled per update rides along as a custom
// metric; the rebuild sub-benchmark is the O(n·W·L) baseline every
// repair is supposed to beat by orders of magnitude.
func BenchmarkApproxRepair(b *testing.B) {
	const (
		n       = 100_000
		c       = 0.6
		walkLen = 10
		walks   = 8
		seed    = 17
	)
	baseGraph := func() *graph.DiGraph {
		g := graph.New(n)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n) // ring: every node has an in-neighbor
		}
		for g.M() < 3*n {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		return g
	}
	for _, deg := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("repair/outdeg=%d", deg), func(b *testing.B) {
			g := baseGraph()
			const j = n / 2
			rng := rand.New(rand.NewSource(int64(deg)))
			for added := 0; added < deg; {
				to := rng.Intn(n)
				if to != j && !g.HasEdge(j, to) {
					g.AddEdge(j, to)
					added++
				}
			}
			a, err := simstore.NewApprox(g, c, walkLen, walks, seed)
			if err != nil {
				b.Fatal(err)
			}
			const aux = 3
			insert := !g.HasEdge(aux, j)
			before, _ := a.RepairStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				up := graph.Update{Edge: graph.Edge{From: aux, To: j}, Insert: insert}
				g.Apply(up)
				a.ApplyUpdate(up)
				insert = !insert
			}
			b.StopTimer()
			after, _ := a.RepairStats()
			perOp := float64(after-before) / float64(b.N)
			b.ReportMetric(perOp, "resampled-walks/op")
			b.ReportMetric(perOp/float64(n*walks), "resampled-fraction/op")
		})
	}
	b.Run("rebuild/full", func(b *testing.B) {
		g := baseGraph()
		for i := 0; i < b.N; i++ {
			if _, err := simstore.NewApprox(g, c, walkLen, walks, seed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package simrank

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// faultWriter is the in-process crash surrogate: it forwards writes to
// the underlying SnapshotWriter's stream until limit bytes have passed,
// then fails (failErr non-nil) or silently drops the rest (failErr
// nil) — the two shapes a dying process gives a half-written file.
type faultWriter struct {
	w       io.Writer
	limit   int
	written int
	failErr error
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.written >= fw.limit {
		if fw.failErr != nil {
			return 0, fw.failErr
		}
		fw.written += len(p)
		return len(p), nil // drop silently, claim success
	}
	keep := min(len(p), fw.limit-fw.written)
	n, err := fw.w.Write(p[:keep])
	fw.written += n
	if err != nil {
		return n, err
	}
	if keep < len(p) {
		if fw.failErr != nil {
			return n, fw.failErr
		}
		fw.written += len(p) - keep
		return len(p), nil
	}
	return n, nil
}

// faultSnapshotter wraps an engine so WriteSnapshot streams through a
// fault writer — a SnapshotWriter whose serialization dies at byte N.
type faultSnapshotter struct {
	src   SnapshotWriter
	limit int
	err   error
}

func (fs faultSnapshotter) WriteSnapshot(w io.Writer) error {
	return fs.src.WriteSnapshot(&faultWriter{w: w, limit: fs.limit, failErr: fs.err})
}

// TestSnapshotEpochRoundTrip: the v3 header carries the engine epoch
// and restore resumes there — the WAL-replay floor.
func TestSnapshotEpochRoundTrip(t *testing.T) {
	e := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 1, To: 2}}, Options{})
	for _, up := range []Update{
		{Edge: Edge{From: 2, To: 3}, Insert: true},
		{Edge: Edge{From: 3, To: 4}, Insert: true},
		{Edge: Edge{From: 0, To: 1}, Insert: false},
	} {
		if _, err := e.Apply(up); err != nil {
			t.Fatal(err)
		}
	}
	if e.Epoch() != 3 {
		t.Fatalf("engine epoch = %d, want 3", e.Epoch())
	}
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != 3 {
		t.Fatalf("restored epoch = %d, want 3", got.Epoch())
	}
	// And the restored engine's next mutations advance the same chain.
	if _, err := got.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != 4 {
		t.Fatalf("post-restore epoch = %d, want 4", got.Epoch())
	}
}

// TestConcurrentSnapshotCarriesViewEpoch: the MVCC facade serializes
// the pinned view's epoch, not whatever the writer has moved on to.
func TestConcurrentSnapshotCarriesViewEpoch(t *testing.T) {
	c, err := NewConcurrentEngine(4, []Edge{{From: 0, To: 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != c.Epoch() {
		t.Fatalf("snapshot epoch %d, view epoch %d", got.Epoch(), c.Epoch())
	}
}

// TestWriteSnapshotFileFaultingWriter: a serialization that dies at
// byte N — for every interesting N — must leave the previous good
// snapshot byte-identical in place and no temp litter behind.
func TestWriteSnapshotFileFaultingWriter(t *testing.T) {
	e := mustEngine(t, 4, []Edge{{From: 0, To: 1}, {From: 1, To: 2}}, Options{})
	dir := t.TempDir()
	path := filepath.Join(dir, "state.simr")
	if err := WriteSnapshotFile(e, path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	bang := errors.New("injected write failure")
	for _, limit := range []int{0, 1, 4, len(good) / 2, len(good) - 1} {
		t.Run(fmt.Sprintf("fail at byte %d", limit), func(t *testing.T) {
			err := WriteSnapshotFile(faultSnapshotter{src: e, limit: limit, err: bang}, path)
			if !errors.Is(err, bang) {
				t.Fatalf("error = %v, want the injected failure", err)
			}
			after, rerr := os.ReadFile(path)
			if rerr != nil || !bytes.Equal(after, good) {
				t.Fatalf("previous good snapshot disturbed (err=%v, %d bytes vs %d)", rerr, len(after), len(good))
			}
			entries, _ := os.ReadDir(dir)
			if len(entries) != 1 {
				t.Fatalf("temp litter left behind: %d entries", len(entries))
			}
		})
	}

	// The silent-truncation shape: the writer claims success but dropped
	// the tail. The corruption is caught at restore time by the CRC, and
	// — because the rename DID happen — this is exactly why the caller
	// synced the payload first in the real path; assert the file is at
	// least detected as bad rather than restoring garbage.
	if err := WriteSnapshotFile(faultSnapshotter{src: e, limit: 8}, path); err != nil {
		t.Fatalf("silent truncation surfaced a write error: %v", err)
	}
	if _, err := ReadSnapshotFile(path); err == nil {
		t.Fatal("silently truncated snapshot restored without error")
	}
	// Restore the good bytes for any later subtests.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWriteSnapshotFileSyncFailure: an fsync that fails — the disk
// refusing durability — must surface as an error and leave the old
// snapshot in place, for both the pre-rename file sync and the
// post-rename directory sync.
func TestWriteSnapshotFileSyncFailure(t *testing.T) {
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}}, Options{})
	dir := t.TempDir()
	path := filepath.Join(dir, "state.simr")
	if err := WriteSnapshotFile(e, path); err != nil {
		t.Fatal(err)
	}
	good, _ := os.ReadFile(path)
	bang := errors.New("injected fsync failure")

	t.Run("file sync before rename", func(t *testing.T) {
		orig := fileSync
		fileSync = func(f *os.File) error { return bang }
		defer func() { fileSync = orig }()
		if err := WriteSnapshotFile(e, path); !errors.Is(err, bang) {
			t.Fatalf("error = %v, want the injected failure", err)
		}
		after, _ := os.ReadFile(path)
		if !bytes.Equal(after, good) {
			t.Fatal("failed-sync write replaced the good snapshot")
		}
		entries, _ := os.ReadDir(dir)
		if len(entries) != 1 {
			t.Fatalf("temp litter left behind: %d entries", len(entries))
		}
	})

	t.Run("dir sync after rename", func(t *testing.T) {
		orig := dirSync
		dirSync = func(string) error { return bang }
		defer func() { dirSync = orig }()
		// The rename has happened by the time the dir sync fails: the new
		// content is in place (and readable), but the caller must hear
		// about the unproven durability — snapshot-then-truncate-WAL flows
		// gate on it.
		if err := WriteSnapshotFile(e, path); !errors.Is(err, bang) {
			t.Fatalf("error = %v, want the injected failure", err)
		}
		if _, err := ReadSnapshotFile(path); err != nil {
			t.Fatalf("snapshot content unreadable after dir-sync failure: %v", err)
		}
	})
}

// TestWriteSnapshotFileFsyncsDirectory pins the regression: a
// successful WriteSnapshotFile must fsync the parent directory (the
// rename's durability), which the seed implementation forgot.
func TestWriteSnapshotFileFsyncsDirectory(t *testing.T) {
	e := mustEngine(t, 3, []Edge{{From: 0, To: 1}}, Options{})
	dir := t.TempDir()
	synced := []string{}
	orig := dirSync
	dirSync = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	defer func() { dirSync = orig }()
	if err := WriteSnapshotFile(e, filepath.Join(dir, "state.simr")); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("dir fsyncs = %v, want exactly the snapshot's parent %q", synced, dir)
	}
}

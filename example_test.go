package simrank_test

import (
	"fmt"

	simrank "repro"
)

// Build an engine over a citation graph and read a similarity score.
func ExampleNewEngine() {
	// Paper 2 cites papers 0 and 1, so 0 and 1 are co-cited.
	eng, err := simrank.NewEngine(3, []simrank.Edge{
		{From: 2, To: 0}, {From: 2, To: 1},
	}, simrank.Options{C: 0.8, K: 20})
	if err != nil {
		panic(err)
	}
	fmt.Printf("s(0,1) = %.3f\n", eng.Similarity(0, 1))
	// Output: s(0,1) = 0.160
}

// Insert a link and watch the affected similarities update incrementally.
func ExampleEngine_Insert() {
	eng, err := simrank.NewEngine(4, []simrank.Edge{
		{From: 0, To: 1}, {From: 0, To: 2},
	}, simrank.Options{C: 0.8, K: 20})
	if err != nil {
		panic(err)
	}
	stats, err := eng.Insert(0, 3) // node 3 joins the co-cited set
	if err != nil {
		panic(err)
	}
	fmt.Printf("s(1,3) = %.3f, affected pairs: %d\n", eng.Similarity(1, 3), stats.AffectedPairs)
	// Output: s(1,3) = 0.160, affected pairs: 5
}

// Rank the most similar node-pairs.
func ExampleEngine_TopK() {
	eng, err := simrank.NewEngine(5, []simrank.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, // 1,2 co-cited by 0
		{From: 3, To: 1}, // 1 also cited by 3
		{From: 4, To: 3},
	}, simrank.Options{C: 0.8, K: 20})
	if err != nil {
		panic(err)
	}
	for _, p := range eng.TopK(1) {
		fmt.Printf("(%d,%d) %.3f\n", p.A, p.B, p.Score)
	}
	// Output: (1,2) 0.080
}

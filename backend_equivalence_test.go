package simrank

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
)

// testBackend returns the store backend the root suite should exercise:
// dense unless the SIMRANK_BACKEND environment variable overrides it —
// the hook CI's backend matrix uses to replay every root property test
// against the packed store.
func testBackend(tb testing.TB) Backend {
	raw := os.Getenv("SIMRANK_BACKEND")
	b, err := ParseBackend(raw)
	if err != nil {
		tb.Fatalf("SIMRANK_BACKEND: %v", err)
	}
	return b
}

// withTestBackend stamps the suite's backend onto opts.
func withTestBackend(tb testing.TB, o Options) Options {
	o.Backend = testBackend(tb)
	return o
}

// TestBackendEquivalenceRandomStreams is the cross-backend property
// harness: the same random stream of Apply, ApplyBatch, AddNodes and
// Recompute, with interleaved queries, runs in lockstep on a dense and a
// packed engine — pruning on and off, Workers 1 and 4. The packed store
// canonicalizes the (up-to-rounding symmetric) kernel output on its
// upper triangle, so the gate is 1e-12, the same bar the pipeline
// equivalence test holds the incremental machinery to.
func TestBackendEquivalenceRandomStreams(t *testing.T) {
	for _, disablePruning := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			opts := Options{K: 60, DisablePruning: disablePruning, Workers: workers}
			name := fmt.Sprintf("pruning=%v/workers=%d", !disablePruning, workers)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(900 + int64(workers) + int64(len(name))))
				for trial := 0; trial < 3; trial++ {
					runBackendLockstep(t, rng, opts)
				}
			})
		}
	}
}

func runBackendLockstep(t *testing.T, rng *rand.Rand, opts Options) {
	t.Helper()
	model := &streamModel{n: 5 + rng.Intn(5), edges: make(map[Edge]bool)}
	for i := 0; i < model.n; i++ {
		for j := 0; j < model.n; j++ {
			if i != j && rng.Float64() < 0.2 {
				model.edges[Edge{From: i, To: j}] = true
			}
		}
	}
	denseOpts, packedOpts := opts, opts
	denseOpts.Backend = BackendDense
	packedOpts.Backend = BackendPacked
	de, err := NewEngine(model.n, model.edgeList(), denseOpts)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewEngine(model.n, model.edgeList(), packedOpts)
	if err != nil {
		t.Fatal(err)
	}

	const tol = 1e-12
	compare := func(step int) {
		t.Helper()
		if d := matrix.MaxAbsDiff(de.Similarities(), pe.Similarities()); d > tol {
			t.Fatalf("step %d: packed drifted %g from dense (n=%d)", step, d, model.n)
		}
		// Query surface: single pairs, per-node top-k scores, global
		// top-k scores. Rankings can legitimately differ on sub-tol ties,
		// so scores (rank by rank) carry the comparison.
		a, b := rng.Intn(de.N()), rng.Intn(de.N())
		if d := math.Abs(de.Similarity(a, b) - pe.Similarity(a, b)); d > tol {
			t.Fatalf("step %d: Similarity(%d,%d) differs by %g", step, a, b, d)
		}
		dk, pk := de.TopKFor(a, 5), pe.TopKFor(a, 5)
		if len(dk) != len(pk) {
			t.Fatalf("step %d: TopKFor lengths %d vs %d", step, len(dk), len(pk))
		}
		for i := range dk {
			if d := math.Abs(dk[i].Score - pk[i].Score); d > tol {
				t.Fatalf("step %d: TopKFor rank %d scores differ by %g", step, i, d)
			}
		}
		dg, pg := de.TopK(4), pe.TopK(4)
		if len(dg) != len(pg) {
			t.Fatalf("step %d: TopK lengths %d vs %d", step, len(dg), len(pg))
		}
		for i := range dg {
			if d := math.Abs(dg[i].Score - pg[i].Score); d > tol {
				t.Fatalf("step %d: TopK rank %d scores differ by %g", step, i, d)
			}
		}
	}

	for step := 0; step < 12; step++ {
		switch rng.Intn(5) {
		case 0, 1:
			up := model.randomUpdate(rng)
			if _, err := de.Apply(up); err != nil {
				t.Fatalf("dense step %d %v: %v", step, up, err)
			}
			if _, err := pe.Apply(up); err != nil {
				t.Fatalf("packed step %d %v: %v", step, up, err)
			}
		case 2:
			k := 1 + rng.Intn(6)
			ups := make([]Update, k)
			for i := range ups {
				ups[i] = model.randomUpdate(rng)
			}
			if err := de.ApplyBatch(ups); err != nil {
				t.Fatalf("dense batch step %d: %v", step, err)
			}
			if err := pe.ApplyBatch(ups); err != nil {
				t.Fatalf("packed batch step %d: %v", step, err)
			}
		case 3:
			count := 1 + rng.Intn(2)
			if _, err := de.AddNodes(count); err != nil {
				t.Fatal(err)
			}
			if _, err := pe.AddNodes(count); err != nil {
				t.Fatal(err)
			}
			model.n += count
		case 4:
			de.Recompute()
			pe.Recompute()
		}
		compare(step)
	}
}

// Snapshot round-trips must be bit-identical per backend:
// write → read → write yields the same bytes, and for the exact
// backends the restored similarities are the original bits.
func TestSnapshotRoundTripPerBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randTestGraph(rng, 30, 120)
	for _, backend := range []Backend{BackendDense, BackendPacked, BackendApprox} {
		t.Run(string(backend), func(t *testing.T) {
			opts := Options{C: 0.6, K: 10, Backend: backend, ApproxWalks: 32, ApproxSeed: 9}
			eng, err := NewEngine(g.N(), g.Edges(), opts)
			if err != nil {
				t.Fatal(err)
			}
			var first bytes.Buffer
			if err := eng.WriteSnapshot(&first); err != nil {
				t.Fatal(err)
			}
			restored, err := ReadSnapshot(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if restored.Backend() != backend {
				t.Fatalf("restored backend %q, want %q", restored.Backend(), backend)
			}
			var second bytes.Buffer
			if err := restored.WriteSnapshot(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("write→read→write is not byte-identical (%d vs %d bytes)", first.Len(), second.Len())
			}
			if backend == BackendApprox {
				ro := restored.Options()
				if ro.ApproxWalks != 32 || ro.ApproxSeed != 9 {
					t.Fatalf("approx params not persisted: %+v", ro)
				}
				return
			}
			a, b := eng.Similarities(), restored.Similarities()
			for i, v := range a.Data {
				if v != b.Data[i] {
					t.Fatalf("restored similarities differ at %d: %v vs %v", i, v, b.Data[i])
				}
			}
		})
	}
}

// A packed snapshot carries the triangle, not the square: the file
// should come in at roughly half a dense snapshot of the same engine.
func TestPackedSnapshotHalvesFile(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g := randTestGraph(rng, 60, 240)
	sizes := map[Backend]int{}
	for _, backend := range []Backend{BackendDense, BackendPacked} {
		eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 10, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		sizes[backend] = buf.Len()
	}
	if ratio := float64(sizes[BackendPacked]) / float64(sizes[BackendDense]); ratio > 0.6 {
		t.Fatalf("packed snapshot is %.2f of dense (%d vs %d bytes), want ≤ 0.6",
			ratio, sizes[BackendPacked], sizes[BackendDense])
	}
}

// The packed backend keeps the hot-path guarantee: a warm Apply performs
// zero heap allocations — the packed store's Row view is one reusable
// scratch buffer and AddSym is pure index arithmetic.
func TestEngineApplyZeroAllocsPacked(t *testing.T) {
	skipIfRace(t)
	for _, disablePruning := range []bool{false, true} {
		rng := rand.New(rand.NewSource(5))
		g := randTestGraph(rng, 40, 160)
		eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 10, Backend: BackendPacked, DisablePruning: disablePruning})
		if err != nil {
			t.Fatal(err)
		}
		edges := g.Edges()[:4]
		toggle := func() {
			for _, e := range edges {
				if _, err := eng.Delete(e.From, e.To); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Insert(e.From, e.To); err != nil {
					t.Fatal(err)
				}
			}
		}
		toggle() // warm up
		if allocs := testing.AllocsPerRun(20, toggle); allocs != 0 {
			t.Fatalf("warm packed Apply (pruning=%v) allocated %v times per toggle, want 0", !disablePruning, allocs)
		}
	}
}

// The packed engine reports about half the dense store bytes at the
// acceptance size n = 2000, with the identical similarity content.
func TestPackedStoreBytesAcceptance(t *testing.T) {
	const n = 2000
	var edges []Edge
	rng := rand.New(rand.NewSource(80))
	for len(edges) < 4000 {
		edges = append(edges, Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	de, err := NewEngine(n, edges, Options{C: 0.6, K: 5, Backend: BackendDense})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewEngine(n, edges, Options{C: 0.6, K: 5, Backend: BackendPacked})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(pe.StoreMemBytes()) / float64(de.StoreMemBytes())
	if ratio > 0.55 {
		t.Fatalf("packed store is %.4f of dense at n=%d, want ≤ 0.55", ratio, n)
	}
	// Content check on a sample of pairs (a full n² sweep is wasteful).
	for trial := 0; trial < 2000; trial++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if d := math.Abs(de.Similarity(a, b) - pe.Similarity(a, b)); d > 1e-12 {
			t.Fatalf("packed Similarity(%d,%d) differs by %g", a, b, d)
		}
	}
}

// The approx backend accepts the whole graph-mutation surface — Apply,
// ApplyBatch, AddNodes, Recompute — absorbing each through incremental
// walk repair, while the surfaces that require a materialized matrix
// (Similarities, global TopK) still answer nil. Bad updates get the
// same typed rejection as the exact backends.
func TestApproxBackendWritable(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := randTestGraph(rng, 20, 80)
	eng, err := NewEngine(g.N(), g.Edges(), Options{Backend: BackendApprox, ApproxWalks: 32})
	if err != nil {
		t.Fatal(err)
	}
	from, to := 0, 1
	for g.HasEdge(from, to) {
		to++
	}
	st, err := eng.Insert(from, to)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if eng.Epoch() != 1 {
		t.Fatalf("epoch after Insert = %d, want 1", eng.Epoch())
	}
	if len(st.DirtyRows) == 0 {
		t.Fatal("inserting an in-edge of a live node should dirty some walk rows")
	}
	// Duplicate insert: same typed rejection as the exact backends.
	if _, err := eng.Insert(from, to); err == nil {
		t.Fatal("duplicate insert accepted")
	} else {
		var bad *core.ErrBadUpdate
		if !errors.As(err, &bad) {
			t.Fatalf("duplicate insert error = %v, want *core.ErrBadUpdate", err)
		}
	}
	if err := eng.ApplyBatch([]Update{
		{Edge: Edge{From: from, To: to}, Insert: false},
		{Edge: Edge{From: from, To: to}, Insert: true},
	}); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	oldN := eng.N()
	first, err := eng.AddNodes(2)
	if err != nil {
		t.Fatalf("AddNodes: %v", err)
	}
	if first != oldN || eng.N() != oldN+2 {
		t.Fatalf("AddNodes: first=%d n=%d, want %d and %d", first, eng.N(), oldN, oldN+2)
	}
	// New ids are immediately writable.
	if _, err := eng.Insert(0, first); err != nil {
		t.Fatalf("Insert to a new node: %v", err)
	}
	before := eng.Epoch()
	eng.Recompute()
	if eng.Epoch() != before+1 {
		t.Fatal("Recompute on approx must commit an epoch (full resample)")
	}
	if eng.Similarities() != nil {
		t.Fatal("approx Similarities should be nil")
	}
	if eng.TopK(3) != nil {
		t.Fatal("approx TopK should be nil")
	}
	if s := eng.Similarity(0, 0); s != 1 {
		t.Fatalf("approx self-similarity %v, want 1 (iterative form)", s)
	}
	if ps := eng.TopKFor(0, 5); len(ps) > 5 {
		t.Fatalf("approx TopKFor returned %d pairs for k=5", len(ps))
	}
	if _, stderr := eng.SimilarityStderr(0, 1); stderr < 0 {
		t.Fatalf("negative stderr %v", stderr)
	}
}

// Sampled top-k must bypass the query cache: a sampled list shorter
// than k is not an exhausted row (weak candidates refine to zero and
// drop), so caching it would permanently truncate every larger-k answer
// — approx rows are never invalidated.
func TestApproxTopKForBypassesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g := randTestGraph(rng, 30, 120)
	eng, err := NewEngine(g.N(), g.Edges(), Options{Backend: BackendApprox, ApproxWalks: 64, TopKCacheRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	small := eng.TopKFor(2, 1)
	big := eng.TopKFor(2, g.N())
	if len(big) < len(small) {
		t.Fatalf("k-upgrade shrank the answer: %d then %d pairs", len(small), len(big))
	}
	if cs := eng.CacheStats(); cs.RowHits != 0 && cs.RowMisses == 0 {
		t.Fatalf("sampled top-k served from cache: %+v", cs)
	}
	if len(big) <= len(small) && len(small) == 1 && len(big) == 1 && g.N() > 2 {
		// With 64 walks on a 30-node graph at least a few neighbors score.
		t.Fatalf("full-k sampled query returned only %d pair(s)", len(big))
	}
}

// A walk budget the engine accepts must be a budget its snapshot can
// restore: the construction bound and the restore bound are one
// constant (simstore.MaxWalks), and budgets past it are rejected up
// front instead of producing an unrestorable snapshot. The round trip
// runs at a CI-friendly budget — with stored walks the maximum budget
// is a RAM decision (n·W·(L+1) int32 slots), not a correctness one,
// and acceptance ⇒ restorability is carried by the shared constant.
func TestApproxWalksBoundMatchesSnapshot(t *testing.T) {
	if _, err := NewEngine(4, nil, Options{Backend: BackendApprox, ApproxWalks: 2_000_000}); err == nil {
		t.Fatal("over-limit ApproxWalks accepted at construction")
	}
	rng := rand.New(rand.NewSource(83))
	g := randTestGraph(rng, 10, 30)
	eng, err := NewEngine(g.N(), g.Edges(), Options{Backend: BackendApprox, ApproxWalks: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(&buf); err != nil {
		t.Fatalf("accepted walk budget failed to restore: %v", err)
	}
}

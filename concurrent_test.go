package simrank

import (
	"sync"
	"testing"

	"repro/internal/matrix"
)

func TestConcurrentEngineBasics(t *testing.T) {
	c, err := NewConcurrentEngine(4, []Edge{{From: 0, To: 1}, {From: 0, To: 2}}, Options{C: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.M() != 2 || !c.HasEdge(0, 1) {
		t.Fatal("accessors wrong")
	}
	if c.Similarity(1, 2) <= 0 {
		t.Fatal("expected positive similarity")
	}
	if len(c.TopK(1)) != 1 || len(c.TopKFor(1, 1)) != 1 {
		t.Fatal("top-k wrong")
	}
}

func TestConcurrentEngineValidation(t *testing.T) {
	if _, err := NewConcurrentEngine(3, nil, Options{C: 7}); err == nil {
		t.Fatal("want error")
	}
}

func TestWrapEngine(t *testing.T) {
	eng := mustEngine(t, 3, []Edge{{From: 0, To: 1}}, Options{})
	c := WrapEngine(eng)
	if c.M() != 1 {
		t.Fatal("wrapped engine lost state")
	}
}

// TestConcurrentReadersAndWriter exercises parallel queries against a
// stream of updates; run with -race to validate the locking.
func TestConcurrentReadersAndWriter(t *testing.T) {
	c, err := NewConcurrentEngine(20, []Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}, {From: 2, To: 4},
	}, Options{C: 0.6, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Similarity(r%5, (r+1)%5)
				_ = c.TopK(3)
				_ = c.TopKFor(2, 3)
				_ = c.M()
			}
		}(r)
	}
	for i := 5; i < 15; i++ {
		if _, err := c.Insert(i, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Delete(i, 2); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentApplyBatch(t *testing.T) {
	c, err := NewConcurrentEngine(6, []Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
		{From: 4, To: 5}, {From: 5, To: 0}, {From: 0, To: 2}, {From: 1, To: 3},
	}, Options{C: 0.6, K: 30, RecomputeThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyBatch([]Update{{Edge: Edge{From: 2, To: 5}, Insert: true}}); err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, 6, []Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
		{From: 4, To: 5}, {From: 5, To: 0}, {From: 0, To: 2}, {From: 1, To: 3},
		{From: 2, To: 5},
	}, Options{C: 0.6, K: 30})
	got := c.Similarities()
	if d := matrix.MaxAbsDiff(got, eng.Similarities()); d > 1e-6 {
		t.Fatalf("concurrent batch drifted %g", d)
	}
}

package simrank

import (
	"context"
	"errors"
	"testing"

	"repro/internal/wal"
)

// TestApplyWALRecordKinds pins the shared replay/replication apply path
// for every record kind: advancing a twin engine with applyWALRecord
// reproduces the public entry point — Apply, ApplyBatch, AddNodes,
// Recompute — bit-for-bit, epoch included. Boot-time WAL replay and the
// follower stream both ride this one function, so this table is the
// contract a new record kind must join.
func TestApplyWALRecordKinds(t *testing.T) {
	baseEdges := []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}
	opts := Options{K: 8, Workers: 1}
	cases := []struct {
		name   string
		mutate func(t *testing.T, e *Engine) *wal.Record
	}{
		{"update-insert", func(t *testing.T, e *Engine) *wal.Record {
			ups := []Update{{Edge: Edge{From: 0, To: 2}, Insert: true}}
			if _, err := e.Apply(ups[0]); err != nil {
				t.Fatal(err)
			}
			return &wal.Record{Epoch: e.Epoch(), Kind: wal.KindUpdate, Updates: ups}
		}},
		{"update-delete", func(t *testing.T, e *Engine) *wal.Record {
			ups := []Update{{Edge: Edge{From: 1, To: 2}, Insert: false}}
			if _, err := e.Apply(ups[0]); err != nil {
				t.Fatal(err)
			}
			return &wal.Record{Epoch: e.Epoch(), Kind: wal.KindUpdate, Updates: ups}
		}},
		{"batch", func(t *testing.T, e *Engine) *wal.Record {
			ups := []Update{
				{Edge: Edge{From: 3, To: 4}, Insert: true},
				{Edge: Edge{From: 4, To: 0}, Insert: true},
				{Edge: Edge{From: 0, To: 1}, Insert: false},
			}
			if err := e.ApplyBatch(ups); err != nil {
				t.Fatal(err)
			}
			return &wal.Record{Epoch: e.Epoch(), Kind: wal.KindBatch, Updates: ups}
		}},
		{"addnodes", func(t *testing.T, e *Engine) *wal.Record {
			if _, err := e.AddNodes(3); err != nil {
				t.Fatal(err)
			}
			return &wal.Record{Epoch: e.Epoch(), Kind: wal.KindAddNodes, Count: 3}
		}},
		{"recompute", func(t *testing.T, e *Engine) *wal.Record {
			e.Recompute()
			return &wal.Record{Epoch: e.Epoch(), Kind: wal.KindRecompute}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			live, err := NewEngine(5, baseEdges, opts)
			if err != nil {
				t.Fatal(err)
			}
			twin, err := NewEngine(5, baseEdges, opts)
			if err != nil {
				t.Fatal(err)
			}
			rec := tc.mutate(t, live)
			if err := twin.applyWALRecord(rec); err != nil {
				t.Fatalf("applyWALRecord(%s): %v", rec.Kind, err)
			}
			assertEnginesIdentical(t, WrapEngine(live), WrapEngine(twin))
		})
	}
}

// TestApplyWALRecordRejects: the shared apply path refuses records it
// cannot faithfully replay — that refusal is the follower's divergence
// detector, so every branch must stay loud.
func TestApplyWALRecordRejects(t *testing.T) {
	newEng := func(t *testing.T) *Engine {
		e, err := NewEngine(4, []Edge{{From: 0, To: 1}}, Options{K: 8, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	t.Run("stale-epoch", func(t *testing.T) {
		e := newEng(t)
		rec := &wal.Record{Epoch: e.Epoch(), Kind: wal.KindRecompute}
		if err := e.applyWALRecord(rec); err == nil {
			t.Fatal("record at the engine's own epoch applied")
		}
	})
	t.Run("unknown-kind", func(t *testing.T) {
		e := newEng(t)
		rec := &wal.Record{Epoch: e.Epoch() + 1, Kind: wal.Kind(77)}
		if err := e.applyWALRecord(rec); err == nil {
			t.Fatal("unknown record kind applied")
		}
	})
	t.Run("malformed-unit-update", func(t *testing.T) {
		e := newEng(t)
		rec := &wal.Record{Epoch: e.Epoch() + 1, Kind: wal.KindUpdate, Updates: []Update{
			{Edge: Edge{From: 1, To: 2}, Insert: true},
			{Edge: Edge{From: 2, To: 3}, Insert: true},
		}}
		if err := e.applyWALRecord(rec); err == nil {
			t.Fatal("unit-update record with two updates applied")
		}
	})
	t.Run("divergent-base", func(t *testing.T) {
		e := newEng(t)
		// The base already holds 0→1; a log claiming to insert it was
		// written against different state.
		rec := &wal.Record{Epoch: e.Epoch() + 1, Kind: wal.KindUpdate, Updates: []Update{
			{Edge: Edge{From: 0, To: 1}, Insert: true},
		}}
		if err := e.applyWALRecord(rec); err == nil {
			t.Fatal("insert of an existing edge applied")
		}
	})
	t.Run("epoch-overshoot", func(t *testing.T) {
		// A 3-update batch steps the incremental path's epoch by 3 (the
		// high threshold pins that path); a record claiming the commit
		// only advanced 1 was written against a base that took a different
		// path — the recompute crossover decided differently there.
		e, err := NewEngine(4, []Edge{{From: 0, To: 1}}, Options{K: 8, Workers: 1, RecomputeThreshold: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		rec := &wal.Record{Epoch: e.Epoch() + 1, Kind: wal.KindBatch, Updates: []Update{
			{Edge: Edge{From: 1, To: 2}, Insert: true},
			{Edge: Edge{From: 2, To: 3}, Insert: true},
			{Edge: Edge{From: 3, To: 0}, Insert: true},
		}}
		if err := e.applyWALRecord(rec); err == nil {
			t.Fatal("overshooting batch record applied")
		}
	})
}

// TestApplyReplicatedMatchesReplay is satellite proof that the follower
// stream path and boot-time replay are one: the same record sequence,
// fed once through ReplayWAL and once record-at-a-time through
// ApplyReplicated, lands both engines bit-identical to the leader —
// and the follower's own re-logged WAL replays to the same state again,
// epochs preserved, which is what lets a restarted follower resume from
// local disk instead of refetching the stream from scratch.
func TestApplyReplicatedMatchesReplay(t *testing.T) {
	edges := []Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}
	opts := Options{K: 8, Workers: 1}
	leaderWAL, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderWAL.Close() //simrank:errok test cleanup on a SyncNone log
	leader, err := NewConcurrentEngine(5, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	leader.SetWAL(leaderWAL)
	records := driveWALStream(t, leader)

	// Path one: boot-time replay, all records in one publish.
	fresh, err := NewEngine(5, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	replayed := WrapEngine(fresh)
	if applied, err := replayed.ReplayWAL(context.Background(), leaderWAL); err != nil || applied != records {
		t.Fatalf("ReplayWAL applied %d (err %v), want %d", applied, err, records)
	}
	assertEnginesIdentical(t, leader, replayed)

	// Path two: the follower stream, one ApplyReplicated (and one view
	// publish) per record, re-logging to its own local WAL.
	followerWAL, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer followerWAL.Close() //simrank:errok test cleanup on a SyncNone log
	fresh2, err := NewEngine(5, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	follower := WrapEngine(fresh2)
	follower.SetWAL(followerWAL)
	viewsBefore := follower.ViewInfo().Published
	streamed := 0
	if err := leaderWAL.Replay(0, func(rec *wal.Record) error {
		streamed++
		return follower.ApplyReplicated(rec)
	}); err != nil {
		t.Fatal(err)
	}
	if streamed != records {
		t.Fatalf("streamed %d records, want %d", streamed, records)
	}
	assertEnginesIdentical(t, leader, follower)
	if got := follower.ViewInfo().Published - viewsBefore; got != int64(records) {
		t.Fatalf("follower published %d views for %d records; followers serve one view per applied epoch", got, records)
	}

	// The follower's local log must now be equivalent to the leader's:
	// replaying it onto a third engine reproduces the same state, same
	// epochs.
	fresh3, err := NewEngine(5, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	restarted := WrapEngine(fresh3)
	if applied, err := restarted.ReplayWAL(context.Background(), followerWAL); err != nil || applied != records {
		t.Fatalf("replay of the follower's own log applied %d (err %v), want %d", applied, err, records)
	}
	assertEnginesIdentical(t, leader, restarted)
}

// TestApplyReplicatedDurabilityError: a record that applied and
// published but missed the follower's local log reports ErrDurability —
// the caller's cue to retry logging, not to treat the stream as
// diverged.
func TestApplyReplicatedDurabilityError(t *testing.T) {
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	follower, err := NewConcurrentEngine(4, nil, Options{K: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	follower.SetWAL(w)
	if err := w.Close(); err != nil { // every Append from here fails
		t.Fatal(err)
	}
	rec := &wal.Record{Epoch: follower.Epoch() + 1, Kind: wal.KindUpdate,
		Updates: []Update{{Edge: Edge{From: 0, To: 1}, Insert: true}}}
	err = follower.ApplyReplicated(rec)
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("error = %v, want ErrDurability", err)
	}
	if !follower.HasEdge(0, 1) || follower.Epoch() != rec.Epoch {
		t.Fatal("durability failure rolled back an applied replicated record")
	}
}

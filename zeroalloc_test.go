package simrank

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/race"
)

// skipIfRace makes the -race skip of AllocsPerRun assertions explicit:
// race instrumentation allocates shadow-memory bookkeeping, so "zero
// allocations" is unprovable under the detector. Logging the reason
// keeps a -race CI lane honest about which guarantees it did not check.
func skipIfRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("zero-allocation assertion skipped under -race: detector instrumentation allocates, so AllocsPerRun cannot prove the guarantee")
	}
}

func randTestGraph(rng *rand.Rand, n, m int) *graph.DiGraph {
	g := graph.New(n)
	for g.M() < m {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// Steady-state Engine.Apply must perform zero heap allocations: the
// persistent workspace supplies Qᵀ (maintained incrementally, never
// rebuilt) and every scratch buffer. The toggle re-deletes and re-inserts
// existing edges so graph-map and support capacities settle during the
// warm-up pass.
func TestEngineApplyZeroAllocs(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewSource(5))
	g := randTestGraph(rng, 40, 160)
	eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()[:4]
	toggle := func() {
		for _, e := range edges {
			if _, err := eng.Delete(e.From, e.To); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Insert(e.From, e.To); err != nil {
				t.Fatal(err)
			}
		}
	}
	toggle() // warm up
	if allocs := testing.AllocsPerRun(20, toggle); allocs != 0 {
		t.Fatalf("warm Apply allocated %v times per toggle pass, want 0", allocs)
	}
}

// The parallel update path shares the steady-state guarantee: after the
// first Apply spawns the worker pool and grows the per-worker scratch
// (the audited //simrank:coldpath lines), a warm row-parallel Apply
// dispatches over persistent channels into persistent buffers and must
// not allocate at all.
func TestEngineApplyParallelZeroAllocs(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewSource(17))
	g := randTestGraph(rng, 40, 160)
	eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	edges := g.Edges()[:4]
	toggle := func() {
		for _, e := range edges {
			if _, err := eng.Delete(e.From, e.To); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Insert(e.From, e.To); err != nil {
				t.Fatal(err)
			}
		}
	}
	toggle() // warm up: pool spawn and scratch growth happen here
	if allocs := testing.AllocsPerRun(20, toggle); allocs != 0 {
		t.Fatalf("warm parallel Apply allocated %v times per toggle pass, want 0", allocs)
	}
}

// Single-update ApplyBatch — the steady state of the server's coalescing
// pipeline at low traffic — shares the zero-allocation guarantee: the
// up-front batch validation must not build its overlay map for one
// update.
func TestEngineApplyBatchSingleZeroAllocs(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewSource(7))
	g := randTestGraph(rng, 40, 160)
	// RecomputeThreshold ≥ 1 keeps a singleton batch on the incremental
	// path regardless of |E|.
	eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 10, RecomputeThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	e0 := g.Edges()[0]
	del := []Update{{Edge: e0, Insert: false}}
	ins := []Update{{Edge: e0, Insert: true}}
	toggle := func() {
		if err := eng.ApplyBatch(del); err != nil {
			t.Fatal(err)
		}
		if err := eng.ApplyBatch(ins); err != nil {
			t.Fatal(err)
		}
	}
	toggle() // warm up
	if allocs := testing.AllocsPerRun(20, toggle); allocs != 0 {
		t.Fatalf("warm single-update ApplyBatch allocated %v times per toggle, want 0", allocs)
	}
}

// The unpruned path shares the same guarantee once its dense scratch is
// warm.
func TestEngineApplyZeroAllocsUnpruned(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewSource(13))
	g := randTestGraph(rng, 30, 120)
	eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 8, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	e0 := g.Edges()[0]
	toggle := func() {
		if _, err := eng.Delete(e0.From, e0.To); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Insert(e0.From, e0.To); err != nil {
			t.Fatal(err)
		}
	}
	toggle()
	if allocs := testing.AllocsPerRun(20, toggle); allocs != 0 {
		t.Fatalf("warm unpruned Apply allocated %v times per toggle, want 0", allocs)
	}
}

// A warm sequential Recompute (Workers = 1) ping-pongs between the
// engine's matrix and the workspace scratch — zero allocations. (The
// parallel path allocates O(Workers) per iteration for its goroutines;
// that small constant is the documented trade.)
func TestEngineRecomputeZeroAllocs(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewSource(29))
	g := randTestGraph(rng, 50, 200)
	eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.Recompute() // warm the CSR materialization buffers
	if allocs := testing.AllocsPerRun(10, eng.Recompute); allocs != 0 {
		t.Fatalf("warm Recompute allocated %v times, want 0", allocs)
	}
}

// Recompute must be a fixed point on an unchanged graph even when run
// through the in-place kernel with parallel workers.
func TestEngineRecomputeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randTestGraph(rng, 35, 140)
	serial, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		serial.Recompute()
		parallel.Recompute()
	}
	a, b := serial.Similarities(), parallel.Similarities()
	for i, v := range a.Data {
		if v != b.Data[i] {
			t.Fatalf("serial and parallel recompute differ at %d: %v vs %v", i, v, b.Data[i])
		}
	}
}

// TopKFor's bounded min-heap must preserve the seed's exact order:
// score descending, ties by neighbor id ascending, up to k entries.
func TestEngineTopKForMatchesReference(t *testing.T) {
	// Reference: the seed's insertion sort over all scored neighbors.
	reference := func(e *Engine, a, k int) []Pair {
		row := e.s.Row(a)
		var pairs []Pair
		for b, v := range row {
			if b != a && v != 0 {
				pairs = append(pairs, Pair{A: a, B: b, Score: v})
			}
		}
		for i := 1; i < len(pairs); i++ {
			for j := i; j > 0 && (pairs[j].Score > pairs[j-1].Score ||
				(pairs[j].Score == pairs[j-1].Score && pairs[j].B < pairs[j-1].B)); j-- {
				pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
			}
		}
		if k > len(pairs) {
			k = len(pairs)
		}
		return pairs[:k]
	}
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(30)
		g := randTestGraph(rng, n, 3*n)
		eng, err := NewEngine(n, g.Edges(), Options{C: 0.6, K: 8})
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n; a++ {
			for _, k := range []int{0, 1, 2, 5, n, 2 * n} {
				got := eng.TopKFor(a, k)
				want := reference(eng, a, k)
				if len(got) != len(want) {
					t.Fatalf("TopKFor(%d,%d) len %d, want %d", a, k, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("TopKFor(%d,%d)[%d] = %+v, want %+v", a, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// A restored snapshot has no workspace; the first update must rebuild it
// lazily and subsequent warm updates must again be allocation-free.
func TestSnapshotRestoreRebuildsWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := randTestGraph(rng, 25, 100)
	eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e0 := g.Edges()[0]
	toggle := func() {
		if _, err := restored.Delete(e0.From, e0.To); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.Insert(e0.From, e0.To); err != nil {
			t.Fatal(err)
		}
	}
	toggle() // builds the workspace lazily and warms it
	if race.Enabled {
		t.Log("zero-allocation assertion skipped under -race: detector instrumentation allocates; the rebuild path above still ran")
		return
	}
	if allocs := testing.AllocsPerRun(20, toggle); allocs != 0 {
		t.Fatalf("restored engine allocated %v times per warm toggle, want 0", allocs)
	}
}

// Enabling the query cache must not cost the write path its guarantee:
// dirty-row invalidation is map deletes and counter bumps, so a warm
// Apply stays at zero heap allocations with the cache on and populated.
func TestEngineApplyZeroAllocsWithCache(t *testing.T) {
	skipIfRace(t)
	rng := rand.New(rand.NewSource(5))
	g := randTestGraph(rng, 40, 160)
	eng, err := NewEngine(g.N(), g.Edges(), Options{C: 0.6, K: 10, TopKCacheRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < g.N(); a++ {
		eng.TopKFor(a, 5) // populate so invalidation has entries to drop
	}
	edges := g.Edges()[:4]
	toggle := func() {
		for _, e := range edges {
			if _, err := eng.Delete(e.From, e.To); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Insert(e.From, e.To); err != nil {
				t.Fatal(err)
			}
		}
	}
	toggle() // warm up
	if allocs := testing.AllocsPerRun(20, toggle); allocs != 0 {
		t.Fatalf("warm Apply with cache allocated %v times per toggle pass, want 0", allocs)
	}
}

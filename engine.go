package simrank

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/simstore"
)

// Edge is a directed edge From → To (a citation, hyperlink, …).
type Edge = graph.Edge

// Update is a unit link update: one edge insertion or deletion.
type Update = graph.Update

// Pair is a scored node-pair returned by TopK.
type Pair = metrics.Pair

// UpdateStats reports the work one incremental update performed.
type UpdateStats = core.Stats

// Backend names a similarity-store implementation; see Options.Backend.
type Backend = simstore.Backend

// The available similarity-store backends (see internal/simstore):
// dense is the exact 8n²-byte baseline, packed the exact symmetric
// ≈4n²-byte store, approx the Monte-Carlo stored-walk tier — sub-n²
// memory, writable via incremental walk repair.
const (
	BackendDense  = simstore.BackendDense
	BackendPacked = simstore.BackendPacked
	BackendApprox = simstore.BackendApprox
)

// ParseBackend validates a backend name ("" selects dense) — the parser
// behind Options.Backend and the simrankd -backend flag.
func ParseBackend(s string) (Backend, error) { return simstore.ParseBackend(s) }

// Options configures an Engine. The zero value selects the paper's
// defaults: C = 0.6, K = 15, pruning enabled.
type Options struct {
	// C is the damping factor in (0, 1); 0 selects the default 0.6
	// (Section VI-A, following Jeh and Widom).
	C float64
	// K is the number of iterations; 0 selects the default 15, with which
	// the truncation error C^K is ≈ 5·10⁻⁴ (Section VI-A).
	K int
	// DisablePruning switches updates from Inc-SR (Algorithm 2) to
	// Inc-uSR (Algorithm 1). The results are identical; only the work
	// differs. Mostly useful for benchmarking the pruning itself.
	DisablePruning bool
	// RecomputeThreshold is the batch-update crossover: when ApplyBatch
	// receives at least this fraction of |E| in one call, it recomputes
	// from scratch instead of folding unit updates (Exp-1 shows the
	// incremental path wins only while link updates are small). 0 selects
	// the default 0.15; set ≥ 1 to always fold incrementally.
	RecomputeThreshold float64
	// Workers bounds the goroutines used by the batch computations
	// (NewEngine's initial scores, Recompute, and ApplyBatch's recompute
	// crossover) AND by the incremental update path: the Inc-uSR/Inc-SR
	// mat-vecs, M-accumulations and S write-backs row-partition across a
	// persistent worker pool, and the approx backend fans walk repair
	// across affected walks. 0 selects GOMAXPROCS — for updates only on
	// graphs large enough to win (n ≥ 2048; below that auto stays
	// serial, since fan-out overhead would swamp the per-update work); 1
	// forces the sequential path everywhere, which additionally keeps a
	// warm Recompute allocation-free; an explicit count > 1 always
	// parallelizes. The result is bit-identical for every value — the
	// serial and parallel paths execute the same per-cell float streams
	// (see README "Parallel updates"). Not persisted in snapshots.
	// Changeable at runtime via SetWorkers, which must not run
	// concurrently with an update (ConcurrentEngine serializes it under
	// its writer mutex).
	Workers int
	// TopKCacheRows enables the read-path query cache: up to this many
	// per-row TopKFor results (plus one global TopK result) are retained,
	// LRU-evicted, and invalidated only for the rows each incremental
	// update actually wrote (core.Stats.DirtyRows) — wholesale on
	// Recompute and AddNodes. Cached answers are bit-identical to fresh
	// scans. ≤ 0 (the default) disables caching. Like Workers this is a
	// pure runtime knob: not persisted in snapshots, changeable after
	// construction via SetTopKCacheRows.
	TopKCacheRows int
	// Backend selects the similarity store the engine keeps S in; the
	// empty value selects "dense", today's exact 8n²-byte matrix. "packed"
	// is the exact symmetric store at about half that; "approx" drops the
	// matrix entirely for a Monte-Carlo stored-walk tier (O(n·(W·L+d))
	// memory, per-query standard errors, updates absorbed by repairing
	// only the affected walk suffixes) — the only backend that loads
	// graphs whose n² is out of budget. The backend is baked into the
	// similarity state and persisted in snapshots.
	Backend Backend
	// ApproxWalks is the per-pair walk budget of the approx backend
	// (ignored elsewhere); 0 selects the default 128, the maximum is
	// simstore.MaxWalks (the same bound snapshots enforce on restore).
	// More walks shrink the standard error as 1/√walks; with stored
	// walks the budget prices memory (W·(K+1) positions per node) as
	// well as per-query reads.
	ApproxWalks int
	// ApproxSeed is the approx backend's derived-seed root (ignored
	// elsewhere); 0 selects the default 1. The whole walk set is a pure
	// function of (graph, seed, walks, K), so equal-seed engines over
	// equal graphs answer queries bit-identically — whether the graph
	// was reached by construction, incremental repair, WAL replay or
	// snapshot restore.
	ApproxSeed int64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.K == 0 {
		o.K = 15
	}
	if o.RecomputeThreshold == 0 {
		o.RecomputeThreshold = 0.15
	}
	if o.Backend == "" {
		o.Backend = BackendDense
	}
	if o.ApproxWalks == 0 {
		o.ApproxWalks = 128
	}
	if o.ApproxSeed == 0 {
		o.ApproxSeed = 1
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("simrank: damping factor C=%v outside (0,1)", o.C)
	}
	if o.K < 1 {
		return fmt.Errorf("simrank: iteration count K=%d < 1", o.K)
	}
	if _, err := simstore.ParseBackend(string(o.Backend)); err != nil {
		return fmt.Errorf("simrank: %w", err)
	}
	if o.ApproxWalks < 0 || o.ApproxWalks > simstore.MaxWalks {
		return fmt.Errorf("simrank: approx walk budget %d outside [0, %d]", o.ApproxWalks, simstore.MaxWalks)
	}
	return nil
}

// Engine maintains a directed graph together with its (matrix-form)
// SimRank similarities, updating them incrementally as links change.
// It is not safe for concurrent mutation; wrap with a lock if shared.
type Engine struct {
	opts Options
	g    *graph.DiGraph
	// s is the similarity store (see Options.Backend): a dense or packed
	// exact matrix the incremental machinery writes through, or the
	// approx sampling tier, whose stored walks the write paths repair
	// incrementally instead (see Apply's approx branch).
	s simstore.Store
	// ws is the persistent compute workspace: the incrementally-maintained
	// transition matrices plus every update scratch buffer, so steady-state
	// Apply allocates nothing. Built lazily (nil after ReadSnapshot and
	// after AddNodes) and kept in lock-step with g by every mutation.
	ws *core.Workspace
	// cache is the dirty-row-invalidated top-k query cache, nil when
	// disabled (Options.TopKCacheRows ≤ 0). Entries are epoch-stamped
	// (see internal/cache): every mutation path bumps the epoch and
	// records what moved — Apply the update's dirty rows, Recompute and
	// AddNodes wholesale — so cached answers are provably bit-identical
	// at whatever epoch they are read.
	cache *cache.TopK
	// epoch counts committed mutations, monotonically: the version
	// number the MVCC facade stamps on published read views and the
	// cache stamps on entries. Bumped by Apply, Recompute, AddNodes,
	// SetWorkers and SetTopKCacheRows (anything a reader could observe).
	epoch uint64
	// lastStats records the most recent incremental update's work.
	lastStats UpdateStats
}

// NewEngine builds an engine over n nodes with the given initial edges.
// Exact backends (dense, packed) compute the initial similarities with
// the batch algorithm (row-parallel across Options.Workers goroutines);
// the approx backend skips the O(Kd'n²) batch step entirely and only
// samples its O(n·(W·K+d)) stored-walk index — which is what lets it
// load graphs whose n×n matrix could never be materialized.
func NewEngine(n int, edges []Edge, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("simrank: negative node count %d", n)
	}
	g := graph.FromEdges(n, edges)
	e := &Engine{opts: opts, g: g}
	switch opts.Backend {
	case BackendDense:
		ds := simstore.NewDense(n)
		// The ping-pong scratch here is transient: engines that never call
		// Recompute should not retain a second n×n buffer for their lifetime
		// (the workspace allocates its own lazily on the first Recompute).
		batch.MatrixFormInto(ds.Matrix(), matrix.NewDense(n, n), e.workspace().TransitionCSR(), opts.C, opts.K, opts.Workers)
		e.s = ds
	case BackendPacked:
		// The kernel iterates on dense ping-pong buffers (its sparse-dense
		// products need full rows); both are transient here, so the packed
		// engine's steady state holds only the ≈4n² packed payload.
		ps := simstore.NewPacked(n)
		buf := matrix.NewDense(n, n)
		batch.MatrixFormInto(buf, matrix.NewDense(n, n), e.workspace().TransitionCSR(), opts.C, opts.K, opts.Workers)
		ps.SetFromDense(buf)
		e.s = ps
	case BackendApprox:
		// Walk cap = K: the sampling tier truncates its series at the same
		// depth an exact K-iteration engine would.
		as, err := simstore.NewApprox(g, opts.C, opts.K, opts.ApproxWalks, opts.ApproxSeed)
		if err != nil {
			return nil, fmt.Errorf("simrank: %w", err)
		}
		as.SetWorkers(opts.Workers)
		e.s = as
	}
	e.setTopKCacheRows(opts.TopKCacheRows)
	return e, nil
}

// Epoch returns the engine's monotone mutation counter: 0 at
// construction, +1 per committed Apply, Recompute, AddNodes,
// SetWorkers or SetTopKCacheRows. The MVCC facade stamps each
// published read view with it, the write-ahead log tags each record
// with it, and version-3 snapshots persist it — a restored engine
// resumes at the serialized epoch (0 for pre-WAL v1/v2 files), so WAL
// replay knows where to start and post-restore appends keep advancing
// the same chain.
func (e *Engine) Epoch() uint64 { return e.epoch }

// Backend returns the similarity-store backend the engine runs on.
func (e *Engine) Backend() Backend { return e.s.Backend() }

// StoreMemBytes reports the similarity store's resident size in bytes —
// 8n² dense, ≈4n² packed, O(n+m) approx. Served as /stats
// "store_bytes".
func (e *Engine) StoreMemBytes() int64 { return e.s.MemBytes() }

// workspace returns the engine's persistent compute workspace, building
// it from the current graph on first use.
func (e *Engine) workspace() *core.Workspace {
	if e.ws == nil {
		e.ws = core.NewWorkspace(e.g)
		e.ws.SetWorkers(e.opts.Workers)
	}
	return e.ws
}

// N returns the number of nodes.
func (e *Engine) N() int { return e.g.N() }

// M returns the number of edges.
func (e *Engine) M() int { return e.g.M() }

// HasEdge reports whether edge (i, j) is present; out-of-range nodes
// have no edges, so the answer is false rather than a panic.
func (e *Engine) HasEdge(i, j int) bool {
	if !e.validNode(i) || !e.validNode(j) {
		return false
	}
	return e.g.HasEdge(i, j)
}

// validNode reports whether v names a node of the current graph. Every
// query validates through this: queries never panic — an out-of-range
// node yields the zero result (score 0, empty top-k), matching a node
// the graph has never related to anything.
func (e *Engine) validNode(v int) bool { return v >= 0 && v < e.g.N() }

// Similarity returns the current SimRank score s(a, b), or 0 when either
// node is out of range. On the approx backend this is a sampling
// estimate (use SimilarityStderr for its confidence).
func (e *Engine) Similarity(a, b int) float64 {
	if !e.validNode(a) || !e.validNode(b) {
		return 0
	}
	return e.s.At(a, b)
}

// SimilarityStderr returns s(a, b) together with the standard error of
// the answer: 0 on the exact backends, the sampling stderr on approx
// (|true − est| ≤ 3·stderr with ≈99% confidence). Out-of-range nodes
// yield (0, 0).
func (e *Engine) SimilarityStderr(a, b int) (score, stderr float64) {
	if !e.validNode(a) || !e.validNode(b) {
		return 0, 0
	}
	if smp, ok := e.s.(simstore.Sampler); ok {
		return smp.PairStderr(a, b)
	}
	return e.s.At(a, b), 0
}

// Similarities returns the full similarity matrix. The returned matrix is
// a snapshot copy; mutating it does not affect the engine. The approx
// backend returns nil — materializing n² estimates is the workload that
// backend exists to refuse.
func (e *Engine) Similarities() *matrix.Dense { return e.s.ToDense() }

// TopK returns the k most similar distinct node-pairs (nil when k ≤ 0).
// With the query cache enabled, a repeat of a warm k is served without
// rescanning the n²/2 pairs; the answer is bit-identical either way.
// On the approx backend TopK returns nil: a global scan over all n²/2
// pairs is exactly the work the sampling tier exists to avoid (use
// TopKFor per node instead).
func (e *Engine) TopK(k int) []Pair {
	return storeTopK(e.s, e.cache, e.epoch, k)
}

// storeTopK is the global top-k read path, shared verbatim by the
// mutable engine (epoch = its mutation counter) and every sealed MVCC
// view (epoch = the view's) so the two can never drift.
func storeTopK(s simstore.Store, c *cache.TopK, epoch uint64, k int) []Pair {
	if k <= 0 || s.Backend() == BackendApprox {
		return nil
	}
	if c != nil {
		if ps, ok := c.GetGlobal(k, epoch); ok {
			return ps
		}
		ps := metrics.TopKPairsUpper(s.N(), s.UpperRow, k)
		c.PutGlobal(k, ps, epoch)
		return metrics.ClonePairs(ps)
	}
	return metrics.TopKPairsUpper(s.N(), s.UpperRow, k)
}

// TopKFor returns up to k nodes most similar to node a, highest first
// (ties by node id ascending), or nil when a is out of range or k ≤ 0.
// A bounded min-heap keeps the row scan at O(n·log k) instead of sorting
// every scored neighbor; with the query cache enabled a warm row skips
// the scan entirely until an update dirties it.
func (e *Engine) TopKFor(a, k int) []Pair {
	if !e.validNode(a) || k <= 0 {
		return nil
	}
	return storeTopKFor(e.s, e.cache, e.epoch, a, k)
}

// storeTopKFor is the per-row top-k read path shared by the mutable
// engine and every sealed MVCC view; the caller has validated a and k.
func storeTopKFor(s simstore.Store, c *cache.TopK, epoch uint64, a, k int) []Pair {
	// Sampling backends bypass the cache: a sampled list shorter than k
	// does not mean the row is exhausted (weak candidates can refine to
	// zero and drop out), which would violate the cache's
	// short-result-serves-any-larger-k rule — and sampled answers are
	// not bit-stable across calls in the first place.
	if smp, ok := s.(simstore.Sampler); ok {
		return smp.TopKRow(a, k)
	}
	if c != nil {
		if ps, ok := c.GetRow(a, k, epoch); ok {
			return ps
		}
		ps := metrics.TopKRow(s.ConcurrentRow(a), a, k)
		c.PutRow(a, k, ps, epoch)
		return metrics.ClonePairs(ps)
	}
	// Exact backends scan a concurrency-safe row view: a zero-copy alias
	// on dense, one O(n) materialization on packed.
	return metrics.TopKRow(s.ConcurrentRow(a), a, k)
}

// Insert adds edge (i, j) and incrementally updates all similarities.
func (e *Engine) Insert(i, j int) (UpdateStats, error) {
	return e.Apply(Update{Edge: Edge{From: i, To: j}, Insert: true})
}

// Delete removes edge (i, j) and incrementally updates all similarities.
func (e *Engine) Delete(i, j int) (UpdateStats, error) {
	return e.Apply(Update{Edge: Edge{From: i, To: j}, Insert: false})
}

// Apply performs one unit update incrementally (Inc-SR, or Inc-uSR when
// pruning is disabled). On a warm engine this is the zero-allocation hot
// path: the persistent workspace supplies the transposed transition
// matrix (maintained in O(d) per update, never rebuilt) and every scratch
// buffer the algorithms need.
//
// The returned UpdateStats.DirtyRows aliases workspace scratch: it is
// valid until this engine's next update (copy it to retain) — see the
// lifetime contract on core.Stats.DirtyRows. ConcurrentEngine's
// wrappers return the detached copy snapshotted at view-publish time
// instead.
//
// On the approx backend the update instead repairs the stored-walk
// index: DirtyRows is a fresh slice naming the nodes whose walk sets
// changed, and the only stats populated are DirtyRows itself.
//
//simrank:noalloc
func (e *Engine) Apply(up Update) (UpdateStats, error) {
	if as, ok := e.s.(*simstore.Approx); ok {
		// The sampling tier bypasses the Inc-SR/Inc-uSR write-backs — it
		// has no matrix cells for them. Instead the walk index absorbs the
		// topology change directly, resampling only the invalidated walk
		// suffixes. Same validation, same error shapes as the exact path.
		//simrank:allocok approx repair path: one 1-element slice per update, not the exact-tier hot path
		if err := e.validateBatch([]Update{up}); err != nil {
			return UpdateStats{}, err
		}
		e.g.Apply(up)
		if e.ws != nil {
			e.ws.ApplyUpdate(up)
		}
		st := UpdateStats{DirtyRows: as.ApplyUpdate(up)}
		e.epoch++
		if e.cache != nil {
			e.cache.InvalidateRows(st.DirtyRows, e.epoch)
		}
		e.lastStats = st
		return st, nil
	}
	// The workspace variants never mutate S before their last error check,
	// so a failed update leaves the engine untouched.
	ws := e.workspace()
	var (
		st  UpdateStats
		err error
	)
	if e.opts.DisablePruning {
		st, err = ws.IncUSR(e.s, up, e.opts.C, e.opts.K)
	} else {
		st, err = ws.IncSR(e.s, up, e.opts.C, e.opts.K)
	}
	if err != nil {
		return UpdateStats{}, err
	}
	e.g.Apply(up)
	ws.ApplyUpdate(up)
	// Thread the dirty set into the store's copy-on-write machinery: the
	// dense double-buffer re-syncs exactly these rows on its next flip
	// (no-op on packed/approx, and on stores never sealed).
	e.s.MarkRowsDirty(st.DirtyRows)
	e.epoch++
	if e.cache != nil {
		// Surgical invalidation: only the rows this update wrote lose
		// their cached top-k; everything else keeps serving. The epoch
		// stamp fences off concurrent readers of older views without
		// excluding them.
		e.cache.InvalidateRows(st.DirtyRows, e.epoch)
	}
	e.lastStats = st
	return st, nil
}

// ApplyBatch folds a batch of unit updates. When the batch is large
// relative to the edge count (≥ RecomputeThreshold·|E|), it applies the
// graph changes and recomputes from scratch, which Exp-1 shows is the
// faster regime. Every update must be applicable in sequence; the whole
// batch is validated against a simulated application before anything is
// mutated, so a failed batch is a no-op — the graph and similarities are
// exactly as before the call.
func (e *Engine) ApplyBatch(ups []Update) error {
	if len(ups) == 0 {
		return nil
	}
	if err := e.validateBatch(ups); err != nil {
		return err
	}
	denom := e.g.M()
	if denom == 0 {
		denom = 1
	}
	if float64(len(ups)) >= e.opts.RecomputeThreshold*float64(denom) {
		for _, up := range ups {
			e.g.Apply(up)
			if e.ws != nil {
				e.ws.ApplyUpdate(up)
			}
		}
		e.Recompute()
		return nil
	}
	for _, up := range ups {
		if _, err := e.Apply(up); err != nil {
			return err
		}
	}
	return nil
}

// validateBatch checks that every update in ups applies cleanly when the
// batch is folded in order, without touching the engine: an overlay map
// simulates the pending edge insertions/deletions over the live graph.
// The single-update case — the steady state of a low-traffic coalescing
// pipeline, where every drain cycle holds one update — skips the overlay
// so it stays allocation-free.
//
//simrank:noalloc
func (e *Engine) validateBatch(ups []Update) error {
	n := e.g.N()
	var overlay map[Edge]bool
	if len(ups) > 1 {
		overlay = make(map[Edge]bool, len(ups)) //simrank:allocok multi-update batches only; the single-update steady state skips the overlay
	}
	for _, up := range ups {
		if up.Edge.From < 0 || up.Edge.From >= n || up.Edge.To < 0 || up.Edge.To >= n {
			return &core.ErrBadUpdate{Update: up, Reason: "node out of range"}
		}
		present, pending := overlay[up.Edge]
		if !pending {
			present = e.g.HasEdge(up.Edge.From, up.Edge.To)
		}
		if up.Insert == present {
			reason := "edge absent"
			if present {
				reason = "edge already present"
			}
			return &core.ErrBadUpdate{Update: up, Reason: reason}
		}
		if overlay != nil {
			overlay[up.Edge] = up.Insert //simrank:allocok same gated overlay; nil on the single-update path
		}
	}
	return nil
}

// AddNodes appends count isolated nodes and returns the id of the first
// new one. The similarity matrix is extended exactly, not recomputed: an
// isolated node v has s(v, v) = 1−C and s(v, ·) = 0 in the matrix form,
// so the padded matrix is the new graph's exact fixed point.
func (e *Engine) AddNodes(count int) (first int, err error) {
	if count < 0 {
		return 0, fmt.Errorf("simrank: negative node count %d", count)
	}
	first = e.g.AddNodes(count)
	e.s = e.s.AddNodes(count, 1-e.opts.C)
	// The workspace is sized for the old n; rebuild it lazily at the new
	// size on the next update. Its worker pool would otherwise leak with
	// the dropped workspace — the goroutines block on their job channels
	// forever — so stop it first.
	if e.ws != nil {
		e.ws.StopPool()
	}
	e.ws = nil
	e.epoch++
	if e.cache != nil {
		// Wholesale: the cached slices were computed over the old matrix.
		// (The padded rows are value-identical, but a flush is the simple
		// invariant every resize shares.)
		e.cache.Flush(e.epoch)
		e.cache.ReserveRows(e.g.N())
	}
	return first, nil
}

// Recompute rebuilds the similarities from scratch with the batch
// algorithm (the engine's safety valve; never needed for correctness).
// On the dense backend it runs the unified row-parallel kernel across
// Options.Workers goroutines, ping-ponging between the engine's matrix
// and the workspace's persistent scratch buffer — a warm sequential
// recompute (Workers = 1) allocates nothing. The packed backend iterates
// on two transient dense buffers and compresses the result back into
// packed storage: its recompute transiently costs 16n² bytes, but its
// steady state never retains a dense buffer. The approx backend
// resamples its whole walk set from the current graph — by the derived
// -seed invariant the outcome is identical to the incremental repairs
// that could have reached the same topology, so here too Recompute is
// about cost (one O(n·W·L) pass beating many per-edge repairs), never
// correctness.
func (e *Engine) Recompute() {
	if as, ok := e.s.(*simstore.Approx); ok {
		as.Recompute(e.g)
		e.epoch++
		if e.cache != nil {
			e.cache.Flush(e.epoch)
		}
		return
	}
	ws := e.workspace()
	switch s := e.s.(type) {
	case *simstore.Dense:
		// The discard variant flips the MVCC double-buffer without the
		// syncing copy — the kernel overwrites every cell anyway (it
		// starts from S₀ = (1−C)I) — and leaves the other buffer marked
		// wholly stale, which MarkAllRowsDirty re-asserts.
		batch.MatrixFormInto(s.WritableMatrixDiscard(), ws.DenseScratch(), ws.TransitionCSR(), e.opts.C, e.opts.K, e.opts.Workers)
		s.MarkAllRowsDirty()
	case *simstore.Packed:
		buf := matrix.NewDense(s.N(), s.N())
		batch.MatrixFormInto(buf, matrix.NewDense(s.N(), s.N()), ws.TransitionCSR(), e.opts.C, e.opts.K, e.opts.Workers)
		s.SetFromDense(buf)
	}
	e.epoch++
	if e.cache != nil {
		e.cache.Flush(e.epoch) // every entry may have moved
	}
}

// LastStats returns the statistics of the most recent incremental
// update. Its DirtyRows carries Apply's aliasing caveat: stale (and
// possibly rewritten) once a newer update has run.
func (e *Engine) LastStats() UpdateStats { return e.lastStats }

// SingleSourceScores computes s(query, ·) for a graph directly, without
// building an engine or the n×n similarity matrix — O(K²·m) time, O(n)
// memory. Useful for one-off queries on graphs too large to score fully.
func SingleSourceScores(n int, edges []Edge, query int, opts Options) ([]float64, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.FromEdges(n, edges)
	return batch.SingleSource(g.BackwardTransition(), opts.C, opts.K, query)
}

// Options returns the engine's effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }

// SetWorkers changes the batch-computation AND update-path parallelism
// (see Options.Workers). Unlike C, K and pruning — which are baked into
// the similarity state — Workers is a pure runtime knob, so it is the
// one option that may be changed after construction; snapshots do not
// persist it, and restored engines default to GOMAXPROCS until told
// otherwise.
//
// Must not run concurrently with an update: it resizes the per-worker
// scratch and tears down the worker pool the update path dispatches
// into. ConcurrentEngine.SetWorkers holds the writer mutex for exactly
// this reason.
func (e *Engine) SetWorkers(workers int) {
	e.opts.Workers = workers
	if e.ws != nil {
		e.ws.SetWorkers(workers)
	}
	if as, ok := e.s.(*simstore.Approx); ok {
		as.SetWorkers(workers)
	}
	e.epoch++ // Options() is reader-visible state
}

// Close releases the engine's background resources — today the
// persistent update worker pool, whose goroutines otherwise block on
// their job channels for the process lifetime. The engine remains
// usable afterwards: the pool respawns on the next parallel update.
// Safe to call multiple times.
func (e *Engine) Close() {
	if e.ws != nil {
		e.ws.StopPool()
	}
}

// CacheStats is the query cache's counter snapshot; see cache.Stats.
type CacheStats = cache.Stats

// CacheStats returns the query cache's counters (all zero when the cache
// is disabled). RowMisses counts actual similarity-row scans, so a warm
// cache is doing zero scan work exactly while RowMisses holds still.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.Stats()
}

// SetTopKCacheRows resizes (or enables/disables, with rows ≤ 0) the
// query cache. Like SetWorkers this is the runtime-knob escape hatch for
// restored snapshots, which default to no cache; the new cache starts
// cold with fresh counters.
func (e *Engine) SetTopKCacheRows(rows int) {
	e.setTopKCacheRows(rows)
	e.epoch++ // a new (cold) cache is reader-visible state
}

// ConfigureRestored applies the runtime knobs a snapshot does not
// persist — batch parallelism (workers ≤ 0 keeps the restored default)
// and the query cache — WITHOUT advancing the epoch: the boot-time form
// of SetWorkers/SetTopKCacheRows, for an engine that has not yet served
// a reader. Read replicas in particular must configure themselves this
// way: a replica's epoch sequence is owned by the leader's record
// stream, and an epoch minted locally at boot would collide with — and
// silently swallow — the leader's next record (see cmd/simrankd).
func (e *Engine) ConfigureRestored(workers, topkRows int) {
	if workers > 0 {
		e.opts.Workers = workers
		if e.ws != nil {
			e.ws.SetWorkers(workers)
		}
		if as, ok := e.s.(*simstore.Approx); ok {
			as.SetWorkers(workers)
		}
	}
	e.setTopKCacheRows(topkRows)
}

// setTopKCacheRows is SetTopKCacheRows without the epoch bump — the
// constructor's form, so a freshly built engine starts at epoch 0.
func (e *Engine) setTopKCacheRows(rows int) {
	e.opts.TopKCacheRows = rows
	if rows > 0 {
		e.cache = cache.New(rows)
		// Pre-size the dirty ledger so warm updates never grow it
		// (preserving Apply's zero-allocation guarantee).
		e.cache.ReserveRows(e.g.N())
	} else {
		e.cache = nil
	}
}

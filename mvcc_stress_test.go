package simrank

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/simstore"
)

// mvccStep is one epoch-advancing mutation of the deterministic writer
// schedule: exactly one of the fields is set. Replaying the schedule
// serially on a plain Engine visits the same epochs with the same
// state, which is what lets the stress test demand bit-equality.
type mvccStep struct {
	apply     *Update
	batch     []Update
	addNodes  int
	recompute bool
}

// epochs returns how many epoch increments the step commits.
func (s mvccStep) epochs() int {
	switch {
	case s.apply != nil, s.addNodes > 0, s.recompute:
		return 1
	default:
		return len(s.batch) // incremental path: one bump per folded update
	}
}

func (s mvccStep) run(t *testing.T, apply func(Update) error, batch func([]Update) error, addNodes func(int) error, recompute func()) {
	t.Helper()
	switch {
	case s.apply != nil:
		if err := apply(*s.apply); err != nil {
			t.Errorf("apply %v: %v", *s.apply, err)
		}
	case s.batch != nil:
		if err := batch(s.batch); err != nil {
			t.Errorf("batch %v: %v", s.batch, err)
		}
	case s.addNodes > 0:
		if err := addNodes(s.addNodes); err != nil {
			t.Errorf("addnodes %d: %v", s.addNodes, err)
		}
	case s.recompute:
		recompute()
	}
}

// buildMVCCSchedule produces a deterministic stream of valid mutations
// over a growing graph, tracking edge presence so every update applies
// cleanly.
func buildMVCCSchedule(seed int64, n0, steps int) (edges []Edge, sched []mvccStep) {
	rng := rand.New(rand.NewSource(seed))
	n := n0
	present := map[Edge]bool{}
	for len(edges) < 3*n0 {
		e := Edge{From: rng.Intn(n), To: rng.Intn(n)}
		if !present[e] {
			present[e] = true
			edges = append(edges, e)
		}
	}
	flip := func() Update {
		e := Edge{From: rng.Intn(n), To: rng.Intn(n)}
		up := Update{Edge: e, Insert: !present[e]}
		present[e] = up.Insert
		return up
	}
	for i := 0; i < steps; i++ {
		switch r := rng.Intn(10); {
		case r < 6:
			up := flip()
			sched = append(sched, mvccStep{apply: &up})
		case r < 8:
			b := make([]Update, 0, 3)
			seen := map[Edge]bool{}
			for len(b) < 3 {
				up := flip()
				if seen[up.Edge] {
					continue // keep the overlay simple: one touch per edge per batch
				}
				seen[up.Edge] = true
				b = append(b, up)
			}
			sched = append(sched, mvccStep{batch: b})
		case r < 9:
			sched = append(sched, mvccStep{addNodes: 1})
			n++
		default:
			sched = append(sched, mvccStep{recompute: true})
		}
	}
	return edges, sched
}

// mvccObs is one reader observation, tagged with the epoch of the view
// it was read from.
type mvccObs struct {
	epoch  uint64
	n, m   int
	a, b   int
	sim    float64
	topka  int
	k      int
	topk   []Pair
	global []Pair
}

// TestMVCCStressSnapshotIsolation hammers the lock-free read path from
// N goroutines while a writer streams Apply/ApplyBatch/AddNodes/
// Recompute, then serially replays the same schedule and demands that
// every observation was internally consistent: its (n, m) pair matches
// the replay at that epoch, epochs were monotone per reader, and every
// score and top-k is bit-equal to the serial engine at that epoch. Run
// with -race in CI; exercises both exact backends with the query cache
// on (cached answers must be bit-equal too) plus the approx backend,
// whose deterministic stored-walk queries make the same bit-replay
// valid even though every commit there is an incremental walk repair.
// The whole matrix also runs at Workers ∈ {1, 2, 4, 8} while the
// replay oracle stays serial, so every row-parallel commit is checked
// bit-for-bit against the sequential floats.
func TestMVCCStressSnapshotIsolation(t *testing.T) {
	for _, backend := range []Backend{BackendDense, BackendPacked, BackendApprox} {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", backend, workers), func(t *testing.T) {
				runMVCCStress(t, backend, workers)
			})
		}
	}
}

func runMVCCStress(t *testing.T, backend Backend, workers int) {
	const (
		n0      = 18
		steps   = 60
		readers = 4
	)
	opts := Options{C: 0.6, K: 6, Backend: backend, ApproxWalks: 32,
		TopKCacheRows: 12, RecomputeThreshold: 100, Workers: workers}
	edges, sched := buildMVCCSchedule(11, n0, steps)

	ce, err := NewConcurrentEngine(n0, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()

	var (
		wg   sync.WaitGroup
		stop = make(chan struct{})
		obs  = make([][]mvccObs, readers)
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			var last uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := ce.acquire()
				o := mvccObs{epoch: v.epoch, n: v.n, m: v.m}
				if o.epoch < last {
					t.Errorf("reader %d: epoch went backwards %d -> %d", r, last, o.epoch)
					release(v)
					return
				}
				last = o.epoch
				o.a, o.b = rng.Intn(o.n), rng.Intn(o.n)
				o.sim = v.similarity(o.a, o.b)
				o.topka = rng.Intn(o.n)
				o.k = 1 + rng.Intn(5)
				o.topk = v.topKFor(o.topka, o.k)
				if i%7 == 0 {
					o.global = v.topK(4)
				}
				release(v)
				if i%16 == 0 { // keep memory bounded; sample the rest
					obs[r] = append(obs[r], o)
				}
			}
		}(r)
	}

	// The writer streams the schedule against the readers.
	for _, st := range sched {
		st.run(t,
			func(up Update) error { _, err := ce.Apply(up); return err },
			ce.ApplyBatch,
			func(k int) error { _, err := ce.AddNodes(k); return err },
			func() { _ = ce.Recompute() },
		)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Serial replay: a plain engine stepping the same schedule.
	// Group observations by epoch, advance the replay engine epoch
	// by epoch, and compare bits.
	byEpoch := map[uint64][]mvccObs{}
	var maxEpoch uint64
	for _, ro := range obs {
		for _, o := range ro {
			byEpoch[o.epoch] = append(byEpoch[o.epoch], o)
			if o.epoch > maxEpoch {
				maxEpoch = o.epoch
			}
		}
	}
	// The replay oracle always runs serial, whatever worker count the
	// live engine used: bit-equality here is the end-to-end proof that
	// the row-parallel write-back reproduces the serial floats exactly.
	refOpts := opts
	refOpts.Workers = 1
	ref, err := NewEngine(n0, edges, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(epoch uint64) {
		for _, o := range byEpoch[epoch] {
			if o.n != ref.N() || o.m != ref.M() {
				t.Fatalf("epoch %d: observed (n,m)=(%d,%d), replay has (%d,%d)",
					epoch, o.n, o.m, ref.N(), ref.M())
			}
			if got := ref.Similarity(o.a, o.b); got != o.sim {
				t.Fatalf("epoch %d: s(%d,%d) observed %v, replay %v",
					epoch, o.a, o.b, o.sim, got)
			}
			// Replay at the recorded k: both engines are deterministic,
			// so the whole answer must match bit for bit. (The approx
			// sampled list may be shorter than k — zero-score drop —
			// which is why k itself is recorded, not inferred.)
			want := ref.TopKFor(o.topka, o.k)
			if len(want) != len(o.topk) {
				t.Fatalf("epoch %d: topKFor(%d,%d) observed %d pairs, replay %d",
					epoch, o.topka, o.k, len(o.topk), len(want))
			}
			for i := range o.topk {
				if o.topk[i] != want[i] {
					t.Fatalf("epoch %d: topKFor(%d,%d)[%d] observed %+v, replay %+v",
						epoch, o.topka, o.k, i, o.topk[i], want[i])
				}
			}
			if o.global != nil {
				wantG := ref.TopK(4)
				if len(wantG) != len(o.global) {
					t.Fatalf("epoch %d: topK observed %d pairs, replay %d",
						epoch, len(o.global), len(wantG))
				}
				for i := range o.global {
					if o.global[i] != wantG[i] {
						t.Fatalf("epoch %d: topK[%d] observed %+v, replay %+v",
							epoch, i, o.global[i], wantG[i])
					}
				}
			}
		}
	}
	epoch := ref.Epoch() // 0
	check(epoch)
	for _, st := range sched {
		st.run(t,
			func(up Update) error { _, err := ref.Apply(up); return err },
			ref.ApplyBatch,
			func(k int) error { _, err := ref.AddNodes(k); return err },
			ref.Recompute,
		)
		for epoch++; epoch <= ref.Epoch(); epoch++ {
			// Batch steps commit several epochs at once; only the last
			// was ever published, so earlier ones have no observations.
			check(epoch)
		}
		epoch = ref.Epoch()
	}
	if maxEpoch > ref.Epoch() {
		t.Fatalf("observed epoch %d beyond replay end %d", maxEpoch, ref.Epoch())
	}
}

// A reader pinning an approx view must keep reading bit-identical
// answers while the writer repairs walk rows underneath — the
// copy-on-write contract on the stored-walk index, and the reason
// repair can run on the writer's private index with no reader-visible
// intermediate state. Run with -race: any in-place rewrite of a shared
// walk row is a reported write race, not just a value drift.
func TestMVCCApproxPinnedViewStableUnderRepair(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(3))
	var edges []Edge
	for i := 0; i < 3*n; i++ {
		edges = append(edges, Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	ce, err := NewConcurrentEngine(n, edges, Options{C: 0.6, K: 5, Backend: BackendApprox, ApproxWalks: 16})
	if err != nil {
		t.Fatal(err)
	}
	v0 := ce.acquire() // pin the boot view
	type probe struct{ a, b int }
	prng := rand.New(rand.NewSource(7))
	probes := make([]probe, 48)
	baseSim := make([]float64, len(probes))
	baseTopK := make([][]Pair, len(probes))
	for i := range probes {
		probes[i] = probe{prng.Intn(n), prng.Intn(n)}
		baseSim[i] = v0.similarity(probes[i].a, probes[i].b)
		baseTopK[i] = v0.topKFor(probes[i].a, 4)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, p := range probes {
					if got := v0.similarity(p.a, p.b); got != baseSim[i] {
						t.Errorf("pinned s(%d,%d) drifted under repair: %v vs %v", p.a, p.b, got, baseSim[i])
						return
					}
					tk := v0.topKFor(p.a, 4)
					if len(tk) != len(baseTopK[i]) {
						t.Errorf("pinned topKFor(%d) length drifted: %d vs %d", p.a, len(tk), len(baseTopK[i]))
						return
					}
					for j := range tk {
						if tk[j] != baseTopK[i][j] {
							t.Errorf("pinned topKFor(%d)[%d] drifted: %+v vs %+v", p.a, j, tk[j], baseTopK[i][j])
							return
						}
					}
				}
			}
		}()
	}
	// The writer toggles edges underneath the pinned readers; every
	// commit is an incremental walk repair touching rows the view holds.
	for i := 0; i < 150; i++ {
		from, to := i%n, (i*7+1)%n
		if ce.HasEdge(from, to) {
			_, err = ce.Delete(from, to)
		} else {
			_, err = ce.Insert(from, to)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	release(v0)
	if ce.Epoch() != 150 {
		t.Fatalf("writer committed %d epochs, want 150", ce.Epoch())
	}
}

// A long reader pinning an old view must never block the writer, and
// the pinned view must stay bit-stable while hundreds of commits land.
func TestMVCCLongReaderDoesNotBlockWriter(t *testing.T) {
	for _, backend := range []Backend{BackendDense, BackendPacked} {
		t.Run(string(backend), func(t *testing.T) {
			const n = 16
			rng := rand.New(rand.NewSource(9))
			var edges []Edge
			for i := 0; i < 3*n; i++ {
				edges = append(edges, Edge{From: rng.Intn(n), To: rng.Intn(n)})
			}
			ce, err := NewConcurrentEngine(n, edges, Options{C: 0.6, K: 5, Backend: backend, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			// Pin the boot view like a slow Similarities/snapshot reader.
			v := ce.acquire()
			before := make([]float64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					before[i*n+j] = v.s.At(i, j)
				}
			}
			e0 := edges[0]
			for i := 0; i < 200; i++ {
				if _, err := ce.Delete(e0.From, e0.To); err != nil {
					t.Fatal(err)
				}
				if _, err := ce.Insert(e0.From, e0.To); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if v.s.At(i, j) != before[i*n+j] {
						t.Fatalf("pinned view drifted at (%d,%d) after %s writes", i, j, backend)
					}
				}
			}
			release(v)
			if got := ce.Epoch(); got != 400 {
				t.Fatalf("writer stalled: epoch %d, want 400", got)
			}
		})
	}
}

// Regression: consecutive views can share one dense buffer (a publish
// with no store writes — SetWorkers here — seals the same front again).
// A straggling reader pinning the OLDER of the two sharers must survive
// any number of later flips: the facade may only forget a displaced
// view once it has drained, not after one write cycle. Before the fix,
// the second Apply recycled the pinned buffer and -race fired.
func TestMVCCPinnedViewSurvivesSharedBufferRecycling(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewSource(41))
	var edges []Edge
	for i := 0; i < 3*n; i++ {
		edges = append(edges, Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	ce, err := NewConcurrentEngine(n, edges, Options{C: 0.6, K: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	v0 := ce.acquire() // pin the boot view (buffer A)
	before := v0.similarities()
	ce.SetWorkers(1) // publish v1: same buffer A, no store write
	e0 := edges[0]
	done := make(chan *matrix.Dense, 1)
	go func() {
		// The long reader: keep re-reading the pinned view while flips
		// land — under -race any recycle of A is a reported write race.
		var last *matrix.Dense
		for i := 0; i < 50; i++ {
			last = v0.similarities()
		}
		done <- last
	}()
	for i := 0; i < 50; i++ {
		if _, err := ce.Delete(e0.From, e0.To); err != nil {
			t.Fatal(err)
		}
		if _, err := ce.Insert(e0.From, e0.To); err != nil {
			t.Fatal(err)
		}
	}
	after := <-done
	if d := matrix.MaxAbsDiff(before, after); d != 0 {
		t.Fatalf("pinned view drifted by %g while its buffer was recycled", d)
	}
	// One straggler costs ONE abandoned buffer, not one per write: once
	// the pinned buffer is orphaned, the writer must settle back into
	// steady double-buffer reuse (back held, re-synced by dirty rows)
	// even though the straggler is still pinned.
	if d, ok := ce.eng.s.(*simstore.Dense); !ok || !d.DoubleBuffered() {
		t.Fatal("writer did not resume double-buffer reuse under a persistent straggler")
	}
	release(v0)
}

// Reads on ConcurrentEngine must not acquire the writer mutex: a reader
// completes even while the writer mutex is held. (The structural
// guarantee behind "read latency is independent of write activity".)
func TestMVCCReadsBypassWriterMutex(t *testing.T) {
	ce, err := NewConcurrentEngine(4, []Edge{{From: 0, To: 1}, {From: 2, To: 1}}, Options{C: 0.6, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	ce.writerMu.Lock()
	defer ce.writerMu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ce.Similarity(0, 2)
		_ = ce.TopKFor(0, 2)
		_ = ce.TopK(2)
		_, _ = ce.Size()
		_ = ce.HasEdge(0, 1)
		_ = ce.Similarities()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second): // generous; the reads are microseconds
		t.Fatal("reads blocked while the writer mutex was held")
	}
}

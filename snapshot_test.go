package simrank

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestSnapshotRoundTrip(t *testing.T) {
	e := mustEngine(t, 6, []Edge{
		{From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 4, To: 3},
	}, Options{C: 0.8, K: 20, DisablePruning: true})
	if _, err := e.Insert(5, 2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != e.N() || got.M() != e.M() {
		t.Fatalf("graph mismatch: %d/%d vs %d/%d", got.N(), got.M(), e.N(), e.M())
	}
	if o := got.Options(); o.C != 0.8 || o.K != 20 || !o.DisablePruning {
		t.Fatalf("options mismatch: %+v", o)
	}
	if d := matrix.MaxAbsDiff(got.Similarities(), e.Similarities()); d != 0 {
		t.Fatalf("similarities drifted %g through snapshot", d)
	}
	// The restored engine keeps working incrementally.
	if _, err := got.Delete(5, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoredEngineStaysExact(t *testing.T) {
	e := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 1}}, Options{C: 0.6, K: 40})
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Insert(4, 1); err != nil {
		t.Fatal(err)
	}
	fresh := mustEngine(t, 5, []Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 1}, {From: 4, To: 1},
	}, Options{C: 0.6, K: 40})
	if d := matrix.MaxAbsDiff(restored.Similarities(), fresh.Similarities()); d > 1e-9 {
		t.Fatalf("restored engine drifted %g after update", d)
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("NOPExxxxxxxxxxxxxxxx")); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestSnapshotTruncated(t *testing.T) {
	e := mustEngine(t, 4, []Edge{{From: 0, To: 1}}, Options{})
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 10, buf.Len() / 2, buf.Len() - 2} {
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("want error for truncation at %d", cut)
		}
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	e := mustEngine(t, 4, []Edge{{From: 0, To: 1}, {From: 2, To: 1}}, Options{})
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit somewhere in the similarity payload (past header+edges).
	rng := rand.New(rand.NewSource(3))
	corrupted := 0
	for trial := 0; trial < 20; trial++ {
		pos := 40 + rng.Intn(len(data)-44)
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err != nil {
			corrupted++
		}
	}
	if corrupted < 18 {
		t.Fatalf("only %d/20 corruptions detected", corrupted)
	}
}

func TestSnapshotRejectsSillyHeader(t *testing.T) {
	e := mustEngine(t, 3, nil, Options{})
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Version bump must be rejected before any allocation.
	mut := append([]byte(nil), data...)
	mut[4] = 99
	if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
		t.Fatal("want error for unknown version")
	}
}

package simrank

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestSnapshotRoundTrip(t *testing.T) {
	e := mustEngine(t, 6, []Edge{
		{From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 4, To: 3},
	}, Options{C: 0.8, K: 20, DisablePruning: true})
	if _, err := e.Insert(5, 2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != e.N() || got.M() != e.M() {
		t.Fatalf("graph mismatch: %d/%d vs %d/%d", got.N(), got.M(), e.N(), e.M())
	}
	if o := got.Options(); o.C != 0.8 || o.K != 20 || !o.DisablePruning {
		t.Fatalf("options mismatch: %+v", o)
	}
	if d := matrix.MaxAbsDiff(got.Similarities(), e.Similarities()); d != 0 {
		t.Fatalf("similarities drifted %g through snapshot", d)
	}
	// The restored engine keeps working incrementally.
	if _, err := got.Delete(5, 2); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoredEngineStaysExact(t *testing.T) {
	e := mustEngine(t, 5, []Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 1}}, Options{C: 0.6, K: 40})
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Insert(4, 1); err != nil {
		t.Fatal(err)
	}
	fresh := mustEngine(t, 5, []Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 1}, {From: 4, To: 1},
	}, Options{C: 0.6, K: 40})
	if d := matrix.MaxAbsDiff(restored.Similarities(), fresh.Similarities()); d > 1e-9 {
		t.Fatalf("restored engine drifted %g after update", d)
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("NOPExxxxxxxxxxxxxxxx")); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestSnapshotTruncated(t *testing.T) {
	e := mustEngine(t, 4, []Edge{{From: 0, To: 1}}, Options{})
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 10, buf.Len() / 2, buf.Len() - 2} {
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("want error for truncation at %d", cut)
		}
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	e := mustEngine(t, 4, []Edge{{From: 0, To: 1}, {From: 2, To: 1}}, Options{})
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit somewhere in the similarity payload (past header+edges).
	rng := rand.New(rand.NewSource(3))
	corrupted := 0
	for trial := 0; trial < 20; trial++ {
		pos := 40 + rng.Intn(len(data)-44)
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err != nil {
			corrupted++
		}
	}
	if corrupted < 18 {
		t.Fatalf("only %d/20 corruptions detected", corrupted)
	}
}

// The writable approx tier must round-trip exactly: after a repair
// stream, write → read → write produces byte-identical snapshots, the
// epoch and repair generation carry through, and the restored engine
// answers bit-identically to the writer. The snapshot never stores walk
// rows — the walk set is a pure function of (graph, seed, budget), so
// restore rebuilds it and lands on the same bits the repairs did.
func TestSnapshotApproxRoundTripAfterRepairs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 12
	var edges []Edge
	for i := 0; i < 3*n; i++ {
		edges = append(edges, Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	e := mustEngine(t, n, edges, Options{C: 0.6, K: 7, Backend: BackendApprox, ApproxWalks: 64, ApproxSeed: 5})
	for i := 0; i < 25; i++ {
		from, to := rng.Intn(e.N()), rng.Intn(e.N())
		var err error
		if e.HasEdge(from, to) {
			_, err = e.Delete(from, to)
		} else {
			_, err = e.Insert(from, to)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.AddNodes(2); err != nil {
		t.Fatal(err)
	}

	var b1 bytes.Buffer
	if err := e.WriteSnapshot(&b1); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != e.Epoch() {
		t.Fatalf("epoch lost through snapshot: %d vs %d", restored.Epoch(), e.Epoch())
	}
	for a := 0; a < e.N(); a++ {
		for b := 0; b < e.N(); b++ {
			if got, want := restored.Similarity(a, b), e.Similarity(a, b); got != want {
				t.Fatalf("restored s(%d,%d) = %v, writer %v", a, b, got, want)
			}
		}
	}
	var b2 bytes.Buffer
	if err := restored.WriteSnapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("write→read→write drifted: %d vs %d bytes, equal=%v", b1.Len(), b2.Len(), false)
	}
	// The restored engine keeps repairing — and stays bit-aligned with
	// the writer across the same post-restore update.
	up := Update{Edge: Edge{From: 0, To: e.N() - 1}, Insert: !e.HasEdge(0, e.N()-1)}
	if _, err := e.Apply(up); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Apply(up); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Similarity(1, e.N()-1), e.Similarity(1, e.N()-1); got != want {
		t.Fatalf("post-restore repair diverged: %v vs %v", got, want)
	}
}

func TestSnapshotRejectsSillyHeader(t *testing.T) {
	e := mustEngine(t, 3, nil, Options{})
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Version bump must be rejected before any allocation.
	mut := append([]byte(nil), data...)
	mut[4] = 99
	if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
		t.Fatal("want error for unknown version")
	}
}

// Queries contrasts the three ways to answer "which nodes are most
// similar to q?" that this repository implements, on the same graph:
//
//  1. the full engine (all-pairs matrix, exact, O(Kd'n²) once);
//  2. the deterministic single-source column (exact, O(K²m) time,
//     O(n) memory — no n² matrix at all);
//  3. the Monte Carlo estimator (approximate, walk-budget-bounded —
//     the related-work family of the paper's Section II-B).
package main

import (
	"fmt"
	"log"

	simrank "repro"
	"repro/internal/gen"
	"repro/internal/montecarlo"
)

func main() {
	const (
		query = 7
		c     = 0.6
		k     = 15
	)
	g := gen.PrefAttach(250, 5, 77)
	fmt.Printf("graph: %d nodes, %d edges; query node %d\n\n", g.N(), g.M(), query)

	// 1. Full engine.
	eng, err := simrank.NewEngine(g.N(), g.Edges(), simrank.Options{C: c, K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine (all-pairs, exact):")
	for _, p := range eng.TopKFor(query, 5) {
		fmt.Printf("  node %-4d %.4f\n", p.B, p.Score)
	}

	// 2. Single-source column: same scores, no n² matrix.
	col, err := simrank.SingleSourceScores(g.N(), g.Edges(), query, simrank.Options{C: c, K: k})
	if err != nil {
		log.Fatal(err)
	}
	best, bestScore := -1, 0.0
	for v, s := range col {
		if v != query && s > bestScore {
			best, bestScore = v, s
		}
	}
	fmt.Printf("\nsingle-source column (exact, O(n) memory):\n")
	fmt.Printf("  best match node %d at %.4f (engine says %.4f)\n",
		best, bestScore, eng.Similarity(query, best))

	// 3. Monte Carlo top-k: approximate, tunable walk budget.
	est, err := montecarlo.NewIndex(g, c, 0, 1600, 123)
	if err != nil {
		log.Fatal(err)
	}
	// Note: the estimator targets the iterative form (s(a,a)=1), so its
	// absolute values sit above the engine's matrix-form scores — but the
	// ranking it recovers is the same.
	fmt.Println("\nMonte Carlo estimator (400 walks/pair, refine ×4, iterative form):")
	for _, s := range est.TopK(query, 5, 400, 4) {
		exact := eng.Similarity(query, s.Node)
		fmt.Printf("  node %-4d est %.4f (matrix-form exact %.4f)\n", s.Node, s.Score, exact)
	}
}

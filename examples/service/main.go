// Command service demonstrates the simrankd HTTP API end to end against
// a running server: it grows the graph, streams a burst of fire-and-
// forget updates (which the server coalesces into few batched writes),
// commits one synchronous update, and then queries similarities and the
// pipeline's coalescing counters.
//
// Start a server first, then run the client:
//
//	go run ./cmd/simrankd -n 8 -addr :8080 &
//	go run ./examples/service -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "simrankd base URL")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "service: %v\n", err)
		os.Exit(1)
	}
}

func run(base string) error {
	// Burst of fire-and-forget writes: a small citation ring plus co-citations.
	// Each POST answers 202 as soon as it is queued; the server folds the
	// burst into far fewer ApplyBatch commits (see batches in /stats below).
	for i := 0; i < 8; i++ {
		up := map[string]any{"from": i, "to": (i + 1) % 8}
		if err := post(base+"/updates", up, nil); err != nil {
			return fmt.Errorf("enqueue update %d: %w", i, err)
		}
	}

	// A synchronous write: ?wait=1 blocks until this request's batch has
	// committed, so the similarity query below is guaranteed to see it.
	batch := []map[string]any{
		{"from": 0, "to": 4}, {"from": 2, "to": 4, "op": "insert"},
	}
	if err := post(base+"/updates?wait=1", batch, nil); err != nil {
		return fmt.Errorf("synchronous batch: %w", err)
	}

	var sim struct {
		Score float64 `json:"score"`
	}
	if err := get(base+"/similarity?a=0&b=2", &sim); err != nil {
		return err
	}
	fmt.Printf("s(0, 2) = %.6f (0 and 2 both cite 4)\n", sim.Score)

	var topk struct {
		Pairs []struct {
			A, B  int
			Score float64
		} `json:"pairs"`
	}
	if err := get(base+"/topk?k=3", &topk); err != nil {
		return err
	}
	fmt.Println("top pairs:")
	for _, p := range topk.Pairs {
		fmt.Printf("  (%d, %d)  %.6f\n", p.A, p.B, p.Score)
	}

	var stats struct {
		Edges          int   `json:"edges"`
		UpdatesApplied int64 `json:"updates_applied"`
		Batches        int64 `json:"batches"`
	}
	if err := get(base+"/stats", &stats); err != nil {
		return err
	}
	fmt.Printf("%d edges; %d updates committed in %d batches (coalescing factor %.1f)\n",
		stats.Edges, stats.UpdatesApplied, stats.Batches,
		float64(stats.UpdatesApplied)/float64(max(stats.Batches, 1)))
	return nil
}

func post(url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	return decode(resp, out)
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

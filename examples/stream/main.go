// Stream simulates a link-evolving web graph: a preferential-attachment
// base snapshot absorbs a live stream of link insertions and deletions,
// and the engine keeps all-pairs SimRank current after every event —
// the scenario the paper's introduction motivates ("5%–10% links updated
// every week in a web graph").
//
// It also cross-checks the maintained scores against a from-scratch batch
// recomputation at the end, and reports the incremental-vs-batch time.
package main

import (
	"fmt"
	"log"
	"time"

	simrank "repro"
	"repro/internal/gen"
)

func main() {
	const (
		nodes   = 300
		updates = 40
	)
	base := gen.PrefAttach(nodes, 5, 42)
	fmt.Printf("base snapshot: %d nodes, %d edges\n", base.N(), base.M())

	start := time.Now()
	eng, err := simrank.NewEngine(base.N(), base.Edges(), simrank.Options{C: 0.6, K: 15})
	if err != nil {
		log.Fatal(err)
	}
	batchTime := time.Since(start)
	fmt.Printf("initial batch computation: %v\n\n", batchTime.Round(time.Millisecond))

	// A live stream: mostly new links, some retractions.
	stream := gen.MixedStream(base, updates, 0.8, 7)

	start = time.Now()
	var touched int
	for i, up := range stream {
		st, err := eng.Apply(up)
		if err != nil {
			log.Fatalf("event %d (%v): %v", i, up, err)
		}
		touched += st.AffectedPairs
		if (i+1)%10 == 0 {
			fmt.Printf("  %3d events folded, avg affected pairs %d/%d\n",
				i+1, touched/(i+1), nodes*nodes)
		}
	}
	incTime := time.Since(start)

	fmt.Printf("\n%d incremental updates in %v (%.2f ms/update)\n",
		updates, incTime.Round(time.Millisecond),
		float64(incTime.Microseconds())/1000/float64(updates))
	fmt.Printf("one batch recomputation costs %v — incremental wins while updates are small\n",
		batchTime.Round(time.Millisecond))

	// Safety check: the maintained scores match a fresh batch run.
	maintained := eng.Similarities()
	eng.Recompute()
	fresh := eng.Similarities()
	var maxDiff float64
	for i, v := range maintained.Data {
		if d := v - fresh.Data[i]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	fmt.Printf("max drift vs fresh batch: %.2e (bounded by the K-iteration truncation)\n", maxDiff)
}

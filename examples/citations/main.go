// Citations walks through the paper's Fig. 1 scenario on its 15-node
// citation graph: compute SimRank on the old graph G, insert the dashed
// edge (i, j), and print the before/after scores of the table's
// node-pairs — showing which pairs the update leaves untouched (the gray
// rows) and which it changes, including zero → non-zero flips.
package main

import (
	"fmt"
	"log"
	"math"

	simrank "repro"
	"repro/internal/graph"
)

func main() {
	g, ins := graph.Fig1Graph()
	eng, err := simrank.NewEngine(g.N(), g.Edges(), simrank.Options{
		C: 0.8, // Example 1's damping factor
		K: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	before := eng.Similarities()

	stats, err := eng.Insert(ins.From, ins.To)
	if err != nil {
		log.Fatal(err)
	}
	after := eng.Similarities()

	fmt.Printf("inserted edge (%s,%s); %d of %d node-pairs affected\n\n",
		graph.Fig1NodeName(ins.From), graph.Fig1NodeName(ins.To),
		stats.AffectedPairs, g.N()*g.N())

	pairs := [][2]int{
		{graph.FigA, graph.FigB},
		{graph.FigA, graph.FigD},
		{graph.FigI, graph.FigF},
		{graph.FigK, graph.FigG},
		{graph.FigK, graph.FigH},
		{graph.FigB, graph.FigJ},
		{graph.FigM, graph.FigL},
		{graph.FigD, graph.FigJ},
	}
	fmt.Println("pair    sim(G)   sim(G+dG)  note")
	fmt.Println("-----   ------   ---------  ----")
	for _, p := range pairs {
		a, b := p[0], p[1]
		note := ""
		switch {
		case math.Abs(after.At(a, b)-before.At(a, b)) < 1e-9:
			note = "unchanged (pruned by Inc-SR)"
		case before.At(a, b) < 1e-9:
			note = "zero -> non-zero"
		}
		fmt.Printf("(%s,%s)   %.4f   %.4f     %s\n",
			graph.Fig1NodeName(a), graph.Fig1NodeName(b),
			before.At(a, b), after.At(a, b), note)
	}

	fmt.Println("\nmost similar papers after the update:")
	for _, p := range eng.TopK(5) {
		fmt.Printf("  (%s,%s) %.4f\n", graph.Fig1NodeName(p.A), graph.Fig1NodeName(p.B), p.Score)
	}
}

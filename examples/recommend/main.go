// Recommend uses SimRank as a related-item recommender over a synthetic
// "users cite videos" graph (the YOUTU scenario of the evaluation): for a
// query video it lists the most structurally similar videos, then shows
// how a single new link shifts the recommendations — incrementally, with
// the affected-area statistics the pruning exposes.
package main

import (
	"fmt"
	"log"

	simrank "repro"
	"repro/internal/gen"
)

func main() {
	// A related-video style graph: preferential attachment plus sideways
	// links (videos referencing each other).
	g := gen.PrefAttach(200, 6, 99)
	eng, err := simrank.NewEngine(g.N(), g.Edges(), simrank.Options{C: 0.6, K: 15})
	if err != nil {
		log.Fatal(err)
	}

	const query = 10 // an early, well-linked video
	fmt.Printf("videos related to %d (before):\n", query)
	printRecs(eng, query)

	// A popular video (the query itself) gains a link from a fresh one:
	// video 199 now references video 10's neighborhood.
	for _, e := range []simrank.Edge{{From: 199, To: 10}, {From: 199, To: 11}} {
		if eng.HasEdge(e.From, e.To) {
			continue
		}
		st, err := eng.Insert(e.From, e.To)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ninserted %d→%d: %d node-pairs re-scored (%.1f%% of all pairs pruned)\n",
			e.From, e.To, st.AffectedPairs,
			100*(1-float64(st.AffectedPairs)/float64(g.N()*g.N())))
	}

	fmt.Printf("\nvideos related to %d (after):\n", query)
	printRecs(eng, query)

	// SimRank scores flow through *incoming* links: video 199 now cites
	// others but nothing references it yet, so its own row stays empty —
	// until someone links to it.
	fmt.Printf("\nvideos related to the new uploader %d (no in-links yet):\n", 199)
	printRecs(eng, 199)
	if _, err := eng.Insert(0, 199); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter video 0 references %d:\n", 199)
	printRecs(eng, 199)
}

func printRecs(eng *simrank.Engine, video int) {
	recs := eng.TopKFor(video, 5)
	if len(recs) == 0 {
		fmt.Println("  (none)")
		return
	}
	for rank, p := range recs {
		fmt.Printf("  %d. video %-4d score %.4f\n", rank+1, p.B, p.Score)
	}
}

// Quickstart: build an engine over a small citation graph, read a few
// similarity scores, then update a link incrementally and watch the
// scores move — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	simrank "repro"
)

func main() {
	// A tiny citation graph. SimRank scores nodes by their *incoming*
	// links: papers 0 and 1 are similar because survey paper 2 cites
	// both of them (they are co-cited). Paper 3 cites the survey;
	// paper 4 is new and unconnected.
	//
	//	0 ◀── 2 ──▶ 1        4
	//	      ▲
	//	      │
	//	      3
	edges := []simrank.Edge{
		{From: 2, To: 0},
		{From: 2, To: 1},
		{From: 3, To: 2},
	}
	eng, err := simrank.NewEngine(5, edges, simrank.Options{C: 0.6, K: 15})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("batch scores:")
	fmt.Printf("  s(0,1) = %.4f  (co-cited by paper 2 — similar)\n", eng.Similarity(0, 1))
	fmt.Printf("  s(0,4) = %.4f  (paper 4 is isolated — zero)\n", eng.Similarity(0, 4))

	// Paper 3 now also cites paper 4. One incremental update refreshes
	// every affected similarity; nothing is recomputed from scratch.
	stats, err := eng.Insert(3, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter inserting edge 3→4 (%d node-pairs touched):\n", stats.AffectedPairs)
	fmt.Printf("  s(2,4) = %.4f  (2 and 4 are now co-cited by 3)\n", eng.Similarity(2, 4))
	fmt.Printf("  s(0,4) = %.4f  (still unrelated to 0)\n", eng.Similarity(0, 4))

	fmt.Println("\ntop-3 most similar pairs:")
	for _, p := range eng.TopK(3) {
		fmt.Printf("  (%d,%d) %.4f\n", p.A, p.B, p.Score)
	}

	// Deleting is just as incremental.
	if _, err := eng.Delete(2, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter deleting edge 2→1: s(0,1) = %.4f\n", eng.Similarity(0, 1))
}

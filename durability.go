package simrank

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/wal"
)

// ErrDurability wraps a write-ahead-log append failure on a mutation
// that COMMITTED: the in-memory state (and the published view) include
// the change, but the log does not, so a crash before the next
// snapshot would forget it — and the log tail past this point can no
// longer replay (the gap is detected loudly at the next boot). Callers
// distinguish it from a rejected mutation with errors.Is: a rejected
// mutation changed nothing, a durability error changed everything but
// the disk.
var ErrDurability = errors.New("simrank: committed but not logged durably")

// SetWAL installs w as the engine's write-ahead log: from now on every
// committed mutation — Apply and ApplyBatch (one record per call, so
// the pipeline's coalescing is preserved in the log and replay makes
// the same recompute-threshold choices), AddNodes, Recompute — is
// appended with its post-commit epoch BEFORE the view exposing it
// publishes. Install before the first mutation (simrankd does so
// before attaching the server) or the log will have holes; pass nil to
// stop logging. The engine does not own w: closing it remains the
// caller's job, after the engine can no longer write.
func (c *ConcurrentEngine) SetWAL(w *wal.WAL) {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.wal = w
}

// SetWALNotify installs fn as the committed-record observer: after
// every successful WAL append (and before the view exposing the record
// publishes), fn receives the record that just became durable. This is
// the replication streaming hook — internal/server's hub fans the
// record out to GET /wal subscribers, so followers tail the live log
// without polling the files. fn runs under the writer mutex and must
// not block (the hub does non-blocking sends and drops slow
// subscribers, who re-catch-up from the log). The record's Updates
// slice is shared with the committing caller: consume it synchronously
// or copy. Install alongside SetWAL; a nil fn stops notifications.
func (c *ConcurrentEngine) SetWALNotify(fn func(*wal.Record)) {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.walNotify = fn
}

// logRecord appends one committed mutation to the WAL (a no-op without
// one). Called with writerMu held, after the mutation committed and
// before its view publishes. A durably appended record is also handed
// to the walNotify hook, so replication subscribers observe exactly
// the records a crash recovery would replay.
func (c *ConcurrentEngine) logRecord(kind wal.Kind, ups []Update, count int) error {
	if c.wal == nil {
		return nil
	}
	rec := wal.Record{Epoch: c.eng.Epoch(), Kind: kind, Updates: ups, Count: count}
	if err := c.wal.Append(&rec); err != nil {
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	if c.walNotify != nil {
		c.walNotify(&rec)
	}
	return nil
}

// ReplayWAL applies the log tail above the engine's current epoch —
// for a restored engine, everything committed after its snapshot was
// serialized — WITHOUT re-logging, and publishes the result as one new
// view. Each record replays through the same entry point that produced
// it (Apply for unit records, ApplyBatch for coalesced ones, so batch
// boundaries and the recompute-threshold crossover reproduce exactly),
// then the engine adopts the record's epoch, keeping the numbering of
// the previous process so post-replay appends and snapshot floors stay
// coherent with the retained log.
//
// ctx aborts between records (the boot path wires SIGTERM to it):
// replay stops cleanly with ctx's error and no further state is
// touched — the caller must then exit WITHOUT snapshotting the
// half-replayed state. Any record that fails to apply — an update the
// graph rejects, an epoch that does not line up — aborts the same way:
// a log that disagrees with the state it claims to extend is
// corruption, and replaying past it would silently diverge from the
// acknowledged stream.
func (c *ConcurrentEngine) ReplayWAL(ctx context.Context, w *wal.WAL) (applied int, err error) {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	err = w.Replay(c.eng.Epoch(), func(rec *wal.Record) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("wal replay aborted after %d records: %w", applied, cerr)
		}
		if rerr := c.eng.applyWALRecord(rec); rerr != nil {
			return fmt.Errorf("wal replay at epoch %d (%s record): %w", rec.Epoch, rec.Kind, rerr)
		}
		applied++
		return nil
	})
	if applied > 0 && err == nil {
		c.publish(false)
	}
	return applied, err
}

// ApplyReplicated applies one record received from a replication
// stream (internal/replica's client feeds it records decoded off the
// leader's GET /wal stream) and publishes the resulting state as one
// new view at the record's epoch. It shares applyWALRecord with
// ReplayWAL — the boot-time replay and the follower tail are ONE code
// path, so a record kind added later cannot replay differently on
// leader and follower — but differs from replay in two ways: each
// record publishes its own view (followers serve reads per applied
// epoch, not once per boot), and the record IS re-logged to the
// follower's local WAL when one is installed (SetWAL), preserving the
// leader's epochs, so a restarted follower resumes from its local
// snapshot+log instead of refetching the stream from epoch 0.
//
// Errors are the caller's divergence signal: a record that fails to
// apply, or whose epoch does not advance past the follower's state,
// means the stream and the local state disagree — the follower must
// stop loudly rather than fork silently. ErrDurability wraps a local
// WAL append failure on a record that DID apply and publish.
func (c *ConcurrentEngine) ApplyReplicated(rec *wal.Record) error {
	c.writerMu.Lock()
	defer c.writerMu.Unlock()
	c.prepareWrite()
	if err := c.eng.applyWALRecord(rec); err != nil {
		return err
	}
	werr := c.logRecord(rec.Kind, rec.Updates, rec.Count)
	c.publish(false)
	return werr
}

// applyWALRecord applies one logged operation to the engine and adopts
// the record's epoch. The record must advance past the engine's
// current epoch (wal.Replay's from-filter and ordering guarantee this
// for an intact log).
func (e *Engine) applyWALRecord(rec *wal.Record) error {
	if rec.Epoch <= e.epoch {
		return fmt.Errorf("record epoch %d does not advance past engine epoch %d", rec.Epoch, e.epoch)
	}
	switch rec.Kind {
	case wal.KindUpdate:
		if len(rec.Updates) != 1 {
			return fmt.Errorf("unit-update record holds %d updates", len(rec.Updates))
		}
		if _, err := e.Apply(rec.Updates[0]); err != nil {
			return err
		}
	case wal.KindBatch:
		if err := e.ApplyBatch(rec.Updates); err != nil {
			return err
		}
	case wal.KindAddNodes:
		if _, err := e.AddNodes(rec.Count); err != nil {
			return err
		}
	case wal.KindRecompute:
		e.Recompute()
	default:
		return fmt.Errorf("unknown record kind %d", uint8(rec.Kind))
	}
	if e.epoch > rec.Epoch {
		// The replayed operation took MORE epoch steps than the original
		// commit — the base state diverged (e.g. a different
		// recompute-threshold decision). Refusing is the only safe answer.
		return fmt.Errorf("replay overshot the record epoch (%d > %d): base state diverges from the log", e.epoch, rec.Epoch)
	}
	e.epoch = rec.Epoch
	return nil
}

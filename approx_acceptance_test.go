package simrank

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/montecarlo"
)

// TestApproxStatisticalAcceptance is the honesty check on the sampling
// tier's error bars: on the paper's Fig-1 graph and on seeded random
// graphs, the observed error of the P-SimRank estimator against the
// exact iterative-form SimRank must fall within 3 estimated standard
// errors for at least 95% of sampled pairs.
//
// The reference is batch.JehWidom at K iterations with the estimator's
// walk cap set to the same K: the truncated first-meeting-time identity
// s_K(a,b) = E[C^τ·1{τ≤K}] makes the estimator unbiased for exactly
// that value, so any residual discrepancy is sampling noise — which is
// precisely what the stderr claims to bound.
func TestApproxStatisticalAcceptance(t *testing.T) {
	const (
		c     = 0.6
		k     = 8 // walk cap == reference iterations
		walks = 4000
	)
	fig1, _ := graph.Fig1Graph()
	graphs := []*graph.DiGraph{fig1}
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 2; trial++ {
		n := 18 + rng.Intn(10)
		g := graph.New(n)
		for g.M() < 3*n {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		graphs = append(graphs, g)
	}

	for gi, g := range graphs {
		exact := batch.JehWidom(g, c, k)
		est, err := montecarlo.NewIndex(g).NewEstimator(c, k, 55+int64(gi))
		if err != nil {
			t.Fatal(err)
		}
		total, within := 0, 0
		var worst float64
		for a := 0; a < g.N(); a++ {
			for b := a + 1; b < g.N(); b++ {
				mean, stderr := est.PairStderr(a, b, walks)
				errAbs := math.Abs(mean - exact.At(a, b))
				total++
				if errAbs <= 3*stderr {
					within++
				} else if errAbs > worst {
					worst = errAbs
				}
			}
		}
		frac := float64(within) / float64(total)
		if frac < 0.95 {
			t.Fatalf("graph %d: only %.1f%% of %d pairs within 3·stderr (worst miss %g)",
				gi, 100*frac, total, worst)
		}
	}
}

// The sampling tier must be reproducible: the same seed over the same
// walk index replays the identical draw sequence, so sequential query
// streams — and therefore tests and debug sessions — are deterministic.
func TestApproxDeterministicUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g := randTestGraph(rng, 25, 100)
	run := func() ([]float64, []Pair) {
		eng, err := NewEngine(g.N(), g.Edges(), Options{Backend: BackendApprox, ApproxWalks: 64, ApproxSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var sims []float64
		for a := 0; a < 5; a++ {
			for b := 0; b < g.N(); b++ {
				sims = append(sims, eng.Similarity(a, b))
			}
		}
		return sims, eng.TopKFor(3, 8)
	}
	s1, t1 := run()
	s2, t2 := run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("similarity stream diverged at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	if len(t1) != len(t2) {
		t.Fatalf("TopKFor lengths %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("TopKFor[%d] %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

package simrank

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/montecarlo"
)

// TestApproxStatisticalAcceptance is the honesty check on the sampling
// tier's error bars: on the paper's Fig-1 graph and on seeded random
// graphs, the observed error of the P-SimRank estimator against the
// exact iterative-form SimRank must fall within 3 estimated standard
// errors for at least 95% of sampled pairs.
//
// The reference is batch.JehWidom at K iterations with the estimator's
// walk cap set to the same K: the truncated first-meeting-time identity
// s_K(a,b) = E[C^τ·1{τ≤K}] makes the estimator unbiased for exactly
// that value, so any residual discrepancy is sampling noise — which is
// precisely what the stderr claims to bound.
func TestApproxStatisticalAcceptance(t *testing.T) {
	const (
		c     = 0.6
		k     = 8 // walk cap == reference iterations
		walks = 4000
	)
	fig1, _ := graph.Fig1Graph()
	graphs := []*graph.DiGraph{fig1}
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 2; trial++ {
		n := 18 + rng.Intn(10)
		g := graph.New(n)
		for g.M() < 3*n {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		graphs = append(graphs, g)
	}

	for gi, g := range graphs {
		exact := batch.JehWidom(g, c, k)
		est, err := montecarlo.NewIndex(g, c, k, walks, 55+int64(gi))
		if err != nil {
			t.Fatal(err)
		}
		total, within := 0, 0
		var worst float64
		for a := 0; a < g.N(); a++ {
			for b := a + 1; b < g.N(); b++ {
				mean, stderr := est.PairStderr(a, b, walks)
				errAbs := math.Abs(mean - exact.At(a, b))
				total++
				if errAbs <= 3*stderr {
					within++
				} else if errAbs > worst {
					worst = errAbs
				}
			}
		}
		frac := float64(within) / float64(total)
		if frac < 0.95 {
			t.Fatalf("graph %d: only %.1f%% of %d pairs within 3·stderr (worst miss %g)",
				gi, 100*frac, total, worst)
		}
	}
}

// The sampling tier must be reproducible: the same seed over the same
// walk index replays the identical draw sequence, so sequential query
// streams — and therefore tests and debug sessions — are deterministic.
func TestApproxDeterministicUnderSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g := randTestGraph(rng, 25, 100)
	run := func() ([]float64, []Pair) {
		eng, err := NewEngine(g.N(), g.Edges(), Options{Backend: BackendApprox, ApproxWalks: 64, ApproxSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var sims []float64
		for a := 0; a < 5; a++ {
			for b := 0; b < g.N(); b++ {
				sims = append(sims, eng.Similarity(a, b))
			}
		}
		return sims, eng.TopKFor(3, 8)
	}
	s1, t1 := run()
	s2, t2 := run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("similarity stream diverged at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	if len(t1) != len(t2) {
		t.Fatalf("TopKFor lengths %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("TopKFor[%d] %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

// driveApproxUpdateStream pushes a mixed stream of Apply / ApplyBatch /
// AddNodes through an approx engine while mirroring the topology in a
// plain DiGraph, so callers can build an exact reference over the
// post-update graph. Batches are generated sequentially valid against
// the mirror (the same overlay contract ApplyBatch validates).
func driveApproxUpdateStream(t *testing.T, eng *Engine, mirror *graph.DiGraph, rng *rand.Rand, steps int) {
	t.Helper()
	nextUpdate := func() Update {
		n := mirror.N()
		from, to := rng.Intn(n), rng.Intn(n)
		up := Update{Edge: Edge{From: from, To: to}, Insert: !mirror.HasEdge(from, to)}
		mirror.Apply(up)
		return up
	}
	for s := 0; s < steps; s++ {
		switch r := rng.Intn(10); {
		case r == 0:
			count := 1 + rng.Intn(2)
			mirror.AddNodes(count)
			if _, err := eng.AddNodes(count); err != nil {
				t.Fatalf("step %d: AddNodes(%d): %v", s, count, err)
			}
		case r <= 3:
			ups := make([]Update, 1+rng.Intn(5))
			for i := range ups {
				ups[i] = nextUpdate()
			}
			if err := eng.ApplyBatch(ups); err != nil {
				t.Fatalf("step %d: ApplyBatch(%d): %v", s, len(ups), err)
			}
		default:
			up := nextUpdate()
			if _, err := eng.Apply(up); err != nil {
				t.Fatalf("step %d: Apply(%+v): %v", s, up, err)
			}
		}
	}
	if eng.N() != mirror.N() || eng.M() != mirror.M() {
		t.Fatalf("engine (n=%d m=%d) drifted from mirror (n=%d m=%d)", eng.N(), eng.M(), mirror.N(), mirror.M())
	}
}

// The statistical gate on the *writable* tier: after a random mixed
// insert/delete/grow stream, the repaired walk index must still track
// the exact Jeh–Widom fixed point of the POST-update graph — ≥95% of
// all pairs within 3 estimated standard errors. This is what makes
// incremental repair trustworthy: not that the index changed cheaply,
// but that what it converged to is still the right distribution.
func TestApproxStatisticalAcceptanceAfterUpdates(t *testing.T) {
	const (
		c     = 0.6
		k     = 8
		walks = 4000
	)
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 2; trial++ {
		n := 18 + rng.Intn(8)
		mirror := graph.New(n)
		for mirror.M() < 3*n {
			mirror.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		eng, err := NewEngine(mirror.N(), mirror.Edges(), Options{
			C: c, K: k, Backend: BackendApprox, ApproxWalks: walks, ApproxSeed: 300 + int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		driveApproxUpdateStream(t, eng, mirror, rng, 40)

		exact := batch.JehWidom(mirror, c, k)
		total, within := 0, 0
		var worst float64
		for a := 0; a < mirror.N(); a++ {
			for b := a + 1; b < mirror.N(); b++ {
				mean, stderr := eng.SimilarityStderr(a, b)
				errAbs := math.Abs(mean - exact.At(a, b))
				total++
				if errAbs <= 3*stderr {
					within++
				} else if errAbs > worst {
					worst = errAbs
				}
			}
		}
		frac := float64(within) / float64(total)
		if frac < 0.95 {
			t.Fatalf("trial %d: only %.1f%% of %d pairs within 3·stderr after updates (worst miss %g)",
				trial, 100*frac, total, worst)
		}
	}
}

// The determinism property behind every durability claim: an engine
// that absorbed a random update stream by incremental repair answers
// every query bit-identically to a fresh engine built at the same seed
// over the final graph. (The WAL half of this property — replaying the
// acked stream into a bit-identical index — is exercised end-to-end by
// the kill-9 test in cmd/simrankd.)
func TestApproxRepairStreamMatchesFreshEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	mirror := graph.New(20)
	for mirror.M() < 50 {
		mirror.AddEdge(rng.Intn(20), rng.Intn(20))
	}
	opts := Options{C: 0.6, K: 8, Backend: BackendApprox, ApproxWalks: 128, ApproxSeed: 99}
	eng, err := NewEngine(mirror.N(), mirror.Edges(), opts)
	if err != nil {
		t.Fatal(err)
	}
	driveApproxUpdateStream(t, eng, mirror, rng, 60)

	fresh, err := NewEngine(mirror.N(), mirror.Edges(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < mirror.N(); a++ {
		for b := 0; b < mirror.N(); b++ {
			if got, want := eng.Similarity(a, b), fresh.Similarity(a, b); got != want {
				t.Fatalf("s(%d,%d): repaired %v vs fresh %v", a, b, got, want)
			}
		}
		gt, ft := eng.TopKFor(a, 6), fresh.TopKFor(a, 6)
		if len(gt) != len(ft) {
			t.Fatalf("TopKFor(%d) lengths %d vs %d", a, len(gt), len(ft))
		}
		for i := range gt {
			if gt[i] != ft[i] {
				t.Fatalf("TopKFor(%d)[%d]: %+v vs %+v", a, i, gt[i], ft[i])
			}
		}
	}
}

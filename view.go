package simrank

import (
	"io"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/simstore"
)

// engineView is one immutable, epoch-stamped read view of an engine —
// the unit the MVCC facade publishes through a single atomic pointer.
// Everything a query can touch is frozen at publish time: a sealed
// similarity store, a sealed graph snapshot, the (n, m) pair, the
// effective options and the epoch the shared query cache stamps entries
// with. Readers therefore compose any number of calls against one view
// and observe one consistent point in time, with no lock anywhere on
// the path (the query cache's internal O(1) micro-mutex is the single
// deliberate exception, and only when caching is enabled).
//
// readers counts calls currently inside this view. It exists for the
// writer — the dense double-buffer may only recycle a buffer whose
// views have drained — and doubles as the /stats in-flight gauge.
type engineView struct {
	epoch      uint64
	s          simstore.Store
	g          *graph.Snapshot
	n, m       int
	opts       Options
	cache      *cache.TopK
	storeBytes int64
	published  time.Time

	// dirtyRows is the detached snapshot of the publishing update's
	// core.Stats.DirtyRows (nil for non-update publishes): taken once
	// here, it gives ConcurrentEngine.Apply a caller-owned slice without
	// a second copy dance.
	dirtyRows []int

	readers atomic.Int64
}

// sealView freezes the engine's current state into a publishable view.
// Writer-side only; cost is O(n) pointer copies for the graph seal plus
// O(|dirty|) for the stats snapshot — no similarity payload is copied.
// withDirty is set only by Apply's publish, where lastStats is the
// publishing update's own (other publishes must not stamp stale
// workspace scratch on the view).
func (e *Engine) sealView(withDirty bool) *engineView {
	var dirty []int
	if withDirty {
		dirty = append([]int(nil), e.lastStats.DirtyRows...)
	}
	return &engineView{
		epoch:      e.epoch,
		s:          e.s.Seal(),
		g:          e.g.Seal(),
		n:          e.g.N(),
		m:          e.g.M(),
		opts:       e.opts,
		cache:      e.cache,
		storeBytes: e.s.MemBytes(),
		published:  time.Now(),
		dirtyRows:  dirty,
	}
}

// abandonWriteBuffers tells the store to orphan any buffer a straggling
// reader still pins instead of recycling it — the facade's non-blocking
// alternative to waiting for an old view to drain. Only the dense
// double-buffer recycles memory in place; packed chunks and approx walk
// rows are copy-on-write — never rewritten in place — so there is
// nothing to abandon there.
func (e *Engine) abandonWriteBuffers() {
	if d, ok := e.s.(*simstore.Dense); ok {
		d.AbandonBack()
	}
}

// viewPinsRecycleTarget reports whether v's sealed store shares the
// exact buffer the writer store's next flip would recycle. False for
// packed/approx (nothing is rewritten in place) and for views of a
// previous store generation (AddNodes) or already-orphaned buffers — a
// straggler there is harmless and must not force another abandon.
func (e *Engine) viewPinsRecycleTarget(v *engineView) bool {
	d, ok := e.s.(*simstore.Dense)
	if !ok {
		return false
	}
	sd, ok := v.s.(*simstore.Dense)
	if !ok {
		return false
	}
	return d.RecyclesBufferOf(sd)
}

// valid reports whether v names a node of this view's graph.
func (v *engineView) valid(x int) bool { return x >= 0 && x < v.n }

func (v *engineView) similarity(a, b int) float64 {
	if !v.valid(a) || !v.valid(b) {
		return 0
	}
	return v.s.At(a, b)
}

func (v *engineView) similarityStderr(a, b int) (score, stderr float64) {
	if !v.valid(a) || !v.valid(b) {
		return 0, 0
	}
	if smp, ok := v.s.(simstore.Sampler); ok {
		return smp.PairStderr(a, b)
	}
	return v.s.At(a, b), 0
}

func (v *engineView) topK(k int) []Pair {
	return storeTopK(v.s, v.cache, v.epoch, k)
}

func (v *engineView) topKFor(a, k int) []Pair {
	if !v.valid(a) || k <= 0 {
		return nil
	}
	return storeTopKFor(v.s, v.cache, v.epoch, a, k)
}

func (v *engineView) hasEdge(i, j int) bool { return v.g.HasEdge(i, j) }

// similarities materializes the sealed matrix — the O(n²) copy runs
// entirely against frozen state, so the writer never waits on it.
func (v *engineView) similarities() *matrix.Dense { return v.s.ToDense() }

// writeSnapshot serializes the sealed graph and store: a point-in-time
// snapshot at this view's epoch, taken while the writer keeps
// committing.
func (v *engineView) writeSnapshot(w io.Writer) error {
	return writeSnapshotData(w, v.opts, v.epoch, v.n, v.g.Edges(), v.s)
}

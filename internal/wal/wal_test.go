package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/graph"
)

func mustOpen(t *testing.T, dir string, opts Options) *WAL {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func upd(from, to int, insert bool) graph.Update {
	return graph.Update{Edge: graph.Edge{From: from, To: to}, Insert: insert}
}

func batchRec(epoch uint64, ups ...graph.Update) *Record {
	return &Record{Epoch: epoch, Kind: KindBatch, Updates: ups}
}

func collect(t *testing.T, w *WAL, from uint64) []*Record {
	t.Helper()
	var recs []*Record
	if err := w.Replay(from, func(r *Record) error {
		cp := *r
		cp.Updates = append([]graph.Update(nil), r.Updates...)
		recs = append(recs, &cp)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

// TestEmptyLog: Open on a fresh (and on a truly empty) directory is a
// clean no-op — no segments, no records, replay visits nothing.
func TestEmptyLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal") // does not exist yet
	w := mustOpen(t, dir, Options{})
	if got := collect(t, w, 0); len(got) != 0 {
		t.Fatalf("empty log replayed %d records", len(got))
	}
	st := w.Stats()
	if st.Segments != 0 || st.Bytes != 0 || st.LastEpoch != 0 {
		t.Fatalf("empty log stats = %+v", st)
	}
}

// TestAppendReplayRoundTrip: every record kind survives an append →
// close → reopen → replay cycle bit-for-bit.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	want := []*Record{
		{Epoch: 3, Kind: KindUpdate, Updates: []graph.Update{upd(0, 1, true)}},
		batchRec(7, upd(1, 2, true), upd(0, 1, false)),
		{Epoch: 8, Kind: KindAddNodes, Count: 5},
		{Epoch: 9, Kind: KindRecompute},
	}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append(%v): %v", r.Kind, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := mustOpen(t, dir, Options{})
	got := collect(t, w2, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Epoch != b.Epoch || a.Kind != b.Kind || a.Count != b.Count ||
			len(a.Updates) != len(b.Updates) {
			t.Fatalf("record %d: got %+v want %+v", i, b, a)
		}
		for j := range a.Updates {
			if a.Updates[j] != b.Updates[j] {
				t.Fatalf("record %d update %d: got %v want %v", i, j, b.Updates[j], a.Updates[j])
			}
		}
	}
	if st := w2.Stats(); st.LastEpoch != 9 || st.Segments != 1 || st.TornBytes != 0 {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

// TestReplayFrom: records at or below the from epoch are skipped — and
// a snapshot newer than the whole log tail replays nothing at all.
func TestReplayFrom(t *testing.T) {
	w := mustOpen(t, t.TempDir(), Options{})
	for e := uint64(1); e <= 5; e++ {
		if err := w.Append(batchRec(e, upd(0, int(e), true))); err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, w, 3); len(got) != 2 || got[0].Epoch != 4 || got[1].Epoch != 5 {
		t.Fatalf("Replay(3) = %v", got)
	}
	// Snapshot newer than the log tail: clean no-op, not an error.
	if got := collect(t, w, 5); len(got) != 0 {
		t.Fatalf("Replay(tail) visited %d records", len(got))
	}
	if got := collect(t, w, 99); len(got) != 0 {
		t.Fatalf("Replay(beyond tail) visited %d records", len(got))
	}
}

// TestEpochMustAdvance: appends that do not advance the epoch chain are
// refused — the invariant replay's gap detection relies on.
func TestEpochMustAdvance(t *testing.T) {
	w := mustOpen(t, t.TempDir(), Options{})
	if err := w.Append(batchRec(5, upd(0, 1, true))); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(batchRec(5, upd(1, 2, true))); err == nil {
		t.Fatal("equal epoch accepted")
	}
	if err := w.Append(batchRec(4, upd(1, 2, true))); err == nil {
		t.Fatal("regressing epoch accepted")
	}
	if err := w.Append(batchRec(6, upd(1, 2, true))); err != nil {
		t.Fatalf("advancing epoch refused: %v", err)
	}
}

// TestTornTailTruncates: a partial record at the tail — every possible
// cut point — recovers by truncation to the last intact record, never
// by error, and reports the torn byte count.
func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	recs := []*Record{
		batchRec(1, upd(0, 1, true)),
		batchRec(2, upd(1, 2, true), upd(2, 3, true)),
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	seg := filepath.Join(dir, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := recordHeaderBytes + int(binary.LittleEndian.Uint32(full[:4]))

	t.Run("crc-damaged final frame", func(t *testing.T) {
		// A partial page write can land the full frame with wrong payload
		// bytes: CRC fails, but the frame is the last thing in the file —
		// recoverable by truncation, unlike mid-log CRC damage.
		dir2 := t.TempDir()
		mangled := append([]byte(nil), full...)
		mangled[len(mangled)-1] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir2, segmentName(1)), mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		w2 := mustOpen(t, dir2, Options{})
		got := collect(t, w2, 0)
		if len(got) != 1 || got[0].Epoch != 1 {
			t.Fatalf("recovered %d records, want the single intact one", len(got))
		}
		if st := w2.Stats(); st.TornBytes != int64(len(full)-firstLen) {
			t.Fatalf("TornBytes = %d, want %d", st.TornBytes, len(full)-firstLen)
		}
	})

	for cut := firstLen + 1; cut < len(full); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir2 := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir2, segmentName(1)), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			w2 := mustOpen(t, dir2, Options{})
			got := collect(t, w2, 0)
			if len(got) != 1 || got[0].Epoch != 1 {
				t.Fatalf("recovered %d records, want the single intact one", len(got))
			}
			st := w2.Stats()
			if st.TornBytes != int64(cut-firstLen) {
				t.Fatalf("TornBytes = %d, want %d", st.TornBytes, cut-firstLen)
			}
			// The log must accept appends after recovery.
			if err := w2.Append(batchRec(2, upd(5, 6, true))); err != nil {
				t.Fatalf("append after torn-tail recovery: %v", err)
			}
		})
	}
}

// TestSingleTornRecord: when the ONLY record is torn, recovery yields
// an empty log (the recordless segment is removed) and appends restart
// cleanly.
func TestSingleTornRecord(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{})
	if err := w.Append(batchRec(1, upd(0, 1, true))); err != nil {
		t.Fatal(err)
	}
	w.Close()
	seg := filepath.Join(dir, segmentName(1))
	full, _ := os.ReadFile(seg)
	if err := os.WriteFile(seg, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := mustOpen(t, dir, Options{})
	if got := collect(t, w2, 0); len(got) != 0 {
		t.Fatalf("torn-only log replayed %d records", len(got))
	}
	if st := w2.Stats(); st.Segments != 0 {
		t.Fatalf("recordless segment survived recovery: %+v", st)
	}
	// Appends may restart at any epoch, e.g. a different numbering after
	// the unlogged state was reconstructed some other way.
	if err := w2.Append(batchRec(7, upd(0, 1, true))); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3 := mustOpen(t, dir, Options{})
	if got := collect(t, w3, 0); len(got) != 1 || got[0].Epoch != 7 {
		t.Fatalf("replay after restart = %v", got)
	}
}

// TestCorruptMidLogFailsLoudly: damage that is NOT a torn tail — a
// flipped byte with intact records after it, or any damage in a
// non-final segment — must refuse to open, not silently truncate away
// acknowledged records.
func TestCorruptMidLogFailsLoudly(t *testing.T) {
	t.Run("flipped byte before intact records", func(t *testing.T) {
		dir := t.TempDir()
		w := mustOpen(t, dir, Options{})
		for e := uint64(1); e <= 3; e++ {
			if err := w.Append(batchRec(e, upd(0, int(e), true))); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		seg := filepath.Join(dir, segmentName(1))
		full, _ := os.ReadFile(seg)
		full[recordHeaderBytes+2] ^= 0xff // corrupt record 1's payload
		if err := os.WriteFile(seg, full, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatal("mid-log corruption opened without error")
		}
	})
	t.Run("non-final segment damaged", func(t *testing.T) {
		dir := t.TempDir()
		w := mustOpen(t, dir, Options{SegmentBytes: 1}) // every record rotates
		for e := uint64(1); e <= 3; e++ {
			if err := w.Append(batchRec(e, upd(0, int(e), true))); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		seg := filepath.Join(dir, segmentName(2))
		full, _ := os.ReadFile(seg)
		if err := os.WriteFile(seg, full[:len(full)-2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatal("damaged non-final segment opened without error")
		}
	})
	t.Run("epoch gap across segments", func(t *testing.T) {
		dir := t.TempDir()
		w := mustOpen(t, dir, Options{SegmentBytes: 1})
		for e := uint64(1); e <= 3; e++ {
			if err := w.Append(batchRec(e, upd(0, int(e), true))); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		// Deleting a MIDDLE segment leaves 1 then 3: name order is fine but
		// the epoch chain is broken... and in this encoding the chain check
		// is strict inequality, so 1→3 passes numerically. What cannot pass
		// is a segment REORDERING: rename segment 3 below segment 1.
		if err := os.Rename(filepath.Join(dir, segmentName(3)), filepath.Join(dir, segmentName(0))); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatal("reordered segments opened without error")
		}
	})
	t.Run("misnamed segment", func(t *testing.T) {
		dir := t.TempDir()
		w := mustOpen(t, dir, Options{})
		if err := w.Append(batchRec(4, upd(0, 1, true))); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if err := os.Rename(filepath.Join(dir, segmentName(4)), filepath.Join(dir, segmentName(2))); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatal("misnamed segment opened without error")
		}
	})
}

// TestSegmentBoundaryAtRecordEdge: when a record lands the segment size
// EXACTLY on the rotation budget, the next record starts a fresh
// segment, no byte is split across files, and recovery sees both.
func TestSegmentBoundaryAtRecordEdge(t *testing.T) {
	recBytes := len(appendRecord(nil, batchRec(1, upd(0, 1, true))))
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{SegmentBytes: int64(recBytes)}) // one record fills a segment exactly
	for e := uint64(1); e <= 3; e++ {
		if err := w.Append(batchRec(e, upd(0, 1, true))); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Segments != 3 {
		t.Fatalf("Segments = %d, want 3 (rotation exactly at the record edge)", st.Segments)
	}
	w.Close()
	for e := uint64(1); e <= 3; e++ {
		info, err := os.Stat(filepath.Join(dir, segmentName(e)))
		if err != nil {
			t.Fatalf("segment %d: %v", e, err)
		}
		if info.Size() != int64(recBytes) {
			t.Fatalf("segment %d holds %d bytes, want exactly %d", e, info.Size(), recBytes)
		}
	}
	w2 := mustOpen(t, dir, Options{SegmentBytes: int64(recBytes)})
	if got := collect(t, w2, 0); len(got) != 3 {
		t.Fatalf("replayed %d records across exact-boundary segments, want 3", len(got))
	}
}

// TestTruncate removes exactly the sealed segments a snapshot covers:
// never a segment with records above the snapshot epoch, never the
// active tail.
func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{SegmentBytes: 1})
	for e := uint64(1); e <= 4; e++ {
		if err := w.Append(batchRec(e, upd(0, int(e), true))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Segments != 2 {
		t.Fatalf("Segments after Truncate(2) = %d, want 2", st.Segments)
	}
	if got := collect(t, w, 2); len(got) != 2 || got[0].Epoch != 3 {
		t.Fatalf("post-truncate Replay(2) = %v", got)
	}
	// Truncating everything still keeps the tail.
	if err := w.Truncate(99); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Segments != 1 || st.LastEpoch != 4 {
		t.Fatalf("Truncate must keep the active tail: %+v", st)
	}
	// And the survivor chain reopens cleanly.
	w.Close()
	w2 := mustOpen(t, dir, Options{})
	if got := collect(t, w2, 0); len(got) != 1 || got[0].Epoch != 4 {
		t.Fatalf("replay after truncate+reopen = %v", got)
	}
}

// TestSyncPolicies: always fsyncs per append; interval leaves appends
// unsynced until the timer or an explicit Sync; none never fsyncs but
// Sync still forces.
func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		w := mustOpen(t, t.TempDir(), Options{Sync: SyncAlways})
		for e := uint64(1); e <= 3; e++ {
			if err := w.Append(batchRec(e, upd(0, 1, true))); err != nil {
				t.Fatal(err)
			}
		}
		if st := w.Stats(); st.Fsyncs != 3 {
			t.Fatalf("Fsyncs = %d, want one per append", st.Fsyncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		w := mustOpen(t, t.TempDir(), Options{Sync: SyncInterval, SyncInterval: time.Hour})
		if err := w.Append(batchRec(1, upd(0, 1, true))); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); st.Fsyncs != 0 {
			t.Fatalf("interval policy fsynced on append (%d)", st.Fsyncs)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); st.Fsyncs != 1 {
			t.Fatalf("explicit Sync did not fsync (%d)", st.Fsyncs)
		}
		// A second Sync with nothing new appended is a no-op.
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); st.Fsyncs != 1 {
			t.Fatalf("clean Sync fsynced anyway (%d)", st.Fsyncs)
		}
	})
	t.Run("interval timer", func(t *testing.T) {
		w := mustOpen(t, t.TempDir(), Options{Sync: SyncInterval, SyncInterval: time.Millisecond})
		if err := w.Append(batchRec(1, upd(0, 1, true))); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for w.Stats().Fsyncs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("background flusher never fsynced")
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("none", func(t *testing.T) {
		w := mustOpen(t, t.TempDir(), Options{Sync: SyncNone})
		if err := w.Append(batchRec(1, upd(0, 1, true))); err != nil {
			t.Fatal(err)
		}
		if st := w.Stats(); st.Fsyncs != 0 {
			t.Fatalf("none policy fsynced (%d)", st.Fsyncs)
		}
	})
}

// TestClosedOperations: every operation on a closed WAL reports
// ErrClosed instead of touching freed handles.
func TestClosedOperations(t *testing.T) {
	w := mustOpen(t, t.TempDir(), Options{})
	if err := w.Append(batchRec(1, upd(0, 1, true))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := w.Append(batchRec(2, upd(0, 1, true))); err == nil {
		t.Fatal("Append on closed WAL succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("Sync on closed WAL succeeded")
	}
	if err := w.Truncate(1); err == nil {
		t.Fatal("Truncate on closed WAL succeeded")
	}
	if err := w.Replay(0, func(*Record) error { return nil }); err == nil {
		t.Fatal("Replay on closed WAL succeeded")
	}
}

// TestDecodeRejectsMalformedPayloads: framing that passes the CRC (we
// corrupt and re-frame deliberately) still cannot smuggle nonsense
// payloads through the decoder.
func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	cases := map[string][]byte{
		"short prologue":        {1, 2, 3},
		"unknown kind":          append(binary.LittleEndian.AppendUint64(nil, 1), 0xEE),
		"batch truncated count": append(binary.LittleEndian.AppendUint64(nil, 1), byte(KindBatch), 9, 9),
		"addnodes short body":   append(binary.LittleEndian.AppendUint64(nil, 1), byte(KindAddNodes), 1),
		"recompute with body":   append(binary.LittleEndian.AppendUint64(nil, 1), byte(KindRecompute), 7),
		"update count mismatch": append(binary.LittleEndian.AppendUint32(append(binary.LittleEndian.AppendUint64(nil, 1), byte(KindUpdate)), 2), 0),
	}
	for name, payload := range cases {
		if _, err := decodePayload(payload); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// A bad op byte inside an otherwise well-formed update.
	b := binary.LittleEndian.AppendUint64(nil, 1)
	b = append(b, byte(KindUpdate))
	b = binary.LittleEndian.AppendUint32(b, 1)
	b = binary.LittleEndian.AppendUint32(b, 0)
	b = binary.LittleEndian.AppendUint32(b, 1)
	b = append(b, 9)
	if _, err := decodePayload(b); err == nil {
		t.Error("op byte 9 decoded without error")
	}
}

// TestForeignFilesIgnored: unrelated files in the WAL directory are
// left alone, but a file that claims the segment suffix with a mangled
// name is an error, not silently skipped.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := mustOpen(t, dir, Options{})
	if err := w.Append(batchRec(1, upd(0, 1, true))); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := os.WriteFile(filepath.Join(dir, "junk.wal"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mangled segment name opened without error")
	}
}

// TestParseSyncPolicy covers the flag parser.
func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy parsed")
	}
}

// TestEncodeIsDeterministic pins the wire framing: byte-identical
// encoding for identical records, and the CRC actually covers the
// payload (a flipped payload byte fails the checksum on read).
func TestEncodeIsDeterministic(t *testing.T) {
	r := batchRec(3, upd(1, 2, true), upd(3, 4, false))
	a := appendRecord(nil, r)
	b := appendRecord(nil, r)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
	a[recordHeaderBytes] ^= 1
	if _, _, err := newRecordReader(bytes.NewReader(a)).next(); err == nil {
		t.Fatal("flipped payload byte passed the CRC")
	}
}

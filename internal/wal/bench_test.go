package wal

import (
	"testing"

	"repro/internal/graph"
)

// BenchmarkWALAppend measures raw append throughput per fsync policy —
// the cost one committed drain cycle pays for durability. SyncAlways is
// bounded by the device's fsync latency (this is the price of
// ack-equals-durable); SyncInterval and SyncNone show the logging cost
// itself, which must stay negligible next to an update's O(n·K) kernel
// work. Parsed into BENCH_wal.json by cmd/benchjson in CI.
func BenchmarkWALAppend(b *testing.B) {
	// One coalesced batch of 8 updates per record — a realistic drain
	// cycle under burst load.
	ups := make([]graph.Update, 8)
	for i := range ups {
		ups[i] = graph.Update{Edge: graph.Edge{From: i, To: i + 1}, Insert: true}
	}
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		b.Run("sync="+policy.String(), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := Record{Epoch: uint64(i + 1), Kind: KindBatch, Updates: ups}
				if err := w.Append(&rec); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := w.Stats()
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Bytes)/float64(st.Appends), "bytes/record")
			}
		})
	}
}

// BenchmarkWALReplay measures recovery speed: how fast a boot streams
// an on-disk log back through the decode path (the apply cost is the
// engine's, not the log's, so fn is a no-op here).
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	ups := make([]graph.Update, 8)
	for i := range ups {
		ups[i] = graph.Update{Edge: graph.Edge{From: i, To: i + 1}, Insert: true}
	}
	const records = 4096
	for i := 0; i < records; i++ {
		if err := w.Append(&Record{Epoch: uint64(i + 1), Kind: KindBatch, Updates: ups}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		seen := 0
		if err := r.Replay(0, func(*Record) error { seen++; return nil }); err != nil {
			b.Fatal(err)
		}
		if seen != records {
			b.Fatalf("replayed %d records, want %d", seen, records)
		}
		r.Close()
	}
}

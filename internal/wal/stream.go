// Replication streaming: the leader serves its log over HTTP
// (GET /wal?from=<epoch>, see internal/server) as a sequence of frames
// in EXACTLY the on-disk record encoding — u32 length | u32 crc |
// payload — so a follower replays the same bytes a local crash
// recovery would, and the bit-equality argument for WAL replay carries
// over to replication unchanged. This file holds the exported codec
// both ends share: EncodeFrame for the leader's streaming handler,
// FrameReader for the follower's client, and the stream-only heartbeat
// record that carries the leader's committed epoch when no mutations
// are flowing (the follower's lag and liveness signal).

package wal

import (
	"fmt"
	"io"
)

// KindHeartbeat is a stream-only frame: it carries the leader's newest
// committed WAL epoch and no body, repeated on a timer so an idle
// leader is distinguishable from a dead one and a follower can compute
// its lag even when no records flow. Heartbeats are never stored —
// Append rejects them — and their epoch may repeat (they report a
// position, they do not advance one).
const KindHeartbeat Kind = 255

// Heartbeat builds a stream heartbeat frame reporting epoch as the
// leader's newest committed record position.
func Heartbeat(epoch uint64) *Record {
	return &Record{Epoch: epoch, Kind: KindHeartbeat}
}

// EncodeFrame appends the framed wire encoding of rec (identical to
// the on-disk record encoding) onto b and returns the extended slice.
func EncodeFrame(b []byte, rec *Record) []byte {
	return appendRecord(b, rec)
}

// FrameReader decodes a stream of framed records from r — the client
// half of the replication stream. Next returns io.EOF on a clean end
// exactly at a frame boundary; any damage (a torn frame, a checksum
// mismatch, an undecodable payload) is an ordinary error, since on a
// byte stream there is no tail to truncate — the connection is broken
// and the follower reconnects from its last applied epoch.
type FrameReader struct {
	rr *recordReader
}

// NewFrameReader wraps r in a frame decoder.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{rr: newRecordReader(r)}
}

// Next returns the next framed record, or io.EOF at a clean end of
// stream.
func (fr *FrameReader) Next() (*Record, error) {
	rec, _, err := fr.rr.next()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wal: stream frame: %w", err)
	}
	return rec, nil
}

// Package wal is the segmented write-ahead log behind simrankd's crash
// recovery: every committed mutation batch — link updates, node growth,
// recompute markers — is appended as one epoch-tagged, CRC-protected
// record *before* the MVCC view that exposes it publishes. Because
// Inc-SR/Inc-uSR are deterministic (bit-identical replay is pinned by
// the repository's equivalence harnesses), restoring the newest
// snapshot and replaying the log tail above its epoch reproduces the
// exact pre-crash store.
//
// On-disk layout: a directory of segment files named
// "<firstEpoch>.wal" (20-digit zero-padded decimal, so lexicographic
// order is epoch order). Each segment is a sequence of records:
//
//	u32 payload length | u32 crc32(IEEE) of payload | payload
//	payload = u64 epoch | u8 kind | kind-specific body
//
// Kinds: KindUpdate (one unit update: from u32, to u32, op u8),
// KindBatch (count u32, then count updates — one coalesced drain
// cycle, replayed through the same ApplyBatch entry point so the
// recompute-threshold choice reproduces), KindAddNodes (count u32) and
// KindRecompute (no body).
//
// Recovery is paranoid by construction:
//
//   - A torn tail — a partial record at the end of the *last* segment,
//     the signature of a crash mid-append — is truncated away cleanly:
//     the log resumes at the last intact record, never errors, never
//     silently keeps garbage.
//   - A corrupt record anywhere *before* the tail (a CRC mismatch or
//     impossible length followed by more data, or any damage in a
//     non-final segment) fails loudly: that is disk corruption or
//     operator error, not a crash artifact, and replaying past it
//     would silently diverge from the acknowledged stream.
//   - Record epochs must be strictly increasing across the whole log
//     and each segment's name must match its first record — an epoch
//     gap or regression fails Open rather than replaying out of order.
//
// Durability policy is configurable (SyncPolicy): SyncAlways fsyncs
// every append (group commit comes for free upstream — the coalescing
// pipeline folds every request of a drain cycle into ONE record, so
// one fsync acknowledges the whole cycle), SyncInterval fsyncs on a
// background timer plus whenever a synchronous writer demands it
// (Sync), SyncNone leaves flushing to the OS entirely.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Kind discriminates the logged operation of one record.
type Kind uint8

const (
	// KindUpdate is a single unit update committed through Apply —
	// replayed through Apply, never through ApplyBatch, so the
	// incremental-vs-recompute choice matches the original run.
	KindUpdate Kind = 1
	// KindBatch is one committed ApplyBatch call (one coalesced drain
	// cycle of the write pipeline).
	KindBatch Kind = 2
	// KindAddNodes grew the graph by Count isolated nodes.
	KindAddNodes Kind = 3
	// KindRecompute marks an explicit from-scratch recomputation.
	KindRecompute Kind = 4
)

func (k Kind) String() string {
	switch k {
	case KindUpdate:
		return "update"
	case KindBatch:
		return "batch"
	case KindAddNodes:
		return "addnodes"
	case KindRecompute:
		return "recompute"
	case KindHeartbeat:
		return "heartbeat"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one logged operation, tagged with the engine epoch observed
// immediately after the operation committed (the epoch the MVCC view
// publishing it carries). Replay applies the operation and then forces
// the engine's epoch to Epoch, so epoch numbering survives a restart.
type Record struct {
	Epoch   uint64
	Kind    Kind
	Updates []graph.Update // KindUpdate (len 1) and KindBatch
	Count   int            // KindAddNodes
}

// SyncPolicy says when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every Append: an acknowledged write is a
	// durable write. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncInterval)
	// and whenever Sync is called explicitly (the pipeline calls it
	// before acknowledging ?wait=1 writers — group commit). A crash can
	// lose at most the last interval of fire-and-forget writes.
	SyncInterval
	// SyncNone never fsyncs; the OS flushes when it pleases. Fastest,
	// and a crash may lose anything not yet flushed — for workloads
	// where the WAL is a convenience, not a contract.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("syncpolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf(`wal: unknown sync policy %q (want "always", "interval" or "none")`, s)
}

// Options tunes a WAL. The zero value is usable: 64 MiB segments,
// fsync on every append.
type Options struct {
	// SegmentBytes rotates to a fresh segment file once the current one
	// has reached this many bytes (default 64 MiB). Rotation happens on
	// record boundaries — a record never straddles two segments.
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (default 50ms; ignored otherwise).
	SyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	return o
}

// Stats is the WAL's observability snapshot, served as the /stats
// wal_* fields.
type Stats struct {
	// Segments and Bytes describe the on-disk footprint right now.
	Segments int
	Bytes    int64
	// LastEpoch is the epoch of the newest record (0 when empty).
	LastEpoch uint64
	// Appends and Fsyncs count operations over the handle's lifetime.
	Appends int64
	Fsyncs  int64
	// TornBytes is how many trailing bytes recovery truncated away at
	// Open — nonzero exactly when the previous process died mid-append.
	TornBytes int64
	// TruncatedThrough is the highest record epoch removed by Truncate
	// over this handle's lifetime (0 when nothing was dropped): the
	// replication streaming floor. A follower asking for records at or
	// below it cannot be served from this log and must re-seed from a
	// snapshot; the in-memory bound resets at restart, when the oldest
	// retained segment becomes the only (weaker) signal.
	TruncatedThrough uint64
}

const (
	recordHeaderBytes = 8       // u32 length + u32 crc
	maxRecordBytes    = 1 << 28 // sanity bound against garbage lengths
	segmentSuffix     = ".wal"
)

var crcTable = crc32.IEEETable

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// segment is the metadata of one validated on-disk segment file.
type segment struct {
	path       string
	firstEpoch uint64 // also encoded in the file name
	lastEpoch  uint64
	bytes      int64
	records    int
}

// WAL is an open write-ahead log rooted at one directory. Safe for
// concurrent use; in simrankd a single writer (the pipeline drain
// goroutine, via the engine's commit hook) appends.
type WAL struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segments []segment
	tail     *os.File // open handle on the last segment (nil when empty)
	tailSize int64
	last     uint64 // newest record epoch (0 when empty)
	dirty    bool   // unsynced appended bytes
	closed   bool

	appends   atomic.Int64
	fsyncs    atomic.Int64
	tornBytes int64
	truncated uint64 // highest epoch dropped by Truncate (see Stats)

	// buf is the reused append encoding buffer.
	buf []byte

	// stopSync terminates the SyncInterval background flusher.
	stopSync chan struct{}
	syncDone chan struct{}
}

// Open validates the log at dir (creating the directory if needed) and
// returns a handle positioned to append after the newest intact record.
// Recovery semantics: a torn record at the very tail of the final
// segment is truncated away (Stats.TornBytes reports how much); any
// other damage — a corrupt mid-log record, an epoch regression, a
// misnamed segment — returns an error and leaves the files untouched.
func Open(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	if err := w.scan(); err != nil {
		return nil, err
	}
	if len(w.segments) > 0 {
		tail := &w.segments[len(w.segments)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: open tail: %w", err)
		}
		if _, err := f.Seek(tail.bytes, io.SeekStart); err != nil {
			// Error-path cleanup; the seek failure is what gets reported.
			_ = f.Close()
			return nil, fmt.Errorf("wal: seek tail: %w", err)
		}
		w.tail = f
		w.tailSize = tail.bytes
	}
	if opts.Sync == SyncInterval {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// segmentName renders the canonical file name of a segment whose first
// record has the given epoch.
func segmentName(firstEpoch uint64) string {
	return fmt.Sprintf("%020d%s", firstEpoch, segmentSuffix)
}

// parseSegmentName extracts the first-record epoch a segment file name
// claims.
func parseSegmentName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segmentSuffix)
	if !ok || len(base) != 20 {
		return 0, false
	}
	v, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// scan lists, orders and validates every segment, truncating a torn
// tail on the final one and populating w.segments / w.last.
func (w *WAL) scan() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		epoch, ok := parseSegmentName(e.Name())
		if !ok {
			if strings.HasSuffix(e.Name(), segmentSuffix) {
				return fmt.Errorf("wal: segment %q has a malformed name", e.Name())
			}
			continue // unrelated file; leave it alone
		}
		segs = append(segs, segment{path: filepath.Join(w.dir, e.Name()), firstEpoch: epoch})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstEpoch < segs[j].firstEpoch })
	prevEpoch := uint64(0)
	for i := range segs {
		s := &segs[i]
		final := i == len(segs)-1
		if err := w.validateSegment(s, final, &prevEpoch); err != nil {
			return err
		}
		if s.records == 0 && !final {
			return fmt.Errorf("wal: segment %s is empty but not the tail", filepath.Base(s.path))
		}
	}
	// A tail segment with no intact records (an empty file from a crash
	// mid-creation, or a first record torn away above) must go: its name
	// promises a first epoch the next append would not deliver.
	if n := len(segs); n > 0 && segs[n-1].records == 0 {
		if err := os.Remove(segs[n-1].path); err != nil {
			return fmt.Errorf("wal: remove recordless tail segment: %w", err)
		}
		if err := syncPath(w.dir); err != nil {
			return fmt.Errorf("wal: sync dir: %w", err)
		}
		segs = segs[:n-1]
	}
	w.segments = segs
	w.last = prevEpoch
	return nil
}

// validateSegment reads every record of one segment, checking framing,
// CRC, the strictly-increasing epoch chain (threaded via prevEpoch) and
// the name/first-record agreement. On the final segment a trailing
// invalid record is truncated away; anywhere else it is fatal.
func (w *WAL) validateSegment(s *segment, final bool, prevEpoch *uint64) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close() //simrank:errok read-only validation pass; nothing written through this handle
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	size := info.Size()
	r := newRecordReader(f)
	offset := int64(0)
	for {
		rec, n, err := r.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Only the torn-write signature of a crash mid-append may be
			// truncated away: a frame that runs off the end of the file, or
			// a checksum-failing frame that is the LAST thing in the file
			// (a partial page write). Damage with intact data after it, or
			// a checksum-valid record that decodes to nonsense, is disk
			// corruption — silently dropping it would drop acknowledged
			// records, so it fails loudly instead.
			torn := errors.Is(err, errTornFrame) ||
				(errors.Is(err, errChecksum) && offset+int64(n) == size)
			if !final || !torn {
				return fmt.Errorf("wal: segment %s: corrupt record at offset %d: %v (mid-log damage, refusing to truncate)", filepath.Base(s.path), offset, err)
			}
			tornBytes := size - offset
			if terr := os.Truncate(s.path, offset); terr != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", filepath.Base(s.path), terr)
			}
			if terr := syncPath(s.path); terr != nil {
				return fmt.Errorf("wal: sync truncated tail: %w", terr)
			}
			w.tornBytes += tornBytes
			size = offset
			break
		}
		if s.records == 0 && rec.Epoch != s.firstEpoch {
			return fmt.Errorf("wal: segment %s claims first epoch %d but starts with record epoch %d", filepath.Base(s.path), s.firstEpoch, rec.Epoch)
		}
		if rec.Epoch <= *prevEpoch {
			return fmt.Errorf("wal: epoch %d at %s offset %d does not advance past %d (gap or reordering — refusing to replay)", rec.Epoch, filepath.Base(s.path), offset, *prevEpoch)
		}
		*prevEpoch = rec.Epoch
		s.lastEpoch = rec.Epoch
		s.records++
		offset += int64(n)
	}
	s.bytes = size
	if offset != size {
		// Only reachable when io.EOF arrived exactly at a record edge yet
		// bytes remain — defensive; next() reports partial reads as errors.
		return fmt.Errorf("wal: segment %s: %d trailing bytes after last record", filepath.Base(s.path), size-offset)
	}
	return nil
}

// Replay streams every intact record with epoch strictly greater than
// from, in order, to fn; fn returning an error stops the replay and
// returns that error. A from at or above the newest record epoch — a
// snapshot newer than the log tail — is a clean no-op. Replay reads the
// validated on-disk state and may be called at any time, but the
// intended sequence is Open → Replay → Appends.
func (w *WAL) Replay(from uint64, fn func(*Record) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	segs := append([]segment(nil), w.segments...)
	w.mu.Unlock()

	prev := from
	for _, s := range segs {
		if s.records == 0 || s.lastEpoch <= from {
			continue // entirely covered by the snapshot
		}
		if err := replaySegment(s, from, &prev, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(s segment, from uint64, prev *uint64, fn func(*Record) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close() //simrank:errok read-only replay; nothing written through this handle
	r := newRecordReader(io.LimitReader(f, s.bytes))
	for {
		rec, _, err := r.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: segment %s changed under replay: %v", filepath.Base(s.path), err)
		}
		if rec.Epoch <= from {
			continue
		}
		if rec.Epoch <= *prev {
			return fmt.Errorf("wal: replay epoch %d does not advance past %d", rec.Epoch, *prev)
		}
		*prev = rec.Epoch
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Append logs one record durably according to the sync policy. The
// record's epoch must advance past every record already logged — the
// property replay's gap detection relies on. Safe for concurrent use;
// calls are serialized internally.
func (w *WAL) Append(rec *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if rec.Kind == KindHeartbeat {
		// Heartbeats are stream liveness frames, not operations: storing
		// one would poison replay (applyWALRecord has nothing to apply).
		return fmt.Errorf("wal: refusing to append a stream heartbeat frame")
	}
	if rec.Epoch <= w.last {
		return fmt.Errorf("wal: record epoch %d does not advance past %d", rec.Epoch, w.last)
	}
	w.buf = appendRecord(w.buf[:0], rec)
	if len(w.buf) > maxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(w.buf), maxRecordBytes)
	}
	if err := w.rotateLocked(rec.Epoch); err != nil {
		return err
	}
	if _, err := w.tail.Write(w.buf); err != nil {
		// A short write leaves a torn tail exactly like a crash would;
		// the next Open truncates it. Do not advance the epoch chain.
		return fmt.Errorf("wal: append: %w", err)
	}
	n := int64(len(w.buf))
	w.tailSize += n
	t := &w.segments[len(w.segments)-1]
	t.bytes += n
	t.lastEpoch = rec.Epoch
	t.records++
	w.last = rec.Epoch
	w.appends.Add(1)
	w.dirty = true
	if w.opts.Sync == SyncAlways {
		return w.syncLocked()
	}
	return nil
}

// rotateLocked makes sure an open tail segment with room exists,
// sealing the current one (with a final fsync, so a sealed segment is
// immutable AND durable) and starting a fresh file named after epoch
// when the size budget is spent.
func (w *WAL) rotateLocked(epoch uint64) error {
	if w.tail != nil && w.tailSize < w.opts.SegmentBytes {
		return nil
	}
	if w.tail != nil {
		if err := w.syncLocked(); err != nil {
			return err
		}
		if err := w.tail.Close(); err != nil {
			return fmt.Errorf("wal: seal segment: %w", err)
		}
		w.tail = nil
	}
	path := filepath.Join(w.dir, segmentName(epoch))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	// The directory entry must survive a crash too, or the fsynced
	// records sit in a file no one can find.
	if err := syncPath(w.dir); err != nil {
		// Error-path cleanup of the just-created segment; the dir-sync
		// failure is what gets reported.
		_ = f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	w.tail = f
	w.tailSize = 0
	w.segments = append(w.segments, segment{path: path, firstEpoch: epoch})
	return nil
}

// Policy reports the handle's effective fsync policy — the write
// pipeline consults it to decide whether ?wait=1 acknowledgements need
// an explicit group-commit Sync (SyncInterval) or already got one per
// append (SyncAlways) or deliberately get none (SyncNone).
func (w *WAL) Policy() SyncPolicy { return w.opts.Sync }

// Sync forces appended records to stable storage now, whatever the
// policy — the group-commit hook ?wait=1 acknowledgements ride on.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if !w.dirty || w.tail == nil {
		return nil
	}
	if err := w.tail.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	w.dirty = false
	w.fsyncs.Add(1)
	return nil
}

// syncLoop is the SyncInterval background flusher.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				w.syncLocked() // best-effort; Append/Sync surface errors
			}
			w.mu.Unlock()
		}
	}
}

// Truncate removes whole segments every record of which has epoch at
// most upto — called after a snapshot at epoch upto durably landed, so
// the log never regrows unboundedly. The active tail segment is always
// kept (empty logs confuse no one, missing append handles do).
func (w *WAL) Truncate(upto uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	kept := w.segments[:0]
	removed := false
	for i, s := range w.segments {
		isTail := i == len(w.segments)-1
		if !isTail && s.records > 0 && s.lastEpoch <= upto {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			if s.lastEpoch > w.truncated {
				w.truncated = s.lastEpoch
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	w.segments = kept
	if removed {
		if err := syncPath(w.dir); err != nil {
			return fmt.Errorf("wal: sync dir after truncate: %w", err)
		}
	}
	return nil
}

// Stats reports the log's current gauges and lifetime counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Segments:         len(w.segments),
		LastEpoch:        w.last,
		Appends:          w.appends.Load(),
		Fsyncs:           w.fsyncs.Load(),
		TornBytes:        w.tornBytes,
		TruncatedThrough: w.truncated,
	}
	for _, s := range w.segments {
		st.Bytes += s.bytes
	}
	return st
}

// Close flushes and closes the log. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	err := w.syncLocked()
	if w.tail != nil {
		if cerr := w.tail.Close(); err == nil {
			err = cerr
		}
		w.tail = nil
	}
	w.closed = true
	stop := w.stopSync
	done := w.syncDone
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// appendRecord encodes rec (framing + payload) onto b.
func appendRecord(b []byte, rec *Record) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholder
	b = binary.LittleEndian.AppendUint64(b, rec.Epoch)
	b = append(b, byte(rec.Kind))
	switch rec.Kind {
	case KindUpdate, KindBatch:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(rec.Updates)))
		for _, up := range rec.Updates {
			b = binary.LittleEndian.AppendUint32(b, uint32(up.Edge.From))
			b = binary.LittleEndian.AppendUint32(b, uint32(up.Edge.To))
			op := byte(0)
			if up.Insert {
				op = 1
			}
			b = append(b, op)
		}
	case KindAddNodes:
		b = binary.LittleEndian.AppendUint32(b, uint32(rec.Count))
	case KindRecompute:
	}
	payload := b[start+recordHeaderBytes:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.Checksum(payload, crcTable))
	return b
}

// decodePayload parses one record payload (the bytes the CRC covers).
func decodePayload(p []byte) (*Record, error) {
	if len(p) < 9 {
		return nil, fmt.Errorf("payload of %d bytes is shorter than the epoch+kind prologue", len(p))
	}
	rec := &Record{
		Epoch: binary.LittleEndian.Uint64(p),
		Kind:  Kind(p[8]),
	}
	body := p[9:]
	switch rec.Kind {
	case KindUpdate, KindBatch:
		if len(body) < 4 {
			return nil, errors.New("truncated update count")
		}
		count := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if len(body) != count*9 {
			return nil, fmt.Errorf("update body holds %d bytes, want %d for %d updates", len(body), count*9, count)
		}
		if rec.Kind == KindUpdate && count != 1 {
			return nil, fmt.Errorf("unit-update record holds %d updates", count)
		}
		rec.Updates = make([]graph.Update, count)
		for i := range rec.Updates {
			rec.Updates[i] = graph.Update{
				Edge: graph.Edge{
					From: int(binary.LittleEndian.Uint32(body[i*9:])),
					To:   int(binary.LittleEndian.Uint32(body[i*9+4:])),
				},
				Insert: body[i*9+8] == 1,
			}
			if op := body[i*9+8]; op > 1 {
				return nil, fmt.Errorf("update %d has invalid op byte %d", i, op)
			}
		}
	case KindAddNodes:
		if len(body) != 4 {
			return nil, fmt.Errorf("addnodes body holds %d bytes, want 4", len(body))
		}
		rec.Count = int(binary.LittleEndian.Uint32(body))
	case KindRecompute:
		if len(body) != 0 {
			return nil, fmt.Errorf("recompute record carries %d unexpected body bytes", len(body))
		}
	case KindHeartbeat:
		// Stream-only (Append refuses it); decoded here so FrameReader
		// hands it to the replication client like any other frame.
		if len(body) != 0 {
			return nil, fmt.Errorf("heartbeat frame carries %d unexpected body bytes", len(body))
		}
	default:
		return nil, fmt.Errorf("unknown record kind %d", uint8(rec.Kind))
	}
	return rec, nil
}

// errTornFrame marks a frame that ran off the end of the file — the
// one failure a sequential crash mid-append can produce on its own
// (when fewer than 8 header bytes land, or the length field landed
// intact — it is a prefix of the true record — but the payload is
// short). errChecksum marks a fully-framed payload whose CRC fails; it
// is only a crash artifact when the frame is the last thing in the
// file (a partial page write inside the payload).
var (
	errTornFrame = errors.New("frame runs past end of file")
	errChecksum  = errors.New("record checksum mismatch")
)

// recordReader streams records off one segment, distinguishing a clean
// end (io.EOF exactly at a record boundary) from damage (anything
// else). The reported size n is the full framed record length; on an
// errChecksum failure n is still reported so the caller can tell a
// tail frame from a mid-log one.
type recordReader struct {
	r   io.Reader
	hdr [recordHeaderBytes]byte
	buf []byte
}

func newRecordReader(r io.Reader) *recordReader { return &recordReader{r: r} }

func (rr *recordReader) next() (rec *Record, n int, err error) {
	if _, err := io.ReadFull(rr.r, rr.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF // clean boundary
		}
		return nil, 0, fmt.Errorf("%w: short header: %v", errTornFrame, err)
	}
	length := binary.LittleEndian.Uint32(rr.hdr[:4])
	sum := binary.LittleEndian.Uint32(rr.hdr[4:])
	if length > maxRecordBytes {
		// A torn append cannot write a wrong length (a partial write leaves
		// a PREFIX of the record, and the length field is first), so a
		// garbage length is corruption, never truncatable.
		return nil, 0, fmt.Errorf("record length %d exceeds the %d-byte bound (garbage framing)", length, maxRecordBytes)
	}
	if cap(rr.buf) < int(length) {
		rr.buf = make([]byte, length)
	}
	rr.buf = rr.buf[:length]
	if _, err := io.ReadFull(rr.r, rr.buf); err != nil {
		return nil, 0, fmt.Errorf("%w: short payload: %v", errTornFrame, err)
	}
	n = recordHeaderBytes + int(length)
	if got := crc32.Checksum(rr.buf, crcTable); got != sum {
		return nil, n, fmt.Errorf("%w (stored %08x, computed %08x)", errChecksum, sum, got)
	}
	rec, err = decodePayload(rr.buf)
	if err != nil {
		return nil, 0, err
	}
	return rec, n, nil
}

// syncPath fsyncs a file or directory by path — the directory half of
// crash-safe file creation, rename and removal.
func syncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if closeErr := f.Close(); err == nil {
		// A Close failure here means the durability of the entry is
		// unproven — report it like a failed fsync, never drop it.
		err = closeErr
	}
	return err
}

package wal

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestFrameRoundTrip: the stream codec is the on-disk record codec —
// every record kind (plus the stream-only heartbeat) survives
// EncodeFrame → FrameReader bit-exactly.
func TestFrameRoundTrip(t *testing.T) {
	recs := []*Record{
		{Epoch: 1, Kind: KindUpdate, Updates: []graph.Update{
			{Edge: graph.Edge{From: 3, To: 7}, Insert: true}}},
		{Epoch: 2, Kind: KindBatch, Updates: []graph.Update{
			{Edge: graph.Edge{From: 0, To: 1}, Insert: true},
			{Edge: graph.Edge{From: 1, To: 0}, Insert: false}}},
		{Epoch: 3, Kind: KindAddNodes, Count: 5},
		{Epoch: 4, Kind: KindRecompute},
		Heartbeat(4), // repeats the committed epoch; streams fine
		{Epoch: 9, Kind: KindUpdate, Updates: []graph.Update{
			{Edge: graph.Edge{From: 2, To: 2}, Insert: false}}},
	}
	var buf []byte
	for _, r := range recs {
		buf = EncodeFrame(buf, r)
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, want := range recs {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) &&
			// DeepEqual treats nil and empty slices differently; the
			// decoder materializes an empty Updates slice for count 0.
			!(len(got.Updates) == 0 && len(want.Updates) == 0 &&
				got.Epoch == want.Epoch && got.Kind == want.Kind && got.Count == want.Count) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

// TestFrameReaderRejectsDamage: a flipped byte mid-stream is a broken
// connection, never silently skipped.
func TestFrameReaderRejectsDamage(t *testing.T) {
	buf := EncodeFrame(nil, &Record{Epoch: 1, Kind: KindRecompute})
	buf = EncodeFrame(buf, &Record{Epoch: 2, Kind: KindRecompute})
	buf[len(buf)-1] ^= 0xFF
	fr := NewFrameReader(bytes.NewReader(buf))
	if _, err := fr.Next(); err != nil {
		t.Fatalf("intact first frame rejected: %v", err)
	}
	if _, err := fr.Next(); err == nil || err == io.EOF {
		t.Fatalf("damaged frame not rejected (err=%v)", err)
	}
}

// TestFrameReaderTornTail: a stream cut mid-frame errors (the client
// reconnects); it is not a clean EOF.
func TestFrameReaderTornTail(t *testing.T) {
	buf := EncodeFrame(nil, &Record{Epoch: 1, Kind: KindAddNodes, Count: 2})
	fr := NewFrameReader(bytes.NewReader(buf[:len(buf)-3]))
	if _, err := fr.Next(); err == nil || err == io.EOF {
		t.Fatalf("torn frame not rejected (err=%v)", err)
	}
}

// TestAppendRejectsHeartbeat: heartbeats are stream liveness frames;
// one in the durable log would poison replay.
func TestAppendRejectsHeartbeat(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //simrank:errok test cleanup on a SyncNone log
	if err := w.Append(Heartbeat(1)); err == nil {
		t.Fatal("Append accepted a heartbeat frame")
	}
}

// TestTruncatedThroughStat: Truncate records the highest dropped epoch
// — the replication streaming floor a follower must not fall below.
func TestTruncatedThroughStat(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Sync: SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //simrank:errok test cleanup on a SyncNone log
	for e := uint64(1); e <= 4; e++ {
		if err := w.Append(&Record{Epoch: e, Kind: KindRecompute}); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Stats().TruncatedThrough; got != 0 {
		t.Fatalf("TruncatedThrough %d before any truncate", got)
	}
	if err := w.Truncate(3); err != nil {
		t.Fatal(err)
	}
	// 1-byte segments: every record sealed its own segment, so records
	// 1..3 were dropped and the tail (4) kept.
	if got := w.Stats().TruncatedThrough; got != 3 {
		t.Fatalf("TruncatedThrough = %d after Truncate(3), want 3", got)
	}
}

package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

func pairs(row int, scores ...float64) []metrics.Pair {
	out := make([]metrics.Pair, len(scores))
	for i, s := range scores {
		out[i] = metrics.Pair{A: row, B: i + 100, Score: s}
	}
	return out
}

func TestRowHitMissAndPrefix(t *testing.T) {
	c := New(8)
	if _, ok := c.GetRow(3, 5, 0); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.PutRow(3, 5, pairs(3, .9, .8, .7, .6, .5), 0)

	got, ok := c.GetRow(3, 5, 0)
	if !ok || len(got) != 5 {
		t.Fatalf("GetRow(3,5) = %v, %v; want full hit", got, ok)
	}
	// Smaller k is a prefix of the same deterministic ordering.
	got, ok = c.GetRow(3, 2, 0)
	if !ok || len(got) != 2 || got[1].Score != .8 {
		t.Fatalf("GetRow(3,2) = %v, %v; want 2-prefix hit", got, ok)
	}
	// Larger k cannot be served by a non-exhaustive entry.
	if _, ok := c.GetRow(3, 6, 0); ok {
		t.Fatal("k=6 served from a k=5 entry with 5 pairs")
	}
	st := c.Stats()
	if st.RowHits != 2 || st.RowMisses != 2 {
		t.Fatalf("stats = %+v; want 2 hits, 2 misses", st)
	}
}

func TestExhaustedEntryServesAnyK(t *testing.T) {
	c := New(8)
	// 3 pairs for a k=10 request: the row has only 3 non-zero candidates.
	c.PutRow(1, 10, pairs(1, .3, .2, .1), 0)
	got, ok := c.GetRow(1, 1000, 0)
	if !ok || len(got) != 3 {
		t.Fatalf("exhausted entry did not serve larger k: %v, %v", got, ok)
	}
}

func TestHitReturnsACopy(t *testing.T) {
	c := New(4)
	c.PutRow(0, 2, pairs(0, .5, .4), 0)
	got, _ := c.GetRow(0, 2, 0)
	got[0].Score = -1
	again, _ := c.GetRow(0, 2, 0)
	if again[0].Score != .5 {
		t.Fatal("mutating a returned slice corrupted the cached entry")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.PutRow(0, 1, pairs(0, .1), 0)
	c.PutRow(1, 1, pairs(1, .1), 0)
	c.GetRow(0, 1, 0) // touch 0 so 1 is the LRU victim
	c.PutRow(2, 1, pairs(2, .1), 0)
	if _, ok := c.GetRow(1, 1, 0); ok {
		t.Fatal("LRU row 1 survived eviction")
	}
	if _, ok := c.GetRow(0, 1, 0); !ok {
		t.Fatal("recently-used row 0 was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Rows != 2 {
		t.Fatalf("stats = %+v; want 1 eviction, 2 rows", st)
	}
}

func TestInvalidateRowsIsSurgical(t *testing.T) {
	c := New(8)
	for r := 0; r < 4; r++ {
		c.PutRow(r, 1, pairs(r, .1), 0)
	}
	c.PutGlobal(3, pairs(99, .9, .8, .7), 0)
	c.InvalidateRows([]int{1, 3, 7}, 1) // 7 is not cached: a no-op

	for _, tc := range []struct {
		row  int
		want bool
	}{{0, true}, {1, false}, {2, true}, {3, false}} {
		if _, ok := c.GetRow(tc.row, 1, 1); ok != tc.want {
			t.Fatalf("after invalidation row %d cached=%v, want %v", tc.row, ok, tc.want)
		}
	}
	if _, ok := c.GetGlobal(3, 1); ok {
		t.Fatal("global survived a non-empty dirty set")
	}
	if st := c.Stats(); st.InvalidatedRows != 2 {
		t.Fatalf("InvalidatedRows = %d, want 2", st.InvalidatedRows)
	}

	// An empty dirty set keeps everything (no similarity bits changed).
	c.PutGlobal(1, pairs(99, .9), 1)
	c.InvalidateRows(nil, 2)
	if _, ok := c.GetGlobal(1, 2); !ok {
		t.Fatal("empty dirty set dropped the global entry")
	}
}

func TestFlushDropsEverything(t *testing.T) {
	c := New(8)
	c.PutRow(0, 1, pairs(0, .1), 0)
	c.PutGlobal(1, pairs(9, .9), 0)
	c.Flush(1)
	if _, ok := c.GetRow(0, 1, 1); ok {
		t.Fatal("row survived Flush")
	}
	if _, ok := c.GetGlobal(1, 1); ok {
		t.Fatal("global survived Flush")
	}
	if st := c.Stats(); st.Flushes != 1 || st.Rows != 0 {
		t.Fatalf("stats = %+v; want 1 flush, 0 rows", st)
	}
}

func TestGlobalReplaceAndUpgrade(t *testing.T) {
	c := New(2)
	c.PutGlobal(2, pairs(9, .9, .8), 0)
	if _, ok := c.GetGlobal(5, 0); ok {
		t.Fatal("k=5 served from full k=2 global entry")
	}
	c.PutGlobal(5, pairs(9, .9, .8, .7, .6, .5), 0)
	got, ok := c.GetGlobal(2, 0)
	if !ok || len(got) != 2 {
		t.Fatalf("upgraded global entry does not serve k=2: %v, %v", got, ok)
	}
}

// The MVCC contract: entries answer a reader exactly when the row
// provably did not change between the entry's epoch and the reader's.
func TestEpochValidity(t *testing.T) {
	c := New(8)

	// Entry computed at epoch 2; row 0 never dirtied.
	c.PutRow(0, 1, pairs(0, .5), 2)
	// A reader on an older view may still use it: row unchanged.
	if _, ok := c.GetRow(0, 1, 1); !ok {
		t.Fatal("unchanged row not served to an older-epoch reader")
	}
	// Row dirtied at epoch 5: the entry is dead for everyone.
	c.InvalidateRows([]int{0}, 5)
	if _, ok := c.GetRow(0, 1, 9); ok {
		t.Fatal("dirty row served from a pre-dirty entry")
	}

	// A stale in-flight Put (computed on the epoch-2 view, landing after
	// the epoch-5 publish) must be rejected...
	c.PutRow(0, 1, pairs(0, .4), 2)
	if _, ok := c.GetRow(0, 1, 9); ok {
		t.Fatal("stale post-invalidation Put was admitted")
	}
	// ...while a fresh Put at epoch 5+ serves epoch-5+ readers.
	c.PutRow(0, 1, pairs(0, .7), 5)
	if _, ok := c.GetRow(0, 1, 5); !ok {
		t.Fatal("fresh entry not served at its own epoch")
	}
	if _, ok := c.GetRow(0, 1, 7); !ok {
		t.Fatal("fresh entry not served at a later epoch")
	}
	// An epoch-4 reader predates the change: its view's row differs from
	// the entry's, so it must rescan.
	if _, ok := c.GetRow(0, 1, 4); ok {
		t.Fatal("pre-change reader served a post-change entry")
	}

	// A Put must never downgrade a newer resident entry.
	c.PutRow(0, 1, pairs(0, .1), 3)
	got, ok := c.GetRow(0, 1, 6)
	if !ok || got[0].Score != .7 {
		t.Fatalf("older Put displaced newer entry: %v %v", got, ok)
	}

	// Global follows the same arithmetic.
	c.PutGlobal(1, pairs(9, .9), 5)
	if _, ok := c.GetGlobal(1, 4); ok {
		t.Fatal("pre-change reader served post-change global")
	}
	if _, ok := c.GetGlobal(1, 6); !ok {
		t.Fatal("fresh global not served")
	}
}

// Flush fences off everything computed before it, at every epoch.
func TestFlushFloor(t *testing.T) {
	c := New(8)
	c.Flush(10)
	c.PutRow(0, 1, pairs(0, .5), 9) // stale in-flight Put from before
	if _, ok := c.GetRow(0, 1, 12); ok {
		t.Fatal("pre-flush Put admitted")
	}
	c.PutRow(0, 1, pairs(0, .6), 10)
	if _, ok := c.GetRow(0, 1, 12); !ok {
		t.Fatal("post-flush entry rejected")
	}
	if _, ok := c.GetRow(0, 1, 9); ok {
		t.Fatal("pre-flush reader served a post-flush entry")
	}
}

// Concurrent readers filling and touching entries while a writer
// invalidates must be race-free (run under -race in CI).
func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var epoch atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				at := epoch.Load()
				row := (seed + i) % 32
				if _, ok := c.GetRow(row, 3, at); !ok {
					c.PutRow(row, 3, pairs(row, .3, .2, .1), at)
				}
				if _, ok := c.GetGlobal(3, at); !ok {
					c.PutGlobal(3, pairs(99, .3, .2, .1), at)
				}
			}
		}(w * 7)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			at := epoch.Add(1)
			c.InvalidateRows([]int{i % 32, (i + 5) % 32}, at)
			if i%100 == 0 {
				c.Flush(at)
			}
		}
	}()
	wg.Wait()
	st := c.Stats()
	if st.RowHits+st.RowMisses == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestNewClampsCapacity(t *testing.T) {
	c := New(0)
	c.PutRow(0, 1, pairs(0, .1), 0)
	c.PutRow(1, 1, pairs(1, .1), 0)
	if st := c.Stats(); st.Rows != 1 {
		t.Fatalf("capacity clamp failed: %d rows cached", st.Rows)
	}
}

func ExampleTopK() {
	c := New(1024)
	c.PutRow(7, 2, []metrics.Pair{{A: 7, B: 3, Score: 0.41}, {A: 7, B: 9, Score: 0.12}}, 0)
	top, _ := c.GetRow(7, 1, 0)
	fmt.Println(top[0].B)
	// Output: 3
}

package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func pairs(row int, scores ...float64) []metrics.Pair {
	out := make([]metrics.Pair, len(scores))
	for i, s := range scores {
		out[i] = metrics.Pair{A: row, B: i + 100, Score: s}
	}
	return out
}

func TestRowHitMissAndPrefix(t *testing.T) {
	c := New(8)
	if _, ok := c.GetRow(3, 5); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.PutRow(3, 5, pairs(3, .9, .8, .7, .6, .5))

	got, ok := c.GetRow(3, 5)
	if !ok || len(got) != 5 {
		t.Fatalf("GetRow(3,5) = %v, %v; want full hit", got, ok)
	}
	// Smaller k is a prefix of the same deterministic ordering.
	got, ok = c.GetRow(3, 2)
	if !ok || len(got) != 2 || got[1].Score != .8 {
		t.Fatalf("GetRow(3,2) = %v, %v; want 2-prefix hit", got, ok)
	}
	// Larger k cannot be served by a non-exhaustive entry.
	if _, ok := c.GetRow(3, 6); ok {
		t.Fatal("k=6 served from a k=5 entry with 5 pairs")
	}
	st := c.Stats()
	if st.RowHits != 2 || st.RowMisses != 2 {
		t.Fatalf("stats = %+v; want 2 hits, 2 misses", st)
	}
}

func TestExhaustedEntryServesAnyK(t *testing.T) {
	c := New(8)
	// 3 pairs for a k=10 request: the row has only 3 non-zero candidates.
	c.PutRow(1, 10, pairs(1, .3, .2, .1))
	got, ok := c.GetRow(1, 1000)
	if !ok || len(got) != 3 {
		t.Fatalf("exhausted entry did not serve larger k: %v, %v", got, ok)
	}
}

func TestHitReturnsACopy(t *testing.T) {
	c := New(4)
	c.PutRow(0, 2, pairs(0, .5, .4))
	got, _ := c.GetRow(0, 2)
	got[0].Score = -1
	again, _ := c.GetRow(0, 2)
	if again[0].Score != .5 {
		t.Fatal("mutating a returned slice corrupted the cached entry")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.PutRow(0, 1, pairs(0, .1))
	c.PutRow(1, 1, pairs(1, .1))
	c.GetRow(0, 1) // touch 0 so 1 is the LRU victim
	c.PutRow(2, 1, pairs(2, .1))
	if _, ok := c.GetRow(1, 1); ok {
		t.Fatal("LRU row 1 survived eviction")
	}
	if _, ok := c.GetRow(0, 1); !ok {
		t.Fatal("recently-used row 0 was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Rows != 2 {
		t.Fatalf("stats = %+v; want 1 eviction, 2 rows", st)
	}
}

func TestInvalidateRowsIsSurgical(t *testing.T) {
	c := New(8)
	for r := 0; r < 4; r++ {
		c.PutRow(r, 1, pairs(r, .1))
	}
	c.PutGlobal(3, pairs(99, .9, .8, .7))
	c.InvalidateRows([]int{1, 3, 7}) // 7 is not cached: a no-op

	for _, tc := range []struct {
		row  int
		want bool
	}{{0, true}, {1, false}, {2, true}, {3, false}} {
		if _, ok := c.GetRow(tc.row, 1); ok != tc.want {
			t.Fatalf("after invalidation row %d cached=%v, want %v", tc.row, ok, tc.want)
		}
	}
	if _, ok := c.GetGlobal(3); ok {
		t.Fatal("global survived a non-empty dirty set")
	}
	if st := c.Stats(); st.InvalidatedRows != 2 {
		t.Fatalf("InvalidatedRows = %d, want 2", st.InvalidatedRows)
	}

	// An empty dirty set keeps everything (no similarity bits changed).
	c.PutGlobal(1, pairs(99, .9))
	c.InvalidateRows(nil)
	if _, ok := c.GetGlobal(1); !ok {
		t.Fatal("empty dirty set dropped the global entry")
	}
}

func TestFlushDropsEverything(t *testing.T) {
	c := New(8)
	c.PutRow(0, 1, pairs(0, .1))
	c.PutGlobal(1, pairs(9, .9))
	c.Flush()
	if _, ok := c.GetRow(0, 1); ok {
		t.Fatal("row survived Flush")
	}
	if _, ok := c.GetGlobal(1); ok {
		t.Fatal("global survived Flush")
	}
	if st := c.Stats(); st.Flushes != 1 || st.Rows != 0 {
		t.Fatalf("stats = %+v; want 1 flush, 0 rows", st)
	}
}

func TestGlobalReplaceAndUpgrade(t *testing.T) {
	c := New(2)
	c.PutGlobal(2, pairs(9, .9, .8))
	if _, ok := c.GetGlobal(5); ok {
		t.Fatal("k=5 served from full k=2 global entry")
	}
	c.PutGlobal(5, pairs(9, .9, .8, .7, .6, .5))
	got, ok := c.GetGlobal(2)
	if !ok || len(got) != 2 {
		t.Fatalf("upgraded global entry does not serve k=2: %v, %v", got, ok)
	}
}

// Concurrent readers filling and touching entries while a writer
// invalidates must be race-free (run under -race in CI).
func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				row := (seed + i) % 32
				if _, ok := c.GetRow(row, 3); !ok {
					c.PutRow(row, 3, pairs(row, .3, .2, .1))
				}
				if _, ok := c.GetGlobal(3); !ok {
					c.PutGlobal(3, pairs(99, .3, .2, .1))
				}
			}
		}(w * 7)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.InvalidateRows([]int{i % 32, (i + 5) % 32})
			if i%100 == 0 {
				c.Flush()
			}
		}
	}()
	wg.Wait()
	st := c.Stats()
	if st.RowHits+st.RowMisses == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestNewClampsCapacity(t *testing.T) {
	c := New(0)
	c.PutRow(0, 1, pairs(0, .1))
	c.PutRow(1, 1, pairs(1, .1))
	if st := c.Stats(); st.Rows != 1 {
		t.Fatalf("capacity clamp failed: %d rows cached", st.Rows)
	}
}

func ExampleTopK() {
	c := New(1024)
	c.PutRow(7, 2, []metrics.Pair{{A: 7, B: 3, Score: 0.41}, {A: 7, B: 9, Score: 0.12}})
	top, _ := c.GetRow(7, 1)
	fmt.Println(top[0].B)
	// Output: 3
}

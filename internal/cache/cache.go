// Package cache implements the read-path query cache of the engine: a
// bounded, LRU-evicted cache of per-row top-k results plus one cached
// global top-k, invalidated by the incremental core's dirty-row signal
// (core.Stats.DirtyRows — the rows Inc-SR's "affected area" actually
// wrote) instead of being flushed on every write. On a read-heavy
// workload this turns the O(n) row scan of TopKFor — and the O(n²) pair
// scan of TopK — into a map lookup for every row no recent update
// touched.
//
// Correctness contract: callers must invalidate while holding whatever
// lock serializes writes to the similarity matrix (the engine does so
// inside its write lock), so a reader can never observe a cached result
// that predates a committed write. The cache itself carries a mutex only
// to serialize concurrent readers filling or touching entries under a
// shared read lock.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
)

// globalRow keys the cached global top-k; real rows are ≥ 0.
const globalRow = -1

// entry is one cached result: the pairs computed for row (or the global
// scan) at request size k. When len(pairs) < k the scan was exhaustive —
// every non-zero candidate is present — so the entry can serve any
// request size.
type entry struct {
	row   int
	k     int
	pairs []metrics.Pair
}

// Stats are the cache's monotonic counters (plus the current size).
// Misses count actual similarity scans: a warm cache serving a row does
// zero row scans exactly when RowMisses stops advancing.
type Stats struct {
	RowHits, RowMisses       int64
	GlobalHits, GlobalMisses int64
	// InvalidatedRows counts row entries dropped by dirty-row
	// invalidation; Flushes counts wholesale resets (recompute, node
	// growth, snapshot restore); Evictions counts LRU capacity drops.
	InvalidatedRows int64
	Flushes         int64
	Evictions       int64
	// Rows is the number of per-row entries currently cached.
	Rows int
}

// TopK is the cache. Create with New; the zero value is not usable.
type TopK struct {
	mu      sync.Mutex
	maxRows int
	rows    map[int]*list.Element // row id → element holding *entry
	lru     *list.List            // front = most recently used
	global  *entry                // nil when not cached
	stats   Stats
}

// New builds a cache retaining up to maxRows per-row results (plus the
// one global result, which does not count toward the bound). maxRows
// must be positive.
func New(maxRows int) *TopK {
	if maxRows < 1 {
		maxRows = 1
	}
	return &TopK{
		maxRows: maxRows,
		rows:    make(map[int]*list.Element, maxRows),
		lru:     list.New(),
	}
}

// servable reports whether an entry computed at size e.k answers a
// request for k pairs: either the request is no larger, or the stored
// scan was exhaustive.
func servable(e *entry, k int) bool {
	return k <= e.k || len(e.pairs) < e.k
}

// take returns a defensive copy of the first min(k, len(pairs)) cached
// pairs — callers own their result slices and must not be able to
// corrupt the cache by mutating them.
func take(e *entry, k int) []metrics.Pair {
	if k > len(e.pairs) {
		k = len(e.pairs)
	}
	out := make([]metrics.Pair, k)
	copy(out, e.pairs[:k])
	return out
}

// GetRow returns the cached top-k of row, if a servable entry exists,
// touching it in the LRU order. The returned slice is the caller's own.
func (c *TopK) GetRow(row, k int) ([]metrics.Pair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.rows[row]
	if ok {
		if e := el.Value.(*entry); servable(e, k) {
			c.lru.MoveToFront(el)
			c.stats.RowHits++
			return take(e, k), true
		}
	}
	c.stats.RowMisses++
	return nil, false
}

// PutRow stores the result of a fresh row scan at request size k, taking
// ownership of pairs. An existing entry for the row is replaced; the
// least recently used row is evicted past the capacity bound.
func (c *TopK) PutRow(row, k int, pairs []metrics.Pair) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.rows[row]; ok {
		e := el.Value.(*entry)
		e.k, e.pairs = k, pairs
		c.lru.MoveToFront(el)
		return
	}
	c.rows[row] = c.lru.PushFront(&entry{row: row, k: k, pairs: pairs})
	if c.lru.Len() > c.maxRows {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.rows, oldest.Value.(*entry).row)
		c.stats.Evictions++
	}
}

// GetGlobal returns the cached global top-k, if servable.
func (c *TopK) GetGlobal(k int) ([]metrics.Pair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.global != nil && servable(c.global, k) {
		c.stats.GlobalHits++
		return take(c.global, k), true
	}
	c.stats.GlobalMisses++
	return nil, false
}

// PutGlobal stores the result of a fresh global scan at request size k,
// taking ownership of pairs.
func (c *TopK) PutGlobal(k int, pairs []metrics.Pair) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.global = &entry{row: globalRow, k: k, pairs: pairs}
}

// InvalidateRows drops the entries for exactly the given rows (the
// update's dirty set) and, when any row is dirty, the global result —
// any changed row can reorder the global ranking. Rows without a cached
// entry are no-ops, and an empty dirty set (an update whose every delta
// pruned to zero) keeps the whole cache.
func (c *TopK) InvalidateRows(rows []int) {
	if len(rows) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.global = nil
	for _, row := range rows {
		if el, ok := c.rows[row]; ok {
			c.lru.Remove(el)
			delete(c.rows, row)
			c.stats.InvalidatedRows++
		}
	}
}

// Flush drops everything: the wholesale invalidation for recompute, node
// growth, and snapshot restore, where every row may have moved.
func (c *TopK) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.global = nil
	clear(c.rows)
	c.lru.Init()
	c.stats.Flushes++
}

// Stats returns a point-in-time copy of the counters.
func (c *TopK) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Rows = len(c.rows)
	return st
}

// Package cache implements the read-path query cache of the engine: a
// bounded, LRU-evicted cache of per-row top-k results plus one cached
// global top-k, invalidated by the incremental core's dirty-row signal
// (core.Stats.DirtyRows — the rows Inc-SR's "affected area" actually
// wrote) instead of being flushed on every write. On a read-heavy
// workload this turns the O(n) row scan of TopKFor — and the O(n²) pair
// scan of TopK — into a map lookup for every row no recent update
// touched.
//
// # Epoch stamping
//
// The cache is shared by every MVCC read view of one engine, so
// correctness cannot rest on "invalidate while readers are excluded" —
// readers are never excluded. Instead every entry is stamped with the
// epoch of the view it was computed against, and the writer records, per
// row, the epoch of the publish that last changed that row (plus a
// wholesale floor for recompute/growth). An entry answers a reader at
// epoch E exactly when the row provably did not change between the
// entry's epoch and E — i.e. both are at or after the row's last dirty
// epoch — which makes served results bit-identical to a fresh scan of
// that reader's own view. Invalidation is just the writer stamping new
// dirty epochs at publish time: no reader is ever blocked, and a stale
// in-flight Put (a reader on an old view finishing its scan after a
// newer publish) is rejected by the same epoch arithmetic.
//
// The single-threaded engine uses the identical arithmetic with its own
// monotone mutation counter, so the two code paths cannot drift.
//
// The cache carries a mutex only to serialize its internal map/LRU
// bookkeeping; critical sections are O(1) per query and never span a
// row scan or any writer work.
package cache

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
)

// entry is one cached result: the pairs computed for row (or the global
// scan) at request size k, against the view at the given epoch. When
// len(pairs) < k the scan was exhaustive — every non-zero candidate is
// present — so the entry can serve any request size.
type entry struct {
	row   int
	k     int
	epoch uint64
	pairs []metrics.Pair
}

// Stats are the cache's monotonic counters (plus the current size).
// Misses count actual similarity scans: a warm cache serving a row does
// zero row scans exactly when RowMisses stops advancing.
type Stats struct {
	RowHits, RowMisses       int64
	GlobalHits, GlobalMisses int64
	// InvalidatedRows counts row entries dropped by dirty-row
	// invalidation; Flushes counts wholesale resets (recompute, node
	// growth, snapshot restore); Evictions counts LRU capacity drops.
	InvalidatedRows int64
	Flushes         int64
	Evictions       int64
	// Rows is the number of per-row entries currently cached.
	Rows int
}

// TopK is the cache. Create with New; the zero value is not usable.
type TopK struct {
	mu      sync.Mutex
	maxRows int
	rows    map[int]*list.Element // row id → element holding *entry
	lru     *list.List            // front = most recently used
	global  *entry                // nil when not cached

	// rowDirty[r] is the epoch of the publish that last changed row r
	// (0 = never), grown on demand; floor is the wholesale-invalidation
	// epoch (recompute, node growth); globalDirty invalidates the global
	// top-k, which any changed row can reorder.
	rowDirty    []uint64
	floor       uint64
	globalDirty uint64

	stats Stats
}

// New builds a cache retaining up to maxRows per-row results (plus the
// one global result, which does not count toward the bound). maxRows
// must be positive.
func New(maxRows int) *TopK {
	if maxRows < 1 {
		maxRows = 1
	}
	return &TopK{
		maxRows: maxRows,
		rows:    make(map[int]*list.Element, maxRows),
		lru:     list.New(),
	}
}

// ReserveRows pre-sizes the dirty-epoch ledger for rows [0, n), so the
// write path's InvalidateRows never has to grow it (keeping a warm
// update allocation-free). Growth still happens on demand for rows past
// the reservation (node growth).
func (c *TopK) ReserveRows(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.growRows(n)
}

func (c *TopK) growRows(n int) {
	if n <= len(c.rowDirty) {
		return
	}
	if n < 2*len(c.rowDirty) {
		n = 2 * len(c.rowDirty)
	}
	next := make([]uint64, n)
	copy(next, c.rowDirty)
	c.rowDirty = next
}

// rowFloor returns the earliest epoch an entry for row may carry and
// still be servable.
func (c *TopK) rowFloor(row int) uint64 {
	f := c.floor
	if row < len(c.rowDirty) && c.rowDirty[row] > f {
		f = c.rowDirty[row]
	}
	return f
}

// valid reports whether an entry computed at epoch ep answers a reader
// at epoch at, given the earliest-valid floor: both must be at or after
// the last change, proving the underlying row bytes are identical.
func valid(ep, at, floor uint64) bool { return ep >= floor && at >= floor }

// servable reports whether an entry computed at size e.k answers a
// request for k pairs: either the request is no larger, or the stored
// scan was exhaustive.
func servable(e *entry, k int) bool {
	return k <= e.k || len(e.pairs) < e.k
}

// take returns a defensive copy of the first min(k, len(pairs)) cached
// pairs — callers own their result slices and must not be able to
// corrupt the cache by mutating them.
func take(e *entry, k int) []metrics.Pair {
	if k > len(e.pairs) {
		k = len(e.pairs)
	}
	out := make([]metrics.Pair, k)
	copy(out, e.pairs[:k])
	return out
}

// GetRow returns the cached top-k of row as seen at epoch at, if a
// servable entry valid for that epoch exists, touching it in the LRU
// order. The returned slice is the caller's own.
func (c *TopK) GetRow(row, k int, at uint64) ([]metrics.Pair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.rows[row]
	if ok {
		if e := el.Value.(*entry); servable(e, k) && valid(e.epoch, at, c.rowFloor(row)) {
			c.lru.MoveToFront(el)
			c.stats.RowHits++
			return take(e, k), true
		}
	}
	c.stats.RowMisses++
	return nil, false
}

// PutRow stores the result of a fresh row scan at request size k,
// computed against the view at epoch at, taking ownership of pairs.
// Puts that are already unservable (the row changed at a later epoch —
// a reader on an old view finishing after a publish) or older than the
// resident entry are dropped; otherwise an existing entry for the row
// is replaced, and the least recently used row is evicted past the
// capacity bound.
func (c *TopK) PutRow(row, k int, pairs []metrics.Pair, at uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if at < c.rowFloor(row) {
		return
	}
	if el, ok := c.rows[row]; ok {
		e := el.Value.(*entry)
		if at < e.epoch {
			return
		}
		e.k, e.pairs, e.epoch = k, pairs, at
		c.lru.MoveToFront(el)
		return
	}
	c.rows[row] = c.lru.PushFront(&entry{row: row, k: k, epoch: at, pairs: pairs})
	if c.lru.Len() > c.maxRows {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.rows, oldest.Value.(*entry).row)
		c.stats.Evictions++
	}
}

// GetGlobal returns the cached global top-k as seen at epoch at, if
// servable and valid for that epoch.
func (c *TopK) GetGlobal(k int, at uint64) ([]metrics.Pair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	floor := c.floor
	if c.globalDirty > floor {
		floor = c.globalDirty
	}
	if c.global != nil && servable(c.global, k) && valid(c.global.epoch, at, floor) {
		c.stats.GlobalHits++
		return take(c.global, k), true
	}
	c.stats.GlobalMisses++
	return nil, false
}

// PutGlobal stores the result of a fresh global scan at request size k,
// computed against the view at epoch at, taking ownership of pairs.
func (c *TopK) PutGlobal(k int, pairs []metrics.Pair, at uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if at < c.floor || at < c.globalDirty {
		return
	}
	if c.global != nil && at < c.global.epoch {
		return
	}
	c.global = &entry{row: -1, k: k, epoch: at, pairs: pairs}
}

// InvalidateRows records that the publish at epoch at changed exactly
// the given rows, dropping their entries (and the global result — any
// changed row can reorder the global ranking). Rows without a cached
// entry are no-ops, and an empty dirty set (an update whose every delta
// pruned to zero) keeps the whole cache. Readers are never excluded:
// a reader concurrently finishing a scan of an older view is fenced off
// by the epoch arithmetic, not by this call.
//
//simrank:noalloc
func (c *TopK) InvalidateRows(rows []int, at uint64) {
	if len(rows) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.global = nil
	if at > c.globalDirty {
		c.globalDirty = at
	}
	maxRow := 0
	for _, row := range rows {
		if row > maxRow {
			maxRow = row
		}
	}
	c.growRows(maxRow + 1)
	for _, row := range rows {
		if at > c.rowDirty[row] {
			c.rowDirty[row] = at
		}
		if el, ok := c.rows[row]; ok {
			c.lru.Remove(el)
			delete(c.rows, row)
			c.stats.InvalidatedRows++
		}
	}
}

// Flush drops everything as of epoch at: the wholesale invalidation for
// recompute, node growth, and snapshot restore, where every row may have
// moved.
func (c *TopK) Flush(at uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if at > c.floor {
		c.floor = at
	}
	c.global = nil
	clear(c.rows)
	c.lru.Init()
	c.stats.Flushes++
}

// Stats returns a point-in-time copy of the counters.
func (c *TopK) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Rows = len(c.rows)
	return st
}

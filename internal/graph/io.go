package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseEdgeList reads a whitespace-separated edge list ("from to" per
// line). Lines that are empty or start with '#' or '%' are skipped.
// Node ids must be non-negative integers; the graph is sized to the
// largest id seen plus one, or minNodes if larger.
func ParseEdgeList(r io.Reader, minNodes int) (*DiGraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges []Edge
	maxID := -1
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %q", lineno, line)
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad from-node %q: %w", lineno, fields[0], err)
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad to-node %q: %w", lineno, fields[1], err)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineno)
		}
		if from > maxID {
			maxID = from
		}
		if to > maxID {
			maxID = to
		}
		edges = append(edges, Edge{from, to})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	n := maxID + 1
	if n < minNodes {
		n = minNodes
	}
	return FromEdges(n, edges), nil
}

// WriteEdgeList writes g as a "from to" edge list, one edge per line, with
// a leading comment header.
func WriteEdgeList(w io.Writer, g *DiGraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.From, e.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseUpdates reads an update stream: lines of the form "+ from to" or
// "- from to". Comments and blank lines are skipped as in ParseEdgeList.
func ParseUpdates(r io.Reader) ([]Update, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var ups []Update
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want \"+|- from to\", got %q", lineno, line)
		}
		var ins bool
		switch fields[0] {
		case "+":
			ins = true
		case "-":
			ins = false
		default:
			return nil, fmt.Errorf("graph: line %d: bad op %q", lineno, fields[0])
		}
		from, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad from-node: %w", lineno, err)
		}
		to, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad to-node: %w", lineno, err)
		}
		ups = append(ups, Update{Edge: Edge{from, to}, Insert: ins})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning updates: %w", err)
	}
	return ups, nil
}

// WriteUpdates writes an update stream in the format read by ParseUpdates.
func WriteUpdates(w io.Writer, ups []Update) error {
	bw := bufio.NewWriter(w)
	for _, u := range ups {
		op := "-"
		if u.Insert {
			op = "+"
		}
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", op, u.Edge.From, u.Edge.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseEdgeList(t *testing.T) {
	in := `# comment
0 1
1 2

% another comment
2 0
`
	g, err := ParseEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(2, 0) {
		t.Fatal("missing edge 2→0")
	}
}

func TestParseEdgeListMinNodes(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("N=%d, want 10", g.N())
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 x\n", "-1 2\n"}
	for _, c := range cases {
		if _, err := ParseEdgeList(strings.NewReader(c), 0); err == nil {
			t.Fatalf("input %q: want error", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {3, 0}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip N=%d M=%d", g2.N(), g2.M())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.From, e.To) {
			t.Fatalf("lost edge %v", e)
		}
	}
}

func TestParseUpdates(t *testing.T) {
	in := "+ 0 1\n- 2 3\n# skip\n"
	ups, err := ParseUpdates(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("got %d updates", len(ups))
	}
	if !ups[0].Insert || ups[0].Edge != (Edge{0, 1}) {
		t.Fatalf("ups[0] = %v", ups[0])
	}
	if ups[1].Insert || ups[1].Edge != (Edge{2, 3}) {
		t.Fatalf("ups[1] = %v", ups[1])
	}
}

func TestParseUpdatesErrors(t *testing.T) {
	cases := []string{"* 0 1\n", "+ 0\n", "+ a 1\n", "+ 1 b\n"}
	for _, c := range cases {
		if _, err := ParseUpdates(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q: want error", c)
		}
	}
}

func TestUpdatesRoundTrip(t *testing.T) {
	ups := []Update{{Edge{0, 1}, true}, {Edge{5, 2}, false}}
	var buf bytes.Buffer
	if err := WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	got, err := ParseUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ups[0] || got[1] != ups[1] {
		t.Fatalf("round trip %v", got)
	}
}

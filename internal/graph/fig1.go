package graph

// Fig1 reconstructs the 15-node citation graph of the paper's Fig. 1
// (nodes a..o mapped to 0..14) together with the dashed edge (i, j) that
// Example 1 inserts.
//
// The paper's figure is not machine-readable, so the edge set below is a
// reconstruction constrained by everything the text states:
//   - n = 15, a fraction of DBLP, each edge a citation;
//   - in the old G, I(j) = {h, k} (Example 4: [Q]_{j,·} has 1/2 at h and k);
//   - inserting (i, j) changes the scores of pairs near the edge — here
//     (a,b), (a,d), (a,i), (a,j), (b,j), (d,j), (h,j), (i,j), (j,k) —
//     while leaving the far cluster untouched: s(i,f), s(k,g), s(k,h),
//     s(m,l) are the reconstruction's "gray rows";
//   - some affected pairs, here (a,i), (a,j), (h,j), (j,k), flip from
//     exactly zero to non-zero, mirroring the paper's (a,d)/(j,b) rows.
//
// The *qualitative* Fig-1 behaviour (which pairs change, which are pruned,
// Inc-SVD disagreeing with the true scores) is reproduced and asserted in
// tests; absolute values differ from the paper because the exact figure
// topology is unavailable.
const (
	FigA = iota
	FigB
	FigC
	FigD
	FigE
	FigF
	FigG
	FigH
	FigI
	FigJ
	FigK
	FigL
	FigM
	FigN
	FigO
)

// Fig1NodeName returns the letter label of a Fig. 1 node id.
func Fig1NodeName(v int) string {
	return string(rune('a' + v))
}

// Fig1Graph returns the reconstructed old graph G of Fig. 1 and the edge
// (i, j) whose insertion Example 1 studies.
func Fig1Graph() (g *DiGraph, inserted Edge) {
	g = New(15)
	edges := []Edge{
		// Cluster around f, i, j: papers h and k cite both i's and j's
		// area; I(j) = {h, k} as Example 4 requires.
		{FigH, FigJ}, {FigK, FigJ},
		{FigH, FigI}, {FigK, FigI},
		{FigF, FigI}, {FigE, FigI},
		{FigE, FigF}, {FigE, FigG},
		{FigG, FigK}, {FigG, FigH},
		// a, b are co-cited by c and d (s(a,b) > 0 in G).
		{FigC, FigA}, {FigC, FigB},
		{FigD, FigA}, {FigD, FigB},
		{FigB, FigD},
		// m, l co-cited by n, o — far from the inserted edge, so their
		// similarity must stay put (gray row (m,l)).
		{FigN, FigM}, {FigN, FigL},
		{FigO, FigM}, {FigO, FigL},
		{FigL, FigE},
		// j cites a (so the (i,j) insertion can reach the a/b cluster
		// and flip s(a,d), s(j,b) from 0 to non-zero).
		{FigJ, FigA}, {FigI, FigB},
	}
	for _, e := range edges {
		g.AddEdge(e.From, e.To)
	}
	return g, Edge{FigI, FigJ}
}

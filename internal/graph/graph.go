// Package graph implements the dynamic directed graph substrate: in/out
// adjacency with O(1) amortized edge insertion and deletion, snapshots,
// edge-list I/O, and the degree statistics that the paper's complexity
// analysis (average in-degree d) is stated in terms of.
//
// Nodes are dense integers 0..n-1. An edge (i, j) is directed from i to j,
// matching the paper: "each edge depicts a reference from one paper to
// another", and the backward transition matrix Q has
// [Q]_{j,i} = 1/|I(j)| iff (i, j) ∈ E.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// Edge is a directed edge from From to To.
type Edge struct {
	From, To int
}

// DiGraph is a mutable directed graph over nodes 0..N-1. Both out- and
// in-adjacency are maintained so O(a) and I(a) lookups are O(1).
type DiGraph struct {
	n   int
	out []map[int]struct{}
	in  []map[int]struct{}
	m   int // number of edges

	// outShared is the copy-on-write ledger behind Seal, nil until the
	// first Seal (a never-sealed graph mutates fully in place).
	// outShared[i] means row i's out-map is referenced by at least one
	// sealed Snapshot, so a mutation of that row clones the map first.
	// Only the out-adjacency is sealed: snapshots serve HasEdge and
	// Edges, both out-side; the in-adjacency stays writer-private.
	outShared []bool
}

// Snapshot is an immutable point-in-time view of a graph's topology,
// produced by Seal: any number of goroutines may query it while the
// writer keeps mutating the original. It carries exactly the read
// surface the MVCC view needs — size, edge membership and edge
// enumeration (for snapshot serialization).
type Snapshot struct {
	n, m int
	out  []map[int]struct{}
}

// Seal returns an immutable snapshot sharing the current out-adjacency:
// O(n) pointer copies, no per-edge work. Subsequent writer mutations
// clone each touched row before changing it, so the snapshot never
// observes them.
func (g *DiGraph) Seal() *Snapshot {
	if len(g.outShared) != g.n {
		g.outShared = make([]bool, g.n)
	}
	for i := range g.outShared {
		g.outShared[i] = true
	}
	return &Snapshot{n: g.n, m: g.m, out: append([]map[int]struct{}(nil), g.out...)}
}

// ownOut makes row i's out-map exclusively the writer's, cloning it if a
// sealed snapshot still references it. Called before every row mutation;
// free (one nil check) on graphs never sealed.
func (g *DiGraph) ownOut(i int) {
	if g.outShared == nil || i >= len(g.outShared) || !g.outShared[i] {
		return
	}
	dup := make(map[int]struct{}, len(g.out[i])+1)
	for j := range g.out[i] {
		dup[j] = struct{}{}
	}
	g.out[i] = dup
	g.outShared[i] = false
}

// N returns the number of nodes.
func (s *Snapshot) N() int { return s.n }

// M returns the number of edges.
func (s *Snapshot) M() int { return s.m }

// HasEdge reports whether edge (i, j) exists; out-of-range nodes have no
// edges (snapshots never panic — they serve the lock-free query path).
func (s *Snapshot) HasEdge(i, j int) bool {
	if i < 0 || i >= s.n || j < 0 || j >= s.n {
		return false
	}
	_, ok := s.out[i][j]
	return ok
}

// Edges returns all edges sorted by (From, To) — the same enumeration
// DiGraph.Edges produces, from the sealed topology.
func (s *Snapshot) Edges() []Edge { return sortedEdges(s.n, s.m, s.out) }

// New returns an empty directed graph with n nodes.
func New(n int) *DiGraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	g := &DiGraph{
		n:   n,
		out: make([]map[int]struct{}, n),
		in:  make([]map[int]struct{}, n),
	}
	for i := 0; i < n; i++ {
		g.out[i] = make(map[int]struct{})
		g.in[i] = make(map[int]struct{})
	}
	return g
}

// FromEdges builds a graph with n nodes and the given edges. Duplicate
// edges are collapsed.
func FromEdges(n int, edges []Edge) *DiGraph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e.From, e.To)
	}
	return g
}

// N returns the number of nodes.
func (g *DiGraph) N() int { return g.n }

// AddNodes appends k isolated nodes, returning the id of the first new
// node. Existing ids are unchanged.
func (g *DiGraph) AddNodes(k int) int {
	if k < 0 {
		panic(fmt.Sprintf("graph: negative node increment %d", k))
	}
	first := g.n
	for i := 0; i < k; i++ {
		g.out = append(g.out, make(map[int]struct{}))
		g.in = append(g.in, make(map[int]struct{}))
	}
	g.n += k
	return first
}

// M returns the number of edges.
func (g *DiGraph) M() int { return g.m }

func (g *DiGraph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.n))
	}
}

// HasEdge reports whether edge (i, j) exists.
func (g *DiGraph) HasEdge(i, j int) bool {
	g.check(i)
	g.check(j)
	_, ok := g.out[i][j]
	return ok
}

// AddEdge inserts edge (i, j). It reports whether the edge was newly added
// (false if it already existed). Self-loops are allowed, matching the
// generality of the transition-matrix formulation.
func (g *DiGraph) AddEdge(i, j int) bool {
	g.check(i)
	g.check(j)
	if _, ok := g.out[i][j]; ok {
		return false
	}
	g.ownOut(i)
	g.out[i][j] = struct{}{}
	g.in[j][i] = struct{}{}
	g.m++
	return true
}

// RemoveEdge deletes edge (i, j). It reports whether the edge existed.
func (g *DiGraph) RemoveEdge(i, j int) bool {
	g.check(i)
	g.check(j)
	if _, ok := g.out[i][j]; !ok {
		return false
	}
	g.ownOut(i)
	delete(g.out[i], j)
	delete(g.in[j], i)
	g.m--
	return true
}

// InDegree returns |I(v)|, the number of in-neighbors of v.
func (g *DiGraph) InDegree(v int) int {
	g.check(v)
	return len(g.in[v])
}

// OutDegree returns |O(v)|.
func (g *DiGraph) OutDegree(v int) int {
	g.check(v)
	return len(g.out[v])
}

// InNeighbors returns I(v) in ascending order.
func (g *DiGraph) InNeighbors(v int) []int {
	g.check(v)
	return sortedKeys(g.in[v])
}

// OutNeighbors returns O(v) in ascending order.
func (g *DiGraph) OutNeighbors(v int) []int {
	g.check(v)
	return sortedKeys(g.out[v])
}

// EachInNeighbor calls fn for every in-neighbor of v (unordered).
func (g *DiGraph) EachInNeighbor(v int, fn func(u int)) {
	g.check(v)
	//simrank:orderinvariant contract: callers fold commutatively (unordered by doc; audited in rankone.go, stats.go)
	for u := range g.in[v] {
		fn(u)
	}
}

// EachOutNeighbor calls fn for every out-neighbor of v (unordered).
func (g *DiGraph) EachOutNeighbor(v int, fn func(u int)) {
	g.check(v)
	//simrank:orderinvariant contract: callers fold commutatively (unordered by doc; audited in rankone.go, stats.go)
	for u := range g.out[v] {
		fn(u)
	}
}

func sortedKeys(s map[int]struct{}) []int {
	out := make([]int, 0, len(s))
	//simrank:orderinvariant collects keys only; sorted before return
	for v := range s {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges sorted by (From, To).
func (g *DiGraph) Edges() []Edge { return sortedEdges(g.n, g.m, g.out) }

// sortedEdges enumerates an out-adjacency into the canonical (From, To)
// order — shared by the live graph and sealed snapshots, so the
// snapshot file format sees one enumeration no matter which side
// serialized it.
func sortedEdges(n, m int, out []map[int]struct{}) []Edge {
	es := make([]Edge, 0, m)
	for i := 0; i < n; i++ {
		//simrank:orderinvariant collects edges only; canonically sorted below
		for j := range out[i] {
			es = append(es, Edge{i, j})
		}
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].From != es[b].From {
			return es[a].From < es[b].From
		}
		return es[a].To < es[b].To
	})
	return es
}

// Clone returns an independent deep copy of g.
func (g *DiGraph) Clone() *DiGraph {
	c := New(g.n)
	for i := 0; i < g.n; i++ {
		//simrank:orderinvariant set insertion; the resulting adjacency sets are order-free
		for j := range g.out[i] {
			c.AddEdge(i, j)
		}
	}
	return c
}

// AvgInDegree returns d, the average in-degree m/n (0 for the empty graph).
func (g *DiGraph) AvgInDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// BackwardTransition builds the backward transition matrix Q in CSR form:
// [Q]_{j,i} = 1/|I(j)| if (i, j) ∈ E, 0 otherwise — the row-normalized
// transpose of the adjacency matrix (footnote 2 of the paper).
func (g *DiGraph) BackwardTransition() *matrix.CSR {
	var is, js []int
	var vs []float64
	for j := 0; j < g.n; j++ {
		d := len(g.in[j])
		if d == 0 {
			continue
		}
		w := 1 / float64(d)
		//simrank:orderinvariant COO triples; NewCSR sorts by (i,j) before building
		for i := range g.in[j] {
			is = append(is, j)
			js = append(js, i)
			vs = append(vs, w)
		}
	}
	return matrix.NewCSR(g.n, g.n, is, js, vs)
}

// Adjacency builds the (unnormalized) adjacency matrix A with
// [A]_{i,j} = 1 iff (i, j) ∈ E.
func (g *DiGraph) Adjacency() *matrix.CSR {
	var is, js []int
	var vs []float64
	for i := 0; i < g.n; i++ {
		//simrank:orderinvariant COO triples; NewCSR sorts by (i,j) before building
		for j := range g.out[i] {
			is = append(is, i)
			js = append(js, j)
			vs = append(vs, 1)
		}
	}
	return matrix.NewCSR(g.n, g.n, is, js, vs)
}

// Apply performs one unit update and reports whether the graph changed.
func (g *DiGraph) Apply(u Update) bool {
	if u.Insert {
		return g.AddEdge(u.Edge.From, u.Edge.To)
	}
	return g.RemoveEdge(u.Edge.From, u.Edge.To)
}

// Update is a unit link update: a single edge insertion or deletion
// (Section V: "batch update ... can be decomposed into a sequence of unit
// updates").
type Update struct {
	Edge   Edge
	Insert bool // true = insertion, false = deletion
}

func (u Update) String() string {
	op := "-"
	if u.Insert {
		op = "+"
	}
	return fmt.Sprintf("%s(%d,%d)", op, u.Edge.From, u.Edge.To)
}

package graph

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
}

func TestAddRemoveEdge(t *testing.T) {
	g := New(3)
	if !g.AddEdge(0, 1) {
		t.Fatal("first add should succeed")
	}
	if g.AddEdge(0, 1) {
		t.Fatal("duplicate add should report false")
	}
	if g.M() != 1 || !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge state wrong after add")
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("remove should succeed")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("double remove should report false")
	}
	if g.M() != 0 {
		t.Fatalf("M=%d after remove", g.M())
	}
}

func TestSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(1, 1)
	if !g.HasEdge(1, 1) || g.InDegree(1) != 1 || g.OutDegree(1) != 1 {
		t.Fatal("self loop mishandled")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 2}, {1, 2}, {3, 2}, {2, 0}})
	if g.InDegree(2) != 3 || g.OutDegree(2) != 1 {
		t.Fatalf("deg in=%d out=%d", g.InDegree(2), g.OutDegree(2))
	}
	in := g.InNeighbors(2)
	if len(in) != 3 || in[0] != 0 || in[1] != 1 || in[2] != 3 {
		t.Fatalf("InNeighbors = %v", in)
	}
	out := g.OutNeighbors(2)
	if len(out) != 1 || out[0] != 0 {
		t.Fatalf("OutNeighbors = %v", out)
	}
}

func TestEachNeighbor(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 2}, {1, 2}})
	seen := map[int]bool{}
	g.EachInNeighbor(2, func(u int) { seen[u] = true })
	if !seen[0] || !seen[1] || len(seen) != 2 {
		t.Fatalf("EachInNeighbor saw %v", seen)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestEdgesSorted(t *testing.T) {
	g := FromEdges(3, []Edge{{2, 0}, {0, 1}, {0, 2}})
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {2, 0}}
	if len(es) != 3 {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges = %v", es)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}})
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) || g.M() != 1 {
		t.Fatal("Clone not independent")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("Clone lost edge")
	}
}

func TestBackwardTransitionRowStochastic(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 2}, {1, 2}, {3, 2}, {2, 3}})
	q := g.BackwardTransition()
	// Row 2 has I(2)={0,1,3}: three entries of 1/3.
	cols, vals := q.Row(2)
	if len(cols) != 3 {
		t.Fatalf("row 2 nnz = %d", len(cols))
	}
	var sum float64
	for _, v := range vals {
		if v != 1.0/3 {
			t.Fatalf("row 2 value %v", v)
		}
		sum += v
	}
	if sum != 1 {
		t.Fatalf("row 2 sum %v", sum)
	}
	// Row 0 has no in-neighbors → empty.
	cols, _ = q.Row(0)
	if len(cols) != 0 {
		t.Fatal("row 0 should be empty")
	}
	// [Q]_{j,i} nonzero iff (i,j) ∈ E.
	if q.At(3, 2) != 1 {
		t.Fatalf("Q[3][2] = %v, want 1", q.At(3, 2))
	}
}

func TestAdjacency(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	a := g.Adjacency()
	if a.At(0, 1) != 1 || a.At(1, 2) != 1 || a.At(1, 0) != 0 {
		t.Fatal("adjacency mismatch")
	}
}

func TestApplyUpdate(t *testing.T) {
	g := New(3)
	if !g.Apply(Update{Edge: Edge{0, 1}, Insert: true}) {
		t.Fatal("insert apply failed")
	}
	if !g.Apply(Update{Edge: Edge{0, 1}, Insert: false}) {
		t.Fatal("delete apply failed")
	}
	if g.M() != 0 {
		t.Fatal("graph should be empty")
	}
}

func TestUpdateString(t *testing.T) {
	if (Update{Edge{1, 2}, true}).String() != "+(1,2)" {
		t.Fatal("insert String")
	}
	if (Update{Edge{1, 2}, false}).String() != "-(1,2)" {
		t.Fatal("delete String")
	}
}

func TestSummarize(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 2}, {1, 2}, {3, 2}})
	st := Summarize(g)
	if st.Nodes != 4 || st.Edges != 3 || st.MaxInDeg != 3 || st.ZeroInDeg != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.AvgInDeg != 0.75 {
		t.Fatalf("AvgInDeg = %v", st.AvgInDeg)
	}
}

func TestInDegreeHistogram(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 2}, {1, 2}, {3, 2}})
	h := InDegreeHistogram(g)
	if h[0] != 3 || h[3] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestDiameter(t *testing.T) {
	// 0→1→2→3 chain: diameter 3.
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if d := Diameter(g); d != 3 {
		t.Fatalf("Diameter = %d, want 3", d)
	}
	if d := Diameter(New(3)); d != 0 {
		t.Fatalf("empty diameter = %d", d)
	}
}

func TestFig1Graph(t *testing.T) {
	g, ins := Fig1Graph()
	if g.N() != 15 {
		t.Fatalf("Fig1 n = %d", g.N())
	}
	if ins != (Edge{FigI, FigJ}) {
		t.Fatalf("inserted edge = %v", ins)
	}
	if g.HasEdge(FigI, FigJ) {
		t.Fatal("old G must not contain the dashed edge (i,j)")
	}
	// Example 4 requires I(j) = {h, k} in the old G.
	in := g.InNeighbors(FigJ)
	if len(in) != 2 || in[0] != FigH || in[1] != FigK {
		t.Fatalf("I(j) = %v, want [h k]", in)
	}
	if Fig1NodeName(FigA) != "a" || Fig1NodeName(FigO) != "o" {
		t.Fatal("node names wrong")
	}
}

// Property: after any random sequence of inserts/deletes, M() equals the
// size of the edge set, and in/out adjacency stay mirror images.
func TestQuickDynamicConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := New(n)
		ref := map[Edge]bool{}
		for step := 0; step < 60; step++ {
			e := Edge{rng.Intn(n), rng.Intn(n)}
			if rng.Intn(2) == 0 {
				g.AddEdge(e.From, e.To)
				ref[e] = true
			} else {
				g.RemoveEdge(e.From, e.To)
				delete(ref, e)
			}
		}
		if g.M() != len(ref) {
			return false
		}
		for e := range ref {
			if !g.HasEdge(e.From, e.To) {
				return false
			}
		}
		// In-adjacency must mirror out-adjacency.
		for v := 0; v < n; v++ {
			for _, u := range g.InNeighbors(v) {
				if !g.HasEdge(u, v) {
					return false
				}
			}
			for _, u := range g.OutNeighbors(v) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every row of Q sums to 1 for nodes with in-neighbors, 0 otherwise.
func TestQuickBackwardTransitionStochastic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		for k := 0; k < 3*n; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		q := g.BackwardTransition()
		for j := 0; j < n; j++ {
			_, vals := q.Row(j)
			var sum float64
			for _, v := range vals {
				sum += v
			}
			if g.InDegree(j) == 0 {
				if sum != 0 {
					return false
				}
			} else if sum < 1-1e-12 || sum > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Sealed snapshots must be frozen at seal time while the writer keeps
// mutating — including across AddNodes growth and repeated seals.
func TestSealSnapshotIsolation(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)

	s1 := g.Seal()
	if s1.N() != 5 || s1.M() != 3 || !s1.HasEdge(0, 1) || s1.HasEdge(1, 0) {
		t.Fatal("snapshot does not reflect seal-time state")
	}

	g.AddEdge(0, 2)
	g.RemoveEdge(0, 1)
	first := g.AddNodes(2)
	g.AddEdge(first, 0)

	if !s1.HasEdge(0, 1) || s1.HasEdge(0, 2) || s1.HasEdge(first, 0) || s1.N() != 5 || s1.M() != 3 {
		t.Fatal("snapshot observed post-seal mutations")
	}
	// Out-of-range queries on a snapshot answer false, never panic.
	if s1.HasEdge(-1, 0) || s1.HasEdge(0, 99) || s1.HasEdge(first, first) {
		t.Fatal("out-of-range snapshot HasEdge not false")
	}

	s2 := g.Seal()
	if s2.N() != 7 || s2.M() != 4 || !s2.HasEdge(first, 0) || s2.HasEdge(0, 1) {
		t.Fatal("second snapshot wrong")
	}
	// Edge enumeration matches the live graph's, sorted identically.
	want := g.Edges()
	got := s2.Edges()
	if len(got) != len(want) {
		t.Fatalf("snapshot Edges len %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("snapshot Edges[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// s1 still frozen after the second seal round.
	if !s1.HasEdge(0, 1) || s1.M() != 3 {
		t.Fatal("first snapshot corrupted by second seal cycle")
	}
}

// Concurrent snapshot readers against a live writer must be race-free
// (run under -race) and always see their sealed state.
func TestSealConcurrentReaders(t *testing.T) {
	g := New(32)
	for i := 0; i < 31; i++ {
		g.AddEdge(i, i+1)
	}
	snap := g.Seal()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if !snap.HasEdge(3, 4) || snap.HasEdge(4, 3) || snap.M() != 31 {
					t.Error("snapshot drifted under concurrent writes")
					return
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		g.RemoveEdge(i%31, i%31+1)
		g.AddEdge(i%31, i%31+1)
		if i%100 == 0 {
			g.Seal() // fresh seals must not disturb older snapshots either
		}
	}
	close(done)
	wg.Wait()
}

package graph

// Stats summarizes the degree structure of a graph. The paper's complexity
// bounds are stated in terms of n, m, and the average in-degree d.
type Stats struct {
	Nodes      int
	Edges      int
	AvgInDeg   float64
	MaxInDeg   int
	MaxOutDeg  int
	ZeroInDeg  int // nodes with no in-neighbors (s(·,·)=0 base case)
	ZeroOutDeg int
}

// Summarize computes degree statistics for g.
func Summarize(g *DiGraph) Stats {
	st := Stats{Nodes: g.N(), Edges: g.M(), AvgInDeg: g.AvgInDegree()}
	for v := 0; v < g.N(); v++ {
		in, out := g.InDegree(v), g.OutDegree(v)
		if in > st.MaxInDeg {
			st.MaxInDeg = in
		}
		if out > st.MaxOutDeg {
			st.MaxOutDeg = out
		}
		if in == 0 {
			st.ZeroInDeg++
		}
		if out == 0 {
			st.ZeroOutDeg++
		}
	}
	return st
}

// InDegreeHistogram returns a histogram h where h[d] counts nodes with
// in-degree d.
func InDegreeHistogram(g *DiGraph) map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		h[g.InDegree(v)]++
	}
	return h
}

// Diameter returns the length of the longest shortest path over the
// underlying (directed) graph, ignoring unreachable pairs, via BFS from
// every node. The paper uses the diameter to choose the exact-baseline
// iteration count K=35 (footnote 26). O(n(n+m)).
func Diameter(g *DiGraph) int {
	n := g.N()
	dist := make([]int, n)
	queue := make([]int, 0, n)
	diam := 0
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			g.EachOutNeighbor(v, func(u int) {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					if dist[u] > diam {
						diam = dist[u]
					}
					queue = append(queue, u)
				}
			})
		}
	}
	return diam
}

// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis driver surface, sized for this
// repository's invariant checkers (cmd/simranklint).
//
// The repo's correctness story rests on invariants the compiler cannot
// express — sealed MVCC views are immutable, the WAL append happens
// before the view publish, every similarity write-back reports its
// dirty rows, hot paths stay allocation-free, and all randomness
// derives from chained splitmix64 seeds. Each invariant is enforced by
// one analyzer under this package (sealedwrite, publishorder, noalloc,
// detrand, dirtyrows, fsyncerr); the conventions they key on are
// machine-readable //simrank:* directives documented per directive in
// annotations.go and summarized in the repository README.
//
// The API deliberately mirrors x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, analysistest-style golden tests) so the suite can migrate
// to the real framework wholesale if the dependency ever becomes
// available; the loader in load.go stands in for go/packages using
// `go list -json -deps` plus go/types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// simranklint command line.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Reportf and returns a hard error only when analysis itself
	// could not proceed (a hard error fails the whole run).
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet

	// Path is the import path the package was loaded as. Analyzers use
	// it to scope themselves (e.g. detrand's determinism-critical set).
	Path string

	// Files are the parsed source files, with comments.
	Files []*ast.File

	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info

	diagnostics []Diagnostic
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding against the position of node-or-pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to pkg and returns the combined
// diagnostics sorted by file position.
func Run(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diagnostics...)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

package analysis

import (
	"go/ast"
	"go/types"
)

// MethodCall decomposes call into (receiver expression, method name)
// when call is a method call through a selector, e.g. s.AddSym(...).
func MethodCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// NamedTypeName returns the name of t's named type, looking through
// pointers and aliases; "" when t has no name (slices, maps, funcs,
// anonymous structs, unnamed interfaces).
func NamedTypeName(t types.Type) string {
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// NamedTypePkgPath returns the import path of the package declaring
// t's named type, or "" for unnamed and universe types.
func NamedTypePkgPath(t types.Type) string {
	if n := namedOf(t); n != nil && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// CalleePkgPath returns the import path of the package a call's callee
// belongs to: "fmt" for fmt.Sprintf, the receiver's method package for
// method calls, "" for builtins, conversions and local closures.
func CalleePkgPath(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path()
			}
		}
		if obj := info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path()
		}
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil && obj.Pkg() != nil {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj.Pkg().Path()
			}
		}
	}
	return ""
}

// CallSignature returns the static signature of the called function,
// or nil for builtins and type conversions.
func CallSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// IsInterface reports whether t's underlying type is an interface.
func IsInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// PointerShaped reports whether boxing a value of type t into an
// interface stores the value directly in the data word — pointers,
// channels, maps, funcs and unsafe.Pointer never allocate when boxed.
func PointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// IsTestFile reports whether the file containing pos is a _test.go
// file (several analyzers allowlist tests by contract).
func IsTestFile(p *Pass, pos ast.Node) bool {
	name := p.Fset.Position(pos.Pos()).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// Package analysistest runs an analyzer over a fixture directory and
// compares its diagnostics against `// want "regexp"` comments embedded
// in the fixture sources — a standard-library-only reimplementation of
// the golang.org/x/tools analysistest idiom.
//
// Fixture directories live under testdata/ of each analyzer package, so
// the go tool never builds them and deliberate violations cannot break
// `go build ./...`. They are type-checked as an arbitrary package path
// (see Loader.LoadFixtureDir), which is how fixtures land inside the
// path scopes the production analyzers guard.
package analysistest

import (
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one `// want "re"` comment: a regexp that must match
// exactly one diagnostic on the same line of the same file.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// Run loads dir as though it were the package asPath, applies a, and
// fails t unless the diagnostics match the fixture's want comments
// exactly: every want regexp consumes one diagnostic on its line, and
// no diagnostic is left unclaimed.
func Run(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg := loadFixture(t, dir, asPath)
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkg)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	want := expectations(t, pkg)

	used := make([]bool, len(diags))
	for _, w := range want {
		matched := false
		for i, d := range diags {
			if used[i] {
				continue
			}
			pos := pkg.Fset.Position(d.Pos)
			if filepath.Base(pos.Filename) != w.file || pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !used[i] {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
}

// RunClean asserts a produces no diagnostics on dir loaded as asPath.
// It ignores want comments, so a violation fixture can double as an
// allowlist test under a different (non-critical) package path.
func RunClean(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg := loadFixture(t, dir, asPath)
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkg)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		t.Errorf("%s:%d: unexpected diagnostic: [%s] %s",
			filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
	}
}

func loadFixture(t *testing.T, dir, asPath string) *analysis.Package {
	t.Helper()
	l := analysis.NewLoader(moduleRoot(t))
	pkg, err := l.LoadFixtureDir(dir, asPath)
	if err != nil {
		t.Fatalf("load fixture %s as %s: %v", dir, asPath, err)
	}
	return pkg
}

// expectations collects every `// want "re"` comment in the fixture.
// Several regexps may follow one want: `// want "a" "b"`.
func expectations(t *testing.T, pkg *analysis.Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWant(t, pkg, c)...)
			}
		}
	}
	return out
}

func parseWant(t *testing.T, pkg *analysis.Package, c *ast.Comment) []expectation {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var out []expectation
	for rest != "" {
		if rest[0] != '"' {
			t.Fatalf("%s:%d: malformed want comment (expected quoted regexp): %s", pos.Filename, pos.Line, c.Text)
		}
		end := quotedEnd(rest)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated regexp in want comment: %s", pos.Filename, pos.Line, c.Text)
		}
		raw, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad quoted regexp %s: %v", pos.Filename, pos.Line, rest[:end+1], err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s:%d: bad regexp %q: %v", pos.Filename, pos.Line, raw, err)
		}
		out = append(out, expectation{
			file: filepath.Base(pos.Filename),
			line: pos.Line,
			re:   re,
			raw:  raw,
		})
		rest = strings.TrimSpace(rest[end+1:])
	}
	return out
}

// quotedEnd returns the index of the closing quote of the Go string
// literal starting at s[0] == '"', honoring backslash escapes.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// moduleRoot walks up from the test's working directory (the analyzer
// package dir) to the enclosing go.mod, which is where the loader must
// run `go list`.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

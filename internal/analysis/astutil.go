package analysis

import (
	"go/ast"
	"go/token"
)

// ParentMap records the direct parent of every node under root.
// Analyzers that reason about context (dominance, statement position)
// build one per function body.
func ParentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// unconditionalAnchor climbs from n to the outermost statement that is
// guaranteed to execute n when the statement itself executes, and
// returns that statement's enclosing block and index. ok is false when
// n's execution is conditional all the way up (guarded by a branch,
// loop body, case clause, short-circuit operand, defer/go, or a nested
// function literal).
func unconditionalAnchor(parents map[ast.Node]ast.Node, n ast.Node) (blk *ast.BlockStmt, idx int, ok bool) {
	cur := n
	for {
		p := parents[cur]
		if p == nil {
			return nil, 0, false
		}
		switch pp := p.(type) {
		case *ast.BlockStmt:
			for i, s := range pp.List {
				if s == cur {
					return pp, i, true
				}
			}
			return nil, 0, false
		case *ast.IfStmt:
			if cur == pp.Body || cur == pp.Else {
				return nil, 0, false
			}
		case *ast.ForStmt:
			if cur == pp.Body || cur == pp.Post {
				return nil, 0, false
			}
		case *ast.RangeStmt:
			if cur == pp.Body {
				return nil, 0, false
			}
		case *ast.CaseClause, *ast.CommClause, *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return nil, 0, false
		case *ast.BinaryExpr:
			if (pp.Op == token.LAND || pp.Op == token.LOR) && cur == pp.Y {
				return nil, 0, false
			}
		}
		cur = p
	}
}

// Dominates reports whether, on every execution path of the enclosing
// function, a executes before b. This is the syntactic approximation
// that is sound for goto-free structured Go: a must sit unconditionally
// in some block that is an ancestor of b, at a statement strictly
// before b's, or within b's own statement at an earlier source
// position (init clauses, left operands, earlier call arguments).
func Dominates(parents map[ast.Node]ast.Node, a, b ast.Node) bool {
	blk, idxA, ok := unconditionalAnchor(parents, a)
	if !ok {
		return false
	}
	// Find the statement of blk on b's ancestor chain.
	for cur := ast.Node(b); cur != nil; cur = parents[cur] {
		p := parents[cur]
		if p != ast.Node(blk) {
			continue
		}
		for i, s := range blk.List {
			if s == cur {
				if i != idxA {
					return i > idxA
				}
				// Same statement: source order decides (Go evaluates
				// init clauses and operands left to right).
				return a.Pos() < b.Pos()
			}
		}
	}
	return false
}

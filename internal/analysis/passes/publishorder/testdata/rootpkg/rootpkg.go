// Deliberate publishorder violations plus the approved shapes. The
// harness type-checks this directory as the root package "repro", where
// the analyzer is active; the go tool never builds it.
package simrank

import "sync/atomic"

type view struct{ epoch uint64 }

// WAL models the write-ahead log by type name, the way the analyzer
// recognizes it.
type WAL struct{ n int }

func (w *WAL) Append(rec []byte) error { w.n++; return nil }

type engine struct {
	view atomic.Pointer[view]
	wal  *WAL
}

// The one approved publish point.
//
//simrank:publish
func (e *engine) publish(v *view) {
	e.view.Store(v)
}

// Durability before visibility: append, then publish.
func (e *engine) applyGood(rec []byte) error {
	if err := e.wal.Append(rec); err != nil {
		return err
	}
	e.publish(&view{})
	return nil
}

// Rule 1: storing the view outside a publish function bypasses the
// invariants attached to publication.
func (e *engine) applyRogue(v *view) {
	e.view.Store(v) // want "outside a //simrank:publish function"
}

// Rule 2: a publish the WAL append does not dominate acknowledges
// state a crash could not replay.
//
//simrank:publish
func (e *engine) publishFirst(rec []byte) error {
	e.view.Store(&view{}) // want "not dominated by the WAL append"
	return e.wal.Append(rec)
}

package publishorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/publishorder"
)

func TestPublishOrder(t *testing.T) {
	analysistest.Run(t, "testdata/rootpkg", "repro", publishorder.Analyzer)
}

// The publication discipline is a root-package invariant; elsewhere the
// analyzer must stay silent.
func TestOtherPackagesExempt(t *testing.T) {
	analysistest.RunClean(t, "testdata/rootpkg", "repro/internal/server", publishorder.Analyzer)
}

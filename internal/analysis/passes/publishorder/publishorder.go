// Package publishorder proves the MVCC publication discipline of the
// root package at compile time.
//
// Two rules:
//
//  1. The view pointer may only be stored from an approved publish
//     point: any call to Store on a sync/atomic Pointer or Value must
//     occur inside a function annotated //simrank:publish. Everything
//     else must go through those functions, so invariants attached to
//     publication (epoch stamping, cache rotation, reader draining)
//     cannot be bypassed.
//
//  2. Durability before visibility: in any function that both appends
//     to the WAL (a *WAL Append call or a logRecord call) and
//     publishes (an atomic store or a call to a //simrank:publish
//     function), every publish must be dominated by an append. A
//     publish that can execute on a path that skipped the append would
//     acknowledge state a crash could not replay.
package publishorder

import (
	"go/ast"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "publishorder",
	Doc:  "atomic view publication only in //simrank:publish functions, WAL append dominating publish",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Path != "repro" {
		return nil
	}
	// Pre-pass: the package's approved publish points.
	publishFuncs := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && analysis.HasFuncDirective(fn, "publish") {
				publishFuncs[fn.Name.Name] = true
			}
		}
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, publishFuncs)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, publishFuncs map[string]bool) {
	inPublish := analysis.HasFuncDirective(fn, "publish")
	var appends, publishes []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, isMethod := analysis.MethodCall(call)
		switch {
		case isMethod && name == "Store" && isAtomicCell(pass, recv):
			if !inPublish {
				pass.Reportf(call.Pos(), "atomic view publication outside a //simrank:publish function; route this through the publish point")
			}
			publishes = append(publishes, call)
		case isMethod && name == "Append" && isWAL(pass, recv):
			appends = append(appends, call)
		case name == "logRecord":
			appends = append(appends, call)
		case isMethod && publishFuncs[name], !isMethod && isIdentCall(call, publishFuncs):
			publishes = append(publishes, call)
		}
		return true
	})
	if len(appends) == 0 || len(publishes) == 0 {
		return
	}
	parents := analysis.ParentMap(fn)
	for _, p := range publishes {
		dominated := false
		for _, a := range appends {
			if analysis.Dominates(parents, a, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(p.Pos(), "view publish not dominated by the WAL append in this function; a crash on this path loses an acknowledged update")
		}
	}
}

// isAtomicCell reports whether recv is a sync/atomic Pointer[T] or
// Value — the cells MVCC views publish through.
func isAtomicCell(pass *analysis.Pass, recv ast.Expr) bool {
	tv, ok := pass.Info.Types[recv]
	if !ok {
		return false
	}
	name := analysis.NamedTypeName(tv.Type)
	return (name == "Pointer" || name == "Value") && analysis.NamedTypePkgPath(tv.Type) == "sync/atomic"
}

// isWAL reports whether recv is a write-ahead log handle, by type name
// so fixture packages can model one without importing internal/wal.
func isWAL(pass *analysis.Pass, recv ast.Expr) bool {
	tv, ok := pass.Info.Types[recv]
	if !ok {
		return false
	}
	return analysis.NamedTypeName(tv.Type) == "WAL"
}

func isIdentCall(call *ast.CallExpr, names map[string]bool) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && names[id.Name]
}

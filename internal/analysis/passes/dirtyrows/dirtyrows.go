// Package dirtyrows enforces the write-back/invalidation pairing in
// the incremental kernels: every similarity-store write inside
// internal/core must report the rows it touched.
//
// The top-k cache, the MVCC view's dirtyRows snapshot and the approx
// tier's walk repair all trust core.Stats.DirtyRows to name exactly
// the S-rows an update wrote. A store write with no markDirty on the
// same path silently serves stale cached top-k results — the bug class
// PR 3 existed to eliminate.
//
// Rule: in a function that calls Add/AddSym/Set on a similarity-store
// interface (any interface whose method set includes AddSym), each such
// call must share a block with — or be dominated by — a call to
// markDirty/MarkRowsDirty/MarkAllRowsDirty. Functions that legitimately
// write without reporting (e.g. builders that mark everything dirty at
// a higher level) opt out with //simrank:nodirty.
package dirtyrows

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var reporters = map[string]bool{
	"markDirty": true, "MarkRowsDirty": true, "MarkAllRowsDirty": true,
}

var mutators = map[string]bool{"Add": true, "AddSym": true, "Set": true}

var Analyzer = &analysis.Analyzer{
	Name: "dirtyrows",
	Doc:  "requires dirty-row reporting alongside every similarity-store write in internal/core",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Path != "repro/internal/core" {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || analysis.HasFuncDirective(fn, "nodirty") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var writes []*ast.CallExpr
	var reports []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := analysis.MethodCall(call)
		if !ok {
			if id, ok := call.Fun.(*ast.Ident); ok && reporters[id.Name] {
				reports = append(reports, call)
			}
			return true
		}
		switch {
		case reporters[name]:
			reports = append(reports, call)
		case mutators[name] && isSimStore(pass.Info, recv):
			writes = append(writes, call)
		}
		return true
	})
	if len(writes) == 0 {
		return
	}
	parents := analysis.ParentMap(fn)
	for _, w := range writes {
		if !paired(parents, w, reports) {
			_, name, _ := analysis.MethodCall(w)
			pass.Reportf(w.Pos(), "store write %s without dirty-row reporting on the same path; call markDirty/MarkRowsDirty here or annotate the function //simrank:nodirty", name)
		}
	}
}

// isSimStore reports whether the receiver is a similarity-store
// interface: any interface whose method set includes AddSym. Keying on
// the method set rather than the SimStore name keeps the rule valid
// across refactors (and testable from fixture packages).
func isSimStore(info *types.Info, recv ast.Expr) bool {
	tv, ok := info.Types[recv]
	if !ok {
		return false
	}
	iface, ok := tv.Type.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "AddSym" {
			return true
		}
	}
	return false
}

// paired reports whether some dirty-row report shares w's innermost
// block or dominates w.
func paired(parents map[ast.Node]ast.Node, w *ast.CallExpr, reports []*ast.CallExpr) bool {
	wb := enclosingBlock(parents, w)
	for _, r := range reports {
		if enclosingBlock(parents, r) == wb || analysis.Dominates(parents, r, w) {
			return true
		}
	}
	return false
}

func enclosingBlock(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for cur := n; cur != nil; cur = parents[cur] {
		if b, ok := cur.(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

package dirtyrows_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/dirtyrows"
)

func TestDirtyRows(t *testing.T) {
	analysistest.Run(t, "testdata/core", "repro/internal/core", dirtyrows.Analyzer)
}

// The pairing rule only binds the incremental kernels in internal/core.
func TestOtherPackagesExempt(t *testing.T) {
	analysistest.RunClean(t, "testdata/core", "repro/internal/cache", dirtyrows.Analyzer)
}

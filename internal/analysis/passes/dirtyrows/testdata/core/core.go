// Deliberate dirtyrows violations plus the paired shapes. The harness
// type-checks this directory as repro/internal/core, the one package
// the analyzer guards. The store interface is modeled locally: the
// analyzer keys on the AddSym method set, not on an import.
package core

// SimStore models the similarity store interface by method set.
type SimStore interface {
	Add(i, j int, v float64)
	AddSym(i, j int, v float64)
	Set(i, j int, v float64)
	MarkRowsDirty(rows []int)
}

type tracker struct{ dirty []int }

func (t *tracker) markDirty(r int) { t.dirty = append(t.dirty, r) }

// A store write with no dirty-row report on its path serves stale
// cached top-k results.
func writeBad(s SimStore, i, j int, v float64) {
	s.AddSym(i, j, v) // want "store write AddSym without dirty-row reporting"
}

// Report in the same block: paired.
func writeGood(s SimStore, t *tracker, i, j int, v float64) {
	s.AddSym(i, j, v)
	t.markDirty(i)
	t.markDirty(j)
}

// Report dominating the write: paired even across blocks.
func writeDominated(s SimStore, i, j int, v float64, hot bool) {
	s.MarkRowsDirty([]int{i, j})
	if hot {
		s.Set(i, j, v)
	}
}

// A report inside one branch does not cover a write in another.
func writeBranchy(s SimStore, t *tracker, i, j int, v float64, hot bool) {
	if hot {
		t.markDirty(i)
	} else {
		s.Set(i, j, v) // want "store write Set without dirty-row reporting"
	}
}

// Builders that mark everything dirty at a higher level opt out.
//
//simrank:nodirty
func bulkLoad(s SimStore, n int) {
	for i := 0; i < n; i++ {
		s.Set(i, i, 1)
	}
}

package sealedwrite_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/sealedwrite"
)

func TestSealedWrite(t *testing.T) {
	analysistest.Run(t, "testdata/views", "repro/internal/fixture", sealedwrite.Analyzer)
}

// The copy-on-write implementer packages own the seal machinery; the
// same violations must produce nothing there.
func TestImplementerPackagesExempt(t *testing.T) {
	analysistest.RunClean(t, "testdata/views", "repro/internal/simstore", sealedwrite.Analyzer)
}

// Package sealedwrite flags mutations of sealed values — the MVCC
// correctness rule the whole lock-free read path rests on.
//
// A value returned by Seal() (a sealed simstore.Store, a
// graph.Snapshot, an engineView and anything reached through one) is
// immutable by contract: readers compose queries against it with no
// lock, and the writer republishes by copy-on-write, never in place.
// Calling a mutating method on such a value corrupts concurrent
// readers in ways the race detector only catches if a test happens to
// overlap the exact pair of accesses.
//
// The analyzer tracks, within each function, values that flow from a
// Seal() call (through assignments, type assertions and field
// selections) plus anything statically typed as a sealed view type,
// and reports mutating method calls on them. Copy-on-write helpers
// that legitimately build the next sealed generation live in the
// store/graph/walk-index packages (excluded wholesale) or carry a
// //simrank:sealsafe directive.
package sealedwrite

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// implementers are the copy-on-write layers themselves: they own the
// seal machinery and must mutate buffers while building the next
// generation.
var implementers = map[string]bool{
	"repro/internal/simstore":   true,
	"repro/internal/graph":      true,
	"repro/internal/montecarlo": true,
}

// mutators is the union of mutating method names across the store
// interface, the graph, and the walk index. Row and ColInto are
// included deliberately: the Store contract reserves them for the
// single-writer path, so calling them on a sealed value is a bug even
// though they look like reads.
var mutators = map[string]bool{
	"Set": true, "Add": true, "AddSym": true, "ApplyUpdate": true,
	"AddNodes": true, "AddEdge": true, "MarkRowsDirty": true,
	"MarkAllRowsDirty": true, "SetFromDense": true, "SetRepairGen": true,
	"AbandonBack": true, "Row": true, "ColInto": true,
}

// sealedTypeNames are types that are sealed by construction — every
// value of the type is on the immutable side of the COW boundary.
var sealedTypeNames = map[string]bool{"engineView": true, "Snapshot": true}

var Analyzer = &analysis.Analyzer{
	Name: "sealedwrite",
	Doc:  "flags mutating method calls on values that flow from Seal()/sealed view types",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Path, "repro") || implementers[pass.Path] ||
		strings.HasPrefix(pass.Path, "repro/internal/analysis") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || analysis.HasFuncDirective(fn, "sealsafe") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	sealed map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	c := &checker{pass: pass, sealed: map[types.Object]bool{}}

	// Fixpoint: propagate sealedness through local assignments
	// (x := s.Seal(); y := x; v, ok := y.(*Dense); ...).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				changed = c.recordAssign(s.Lhs, s.Rhs) || changed
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(s.Names))
				for i, id := range s.Names {
					lhs[i] = id
				}
				changed = c.recordAssign(lhs, s.Values) || changed
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := analysis.MethodCall(call)
		if !ok || !mutators[name] {
			return true
		}
		// Atomic counters (engineView.readers and friends) are interior-
		// mutable by design: mutating them through a sealed view is the
		// contract, not a violation.
		if tv, ok := pass.Info.Types[recv]; ok && analysis.NamedTypePkgPath(tv.Type) == "sync/atomic" {
			return true
		}
		if c.sealedExpr(recv) {
			pass.Reportf(call.Pos(), "%s on a sealed value; sealed views are immutable — go through Writable()/copy-on-write, or annotate the COW helper //simrank:sealsafe", name)
		}
		return true
	})
}

// recordAssign marks LHS idents sealed when their RHS is sealed,
// handling both 1:1 assignments and the v, ok := x.(T) comma-ok form.
func (c *checker) recordAssign(lhs, rhs []ast.Expr) bool {
	changed := false
	mark := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if obj != nil && !c.sealed[obj] {
			c.sealed[obj] = true
			changed = true
		}
	}
	switch {
	case len(lhs) == len(rhs):
		for i := range rhs {
			if c.sealedExpr(rhs[i]) {
				mark(lhs[i])
			}
		}
	case len(rhs) == 1 && len(lhs) == 2:
		if c.sealedExpr(rhs[0]) {
			mark(lhs[0])
		}
	}
	return changed
}

// sealedExpr reports whether e denotes a sealed value.
func (c *checker) sealedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := c.pass.Info.Types[e]; ok && c.sealedType(tv.Type) {
		return true
	}
	switch v := e.(type) {
	case *ast.Ident:
		obj := c.pass.Info.Uses[v]
		if obj == nil {
			obj = c.pass.Info.Defs[v]
		}
		return obj != nil && c.sealed[obj]
	case *ast.CallExpr:
		if _, name, ok := analysis.MethodCall(v); ok && name == "Seal" {
			return true
		}
	case *ast.SelectorExpr:
		return c.sealedExpr(v.X)
	case *ast.TypeAssertExpr:
		return c.sealedExpr(v.X)
	case *ast.StarExpr:
		return c.sealedExpr(v.X)
	case *ast.UnaryExpr:
		return c.sealedExpr(v.X)
	}
	return false
}

// sealedType reports whether t names a sealed-by-construction type.
func (c *checker) sealedType(t types.Type) bool {
	return sealedTypeNames[analysis.NamedTypeName(t)] &&
		strings.HasPrefix(analysis.NamedTypePkgPath(t), "repro")
}

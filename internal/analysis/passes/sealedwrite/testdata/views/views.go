// Deliberate sealedwrite violations plus the idioms the analyzer must
// accept. Type-checked as a repro-prefixed package by the test harness;
// never built by the go tool.
package fixture

import "sync/atomic"

// Snapshot is sealed by construction (its name is on the analyzer's
// sealed-type list), like the engine's view types.
type Snapshot struct {
	vals map[int]float64
	refs atomic.Int64
}

func (s *Snapshot) Set(i int, v float64) { s.vals[i] = v }
func (s *Snapshot) At(i int) float64     { return s.vals[i] }

// Table is NOT sealed by name; only values flowing from Seal() are.
type Table struct{ vals []float64 }

func (t *Table) At(i int) float64     { return t.vals[i] }
func (t *Table) Set(i int, v float64) { t.vals[i] = v }
func (t *Table) Seal() *Table         { return t }

func sealedFlow(t *Table) {
	v := t.Seal()
	v.Set(1, 0.5) // want "Set on a sealed value"
	u := v
	u.Set(2, 0.5)        // want "Set on a sealed value"
	t.Seal().Set(3, 0.5) // want "Set on a sealed value"
}

func sealedByType(s *Snapshot) {
	s.Set(1, 0.5) // want "Set on a sealed value"
	_ = s.At(1)
}

// Writes to a never-sealed Table are the writer's business.
func writerPath(t *Table) {
	t.Set(1, 0.5)
	_ = t.At(1)
}

// Atomic counters on a sealed view are interior-mutable by design.
func pin(s *Snapshot) { s.refs.Add(1) }

// Copy-on-write helpers that build the next generation opt out.
//
//simrank:sealsafe
func cowPatch(s *Snapshot, i int, v float64) { s.Set(i, v) }

// Package noalloc is the static complement of zeroalloc_test.go's
// AllocsPerRun assertions: functions annotated //simrank:noalloc are
// rejected if their steady-state body contains an allocating construct.
//
// The dynamic test proves a particular execution allocated nothing;
// this analyzer proves the property survives refactors that the test's
// fixed inputs never exercise. It is intraprocedural by design — calls
// into other functions are trusted (annotate them too if they are on
// the pinned path) — and it understands the two idioms a warm path is
// allowed to use:
//
//   - in-place growth, x = append(x, ...): amortized-zero once pools
//     are warm, so only appends into a *different* slice are flagged;
//   - cold error returns: a construct inside a `return ..., err` whose
//     error operand is non-nil is off the steady-state path (the
//     AllocsPerRun contract only covers successful execution).
//
// Everything else that allocates is reported: make/new, escaping
// composite literals (&T{...}, slice and map literals), non-self
// appends, map writes, escaping closures, string concatenation and
// conversions, fmt, go statements, implicit variadic slices, and
// interface boxing of non-pointer-shaped values. A deliberate
// exception carries //simrank:allocok <reason> on (or above) its line.
//
// Go statements are special: spawning a goroutine is never a
// steady-state allocation, so allocok does not excuse one. A one-time
// worker-pool spawn must be declared with //simrank:coldpath — either
// on the go statement's line inside a noalloc function, or as the
// function-level directive of an unannotated warm-up helper the noalloc
// path calls (ensurePool's shape). A function carrying both noalloc and
// coldpath contradicts itself and is reported.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "rejects allocating constructs inside //simrank:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		allocok := analysis.LineDirectives(pass.Fset, file, "allocok")
		coldpath := analysis.LineDirectives(pass.Fset, file, "coldpath")
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.HasFuncDirective(fn, "noalloc") {
				continue
			}
			if analysis.HasFuncDirective(fn, "coldpath") {
				pass.Reportf(fn.Pos(), "function carries both //simrank:noalloc and //simrank:coldpath; a warm-up path cannot also promise zero steady-state allocations")
				continue
			}
			c := &checker{pass: pass, fn: fn, allocok: allocok, coldpath: coldpath, parents: analysis.ParentMap(fn)}
			c.check()
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	fn       *ast.FuncDecl
	allocok  map[int]bool
	coldpath map[int]bool
	parents  map[ast.Node]ast.Node
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	line := c.pass.Fset.Position(n.Pos()).Line
	if c.allocok[line] || c.coldpath[line] || c.coldErrorPath(n) {
		return
	}
	c.pass.Reportf(n.Pos(), format, args...)
}

// coldErrorPath reports whether n sits inside a return statement whose
// final operand is a non-nil error — allocation there is off the
// steady-state path the noalloc contract covers.
func (c *checker) coldErrorPath(n ast.Node) bool {
	var ret *ast.ReturnStmt
	for cur := n; cur != nil; cur = c.parents[cur] {
		if r, ok := cur.(*ast.ReturnStmt); ok {
			ret = r
			break
		}
	}
	if ret == nil || len(ret.Results) == 0 {
		return false
	}
	obj, ok := c.pass.Info.Defs[c.fn.Name].(*types.Func)
	if !ok {
		return false
	}
	results := obj.Signature().Results()
	if results.Len() == 0 || !types.Identical(results.At(results.Len()-1).Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	if tv, ok := c.pass.Info.Types[last]; ok && tv.IsNil() {
		return false
	}
	return true
}

func (c *checker) check() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			// Not routed through report: allocok cannot excuse a spawn.
			// Only an audited one-time //simrank:coldpath line may.
			if !c.coldpath[c.pass.Fset.Position(node.Pos()).Line] {
				c.pass.Reportf(node.Pos(), "go statement allocates a goroutine in a //simrank:noalloc function; a one-time pool spawn needs //simrank:coldpath, not allocok")
			}
			return true
		case *ast.CallExpr:
			c.checkCall(node)
		case *ast.CompositeLit:
			c.checkCompositeLit(node)
		case *ast.FuncLit:
			if !c.nonEscapingFuncLit(node) {
				c.report(node, "escaping function literal allocates a closure")
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && c.isString(node) {
				c.report(node, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && c.isMap(idx.X) {
					c.report(lhs, "map write may allocate (bucket growth); noalloc paths must not write maps")
				}
			}
			c.checkInterfaceAssign(node)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch c.pass.Info.Uses[id] {
		case types.Universe.Lookup("make"):
			c.report(call, "make allocates; hoist the buffer into the workspace/pool")
			return
		case types.Universe.Lookup("new"):
			c.report(call, "new allocates")
			return
		case types.Universe.Lookup("append"):
			if !c.selfAppend(call) {
				c.report(call, "append into a different slice allocates; only the in-place x = append(x, ...) form is amortized-free")
			}
			return
		case types.Universe.Lookup("panic"):
			// A panic terminates the fast path; boxing its argument is a
			// cold-path allocation, like an error return.
			return
		}
	}
	// Type conversions.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	if analysis.CalleePkgPath(c.pass.Info, call) == "fmt" {
		c.report(call, "fmt always allocates; keep formatting off the noalloc path")
		return
	}
	sig := analysis.CallSignature(c.pass.Info, call)
	if sig == nil {
		return
	}
	c.checkArgBoxing(call, sig)
}

// checkConversion flags the conversions that copy: string <-> byte/rune
// slices, and boxing a non-pointer-shaped value into an interface.
func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	argTV, ok := c.pass.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	src := argTV.Type
	switch {
	case isStringType(target) && isByteOrRuneSlice(src),
		isByteOrRuneSlice(target) && isStringType(src):
		c.report(call, "string/slice conversion copies and allocates")
	case analysis.IsInterface(target) && !analysis.IsInterface(src) && !argTV.IsNil() && !analysis.PointerShaped(src):
		c.report(call, "converting %s to an interface boxes (allocates)", src)
	}
}

// checkArgBoxing flags concrete non-pointer-shaped values passed where
// an interface parameter expects them, and the implicit slice a
// variadic call builds.
func (c *checker) checkArgBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // spread of an existing slice: no new backing array
			}
			if i == n-1 {
				c.report(call, "variadic call builds an implicit slice (allocates)")
			}
			pt = params.At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		argTV, ok := c.pass.Info.Types[arg]
		if !ok {
			continue
		}
		if analysis.IsInterface(pt) && !analysis.IsInterface(argTV.Type) && !argTV.IsNil() && !analysis.PointerShaped(argTV.Type) {
			c.report(arg, "passing %s as interface %s boxes (allocates)", argTV.Type, pt)
		}
	}
}

func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	if p, ok := c.parents[lit].(*ast.UnaryExpr); ok && p.Op == token.AND {
		c.report(p, "&composite literal escapes to the heap")
		return
	}
	tv, ok := c.pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		c.report(lit, "%s literal allocates its backing storage", tv.Type)
	}
}

// nonEscapingFuncLit allows the two closure shapes the compiler keeps
// off the heap: an immediately-invoked literal, and a literal bound to
// a plain local variable (called directly later, as IncSR's applyTerm
// is). Passing a literal to another function or storing it in a
// structure escapes it.
func (c *checker) nonEscapingFuncLit(lit *ast.FuncLit) bool {
	switch p := c.parents[lit].(type) {
	case *ast.CallExpr:
		return p.Fun == lit
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				return false
			}
		}
		return true
	case *ast.ValueSpec:
		return true
	}
	return false
}

// selfAppend recognizes x = append(x, ...) (including field targets
// like ws.dirty = append(ws.dirty, r)).
func (c *checker) selfAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	assign, ok := c.parents[call].(*ast.AssignStmt)
	if !ok {
		return false
	}
	dst := types.ExprString(ast.Unparen(call.Args[0]))
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == ast.Node(call) && i < len(assign.Lhs) {
			return types.ExprString(ast.Unparen(assign.Lhs[i])) == dst
		}
	}
	return false
}

// checkInterfaceAssign flags `ifaceVar = concreteNonPointer` stores.
func (c *checker) checkInterfaceAssign(assign *ast.AssignStmt) {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i := range assign.Lhs {
		ltv, lok := c.pass.Info.Types[assign.Lhs[i]]
		rtv, rok := c.pass.Info.Types[assign.Rhs[i]]
		if !lok || !rok || !analysis.IsInterface(ltv.Type) {
			continue
		}
		if !analysis.IsInterface(rtv.Type) && !rtv.IsNil() && !analysis.PointerShaped(rtv.Type) {
			c.report(assign.Rhs[i], "assigning %s to interface %s boxes (allocates)", rtv.Type, ltv.Type)
		}
	}
}

func (c *checker) isString(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	return ok && isStringType(tv.Type)
}

func (c *checker) isMap(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotpath", "repro/internal/fixture", noalloc.Analyzer)
}

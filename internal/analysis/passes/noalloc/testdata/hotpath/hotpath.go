// Deliberate noalloc violations plus every idiom the analyzer must
// accept: self-append, cold error returns, allocok escapes, and
// non-escaping closures. Never built by the go tool.
package fixture

import "fmt"

type workspace struct {
	buf  []float64
	supp []int
	m    map[int]float64
}

type errBad struct{ n int }

func (e *errBad) Error() string { return "bad" }

func launch(fn func()) { fn() }

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// In-place growth and plain arithmetic: clean.
//
//simrank:noalloc
func (ws *workspace) grow(v float64) {
	ws.buf = append(ws.buf, v)
	ws.supp = append(ws.supp, len(ws.buf))
}

//simrank:noalloc
func (ws *workspace) bad(n int, s, t string) {
	x := make([]float64, n) // want "make allocates"
	_ = x
	ws.m[n] = 1                    // want "map write may allocate"
	ws.supp = append(ws.buf2(), n) // want "append into a different slice allocates"
	msg := fmt.Sprintf("%d", n)    // want "fmt always allocates"
	_ = msg
	u := s + t // want "string concatenation allocates"
	_ = u
	b := []byte(s) // want "string/slice conversion copies"
	_ = b
	_ = sum(1, 2, 3)  // want "variadic call builds an implicit slice"
	launch(func() {}) // want "escaping function literal allocates a closure"
	go ws.grow(1)     // want "go statement allocates a goroutine"
	p := &workspace{} // want "composite literal escapes to the heap"
	_ = p
}

func (ws *workspace) buf2() []int { return ws.supp }

// Immediately-invoked and locally-bound literals stay on the stack.
//
//simrank:noalloc
func (ws *workspace) closures(v float64) {
	func() { ws.buf[0] = v }()
	add := func(i int) { ws.buf[i] += v }
	add(0)
}

// A construct inside `return ..., err` with err non-nil is off the
// steady-state path the contract covers.
//
//simrank:noalloc
func (ws *workspace) checked(n int) (int, error) {
	if n < 0 {
		return 0, &errBad{n: n}
	}
	return n, nil
}

// First-use growth behind an allocok directive with its audit reason.
//
//simrank:noalloc
func (ws *workspace) coldStart(n int) {
	if ws.buf == nil {
		ws.buf = make([]float64, n) //simrank:allocok first-use growth; steady state reuses the buffer
	}
}

// Unannotated functions may allocate freely.
func (ws *workspace) rebuild(n int) {
	ws.buf = make([]float64, n)
	ws.m = map[int]float64{}
}

// A one-time pool spawn declared cold is the one way a goroutine may
// appear in a noalloc function; allocok is not accepted for spawns.
//
//simrank:noalloc
func (ws *workspace) dispatch(n int) {
	if ws.supp == nil {
		go ws.grow(1)               //simrank:coldpath one-time pool spawn; warm dispatches reuse it
		ws.buf = make([]float64, n) //simrank:coldpath warm-up scratch growth
	}
	//simrank:allocok not good enough for a spawn
	go ws.grow(2) // want "needs //simrank:coldpath"
}

// A warm-up helper carries the function-level directive instead; it is
// not noalloc, so its body allocates freely.
//
//simrank:coldpath
func (ws *workspace) spawnPool() {
	go ws.grow(3)
	ws.m = map[int]float64{}
}

// Claiming both contracts at once is a contradiction.
//
//simrank:noalloc
//simrank:coldpath
func (ws *workspace) confused() { // want "carries both"
	ws.buf[0] = 1
}

// Deliberate detrand violations plus the audited loop shapes. The
// harness type-checks this directory once as a determinism-critical
// package (violations fire) and once as internal/gen (allowlisted, so
// the same file must produce nothing).
package kernel

import (
	"math/rand" // want "import of math/rand in determinism-critical package"
	"sort"
	"time"
)

var _ = rand.Int

// The classic seed smell: collapsing the wall clock into an integer.
func seed() int64 {
	return time.Now().UnixNano() // want "integer wall-clock read"
}

// Float accumulation in map order: the low bits depend on Go's
// randomized iteration.
func sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "map iteration with an order-sensitive body"
		s += v
	}
	return s
}

// The audited fix: collect keys, sort, fold in index order.
func sortedSum(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	//simrank:orderinvariant collects keys only; sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// Trivially order-invariant: distinct keys land in distinct slots.
func scatter(src, dst map[int]float64) {
	for k, v := range src {
		dst[k] = v
	}
}

package detrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/detrand"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata/critical", "repro/internal/core", detrand.Analyzer)
}

// Generators may use ambient randomness by contract: the very same file
// must produce nothing when loaded as internal/gen.
func TestGeneratorPackageExempt(t *testing.T) {
	analysistest.RunClean(t, "testdata/critical", "repro/internal/gen", detrand.Analyzer)
}

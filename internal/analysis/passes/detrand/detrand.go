// Package detrand enforces the repository's determinism contract in
// the packages whose output must be bit-identical across runs,
// replicas and repair-vs-rebuild: all randomness derives from chained
// splitmix64 seeds, and no observable result may depend on Go's
// randomized map iteration order.
//
// In determinism-critical packages it reports:
//
//   - imports of math/rand and math/rand/v2 (ambient randomness);
//   - integer wall-clock reads (time.Now().UnixNano() and friends) —
//     the classic seed smell; determinism-critical code has no business
//     turning the clock into an integer;
//   - every `for ... range m` over a map, unless the loop body only
//     writes map entries or deletes keys (trivially order-invariant),
//     or the loop carries a `//simrank:orderinvariant <reason>`
//     directive recording the audit that proved order independence.
//
// internal/gen, internal/exp and _test.go files are allowlisted by
// contract: generators and experiments may use ambient randomness.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// critical lists the packages whose results must be deterministic:
// the engine facade (snapshot/replay/publish), the incremental kernels,
// the graph/matrix/batch compute layer, the store backends, the
// Monte-Carlo walk index, WAL replay, and the caches/metrics that feed
// query results.
var critical = map[string]bool{
	"repro":                     true,
	"repro/internal/core":       true,
	"repro/internal/graph":      true,
	"repro/internal/matrix":     true,
	"repro/internal/batch":      true,
	"repro/internal/simstore":   true,
	"repro/internal/montecarlo": true,
	"repro/internal/wal":        true,
	"repro/internal/cache":      true,
	"repro/internal/metrics":    true,
}

// intClockMethods are time.Time methods that collapse the wall clock
// into an integer — the seeding idiom detrand exists to keep out.
var intClockMethods = map[string]bool{
	"Unix": true, "UnixMilli": true, "UnixMicro": true, "UnixNano": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbids ambient randomness and map-iteration-order dependence in determinism-critical packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !critical[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass, file) {
			continue
		}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in determinism-critical package; derive randomness from the chained splitmix64 seeds instead", path)
			}
		}
		invariant := analysis.LineDirectives(pass.Fset, file, "orderinvariant")
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if recv, name, ok := analysis.MethodCall(node); ok && intClockMethods[name] {
					if tv, ok := pass.Info.Types[recv]; ok && analysis.NamedTypeName(tv.Type) == "Time" && analysis.NamedTypePkgPath(tv.Type) == "time" {
						pass.Reportf(node.Pos(), "integer wall-clock read (%s) in determinism-critical package; clocks must not feed seeds or results", name)
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, node, invariant)
			}
			return true
		})
	}
	return nil
}

func checkMapRange(pass *analysis.Pass, loop *ast.RangeStmt, invariant map[int]bool) {
	tv, ok := pass.Info.Types[loop.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if invariant[pass.Fset.Position(loop.Pos()).Line] {
		return
	}
	if orderInvariantBody(pass.Info, loop.Body) {
		return
	}
	pass.Reportf(loop.Pos(), "map iteration with an order-sensitive body; sort the keys, or audit the loop and annotate //simrank:orderinvariant with the reason")
}

// orderInvariantBody recognizes the loop shapes that are trivially
// independent of iteration order: every statement either writes a map
// entry (distinct keys land in distinct slots) or deletes one. Anything
// else — appends, accumulation into floats, calls — needs an audit.
func orderInvariantBody(info *types.Info, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					return false
				}
				tv, ok := info.Types[idx.X]
				if !ok {
					return false
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return false
				}
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "delete" || info.Uses[id] != types.Universe.Lookup("delete") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

package fsyncerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/passes/fsyncerr"
)

func TestFsyncErr(t *testing.T) {
	analysistest.Run(t, "testdata/wal", "repro/internal/wal", fsyncerr.Analyzer)
}

// Outside the durability-critical packages a dropped Close is ordinary
// code, not a finding.
func TestOtherPackagesExempt(t *testing.T) {
	analysistest.RunClean(t, "testdata/wal", "repro/internal/graph", fsyncerr.Analyzer)
}

// Package fsyncerr flags discarded error results from Sync, Close and
// Rename in the durability-critical packages (the WAL, the snapshot
// write path, the server pipeline).
//
// A WAL that swallows a Sync error silently converts "durable" into
// "probably durable"; a snapshot rename whose error is dropped can
// acknowledge a checkpoint that never hit the disk. The rule is
// stricter than a generic errcheck: in scope, a bare `f.Close()`
// statement (or `defer f.Close()`) is an error, not a warning. A
// deliberate discard must be written as `_ = f.Close()` or carry a
// `//simrank:errok <reason>` directive, so intent is visible at the
// call site.
package fsyncerr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// scope is the set of packages where dropped Sync/Close/Rename errors
// are correctness bugs: the snapshot write path lives in the root
// package, the WAL and the write pipeline in their own.
var scope = map[string]bool{
	"repro":                 true,
	"repro/internal/wal":    true,
	"repro/internal/server": true,
}

// watched is the set of durability-relevant names. Rename covers both
// os.Rename and rename-like methods.
var watched = map[string]bool{"Sync": true, "Close": true, "Rename": true}

var Analyzer = &analysis.Analyzer{
	Name: "fsyncerr",
	Doc:  "flags discarded Sync/Close/Rename errors in the WAL and snapshot write path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !scope[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		errok := analysis.LineDirectives(pass.Fset, file, "errok")
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				how = "discarded"
			case *ast.DeferStmt:
				call = s.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = s.Call
				how = "discarded by go"
			default:
				return true
			}
			if call == nil || !returnsWatchedError(pass.Info, call) {
				return true
			}
			if errok[pass.Fset.Position(call.Pos()).Line] {
				return true
			}
			_, name, _ := analysis.MethodCall(call)
			if name == "" {
				if id, ok := call.Fun.(*ast.Ident); ok {
					name = id.Name
				}
			}
			pass.Reportf(call.Pos(), "%s error %s; handle it, or write `_ = %s(...)` / //simrank:errok with a reason", name, how, name)
			return true
		})
	}
	return nil
}

// returnsWatchedError reports whether call invokes a watched name whose
// last result is an error (so discarding it loses information).
func returnsWatchedError(info *types.Info, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if !watched[name] {
		return false
	}
	sig := analysis.CallSignature(info, call)
	if sig == nil || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

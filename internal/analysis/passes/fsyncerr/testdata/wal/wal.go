// Deliberate fsyncerr violations plus the approved discard idioms.
// Type-checked as repro/internal/wal by the harness, where dropped
// Sync/Close/Rename errors are correctness bugs.
package wal

import "os"

func flushBad(f *os.File) {
	f.Sync()        // want "Sync error discarded"
	defer f.Close() // want "Close error discarded by defer"
}

func renameBad(from, to string) {
	os.Rename(from, to) // want "Rename error discarded"
}

// Handled errors and the explicit `_ =` discard pass.
func flushGood(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename("a", "b")
}

func cleanupTemp(f *os.File) {
	_ = f.Close()
}

// A justified discard carries the reason at the call site.
func readOnly(f *os.File) {
	defer f.Close() //simrank:errok read-only handle; nothing written through it
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot finds the repo root relative to this source file so tests
// pass regardless of the working directory go test uses.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func TestLoaderTypeChecksModulePackages(t *testing.T) {
	l := NewLoader(moduleRoot(t))
	pkgs, err := l.Load("repro/internal/graph", "repro/internal/simstore")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: incomplete load (types=%v info=%v files=%d)", p.Path, p.Types != nil, p.Info != nil, len(p.Files))
		}
	}
	g := pkgs[0]
	if g.Types.Scope().Lookup("DiGraph") == nil {
		t.Errorf("repro/internal/graph: DiGraph not found in package scope")
	}
	// Loading again must reuse the memo and keep working.
	again, err := l.Load("repro/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Types != g.Types {
		t.Error("second load did not reuse the cached package")
	}
}

func TestDominates(t *testing.T) {
	src := `package p

func f(c bool) {
	a1()
	if c {
		b1()
	}
	if x := a2(); x {
		b2()
	}
	for i := 0; i < 3; i++ {
		b3()
	}
	if c {
		a3()
		b4()
	}
}

func a1() {}
func a2() bool { return true }
func a3() {}
func b1() {}
func b2() {}
func b3() {}
func b4() {}
`
	fset := token.NewFileSet()
	file := mustParse(t, fset, src)
	fn := file.Decls[0]
	parents := ParentMap(fn)
	calls := map[string]ast.Node{}
	ast.Inspect(fn, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok {
				calls[id.Name] = c
			}
		}
		return true
	})
	cases := []struct {
		a, b string
		want bool
	}{
		{"a1", "b1", true},  // straight-line then guarded: dominates
		{"a2", "b2", true},  // if-init dominates the if body
		{"b1", "b2", false}, // guarded call does not dominate later code
		{"a1", "b3", true},  // dominates loop bodies below it
		{"a3", "b4", true},  // same guarded block, earlier statement
		{"b4", "a3", false}, // order within a block matters
		{"b3", "b4", false}, // loop body does not dominate later blocks
	}
	for _, c := range cases {
		if got := Dominates(parents, calls[c.a], calls[c.b]); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func mustParse(t *testing.T, fset *token.FileSet, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

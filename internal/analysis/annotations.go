package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //simrank:* directive vocabulary. Directives are ordinary line
// comments with no space after "//", mirroring //go: tool directives.
//
// Function-level (written in a FuncDecl's doc comment):
//
//	//simrank:noalloc        — the function's steady-state body must not
//	                           allocate; checked by the noalloc analyzer
//	                           as the static complement of AllocsPerRun.
//	//simrank:publish        — the function is an approved MVCC publish
//	                           point; atomic.Pointer.Store is legal only
//	                           inside such functions (publishorder).
//	//simrank:sealsafe       — the function is an allowlisted COW helper
//	                           that may mutate sealed values (sealedwrite).
//	//simrank:nodirty        — the function writes the store but is
//	                           exempt from dirty-row pairing (dirtyrows).
//	//simrank:coldpath       — the function is a one-time warm-up path
//	                           (pool spawn, first-use scratch growth)
//	                           that noalloc functions may call; mutually
//	                           exclusive with noalloc, which rejects the
//	                           combination.
//
// Line-level (written on, or on the line directly above, the construct
// they excuse; a reason after the directive name is required reading
// for reviewers and strongly encouraged):
//
//	//simrank:allocok <why>        — excuses one allocating construct
//	                                 inside a noalloc function. Does NOT
//	                                 excuse a go statement — spawning a
//	                                 goroutine is never a steady-state
//	                                 allocation and must be declared a
//	                                 warm-up with coldpath instead.
//	//simrank:coldpath <why>       — excuses a one-time goroutine spawn
//	                                 (or other warm-up construct) inside
//	                                 a noalloc function: the line runs
//	                                 only until its pool/scratch is warm.
//	//simrank:orderinvariant <why> — marks a map-range loop whose effect
//	                                 was audited to be independent of
//	                                 iteration order (detrand).
//	//simrank:errok <why>          — excuses one discarded Sync/Close/
//	                                 Rename error (fsyncerr).
const directivePrefix = "//simrank:"

// FuncDirectives returns the set of simrank directive names attached to
// the declaration's doc comment, e.g. {"noalloc": true}.
func FuncDirectives(fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fn.Doc == nil {
		return out
	}
	for _, c := range fn.Doc.List {
		if name, ok := directiveName(c.Text); ok {
			out[name] = true
		}
	}
	return out
}

// HasFuncDirective reports whether fn's doc comment carries the named
// directive.
func HasFuncDirective(fn *ast.FuncDecl, name string) bool {
	return FuncDirectives(fn)[name]
}

// LineDirectives scans every comment in file and returns, for the named
// directive, the set of source lines it covers. A line-level directive
// covers its own line and the line immediately below it, so both the
// trailing-comment and the line-above placements work:
//
//	x = alloc() //simrank:allocok cold path
//
//	//simrank:allocok cold path
//	x = alloc()
func LineDirectives(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			got, ok := directiveName(c.Text)
			if !ok || got != name {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// directiveName parses "//simrank:allocok reason..." into "allocok".
func directiveName(text string) (string, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Package is one loaded, parsed, type-checked package — the loader's
// replacement for go/packages.Package, built from `go list -json -deps`
// plus go/parser and go/types (the x/tools module is not vendored, so
// everything here is standard library only).
type Package struct {
	Path     string // import path the package was loaded as
	Name     string
	Dir      string
	Standard bool // part of the Go standard library

	Fset  *token.FileSet
	Files []*ast.File // parsed sources; nil for std packages

	Types *types.Package
	Info  *types.Info // filled for non-std packages only
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// A Loader loads and type-checks packages of the module rooted at Dir,
// memoizing across calls — loading `./...` after a fixture load reuses
// every already-checked dependency.
type Loader struct {
	Dir  string // module root (where go list runs)
	Fset *token.FileSet

	mu   sync.Mutex
	pkgs map[string]*Package // by resolved import path
}

// NewLoader returns a loader for the module rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, Fset: token.NewFileSet(), pkgs: map[string]*Package{}}
}

// Load resolves patterns (e.g. "./...") with the go command and returns
// the matched packages, fully type-checked, in dependency order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	targets, err := l.goList(false, patterns...)
	if err != nil {
		return nil, err
	}
	if err := l.loadDeps(patterns...); err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		p := l.pkgs[t.ImportPath]
		if p == nil {
			return nil, fmt.Errorf("load: %s missing after dependency load", t.ImportPath)
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadFixtureDir parses every .go file under dir (a testdata fixture
// directory, invisible to the go tool) and type-checks the result as if
// it were the package asPath. Imports are resolved against the real
// module, so fixtures exercise analyzers on genuine repo types.
func (l *Loader) LoadFixtureDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var imports []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports = append(imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if len(imports) > 0 {
		if err := l.loadDeps(imports...); err != nil {
			return nil, err
		}
	}
	info := newInfo()
	conf := l.typesConfig(nil)
	tpkg, err := conf.Check(asPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check fixture %s: %w", dir, err)
	}
	return &Package{
		Path:  asPath,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// loadDeps loads the full dependency closure of patterns into l.pkgs.
// Callers hold l.mu.
func (l *Loader) loadDeps(patterns ...string) error {
	all, err := l.goList(true, patterns...)
	if err != nil {
		return err
	}
	// go list -deps emits dependencies before dependents, so a single
	// forward pass can type-check with every import already resolved.
	for _, lp := range all {
		if l.pkgs[lp.ImportPath] != nil {
			continue
		}
		p, err := l.check(lp)
		if err != nil {
			return err
		}
		l.pkgs[lp.ImportPath] = p
	}
	return nil
}

// check parses and type-checks one listed package.
func (l *Loader) check(lp *listPackage) (*Package, error) {
	if lp.Error != nil {
		return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
	}
	if lp.ImportPath == "unsafe" {
		return &Package{Path: "unsafe", Name: "unsafe", Standard: true, Fset: l.Fset, Types: types.Unsafe}, nil
	}
	mode := parser.SkipObjectResolution
	if !lp.Standard {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if !lp.Standard {
		info = newInfo()
	}
	conf := l.typesConfig(lp.ImportMap)
	tpkg, err := conf.Check(lp.ImportPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", lp.ImportPath, err)
	}
	p := &Package{
		Path:     lp.ImportPath,
		Name:     lp.Name,
		Dir:      lp.Dir,
		Standard: lp.Standard,
		Fset:     l.Fset,
		Types:    tpkg,
	}
	if !lp.Standard {
		p.Files = files
		p.Info = info
	}
	return p, nil
}

func (l *Loader) typesConfig(importMap map[string]string) *types.Config {
	return &types.Config{
		Importer: &mapImporter{loader: l, importMap: importMap},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// mapImporter resolves imports against the loader's memo, applying the
// importing package's ImportMap first (std-vendored paths like
// golang.org/x/net/... resolve to vendor/golang.org/x/net/...).
type mapImporter struct {
	loader    *Loader
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.loader.pkgs[path]; ok {
		return p.Types, nil
	}
	// Fall back to the compiler's export data for anything go list
	// -deps did not surface (defensive; should not happen in practice).
	return importer.Default().Import(path)
}

// goList shells out to `go list -json` (with -deps when deps is true)
// and decodes the JSON stream. CGO is disabled so file lists are the
// pure-Go ones go/types can check without a C toolchain.
func (l *Loader) goList(deps bool, patterns ...string) ([]*listPackage, error) {
	args := []string{"list", "-e", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

package core

import (
	"runtime"

	"repro/internal/matrix"
)

// This file is the row-parallel execution substrate of the incremental
// update path. The contract is bit-identity at every worker count: the
// parallel fan-outs below never change the order of floating-point
// accumulations INTO ANY ONE CELL — they only spread disjoint row (or
// cell) ownership across goroutines. Concretely:
//
//   - mulQ and the rank-one M accumulation are embarrassingly row
//     parallel: each output row's gather/multiply-add order is exactly
//     the serial loop's, so any contiguous row partition yields the
//     serial float stream.
//   - The S write-backs assign every unordered pair {a, b} to the
//     worker owning row min(a, b); within one owner the (at most two)
//     contributions a pair receives are applied in the same order the
//     serial scan lands them — for Inc-SR that is the claim order of the
//     M rows, replayed through the workspace's rowPos ledger.
//     Stores advertise how concurrent owners may write through the
//     ConcurrentWriteStore contract (store.go): packed folds a pair
//     into the min row's chunk, so chunk-aligned partitions make owners
//     conflict-free; dense splits into an upper-triangle phase and a
//     mirror phase so no two goroutines ever touch one cell.
//   - Per-worker dirty rows and affected-pair counts accumulate in
//     worker-private scratch and merge in worker order after the
//     barrier, so the merged result is deterministic no matter which
//     goroutine finishes first.
//
// The goroutines themselves are a persistent pool owned by the
// Workspace: spawned once (a cold path, see ensurePool), then fed tasks
// over per-worker channels, which keeps a warm parallel Apply at zero
// heap allocations. SetWorkers must only be called between updates (the
// engine serializes it under its writer mutex).

// autoMinN is the smallest node count at which Workers == 0 (auto)
// resolves to a parallel update: below it the per-update work is so
// small that fan-out overhead dominates, so auto stays serial. An
// explicit Workers > 1 always parallelizes — that is what lets the
// equivalence suites drive the parallel path on tiny graphs.
const autoMinN = 2048

// parTask names one row-partitioned fan-out job; parameters travel in
// the Workspace's staged par* fields, written before dispatch and read
// only after the barrier (the channel handoff orders them).
type parTask int

const (
	taskMulQ parTask = iota
	taskAddOuter
	taskUSRWriteback
	taskUSRMirror
	taskSRAccum
	taskSRWriteback
	taskSRMirror
	taskSRScrub
)

// workerScratch is one worker's private write-back accumulation state:
// the dirty rows it marked and the affected-pair count it tallied,
// merged deterministically (worker order) after the barrier. The pad
// keeps neighboring workers' hot counters off one cache line.
type workerScratch struct {
	dirtyMark []bool
	dirtyRows []int
	affected  int
	_         [72]byte
}

// mark records row r into the worker-private dirty set.
//
//simrank:noalloc
func (sc *workerScratch) mark(r int) {
	if !sc.dirtyMark[r] {
		sc.dirtyMark[r] = true
		sc.dirtyRows = append(sc.dirtyRows, r)
	}
}

// updatePool is the persistent goroutine pool: worker w (1-based; chunk
// 0 always runs inline on the dispatching goroutine) blocks on jobs[w-1]
// and reports each completed task on done.
type updatePool struct {
	jobs []chan parTask
	done chan struct{}
	size int // spawned goroutines = max fan-out minus the inline chunk
}

// SetWorkers reconfigures the update-path worker count (0 = auto:
// GOMAXPROCS for n ≥ autoMinN, serial below; 1 = serial; > 1 = that
// many goroutines). It tears the pool down so the next parallel
// dispatch respawns at the new width, and therefore MUST NOT run
// concurrently with an update — the engine calls it between updates,
// under the same writer mutex that serializes Apply.
func (ws *Workspace) SetWorkers(workers int) {
	if workers < 0 {
		workers = 0
	}
	if workers == ws.workers {
		return
	}
	ws.workers = workers
	ws.StopPool()
}

// StopPool terminates the persistent worker goroutines (idempotent).
// Callers that drop a Workspace with a live pool — engine teardown,
// AddNodes' rebuild — must stop it first or the blocked goroutines leak
// for the process lifetime.
func (ws *Workspace) StopPool() {
	if ws.pool == nil {
		return
	}
	for _, ch := range ws.pool.jobs {
		close(ch)
	}
	ws.pool = nil
}

// resolveWorkers maps the configured worker count to this update's
// effective fan-out width — a pure function of (workers, n), so the
// serial/parallel choice is deterministic per configuration.
//
//simrank:noalloc
func (ws *Workspace) resolveWorkers() int {
	w := ws.workers
	if w == 0 {
		if ws.n < autoMinN {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > ws.n {
		w = ws.n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ensurePool (re)spawns the persistent worker goroutines for a fan-out
// of parts. One-time warm-up: every allocation here (channels, the
// goroutines themselves) happens once per SetWorkers, after which warm
// dispatches reuse the pool allocation-free.
//
//simrank:coldpath
func (ws *Workspace) ensurePool(parts int) {
	if ws.pool != nil && ws.pool.size >= parts-1 {
		return
	}
	ws.StopPool()
	p := &updatePool{
		jobs: make([]chan parTask, parts-1),
		done: make(chan struct{}, parts-1),
		size: parts - 1,
	}
	for i := range p.jobs {
		ch := make(chan parTask, 1)
		p.jobs[i] = ch
		w := i + 1
		go func() {
			for task := range ch {
				ws.runChunk(task, w)
				p.done <- struct{}{}
			}
		}()
	}
	ws.pool = p
}

// ensureParScratch sizes the per-worker scratch and the partition
// bounds for a fan-out of parts. One-time warm-up, like ensurePool.
//
//simrank:coldpath
func (ws *Workspace) ensureParScratch(parts int) {
	for len(ws.wscratch) < parts {
		ws.wscratch = append(ws.wscratch, workerScratch{})
	}
	for i := 0; i < parts; i++ {
		if len(ws.wscratch[i].dirtyMark) < ws.n {
			ws.wscratch[i].dirtyMark = make([]bool, ws.n)
		}
	}
	if len(ws.bounds) < parts+1 {
		ws.bounds = make([]int, parts+1)
	}
}

// parRun fans the staged task out: chunks 1..parts−1 go to the pool,
// chunk 0 runs inline, and the barrier completes when every worker has
// reported. Channel sends/receives of scalar values allocate nothing,
// so a warm dispatch is free of heap traffic.
//
//simrank:noalloc
func (ws *Workspace) parRun(task parTask, parts int) {
	ws.ensurePool(parts)
	p := ws.pool
	for w := 1; w < parts; w++ {
		p.jobs[w-1] <- task
	}
	ws.runChunk(task, 0)
	for w := 1; w < parts; w++ {
		<-p.done
	}
}

// runChunk executes worker w's chunk [bounds[w], bounds[w+1]) of the
// staged task.
//
//simrank:noalloc
func (ws *Workspace) runChunk(task parTask, w int) {
	lo, hi := ws.bounds[w], ws.bounds[w+1]
	switch task {
	case taskMulQ:
		ws.mulQRange(ws.parDst, ws.parX, lo, hi)
	case taskAddOuter:
		matrix.AddOuterRows(ws.mDense, 1, ws.parX, ws.parY, lo, hi)
	case taskUSRWriteback:
		ws.usrWritebackRange(w, lo, hi)
	case taskUSRMirror:
		ws.usrMirrorRange(lo, hi)
	case taskSRAccum:
		ws.srAccumRange(lo, hi)
	case taskSRWriteback:
		ws.srWritebackRange(w, lo, hi)
	case taskSRMirror:
		ws.srMirrorRange(lo, hi)
	case taskSRScrub:
		ws.srScrubRange(lo, hi)
	}
}

// evenBounds partitions k items into parts contiguous, evenly sized
// ranges — the right split when per-item work is uniform (mulQ rows,
// M-row accumulations, scrubs).
//
//simrank:noalloc
func (ws *Workspace) evenBounds(k, parts int) {
	for w := 0; w <= parts; w++ {
		ws.bounds[w] = w * k / parts
	}
}

// mergeScratch folds the per-worker dirty sets and affected-pair
// tallies into the workspace records in worker order — the same merged
// result no matter which goroutine finished first — clearing each
// worker's scratch for the next update.
//
//simrank:noalloc
func (ws *Workspace) mergeScratch(parts int) int {
	affected := 0
	for w := 0; w < parts; w++ {
		sc := &ws.wscratch[w]
		affected += sc.affected
		sc.affected = 0
		for _, r := range sc.dirtyRows {
			sc.dirtyMark[r] = false
			ws.markDirty(r)
		}
		sc.dirtyRows = sc.dirtyRows[:0]
	}
	return affected
}

// mulQPar is mulQ fanned across parts workers: output rows partition
// evenly, each row's gather order is the serial one.
//
//simrank:noalloc
func (ws *Workspace) mulQPar(dst, x []float64, parts int) {
	if parts <= 1 {
		ws.mulQRange(dst, x, 0, ws.n)
		return
	}
	ws.evenBounds(ws.n, parts)
	ws.parDst, ws.parX = dst, x
	ws.parRun(taskMulQ, parts)
	ws.parDst, ws.parX = nil, nil
}

// addOuterPar accumulates x·yᵀ into the dense M scratch across parts
// workers (Inc-uSR's per-iteration rank-one term).
//
//simrank:noalloc
func (ws *Workspace) addOuterPar(x, y []float64, parts int) {
	if parts <= 1 {
		matrix.AddOuterRows(ws.mDense, 1, x, y, 0, ws.n)
		return
	}
	ws.evenBounds(ws.n, parts)
	ws.parX, ws.parY = x, y
	ws.parRun(taskAddOuter, parts)
	ws.parX, ws.parY = nil, nil
}

// usrBounds partitions rows 0..n−1 by upper-triangle area (row a weighs
// n−a, its pair count including the diagonal) so Inc-uSR's triangular
// write-back balances, aligning every boundary to the store's
// concurrent-write granularity.
//
//simrank:noalloc
func (ws *Workspace) usrBounds(parts int, cs ConcurrentWriteStore) {
	n := ws.n
	total := n * (n + 1) / 2
	area, r := 0, 0
	ws.bounds[0] = 0
	for w := 1; w < parts; w++ {
		target := total * w / parts
		for r < n && area < target {
			area += n - r
			r++
		}
		for r2 := cs.AlignConcurrentBoundary(r); r < r2; r++ {
			area += n - r
		}
		ws.bounds[w] = r
	}
	ws.bounds[parts] = n
}

// mirrorBounds partitions rows by lower-triangle area (row b weighs b)
// for the dense mirror phase. No store alignment: the mirror phase only
// runs on the dense layout, whose boundary is every row.
//
//simrank:noalloc
func (ws *Workspace) mirrorBounds(parts int) {
	n := ws.n
	total := n * (n - 1) / 2
	area, r := 0, 0
	ws.bounds[0] = 0
	for w := 1; w < parts; w++ {
		target := total * w / parts
		for r < n && area < target {
			area += r
			r++
		}
		ws.bounds[w] = r
	}
	ws.bounds[parts] = n
}

// usrWritebackParallel is Inc-uSR's S̃ = S + M + Mᵀ fanned across parts
// workers: each worker owns a contiguous row range and writes its rows'
// diagonal and upper-triangle cells; every unordered pair is visited by
// exactly one worker, with the delta computed in the serial operand
// order (M[a][b] + M[b][a]), so the stored bits cannot depend on the
// partition. Returns the merged affected-pair count.
//
//simrank:noalloc
func (ws *Workspace) usrWritebackParallel(s SimStore, cs ConcurrentWriteStore, parts int) int {
	mirror := cs.BeginConcurrentWrites()
	ws.usrBounds(parts, cs)
	ws.parS, ws.parMirror = s, mirror
	ws.parRun(taskUSRWriteback, parts)
	affected := ws.mergeScratch(parts)
	if mirror {
		// Dense phase 2: write the lower-triangle mirrors, restricted to
		// the dirty rows phase 1 recorded (now merged into ws.dirtyMark).
		ws.mirrorBounds(parts)
		ws.parRun(taskUSRMirror, parts)
	}
	ws.parS = nil
	return affected
}

// usrWritebackRange is one worker's Inc-uSR phase-1 chunk: rows
// lo..hi−1, diagonal plus upper triangle — the serial loop body with
// writes routed per the store's concurrent contract and bookkeeping
// kept worker-private: dirty rows land in the worker's scratch (sc.mark)
// and reach markDirty in mergeScratch after the barrier.
//
//simrank:nodirty
//simrank:noalloc
func (ws *Workspace) usrWritebackRange(w, lo, hi int) {
	s, mirror, m, n := ws.parS, ws.parMirror, ws.mDense, ws.n
	sc := &ws.wscratch[w]
	for a := lo; a < hi; a++ {
		mrow := m.Row(a)
		d := mrow[a] + m.At(a, a)
		if d > ZeroTol || d < -ZeroTol {
			sc.affected++
		}
		if d != 0 {
			sc.mark(a)
			s.Add(a, a, d)
		}
		for b := a + 1; b < n; b++ {
			d := mrow[b] + m.At(b, a)
			if d > ZeroTol || d < -ZeroTol {
				sc.affected += 2
			}
			if d != 0 {
				sc.mark(a)
				sc.mark(b)
				if mirror {
					s.Add(a, b, d)
				} else {
					s.AddSym(a, b, d)
				}
			}
		}
	}
}

// usrMirrorRange is one worker's Inc-uSR phase-2 chunk on the dense
// layout: for its rows b it lands the lower-triangle cell (b, a) of
// every pair phase 1 wrote, recomputing the identical delta from the
// untouched M. Rows (and columns) outside the merged dirty set cannot
// hold a written pair and are skipped. Every row written here was
// already marked dirty by phase 1's scratch merge.
//
//simrank:nodirty
//simrank:noalloc
func (ws *Workspace) usrMirrorRange(lo, hi int) {
	s, m := ws.parS, ws.mDense
	for b := lo; b < hi; b++ {
		if !ws.dirtyMark[b] {
			continue
		}
		mrowB := m.Row(b)
		for a := 0; a < b; a++ {
			if !ws.dirtyMark[a] {
				continue
			}
			// The serial operand order, bit for bit: M[a][b] + M[b][a].
			if d := m.At(a, b) + mrowB[a]; d != 0 {
				s.Add(b, a, d)
			}
		}
	}
}

// srAccumRange is one worker's slice of Inc-SR's rank-one term
// ξ·ηᵀ: M rows indexed by xi.supp[lo..hi−1], every row pre-claimed
// serially (pool draws and rowSupp bookkeeping don't race), each row's
// inner accumulation exactly the serial loop's.
//
//simrank:noalloc
func (ws *Workspace) srAccumRange(lo, hi int) {
	xi, eta := ws.parXi, ws.parEta
	for k := lo; k < hi; k++ {
		a := xi.supp[k]
		va := xi.vals[a]
		row := ws.mRows[a]
		if ws.parDenseEta {
			for b, vb := range eta.vals {
				row[b] += va * vb
			}
		} else {
			for _, b := range eta.supp {
				row[b] += va * eta.vals[b]
			}
		}
	}
}

// srWritebackParallel is Inc-SR's pruned S̃ = S + M + Mᵀ fanned across
// parts workers. Ownership is by unordered pair: row r = min(a, b) owns
// {a, b}, so the owner list is every row in the pruned row support or
// the column support, scanned ascending. Each owner applies a pair's
// one or two contributions in the order the serial scan lands them —
// the claim order of the M rows, compared through the rowPos ledger —
// keeping the stored bits partition-independent. M is scrubbed only
// after the barriers — the owners read other workers' M rows — then
// returned to the pool serially. Returns the affected-pair count.
//
//simrank:noalloc
func (ws *Workspace) srWritebackParallel(s SimStore, cs ConcurrentWriteStore, parts int) int {
	ws.ownerRows = ws.ownerRows[:0]
	for r := 0; r < ws.n; r++ {
		if ws.rowMark[r] || ws.colSupp.mark[r] {
			ws.ownerRows = append(ws.ownerRows, r)
		}
	}
	mirror := cs.BeginConcurrentWrites()
	ws.srOwnerBounds(parts, cs)
	ws.parS, ws.parMirror = s, mirror
	ws.parRun(taskSRWriteback, parts)
	affected := ws.mergeScratch(parts)
	if mirror {
		ws.parRun(taskSRMirror, parts) // same owner partition
	}
	ws.evenBounds(len(ws.rowSupp), parts)
	ws.parRun(taskSRScrub, parts)
	for _, a := range ws.rowSupp {
		ws.rowPool = append(ws.rowPool, ws.mRows[a])
		ws.mRows[a] = nil
	}
	ws.parS = nil
	return affected
}

// srOwnerBounds partitions the owner-row list into parts contiguous
// ranges, advancing each boundary until consecutive owners fall on
// opposite sides of a store write boundary (chunk-aligned on packed, so
// no two workers ever touch one chunk; every row is a boundary on
// dense).
//
//simrank:noalloc
func (ws *Workspace) srOwnerBounds(parts int, cs ConcurrentWriteStore) {
	rows := ws.ownerRows
	k := len(rows)
	ws.bounds[0] = 0
	idx := 0
	for w := 1; w < parts; w++ {
		if target := k * w / parts; idx < target {
			idx = target
		}
		for idx > 0 && idx < k && cs.AlignConcurrentBoundary(rows[idx-1]+1) > rows[idx] {
			idx++
		}
		ws.bounds[w] = idx
	}
	ws.bounds[parts] = k
}

// srAdd lands one serial AddSym(a, b, v) under the concurrent contract:
// packed keeps the symmetric call (one backing cell either way); dense
// phase 1 writes only the pair's canonical upper cell — the mirror cell
// is phase 2's. Dirty-row reporting is the caller's: every srAdd site
// marks both rows into its worker scratch.
//
//simrank:nodirty
//simrank:noalloc
func srAdd(s SimStore, mirror bool, a, b int, v float64) {
	if mirror {
		if a > b {
			a, b = b, a
		}
		s.Add(a, b, v)
	} else {
		s.AddSym(a, b, v)
	}
}

// srWritebackRange is one worker's Inc-SR phase-1 chunk: owner rows
// ownerRows[lo..hi−1]. Owner r handles every pair {r, x}, x > r,
// completely: the min-row contribution M[r][x] (exists when r is a
// claimed row and x in the column support) and the max-row contribution
// M[x][r] (x claimed, r in the column support) are applied in the claim
// order of rows r and x — the exact per-cell add sequence of the serial
// rowSupp scan. Dirty rows accumulate in the worker's scratch (sc.mark)
// and reach markDirty in mergeScratch after the barrier.
//
//simrank:nodirty
//simrank:noalloc
func (ws *Workspace) srWritebackRange(w, lo, hi int) {
	s, mirror, colSupp := ws.parS, ws.parMirror, ws.colSupp
	sc := &ws.wscratch[w]
	for k := lo; k < hi; k++ {
		r := ws.ownerRows[k]
		inRow, inCol := ws.rowMark[r], colSupp.mark[r]
		if inRow && inCol {
			// Diagonal pair {r, r}: the single AddSym lands v twice on the
			// one cell, exactly as the serial scan's.
			v := ws.mRows[r][r]
			if v > ZeroTol || v < -ZeroTol {
				s.AddSym(r, r, v)
				sc.affected++
				sc.mark(r)
			}
		}
		// Pairs {r, x}, x > r, x in the column support: one or both
		// contributions live here.
		for _, x := range colSupp.supp {
			if x <= r {
				continue
			}
			var v1, v2 float64
			c1, c2 := false, false
			if inRow {
				v1 = ws.mRows[r][x]
				c1 = v1 > ZeroTol || v1 < -ZeroTol
			}
			if inCol && ws.rowMark[x] {
				v2 = ws.mRows[x][r]
				c2 = v2 > ZeroTol || v2 < -ZeroTol
			}
			if !c1 && !c2 {
				continue
			}
			if c1 && c2 && ws.rowPos[x] < ws.rowPos[r] {
				// Row x was claimed first: the serial scan lands M[x][r]
				// before M[r][x].
				srAdd(s, mirror, x, r, v2)
				srAdd(s, mirror, r, x, v1)
			} else {
				if c1 {
					srAdd(s, mirror, r, x, v1)
				}
				if c2 {
					srAdd(s, mirror, x, r, v2)
				}
			}
			sc.affected += 2
			sc.mark(r)
			sc.mark(x)
		}
		// Pairs {r, x}, x > r, x a claimed row outside the column support:
		// only the max-row contribution M[x][r] can exist.
		if inCol {
			for _, x := range ws.rowSupp {
				if x <= r || colSupp.mark[x] {
					continue
				}
				v := ws.mRows[x][r]
				if v <= ZeroTol && v >= -ZeroTol {
					continue
				}
				srAdd(s, mirror, x, r, v)
				sc.affected += 2
				sc.mark(r)
				sc.mark(x)
			}
		}
	}
}

// srMirrorRange is one worker's Inc-SR mirror chunk on the dense
// layout: for its owner rows x it lands the lower-triangle cell (x, r),
// r < x, of every pair phase 1 wrote, applying the same contributions
// in the same claim order — a serial AddSym feeds both mirror cells the
// identical add sequence. Every row written here was already marked
// dirty by phase 1's scratch merge.
//
//simrank:nodirty
//simrank:noalloc
func (ws *Workspace) srMirrorRange(lo, hi int) {
	s, colSupp := ws.parS, ws.colSupp
	for k := lo; k < hi; k++ {
		x := ws.ownerRows[k]
		inColX, inRowX := colSupp.mark[x], ws.rowMark[x]
		// Pairs {r, x}, r < x, r a claimed row: one or both contributions.
		for _, r := range ws.rowSupp {
			if r >= x {
				continue
			}
			var v1, v2 float64
			c1, c2 := false, false
			if inColX {
				v1 = ws.mRows[r][x]
				c1 = v1 > ZeroTol || v1 < -ZeroTol
			}
			if inRowX && colSupp.mark[r] {
				v2 = ws.mRows[x][r]
				c2 = v2 > ZeroTol || v2 < -ZeroTol
			}
			if c1 && c2 && ws.rowPos[x] < ws.rowPos[r] {
				s.Add(x, r, v2)
				s.Add(x, r, v1)
			} else {
				if c1 {
					s.Add(x, r, v1)
				}
				if c2 {
					s.Add(x, r, v2)
				}
			}
		}
		// Pairs {r, x}, r < x, r in the column support but not claimed:
		// only the max-row contribution M[x][r] can exist.
		if inRowX {
			mrow := ws.mRows[x]
			for _, r := range colSupp.supp {
				if r >= x || ws.rowMark[r] {
					continue
				}
				v := mrow[r]
				if v > ZeroTol || v < -ZeroTol {
					s.Add(x, r, v)
				}
			}
		}
	}
}

// srScrubRange zeroes one worker's slice of the M rows (every non-zero
// lies in the column support) so the rows return to the pool clean.
//
//simrank:noalloc
func (ws *Workspace) srScrubRange(lo, hi int) {
	colSupp := ws.colSupp
	for k := lo; k < hi; k++ {
		mrow := ws.mRows[ws.rowSupp[k]]
		for _, b := range colSupp.supp {
			mrow[b] = 0
		}
	}
}

package core

// SimStore is the similarity-store surface the incremental update
// algorithms write through. It is the minimal subset of
// internal/simstore.Store that Inc-SR/Inc-uSR need, declared here (and
// satisfied structurally) so core does not depend on the store package:
// *matrix.Dense implements it directly, as do the dense and packed
// backends of internal/simstore.
//
// Contract notes:
//
//   - Row may return a view aliasing store-internal scratch that is only
//     valid until the next Row/ColInto/mutation call — the algorithms
//     below respect that (each row's reads complete before the next row
//     is fetched), which is what lets a packed-triangular store serve
//     rows from one reusable buffer with zero allocations.
//   - AddSym(i, j, v) applies v·(e_i·e_jᵀ + e_j·e_iᵀ): both mirror
//     entries accumulate v (the diagonal twice). It is the only mutation
//     the update write-backs perform, so a symmetric store applies it to
//     one backing cell.
//   - ColInto(dst, j) copies [S]_{·,j}; symmetric stores may serve it
//     from row j's storage.
type SimStore interface {
	N() int
	At(i, j int) float64
	Add(i, j int, v float64)
	AddSym(i, j int, v float64)
	Row(i int) []float64
	ColInto(dst []float64, j int)
}

package core

// SimStore is the similarity-store surface the incremental update
// algorithms write through. It is the minimal subset of
// internal/simstore.Store that Inc-SR/Inc-uSR need, declared here (and
// satisfied structurally) so core does not depend on the store package:
// *matrix.Dense implements it directly, as do the dense and packed
// backends of internal/simstore.
//
// Contract notes:
//
//   - Row may return a view aliasing store-internal scratch that is only
//     valid until the next Row/ColInto/mutation call — the algorithms
//     below respect that (each row's reads complete before the next row
//     is fetched), which is what lets a packed-triangular store serve
//     rows from one reusable buffer with zero allocations.
//   - AddSym(i, j, v) applies v·(e_i·e_jᵀ + e_j·e_iᵀ): both mirror
//     entries accumulate v (the diagonal twice). It is the only mutation
//     the update write-backs perform, so a symmetric store applies it to
//     one backing cell.
//   - ColInto(dst, j) copies [S]_{·,j}; symmetric stores may serve it
//     from row j's storage.
type SimStore interface {
	N() int
	At(i, j int) float64
	Add(i, j int, v float64)
	AddSym(i, j int, v float64)
	Row(i int) []float64
	ColInto(dst []float64, j int)
}

// ConcurrentWriteStore is the optional concurrent write-back mode of a
// SimStore: a store implementing it accepts the parallel update
// write-back (parallel.go), where several goroutines mutate disjoint
// cells simultaneously. A store that does not implement it always gets
// the serial write-back, whatever the worker setting.
//
// Contract:
//
//   - BeginConcurrentWrites is called once, serially, before the
//     goroutines fan out. It must perform any internal pre-write work
//     that is unsafe to run concurrently (e.g. a copy-on-write flip),
//     so that afterwards Add/AddSym calls on disjoint cells from
//     different goroutines are race-free. Its return value says whether
//     the layout stores both triangles: true means AddSym would touch
//     two cells, so the parallel write-back writes each pair's
//     canonical (upper) cell with Add and lands the mirrors in a
//     separate phase (no cell is ever touched by two goroutines);
//     false means the layout folds a pair into one cell and AddSym is
//     already a single-cell write.
//   - AlignConcurrentBoundary(r) rounds a tentative partition boundary
//     r up to the store's concurrent-write granularity (returning a
//     row in [r, N()]): two goroutines may only write concurrently when
//     every pair {a, b} they own lies on opposite sides of an aligned
//     boundary of min(a, b). Dense layouts return r unchanged; the
//     packed triangle rounds up to its next chunk-start row, since
//     writing a cell may mutate chunk-level bookkeeping.
type ConcurrentWriteStore interface {
	BeginConcurrentWrites() (mirror bool)
	AlignConcurrentBoundary(r int) int
}

package core

import (
	"repro/internal/graph"
	"repro/internal/matrix"
)

// Stats reports the work done by one incremental update.
type Stats struct {
	// Iterations actually performed (K).
	Iterations int
	// AffectedPairs is the number of node-pairs whose similarity the
	// algorithm touched: nnz(M_K + M_Kᵀ). For Inc-uSR this is counted
	// post hoc over the dense M; for Inc-SR it is the size of the pruned
	// support — the paper's |AFF|.
	AffectedPairs int
	// FrontierArea is Σ_k |A_k|·|B_k| / (K+1): the average per-iteration
	// affected area (Fig. 2e's numerator). Zero for Inc-uSR, which has no
	// frontier (every pair is visited).
	FrontierArea float64
	// AuxFloats estimates the intermediate memory used, in float64 counts
	// (Fig. 3's "intermediate space": auxiliary vectors plus M, excluding
	// the n² similarity output itself).
	AuxFloats int
	// DirtyRows lists the rows of S the update wrote, unsorted — a
	// superset of the rows whose bits actually changed (an accumulation
	// can round to a no-op) and exactly the invalidation set a per-row
	// query cache — and the re-sync set a copy-on-write store — needs.
	// This is the data already tracked for AffectedPairs, exposed
	// instead of discarded; Inc-SR reports the pruned support, Inc-uSR
	// every row with a non-zero delta.
	//
	// Lifetime contract: the slice aliases workspace scratch and is
	// valid only from the update's return until the next update through
	// the same Workspace — the very next IncSR/IncUSR call rewrites the
	// backing array in place. Consumers must either finish with it
	// before then (the engine threads it into its cache and store
	// bookkeeping synchronously, inside the same mutation) or detach a
	// copy at a well-defined point (the MVCC facade snapshots it once,
	// at view-publish time). Never store the slice itself.
	DirtyRows []int
}

// lambda computes the scalar λ of Eq. (29):
// λ = [S]_{i,i} + (1/C)[S]_{j,j} − 2·[w]_j − 1/C + 1, where w = Q·[S]_{·,i}.
//
//simrank:noalloc
func lambda(s SimStore, i, j int, wj, c float64) float64 {
	return s.At(i, i) + s.At(j, j)/c - 2*wj - 1/c + 1
}

// gammaDense fills gam with the auxiliary vector γ of Theorem 3
// (Eqs. 27–28) given the memoized w = Q·[S]_{·,i}, the scalar λ, the old
// S, and the update. dj is the in-degree of j in the old graph.
//
//simrank:noalloc
func gammaDense(gam []float64, s SimStore, w []float64, lam float64, up graph.Update, dj int, c float64) {
	n := s.N()
	i, j := up.Edge.From, up.Edge.To
	if up.Insert {
		if dj == 0 {
			// γ = w + ½[S]_{i,i}·e_j
			copy(gam, w)
			gam[j] += 0.5 * s.At(i, i)
			return
		}
		// γ = 1/(d_j+1)·( w − (1/C)[S]_{·,j} + (λ/(2(d_j+1)) + 1/C − 1)·e_j )
		f := 1 / float64(dj+1)
		for b := 0; b < n; b++ {
			gam[b] = f * (w[b] - s.At(b, j)/c)
		}
		gam[j] += f * (lam/(2*float64(dj+1)) + 1/c - 1)
		return
	}
	if dj == 1 {
		// γ = ½[S]_{i,i}·e_j − w
		for b := 0; b < n; b++ {
			gam[b] = -w[b]
		}
		gam[j] += 0.5 * s.At(i, i)
		return
	}
	// γ = 1/(d_j−1)·( (1/C)[S]_{·,j} − w + (λ/(2(d_j−1)) − 1/C + 1)·e_j )
	f := 1 / float64(dj-1)
	for b := 0; b < n; b++ {
		gam[b] = f * (s.At(b, j)/c - w[b])
	}
	gam[j] += f * (lam/(2*float64(dj-1)) - 1/c + 1)
}

// IncUSR is Algorithm 1 (Inc-uSR): given the old graph g, its matrix-form
// similarities s, a unit update, the damping factor c ∈ (0,1) and the
// iteration count k, it returns the new similarity matrix for g ⊕ update
// without any matrix-matrix multiplication.
//
// g and s are not modified; the caller applies the update to g afterwards
// (or uses the public facade, which does both).
func IncUSR(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) (*matrix.Dense, Stats, error) {
	out := s.Clone()
	st, err := IncUSRInPlace(g, out, up, c, k)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, st, nil
}

// IncUSRInPlace is IncUSR mutating s directly, sparing the Θ(n²)
// defensive copy of the non-mutating wrapper. Like IncSRInPlace it builds
// a fresh Workspace per call; stream callers should use
// Workspace.IncUSR, which reuses the dense scratch across updates.
func IncUSRInPlace(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) (Stats, error) {
	return NewWorkspace(g).IncUSR(s, up, c, k)
}

// IncUSR performs one unit update on s (Algorithm 1) using the
// workspace's maintained Q and in-degrees and its persistent dense
// scratch (M plus the ξ/η/w/γ vectors, allocated on first use) — zero
// heap allocations once warm. s is mutated only after all validation; the
// workspace must reflect the pre-update graph and is left unchanged (call
// ApplyUpdate separately once the graph changes). Like IncSR it accepts
// any SimStore: all writes flow through Add/AddSym so symmetric layouts
// apply each unordered pair's delta to one backing cell.
//
//simrank:noalloc
func (ws *Workspace) IncUSR(s SimStore, up graph.Update, c float64, k int) (Stats, error) {
	n := ws.n
	if s.N() != n {
		return Stats{}, &ErrBadUpdate{up, "similarity matrix size mismatch"}
	}
	uv, err := ws.decompose(up)
	if err != nil {
		return Stats{}, err
	}
	ws.ensureDense()
	ws.resetDirty()
	parts := ws.resolveWorkers()
	if parts > 1 {
		ws.ensureParScratch(parts)
	}
	i, j := up.Edge.From, up.Edge.To
	dj := ws.din[j]

	// Lines 3–4: w := Q·[S]_{·,i};  λ := [S]_{i,i} + [S]_{j,j}/C − 2[w]_j − 1/C + 1.
	si := ws.si
	s.ColInto(si, i)
	w := ws.wD
	ws.mulQPar(w, si, parts)
	lam := lambda(s, i, j, w[j], c)

	// Lines 5–12: γ per Theorem 3.
	gam := ws.gamD
	gammaDense(gam, s, w, lam, up, dj, c)

	// Lines 13–17: iterate ξ, η; accumulate M = Σ ξ_k·η_kᵀ.
	// Q̃·x is applied implicitly as Q·x + (vᵀx)·u (Theorem 1).
	xi := ws.xiD
	for v := range xi {
		xi[v] = 0
	}
	xi[j] = c
	eta := ws.etaD
	copy(eta, gam)
	m := ws.mDense
	m.Zero()
	// M₀ = C·e_j·γᵀ: the unit-vector outer product touches only row j.
	matrix.Axpy(c, gam, m.Row(j))
	uj := j // u = uv·e_j
	xiNext, etaNext := ws.xiNextD, ws.etaNextD
	for iter := 0; iter < k; iter++ {
		vxi := ws.vws.dotDense(xi)
		ws.mulQPar(xiNext, xi, parts)
		matrix.ScaleVec(c, xiNext)
		xiNext[uj] += c * vxi * uv

		veta := ws.vws.dotDense(eta)
		ws.mulQPar(etaNext, eta, parts)
		etaNext[uj] += veta * uv

		ws.addOuterPar(xiNext, etaNext, parts)
		xi, xiNext = xiNext, xi
		eta, etaNext = etaNext, eta
	}

	// Line 18: S̃ := S + M_K + M_Kᵀ. All reads of the old S happened in
	// the preprocessing above, so mutating in place is safe. Each
	// unordered pair is visited once: its delta d = [M]_{a,b} + [M]_{b,a}
	// is the same for both mirror entries (float addition commutes), so
	// AddSym lands the identical bits the old per-ordered-entry loop
	// wrote, while a packed store pays one cell instead of two. The
	// diagonal keeps its single Add of d = 2·[M]_{a,a}.
	//
	// With parts > 1 and a store that supports concurrent write-back,
	// the upper-triangle scan fans out across row-partitioned workers
	// (usrWritebackParallel) — each pair still gets its one delta,
	// computed from the same operands in the same order, so the stored
	// bits match the serial scan exactly.
	affected := 0
	if cs, ok := s.(ConcurrentWriteStore); ok && parts > 1 {
		affected = ws.usrWritebackParallel(s, cs, parts)
	} else {
		for a := 0; a < n; a++ {
			mrow := m.Row(a)
			d := mrow[a] + m.At(a, a)
			if d > ZeroTol || d < -ZeroTol {
				affected++
			}
			// Any exactly non-zero delta dirties the row: deltas inside
			// (0, ZeroTol] are still added to S, so a tolerance-based test
			// here would let a cache serve stale bits. Zero deltas are
			// skipped outright — adding 0.0 cannot change a stored value,
			// and the skip is what keeps a copy-on-write store's write set
			// equal to the dirty set (an unconditional AddSym over all n²/2
			// pairs would COW the entire sealed store on every update).
			if d != 0 {
				ws.markDirty(a)
				s.Add(a, a, d)
			}
			for b := a + 1; b < n; b++ {
				d := mrow[b] + m.At(b, a)
				if d > ZeroTol || d < -ZeroTol {
					affected += 2 // both ordered entries, as the dense scan counted
				}
				if d != 0 {
					ws.markDirty(a)
					ws.markDirty(b)
					s.AddSym(a, b, d)
				}
			}
		}
	}
	ws.vws.reset()
	st := Stats{
		Iterations:    k,
		AffectedPairs: affected,
		AuxFloats:     n*n + 4*n, // M plus ξ, η, w, γ
		DirtyRows:     ws.dirtyRows,
	}
	return st, nil
}

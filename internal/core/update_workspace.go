package core

import (
	"repro/internal/graph"
	"repro/internal/matrix"
)

// qEnt is one entry of a dynamic sparse row: column index and value.
type qEnt struct {
	idx int
	val float64
}

// Workspace is the persistent compute state of one engine: the transition
// matrices maintained incrementally across updates, plus every scratch
// buffer the Inc-SR/Inc-uSR hot paths need. With a warm Workspace a unit
// update performs zero heap allocations and never rebuilds the O(m)
// transposed transition matrix — an edge change touches one row of Qᵀ and
// rescales the d_j entries of column j, O(d_j·log d) total.
//
// A Workspace mirrors one graph: construct it with NewWorkspace and call
// ApplyUpdate after every update applied to the graph (the engine facade
// does both). It is not safe for concurrent use.
type Workspace struct {
	n   int
	din []int // in-degrees, maintained by ApplyUpdate

	// q holds Q: row j lists (i, 1/d_j) for i ∈ I(j), sorted by i — the
	// gather layout of Inc-uSR's mat-vecs and of the batch recompute. qt
	// holds Qᵀ: row b lists (a, 1/d_a) for a ∈ O(b), sorted by a — the
	// sparse scatter layout of Inc-SR's ξ/η iteration; it is transposed
	// from q on the first IncSR (see ensureIncSR) and maintained
	// incrementally from then on. Sorted rows make every result
	// independent of Go's map iteration order.
	q  [][]qEnt
	qt [][]qEnt

	// vws (Theorem 1's v) and si (the [S]_{·,i} column copy) serve both
	// update algorithms and are always present.
	vws *wsVec
	si  []float64

	// dirtyMark/dirtyRows record the rows of S the most recent update
	// actually wrote — the invalidation signal a read-path cache needs
	// (Stats.DirtyRows aliases dirtyRows). Reset at the start of every
	// update, so the slice handed out stays valid until the next one.
	dirtyMark []bool
	dirtyRows []int

	// Inc-SR scratch, allocated on first use (see ensureIncSR): the
	// sparse workspace vectors of Algorithm 2, the pooled rows of the
	// update matrix M, and the touched-pair bitset. All are reset (in
	// time proportional to their support) at the end of each update, so
	// steady state reuses the same memory.
	b0, w, gam, colSupp *wsVec
	xi, xiNext, etaNext *wsVec
	mRows               [][]float64
	rowSupp             []int
	rowPool             [][]float64
	touched             *pairBitset

	// Inc-uSR dense scratch, allocated on first use (pruning disabled).
	mDense                                 *matrix.Dense
	wD, gamD, xiD, etaD, xiNextD, etaNextD []float64

	// Batch-recompute scratch, allocated on first use.
	scratch *matrix.Dense
	qCSR    matrix.CSR

	// Row-parallel update state (parallel.go): the configured worker
	// count, the persistent goroutine pool, per-worker write-back
	// scratch, the partition bounds of the in-flight fan-out, and the
	// staged task parameters the pooled workers read. rowMark mirrors
	// membership of mRows/rowSupp as O(1) lookups and rowPos records each
	// claimed row's position in rowSupp — the claim-order ledger the
	// parallel write-back uses to replay the serial per-cell accumulation
	// order (both allocated with the Inc-SR scratch); ownerRows lists the
	// rows owning at least one written pair in the pruned write-back.
	workers     int
	pool        *updatePool
	wscratch    []workerScratch
	bounds      []int
	rowMark     []bool
	rowPos      []int
	ownerRows   []int
	parS        SimStore
	parMirror   bool
	parDst      []float64
	parX, parY  []float64
	parXi       *wsVec
	parEta      *wsVec
	parDenseEta bool
}

// NewWorkspace builds the persistent update state for g's current
// topology: O(n + m) time and the only allocation point of the steady
// state.
func NewWorkspace(g *graph.DiGraph) *Workspace {
	n := g.N()
	ws := &Workspace{
		n:         n,
		din:       make([]int, n),
		q:         make([][]qEnt, n),
		vws:       newWsVec(n),
		si:        make([]float64, n),
		dirtyMark: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		ws.din[v] = g.InDegree(v)
	}
	for j := 0; j < n; j++ {
		d := ws.din[j]
		if d == 0 {
			continue
		}
		wv := 1 / float64(d)
		for _, i := range g.InNeighbors(j) { // ascending
			ws.q[j] = append(ws.q[j], qEnt{i, wv})
		}
	}
	return ws
}

// ensureIncSR allocates the Inc-SR-only state on first use: Qᵀ
// (transposed from the maintained Q; iterating target rows in ascending
// order leaves every Qᵀ row sorted) plus the sparse scratch vectors and
// the touched-pair bitset. Inc-uSR-only and batch-only workspaces never
// pay for any of it.
func (ws *Workspace) ensureIncSR() {
	if ws.qt != nil {
		return
	}
	n := ws.n
	qt := make([][]qEnt, n)
	for a := 0; a < n; a++ {
		for _, e := range ws.q[a] {
			qt[e.idx] = append(qt[e.idx], qEnt{a, e.val})
		}
	}
	ws.qt = qt
	ws.b0 = newWsVec(n)
	ws.w = newWsVec(n)
	ws.gam = newWsVec(n)
	ws.colSupp = newWsVec(n)
	ws.xi = newWsVec(n)
	ws.xiNext = newWsVec(n)
	ws.etaNext = newWsVec(n)
	ws.mRows = make([][]float64, n)
	ws.rowMark = make([]bool, n)
	ws.rowPos = make([]int, n)
	ws.touched = newPairBitset(n)
}

// N returns the node count the workspace was built for.
func (ws *Workspace) N() int { return ws.n }

// resetDirty clears the dirty-row record for the next update, in time
// proportional to the rows previously marked.
//
//simrank:noalloc
func (ws *Workspace) resetDirty() {
	for _, r := range ws.dirtyRows {
		ws.dirtyMark[r] = false
	}
	ws.dirtyRows = ws.dirtyRows[:0]
}

// markDirty records that the update wrote row r of S.
//
//simrank:noalloc
func (ws *Workspace) markDirty(r int) {
	if !ws.dirtyMark[r] {
		ws.dirtyMark[r] = true
		ws.dirtyRows = append(ws.dirtyRows, r)
	}
}

// searchEnt returns the position of idx in the sorted row (or the
// insertion point if absent).
//
//simrank:noalloc
func searchEnt(row []qEnt, idx int) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid].idx < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// hasEdge reports whether edge (i, j) is present, i.e. i ∈ I(j).
//
//simrank:noalloc
func (ws *Workspace) hasEdge(i, j int) bool {
	row := ws.q[j]
	p := searchEnt(row, i)
	return p < len(row) && row[p].idx == i
}

// setEnt overwrites the value at idx, which must be present.
//
//simrank:noalloc
func setEnt(row []qEnt, idx int, v float64) {
	row[searchEnt(row, idx)].val = v
}

// insertEnt adds (idx, v) keeping the row sorted; idx must be absent.
//
//simrank:noalloc
func insertEnt(row []qEnt, idx int, v float64) []qEnt {
	p := searchEnt(row, idx)
	row = append(row, qEnt{})
	copy(row[p+1:], row[p:])
	row[p] = qEnt{idx, v}
	return row
}

// removeEnt deletes idx, which must be present, keeping the row sorted.
//
//simrank:noalloc
func removeEnt(row []qEnt, idx int) []qEnt {
	p := searchEnt(row, idx)
	copy(row[p:], row[p+1:])
	return row[:len(row)-1]
}

// ApplyUpdate folds one unit update into the maintained Q, Qᵀ and
// in-degrees. Call it exactly when the update is applied to the graph,
// after IncSR/IncUSR (which read the pre-update state). An insertion or
// deletion of (i, j) touches row i of Qᵀ plus the d_j entries of column j
// (found by binary search in their rows), and row j of Q — O(d) work, no
// O(m) rebuild, no sort.
//
//simrank:noalloc
func (ws *Workspace) ApplyUpdate(up graph.Update) {
	i, j := up.Edge.From, up.Edge.To
	hasQt := ws.qt != nil // Qᵀ is lazy; when absent it is rebuilt from Q on demand
	if up.Insert {
		dj := ws.din[j]
		nv := 1 / float64(dj+1)
		if hasQt {
			// Column j of Qᵀ lives in the rows of j's current in-neighbors.
			for _, e := range ws.q[j] {
				setEnt(ws.qt[e.idx], j, nv)
			}
			ws.qt[i] = insertEnt(ws.qt[i], j, nv)
		}
		row := ws.q[j]
		for t := range row {
			row[t].val = nv
		}
		ws.q[j] = insertEnt(row, i, nv)
		ws.din[j] = dj + 1
		return
	}
	dj := ws.din[j]
	if hasQt {
		ws.qt[i] = removeEnt(ws.qt[i], j)
	}
	ws.q[j] = removeEnt(ws.q[j], i)
	if dj > 1 {
		nv := 1 / float64(dj-1)
		row := ws.q[j]
		for t := range row {
			row[t].val = nv
		}
		if hasQt {
			for _, e := range row {
				setEnt(ws.qt[e.idx], j, nv)
			}
		}
	}
	ws.din[j] = dj - 1
}

// decompose validates the update and computes the rank-one decomposition
// ΔQ = u·vᵀ of Theorem 1 into the workspace: v is written to ws.vws
// (support order: i first, then I(j) ascending) and the single magnitude
// of u = uv·e_j is returned. Allocation-free Decompose.
//
//simrank:noalloc
func (ws *Workspace) decompose(up graph.Update) (uv float64, err error) {
	i, j := up.Edge.From, up.Edge.To
	if i < 0 || i >= ws.n || j < 0 || j >= ws.n {
		return 0, &ErrBadUpdate{up, "node out of range"}
	}
	dj := ws.din[j]
	v := ws.vws
	if up.Insert {
		if ws.hasEdge(i, j) {
			return 0, &ErrBadUpdate{up, "edge already present"}
		}
		if dj == 0 {
			v.add(i, 1)
			return 1, nil
		}
		v.add(i, 1)
		w := 1 / float64(dj)
		for _, e := range ws.q[j] {
			v.add(e.idx, -w) // subtract [Q]_{j,t} = 1/d_j
		}
		v.compact(ZeroTol)
		return 1 / float64(dj+1), nil
	}
	if !ws.hasEdge(i, j) {
		return 0, &ErrBadUpdate{up, "edge absent"}
	}
	if dj == 1 {
		v.add(i, -1)
		return 1, nil
	}
	v.add(i, -1)
	w := 1 / float64(dj)
	for _, e := range ws.q[j] {
		v.add(e.idx, w) // add [Q]_{j,t}
	}
	v.compact(ZeroTol)
	return 1 / float64(dj-1), nil
}

// mulQ computes dst = Q·x for dense x, gathering along the sorted rows of
// the maintained Q — entrywise the same left-to-right accumulation as a
// CSR mat-vec on the freshly built transition matrix.
//
//simrank:noalloc
func (ws *Workspace) mulQ(dst, x []float64) {
	ws.mulQRange(dst, x, 0, ws.n)
}

// mulQRange is mulQ restricted to output rows lo..hi−1 — the row slab a
// parallel fan-out dispatches (mulQPar); each output entry's gather
// order is the serial one regardless of the partition.
//
//simrank:noalloc
func (ws *Workspace) mulQRange(dst, x []float64, lo, hi int) {
	for a := lo; a < hi; a++ {
		var s float64
		for _, e := range ws.q[a] {
			s += e.val * x[e.idx]
		}
		dst[a] = s
	}
}

// scatterQ computes dst += Q·x for workspace vectors:
// [Q·x]_a = Σ_{b ∈ I(a)} x_b / d_a, accumulated along the rows of Qᵀ.
//
//simrank:noalloc
func (ws *Workspace) scatterQ(x, dst *wsVec) {
	for _, b := range x.supp {
		xb := x.vals[b]
		for _, e := range ws.qt[b] {
			dst.add(e.idx, xb*e.val)
		}
	}
}

// TransitionCSR materializes the maintained Q into a reusable CSR (rows
// sorted, identical to graph.BackwardTransition of the mirrored graph).
// The returned matrix aliases workspace storage and is valid until the
// next ApplyUpdate; steady-state calls allocate nothing once the backing
// arrays have grown to the graph's edge count.
//
//simrank:noalloc
func (ws *Workspace) TransitionCSR() *matrix.CSR {
	csr := &ws.qCSR
	if csr.RowPtr == nil {
		csr.RowPtr = make([]int, ws.n+1) //simrank:allocok first-use growth; steady state reuses the backing array
	}
	csr.RowsN, csr.ColsN = ws.n, ws.n
	csr.ColIdx = csr.ColIdx[:0]
	csr.Val = csr.Val[:0]
	for j := 0; j < ws.n; j++ {
		for _, e := range ws.q[j] {
			csr.ColIdx = append(csr.ColIdx, e.idx)
			csr.Val = append(csr.Val, e.val)
		}
		csr.RowPtr[j+1] = len(csr.ColIdx)
	}
	return csr
}

// DenseScratch returns the workspace's n×n ping-pong buffer for batch
// recomputation, allocated on first use and reused afterwards.
func (ws *Workspace) DenseScratch() *matrix.Dense {
	if ws.scratch == nil {
		ws.scratch = matrix.NewDense(ws.n, ws.n)
	}
	return ws.scratch
}

// ensureDense allocates the Inc-uSR dense scratch on first use.
func (ws *Workspace) ensureDense() {
	if ws.mDense != nil {
		return
	}
	n := ws.n
	ws.mDense = matrix.NewDense(n, n)
	ws.wD = make([]float64, n)
	ws.gamD = make([]float64, n)
	ws.xiD = make([]float64, n)
	ws.etaD = make([]float64, n)
	ws.xiNextD = make([]float64, n)
	ws.etaNextD = make([]float64, n)
}

// mRow returns the (zeroed) dense M row for a, drawing from the row pool,
// and records a in rowSupp on first touch.
//
//simrank:noalloc
func (ws *Workspace) mRow(a int) []float64 {
	row := ws.mRows[a]
	if row == nil {
		if p := len(ws.rowPool); p > 0 {
			row = ws.rowPool[p-1]
			ws.rowPool = ws.rowPool[:p-1]
		} else {
			row = make([]float64, ws.n) //simrank:allocok pool miss; the pool converges to the peak frontier and misses stop
		}
		ws.mRows[a] = row
		ws.rowMark[a] = true
		ws.rowPos[a] = len(ws.rowSupp)
		ws.rowSupp = append(ws.rowSupp, a)
	}
	return row
}

package core

// wsVec is a dense-backed sparse vector: values live in a dense array for
// O(1) random access and branch-free accumulation, while the support list
// keeps iteration proportional to the number of non-zeros. This is the
// classic sparse-solver workspace layout; it is what lets Inc-SR's pruned
// iteration beat the dense Inc-uSR even when the affected area is large
// (map-based sparsity would pay ~50× per touched entry).
type wsVec struct {
	n    int
	vals []float64
	mark []bool
	supp []int
}

func newWsVec(n int) *wsVec {
	return &wsVec{n: n, vals: make([]float64, n), mark: make([]bool, n)}
}

// add accumulates v into entry i.
//
//simrank:noalloc
func (w *wsVec) add(i int, v float64) {
	if !w.mark[i] {
		w.mark[i] = true
		w.supp = append(w.supp, i)
	}
	w.vals[i] += v
}

// at returns entry i.
func (w *wsVec) at(i int) float64 { return w.vals[i] }

// nnz returns the support size (including entries that may have summed to
// ~0; call compact first for an exact count).
func (w *wsVec) nnz() int { return len(w.supp) }

// compact drops support entries with |v| ≤ tol, so later iterations do
// not propagate structural zeros.
//
//simrank:noalloc
func (w *wsVec) compact(tol float64) {
	kept := w.supp[:0]
	for _, i := range w.supp {
		v := w.vals[i]
		if v > tol || v < -tol {
			kept = append(kept, i)
			continue
		}
		w.vals[i] = 0
		w.mark[i] = false
	}
	w.supp = kept
}

// reset clears the vector for reuse.
//
//simrank:noalloc
func (w *wsVec) reset() {
	for _, i := range w.supp {
		w.vals[i] = 0
		w.mark[i] = false
	}
	w.supp = w.supp[:0]
}

// dot returns the inner product with another workspace vector, iterating
// the smaller support.
//
//simrank:noalloc
func (w *wsVec) dot(o *wsVec) float64 {
	a, b := w, o
	if len(b.supp) < len(a.supp) {
		a, b = b, a
	}
	var s float64
	for _, i := range a.supp {
		s += a.vals[i] * b.vals[i]
	}
	return s
}

// dotDense returns the inner product with a dense vector, iterating the
// workspace support in insertion order.
//
//simrank:noalloc
func (w *wsVec) dotDense(x []float64) float64 {
	var s float64
	for _, i := range w.supp {
		s += w.vals[i] * x[i]
	}
	return s
}

// pairBitset tracks which node-pairs an update touched, for the |AFF|
// statistic, at one bit per pair. Dirty words are recorded so a reusable
// bitset resets in O(words touched) instead of O(n²/64).
type pairBitset struct {
	n     int
	words []uint64
	dirty []int // indices of words with at least one bit set
	count int
}

func newPairBitset(n int) *pairBitset {
	return &pairBitset{n: n, words: make([]uint64, (n*n+63)/64)}
}

// set marks pair (a, b) and reports whether it was newly set.
//
//simrank:noalloc
func (p *pairBitset) set(a, b int) bool {
	idx := a*p.n + b
	w, bit := idx/64, uint64(1)<<(idx%64)
	if p.words[w]&bit != 0 {
		return false
	}
	if p.words[w] == 0 {
		p.dirty = append(p.dirty, w)
	}
	p.words[w] |= bit
	p.count++
	return true
}

// reset clears every set bit for reuse, touching only dirty words.
//
//simrank:noalloc
func (p *pairBitset) reset() {
	for _, w := range p.dirty {
		p.words[w] = 0
	}
	p.dirty = p.dirty[:0]
	p.count = 0
}

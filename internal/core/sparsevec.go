// Package core implements the paper's primary contribution: exact
// incremental SimRank for unit link updates.
//
//   - IncUSR (Algorithm 1) characterizes the SimRank update ΔS via the
//     rank-one Sylvester equation M = C·Q̃·M·Q̃ᵀ + C·u·wᵀ (Eq. 13) and
//     computes M with only matrix-vector and vector-vector kernels,
//     giving O(Kn²) per update.
//   - IncSR (Algorithm 2) additionally prunes "unaffected areas"
//     (Theorem 4): the auxiliary vectors ξ_k, η_k and the update matrix M
//     are kept sparse, so only node-pairs inside the affected frontier
//     A_k×B_k are ever touched, giving O(K(nd + |AFF|)).
//
// Both algorithms take the graph *before* the update, the old similarity
// matrix S (matrix form, Eq. 2), and the unit update, and return the new
// similarity matrix for the updated graph. They are exact in the paper's
// sense: the result converges to the new fixed point as K grows, and
// IncSR ≡ IncUSR entrywise (pruning is lossless).
package core

import "sort"

// ZeroTol is the tolerance below which a similarity or update entry is
// treated as structurally zero when building the Theorem-4 affected sets.
// Exact arithmetic would use 0; floats need a little slack.
const ZeroTol = 1e-12

// SparseVec is a sparse n-vector keyed by index. The zero value is not
// ready for use; construct with NewSparseVec.
type SparseVec struct {
	N   int
	Val map[int]float64
}

// NewSparseVec returns an empty sparse vector of dimension n.
func NewSparseVec(n int) *SparseVec {
	return &SparseVec{N: n, Val: make(map[int]float64)}
}

// Set assigns entry i, deleting it when |v| ≤ ZeroTol.
func (s *SparseVec) Set(i int, v float64) {
	if v > ZeroTol || v < -ZeroTol {
		s.Val[i] = v
	} else {
		delete(s.Val, i)
	}
}

// Add accumulates v into entry i.
func (s *SparseVec) Add(i int, v float64) {
	s.Set(i, s.Val[i]+v)
}

// At returns entry i (0 when absent).
func (s *SparseVec) At(i int) float64 { return s.Val[i] }

// NNZ returns the number of stored entries.
func (s *SparseVec) NNZ() int { return len(s.Val) }

// Dot returns the inner product with a dense vector. Accumulation runs
// in sorted index order: float addition is not associative, so folding
// in map order would make the low bits of the result depend on Go's
// randomized iteration — the exact non-determinism the repair==rebuild
// bit-equality guarantees forbid.
func (s *SparseVec) Dot(x []float64) float64 {
	var sum float64
	for _, i := range s.Support() {
		sum += s.Val[i] * x[i]
	}
	return sum
}

// DotSparse returns the inner product with another sparse vector,
// accumulated in sorted index order for the same bit-determinism reason
// as Dot.
func (s *SparseVec) DotSparse(o *SparseVec) float64 {
	a, b := s, o
	if b.NNZ() < a.NNZ() {
		a, b = b, a
	}
	var sum float64
	for _, i := range a.Support() {
		sum += a.Val[i] * b.Val[i]
	}
	return sum
}

// Scale multiplies every entry by a in place.
func (s *SparseVec) Scale(a float64) {
	if a == 0 {
		s.Val = make(map[int]float64)
		return
	}
	for i := range s.Val {
		s.Val[i] *= a
	}
}

// Clone returns an independent copy.
func (s *SparseVec) Clone() *SparseVec {
	c := NewSparseVec(s.N)
	for i, v := range s.Val {
		c.Val[i] = v
	}
	return c
}

// Dense expands to a dense slice.
func (s *SparseVec) Dense() []float64 {
	out := make([]float64, s.N)
	//simrank:orderinvariant distinct keys write distinct slots; no accumulation
	for i, v := range s.Val {
		out[i] = v
	}
	return out
}

// Support returns the sorted index support.
func (s *SparseVec) Support() []int {
	idx := make([]int, 0, len(s.Val))
	//simrank:orderinvariant collects keys only; sorted before return
	for i := range s.Val {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// SparseMat is a sparse matrix stored as rows of sparse vectors; it backs
// the pruned update matrix M_k of Inc-SR.
type SparseMat struct {
	N    int
	Rows map[int]*SparseVec
}

// NewSparseMat returns an empty n×n sparse matrix.
func NewSparseMat(n int) *SparseMat {
	return &SparseMat{N: n, Rows: make(map[int]*SparseVec)}
}

// Add accumulates v into entry (i, j).
func (m *SparseMat) Add(i, j int, v float64) {
	row, ok := m.Rows[i]
	if !ok {
		row = NewSparseVec(m.N)
		m.Rows[i] = row
	}
	row.Add(j, v)
	if row.NNZ() == 0 {
		delete(m.Rows, i)
	}
}

// At returns entry (i, j).
func (m *SparseMat) At(i, j int) float64 {
	if row, ok := m.Rows[i]; ok {
		return row.At(j)
	}
	return 0
}

// NNZ returns the number of stored entries.
func (m *SparseMat) NNZ() int {
	n := 0
	//simrank:orderinvariant integer addition is commutative and exact
	for _, row := range m.Rows {
		n += row.NNZ()
	}
	return n
}

// AddOuter accumulates x·yᵀ into m for sparse x, y.
func (m *SparseMat) AddOuter(x, y *SparseVec) {
	//simrank:orderinvariant each distinct (i,j) is written exactly once per call
	for i, xi := range x.Val {
		//simrank:orderinvariant each distinct (i,j) is written exactly once per call
		for j, yj := range y.Val {
			m.Add(i, j, xi*yj)
		}
	}
}

// Each calls fn for every stored entry (unordered). Callers must fold
// commutatively or write to distinct slots — entry order is
// deliberately unspecified.
func (m *SparseMat) Each(fn func(i, j int, v float64)) {
	//simrank:orderinvariant contract: callers fold commutatively (unordered by doc)
	for i, row := range m.Rows {
		//simrank:orderinvariant contract: callers fold commutatively (unordered by doc)
		for j, v := range row.Val {
			fn(i, j, v)
		}
	}
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseVecSetAddAt(t *testing.T) {
	v := NewSparseVec(5)
	v.Set(2, 1.5)
	v.Add(2, 0.5)
	if v.At(2) != 2 || v.NNZ() != 1 {
		t.Fatalf("v = %v", v.Val)
	}
	v.Add(2, -2) // cancels to zero → entry dropped
	if v.NNZ() != 0 || v.At(2) != 0 {
		t.Fatalf("cancellation not dropped: %v", v.Val)
	}
	v.Set(1, 1e-15) // below ZeroTol → dropped
	if v.NNZ() != 0 {
		t.Fatal("tiny entry should be dropped")
	}
}

func TestSparseVecDot(t *testing.T) {
	v := NewSparseVec(4)
	v.Set(0, 2)
	v.Set(3, -1)
	if v.Dot([]float64{1, 5, 5, 4}) != -2 {
		t.Fatalf("Dot = %v", v.Dot([]float64{1, 5, 5, 4}))
	}
}

func TestSparseVecDotSparse(t *testing.T) {
	a, b := NewSparseVec(5), NewSparseVec(5)
	a.Set(1, 2)
	a.Set(3, 3)
	b.Set(3, 4)
	b.Set(4, 9)
	if a.DotSparse(b) != 12 || b.DotSparse(a) != 12 {
		t.Fatal("DotSparse mismatch")
	}
}

func TestSparseVecScaleCloneDense(t *testing.T) {
	v := NewSparseVec(3)
	v.Set(1, 2)
	c := v.Clone()
	c.Scale(3)
	if v.At(1) != 2 || c.At(1) != 6 {
		t.Fatal("Clone/Scale broken")
	}
	c.Scale(0)
	if c.NNZ() != 0 {
		t.Fatal("Scale(0) should empty the vector")
	}
	d := v.Dense()
	if d[1] != 2 || d[0] != 0 || len(d) != 3 {
		t.Fatalf("Dense = %v", d)
	}
}

func TestSparseVecSupport(t *testing.T) {
	v := NewSparseVec(10)
	v.Set(7, 1)
	v.Set(2, 1)
	v.Set(5, 1)
	sup := v.Support()
	if len(sup) != 3 || sup[0] != 2 || sup[1] != 5 || sup[2] != 7 {
		t.Fatalf("Support = %v", sup)
	}
}

func TestSparseMatAddAtNNZ(t *testing.T) {
	m := NewSparseMat(4)
	m.Add(1, 2, 3)
	m.Add(1, 2, -3) // cancels: row disappears
	if m.NNZ() != 0 || len(m.Rows) != 0 {
		t.Fatalf("cancellation not cleaned: nnz=%d rows=%d", m.NNZ(), len(m.Rows))
	}
	m.Add(0, 0, 1)
	m.Add(3, 1, 2)
	if m.NNZ() != 2 || m.At(3, 1) != 2 || m.At(2, 2) != 0 {
		t.Fatal("SparseMat state wrong")
	}
}

func TestSparseMatAddOuterEach(t *testing.T) {
	x, y := NewSparseVec(3), NewSparseVec(3)
	x.Set(0, 2)
	y.Set(1, 3)
	y.Set(2, -1)
	m := NewSparseMat(3)
	m.AddOuter(x, y)
	if m.At(0, 1) != 6 || m.At(0, 2) != -2 || m.NNZ() != 2 {
		t.Fatal("AddOuter wrong")
	}
	sum := 0.0
	m.Each(func(i, j int, v float64) { sum += v })
	if sum != 4 {
		t.Fatalf("Each sum = %v", sum)
	}
}

// Property: sparse dot equals dense dot.
func TestQuickSparseDotAgreesWithDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		v := NewSparseVec(n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				v.Set(i, rng.NormFloat64())
			}
			x[i] = rng.NormFloat64()
		}
		dense := v.Dense()
		var want float64
		for i := range dense {
			want += dense[i] * x[i]
		}
		diff := v.Dot(x) - want
		return diff < 1e-12 && diff > -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

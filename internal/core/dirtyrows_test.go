package core

import (
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/matrix"
)

// changedRows returns the rows where before and after differ in any bit —
// the ground truth DirtyRows must cover.
func changedRows(before, after *matrix.Dense) map[int]bool {
	rows := make(map[int]bool)
	for a := 0; a < before.Rows; a++ {
		br, ar := before.Row(a), after.Row(a)
		for b := range br {
			if br[b] != ar[b] {
				rows[a] = true
				break
			}
		}
	}
	return rows
}

// Every row whose similarity bits an update changes must appear in
// Stats.DirtyRows (it may overmark: an accumulation can round to a
// no-op), for both algorithms, across random graphs and streams. This is
// the soundness contract the engine's query-cache invalidation rests on.
func TestDirtyRowsCoverEveryChangedRow(t *testing.T) {
	for _, pruned := range []bool{true, false} {
		name := "Inc-uSR"
		if pruned {
			name = "Inc-SR"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(67))
			for trial := 0; trial < 4; trial++ {
				n := 6 + rng.Intn(20)
				g := randGraph(rng, n, 3*n)
				c, k := 0.6, 10
				s := batch.MatrixForm(g, c, k)
				ws := NewWorkspace(g)
				for step := 0; step < 10; step++ {
					up := randUpdate(rng, g)
					before := s.Clone()
					var (
						st  Stats
						err error
					)
					if pruned {
						st, err = ws.IncSR(s, up, c, k)
					} else {
						st, err = ws.IncUSR(s, up, c, k)
					}
					if err != nil {
						t.Fatal(err)
					}
					g.Apply(up)
					ws.ApplyUpdate(up)

					dirty := make(map[int]bool, len(st.DirtyRows))
					for _, r := range st.DirtyRows {
						if r < 0 || r >= n {
							t.Fatalf("step %d %v: dirty row %d out of range", step, up, r)
						}
						if dirty[r] {
							t.Fatalf("step %d %v: dirty row %d reported twice", step, up, r)
						}
						dirty[r] = true
					}
					for r := range changedRows(before, s) {
						if !dirty[r] {
							t.Fatalf("step %d %v: row %d changed but is not in DirtyRows %v",
								step, up, r, st.DirtyRows)
						}
					}
				}
			}
		})
	}
}

// A failed update must not clobber the previous update's DirtyRows: the
// slice stays valid until the next *successful* mutation, which is what
// lets the engine consume it after the error check.
func TestDirtyRowsSurviveRejectedUpdate(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	s := batch.MatrixForm(g, 0.6, 10)
	ws := NewWorkspace(g)

	up := graph.Update{Edge: graph.Edge{From: 0, To: 2}, Insert: false}
	st, err := ws.IncSR(s, up, 0.6, 10)
	if err != nil {
		t.Fatal(err)
	}
	g.Apply(up)
	ws.ApplyUpdate(up)
	want := append([]int(nil), st.DirtyRows...)
	if len(want) == 0 {
		t.Fatal("deleting a live edge dirtied no rows")
	}

	// Deleting it again must fail before any state is touched.
	if _, err := ws.IncSR(s, up, 0.6, 10); err == nil {
		t.Fatal("double delete did not fail")
	}
	for i, r := range st.DirtyRows {
		if want[i] != r {
			t.Fatalf("rejected update clobbered DirtyRows: %v, want %v", st.DirtyRows, want)
		}
	}
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/race"
)

// seedTransposedQ is the pre-workspace per-update Qᵀ build: O(m) triples
// plus the CSR sort, exactly what the incremental maintenance replaces.
func seedTransposedQ(g *graph.DiGraph, din []int) *matrix.CSR {
	is := make([]int, 0, g.M())
	js := make([]int, 0, g.M())
	vs := make([]float64, 0, g.M())
	for b := 0; b < g.N(); b++ {
		g.EachOutNeighbor(b, func(a int) {
			is = append(is, b)
			js = append(js, a)
			vs = append(vs, 1/float64(din[a]))
		})
	}
	return matrix.NewCSR(g.N(), g.N(), is, js, vs)
}

// seedIncSRInPlace is the pre-workspace implementation of IncSRInPlace,
// kept as the reference the workspace-backed path must reproduce
// bit-for-bit. The only change from the seed code is that adjacency is
// iterated in sorted order (InNeighbors/OutNeighbors instead of the
// unordered Each* map walks) — the workspace's sorted rows fix exactly
// that iteration order, and float accumulation is order-sensitive.
func seedIncSRInPlace(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) (Stats, error) {
	n := g.N()
	if s.Rows != n || s.Cols != n {
		return Stats{}, &ErrBadUpdate{up, "similarity matrix size mismatch"}
	}
	ro, err := Decompose(g, up)
	if err != nil {
		return Stats{}, err
	}
	i, j := up.Edge.From, up.Edge.To
	dj := g.InDegree(j)

	din := make([]int, n)
	for v := 0; v < n; v++ {
		din[v] = g.InDegree(v)
	}
	qt := seedTransposedQ(g, din)

	b0 := newWsVec(n)
	b0.add(j, 1)
	srow := s.Row(i)
	for y := 0; y < n; y++ {
		if srow[y] > ZeroTol || srow[y] < -ZeroTol {
			for _, b := range g.OutNeighbors(y) {
				if !b0.mark[b] {
					b0.add(b, 1)
				}
			}
		}
	}
	needF2 := (up.Insert && dj > 0) || (!up.Insert && dj > 1)
	if needF2 {
		jrow := s.Row(j)
		for y := 0; y < n; y++ {
			if (jrow[y] > ZeroTol || jrow[y] < -ZeroTol) && !b0.mark[y] {
				b0.add(y, 1)
			}
		}
	}

	si := s.Col(i)
	w := newWsVec(n)
	for _, b := range b0.supp {
		if din[b] == 0 {
			continue
		}
		var sum float64
		for _, y := range g.InNeighbors(b) {
			sum += si[y]
		}
		w.add(b, sum/float64(din[b]))
	}
	lam := lambda(s, i, j, w.at(j), c)
	gam := newWsVec(n)
	gammaWs(gam, s, w, lam, up, dj, c, b0)

	mRows := make([][]float64, n)
	var rowSupp []int
	colSupp := newWsVec(n)
	applyTerm := func(xi, eta *wsVec) {
		denseEta := len(eta.supp) > n/2
		for _, b := range eta.supp {
			if !colSupp.mark[b] {
				colSupp.add(b, 1)
			}
		}
		for _, a := range xi.supp {
			va := xi.vals[a]
			row := mRows[a]
			if row == nil {
				row = make([]float64, n)
				mRows[a] = row
				rowSupp = append(rowSupp, a)
			}
			if denseEta {
				for b, vb := range eta.vals {
					row[b] += va * vb
				}
			} else {
				for _, b := range eta.supp {
					row[b] += va * eta.vals[b]
				}
			}
		}
	}

	// v in the workspace layout, filled in the decompose support order
	// (i first, then I(j) ascending).
	vws := newWsVec(n)
	if up.Insert {
		vws.add(i, 1)
		if dj > 0 {
			f := 1 / float64(dj)
			for _, t := range g.InNeighbors(j) {
				vws.add(t, -f)
			}
			vws.compact(ZeroTol)
		}
	} else {
		vws.add(i, -1)
		if dj > 1 {
			f := 1 / float64(dj)
			for _, t := range g.InNeighbors(j) {
				vws.add(t, f)
			}
			vws.compact(ZeroTol)
		}
	}
	uv := ro.U.At(j)

	scatter := func(x, dst *wsVec) {
		for _, b := range x.supp {
			xb := x.vals[b]
			lo, hi := qt.RowPtr[b], qt.RowPtr[b+1]
			for kk := lo; kk < hi; kk++ {
				dst.add(qt.ColIdx[kk], xb*qt.Val[kk])
			}
		}
	}

	xi := newWsVec(n)
	xi.add(j, c)
	eta := gam
	applyTerm(xi, eta)

	xiNext, etaNext := newWsVec(n), newWsVec(n)
	var frontier float64
	peakAux := xi.nnz() + eta.nnz()
	for iter := 0; iter < k; iter++ {
		frontier += float64(xi.nnz()) * float64(eta.nnz())

		vxi := vws.dot(xi)
		xiNext.reset()
		scatter(xi, xiNext)
		for _, a := range xiNext.supp {
			xiNext.vals[a] *= c
		}
		xiNext.add(j, c*vxi*uv)
		xiNext.compact(ZeroTol)

		veta := vws.dot(eta)
		etaNext.reset()
		scatter(eta, etaNext)
		etaNext.add(j, veta*uv)
		etaNext.compact(ZeroTol)

		applyTerm(xiNext, etaNext)
		xi, xiNext = xiNext, xi
		eta, etaNext = etaNext, eta
		if a := xi.nnz() + eta.nnz(); a > peakAux {
			peakAux = a
		}
	}

	touched := newPairBitset(n)
	for _, a := range rowSupp {
		mrow := mRows[a]
		orow := s.Row(a)
		for _, b := range colSupp.supp {
			v := mrow[b]
			if v <= ZeroTol && v >= -ZeroTol {
				continue
			}
			orow[b] += v
			s.Data[b*n+a] += v
			touched.set(a, b)
			touched.set(b, a)
		}
	}

	iters := k
	if iters == 0 {
		iters = 1
	}
	return Stats{
		Iterations:    k,
		AffectedPairs: touched.count,
		FrontierArea:  frontier / float64(iters),
		AuxFloats:     len(rowSupp)*n + peakAux + len(touched.words) + w.nnz() + b0.nnz(),
	}, nil
}

// One persistent workspace folding a whole update stream must match the
// seed per-update implementation entry for entry, bit for bit — both the
// similarity matrices and the reported statistics.
func TestWorkspaceIncSRMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		n := 6 + rng.Intn(25)
		g := randGraph(rng, n, 3*n)
		c := 0.6
		k := 10
		sWs := batch.MatrixForm(g, c, k)
		sSeed := sWs.Clone()
		gSeed := g.Clone()
		ws := NewWorkspace(g)
		for step := 0; step < 12; step++ {
			up := randUpdate(rng, g)
			stWs, err := ws.IncSR(sWs, up, c, k)
			if err != nil {
				t.Fatal(err)
			}
			g.Apply(up)
			ws.ApplyUpdate(up)

			stSeed, err := seedIncSRInPlace(gSeed, sSeed, up, c, k)
			if err != nil {
				t.Fatal(err)
			}
			gSeed.Apply(up)

			if d := matrix.MaxAbsDiff(sWs, sSeed); d != 0 {
				t.Fatalf("trial %d step %d %v: workspace drifted %g from seed", trial, step, up, d)
			}
			// The seed predates DirtyRows; compare the scalar stats it
			// does report (DirtyRows has its own tests).
			if stWs.Iterations != stSeed.Iterations ||
				stWs.AffectedPairs != stSeed.AffectedPairs ||
				stWs.FrontierArea != stSeed.FrontierArea ||
				stWs.AuxFloats != stSeed.AuxFloats {
				t.Fatalf("trial %d step %d %v: stats %+v != seed %+v", trial, step, up, stWs, stSeed)
			}
		}
	}
}

// The incrementally-maintained Q, Qᵀ and in-degrees must equal a from-
// scratch workspace build after any update stream.
func TestWorkspaceMaintenanceMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(30)
		g := randGraph(rng, n, 2*n)
		ws := NewWorkspace(g)
		// Build Qᵀ up front so the stream exercises its incremental
		// maintenance, not a rebuild at comparison time; halfway through,
		// lateQt starts from a mid-stream lazy transpose and must converge
		// to the same state.
		ws.ensureIncSR()
		var lateQt *Workspace
		for step := 0; step < 40; step++ {
			up := randUpdate(rng, g)
			g.Apply(up)
			ws.ApplyUpdate(up)
			if step == 20 {
				lateQt = NewWorkspace(g)
				lateQt.ensureIncSR()
			} else if step > 20 {
				lateQt.ApplyUpdate(up)
			}
		}
		fresh := NewWorkspace(g)
		fresh.ensureIncSR()
		for v := 0; v < n; v++ {
			if ws.din[v] != fresh.din[v] {
				t.Fatalf("din[%d] = %d, want %d", v, ws.din[v], fresh.din[v])
			}
			if !rowsEqual(ws.q[v], fresh.q[v]) {
				t.Fatalf("Q row %d = %v, want %v", v, ws.q[v], fresh.q[v])
			}
			if !rowsEqual(ws.qt[v], fresh.qt[v]) {
				t.Fatalf("Qᵀ row %d = %v, want %v", v, ws.qt[v], fresh.qt[v])
			}
			if !rowsEqual(lateQt.qt[v], fresh.qt[v]) {
				t.Fatalf("late-transposed Qᵀ row %d = %v, want %v", v, lateQt.qt[v], fresh.qt[v])
			}
		}
		// And the materialized CSR must equal the graph's own build.
		got := ws.TransitionCSR()
		want := g.BackwardTransition()
		if matrix.MaxAbsDiff(got.Dense(), want.Dense()) != 0 {
			t.Fatal("TransitionCSR differs from BackwardTransition")
		}
	}
}

func rowsEqual(a, b []qEnt) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decompose must agree with the allocating Decompose (Theorem 1).
func TestWorkspaceDecomposeMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(12)
		g := randGraph(rng, n, 2*n)
		up := randUpdate(rng, g)
		ws := NewWorkspace(g)
		uv, err := ws.decompose(up)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := Decompose(g, up)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := uv, ro.U.At(up.Edge.To); got != want {
			t.Fatalf("uv = %v, want %v", got, want)
		}
		for v := 0; v < n; v++ {
			if got, want := ws.vws.at(v), ro.V.At(v); got != want {
				t.Fatalf("v[%d] = %v, want %v", v, got, want)
			}
		}
		// Invalid updates must leave an error and no partial state.
		bad := up
		bad.Insert = !bad.Insert
		ws2 := NewWorkspace(g)
		if _, err := ws2.decompose(bad); err == nil {
			t.Fatal("want error for inapplicable update")
		}
		if ws2.vws.nnz() != 0 {
			t.Fatal("failed decompose must not leave workspace state")
		}
	}
}

// The workspace-backed Inc-uSR must match the compat wrapper (which
// builds a fresh workspace per call) across a stream, proving the dense
// scratch is fully scrubbed between updates.
func TestWorkspaceIncUSRMatchesPerCall(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 15
	g := randGraph(rng, n, 3*n)
	c, k := 0.6, 8
	sWs := batch.MatrixForm(g, c, k)
	sRef := sWs.Clone()
	gRef := g.Clone()
	ws := NewWorkspace(g)
	for step := 0; step < 10; step++ {
		up := randUpdate(rng, g)
		if _, err := ws.IncUSR(sWs, up, c, k); err != nil {
			t.Fatal(err)
		}
		g.Apply(up)
		ws.ApplyUpdate(up)
		if _, err := IncUSRInPlace(gRef, sRef, up, c, k); err != nil {
			t.Fatal(err)
		}
		gRef.Apply(up)
		if d := matrix.MaxAbsDiff(sWs, sRef); d != 0 {
			t.Fatalf("step %d: persistent Inc-uSR drifted %g from per-call", step, d)
		}
	}
}

// Steady-state updates through a warm workspace must not allocate. The
// toggle re-inserts and re-deletes the same edges so graph-map and
// support-slice capacities settle after the warm-up pass.
func TestWorkspaceIncSRZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("zero-allocation assertion skipped under -race: detector instrumentation allocates, so AllocsPerRun cannot prove the guarantee")
	}
	rng := rand.New(rand.NewSource(71))
	n := 40
	g := randGraph(rng, n, 4*n)
	c, k := 0.6, 10
	s := batch.MatrixForm(g, c, k)
	ws := NewWorkspace(g)
	edges := g.Edges()[:4]
	toggle := func() {
		for _, e := range edges {
			for _, ins := range []bool{false, true} {
				up := graph.Update{Edge: e, Insert: ins}
				if _, err := ws.IncSR(s, up, c, k); err != nil {
					t.Fatal(err)
				}
				g.Apply(up)
				ws.ApplyUpdate(up)
			}
		}
	}
	toggle() // warm up pools and support capacities
	if allocs := testing.AllocsPerRun(20, toggle); allocs != 0 {
		t.Fatalf("warm Inc-SR allocated %v times per toggle pass, want 0", allocs)
	}
}

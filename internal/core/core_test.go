package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/matrix"
)

func randGraph(rng *rand.Rand, n, m int) *graph.DiGraph {
	if max := n * n; m > max/2 {
		m = max / 2 // keep headroom so random probing terminates fast
	}
	g := graph.New(n)
	for g.M() < m {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// randUpdate draws a random applicable unit update for g (insert an absent
// edge or delete a present one).
func randUpdate(rng *rand.Rand, g *graph.DiGraph) graph.Update {
	n := g.N()
	for {
		if g.M() > 0 && rng.Intn(2) == 0 {
			es := g.Edges()
			return graph.Update{Edge: es[rng.Intn(len(es))], Insert: false}
		}
		e := graph.Edge{From: rng.Intn(n), To: rng.Intn(n)}
		if !g.HasEdge(e.From, e.To) {
			return graph.Update{Edge: e, Insert: true}
		}
	}
}

// --- Theorem 1: ΔQ = u·vᵀ exactly -----------------------------------------

func checkRankOne(t *testing.T, g *graph.DiGraph, up graph.Update) {
	t.Helper()
	ro, err := Decompose(g, up)
	if err != nil {
		t.Fatalf("Decompose(%v): %v", up, err)
	}
	oldQ := g.BackwardTransition().Dense()
	g2 := g.Clone()
	if !g2.Apply(up) {
		t.Fatalf("update %v did not apply", up)
	}
	newQ := g2.BackwardTransition().Dense()
	want := matrix.NewDense(g.N(), g.N())
	for i := range want.Data {
		want.Data[i] = newQ.Data[i] - oldQ.Data[i]
	}
	got := matrix.Outer(ro.U.Dense(), ro.V.Dense())
	if d := matrix.MaxAbsDiff(got, want); d > 1e-14 {
		t.Fatalf("update %v: ‖u·vᵀ − ΔQ‖_max = %g", up, d)
	}
}

func TestDecomposeInsertFreshTarget(t *testing.T) {
	// d_j = 0 insertion: u = e_j, v = e_i.
	g := graph.FromEdges(3, []graph.Edge{{From: 1, To: 2}})
	up := graph.Update{Edge: graph.Edge{From: 2, To: 0}, Insert: true}
	checkRankOne(t, g, up)
	ro, _ := Decompose(g, up)
	if ro.U.At(0) != 1 || ro.U.NNZ() != 1 || ro.V.At(2) != 1 || ro.V.NNZ() != 1 {
		t.Fatalf("d_j=0 decomposition wrong: u=%v v=%v", ro.U.Val, ro.V.Val)
	}
}

func TestDecomposeInsertExistingTarget(t *testing.T) {
	// d_j > 0 insertion: u = e_j/(d_j+1), v = e_i − [Q]ᵀ_{j,·}.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 3}, {From: 1, To: 3}})
	up := graph.Update{Edge: graph.Edge{From: 2, To: 3}, Insert: true}
	checkRankOne(t, g, up)
	ro, _ := Decompose(g, up)
	if math.Abs(ro.U.At(3)-1.0/3) > 1e-15 {
		t.Fatalf("u_j = %v, want 1/3", ro.U.At(3))
	}
	if math.Abs(ro.V.At(2)-1) > 1e-15 || math.Abs(ro.V.At(0)+0.5) > 1e-15 {
		t.Fatalf("v = %v", ro.V.Val)
	}
}

func TestDecomposeDeleteLastInEdge(t *testing.T) {
	// d_j = 1 deletion: u = e_j, v = −e_i.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	up := graph.Update{Edge: graph.Edge{From: 0, To: 1}, Insert: false}
	checkRankOne(t, g, up)
	ro, _ := Decompose(g, up)
	if ro.U.At(1) != 1 || ro.V.At(0) != -1 {
		t.Fatalf("d_j=1 deletion wrong: u=%v v=%v", ro.U.Val, ro.V.Val)
	}
}

func TestDecomposeDeleteWithSiblings(t *testing.T) {
	// d_j > 1 deletion: u = e_j/(d_j−1), v = [Q]ᵀ_{j,·} − e_i.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 3}, {From: 1, To: 3}, {From: 2, To: 3}})
	up := graph.Update{Edge: graph.Edge{From: 0, To: 3}, Insert: false}
	checkRankOne(t, g, up)
}

func TestDecomposeSelfLoop(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 1}})
	checkRankOne(t, g, graph.Update{Edge: graph.Edge{From: 2, To: 1}, Insert: true})
	checkRankOne(t, g, graph.Update{Edge: graph.Edge{From: 1, To: 1}, Insert: false})
}

func TestDecomposeErrors(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	cases := []graph.Update{
		{Edge: graph.Edge{From: 0, To: 1}, Insert: true},   // already present
		{Edge: graph.Edge{From: 1, To: 2}, Insert: false},  // absent
		{Edge: graph.Edge{From: 0, To: 99}, Insert: true},  // out of range
		{Edge: graph.Edge{From: -1, To: 0}, Insert: false}, // out of range
	}
	for _, up := range cases {
		if _, err := Decompose(g, up); err == nil {
			t.Fatalf("update %v: want error", up)
		}
	}
}

func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randGraph(rng, n, 2*n)
		up := randUpdate(rng, g)
		ro, err := Decompose(g, up)
		if err != nil {
			return false
		}
		oldQ := g.BackwardTransition().Dense()
		g2 := g.Clone()
		g2.Apply(up)
		newQ := g2.BackwardTransition().Dense()
		diff := matrix.Outer(ro.U.Dense(), ro.V.Dense())
		for i := range diff.Data {
			diff.Data[i] -= newQ.Data[i] - oldQ.Data[i]
		}
		return diff.MaxAbs() < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- Inc-uSR exactness ------------------------------------------------------

// exactTol: with K=120 iterations and C ≤ 0.8, truncation error is far
// below float noise, so incremental and batch must agree almost exactly.
const exactK = 120
const exactTol = 1e-9

func checkIncremental(t *testing.T, g *graph.DiGraph, up graph.Update, c float64) {
	t.Helper()
	sOld := batch.MatrixForm(g, c, exactK)
	gotU, stU, err := IncUSR(g, sOld, up, c, exactK)
	if err != nil {
		t.Fatalf("IncUSR(%v): %v", up, err)
	}
	gotS, stS, err := IncSR(g, sOld, up, c, exactK)
	if err != nil {
		t.Fatalf("IncSR(%v): %v", up, err)
	}
	g2 := g.Clone()
	g2.Apply(up)
	want := batch.MatrixForm(g2, c, exactK)
	if d := matrix.MaxAbsDiff(gotU, want); d > exactTol {
		t.Fatalf("update %v: IncUSR vs batch diff %g", up, d)
	}
	if d := matrix.MaxAbsDiff(gotS, gotU); d > exactTol {
		t.Fatalf("update %v: IncSR vs IncUSR diff %g (pruning must be lossless)", up, d)
	}
	if stU.AffectedPairs < 0 || stS.AffectedPairs < 0 {
		t.Fatal("negative affected pairs")
	}
}

func TestIncUSRInsertCases(t *testing.T) {
	// Covers d_j = 0 and d_j > 0 insertions.
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}, {From: 2, To: 4},
	})
	checkIncremental(t, g, graph.Update{Edge: graph.Edge{From: 4, To: 3}, Insert: true}, 0.8) // d_3 = 0
	checkIncremental(t, g, graph.Update{Edge: graph.Edge{From: 4, To: 2}, Insert: true}, 0.8) // d_2 = 2
	checkIncremental(t, g, graph.Update{Edge: graph.Edge{From: 1, To: 4}, Insert: true}, 0.6) // d_4 = 1
}

func TestIncUSRDeleteCases(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}, {From: 2, To: 4},
	})
	checkIncremental(t, g, graph.Update{Edge: graph.Edge{From: 2, To: 4}, Insert: false}, 0.8) // d_4 = 1
	checkIncremental(t, g, graph.Update{Edge: graph.Edge{From: 0, To: 2}, Insert: false}, 0.8) // d_2 = 2
	checkIncremental(t, g, graph.Update{Edge: graph.Edge{From: 3, To: 2}, Insert: false}, 0.6)
}

func TestIncUSRFig1Insertion(t *testing.T) {
	g, e := graph.Fig1Graph()
	checkIncremental(t, g, graph.Update{Edge: e, Insert: true}, 0.8)
}

func TestIncUSRSelfLoop(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	checkIncremental(t, g, graph.Update{Edge: graph.Edge{From: 2, To: 2}, Insert: true}, 0.7)
}

func TestIncUSRErrors(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	s := batch.MatrixForm(g, 0.8, 10)
	if _, _, err := IncUSR(g, s, graph.Update{Edge: graph.Edge{From: 0, To: 1}, Insert: true}, 0.8, 10); err == nil {
		t.Fatal("want error for duplicate insert")
	}
	bad := matrix.NewDense(2, 2)
	if _, _, err := IncUSR(g, bad, graph.Update{Edge: graph.Edge{From: 1, To: 2}, Insert: true}, 0.8, 10); err == nil {
		t.Fatal("want error for size mismatch")
	}
	if _, _, err := IncSR(g, bad, graph.Update{Edge: graph.Edge{From: 1, To: 2}, Insert: true}, 0.8, 10); err == nil {
		t.Fatal("want error for size mismatch (IncSR)")
	}
}

func TestIncUSRChainOfUpdates(t *testing.T) {
	// A batch of unit updates folded one at a time must track the batch
	// recomputation (Section V: batch update = sequence of unit updates).
	rng := rand.New(rand.NewSource(77))
	g := randGraph(rng, 10, 20)
	c := 0.6
	s := batch.MatrixForm(g, c, exactK)
	for step := 0; step < 8; step++ {
		up := randUpdate(rng, g)
		var err error
		s, _, err = IncSR(g, s, up, c, exactK)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		g.Apply(up)
		want := batch.MatrixForm(g, c, exactK)
		if d := matrix.MaxAbsDiff(s, want); d > 1e-8 {
			t.Fatalf("step %d (%v): drift %g", step, up, d)
		}
	}
}

func TestIncSRPrunesUnaffectedPairs(t *testing.T) {
	// On Fig. 1, the (m,l) cluster is unreachable from the inserted edge,
	// so Inc-SR must not touch it: affected pairs must be well below n².
	g, e := graph.Fig1Graph()
	c := 0.8
	s := batch.MatrixForm(g, c, 40)
	out, st, err := IncSR(g, s, graph.Update{Edge: e, Insert: true}, c, 40)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	if st.AffectedPairs >= n*n {
		t.Fatalf("affected pairs %d not pruned (n² = %d)", st.AffectedPairs, n*n)
	}
	// Gray-row-style pairs far from the inserted edge keep their old
	// scores (the reconstruction's analogue of the paper's gray rows).
	for _, p := range [][2]int{
		{graph.FigM, graph.FigL}, {graph.FigK, graph.FigG},
		{graph.FigK, graph.FigH}, {graph.FigI, graph.FigF},
	} {
		if math.Abs(out.At(p[0], p[1])-s.At(p[0], p[1])) > 1e-12 {
			t.Fatalf("pair (%s,%s) should be unaffected", graph.Fig1NodeName(p[0]), graph.Fig1NodeName(p[1]))
		}
	}
	// Pairs in the affected area must actually change, including a
	// zero→non-zero flip like the paper's (a,d) and (j,b) rows.
	for _, p := range [][2]int{{graph.FigA, graph.FigB}, {graph.FigB, graph.FigJ}, {graph.FigA, graph.FigJ}} {
		if math.Abs(out.At(p[0], p[1])-s.At(p[0], p[1])) < 1e-9 {
			t.Fatalf("pair (%s,%s) should change", graph.Fig1NodeName(p[0]), graph.Fig1NodeName(p[1]))
		}
	}
	if s.At(graph.FigA, graph.FigJ) > 1e-9 {
		t.Fatal("pair (a,j) should start at zero")
	}
}

func TestIncSRStatsPopulated(t *testing.T) {
	g, e := graph.Fig1Graph()
	s := batch.MatrixForm(g, 0.8, 20)
	_, st, err := IncSR(g, s, graph.Update{Edge: e, Insert: true}, 0.8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 20 || st.FrontierArea <= 0 || st.AuxFloats <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestIncUSRZeroIterations(t *testing.T) {
	// K=0 still applies the M₀ = C·e_j·γᵀ term.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	s := batch.MatrixForm(g, 0.8, exactK)
	got, _, err := IncUSR(g, s, graph.Update{Edge: graph.Edge{From: 0, To: 2}, Insert: true}, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 3 {
		t.Fatal("bad output")
	}
}

// --- property tests ---------------------------------------------------------

// Property: Inc-uSR equals batch recomputation on random graphs and random
// unit updates (the headline exactness claim).
func TestQuickIncUSRMatchesBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := randGraph(rng, n, 1+rng.Intn(3*n))
		c := []float64{0.6, 0.8}[rng.Intn(2)]
		up := randUpdate(rng, g)
		sOld := batch.MatrixForm(g, c, exactK)
		got, _, err := IncUSR(g, sOld, up, c, exactK)
		if err != nil {
			return false
		}
		g2 := g.Clone()
		g2.Apply(up)
		want := batch.MatrixForm(g2, c, exactK)
		return matrix.MaxAbsDiff(got, want) < exactTol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Inc-SR ≡ Inc-uSR (pruning lossless) on random instances.
func TestQuickIncSRMatchesIncUSR(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randGraph(rng, n, 1+rng.Intn(3*n))
		c := 0.4 + 0.4*rng.Float64()
		up := randUpdate(rng, g)
		sOld := batch.MatrixForm(g, c, 60)
		a, _, err1 := IncUSR(g, sOld, up, c, 60)
		b, _, err2 := IncSR(g, sOld, up, c, 60)
		if err1 != nil || err2 != nil {
			return false
		}
		return matrix.MaxAbsDiff(a, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: updated similarities stay symmetric with diagonal in [1−C, 1].
func TestQuickIncrementalInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := randGraph(rng, n, 2*n)
		c := 0.8
		up := randUpdate(rng, g)
		sOld := batch.MatrixForm(g, c, 80)
		got, _, err := IncSR(g, sOld, up, c, 80)
		if err != nil {
			return false
		}
		// Tolerance accounts for the K=80 truncation error of the old S
		// (≈ C^81 ≈ 10⁻⁸) flowing through the update.
		if !got.IsSymmetric(1e-6) {
			return false
		}
		for i := 0; i < n; i++ {
			d := got.At(i, i)
			if d < 1-c-1e-6 || d > 1+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInPlaceVariantsMatchPure(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}, {From: 2, To: 4}, {From: 4, To: 5},
	})
	c := 0.6
	sOld := batch.MatrixForm(g, c, 40)
	up := graph.Update{Edge: graph.Edge{From: 5, To: 2}, Insert: true}

	pureSR, _, err := IncSR(g, sOld, up, c, 40)
	if err != nil {
		t.Fatal(err)
	}
	inSR := sOld.Clone()
	if _, err := IncSRInPlace(g, inSR, up, c, 40); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(pureSR, inSR) != 0 {
		t.Fatal("IncSRInPlace differs from IncSR")
	}

	pureU, _, err := IncUSR(g, sOld, up, c, 40)
	if err != nil {
		t.Fatal(err)
	}
	inU := sOld.Clone()
	if _, err := IncUSRInPlace(g, inU, up, c, 40); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(pureU, inU) != 0 {
		t.Fatal("IncUSRInPlace differs from IncUSR")
	}
}

func TestInPlaceErrorLeavesInputUntouched(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	s := batch.MatrixForm(g, 0.6, 10)
	snapshot := s.Clone()
	bad := graph.Update{Edge: graph.Edge{From: 0, To: 1}, Insert: true} // duplicate
	if _, err := IncSRInPlace(g, s, bad, 0.6, 10); err == nil {
		t.Fatal("want error")
	}
	if _, err := IncUSRInPlace(g, s, bad, 0.6, 10); err == nil {
		t.Fatal("want error")
	}
	if matrix.MaxAbsDiff(s, snapshot) != 0 {
		t.Fatal("failed in-place update mutated S")
	}
}

func TestIncSRPureDoesNotMutateInput(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	s := batch.MatrixForm(g, 0.8, 20)
	snapshot := s.Clone()
	if _, _, err := IncSR(g, s, graph.Update{Edge: graph.Edge{From: 3, To: 1}, Insert: true}, 0.8, 20); err != nil {
		t.Fatal(err)
	}
	if _, _, err := IncUSR(g, s, graph.Update{Edge: graph.Edge{From: 3, To: 1}, Insert: true}, 0.8, 20); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(s, snapshot) != 0 {
		t.Fatal("pure variant mutated its input")
	}
}

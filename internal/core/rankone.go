package core

import (
	"fmt"

	"repro/internal/graph"
)

// RankOne is the rank-one decomposition ΔQ = u·vᵀ of the transition-matrix
// change caused by one unit link update (Theorem 1). Both vectors are
// sparse: u has a single entry at j; v has at most d_j+1 entries.
type RankOne struct {
	U, V *SparseVec
}

// ErrBadUpdate reports an update that does not apply to the given graph
// (inserting an existing edge, or deleting an absent one).
type ErrBadUpdate struct {
	Update graph.Update
	Reason string
}

func (e *ErrBadUpdate) Error() string {
	return fmt.Sprintf("core: update %v: %s", e.Update, e.Reason)
}

// Decompose computes u, v with ΔQ = u·vᵀ for the unit update up applied to
// the old graph g (Theorem 1, Eqs. 17–18).
//
// Insertion of (i, j):
//
//	d_j = 0: u = e_j,          v = e_i
//	d_j > 0: u = e_j/(d_j+1),  v = e_i − [Q]ᵀ_{j,·}
//
// Deletion of (i, j):
//
//	d_j = 1: u = e_j,          v = −e_i
//	d_j > 1: u = e_j/(d_j−1),  v = [Q]ᵀ_{j,·} − e_i
func Decompose(g *graph.DiGraph, up graph.Update) (RankOne, error) {
	i, j := up.Edge.From, up.Edge.To
	n := g.N()
	if i < 0 || i >= n || j < 0 || j >= n {
		return RankOne{}, &ErrBadUpdate{up, "node out of range"}
	}
	dj := g.InDegree(j)
	u := NewSparseVec(n)
	v := NewSparseVec(n)
	if up.Insert {
		if g.HasEdge(i, j) {
			return RankOne{}, &ErrBadUpdate{up, "edge already present"}
		}
		if dj == 0 {
			u.Set(j, 1)
			v.Set(i, 1)
		} else {
			u.Set(j, 1/float64(dj+1))
			v.Set(i, 1)
			w := 1 / float64(dj)
			g.EachInNeighbor(j, func(t int) {
				v.Add(t, -w) // subtract [Q]_{j,t} = 1/d_j
			})
		}
		return RankOne{U: u, V: v}, nil
	}
	if !g.HasEdge(i, j) {
		return RankOne{}, &ErrBadUpdate{up, "edge absent"}
	}
	if dj == 1 {
		u.Set(j, 1)
		v.Set(i, -1)
	} else {
		u.Set(j, 1/float64(dj-1))
		v.Set(i, -1)
		w := 1 / float64(dj)
		g.EachInNeighbor(j, func(t int) {
			v.Add(t, w) // add [Q]_{j,t}
		})
	}
	return RankOne{U: u, V: v}, nil
}

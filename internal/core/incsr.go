package core

import (
	"repro/internal/graph"
	"repro/internal/matrix"
)

// IncSR is Algorithm 2 (Inc-SR): Inc-uSR plus the Theorem-4 pruning of
// "unaffected areas". The auxiliary vectors ξ_k, η_k are kept sparse
// (dense-backed workspaces), each rank-one term ξ_k·η_kᵀ is applied
// directly to the output over its support only, and the M matrix is never
// materialized — so work per iteration is proportional to the affected
// frontier A_k×B_k rather than n². The result is entrywise identical to
// IncUSR (the pruning is lossless).
func IncSR(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) (*matrix.Dense, Stats, error) {
	out := s.Clone()
	st, err := IncSRInPlace(g, out, up, c, k)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, st, nil
}

// IncSRInPlace is IncSR mutating s directly. This is the form whose cost
// actually meets the O(K(nd + |AFF|)) bound: the non-mutating wrapper
// pays an extra Θ(n²) for the defensive copy, which would dominate small
// affected areas.
//
// It builds a fresh Workspace (Qᵀ, in-degrees, scratch) from g on every
// call. Callers applying a stream of updates should hold a Workspace and
// use its IncSR method instead, which reuses all of that state and
// performs zero heap allocations once warm — the engine facade does so.
func IncSRInPlace(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) (Stats, error) {
	return NewWorkspace(g).IncSR(s, up, c, k)
}

// IncSR performs one unit update on s (Algorithm 2) using the workspace's
// maintained Qᵀ and in-degrees — the zero-allocation steady-state path.
// s is mutated only after all validation, so a failed update leaves it
// untouched; the workspace itself must reflect the pre-update graph and
// is left unchanged (call ApplyUpdate separately once the graph changes).
//
// s is any SimStore: the dense matrix of the classic engine or a
// packed-symmetric store — every read respects the scratch-row aliasing
// contract and every write goes through AddSym, so the store layout is
// free to halve the symmetric storage.
//
//simrank:noalloc
func (ws *Workspace) IncSR(s SimStore, up graph.Update, c float64, k int) (Stats, error) {
	n := ws.n
	if s.N() != n {
		return Stats{}, &ErrBadUpdate{up, "similarity matrix size mismatch"}
	}
	// Theorem 1: ΔQ = uv·e_j·vᵀ, v in ws.vws.
	uv, err := ws.decompose(up)
	if err != nil {
		return Stats{}, err
	}
	ws.ensureIncSR()
	ws.resetDirty()
	parts := ws.resolveWorkers()
	if parts > 1 {
		ws.ensureParScratch(parts)
	}
	i, j := up.Edge.From, up.Edge.To
	dj := ws.din[j]

	// Line 3: B₀ = F₁ ∪ F₂ ∪ {j} (Eqs. 38–40).
	//   F₁ = out-neighbors of nodes y with [S]_{i,y} ≠ 0 — covers supp(Q·[S]_{·,i});
	//   F₂ = {y : [S]_{j,y} ≠ 0} unless the update makes/made j a source
	//        (d_j = 0 insert, d_j = 1 delete), in which case γ has no
	//        [S]_{·,j} term and F₂ = ∅.
	b0 := ws.b0 // used as an index set; values unused
	b0.add(j, 1)
	srow := s.Row(i)
	for y := 0; y < n; y++ {
		if srow[y] > ZeroTol || srow[y] < -ZeroTol {
			for _, e := range ws.qt[y] {
				if !b0.mark[e.idx] {
					b0.add(e.idx, 1)
				}
			}
		}
	}
	needF2 := (up.Insert && dj > 0) || (!up.Insert && dj > 1)
	if needF2 {
		jrow := s.Row(j)
		for y := 0; y < n; y++ {
			if (jrow[y] > ZeroTol || jrow[y] < -ZeroTol) && !b0.mark[y] {
				b0.add(y, 1)
			}
		}
	}

	// Lines 3–12: memoize [w]_b = [Q]_{b,·}·[S]_{·,i} and γ only on B₀.
	si := ws.si
	s.ColInto(si, i)
	w := ws.w
	for _, b := range b0.supp {
		if ws.din[b] == 0 {
			continue
		}
		var sum float64
		for _, e := range ws.q[b] {
			sum += si[e.idx]
		}
		w.add(b, sum/float64(ws.din[b]))
	}
	lam := lambda(s, i, j, w.at(j), c)
	gam := ws.gam
	gammaWs(gam, s, w, lam, up, dj, c, b0)

	// Lines 13–19: iterate sparse ξ/η with the implicit
	// Q̃x = Qx + (vᵀx)u, accumulating each rank-one term ξ_k·η_kᵀ into M.
	// M is stored as pooled dense rows: only rows in the affected frontier
	// ∪supp(ξ_k) ever exist, so memory is |rows|·n ≤ n² and the inner loop
	// is the same contiguous multiply-add as Inc-uSR's — just restricted
	// to the frontier.
	colSupp := ws.colSupp // index set of ∪supp(η_k)
	applyTerm := func(xi, eta *wsVec) {
		denseEta := len(eta.supp) > n/2
		for _, b := range eta.supp {
			if !colSupp.mark[b] {
				colSupp.add(b, 1)
			}
		}
		if parts > 1 && len(xi.supp) >= parts {
			// Fan the rank-one term across the pool: the rows are
			// pre-claimed serially (pool draws and rowSupp bookkeeping
			// must not race), then partitioned by support position —
			// rows are disjoint and each row's accumulation is the
			// serial loop below, so the bits cannot depend on the split.
			for _, a := range xi.supp {
				ws.mRow(a)
			}
			ws.parXi, ws.parEta, ws.parDenseEta = xi, eta, denseEta
			ws.evenBounds(len(xi.supp), parts)
			ws.parRun(taskSRAccum, parts)
			ws.parXi, ws.parEta = nil, nil
			return
		}
		for _, a := range xi.supp {
			va := xi.vals[a]
			row := ws.mRow(a)
			if denseEta {
				// Frontier ≈ full row: a contiguous multiply-add beats
				// the indexed gather (zero entries contribute nothing).
				for b, vb := range eta.vals {
					row[b] += va * vb
				}
			} else {
				for _, b := range eta.supp {
					row[b] += va * eta.vals[b]
				}
			}
		}
	}

	xi := ws.xi
	xi.add(j, c)
	eta := gam
	applyTerm(xi, eta) // M₀ = C·e_j·γᵀ

	xiNext, etaNext := ws.xiNext, ws.etaNext
	var frontier float64
	peakAux := xi.nnz() + eta.nnz()
	for iter := 0; iter < k; iter++ {
		frontier += float64(xi.nnz()) * float64(eta.nnz())

		vxi := ws.vws.dot(xi)
		xiNext.reset()
		ws.scatterQ(xi, xiNext)
		for _, a := range xiNext.supp {
			xiNext.vals[a] *= c
		}
		xiNext.add(j, c*vxi*uv)
		xiNext.compact(ZeroTol)

		veta := ws.vws.dot(eta)
		etaNext.reset()
		ws.scatterQ(eta, etaNext)
		etaNext.add(j, veta*uv)
		etaNext.compact(ZeroTol)

		applyTerm(xiNext, etaNext)
		xi, xiNext = xiNext, xi
		eta, etaNext = etaNext, eta
		if a := xi.nnz() + eta.nnz(); a > peakAux {
			peakAux = a
		}
	}

	// Line 20: S̃ = S + M_K + M_Kᵀ over the affected support only, and
	// count the distinct pairs either M or Mᵀ touches. All reads of the
	// old S happened above, so mutating in place is safe. The M rows are
	// scrubbed as they are read and returned to the pool for the next
	// update.
	//
	// Per-cell accumulation order: a pair {a, b} with both ordered M
	// entries non-zero receives them in the claim order of rows a and b
	// (the rowSupp scan below runs in claim order) — which the
	// row-parallel write-back (srWritebackParallel) reproduces per pair
	// through the rowPos ledger, so serial and parallel land identical
	// bits at every worker count.
	var affected int
	if cs, ok := s.(ConcurrentWriteStore); ok && parts > 1 {
		affected = ws.srWritebackParallel(s, cs, parts)
	} else {
		touched := ws.touched
		for _, a := range ws.rowSupp {
			mrow := ws.mRows[a]
			for _, b := range colSupp.supp {
				v := mrow[b]
				mrow[b] = 0
				if v <= ZeroTol && v >= -ZeroTol {
					continue
				}
				s.AddSym(a, b, v)
				touched.set(a, b)
				touched.set(b, a)
				// The write landed in rows a (entry b) and b (entry a): both
				// become invalidation targets for row-level caches.
				ws.markDirty(a)
				ws.markDirty(b)
			}
			ws.mRows[a] = nil
			ws.rowPool = append(ws.rowPool, mrow)
		}
		affected = touched.count
	}

	iters := k
	if iters == 0 {
		iters = 1
	}
	st := Stats{
		Iterations:    k,
		AffectedPairs: affected,
		FrontierArea:  frontier / float64(iters),
		// M's pooled rows, the workspace vectors, the touched-pair bitset
		// (1/64 float per pair each), and the B₀/w/γ memos.
		AuxFloats: len(ws.rowSupp)*n + peakAux + len(ws.touched.words) + w.nnz() + b0.nnz(),
		DirtyRows: ws.dirtyRows,
	}

	// Reset every transient so the next update starts clean; each reset is
	// proportional to the support it clears. xi/eta aliases cover all four
	// iteration buffers regardless of swap parity (gam doubles as η₀).
	for _, a := range ws.rowSupp {
		ws.rowMark[a] = false
	}
	ws.rowSupp = ws.rowSupp[:0]
	ws.touched.reset()
	b0.reset()
	w.reset()
	ws.vws.reset()
	colSupp.reset()
	xi.reset()
	eta.reset()
	xiNext.reset()
	etaNext.reset()
	return st, nil
}

// gammaWs fills gam with gammaDense restricted to the B₀ support
// (Algorithm 2 lines 4–12): every entry of γ outside B₀ is structurally
// zero by the Theorem-4 argument, so it is never materialized.
//
//simrank:noalloc
func gammaWs(gam *wsVec, s SimStore, w *wsVec, lam float64, up graph.Update, dj int, c float64, b0 *wsVec) {
	i, j := up.Edge.From, up.Edge.To
	if up.Insert {
		if dj == 0 {
			for _, b := range b0.supp {
				gam.add(b, w.at(b))
			}
			gam.add(j, 0.5*s.At(i, i))
		} else {
			f := 1 / float64(dj+1)
			for _, b := range b0.supp {
				gam.add(b, f*(w.at(b)-s.At(b, j)/c))
			}
			gam.add(j, f*(lam/(2*float64(dj+1))+1/c-1))
		}
	} else if dj == 1 {
		for _, b := range b0.supp {
			gam.add(b, -w.at(b))
		}
		gam.add(j, 0.5*s.At(i, i))
	} else {
		f := 1 / float64(dj-1)
		for _, b := range b0.supp {
			gam.add(b, f*(s.At(b, j)/c-w.at(b)))
		}
		gam.add(j, f*(lam/(2*float64(dj-1))-1/c+1))
	}
	gam.compact(ZeroTol)
}

package core

import (
	"repro/internal/graph"
	"repro/internal/matrix"
)

// IncSR is Algorithm 2 (Inc-SR): Inc-uSR plus the Theorem-4 pruning of
// "unaffected areas". The auxiliary vectors ξ_k, η_k are kept sparse
// (dense-backed workspaces), each rank-one term ξ_k·η_kᵀ is applied
// directly to the output over its support only, and the M matrix is never
// materialized — so work per iteration is proportional to the affected
// frontier A_k×B_k rather than n². The result is entrywise identical to
// IncUSR (the pruning is lossless).
func IncSR(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) (*matrix.Dense, Stats, error) {
	out := s.Clone()
	st, err := IncSRInPlace(g, out, up, c, k)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, st, nil
}

// IncSRInPlace is IncSR mutating s directly. This is the form whose cost
// actually meets the O(K(nd + |AFF|)) bound: the non-mutating wrapper
// pays an extra Θ(n²) for the defensive copy, which would dominate small
// affected areas.
func IncSRInPlace(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) (Stats, error) {
	n := g.N()
	if s.Rows != n || s.Cols != n {
		return Stats{}, &ErrBadUpdate{up, "similarity matrix size mismatch"}
	}
	ro, err := Decompose(g, up)
	if err != nil {
		return Stats{}, err
	}
	i, j := up.Edge.From, up.Edge.To
	dj := g.InDegree(j)

	// In-degrees of the old graph, used by the sparse Q·x scatter
	// ([Q]_{a,b} = 1/d_a for b ∈ I(a)).
	din := make([]int, n)
	for v := 0; v < n; v++ {
		din[v] = g.InDegree(v)
	}
	// Qᵀ in CSR form: row b lists (a, 1/d_a) for a ∈ O(b), so the sparse
	// scatter walks contiguous arrays instead of adjacency hash maps.
	qt := transposedQ(g, din)

	// Line 3: B₀ = F₁ ∪ F₂ ∪ {j} (Eqs. 38–40).
	//   F₁ = out-neighbors of nodes y with [S]_{i,y} ≠ 0 — covers supp(Q·[S]_{·,i});
	//   F₂ = {y : [S]_{j,y} ≠ 0} unless the update makes/made j a source
	//        (d_j = 0 insert, d_j = 1 delete), in which case γ has no
	//        [S]_{·,j} term and F₂ = ∅.
	b0 := newWsVec(n) // used as an index set; values unused
	b0.add(j, 1)
	srow := s.Row(i)
	for y := 0; y < n; y++ {
		if srow[y] > ZeroTol || srow[y] < -ZeroTol {
			g.EachOutNeighbor(y, func(b int) {
				if !b0.mark[b] {
					b0.add(b, 1)
				}
			})
		}
	}
	needF2 := (up.Insert && dj > 0) || (!up.Insert && dj > 1)
	if needF2 {
		jrow := s.Row(j)
		for y := 0; y < n; y++ {
			if (jrow[y] > ZeroTol || jrow[y] < -ZeroTol) && !b0.mark[y] {
				b0.add(y, 1)
			}
		}
	}

	// Lines 3–12: memoize [w]_b = [Q]_{b,·}·[S]_{·,i} and γ only on B₀.
	si := s.Col(i)
	w := newWsVec(n)
	for _, b := range b0.supp {
		if din[b] == 0 {
			continue
		}
		var sum float64
		g.EachInNeighbor(b, func(y int) { sum += si[y] })
		w.add(b, sum/float64(din[b]))
	}
	lam := lambda(s, i, j, w.at(j), c)
	gam := gammaWs(s, w, lam, up, dj, c, b0)

	// Lines 13–19: iterate sparse ξ/η with the implicit
	// Q̃x = Qx + (vᵀx)u, accumulating each rank-one term ξ_k·η_kᵀ into M.
	// M is stored as lazily-allocated dense rows: only rows in the
	// affected frontier ∪supp(ξ_k) ever exist, so memory is |rows|·n ≤ n²
	// and the inner loop is the same contiguous multiply-add as Inc-uSR's
	// — just restricted to the frontier.
	mRows := make([][]float64, n)
	var rowSupp []int
	colSupp := newWsVec(n) // index set of ∪supp(η_k)
	applyTerm := func(xi, eta *wsVec) {
		denseEta := len(eta.supp) > n/2
		for _, b := range eta.supp {
			if !colSupp.mark[b] {
				colSupp.add(b, 1)
			}
		}
		for _, a := range xi.supp {
			va := xi.vals[a]
			row := mRows[a]
			if row == nil {
				row = make([]float64, n)
				mRows[a] = row
				rowSupp = append(rowSupp, a)
			}
			if denseEta {
				// Frontier ≈ full row: a contiguous multiply-add beats
				// the indexed gather (zero entries contribute nothing).
				for b, vb := range eta.vals {
					row[b] += va * vb
				}
			} else {
				for _, b := range eta.supp {
					row[b] += va * eta.vals[b]
				}
			}
		}
	}

	// v as a workspace vector for fast dot products.
	vws := newWsVec(n)
	for idx, val := range ro.V.Val {
		vws.add(idx, val)
	}
	uv := ro.U.At(j)

	xi := newWsVec(n)
	xi.add(j, c)
	eta := gam
	applyTerm(xi, eta) // M₀ = C·e_j·γᵀ

	xiNext, etaNext := newWsVec(n), newWsVec(n)
	var frontier float64
	peakAux := xi.nnz() + eta.nnz()
	for iter := 0; iter < k; iter++ {
		frontier += float64(xi.nnz()) * float64(eta.nnz())

		vxi := vws.dot(xi)
		xiNext.reset()
		scatterQWs(qt, xi, xiNext)
		for _, a := range xiNext.supp {
			xiNext.vals[a] *= c
		}
		xiNext.add(j, c*vxi*uv)
		xiNext.compact(ZeroTol)

		veta := vws.dot(eta)
		etaNext.reset()
		scatterQWs(qt, eta, etaNext)
		etaNext.add(j, veta*uv)
		etaNext.compact(ZeroTol)

		applyTerm(xiNext, etaNext)
		xi, xiNext = xiNext, xi
		eta, etaNext = etaNext, eta
		if a := xi.nnz() + eta.nnz(); a > peakAux {
			peakAux = a
		}
	}

	// Line 20: S̃ = S + M_K + M_Kᵀ over the affected support only, and
	// count the distinct pairs either M or Mᵀ touches. All reads of the
	// old S happened above, so mutating in place is safe.
	touched := newPairBitset(n)
	for _, a := range rowSupp {
		mrow := mRows[a]
		orow := s.Row(a)
		for _, b := range colSupp.supp {
			v := mrow[b]
			if v <= ZeroTol && v >= -ZeroTol {
				continue
			}
			orow[b] += v
			s.Data[b*n+a] += v
			touched.set(a, b)
			touched.set(b, a)
		}
	}

	iters := k
	if iters == 0 {
		iters = 1
	}
	st := Stats{
		Iterations:    k,
		AffectedPairs: touched.count,
		FrontierArea:  frontier / float64(iters),
		// M's lazily-allocated rows, the workspace vectors, the
		// touched-pair bitset (1/64 float per pair each), and the
		// B₀/w/γ memos.
		AuxFloats: len(rowSupp)*n + peakAux + len(touched.words) + w.nnz() + b0.nnz(),
	}
	return st, nil
}

// transposedQ builds Qᵀ in CSR form: row b holds (a, 1/d_a) for every
// out-neighbor a of b. O(m) plus the CSR sort.
func transposedQ(g *graph.DiGraph, din []int) *matrix.CSR {
	is := make([]int, 0, g.M())
	js := make([]int, 0, g.M())
	vs := make([]float64, 0, g.M())
	for b := 0; b < g.N(); b++ {
		g.EachOutNeighbor(b, func(a int) {
			is = append(is, b)
			js = append(js, a)
			vs = append(vs, 1/float64(din[a]))
		})
	}
	return matrix.NewCSR(g.N(), g.N(), is, js, vs)
}

// scatterQWs computes dst += Q·x for workspace vectors:
// [Q·x]_a = Σ_{b ∈ I(a)} x_b / d_a, accumulated along the rows of Qᵀ.
func scatterQWs(qt *matrix.CSR, x, dst *wsVec) {
	for _, b := range x.supp {
		xb := x.vals[b]
		lo, hi := qt.RowPtr[b], qt.RowPtr[b+1]
		for k := lo; k < hi; k++ {
			dst.add(qt.ColIdx[k], xb*qt.Val[k])
		}
	}
}

// gammaWs is gammaDense restricted to the B₀ support (Algorithm 2 lines
// 4–12): every entry of γ outside B₀ is structurally zero by the
// Theorem-4 argument, so it is never materialized.
func gammaWs(s *matrix.Dense, w *wsVec, lam float64, up graph.Update, dj int, c float64, b0 *wsVec) *wsVec {
	i, j := up.Edge.From, up.Edge.To
	gam := newWsVec(s.Rows)
	if up.Insert {
		if dj == 0 {
			for _, b := range b0.supp {
				gam.add(b, w.at(b))
			}
			gam.add(j, 0.5*s.At(i, i))
		} else {
			f := 1 / float64(dj+1)
			for _, b := range b0.supp {
				gam.add(b, f*(w.at(b)-s.At(b, j)/c))
			}
			gam.add(j, f*(lam/(2*float64(dj+1))+1/c-1))
		}
	} else if dj == 1 {
		for _, b := range b0.supp {
			gam.add(b, -w.at(b))
		}
		gam.add(j, 0.5*s.At(i, i))
	} else {
		f := 1 / float64(dj-1)
		for _, b := range b0.supp {
			gam.add(b, f*(s.At(b, j)/c-w.at(b)))
		}
		gam.add(j, f*(lam/(2*float64(dj-1))-1/c+1))
	}
	gam.compact(ZeroTol)
	return gam
}

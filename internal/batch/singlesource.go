package batch

import (
	"fmt"

	"repro/internal/matrix"
)

// SingleSource computes one column of the matrix-form SimRank,
// [S]_{·,q} = (1−C)·Σ_k C^k·Q^k·(Qᵀ)^k·e_q, without materializing the n×n
// matrix — the query shape of Fujiwara et al. [9] ("top-k similar nodes
// in O(n) space"). Each series term reuses the previous back-walk vector
// (Qᵀ)^k·e_q and pays k forward multiplications, so the total cost is
// O(K²·m) time and O(n) memory.
func SingleSource(q *matrix.CSR, c float64, k, query int) ([]float64, error) {
	n := q.RowsN
	if query < 0 || query >= n {
		return nil, fmt.Errorf("batch: query node %d out of range [0,%d)", query, n)
	}
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("batch: damping factor %v outside (0,1)", c)
	}
	if k < 0 {
		return nil, fmt.Errorf("batch: negative iteration count %d", k)
	}
	out := make([]float64, n)
	// k = 0 term: (1−C)·e_q.
	out[query] = 1 - c
	back := matrix.UnitVec(n, query) // (Qᵀ)^t · e_q
	ck := 1.0
	for t := 1; t <= k; t++ {
		back = q.MulVecT(back)
		ck *= c
		// Forward: fwd = Q^t · back.
		fwd := matrix.CloneVec(back)
		for s := 0; s < t; s++ {
			fwd = q.MulVec(fwd)
		}
		matrix.Axpy((1-c)*ck, fwd, out)
	}
	return out, nil
}

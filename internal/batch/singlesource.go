package batch

import (
	"fmt"

	"repro/internal/matrix"
)

// SingleSource computes one column of the matrix-form SimRank,
// [S]_{·,q} = (1−C)·Σ_k C^k·Q^k·(Qᵀ)^k·e_q, without materializing the n×n
// matrix — the query shape of Fujiwara et al. [9] ("top-k similar nodes
// in O(n) space"). Each series term reuses the previous back-walk vector
// (Qᵀ)^k·e_q and pays k forward multiplications, so the total cost is
// O(K²·m) time and O(n) memory.
func SingleSource(q *matrix.CSR, c float64, k, query int) ([]float64, error) {
	n := q.RowsN
	if query < 0 || query >= n {
		return nil, fmt.Errorf("batch: query node %d out of range [0,%d)", query, n)
	}
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("batch: damping factor %v outside (0,1)", c)
	}
	if k < 0 {
		return nil, fmt.Errorf("batch: negative iteration count %d", k)
	}
	// Five O(n) buffers, allocated once, carry the whole series: the
	// back-walk ping-pong pair and the forward ping-pong pair reuse the
	// in-place CSR kernels, so the allocation count is a small constant
	// independent of K — the memory really is O(n), not O(K²) transient
	// vectors left to the collector.
	out := make([]float64, n)
	// k = 0 term: (1−C)·e_q.
	out[query] = 1 - c
	back := make([]float64, n) // (Qᵀ)^t · e_q
	back[query] = 1
	backNext := make([]float64, n)
	fwd := make([]float64, n)
	fwdNext := make([]float64, n)
	ck := 1.0
	for t := 1; t <= k; t++ {
		q.MulVecTTo(backNext, back)
		back, backNext = backNext, back
		ck *= c
		// Forward: fwd = Q^t · back.
		copy(fwd, back)
		cur, nxt := fwd, fwdNext
		for s := 0; s < t; s++ {
			q.MulVecTo(nxt, cur)
			cur, nxt = nxt, cur
		}
		matrix.Axpy((1-c)*ck, cur, out)
	}
	return out, nil
}

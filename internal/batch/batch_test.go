package batch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/matrix"
)

func randGraph(rng *rand.Rand, n, m int) *graph.DiGraph {
	if max := n * n; m > max/2 {
		m = max / 2 // keep headroom so random probing terminates fast
	}
	g := graph.New(n)
	for g.M() < m {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestJehWidomBaseCases(t *testing.T) {
	// 0→1, 0→2: s(1,2) = C (both have single common in-neighbor 0).
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	s := JehWidom(g, 0.8, 10)
	if math.Abs(s.At(1, 2)-0.8) > 1e-12 {
		t.Fatalf("s(1,2) = %v, want 0.8", s.At(1, 2))
	}
	if s.At(0, 0) != 1 || s.At(1, 1) != 1 {
		t.Fatal("diagonal must be 1")
	}
	if s.At(0, 1) != 0 {
		t.Fatalf("s(0,1) = %v, want 0 (node 0 has no in-neighbors)", s.At(0, 1))
	}
}

func TestJehWidomTwoCycle(t *testing.T) {
	// 0↔1 cycle: s(0,1) stays 0 (in-neighbor pairs never coincide).
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 0}})
	s := JehWidom(g, 0.6, 20)
	if s.At(0, 1) != 0 {
		t.Fatalf("s(0,1) = %v, want 0", s.At(0, 1))
	}
}

func TestJehWidomSymmetricRange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randGraph(rng, 12, 30)
	s := JehWidom(g, 0.8, 8)
	if !s.IsSymmetric(1e-12) {
		t.Fatal("SimRank must be symmetric")
	}
	for _, v := range s.Data {
		if v < 0 || v > 1+1e-12 {
			t.Fatalf("score %v outside [0,1]", v)
		}
	}
}

func TestJehWidomMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := randGraph(rng, 10, 25)
	prev := JehWidom(g, 0.7, 2)
	for _, k := range []int{4, 6, 8} {
		cur := JehWidom(g, 0.7, k)
		for i := range cur.Data {
			if cur.Data[i] < prev.Data[i]-1e-12 {
				t.Fatalf("scores must be non-decreasing in K (k=%d)", k)
			}
		}
		prev = cur
	}
}

func TestPartialSumsMatchesJehWidom(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		g := randGraph(rng, 4+rng.Intn(10), 10+rng.Intn(30))
		a := JehWidom(g, 0.8, 7)
		b := PartialSums(g, 0.8, 7)
		if matrix.MaxAbsDiff(a, b) > 1e-12 {
			t.Fatalf("trial %d: partial sums diverge by %g", trial, matrix.MaxAbsDiff(a, b))
		}
	}
}

func TestPartialSumsSharedMatchesJehWidom(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 5; trial++ {
		g := randGraph(rng, 4+rng.Intn(10), 10+rng.Intn(30))
		a := JehWidom(g, 0.6, 7)
		b := PartialSumsShared(g, 0.6, 7)
		if matrix.MaxAbsDiff(a, b) > 1e-12 {
			t.Fatalf("trial %d: shared variant diverges by %g", trial, matrix.MaxAbsDiff(a, b))
		}
	}
}

func TestMatrixFormSeries(t *testing.T) {
	// MatrixForm must equal the truncated series
	// (1−C)·Σ_{k=0..K} C^k·Q^k·(Qᵀ)^k (Eq. 34).
	rng := rand.New(rand.NewSource(35))
	g := randGraph(rng, 8, 20)
	c, kIter := 0.8, 6
	got := MatrixForm(g, c, kIter)
	qd := g.BackwardTransition().Dense()
	n := g.N()
	want := matrix.NewDense(n, n)
	qk := matrix.Identity(n)
	for k := 0; k <= kIter; k++ {
		term := matrix.Mul(qk, qk.T())
		want.AddMat((1-c)*math.Pow(c, float64(k)), term)
		qk = matrix.Mul(qd, qk)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("series mismatch %g", d)
	}
}

func TestMatrixFormDiagonalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g := randGraph(rng, 10, 30)
	c := 0.8
	s := MatrixForm(g, c, 15)
	for i := 0; i < g.N(); i++ {
		d := s.At(i, i)
		if d < 1-c-1e-12 || d > 1+1e-12 {
			t.Fatalf("diag[%d] = %v outside [1−C, 1]", i, d)
		}
	}
	if !s.IsSymmetric(1e-12) {
		t.Fatal("matrix-form S must be symmetric")
	}
}

func TestMatrixFormFixedPointResidual(t *testing.T) {
	// After K iterations, ‖S_K − (C·Q·S_K·Qᵀ + (1−C)I)‖_max ≤ C^{K+1}.
	rng := rand.New(rand.NewSource(37))
	g := randGraph(rng, 9, 25)
	c, kIter := 0.6, 12
	s := MatrixForm(g, c, kIter)
	qd := g.BackwardTransition().Dense()
	rhs := matrix.Mul(matrix.Mul(qd, s), qd.T()).Scale(c)
	for i := 0; i < g.N(); i++ {
		rhs.Add(i, i, 1-c)
	}
	if d := matrix.MaxAbsDiff(s, rhs); d > math.Pow(c, float64(kIter)+1)+1e-12 {
		t.Fatalf("fixed-point residual %g too large", d)
	}
}

func TestMatrixFormSingleCommonParent(t *testing.T) {
	// 0→1, 0→2: matrix form gives s(1,2) = C(1−C) (only the k=1 term).
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	c := 0.8
	s := MatrixForm(g, c, 10)
	if math.Abs(s.At(1, 2)-c*(1-c)) > 1e-12 {
		t.Fatalf("s(1,2) = %v, want %v", s.At(1, 2), c*(1-c))
	}
}

func TestValidatePanics(t *testing.T) {
	g := graph.New(2)
	for _, fn := range []func(){
		func() { JehWidom(nil, 0.5, 1) },
		func() { JehWidom(g, 0, 1) },
		func() { JehWidom(g, 1, 1) },
		func() { JehWidom(g, 0.5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			fn()
		}()
	}
}

func TestZeroIterations(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	s := JehWidom(g, 0.8, 0)
	if matrix.MaxAbsDiff(s, matrix.Identity(3)) != 0 {
		t.Fatal("K=0 iterative form must be I")
	}
	m := MatrixForm(g, 0.8, 0)
	if matrix.MaxAbsDiff(m, matrix.Identity(3).Scale(0.2)) > 1e-15 {
		t.Fatal("K=0 matrix form must be (1−C)·I")
	}
}

// Property: all three iterative-form algorithms agree on random graphs.
func TestQuickIterativeAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := randGraph(rng, n, 2*n)
		c := 0.3 + 0.5*rng.Float64()
		k := 1 + rng.Intn(6)
		a := JehWidom(g, c, k)
		b := PartialSums(g, c, k)
		d := PartialSumsShared(g, c, k)
		return matrix.MaxAbsDiff(a, b) < 1e-12 && matrix.MaxAbsDiff(a, d) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix-form scores lie in [0,1] and are symmetric.
func TestQuickMatrixFormInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randGraph(rng, n, 3*n)
		s := MatrixForm(g, 0.8, 8)
		if !s.IsSymmetric(1e-12) {
			return false
		}
		for _, v := range s.Data {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSourceMatchesMatrixColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 5; trial++ {
		g := randGraph(rng, 5+rng.Intn(10), 25)
		q := g.BackwardTransition()
		c, k := 0.6, 8
		full := MatrixFormQ(q, c, k)
		for query := 0; query < g.N(); query += 2 {
			col, err := SingleSource(q, c, k, query)
			if err != nil {
				t.Fatal(err)
			}
			want := full.Col(query)
			for i := range col {
				if math.Abs(col[i]-want[i]) > 1e-10 {
					t.Fatalf("trial %d query %d: col[%d] = %v, want %v", trial, query, i, col[i], want[i])
				}
			}
		}
	}
}

func TestSingleSourceErrors(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	q := g.BackwardTransition()
	if _, err := SingleSource(q, 0.6, 5, -1); err == nil {
		t.Fatal("want error for bad query")
	}
	if _, err := SingleSource(q, 0.6, 5, 3); err == nil {
		t.Fatal("want error for out-of-range query")
	}
	if _, err := SingleSource(q, 0, 5, 0); err == nil {
		t.Fatal("want error for bad C")
	}
	if _, err := SingleSource(q, 0.6, -1, 0); err == nil {
		t.Fatal("want error for negative K")
	}
}

func TestSingleSourceZeroIterations(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	col, err := SingleSource(g.BackwardTransition(), 0.8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(col[1]-0.2) > 1e-12 || col[0] != 0 {
		t.Fatalf("K=0 column = %v", col)
	}
}

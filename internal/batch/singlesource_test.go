package batch

import (
	"math/rand"
	"testing"

	"repro/internal/race"
)

// SingleSource must equal the query column of the full matrix-form
// computation bit for bit: same kernels, same accumulation order, just
// restricted to one column.
func TestSingleSourceMatchesMatrixForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		n := 5 + rng.Intn(20)
		g := randGraph(rng, n, 3*n)
		full := MatrixForm(g, 0.6, 10)
		q := g.BackwardTransition()
		for query := 0; query < n; query++ {
			col, err := SingleSource(q, 0.6, 10, query)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < n; v++ {
				if d := col[v] - full.At(v, query); d > 1e-12 || d < -1e-12 {
					t.Fatalf("SingleSource(%d)[%d] = %v, full %v", query, v, col[v], full.At(v, query))
				}
			}
		}
	}
}

// The single-source query is the O(n)-memory escape hatch for graphs too
// large to score fully, so its allocation count must not scale with the
// iteration count K (the old implementation left O(K²) transient vectors
// to the collector): a constant handful of O(n) buffers carries the
// whole series.
func TestSingleSourceAllocsIndependentOfK(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation-count assertion skipped under -race: detector instrumentation allocates, so AllocsPerRun counts are not meaningful")
	}
	rng := rand.New(rand.NewSource(17))
	g := randGraph(rng, 60, 240)
	q := g.BackwardTransition()
	measure := func(k int) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := SingleSource(q, 0.6, k, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(5), measure(40)
	if small != large {
		t.Fatalf("allocations scale with K: %v allocs at K=5, %v at K=40", small, large)
	}
	// The five series buffers plus the error-free return path; a little
	// headroom for runtime accounting, but nowhere near K² vectors.
	if large > 8 {
		t.Fatalf("SingleSource allocated %v times, want the constant buffer set (≤ 8)", large)
	}
}

// CSR.MulVecTTo must be bit-identical to the allocating MulVecT.
func TestMulVecTToMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randGraph(rng, 30, 120)
	q := g.BackwardTransition()
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := q.MulVecT(x)
	got := make([]float64, 30)
	for i := range got {
		got[i] = rng.NormFloat64() // stale garbage the kernel must clear
	}
	q.MulVecTTo(got, x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("MulVecTTo[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

package batch

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// seedMatrixFormQ is the pre-kernel implementation of MatrixFormQ, kept
// verbatim as the reference the unified in-place/parallel kernel must
// reproduce bit-for-bit: it allocates a fresh dense result per iteration
// and runs the untiled column-scatter second product.
func seedMatrixFormQ(q *matrix.CSR, c float64, k int) *matrix.Dense {
	n := q.RowsN
	s := matrix.Identity(n).Scale(1 - c)
	tmp := matrix.NewDense(n, n)
	for iter := 0; iter < k; iter++ {
		tmp.Zero()
		for i := 0; i < q.RowsN; i++ {
			drow := tmp.Row(i)
			for kk := q.RowPtr[i]; kk < q.RowPtr[i+1]; kk++ {
				matrix.Axpy(q.Val[kk], s.Row(q.ColIdx[kk]), drow)
			}
		}
		next := matrix.NewDense(n, n)
		for i := 0; i < q.RowsN; i++ {
			for kk := q.RowPtr[i]; kk < q.RowPtr[i+1]; kk++ {
				col, v := q.ColIdx[kk], q.Val[kk]
				for a := 0; a < tmp.Rows; a++ {
					next.Data[a*next.Cols+i] += v * tmp.Data[a*tmp.Cols+col]
				}
			}
		}
		next.Scale(c)
		for d := 0; d < n; d++ {
			next.Add(d, d, 1-c)
		}
		s = next
	}
	return s
}

// The unified kernel must be entrywise identical (exact float equality)
// to the seed implementation for every worker count: the per-entry
// accumulation order is fixed by the CSR layout, not the partition or the
// scatter tiling.
func TestMatrixFormKernelMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(60)
		g := randGraph(rng, n, 3*n)
		q := g.BackwardTransition()
		c := 0.3 + 0.5*rng.Float64()
		k := rng.Intn(9)
		want := seedMatrixFormQ(q, c, k)
		if d := matrix.MaxAbsDiff(MatrixFormQ(q, c, k), want); d != 0 {
			t.Fatalf("trial %d: MatrixFormQ differs from seed by %g", trial, d)
		}
		for _, workers := range []int{0, 1, 2, 3, 7, n + 5} {
			if d := matrix.MaxAbsDiff(MatrixFormParallel(q, c, k, workers), want); d != 0 {
				t.Fatalf("trial %d: MatrixFormParallel(workers=%d) differs from seed by %g", trial, workers, d)
			}
		}
	}
}

// MatrixFormInto must overwrite whatever its buffers previously held.
func TestMatrixFormIntoReusesDirtyBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randGraph(rng, 30, 90)
	q := g.BackwardTransition()
	want := seedMatrixFormQ(q, 0.6, 6)
	s := matrix.NewDense(30, 30)
	tmp := matrix.NewDense(30, 30)
	for i := range s.Data {
		s.Data[i] = rng.Float64()
		tmp.Data[i] = rng.Float64()
	}
	for _, workers := range []int{1, 3} {
		MatrixFormInto(s, tmp, q, 0.6, 6, workers)
		if d := matrix.MaxAbsDiff(s, want); d != 0 {
			t.Fatalf("workers=%d: dirty-buffer run differs by %g", workers, d)
		}
	}
}

func TestMatrixFormIntoDimensionPanic(t *testing.T) {
	g := randGraph(rand.New(rand.NewSource(3)), 10, 20)
	q := g.BackwardTransition()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for mismatched buffers")
		}
	}()
	MatrixFormInto(matrix.NewDense(9, 9), matrix.NewDense(10, 10), q, 0.6, 3, 1)
}

// The varint group key of PartialSumsShared must keep the grouping
// semantics of the fmt-based seed: nodes share a partial-sum row iff
// their in-neighbor sets are identical.
func TestPartialSumsSharedGroupingExact(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(40)
		g := randGraph(rng, n, 2*n)
		want := PartialSums(g, 0.6, 7)
		got := PartialSumsShared(g, 0.6, 7)
		if d := matrix.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("trial %d: shared grouping drifted %g from PartialSums", trial, d)
		}
	}
}

package batch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestMatrixFormParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		g := randGraph(rng, 10+rng.Intn(30), 60+rng.Intn(60))
		q := g.BackwardTransition()
		seq := MatrixFormQ(q, 0.6, 8)
		for _, workers := range []int{1, 2, 4, 7} {
			par := MatrixFormParallel(q, 0.6, 8, workers)
			if d := matrix.MaxAbsDiff(seq, par); d != 0 {
				t.Fatalf("trial %d workers %d: parallel diverges by %g", trial, workers, d)
			}
		}
	}
}

func TestMatrixFormParallelDefaultsWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g := randGraph(rng, 20, 80)
	q := g.BackwardTransition()
	par := MatrixFormParallel(q, 0.8, 5, 0) // GOMAXPROCS
	seq := MatrixFormQ(q, 0.8, 5)
	if matrix.MaxAbsDiff(seq, par) != 0 {
		t.Fatal("default worker count diverges")
	}
}

func TestMatrixFormParallelMoreWorkersThanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := randGraph(rng, 3, 4)
	q := g.BackwardTransition()
	par := MatrixFormParallel(q, 0.6, 4, 64)
	seq := MatrixFormQ(q, 0.6, 4)
	if matrix.MaxAbsDiff(seq, par) != 0 {
		t.Fatal("worker clamp diverges")
	}
}

// Property: parallel result is bit-identical across worker counts.
func TestQuickParallelDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGraph(rng, 5+rng.Intn(15), 30)
		q := g.BackwardTransition()
		a := MatrixFormParallel(q, 0.6, 6, 2)
		b := MatrixFormParallel(q, 0.6, 6, 5)
		return matrix.MaxAbsDiff(a, b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

package batch

import (
	"runtime"

	"repro/internal/matrix"
)

// MatrixFormInto is the unified matrix-form kernel behind MatrixFormQ and
// MatrixFormParallel: it computes K iterations of S ← C·Q·S·Qᵀ + (1−C)·Iₙ
// into s, ping-ponging between s and tmp so the whole iteration allocates
// nothing. Both buffers must be n×n (n = q's row count); tmp's contents
// are scratch. workers ≤ 0 selects GOMAXPROCS.
//
// Each of the two sparse-dense products per iteration is row-partitioned
// across workers (the CPU analogue of He et al.'s parallel SimRank
// aggregation [8], which the paper's related work contrasts with its
// pruning approach). Per output row the floating-point accumulation order
// is fixed by the CSR layout of q, not by the partition, so the result is
// bit-identical for every worker count — callers may switch between
// sequential and parallel freely without perturbing exact tests.
//
//simrank:noalloc
func MatrixFormInto(s, tmp *matrix.Dense, q *matrix.CSR, c float64, k, workers int) {
	n := q.RowsN
	if s.Rows != n || s.Cols != n || tmp.Rows != n || tmp.Cols != n {
		panic("batch: MatrixFormInto buffer dimension mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// S₀ = (1−C)·Iₙ.
	s.Zero()
	for d := 0; d < n; d++ {
		s.Set(d, d, 1-c)
	}
	if workers <= 1 {
		// Serial fast path: calling the kernels directly (instead of
		// through ParallelRows) keeps the closures from escaping, so a
		// one-worker recompute performs zero heap allocations.
		for iter := 0; iter < k; iter++ {
			matrix.SpMulDense(tmp, q, s, 0, n)
			matrix.SpMulDenseT(s, q, tmp, c, 0, n)
			for d := 0; d < n; d++ {
				s.Add(d, d, 1-c)
			}
		}
		return
	}
	for iter := 0; iter < k; iter++ {
		// tmp = Q·S, rows split across workers.
		//simrank:allocok parallel path: O(workers) closures per iteration, the documented trade for the speedup
		matrix.ParallelRows(n, workers, func(lo, hi int) {
			matrix.SpMulDense(tmp, q, s, lo, hi)
		})
		// s = C·(tmp·Qᵀ) + (1−C)·I; row a of the result reads only row a
		// of tmp, so the same row partition is race-free.
		//simrank:allocok parallel path: O(workers) closures per iteration, the documented trade for the speedup
		matrix.ParallelRows(n, workers, func(lo, hi int) {
			matrix.SpMulDenseT(s, q, tmp, c, lo, hi)
			for d := lo; d < hi; d++ {
				s.Add(d, d, 1-c)
			}
		})
	}
}

// MatrixFormParallel computes the same matrix-form fixed point as
// MatrixFormQ with the two sparse-dense products of each iteration
// row-partitioned across workers. workers ≤ 0 selects GOMAXPROCS.
//
// The output is bit-identical to MatrixFormQ: both are the same unified
// kernel (MatrixFormInto), only the row partition differs.
func MatrixFormParallel(q *matrix.CSR, c float64, k, workers int) *matrix.Dense {
	n := q.RowsN
	s := matrix.NewDense(n, n)
	MatrixFormInto(s, matrix.NewDense(n, n), q, c, k, workers)
	return s
}

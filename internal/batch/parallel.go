package batch

import (
	"runtime"
	"sync"

	"repro/internal/matrix"
)

// MatrixFormParallel computes the same matrix-form fixed point as
// MatrixFormQ with the two sparse-dense products of each iteration
// row-partitioned across workers — the CPU analogue of He et al.'s
// parallel SimRank aggregation [8], which the paper's related work
// contrasts with its pruning approach. workers ≤ 0 selects GOMAXPROCS.
//
// The output is bit-identical to MatrixFormQ: each output row is the same
// left-to-right accumulation, only computed on a different goroutine.
func MatrixFormParallel(q *matrix.CSR, c float64, k, workers int) *matrix.Dense {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := q.RowsN
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return MatrixFormQ(q, c, k)
	}
	s := matrix.Identity(n).Scale(1 - c)
	tmp := matrix.NewDense(n, n)
	next := matrix.NewDense(n, n)
	for iter := 0; iter < k; iter++ {
		// tmp = Q·S, rows split across workers.
		parallelRows(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				drow := tmp.Row(i)
				for x := range drow {
					drow[x] = 0
				}
				for kk := q.RowPtr[i]; kk < q.RowPtr[i+1]; kk++ {
					matrix.Axpy(q.Val[kk], s.Row(q.ColIdx[kk]), drow)
				}
			}
		})
		// next = C·(tmp·Qᵀ) + (1−C)·I; row a of the result reads only
		// row a of tmp, so the same row partition is race-free.
		parallelRows(n, workers, func(lo, hi int) {
			for a := lo; a < hi; a++ {
				trow := tmp.Row(a)
				nrow := next.Row(a)
				for x := range nrow {
					nrow[x] = 0
				}
				for i := 0; i < n; i++ {
					var sum float64
					for kk := q.RowPtr[i]; kk < q.RowPtr[i+1]; kk++ {
						sum += q.Val[kk] * trow[q.ColIdx[kk]]
					}
					nrow[i] = c * sum
				}
				nrow[a] += 1 - c
			}
		})
		s, next = next, s
	}
	return s
}

// parallelRows runs fn over [0, n) split into contiguous chunks, one per
// worker, and waits for completion.
func parallelRows(n, workers int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Package batch implements the batch (from-scratch) SimRank algorithms the
// paper builds on and compares against:
//
//   - JehWidom: the original O(Kd²n²) iterative fixed point [3];
//   - PartialSums: Lizorkin et al.'s O(Kdn²) partial-sums memoization [13];
//   - PartialSumsShared: Yu et al.'s fine-grained sharing of common partial
//     sums [6] — the algorithm the paper calls "Batch";
//   - MatrixForm: the power iteration on S = C·Q·S·Qᵀ + (1−C)·Iₙ (Eq. 2),
//     the representation the incremental machinery of internal/core is
//     derived from.
//
// JehWidom, PartialSums and PartialSumsShared compute the *iterative form*
// (s(a,a) = 1 pinned); MatrixForm computes the *matrix form*, whose diagonal
// is ≥ 1−C but not 1 (the two forms' consistency is discussed in [1]).
package batch

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// validate panics on parameter misuse common to all algorithms.
func validate(g *graph.DiGraph, c float64, k int) {
	if g == nil {
		panic("batch: nil graph")
	}
	if c <= 0 || c >= 1 {
		panic(fmt.Sprintf("batch: damping factor C=%v outside (0,1)", c))
	}
	if k < 0 {
		panic(fmt.Sprintf("batch: negative iteration count %d", k))
	}
}

// JehWidom computes K iterations of the original SimRank recurrence
// (Eq. 1): s(a,b) = C/(|I(a)||I(b)|) Σ_{i∈I(a)} Σ_{j∈I(b)} s(i,j) with
// s(a,a)=1, s=0 when either node has no in-neighbors. O(Kd²n²) time.
func JehWidom(g *graph.DiGraph, c float64, k int) *matrix.Dense {
	validate(g, c, k)
	n := g.N()
	s := matrix.Identity(n)
	next := matrix.NewDense(n, n)
	ins := make([][]int, n)
	for v := 0; v < n; v++ {
		ins[v] = g.InNeighbors(v)
	}
	for iter := 0; iter < k; iter++ {
		next.Zero()
		for a := 0; a < n; a++ {
			ia := ins[a]
			if len(ia) == 0 {
				continue
			}
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				ib := ins[b]
				if len(ib) == 0 {
					continue
				}
				var sum float64
				for _, i := range ia {
					row := s.Row(i)
					for _, j := range ib {
						sum += row[j]
					}
				}
				next.Set(a, b, c*sum/float64(len(ia)*len(ib)))
			}
		}
		for d := 0; d < n; d++ {
			next.Set(d, d, 1)
		}
		s, next = next, s
	}
	return s
}

// PartialSums computes the same iterative-form SimRank as JehWidom but in
// O(Kdn²) time via Lizorkin et al.'s partial-sums memoization: for every
// node a it first materializes Partial_a(j) = Σ_{i∈I(a)} s(i,j) for all j,
// then every pair (a,b) reuses those row sums.
func PartialSums(g *graph.DiGraph, c float64, k int) *matrix.Dense {
	validate(g, c, k)
	n := g.N()
	s := matrix.Identity(n)
	next := matrix.NewDense(n, n)
	partial := matrix.NewDense(n, n) // partial[a][j] = Σ_{i∈I(a)} s(i,j)
	ins := make([][]int, n)
	for v := 0; v < n; v++ {
		ins[v] = g.InNeighbors(v)
	}
	for iter := 0; iter < k; iter++ {
		partial.Zero()
		for a := 0; a < n; a++ {
			row := partial.Row(a)
			for _, i := range ins[a] {
				matrix.Axpy(1, s.Row(i), row)
			}
		}
		next.Zero()
		for a := 0; a < n; a++ {
			da := len(ins[a])
			if da == 0 {
				continue
			}
			prow := partial.Row(a)
			nrow := next.Row(a)
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				db := len(ins[b])
				if db == 0 {
					continue
				}
				var sum float64
				for _, j := range ins[b] {
					sum += prow[j]
				}
				nrow[b] = c * sum / float64(da*db)
			}
		}
		for d := 0; d < n; d++ {
			next.Set(d, d, 1)
		}
		s, next = next, s
	}
	return s
}

// PartialSumsShared is the "Batch" comparator of the paper's Exp-1: it
// augments PartialSums with Yu et al.-style fine-grained sharing — nodes
// with identical in-neighbor sets share one partial-sum row instead of
// recomputing it (O(Kd'n²) with d' ≤ d). The output is identical to
// JehWidom/PartialSums.
func PartialSumsShared(g *graph.DiGraph, c float64, k int) *matrix.Dense {
	validate(g, c, k)
	n := g.N()
	s := matrix.Identity(n)
	next := matrix.NewDense(n, n)
	ins := make([][]int, n)
	for v := 0; v < n; v++ {
		ins[v] = g.InNeighbors(v)
	}
	// Group nodes by identical in-neighbor set: each group computes its
	// partial-sum row once.
	groupOf := make([]int, n)
	var groupRep []int // representative node per group
	seen := map[string]int{}
	for v := 0; v < n; v++ {
		key := fmt.Sprint(ins[v])
		gid, ok := seen[key]
		if !ok {
			gid = len(groupRep)
			seen[key] = gid
			groupRep = append(groupRep, v)
		}
		groupOf[v] = gid
	}
	partial := matrix.NewDense(len(groupRep), n)
	for iter := 0; iter < k; iter++ {
		partial.Zero()
		for gid, rep := range groupRep {
			row := partial.Row(gid)
			for _, i := range ins[rep] {
				matrix.Axpy(1, s.Row(i), row)
			}
		}
		next.Zero()
		for a := 0; a < n; a++ {
			da := len(ins[a])
			if da == 0 {
				continue
			}
			prow := partial.Row(groupOf[a])
			nrow := next.Row(a)
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				db := len(ins[b])
				if db == 0 {
					continue
				}
				var sum float64
				for _, j := range ins[b] {
					sum += prow[j]
				}
				nrow[b] = c * sum / float64(da*db)
			}
		}
		for d := 0; d < n; d++ {
			next.Set(d, d, 1)
		}
		s, next = next, s
	}
	return s
}

// MatrixForm computes K iterations of the matrix-form SimRank fixed point
// (Eq. 2): S ← C·Q·S·Qᵀ + (1−C)·Iₙ starting from S₀ = (1−C)·Iₙ, i.e. the
// K-th partial sum of the series (Eq. 34)
//
//	S = (1−C)·Σ_k C^k·Q^k·(Qᵀ)^k.
//
// O(Kdn²) time via two sparse-dense products per iteration.
func MatrixForm(g *graph.DiGraph, c float64, k int) *matrix.Dense {
	validate(g, c, k)
	q := g.BackwardTransition()
	return MatrixFormQ(q, c, k)
}

// MatrixFormQ is MatrixForm for a pre-built transition matrix Q.
func MatrixFormQ(q *matrix.CSR, c float64, k int) *matrix.Dense {
	n := q.RowsN
	s := matrix.Identity(n).Scale(1 - c)
	tmp := matrix.NewDense(n, n)
	for iter := 0; iter < k; iter++ {
		// tmp = Q·S  (row i of tmp = Σ_k Q[i][k]·S[k][·])
		spMulDense(tmp, q, s)
		// s = C·(Q·Sᵀ-style second product) + (1−C)·I:
		// (Q·S·Qᵀ) = (Q·(Q·S)ᵀ)ᵀ, and Q·S·Qᵀ is symmetric when S is,
		// so we can write the result directly.
		next := matrix.NewDense(n, n)
		spMulDenseT(next, q, tmp)
		next.Scale(c)
		for d := 0; d < n; d++ {
			next.Add(d, d, 1-c)
		}
		s = next
	}
	return s
}

// spMulDense computes dst = q·s for CSR q and dense s.
func spMulDense(dst *matrix.Dense, q *matrix.CSR, s *matrix.Dense) {
	dst.Zero()
	for i := 0; i < q.RowsN; i++ {
		drow := dst.Row(i)
		for kk := q.RowPtr[i]; kk < q.RowPtr[i+1]; kk++ {
			matrix.Axpy(q.Val[kk], s.Row(q.ColIdx[kk]), drow)
		}
	}
}

// spMulDenseT computes dst = (q·tᵀ)ᵀ = t·qᵀ for CSR q and dense t.
func spMulDenseT(dst *matrix.Dense, q *matrix.CSR, t *matrix.Dense) {
	dst.Zero()
	// dst[a][i] = Σ_k q[i][k]·t[a][k] → iterate rows of q, scatter columns.
	for i := 0; i < q.RowsN; i++ {
		for kk := q.RowPtr[i]; kk < q.RowPtr[i+1]; kk++ {
			col, v := q.ColIdx[kk], q.Val[kk]
			for a := 0; a < t.Rows; a++ {
				dst.Data[a*dst.Cols+i] += v * t.Data[a*t.Cols+col]
			}
		}
	}
}

// Package batch implements the batch (from-scratch) SimRank algorithms the
// paper builds on and compares against:
//
//   - JehWidom: the original O(Kd²n²) iterative fixed point [3];
//   - PartialSums: Lizorkin et al.'s O(Kdn²) partial-sums memoization [13];
//   - PartialSumsShared: Yu et al.'s fine-grained sharing of common partial
//     sums [6] — the algorithm the paper calls "Batch";
//   - MatrixForm: the power iteration on S = C·Q·S·Qᵀ + (1−C)·Iₙ (Eq. 2),
//     the representation the incremental machinery of internal/core is
//     derived from.
//
// JehWidom, PartialSums and PartialSumsShared compute the *iterative form*
// (s(a,a) = 1 pinned); MatrixForm computes the *matrix form*, whose diagonal
// is ≥ 1−C but not 1 (the two forms' consistency is discussed in [1]).
package batch

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// validate panics on parameter misuse common to all algorithms.
func validate(g *graph.DiGraph, c float64, k int) {
	if g == nil {
		panic("batch: nil graph")
	}
	if c <= 0 || c >= 1 {
		panic(fmt.Sprintf("batch: damping factor C=%v outside (0,1)", c))
	}
	if k < 0 {
		panic(fmt.Sprintf("batch: negative iteration count %d", k))
	}
}

// JehWidom computes K iterations of the original SimRank recurrence
// (Eq. 1): s(a,b) = C/(|I(a)||I(b)|) Σ_{i∈I(a)} Σ_{j∈I(b)} s(i,j) with
// s(a,a)=1, s=0 when either node has no in-neighbors. O(Kd²n²) time.
func JehWidom(g *graph.DiGraph, c float64, k int) *matrix.Dense {
	validate(g, c, k)
	n := g.N()
	s := matrix.Identity(n)
	next := matrix.NewDense(n, n)
	ins := make([][]int, n)
	for v := 0; v < n; v++ {
		ins[v] = g.InNeighbors(v)
	}
	for iter := 0; iter < k; iter++ {
		next.Zero()
		for a := 0; a < n; a++ {
			ia := ins[a]
			if len(ia) == 0 {
				continue
			}
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				ib := ins[b]
				if len(ib) == 0 {
					continue
				}
				var sum float64
				for _, i := range ia {
					row := s.Row(i)
					for _, j := range ib {
						sum += row[j]
					}
				}
				next.Set(a, b, c*sum/float64(len(ia)*len(ib)))
			}
		}
		for d := 0; d < n; d++ {
			next.Set(d, d, 1)
		}
		s, next = next, s
	}
	return s
}

// PartialSums computes the same iterative-form SimRank as JehWidom but in
// O(Kdn²) time via Lizorkin et al.'s partial-sums memoization: for every
// node a it first materializes Partial_a(j) = Σ_{i∈I(a)} s(i,j) for all j,
// then every pair (a,b) reuses those row sums.
func PartialSums(g *graph.DiGraph, c float64, k int) *matrix.Dense {
	validate(g, c, k)
	n := g.N()
	s := matrix.Identity(n)
	next := matrix.NewDense(n, n)
	partial := matrix.NewDense(n, n) // partial[a][j] = Σ_{i∈I(a)} s(i,j)
	ins := make([][]int, n)
	for v := 0; v < n; v++ {
		ins[v] = g.InNeighbors(v)
	}
	for iter := 0; iter < k; iter++ {
		partial.Zero()
		for a := 0; a < n; a++ {
			row := partial.Row(a)
			for _, i := range ins[a] {
				matrix.Axpy(1, s.Row(i), row)
			}
		}
		next.Zero()
		for a := 0; a < n; a++ {
			da := len(ins[a])
			if da == 0 {
				continue
			}
			prow := partial.Row(a)
			nrow := next.Row(a)
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				db := len(ins[b])
				if db == 0 {
					continue
				}
				var sum float64
				for _, j := range ins[b] {
					sum += prow[j]
				}
				nrow[b] = c * sum / float64(da*db)
			}
		}
		for d := 0; d < n; d++ {
			next.Set(d, d, 1)
		}
		s, next = next, s
	}
	return s
}

// PartialSumsShared is the "Batch" comparator of the paper's Exp-1: it
// augments PartialSums with Yu et al.-style fine-grained sharing — nodes
// with identical in-neighbor sets share one partial-sum row instead of
// recomputing it (O(Kd'n²) with d' ≤ d). The output is identical to
// JehWidom/PartialSums.
func PartialSumsShared(g *graph.DiGraph, c float64, k int) *matrix.Dense {
	validate(g, c, k)
	n := g.N()
	s := matrix.Identity(n)
	next := matrix.NewDense(n, n)
	ins := make([][]int, n)
	for v := 0; v < n; v++ {
		ins[v] = g.InNeighbors(v)
	}
	// Group nodes by identical in-neighbor set: each group computes its
	// partial-sum row once. The key is the varint encoding of the sorted
	// neighbor ids — deterministic and collision-free (varints are
	// self-delimiting), without fmt's per-node formatting cost.
	groupOf := make([]int, n)
	var groupRep []int // representative node per group
	seen := map[string]int{}
	var keyBuf []byte
	for v := 0; v < n; v++ {
		keyBuf = keyBuf[:0]
		for _, u := range ins[v] {
			keyBuf = binary.AppendUvarint(keyBuf, uint64(u))
		}
		key := string(keyBuf)
		gid, ok := seen[key]
		if !ok {
			gid = len(groupRep)
			seen[key] = gid
			groupRep = append(groupRep, v)
		}
		groupOf[v] = gid
	}
	partial := matrix.NewDense(len(groupRep), n)
	for iter := 0; iter < k; iter++ {
		partial.Zero()
		for gid, rep := range groupRep {
			row := partial.Row(gid)
			for _, i := range ins[rep] {
				matrix.Axpy(1, s.Row(i), row)
			}
		}
		next.Zero()
		for a := 0; a < n; a++ {
			da := len(ins[a])
			if da == 0 {
				continue
			}
			prow := partial.Row(groupOf[a])
			nrow := next.Row(a)
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				db := len(ins[b])
				if db == 0 {
					continue
				}
				var sum float64
				for _, j := range ins[b] {
					sum += prow[j]
				}
				nrow[b] = c * sum / float64(da*db)
			}
		}
		for d := 0; d < n; d++ {
			next.Set(d, d, 1)
		}
		s, next = next, s
	}
	return s
}

// MatrixForm computes K iterations of the matrix-form SimRank fixed point
// (Eq. 2): S ← C·Q·S·Qᵀ + (1−C)·Iₙ starting from S₀ = (1−C)·Iₙ, i.e. the
// K-th partial sum of the series (Eq. 34)
//
//	S = (1−C)·Σ_k C^k·Q^k·(Qᵀ)^k.
//
// O(Kdn²) time via two sparse-dense products per iteration.
func MatrixForm(g *graph.DiGraph, c float64, k int) *matrix.Dense {
	validate(g, c, k)
	q := g.BackwardTransition()
	return MatrixFormQ(q, c, k)
}

// MatrixFormQ is MatrixForm for a pre-built transition matrix Q. It is the
// workers = 1 case of the unified kernel (see MatrixFormInto); output is
// bit-identical to every other worker count.
func MatrixFormQ(q *matrix.CSR, c float64, k int) *matrix.Dense {
	n := q.RowsN
	s := matrix.NewDense(n, n)
	MatrixFormInto(s, matrix.NewDense(n, n), q, c, k, 1)
	return s
}

package replica_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	simrank "repro"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// fakeLeader is a scripted GET /wal endpoint: the test pushes
// pre-encoded frames (or a canned error status) and observes every
// connection attempt with its from= position — full control over the
// stream a Replica sees, which is how the gate and divergence edges get
// pinned without racing a real engine.
type fakeLeader struct {
	srv    *httptest.Server
	frames chan []byte
	status atomic.Int64 // nonzero: answer this status instead of streaming

	mu    sync.Mutex
	froms []string
}

func newFakeLeader(t *testing.T) *fakeLeader {
	t.Helper()
	fl := &fakeLeader{frames: make(chan []byte, 64)}
	fl.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl.mu.Lock()
		fl.froms = append(fl.froms, r.URL.Query().Get("from"))
		fl.mu.Unlock()
		if st := fl.status.Load(); st != 0 {
			w.WriteHeader(int(st))
			return
		}
		f := w.(http.Flusher)
		w.WriteHeader(http.StatusOK)
		f.Flush()
		for {
			select {
			case b, ok := <-fl.frames:
				if !ok {
					return
				}
				if _, err := w.Write(b); err != nil {
					return
				}
				f.Flush()
			case <-r.Context().Done():
				return
			}
		}
	}))
	t.Cleanup(fl.srv.Close)
	return fl
}

func (fl *fakeLeader) send(t *testing.T, rec *wal.Record) {
	t.Helper()
	select {
	case fl.frames <- wal.EncodeFrame(nil, rec):
	case <-time.After(5 * time.Second):
		t.Fatal("fake leader frame queue full")
	}
}

func (fl *fakeLeader) connections() int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return len(fl.froms)
}

func (fl *fakeLeader) lastFrom(t *testing.T) string {
	t.Helper()
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if len(fl.froms) == 0 {
		t.Fatal("no connections recorded")
	}
	return fl.froms[len(fl.froms)-1]
}

// startReplica runs rep until the test ends and returns the channel
// Run's result lands on.
func startReplica(t *testing.T, rep *replica.Replica) chan error {
	t.Helper()
	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { done <- rep.Run(ctx) }()
	return done
}

// waitFor polls cond until true or fails the test.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func newFollowerEngine(t *testing.T) *simrank.ConcurrentEngine {
	t.Helper()
	eng, err := simrank.NewConcurrentEngine(4, nil, simrank.Options{K: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestReadyzFlipsExactlyAtLagBound pins the readiness gate's boundary:
// with -follow-lag N, /readyz (and CaughtUp) answers ready at lag == N
// and not-ready at lag == N+1 — the flip is exact, not approximate, so
// rollout gates can reason in epochs.
func TestReadyzFlipsExactlyAtLagBound(t *testing.T) {
	fl := newFakeLeader(t)
	eng := newFollowerEngine(t)
	rep := replica.New(eng, replica.Options{
		Leader:       fl.srv.URL,
		LagBound:     2,
		StallTimeout: 5 * time.Second,
		BackoffMin:   time.Millisecond,
	})
	// The follower's own HTTP face, for the end-to-end 503/200 check.
	fsrv := httptest.NewServer(server.New(eng, server.Config{Leader: fl.srv.URL, Replica: rep}))
	t.Cleanup(fsrv.Close)

	readyz := func() int {
		resp, err := http.Get(fsrv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if rep.CaughtUp() {
		t.Fatal("caught up before any frame arrived (leader position unknown)")
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with no leader contact, want 503", got)
	}

	startReplica(t, rep)

	// Leader at epoch 3, follower at 0: lag 3 > bound 2 → not ready.
	fl.send(t, wal.Heartbeat(3))
	waitFor(t, "leader epoch 3", func() bool { return rep.Stats().LeaderEpoch == 3 })
	if rep.CaughtUp() {
		t.Fatal("caught up at lag 3 with bound 2")
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d at lag 3, want 503", got)
	}

	// One record applied: lag exactly 2 == bound → ready. (Recompute
	// records carry no payload and always apply, so the script controls
	// epochs precisely.)
	fl.send(t, &wal.Record{Epoch: 1, Kind: wal.KindRecompute})
	waitFor(t, "applied epoch 1", func() bool { return rep.Stats().AppliedEpoch == 1 })
	if !rep.CaughtUp() {
		t.Fatalf("not caught up at lag exactly the bound: %+v", rep.Stats())
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz = %d at lag == bound, want 200", got)
	}

	// Leader runs ahead to 6: lag 5 → back to not-ready.
	fl.send(t, wal.Heartbeat(6))
	waitFor(t, "leader epoch 6", func() bool { return rep.Stats().LeaderEpoch == 6 })
	if rep.CaughtUp() {
		t.Fatal("caught up at lag 5 with bound 2")
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d at lag 5, want 503", got)
	}
	if rep.Stats().LagMS <= 0 {
		t.Fatalf("lag_ms = %v while epochs behind", rep.Stats().LagMS)
	}

	// Catch all the way up: lag 0 → ready, lag clock reset.
	for e := uint64(2); e <= 6; e++ {
		fl.send(t, &wal.Record{Epoch: e, Kind: wal.KindRecompute})
	}
	waitFor(t, "applied epoch 6", func() bool { return rep.Stats().AppliedEpoch == 6 })
	if !rep.CaughtUp() {
		t.Fatalf("not caught up at lag 0: %+v", rep.Stats())
	}
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz = %d at lag 0, want 200", got)
	}
	if ms := rep.Stats().LagMS; ms != 0 {
		t.Fatalf("lag_ms = %v after catching up, want 0", ms)
	}
}

// TestStalledLeaderTripsReconnect: a leader that stops sending frames —
// up at TCP level, wedged above it — trips the stall watchdog; the
// follower re-dials from its applied epoch and counts the reconnect.
func TestStalledLeaderTripsReconnect(t *testing.T) {
	fl := newFakeLeader(t)
	eng := newFollowerEngine(t)
	rep := replica.New(eng, replica.Options{
		Leader:       fl.srv.URL,
		StallTimeout: 50 * time.Millisecond,
		BackoffMin:   time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
	})
	startReplica(t, rep)

	fl.send(t, &wal.Record{Epoch: 1, Kind: wal.KindRecompute})
	waitFor(t, "applied epoch 1", func() bool { return rep.Stats().AppliedEpoch == 1 })
	// ...and now the leader goes silent. No heartbeat within the stall
	// timeout → reconnect, resuming from the applied epoch.
	waitFor(t, "a reconnect", func() bool { return rep.Stats().Reconnects >= 1 })
	waitFor(t, "the re-dial to land", func() bool { return fl.connections() >= 2 })
	if from := fl.lastFrom(t); from != "1" {
		t.Fatalf("reconnected with from=%s, want from=1 (the applied epoch)", from)
	}
}

// TestEpochRegressionIsTerminal: a stream whose next record does not
// advance past the follower's state is divergence — Run must return
// ErrDiverged instead of reconnecting into a silent fork.
func TestEpochRegressionIsTerminal(t *testing.T) {
	fl := newFakeLeader(t)
	eng := newFollowerEngine(t)
	rep := replica.New(eng, replica.Options{
		Leader:       fl.srv.URL,
		StallTimeout: 5 * time.Second,
		BackoffMin:   time.Millisecond,
	})
	done := startReplica(t, rep)

	fl.send(t, &wal.Record{Epoch: 1, Kind: wal.KindRecompute})
	fl.send(t, &wal.Record{Epoch: 2, Kind: wal.KindRecompute})
	waitFor(t, "applied epoch 2", func() bool { return rep.Stats().AppliedEpoch == 2 })
	fl.send(t, &wal.Record{Epoch: 2, Kind: wal.KindRecompute}) // does not advance
	select {
	case err := <-done:
		if !errors.Is(err, replica.ErrDiverged) {
			t.Fatalf("Run returned %v, want ErrDiverged", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run kept going past a regressed record epoch")
	}
	if rep.Stats().AppliedEpoch != 2 {
		t.Fatalf("regressed record mutated state: applied %d", rep.Stats().AppliedEpoch)
	}
}

// TestHeartbeatRegressionIsTerminal: a heartbeat claiming the leader's
// position is BEHIND what this follower already applied means the
// follower replayed history the leader no longer has (a leader
// restarted without its log). Terminal, loudly.
func TestHeartbeatRegressionIsTerminal(t *testing.T) {
	fl := newFakeLeader(t)
	eng := newFollowerEngine(t)
	rep := replica.New(eng, replica.Options{
		Leader:       fl.srv.URL,
		StallTimeout: 5 * time.Second,
		BackoffMin:   time.Millisecond,
	})
	done := startReplica(t, rep)

	for e := uint64(1); e <= 3; e++ {
		fl.send(t, &wal.Record{Epoch: e, Kind: wal.KindRecompute})
	}
	waitFor(t, "applied epoch 3", func() bool { return rep.Stats().AppliedEpoch == 3 })
	fl.send(t, wal.Heartbeat(1))
	select {
	case err := <-done:
		if !errors.Is(err, replica.ErrDiverged) {
			t.Fatalf("Run returned %v, want ErrDiverged", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run kept going past a regressed heartbeat")
	}
}

// TestTruncationFloorIsTerminal: a 410 from the leader means the
// records this follower needs were truncated after a snapshot — no
// retry can produce them, so Run returns ErrDiverged (re-seed from a
// leader snapshot) instead of hammering the endpoint.
func TestTruncationFloorIsTerminal(t *testing.T) {
	fl := newFakeLeader(t)
	fl.status.Store(http.StatusGone)
	eng := newFollowerEngine(t)
	rep := replica.New(eng, replica.Options{
		Leader:     fl.srv.URL,
		BackoffMin: time.Millisecond,
	})
	done := startReplica(t, rep)
	select {
	case err := <-done:
		if !errors.Is(err, replica.ErrDiverged) {
			t.Fatalf("Run returned %v, want ErrDiverged", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run kept retrying a 410")
	}
	if fl.connections() != 1 {
		t.Fatalf("follower dialed %d times after a 410, want 1", fl.connections())
	}
}

// TestTransientErrorsAreRetried: ordinary failures — here a 500 —
// reconnect with backoff rather than kill the follower.
func TestTransientErrorsAreRetried(t *testing.T) {
	fl := newFakeLeader(t)
	fl.status.Store(http.StatusInternalServerError)
	eng := newFollowerEngine(t)
	rep := replica.New(eng, replica.Options{
		Leader:     fl.srv.URL,
		BackoffMin: time.Millisecond,
		BackoffMax: 5 * time.Millisecond,
	})
	done := startReplica(t, rep)
	waitFor(t, "retries", func() bool { return fl.connections() >= 3 })
	fl.status.Store(0) // leader healthy again
	fl.send(t, &wal.Record{Epoch: 1, Kind: wal.KindRecompute})
	waitFor(t, "recovery", func() bool { return rep.Stats().AppliedEpoch == 1 })
	select {
	case err := <-done:
		t.Fatalf("Run exited on a transient error: %v", err)
	default:
	}
	if rep.Stats().Reconnects < 2 {
		t.Fatalf("reconnects = %d after repeated 500s, want ≥ 2", rep.Stats().Reconnects)
	}
}

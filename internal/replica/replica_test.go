package replica_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	simrank "repro"
	"repro/internal/matrix"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// replicationFixture is one leader/follower pair over real HTTP: the
// leader engine logs to a real WAL and serves GET /wal through
// internal/server; the follower engine (same seed state, same options)
// tails it through a Replica.
type replicationFixture struct {
	leader   *simrank.ConcurrentEngine
	follower *simrank.ConcurrentEngine
	wal      *wal.WAL
	srv      *httptest.Server
	rep      *replica.Replica

	runErr chan error
	cancel context.CancelFunc
}

func newFixture(t *testing.T, n int, edges []simrank.Edge, opts simrank.Options, ropts replica.Options) *replicationFixture {
	t.Helper()
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() }) //simrank:errok test cleanup on a SyncNone log
	leader, err := simrank.NewConcurrentEngine(n, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	leader.SetWAL(w)
	// The server wires SetWALNotify into the stream hub at Attach; the
	// test then writes to the engine directly (the pipeline endpoints are
	// not under test here), which reaches the hub all the same — the
	// notify hook sits on the engine's commit path, not the HTTP one.
	hs := server.New(leader, server.Config{WAL: w, HeartbeatInterval: 5 * time.Millisecond})
	srv := httptest.NewServer(hs)
	t.Cleanup(srv.Close)

	follower, err := simrank.NewConcurrentEngine(n, edges, opts)
	if err != nil {
		t.Fatal(err)
	}
	ropts.Leader = srv.URL
	if ropts.StallTimeout == 0 {
		ropts.StallTimeout = 2 * time.Second
	}
	if ropts.BackoffMin == 0 {
		ropts.BackoffMin = 5 * time.Millisecond
	}
	f := &replicationFixture{leader: leader, follower: follower, wal: w, srv: srv, runErr: make(chan error, 1)}
	f.rep = replica.New(follower, ropts)
	return f
}

func (f *replicationFixture) start(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go func() { f.runErr <- f.rep.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-f.runErr; err != nil {
			t.Errorf("replica Run: %v", err)
		}
	})
}

// waitApplied blocks until the follower has applied through epoch, or
// fails the test after a generous deadline.
func (f *replicationFixture) waitApplied(t *testing.T, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for f.rep.Stats().AppliedEpoch < epoch {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epoch %d waiting for %d (stats %+v)",
				f.rep.Stats().AppliedEpoch, epoch, f.rep.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// assertBitEqual requires two engines on the same backend to answer
// every pairwise similarity with the exact same float64 bits —
// replication is replay, and replay in this repository is bit-exact on
// every backend (the approx tier's stored-walk index included, via its
// derived-seed repair).
func assertBitEqual(t *testing.T, label string, want *simrank.Engine, got *simrank.ConcurrentEngine) {
	t.Helper()
	if want.Epoch() != got.Epoch() {
		t.Fatalf("%s: epoch %d, want %d", label, got.Epoch(), want.Epoch())
	}
	if want.N() != got.N() || want.M() != got.M() {
		t.Fatalf("%s: size (%d,%d), want (%d,%d)", label, got.N(), got.M(), want.N(), want.M())
	}
	ws, gs := want.Similarities(), got.Similarities()
	if ws != nil && gs != nil {
		if d := matrix.MaxAbsDiff(ws, gs); d != 0 {
			t.Fatalf("%s: similarities differ by %g; replication must be bit-exact", label, d)
		}
		return
	}
	// The approx backend has no materialized matrix; its deterministic
	// stored-walk index must still answer every pair bit-identically.
	for i := 0; i < want.N(); i++ {
		for j := i; j < want.N(); j++ {
			if w, g := want.Similarity(i, j), got.Similarity(i, j); w != g {
				t.Fatalf("%s: s(%d,%d) = %v, want %v (bit-exact)", label, i, j, g, w)
			}
		}
	}
}

// oracleAdvance replays the leader's WAL records in (fromEpoch, toEpoch]
// through the PUBLIC engine entry points — an implementation-independent
// second opinion on what each record means — asserting the epoch
// bookkeeping matches the log's.
func oracleAdvance(oracle *simrank.Engine, w *wal.WAL, toEpoch uint64) error {
	errStop := errors.New("past target")
	err := w.Replay(oracle.Epoch(), func(rec *wal.Record) error {
		if rec.Epoch > toEpoch {
			return errStop
		}
		switch rec.Kind {
		case wal.KindUpdate:
			if _, err := oracle.Apply(rec.Updates[0]); err != nil {
				return err
			}
		case wal.KindBatch:
			if err := oracle.ApplyBatch(rec.Updates); err != nil {
				return err
			}
		case wal.KindAddNodes:
			if _, err := oracle.AddNodes(rec.Count); err != nil {
				return err
			}
		case wal.KindRecompute:
			oracle.Recompute()
		default:
			return fmt.Errorf("oracle: unknown kind %d", rec.Kind)
		}
		if oracle.Epoch() != rec.Epoch {
			return fmt.Errorf("oracle reached epoch %d replaying the record at %d", oracle.Epoch(), rec.Epoch)
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		return err
	}
	return nil
}

// TestReplicationEquivalence is the tentpole's proof: a leader under a
// random mixed write stream (unit updates, coalesced batches, node
// growth, recomputes) and a follower tailing its WAL stream agree
// bit-for-bit with a serial oracle at EVERY follower-published epoch —
// across all three backends and both pruning/worker regimes. Run under
// -race in CI, which also exercises the hub/stream/apply concurrency.
func TestReplicationEquivalence(t *testing.T) {
	const n0, steps = 10, 24
	baseEdges := []simrank.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0}, {From: 1, To: 3}}
	configs := []struct {
		name string
		opts simrank.Options
	}{
		{"dense-incsr-w1", simrank.Options{C: 0.6, K: 8, Workers: 1, Backend: simrank.BackendDense}},
		{"dense-incusr-w4", simrank.Options{C: 0.6, K: 8, Workers: 4, DisablePruning: true, Backend: simrank.BackendDense}},
		{"packed-incsr-w4", simrank.Options{C: 0.6, K: 8, Workers: 4, Backend: simrank.BackendPacked}},
		{"approx-w1", simrank.Options{C: 0.6, K: 8, Workers: 1, Backend: simrank.BackendApprox, ApproxWalks: 32, ApproxSeed: 7}},
	}
	for ci, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			// The serial oracle: same seed state, advanced only by records
			// read back from the leader's durable log, compared inside
			// OnApplied — the instant the follower publishes epoch E, its
			// answers are the oracle's at E.
			oracle, err := simrank.NewEngine(n0, baseEdges, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			var (
				mu       sync.Mutex
				checks   int
				checkErr error
			)
			var f *replicationFixture
			f = newFixture(t, n0, baseEdges, cfg.opts, replica.Options{
				OnApplied: func(epoch uint64) {
					mu.Lock()
					defer mu.Unlock()
					if checkErr != nil {
						return
					}
					if err := oracleAdvance(oracle, f.wal, epoch); err != nil {
						checkErr = err
						return
					}
					if oracle.Epoch() != epoch {
						checkErr = fmt.Errorf("oracle at epoch %d after advancing to %d", oracle.Epoch(), epoch)
						return
					}
					// The follower's published view IS epoch here: OnApplied is
					// synchronous in the apply loop, and the replica is the
					// engine's only writer.
					for i := 0; i < oracle.N(); i++ {
						for j := i; j < oracle.N(); j++ {
							if w, g := oracle.Similarity(i, j), f.follower.Similarity(i, j); w != g {
								checkErr = fmt.Errorf("epoch %d: s(%d,%d) = %v, want %v", epoch, i, j, g, w)
								return
							}
						}
					}
					checks++
				},
			})
			f.start(t)

			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			for s := 0; s < steps; s++ {
				applyRandomStep(t, rng, f.leader)
			}
			f.waitApplied(t, f.leader.Epoch())

			mu.Lock()
			defer mu.Unlock()
			if checkErr != nil {
				t.Fatalf("per-epoch oracle check: %v", checkErr)
			}
			if checks == 0 {
				t.Fatal("no per-epoch checks ran")
			}
			assertBitEqual(t, "final state", oracle, f.follower)
			if st := f.rep.Stats(); !st.Connected || st.Records == 0 {
				t.Fatalf("follower stats claim no stream activity: %+v", st)
			}
		})
	}
}

// applyRandomStep drives one random mutation through the leader engine:
// mostly unit updates, with batches, node growth and recomputes mixed
// in. The driver is the engine's only writer, so reading the graph to
// build valid updates is race-free.
func applyRandomStep(t *testing.T, rng *rand.Rand, eng *simrank.ConcurrentEngine) {
	t.Helper()
	switch r := rng.Intn(10); {
	case r < 6: // unit update
		up := randomUpdate(rng, eng, nil)
		if _, err := eng.Apply(up); err != nil {
			t.Fatal(err)
		}
	case r < 8: // coalesced batch of distinct-edge updates
		seen := map[simrank.Edge]bool{}
		var ups []simrank.Update
		for len(ups) < 2+rng.Intn(3) {
			up := randomUpdate(rng, eng, seen)
			seen[up.Edge] = true
			ups = append(ups, up)
		}
		if err := eng.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
	case r < 9: // grow
		if _, err := eng.AddNodes(1); err != nil {
			t.Fatal(err)
		}
	default:
		if err := eng.Recompute(); err != nil {
			t.Fatal(err)
		}
	}
}

// randomUpdate picks a random valid toggle: insert an absent edge or
// delete a present one, avoiding self-loops and edges already claimed
// by the batch under construction.
func randomUpdate(rng *rand.Rand, eng *simrank.ConcurrentEngine, taken map[simrank.Edge]bool) simrank.Update {
	n := eng.N()
	for {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		e := simrank.Edge{From: a, To: b}
		if taken[e] {
			continue
		}
		return simrank.Update{Edge: e, Insert: !eng.HasEdge(a, b)}
	}
}

// TestReplicationSurvivesLeaderRestart: kill the leader's HTTP frontend
// mid-stream, keep writing (the engine and its log live on), bring the
// frontend back at the same address — the follower reconnects from its
// applied epoch, catches up, and converges bit-identically. This is the
// in-process half of the chaos story; cmd/simrankd's e2e kills the
// whole process.
func TestReplicationSurvivesLeaderRestart(t *testing.T) {
	const n0 = 8
	baseEdges := []simrank.Edge{{From: 0, To: 1}, {From: 1, To: 2}}
	opts := simrank.Options{C: 0.6, K: 8, Workers: 1}
	f := newFixture(t, n0, baseEdges, opts, replica.Options{
		StallTimeout: 200 * time.Millisecond,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
	})
	f.start(t)

	rng := rand.New(rand.NewSource(42))
	for s := 0; s < 8; s++ {
		applyRandomStep(t, rng, f.leader)
	}
	f.waitApplied(t, f.leader.Epoch())

	// "Restart": drop every live stream connection but keep the listener.
	// CloseClientConnections severs the follower mid-tail exactly like a
	// crashed frontend; writes committed during the outage are only in
	// the WAL.
	f.srv.CloseClientConnections()
	for s := 0; s < 8; s++ {
		applyRandomStep(t, rng, f.leader)
	}
	f.waitApplied(t, f.leader.Epoch())

	oracle, err := simrank.NewEngine(n0, baseEdges, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracleAdvance(oracle, f.wal, f.leader.Epoch()); err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, "post-restart", oracle, f.follower)
	if st := f.rep.Stats(); st.Reconnects == 0 {
		t.Fatalf("follower never reconnected across the severed stream: %+v", st)
	}
}

// Package replica is the follower half of simrankd's read-replica
// replication: a client that tails a leader's write-ahead log over
// HTTP (GET /wal?from=<epoch>, served by internal/server), applies
// every record through the SAME code path boot-time WAL replay uses
// (simrank.ConcurrentEngine.ApplyReplicated → applyWALRecord), and
// publishes one MVCC read view per applied epoch. Because Inc-SR/
// Inc-uSR replay is deterministic and bit-identical — the repository's
// equivalence harnesses pin this — a follower at epoch E serves
// exactly the leader's answers at epoch E; the epoch is the
// replication position end to end.
//
// The protocol is the WAL's own record framing (wal.EncodeFrame /
// wal.FrameReader): the leader first replays its log above the
// requested epoch, then tails live appends, interleaving heartbeat
// frames that carry its newest committed epoch so an idle leader is
// distinguishable from a dead one and the follower can compute lag
// with no records flowing.
//
// Failure model:
//
//   - A broken or stalled connection (no frame within StallTimeout) is
//     routine: reconnect with exponential backoff from the last applied
//     epoch, counting Stats.Reconnects. A leader restart looks exactly
//     like this.
//   - An epoch that fails to advance past the follower's state — a
//     regressed record or heartbeat, a record the engine rejects — is
//     divergence: the leader's history and the follower's disagree
//     (e.g. a leader restarted without its log), and replaying further
//     would fork silently. Run returns ErrDiverged and the follower
//     must be re-seeded from a leader snapshot.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	simrank "repro"
	"repro/internal/wal"
)

// ErrDiverged marks a terminal replication failure: the leader's
// stream cannot extend the follower's state. Wrapped errors carry the
// detail; errors.Is(err, ErrDiverged) identifies the class.
var ErrDiverged = errors.New("replica: leader stream diverged from local state")

// Options tunes a Replica. Leader is required; everything else has a
// usable default.
type Options struct {
	// Leader is the leader's base URL (e.g. "http://10.0.0.1:8080").
	Leader string
	// LagBound is the catch-up tolerance in epochs: CaughtUp (and so
	// the follower's /readyz) holds while leaderEpoch−appliedEpoch ≤
	// LagBound and the stream is connected. 0 (the default) demands the
	// follower be fully caught up with the leader's last known epoch.
	LagBound uint64
	// StallTimeout reconnects a stream that delivered no frame (record
	// or heartbeat) for this long — the liveness watchdog behind a
	// leader that is up at TCP level but wedged. Default 10s; keep it
	// above the leader's heartbeat interval.
	StallTimeout time.Duration
	// BackoffMin and BackoffMax bound the exponential reconnect backoff
	// (defaults 100ms and 5s).
	BackoffMin, BackoffMax time.Duration
	// Client is the HTTP client used for the stream (default: a client
	// with no timeout — the stream is long-lived by design).
	Client *http.Client
	// OnApplied, when non-nil, is called synchronously after each
	// record's view publishes, with the applied epoch — at that moment
	// the engine's published view is exactly that epoch. Test hook for
	// the per-epoch equivalence harness.
	OnApplied func(epoch uint64)
}

func (o Options) withDefaults() Options {
	if o.StallTimeout <= 0 {
		o.StallTimeout = 10 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Stats is the follower's observability snapshot, served as the /stats
// replica_* fields.
type Stats struct {
	// AppliedEpoch is the follower's last applied (and published)
	// record epoch; LeaderEpoch is the newest leader epoch any frame
	// has reported. LagEpochs is their difference (0 when caught up or
	// when no frame has arrived yet — see LeaderKnown).
	AppliedEpoch uint64
	LeaderEpoch  uint64
	LagEpochs    uint64
	// LagMS is how long the follower has continuously been behind the
	// leader's known epoch (0 while caught up): the staleness bound a
	// reader of this follower observes.
	LagMS float64
	// Records counts records applied off the stream over the process
	// lifetime; Reconnects counts stream re-dials after the first
	// attempt. A climbing Reconnects with flat Records is the signature
	// of a stalled or flapping leader.
	Records    int64
	Reconnects int64
	// Connected reports a currently-open stream; LeaderKnown reports
	// that at least one frame has ever arrived (before that, lag is
	// meaningless and the follower is not ready).
	Connected   bool
	LeaderKnown bool
}

// Replica tails one leader and applies its records to one engine. The
// engine must be booted from the same base state as the leader (same
// initial graph or a restored leader snapshot) with the same Options —
// the stream carries only mutations above the follower's epoch.
type Replica struct {
	eng  *simrank.ConcurrentEngine
	opts Options

	applied     atomic.Uint64 // last applied record epoch
	leaderEpoch atomic.Uint64 // newest epoch any frame reported
	leaderKnown atomic.Bool
	records     atomic.Int64
	reconnects  atomic.Int64
	connected   atomic.Bool
	behindSince atomic.Int64 // unix-nano when lag became nonzero; 0 = caught up

	// streamMadeProgress: at least one frame arrived on the last
	// connection — a healthy leader that later drops resets the backoff,
	// while a leader refusing every dial keeps escalating it. Only the
	// Run goroutine touches it.
	streamMadeProgress bool
}

// New builds a follower over eng, whose current epoch (e.g. restored
// from a local snapshot + WAL) is the resume position.
func New(eng *simrank.ConcurrentEngine, opts Options) *Replica {
	r := &Replica{eng: eng, opts: opts.withDefaults()}
	r.applied.Store(eng.Epoch())
	return r
}

// Stats returns the follower's current gauges.
func (r *Replica) Stats() Stats {
	st := Stats{
		AppliedEpoch: r.applied.Load(),
		LeaderEpoch:  r.leaderEpoch.Load(),
		Records:      r.records.Load(),
		Reconnects:   r.reconnects.Load(),
		Connected:    r.connected.Load(),
		LeaderKnown:  r.leaderKnown.Load(),
	}
	if st.LeaderEpoch > st.AppliedEpoch {
		st.LagEpochs = st.LeaderEpoch - st.AppliedEpoch
	}
	if since := r.behindSince.Load(); since != 0 {
		st.LagMS = float64(time.Since(time.Unix(0, since)).Microseconds()) / 1e3
	}
	return st
}

// CaughtUp reports whether the follower may serve traffic: the stream
// is connected, the leader's position is known, and the epoch lag is
// within Options.LagBound. The follower's /readyz gates on this.
func (r *Replica) CaughtUp() bool {
	st := r.Stats()
	return st.Connected && st.LeaderKnown && st.LagEpochs <= r.opts.LagBound
}

// Run tails the leader until ctx is canceled (returns nil) or the
// stream diverges from local state (returns an ErrDiverged-wrapped
// error; the follower must not keep serving as if it were a replica).
// Connection failures and stalls are retried forever with exponential
// backoff — a leader restart is routine, not terminal.
func (r *Replica) Run(ctx context.Context) error {
	backoff := r.opts.BackoffMin
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			r.reconnects.Add(1)
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > r.opts.BackoffMax {
				backoff = r.opts.BackoffMax
			}
		}
		err := r.stream(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if errors.Is(err, ErrDiverged) {
			return err
		}
		if r.streamMadeProgress {
			backoff = r.opts.BackoffMin
		}
	}
}

// stream runs one connection: dial, decode frames, apply records.
// Returns on any connection-level error (caller reconnects) or
// divergence (ErrDiverged, terminal). nil only when ctx ended.
func (r *Replica) stream(ctx context.Context) error {
	r.streamMadeProgress = false
	connCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	from := r.applied.Load()
	req, err := http.NewRequestWithContext(connCtx, http.MethodGet,
		r.opts.Leader+"/wal?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("leader answered %d to /wal?from=%d: %s", resp.StatusCode, from, body)
		if resp.StatusCode == http.StatusGone {
			// The leader truncated the records we need: no amount of
			// retrying brings them back. Re-seed from a leader snapshot.
			return fmt.Errorf("%w: %v", ErrDiverged, err)
		}
		return err
	}

	r.connected.Store(true)
	defer r.connected.Store(false)

	// The stall watchdog: every frame pushes the deadline out; silence
	// past StallTimeout cancels the in-flight read, failing the
	// connection over to the reconnect loop.
	watchdog := time.AfterFunc(r.opts.StallTimeout, cancel)
	defer watchdog.Stop()

	fr := wal.NewFrameReader(resp.Body)
	for {
		rec, err := fr.Next()
		if err != nil {
			if connCtx.Err() != nil && ctx.Err() == nil {
				return fmt.Errorf("stream stalled: no frame within %v", r.opts.StallTimeout)
			}
			return err
		}
		watchdog.Reset(r.opts.StallTimeout)
		r.streamMadeProgress = true
		if err := r.handleFrame(rec); err != nil {
			return err
		}
	}
}

// handleFrame applies one decoded frame: heartbeats move the leader's
// known position, records advance the follower's state. Both enforce
// strict epoch coherence — a position behind the follower's applied
// epoch means the leader's history is not ours.
func (r *Replica) handleFrame(rec *wal.Record) error {
	applied := r.applied.Load()
	if rec.Kind == wal.KindHeartbeat {
		if rec.Epoch < applied {
			return fmt.Errorf("%w: leader heartbeat at epoch %d behind follower epoch %d (leader lost history?)",
				ErrDiverged, rec.Epoch, applied)
		}
		r.noteLeaderEpoch(rec.Epoch)
		return nil
	}
	if rec.Epoch <= applied {
		return fmt.Errorf("%w: record epoch %d does not advance past follower epoch %d",
			ErrDiverged, rec.Epoch, applied)
	}
	if err := r.eng.ApplyReplicated(rec); err != nil {
		if errors.Is(err, simrank.ErrDurability) {
			// The record applied and published; only the follower's local
			// WAL missed it. Not divergence — but the local log can no
			// longer extend, so surface it as a connection-level error:
			// the reconnect loop retries, and the next ApplyReplicated
			// fails the same way until the operator intervenes.
			return err
		}
		return fmt.Errorf("%w: applying %s record at epoch %d: %v", ErrDiverged, rec.Kind, rec.Epoch, err)
	}
	r.applied.Store(rec.Epoch)
	r.records.Add(1)
	r.noteLeaderEpoch(rec.Epoch)
	if r.opts.OnApplied != nil {
		r.opts.OnApplied(rec.Epoch)
	}
	return nil
}

// noteLeaderEpoch raises the known leader position and maintains the
// behind-since clock that backs Stats.LagMS.
func (r *Replica) noteLeaderEpoch(epoch uint64) {
	for {
		cur := r.leaderEpoch.Load()
		if epoch <= cur || r.leaderEpoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	r.leaderKnown.Store(true)
	if r.leaderEpoch.Load() > r.applied.Load() {
		r.behindSince.CompareAndSwap(0, time.Now().UnixNano())
	} else {
		r.behindSince.Store(0)
	}
}

package replica_test

import (
	"context"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	simrank "repro"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// benchLeader builds a leader engine logging to a real WAL and serving
// GET /wal over HTTP — the bench-side twin of newFixture, on testing.B.
func benchLeader(b *testing.B, n int, edges []simrank.Edge, opts simrank.Options) (*simrank.ConcurrentEngine, *httptest.Server) {
	b.Helper()
	w, err := wal.Open(b.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { w.Close() }) //simrank:errok bench cleanup on a SyncNone log
	leader, err := simrank.NewConcurrentEngine(n, edges, opts)
	if err != nil {
		b.Fatal(err)
	}
	leader.SetWAL(w)
	srv := httptest.NewServer(server.New(leader, server.Config{WAL: w, HeartbeatInterval: 50 * time.Millisecond}))
	b.Cleanup(srv.Close)
	return leader, srv
}

// toggleEdge alternates insert/delete of one off-graph edge, so every
// call is a valid single-update commit, indefinitely.
func toggleEdge(b *testing.B, eng *simrank.ConcurrentEngine, i int) {
	b.Helper()
	up := simrank.Update{Edge: simrank.Edge{From: 4, To: 5}, Insert: i%2 == 0}
	if _, err := eng.Apply(up); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplicationCatchup measures how fast a cold follower drains a
// leader's backlog: records applied per second from first dial to
// caught-up, the number that bounds how long a freshly-seeded replica
// takes to start answering. Each iteration boots a fresh follower
// against the same pre-committed leader log.
func BenchmarkReplicationCatchup(b *testing.B) {
	const n, backlog = 16, 128
	opts := simrank.Options{C: 0.6, K: 8, Workers: 1}
	edges := []simrank.Edge{{From: 0, To: 1}, {From: 1, To: 2}}
	leader, srv := benchLeader(b, n, edges, opts)
	for i := 0; i < backlog; i++ {
		toggleEdge(b, leader, i)
	}
	target := leader.Epoch()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		follower, err := simrank.NewConcurrentEngine(n, edges, opts)
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		rep := replica.New(follower, replica.Options{
			Leader: srv.URL,
			OnApplied: func(epoch uint64) {
				if epoch == target {
					close(done)
				}
			},
		})
		ctx, cancel := context.WithCancel(context.Background())
		runErr := make(chan error, 1)
		go func() { runErr <- rep.Run(ctx) }()
		select {
		case <-done:
		case err := <-runErr:
			b.Fatalf("replica died mid-catch-up: %v", err)
		}
		cancel()
		if err := <-runErr; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(backlog*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkReplicationSteadyLag measures the steady-state replication
// lag: the time from a committed (acknowledged) leader write to that
// epoch being applied — and so visible — on a connected, caught-up
// follower. Reports mean ns/op plus sampled p50/p99 (custom metrics, so
// cmd/benchjson lands them in BENCH_replication.json).
func BenchmarkReplicationSteadyLag(b *testing.B) {
	const n = 16
	opts := simrank.Options{C: 0.6, K: 8, Workers: 1}
	edges := []simrank.Edge{{From: 0, To: 1}, {From: 1, To: 2}}
	leader, srv := benchLeader(b, n, edges, opts)
	follower, err := simrank.NewConcurrentEngine(n, edges, opts)
	if err != nil {
		b.Fatal(err)
	}
	applied := make(chan uint64, 64)
	rep := replica.New(follower, replica.Options{
		Leader:    srv.URL,
		OnApplied: func(epoch uint64) { applied <- epoch },
	})
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- rep.Run(ctx) }()
	b.Cleanup(func() {
		cancel()
		if err := <-runErr; err != nil {
			b.Errorf("replica Run: %v", err)
		}
	})

	waitFor := func(target uint64) {
		for {
			select {
			case e := <-applied:
				if e >= target {
					return
				}
			case err := <-runErr:
				b.Fatalf("replica died mid-stream: %v", err)
			case <-time.After(30 * time.Second):
				b.Fatalf("follower never applied epoch %d (stats %+v)", target, rep.Stats())
			}
		}
	}
	// Warm up: one committed write, streamed end to end, so the timed
	// region starts with a live, caught-up connection.
	toggleEdge(b, leader, 0)
	waitFor(leader.Epoch())

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		toggleEdge(b, leader, i+1)
		waitFor(leader.Epoch())
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p := func(q float64) float64 {
			return float64(lat[int(q*float64(len(lat)-1))].Nanoseconds())
		}
		b.ReportMetric(p(0.50), "p50-lag-ns")
		b.ReportMetric(p(0.99), "p99-lag-ns")
	}
}

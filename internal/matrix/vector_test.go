package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot mismatch")
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v", y)
		}
	}
}

func TestAxpyZeroAlpha(t *testing.T) {
	y := []float64{1, 2}
	Axpy(0, []float64{100, 100}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("Axpy with a=0 must be a no-op")
	}
}

func TestScaleVec(t *testing.T) {
	x := []float64{1, -2}
	ScaleVec(-3, x)
	if x[0] != -3 || x[1] != 6 {
		t.Fatalf("ScaleVec = %v", x)
	}
}

func TestOuter(t *testing.T) {
	m := Outer([]float64{1, 2}, []float64{3, 4, 5})
	want := NewDenseFrom([][]float64{{3, 4, 5}, {6, 8, 10}})
	if MaxAbsDiff(m, want) != 0 {
		t.Fatalf("Outer = %v", m.Data)
	}
}

func TestAddOuter(t *testing.T) {
	m := Identity(2)
	AddOuter(m, 2, []float64{1, 0}, []float64{0, 1})
	if m.At(0, 1) != 2 || m.At(0, 0) != 1 {
		t.Fatalf("AddOuter = %v", m.Data)
	}
}

func TestUnitVec(t *testing.T) {
	e := UnitVec(4, 2)
	for i, v := range e {
		want := 0.0
		if i == 2 {
			want = 1
		}
		if v != want {
			t.Fatalf("UnitVec = %v", e)
		}
	}
}

func TestNorms2Inf(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
}

func TestCloneSubVec(t *testing.T) {
	x := []float64{1, 2}
	c := CloneVec(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("CloneVec aliased")
	}
	d := SubVec([]float64{5, 7}, []float64{2, 3})
	if d[0] != 3 || d[1] != 4 {
		t.Fatalf("SubVec = %v", d)
	}
}

// Property: outer(x,y) equals x as column times y as row via Mul.
func TestQuickOuterEqualsMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(8), 1+rng.Intn(8)
		x, y := make([]float64, n), make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		xc, yr := NewDense(n, 1), NewDense(1, m)
		copy(xc.Data, x)
		copy(yr.Data, y)
		return MaxAbsDiff(Outer(x, y), Mul(xc, yr)) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy–Schwarz |xᵀy| <= ‖x‖‖y‖.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

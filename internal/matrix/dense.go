// Package matrix provides the dense and sparse linear-algebra substrate used
// by every SimRank algorithm in this repository: row-major dense matrices,
// CSR sparse matrices, and the vector kernels (dot, axpy, outer product)
// that the rank-one Sylvester iteration of Inc-uSR/Inc-SR is built from.
//
// Everything is float64 and stdlib-only. Matrices are small-n oriented
// (SimRank itself is Θ(n²) output), so the dense type stores a single
// contiguous backing slice for cache-friendly row traversal.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense returns a zeroed r×c dense matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseFrom builds a dense matrix from a slice of rows. All rows must
// have equal length.
func NewDenseFrom(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged row %d: len %d, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// checkIndex asserts 0 ≤ i < Rows and 0 ≤ j < Cols. It is called behind
// the constant boundsChecks guard, so release builds pay nothing.
func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of range %d×%d", i, j, m.Rows, m.Cols))
	}
}

// checkRow asserts 0 ≤ i < Rows, behind the same guard.
func (m *Dense) checkRow(i int) {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d×%d", i, m.Rows, m.Cols))
	}
}

// At returns element (i, j).
//
// Contract: i ∈ [0, Rows) and j ∈ [0, Cols). The flat row-major index
// i*Cols+j means an out-of-range j that stays inside the backing slice
// silently reads an element of a DIFFERENT row — a wrong answer, not a
// crash — so callers must validate untrusted indices (the engine's query
// facade does). Build with -tags boundschecks to turn any violation into
// a panic.
func (m *Dense) At(i, j int) float64 {
	if boundsChecks {
		m.checkIndex(i, j)
	}
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j); same index contract as At.
func (m *Dense) Set(i, j int, v float64) {
	if boundsChecks {
		m.checkIndex(i, j)
	}
	m.Data[i*m.Cols+j] = v
}

// Add accumulates v into element (i, j); same index contract as At.
func (m *Dense) Add(i, j int, v float64) {
	if boundsChecks {
		m.checkIndex(i, j)
	}
	m.Data[i*m.Cols+j] += v
}

// N returns the row count — the node count when m is a square similarity
// matrix. It exists so *Dense satisfies the similarity-store interfaces
// of internal/core and internal/simstore.
func (m *Dense) N() int { return m.Rows }

// AddSym applies the symmetric rank-two update v·(e_i·e_jᵀ + e_j·e_iᵀ):
// element (i, j) and element (j, i) each accumulate v, as two sequential
// adds — on the diagonal (i == j) the cell is therefore bumped twice,
// ((x+v)+v), matching the entrywise S += M + Mᵀ write-back of the
// incremental update algorithms. Symmetric stores can realize the same
// result with one backing cell.
func (m *Dense) AddSym(i, j int, v float64) {
	if boundsChecks {
		m.checkIndex(i, j)
		m.checkIndex(j, i)
	}
	m.Data[i*m.Cols+j] += v
	m.Data[j*m.Cols+i] += v
}

// ColInto copies column j into dst (which must have length Rows), the
// gather [S]_{·,j} that the incremental updates memoize. For symmetric
// packed stores the column is served from row storage; the dense layout
// gathers with stride Cols.
func (m *Dense) ColInto(dst []float64, j int) {
	if boundsChecks {
		if j < 0 || j >= m.Cols {
			panic(fmt.Sprintf("matrix: column %d out of range %d×%d", j, m.Rows, m.Cols))
		}
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
}

// Row returns the i-th row as a slice aliasing the matrix storage.
// i must be in [0, Rows): on a non-square matrix an out-of-range i can
// otherwise slice a window of the wrong rows instead of panicking.
func (m *Dense) Row(i int) []float64 {
	if boundsChecks {
		m.checkRow(i)
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of the j-th column. j must be in [0, Cols): like
// At, an out-of-range j otherwise reads elements of the wrong rows.
func (m *Dense) Col(j int) []float64 {
	if boundsChecks {
		if j < 0 || j >= m.Cols {
			panic(fmt.Sprintf("matrix: column %d out of range %d×%d", j, m.Rows, m.Cols))
		}
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with src. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("matrix: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero resets every element to 0 in place.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Scale multiplies every element by a in place and returns m.
func (m *Dense) Scale(a float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= a
	}
	return m
}

// AddMat accumulates a*b into m in place (m += a·b) and returns m.
func (m *Dense) AddMat(a float64, b *Dense) *Dense {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: AddMat dimension mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += a * v
	}
	return m
}

// Mul returns a·b as a new matrix.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns m·x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("matrix: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// MulVecT returns mᵀ·x as a new vector without materializing the transpose.
func (m *Dense) MulVecT(x []float64) []float64 {
	if m.Rows != len(x) {
		panic("matrix: MulVecT dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// MaxAbsDiff returns ‖a−b‖_max, the largest absolute entrywise difference.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: MaxAbsDiff dimension mismatch")
	}
	var max float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns ‖m‖_max, the largest absolute entry.
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// NNZ counts entries with |v| > tol.
func (m *Dense) NNZ(tol float64) int {
	n := 0
	for _, v := range m.Data {
		if math.Abs(v) > tol {
			n++
		}
	}
	return n
}

// String renders the matrix for debugging (fixed 3-decimal layout).
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%7.3f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

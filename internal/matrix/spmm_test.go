package matrix

import (
	"math/rand"
	"sync"
	"testing"
)

func randCSR(rng *rand.Rand, rows, cols, nnz int) *CSR {
	seen := map[[2]int]bool{}
	var is, js []int
	var vs []float64
	for len(is) < nnz {
		i, j := rng.Intn(rows), rng.Intn(cols)
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		is = append(is, i)
		js = append(js, j)
		vs = append(vs, rng.NormFloat64())
	}
	return NewCSR(rows, cols, is, js, vs)
}

func TestSpMulDenseMatchesDenseMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(40)
		q := randCSR(rng, n, n, 2*n)
		s := randDense(rng, n, n)
		want := Mul(q.Dense(), s)
		got := randDense(rng, n, n) // dirty output buffer
		SpMulDense(got, q, s, 0, n)
		if d := MaxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("trial %d: SpMulDense differs by %g", trial, d)
		}
	}
}

func TestSpMulDenseTMatchesDenseMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(40)
		q := randCSR(rng, n, n, 2*n)
		tm := randDense(rng, n, n)
		scale := 0.5 + rng.Float64()
		want := Mul(tm, q.Dense().T()).Scale(scale)
		got := randDense(rng, n, n)
		SpMulDenseT(got, q, tm, scale, 0, n)
		if d := MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("trial %d: SpMulDenseT differs by %g", trial, d)
		}
	}
}

// Partial row ranges must compose to the full product, and any partition
// must be bit-identical to the single-range run — the invariant the
// parallel matrix-form kernel rests on.
func TestSpMMKernelsRowRangesCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 37
	q := randCSR(rng, n, n, 4*n)
	s := randDense(rng, n, n)
	whole := NewDense(n, n)
	SpMulDenseT(whole, q, s, 0.7, 0, n)
	parts := NewDense(n, n)
	for lo := 0; lo < n; lo += 5 {
		hi := lo + 5
		if hi > n {
			hi = n
		}
		SpMulDenseT(parts, q, s, 0.7, lo, hi)
	}
	for i, v := range whole.Data {
		if parts.Data[i] != v {
			t.Fatalf("partitioned scatter differs at %d: %v vs %v", i, parts.Data[i], v)
		}
	}
}

func TestParallelRowsCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 100} {
		for _, n := range []int{0, 1, 5, 64} {
			var mu sync.Mutex
			hits := make([]int, n)
			ParallelRows(n, workers, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: row %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("got %d×%d, want 3×2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("element mismatch: %v", m.Data)
	}
}

func TestNewDenseFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on ragged rows")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestSetAddAt(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("got %v, want 7.5", m.At(1, 2))
	}
}

func TestRowAliasesStorage(t *testing.T) {
	m := NewDense(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must alias storage")
	}
}

func TestColCopies(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col must copy, not alias")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must be independent")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T dims %d×%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 7, 5)
	if MaxAbsDiff(m, m.T().T()) != 0 {
		t.Fatal("(Mᵀ)ᵀ != M")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	p := Mul(a, b)
	want := NewDenseFrom([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(p, want) > 1e-15 {
		t.Fatalf("Mul = %v", p.Data)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 6, 6)
	if MaxAbsDiff(Mul(m, Identity(6)), m) != 0 {
		t.Fatal("M·I != M")
	}
	if MaxAbsDiff(Mul(Identity(6), m), m) != 0 {
		t.Fatal("I·M != M")
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, c := randDense(rng, 4, 5), randDense(rng, 5, 3), randDense(rng, 3, 6)
	l := Mul(Mul(a, b), c)
	r := Mul(a, Mul(b, c))
	if MaxAbsDiff(l, r) > 1e-12 {
		t.Fatalf("associativity violated: %g", MaxAbsDiff(l, r))
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randDense(rng, 5, 4)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := NewDense(4, 1)
	copy(xm.Data, x)
	want := Mul(m, xm)
	got := m.MulVec(x)
	for i := range got {
		if !almostEq(got[i], want.At(i, 0), 1e-13) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randDense(rng, 5, 4)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := m.MulVecT(x)
	want := m.T().MulVec(x)
	for i := range got {
		if !almostEq(got[i], want[i], 1e-13) {
			t.Fatalf("MulVecT[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScaleAddMat(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatalf("Scale: %v", m.Data)
	}
	m.AddMat(0.5, NewDenseFrom([][]float64{{2, 2}, {2, 2}}))
	if m.At(0, 0) != 3 {
		t.Fatalf("AddMat: %v", m.Data)
	}
}

func TestNorms(t *testing.T) {
	m := NewDenseFrom([][]float64{{3, 0}, {0, -4}})
	if !almostEq(m.FrobeniusNorm(), 5, 1e-15) {
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestIsSymmetric(t *testing.T) {
	s := NewDenseFrom([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Fatal("want symmetric")
	}
	a := NewDenseFrom([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Fatal("want asymmetric")
	}
	if !NewDense(2, 3).IsSymmetric(0) == false {
		t.Fatal("non-square is never symmetric")
	}
}

func TestNNZ(t *testing.T) {
	m := NewDenseFrom([][]float64{{0, 1e-14}, {0.5, 0}})
	if got := m.NNZ(1e-12); got != 1 {
		t.Fatalf("NNZ = %d, want 1", got)
	}
}

func TestZeroAndCopyFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	src := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	m.CopyFrom(src)
	if m.At(0, 1) != 6 {
		t.Fatal("CopyFrom failed")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
func TestQuickMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a, b := randDense(rng, r, k), randDense(rng, k, c)
		return MaxAbsDiff(Mul(a, b).T(), Mul(b.T(), a.T())) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is invariant under transpose.
func TestQuickFrobeniusTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randDense(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		return almostEq(m.FrobeniusNorm(), m.T().FrobeniusNorm(), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The wrong-row hazard the At contract documents: on a 3×3 matrix,
// At(0, 4) stays inside the 9-element backing slice and silently reads
// row 1. The release build preserves that raw behavior (callers
// validate); under -tags boundschecks every such access must panic
// instead — this test pins down both modes.
func TestAtOutOfRangeColumnContract(t *testing.T) {
	m := NewDense(3, 3)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic with boundschecks on", name)
			}
		}()
		f()
	}
	if !boundsChecks {
		if got := m.At(0, 4); got != m.At(1, 1) {
			t.Fatalf("release At(0,4) = %v; documented wrong-row behavior reads row 1 (%v)", got, m.At(1, 1))
		}
		return
	}
	mustPanic("At(0,4)", func() { m.At(0, 4) })
	mustPanic("At(0,-1)", func() { m.At(0, -1) })
	mustPanic("At(3,0)", func() { m.At(3, 0) })
	mustPanic("Set(1,3)", func() { m.Set(1, 3, 0) })
	mustPanic("Add(-1,0)", func() { m.Add(-1, 0, 1) })
	mustPanic("Row(3)", func() { m.Row(3) })
	mustPanic("Row(-1)", func() { m.Row(-1) })
	mustPanic("Col(3)", func() { m.Col(3) })
	mustPanic("Col(-1)", func() { m.Col(-1) })
	// In-range access still works.
	if m.At(1, 1) != 4 {
		t.Fatalf("At(1,1) = %v, want 4", m.At(1, 1))
	}
}

package matrix

import "math"

// Dot returns the inner product xᵀ·y. Panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("matrix: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy performs y += a·x in place (the SAXPY kernel of Section V-A).
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("matrix: Axpy length mismatch")
	}
	if a == 0 {
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Outer returns the rank-one matrix x·yᵀ.
func Outer(x, y []float64) *Dense {
	m := NewDense(len(x), len(y))
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, yj := range y {
			row[j] = xi * yj
		}
	}
	return m
}

// AddOuter accumulates a·x·yᵀ into m in place.
func AddOuter(m *Dense, a float64, x, y []float64) {
	if m.Rows != len(x) || m.Cols != len(y) {
		panic("matrix: AddOuter dimension mismatch")
	}
	if a == 0 {
		return
	}
	AddOuterRows(m, a, x, y, 0, len(x))
}

// AddOuterRows accumulates a·x·yᵀ into rows lo..hi−1 of m only — the
// row slab of AddOuter, which delegates here so the serial call and a
// row-partitioned parallel fan-out execute the identical per-row float
// stream (each row's accumulation order never depends on the partition).
//
//simrank:noalloc
func AddOuterRows(m *Dense, a float64, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		c := a * x[i]
		if c == 0 {
			continue
		}
		row := m.Row(i)
		for j, yj := range y {
			row[j] += c * yj
		}
	}
}

// UnitVec returns e_i ∈ R^n, the unit vector with a 1 in entry i.
func UnitVec(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

// Norm2 returns the Euclidean norm ‖x‖₂.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns ‖x‖_∞.
func NormInf(x []float64) float64 {
	var max float64
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// SubVec returns x−y as a new vector.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("matrix: SubVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

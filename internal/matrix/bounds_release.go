//go:build !boundschecks

package matrix

// boundsChecks is off in release builds: the constant-false guard makes
// the compiler delete the assertions from the Θ(n²)-call hot paths
// (Inc-uSR's accumulation loop calls At once per node-pair). Build with
// -tags boundschecks to turn them on.
const boundsChecks = false

package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix. It is the storage format for the
// backward transition matrix Q: row i holds 1/|I(i)| at the in-neighbors of
// node i, so a mat-vec costs O(m) and row access (needed by Theorem 1's
// [Q]_{j,·}) is O(d_j).
type CSR struct {
	RowsN, ColsN int
	RowPtr       []int     // len RowsN+1
	ColIdx       []int     // len nnz, column indices sorted within each row
	Val          []float64 // len nnz
}

// NewCSR builds a CSR matrix from coordinate triples. Duplicate (i,j)
// entries are summed. Entries that sum to exactly zero are kept (callers
// that want structural pruning should drop them beforehand).
func NewCSR(rows, cols int, is, js []int, vs []float64) *CSR {
	if len(is) != len(js) || len(is) != len(vs) {
		panic("matrix: NewCSR triple length mismatch")
	}
	type ent struct {
		i, j int
		v    float64
	}
	ents := make([]ent, len(is))
	for k := range is {
		if is[k] < 0 || is[k] >= rows || js[k] < 0 || js[k] >= cols {
			panic(fmt.Sprintf("matrix: NewCSR entry (%d,%d) out of %d×%d", is[k], js[k], rows, cols))
		}
		ents[k] = ent{is[k], js[k], vs[k]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].i != ents[b].i {
			return ents[a].i < ents[b].i
		}
		return ents[a].j < ents[b].j
	})
	m := &CSR{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
	for k := 0; k < len(ents); {
		e := ents[k]
		v := e.v
		k++
		for k < len(ents) && ents[k].i == e.i && ents[k].j == e.j {
			v += ents[k].v
			k++
		}
		m.ColIdx = append(m.ColIdx, e.j)
		m.Val = append(m.Val, v)
		m.RowPtr[e.i+1] = len(m.ColIdx)
	}
	for i := 1; i <= rows; i++ {
		if m.RowPtr[i] < m.RowPtr[i-1] {
			m.RowPtr[i] = m.RowPtr[i-1]
		}
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Row returns the column indices and values of row i, aliasing storage.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns element (i, j) by binary search within row i.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// MulVec returns m·x.
func (m *CSR) MulVec(x []float64) []float64 {
	out := make([]float64, m.RowsN)
	m.MulVecTo(out, x)
	return out
}

// MulVecTo computes m·x into dst, which must have length RowsN.
func (m *CSR) MulVecTo(dst, x []float64) {
	if len(x) != m.ColsN || len(dst) != m.RowsN {
		panic("matrix: CSR MulVec dimension mismatch")
	}
	for i := 0; i < m.RowsN; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		dst[i] = s
	}
}

// MulVecT returns mᵀ·x without materializing the transpose.
func (m *CSR) MulVecT(x []float64) []float64 {
	out := make([]float64, m.ColsN)
	m.MulVecTTo(out, x)
	return out
}

// MulVecTTo computes mᵀ·x into dst (length ColsN) without materializing
// the transpose. dst is zeroed first, then accumulated in the same
// row-major scatter order as MulVecT, so the two are bit-identical —
// this is the reusable-buffer form that keeps repeated-series callers
// (batch.SingleSource) at O(n) live memory.
func (m *CSR) MulVecTTo(dst, x []float64) {
	if len(x) != m.RowsN || len(dst) != m.ColsN {
		panic("matrix: CSR MulVecT dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			dst[m.ColIdx[k]] += m.Val[k] * xi
		}
	}
}

// RowDot returns [m]_{i,·}·x, the inner product of row i with x.
func (m *CSR) RowDot(i int, x []float64) float64 {
	var s float64
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		s += m.Val[k] * x[m.ColIdx[k]]
	}
	return s
}

// Dense expands m to a dense matrix.
func (m *CSR) Dense() *Dense {
	d := NewDense(m.RowsN, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// T returns the transpose of m as a new CSR matrix.
func (m *CSR) T() *CSR {
	is := make([]int, 0, m.NNZ())
	js := make([]int, 0, m.NNZ())
	vs := make([]float64, 0, m.NNZ())
	for i := 0; i < m.RowsN; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			is = append(is, m.ColIdx[k])
			js = append(js, i)
			vs = append(vs, m.Val[k])
		}
	}
	return NewCSR(m.ColsN, m.RowsN, is, js, vs)
}

// DenseToCSR converts a dense matrix to CSR, dropping entries with |v| <= tol.
func DenseToCSR(d *Dense, tol float64) *CSR {
	var is, js []int
	var vs []float64
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		for j, v := range row {
			if v > tol || v < -tol {
				is = append(is, i)
				js = append(js, j)
				vs = append(vs, v)
			}
		}
	}
	return NewCSR(d.Rows, d.Cols, is, js, vs)
}

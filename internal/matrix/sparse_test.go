package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randSparse(rng *rand.Rand, r, c int, density float64) *CSR {
	var is, js []int
	var vs []float64
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				is = append(is, i)
				js = append(js, j)
				vs = append(vs, rng.NormFloat64())
			}
		}
	}
	return NewCSR(r, c, is, js, vs)
}

func TestCSRBasic(t *testing.T) {
	m := NewCSR(3, 3, []int{0, 1, 2, 0}, []int{1, 2, 0, 2}, []float64{1, 2, 3, 4})
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(0, 1) != 1 || m.At(1, 2) != 2 || m.At(2, 0) != 3 || m.At(0, 2) != 4 {
		t.Fatal("At mismatch")
	}
	if m.At(2, 2) != 0 {
		t.Fatal("missing entry should be 0")
	}
}

func TestCSRDuplicatesSummed(t *testing.T) {
	m := NewCSR(2, 2, []int{0, 0}, []int{1, 1}, []float64{1.5, 2.5})
	if m.NNZ() != 1 || m.At(0, 1) != 4 {
		t.Fatalf("duplicates not summed: nnz=%d v=%v", m.NNZ(), m.At(0, 1))
	}
}

func TestCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewCSR(2, 2, []int{5}, []int{0}, []float64{1})
}

func TestCSREmptyRows(t *testing.T) {
	m := NewCSR(4, 4, []int{2}, []int{3}, []float64{7})
	cols, _ := m.Row(0)
	if len(cols) != 0 {
		t.Fatal("row 0 should be empty")
	}
	cols, vals := m.Row(2)
	if len(cols) != 1 || cols[0] != 3 || vals[0] != 7 {
		t.Fatal("row 2 mismatch")
	}
	// Rows after the last populated row must also be valid.
	cols, _ = m.Row(3)
	if len(cols) != 0 {
		t.Fatal("row 3 should be empty")
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		s := randSparse(rng, r, c, 0.3)
		d := s.Dense()
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got, want := s.MulVec(x), d.MulVec(x)
		for i := range got {
			if !almostEq(got[i], want[i], 1e-12) {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCSRMulVecTMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		s := randSparse(rng, r, c, 0.3)
		d := s.Dense()
		x := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got, want := s.MulVecT(x), d.MulVecT(x)
		for i := range got {
			if !almostEq(got[i], want[i], 1e-12) {
				t.Fatalf("trial %d: MulVecT[%d] mismatch", trial, i)
			}
		}
	}
}

func TestCSRRowDot(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randSparse(rng, 8, 8, 0.4)
	d := s.Dense()
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := 0; i < 8; i++ {
		if !almostEq(s.RowDot(i, x), Dot(d.Row(i), x), 1e-12) {
			t.Fatalf("RowDot(%d) mismatch", i)
		}
	}
}

func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randSparse(rng, 6, 9, 0.3)
	if MaxAbsDiff(s.T().Dense(), s.Dense().T()) != 0 {
		t.Fatal("CSR transpose mismatch")
	}
}

func TestDenseToCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := randDense(rng, 7, 5)
	s := DenseToCSR(d, 0)
	if MaxAbsDiff(s.Dense(), d) != 0 {
		t.Fatal("round trip mismatch")
	}
}

func TestDenseToCSRTolerance(t *testing.T) {
	d := NewDenseFrom([][]float64{{1e-15, 1}, {0, -1e-15}})
	s := DenseToCSR(d, 1e-12)
	if s.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", s.NNZ())
	}
}

// Property: (CSRᵀ)ᵀ round-trips, and sparse mat-vec agrees with dense.
func TestQuickCSRAgreesWithDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(12), 1+rng.Intn(12)
		s := randSparse(rng, r, c, 0.25)
		if MaxAbsDiff(s.T().T().Dense(), s.Dense()) != 0 {
			return false
		}
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got, want := s.MulVec(x), s.Dense().MulVec(x)
		for i := range got {
			if !almostEq(got[i], want[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package matrix

import "sync"

// Sparse-dense matrix-matrix kernels, row-partitioned so one code path
// serves both the sequential and the parallel matrix-form SimRank
// iteration. Every kernel computes a contiguous row range [lo, hi) of its
// output; callers split the range across workers with ParallelRows. For a
// fixed output entry the floating-point accumulation order is independent
// of the partition (and of the scatter block size), so serial and parallel
// runs produce bit-identical matrices.

// SpMulDense computes rows [lo, hi) of dst = q·s for CSR q and dense s.
// Row i of dst depends only on row i of q, so disjoint ranges are
// race-free. dst must not alias s.
func SpMulDense(dst *Dense, q *CSR, s *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for x := range drow {
			drow[x] = 0
		}
		for kk := q.RowPtr[i]; kk < q.RowPtr[i+1]; kk++ {
			Axpy(q.Val[kk], s.Row(q.ColIdx[kk]), drow)
		}
	}
}

// spmmBlockBytes bounds the output working set of one scatter block of
// SpMulDenseT so its rows stay resident in L2 while every row of q is
// streamed across them.
const spmmBlockBytes = 1 << 18

// SpMulDenseT computes rows [lo, hi) of dst = scale·(t·qᵀ) for CSR q and
// dense t, i.e. dst[a][i] = scale·Σ_k q[i][k]·t[a][k]. Row a of dst reads
// only row a of t, so disjoint ranges are race-free; dst may alias t's
// sibling buffer but not t itself.
//
// The column-scatter loop is tiled: q is streamed once per block of output
// rows instead of once per row, and the block is sized so its rows fit in
// L2. Per output entry the contributions still accumulate in CSR row
// order, then are scaled once — bit-identical for any block size.
func SpMulDenseT(dst *Dense, q *CSR, t *Dense, scale float64, lo, hi int) {
	cols := dst.Cols
	block := 1
	if cols > 0 {
		block = spmmBlockBytes / (8 * cols)
	}
	if block < 1 {
		block = 1
	}
	for blo := lo; blo < hi; blo += block {
		bhi := blo + block
		if bhi > hi {
			bhi = hi
		}
		for a := blo; a < bhi; a++ {
			drow := dst.Row(a)
			for x := range drow {
				drow[x] = 0
			}
		}
		for i := 0; i < q.RowsN; i++ {
			for kk := q.RowPtr[i]; kk < q.RowPtr[i+1]; kk++ {
				col, v := q.ColIdx[kk], q.Val[kk]
				for a := blo; a < bhi; a++ {
					dst.Data[a*cols+i] += v * t.Data[a*t.Cols+col]
				}
			}
		}
		if scale != 1 {
			for a := blo; a < bhi; a++ {
				ScaleVec(scale, dst.Row(a))
			}
		}
	}
}

// ParallelRows runs fn over [0, n) split into contiguous chunks, one per
// worker, and waits for completion. workers ≤ 1 (or n ≤ 1) calls fn
// directly on the calling goroutine — no goroutines, no allocation — so
// hot paths that default to one worker stay allocation-free.
func ParallelRows(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

//go:build boundschecks

package matrix

// boundsChecks enables the index assertions of At/Set/Add/Row. The
// release build compiles them away (see bounds_release.go); building or
// testing with -tags boundschecks turns every out-of-range access —
// including the silent wrong-row reads a merely in-slice index causes —
// into an immediate panic naming the bad index. CI runs the full test
// suite under this tag.
const boundsChecks = true

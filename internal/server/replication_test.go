package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	simrank "repro"
	"repro/internal/wal"
)

// dialStream opens GET /wal?from= and returns a FrameReader over the
// live body plus a closer.
func dialStream(t *testing.T, base string, from string) (*wal.FrameReader, func()) {
	t.Helper()
	resp, err := http.Get(base + "/wal?from=" + from)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET /wal answered %d", resp.StatusCode)
	}
	return wal.NewFrameReader(resp.Body), func() { resp.Body.Close() }
}

// nextRecord reads frames until a non-heartbeat record arrives (the
// stream interleaves liveness frames freely).
func nextRecord(t *testing.T, fr *wal.FrameReader) *wal.Record {
	t.Helper()
	for {
		rec, err := fr.Next()
		if err != nil {
			t.Fatalf("stream broke: %v", err)
		}
		if rec.Kind != wal.KindHeartbeat {
			return rec
		}
	}
}

// TestWALStreamBacklogAndTail: the stream serves the on-disk backlog
// first, then records committed while the connection is open — each
// exactly once, in epoch order, bit-identical to what the leader
// logged.
func TestWALStreamBacklogAndTail(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //simrank:errok test cleanup on a SyncNone log
	eng, err := simrank.NewConcurrentEngine(6, []simrank.Edge{{From: 0, To: 1}}, simrank.Options{K: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetWAL(w)
	srv := New(eng, Config{WAL: w, HeartbeatInterval: 5 * time.Millisecond})
	ts := newHTTPServer(t, srv)

	// Backlog: two records committed before anyone subscribes.
	if _, err := eng.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert(2, 3); err != nil {
		t.Fatal(err)
	}

	fr, closeStream := dialStream(t, ts.URL, "0")
	defer closeStream()
	for i, want := range []struct {
		epoch uint64
		from  int
		to    int
	}{{1, 1, 2}, {2, 2, 3}} {
		rec := nextRecord(t, fr)
		if rec.Epoch != want.epoch || rec.Kind != wal.KindUpdate ||
			rec.Updates[0].Edge.From != want.from || rec.Updates[0].Edge.To != want.to {
			t.Fatalf("backlog record %d = %+v, want epoch %d edge %d→%d", i, rec, want.epoch, want.from, want.to)
		}
	}

	// Tail: a record committed while the stream is open arrives live.
	if _, err := eng.Insert(3, 4); err != nil {
		t.Fatal(err)
	}
	rec := nextRecord(t, fr)
	if rec.Epoch != 3 || rec.Updates[0].Edge.From != 3 {
		t.Fatalf("tail record = %+v, want the live insert at epoch 3", rec)
	}

	// And a second subscriber starting mid-history gets only the suffix.
	fr2, closeStream2 := dialStream(t, ts.URL, "2")
	defer closeStream2()
	rec = nextRecord(t, fr2)
	if rec.Epoch != 3 {
		t.Fatalf("from=2 stream started at epoch %d, want 3", rec.Epoch)
	}

	// The /stats gauge sees both live streams.
	var st StatsResponse
	if got := getJSON(t, ts.URL+"/stats", &st); got != http.StatusOK {
		t.Fatalf("/stats = %d", got)
	}
	if st.WALSubscribers != 2 {
		t.Fatalf("wal_subscribers = %d, want 2", st.WALSubscribers)
	}
}

// newHTTPServer wraps an httptest listener with cleanup, mirroring
// newTestServer for servers whose engine the test builds itself.
func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// postJSONInto posts body and decodes the response REGARDLESS of status
// — the follower tests read fields off 409 bodies, which postJSON's
// success-only decode skips.
func postJSONInto(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestWALStreamHeartbeats: an idle leader still emits heartbeat frames
// carrying its committed epoch, at the configured cadence.
func TestWALStreamHeartbeats(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //simrank:errok test cleanup on a SyncNone log
	eng, err := simrank.NewConcurrentEngine(4, nil, simrank.Options{K: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetWAL(w)
	if _, err := eng.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{WAL: w, HeartbeatInterval: time.Millisecond})
	ts := newHTTPServer(t, srv)

	// from = the committed epoch: the backlog is empty, so every frame
	// from here on is a heartbeat.
	fr, closeStream := dialStream(t, ts.URL, "1")
	defer closeStream()
	for i := 0; i < 3; i++ {
		rec, err := fr.Next()
		if err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		if rec.Kind != wal.KindHeartbeat || rec.Epoch != 1 {
			t.Fatalf("frame %d = %+v, want heartbeat at epoch 1", i, rec)
		}
	}
}

// TestWALStreamWithoutWAL: a server running without -wal-dir has
// nothing to stream; the endpoint must say so, not hang.
func TestWALStreamWithoutWAL(t *testing.T) {
	_, _, ts := newTestServer(t, 4, Config{})
	resp, err := http.Get(ts.URL + "/wal?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("GET /wal without a WAL = %d, want 409", resp.StatusCode)
	}
}

// TestWALStreamTruncationFloor: a follower asking for epochs the
// snapshot-then-truncate cycle already dropped gets 410 Gone — the
// unambiguous "re-seed from a snapshot" signal — while a follower at or
// above the floor streams fine.
func TestWALStreamTruncationFloor(t *testing.T) {
	dir := t.TempDir()
	// 1-byte segments: every record seals its own segment, so Truncate
	// can drop precisely the covered prefix.
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //simrank:errok test cleanup on a SyncNone log
	eng, err := simrank.NewConcurrentEngine(6, nil, simrank.Options{K: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetWAL(w)
	for i := 0; i < 4; i++ {
		if _, err := eng.Insert(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(2); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{WAL: w})
	ts := newHTTPServer(t, srv)

	resp, err := http.Get(ts.URL + "/wal?from=1")
	if err != nil {
		t.Fatal(err)
	}
	var body ErrorResponse
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("GET /wal below the truncation floor = %d (%s), want 410", resp.StatusCode, body.Error)
	}

	// At the floor exactly, the stream serves the surviving suffix.
	fr, closeStream := dialStream(t, ts.URL, "2")
	defer closeStream()
	if rec := nextRecord(t, fr); rec.Epoch != 3 {
		t.Fatalf("at-floor stream started at epoch %d, want 3", rec.Epoch)
	}
}

// TestFollowerRejectsWrites: a read replica answers every write with
// 409 and the leader's address — POST /updates and POST /nodes alike —
// while reads and snapshots keep working.
func TestFollowerRejectsWrites(t *testing.T) {
	const leaderURL = "http://leader.example:8080"
	_, _, ts := newTestServer(t, 4, Config{Leader: leaderURL})

	for _, tc := range []struct {
		path string
		body any
	}{
		{"/updates", UpdateJSON{From: 0, To: 2}},
		{"/nodes", NodesRequest{Count: 1}},
	} {
		var errBody ErrorResponse
		status := postJSONInto(t, ts.URL+tc.path, tc.body, &errBody)
		if status != http.StatusConflict {
			t.Fatalf("POST %s on a follower = %d, want 409", tc.path, status)
		}
		if errBody.Leader != leaderURL {
			t.Fatalf("POST %s 409 body names leader %q, want %q", tc.path, errBody.Leader, leaderURL)
		}
	}

	// Reads still serve.
	var sim SimilarityResponse
	if got := getJSON(t, ts.URL+"/similarity?a=0&b=1", &sim); got != http.StatusOK {
		t.Fatalf("follower read = %d, want 200", got)
	}
	// /stats names the leader.
	var st StatsResponse
	if got := getJSON(t, ts.URL+"/stats", &st); got != http.StatusOK {
		t.Fatalf("/stats = %d", got)
	}
	if st.Leader != "" {
		// Leader appears in /stats only when a Replica is wired; a bare
		// Leader config (no stream client) must not fake replica gauges.
		t.Fatalf("stats leader = %q without a replica client", st.Leader)
	}
}

package server

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	simrank "repro"
	"repro/internal/replica"
	"repro/internal/wal"
)

// Config tunes a Server. The zero value is usable: no snapshot path
// (snapshot endpoints disabled, nothing persisted at shutdown) and the
// pipeline defaults.
type Config struct {
	// SnapshotPath, when non-empty, is where POST /snapshot and the final
	// shutdown snapshot atomically persist the engine.
	SnapshotPath string
	// QueueSize bounds the write pipeline's buffered request queue
	// (default 1024 requests).
	QueueSize int
	// MaxBatch caps how many updates one drain cycle coalesces ACROSS
	// requests (default 65536). It is a soft cap: a single request's
	// update array is never split (it must commit atomically), so one
	// request larger than MaxBatch still commits whole. Bound individual
	// request sizes at the client, or rely on the 8 MiB body limit.
	MaxBatch int
	// BatchWindow keeps each drain cycle open this long after its first
	// update arrives, deepening coalescing at the cost of added write
	// latency. 0 (the default) commits as soon as the engine is free.
	BatchWindow time.Duration
	// MaxNodes bounds the graph size POST /nodes may grow to. The
	// similarity matrix is dense (n² float64s, 8n² bytes), so this is a
	// memory-safety limit: one request asking for a huge count must not
	// OOM the process. Default 16384 (a 2 GiB matrix); size to your RAM.
	MaxNodes int
	// WAL, when non-nil, is the write-ahead log the caller installed on
	// the engine (ConcurrentEngine.SetWAL) before Attach. The server
	// uses the handle for four things: the /stats wal_* gauges, the
	// ?wait=1 group-commit Sync under the interval fsync policy,
	// truncating sealed segments once a snapshot has durably captured
	// their epochs, and serving the GET /wal replication stream (with
	// Attach wiring the engine's SetWALNotify hook into the stream hub).
	// The server never closes it — the owner does, after Close has
	// drained the last write.
	WAL *wal.WAL
	// HeartbeatInterval paces the liveness frames GET /wal interleaves
	// into an idle stream (default 1s). Followers size their stall
	// timeout above this.
	HeartbeatInterval time.Duration
	// Leader, when non-empty, marks this server a read replica following
	// that base URL: POST /updates and POST /nodes answer 409 carrying
	// the leader's address (writes belong on the leader; the follower
	// would fork from the stream it replays), and POST /snapshot stays
	// available for seeding local restarts.
	Leader string
	// Replica, set on a follower alongside Leader, is the stream client
	// whose lag gates /readyz (503 until CaughtUp) and whose gauges feed
	// the /stats replica_* fields.
	Replica *replica.Replica
}

// defaultMaxNodes keeps the dense n×n similarity matrix at ≤ 2 GiB
// unless the operator explicitly allows more.
const defaultMaxNodes = 1 << 14

// Server serves a simrank.ConcurrentEngine over HTTP/JSON. Reads go
// straight to the engine's lock-free MVCC read views; writes go through
// the coalescing pipeline. Create with New (engine in hand) or
// NewPending + Attach (listen first, boot the engine behind /readyz),
// install as an http.Handler, and Close on shutdown to drain queued
// writes and persist a final snapshot.
type Server struct {
	// eng and pipe are written once by Attach, before ready flips true;
	// handlers read them only after observing ready, so the fields need
	// no further synchronization.
	eng   *simrank.ConcurrentEngine
	pipe  *pipeline
	ready atomic.Bool

	mux   *http.ServeMux
	cfg   Config
	start time.Time

	// walHub fans committed records out to GET /wal subscribers; always
	// constructed (the handler 409s without a WAL, so an unused hub is
	// just an empty map).
	walHub *walHub

	// nodesMu serializes POST /nodes so the MaxNodes bound is
	// check-then-act safe: the engine's own lock only covers the growth,
	// not the limit check against the current size.
	nodesMu sync.Mutex

	// snapMu serializes snapshot-file writes, and snapDone marks the
	// final shutdown snapshot as written: without it, an on-demand
	// POST /snapshot still in flight when Close runs could rename a
	// pre-drain snapshot OVER the final one, losing acknowledged writes.
	snapMu   sync.Mutex
	snapDone bool

	closeOnce sync.Once
	closeErr  error
}

// New builds a ready Server over eng. The caller must not write to eng
// directly afterwards — all mutations must flow through the server so
// the pipeline's coalescing and shutdown guarantees hold.
func New(eng *simrank.ConcurrentEngine, cfg Config) *Server {
	s := NewPending(cfg)
	s.Attach(eng)
	return s
}

// NewPending builds a Server with no engine yet: /healthz answers (the
// process is live), /readyz reports not-ready, and every other endpoint
// answers 503. The deployment shape this exists for: bind the listener
// immediately, boot the engine (a -restore or a large batch computation
// can take a while), then Attach — load balancers watch /readyz and
// hold traffic until the first view is published.
func NewPending(cfg Config) *Server {
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = defaultMaxNodes
	}
	s := &Server{
		cfg:    cfg,
		start:  time.Now(),
		walHub: newWALHub(),
	}
	s.mux = http.NewServeMux()
	// Every engine-backed endpoint goes through requireReady, so a
	// handler added later cannot forget the pending-server gate; only
	// the liveness and readiness probes are served engine-free.
	s.mux.HandleFunc("GET /similarity", s.requireReady(s.handleSimilarity))
	s.mux.HandleFunc("GET /topk", s.requireReady(s.handleTopK))
	s.mux.HandleFunc("GET /topkfor", s.requireReady(s.handleTopKFor))
	s.mux.HandleFunc("GET /stats", s.requireReady(s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /updates", s.requireReady(s.handleUpdates))
	s.mux.HandleFunc("POST /nodes", s.requireReady(s.handleNodes))
	s.mux.HandleFunc("POST /snapshot", s.requireReady(s.handleSnapshot))
	s.mux.HandleFunc("GET /wal", s.requireReady(s.handleWALStream))
	return s
}

// Attach hands the booted engine to a pending server and flips it
// ready. Call exactly once; the caller must not write to eng directly
// afterwards. The engine arrives with its first view already published
// (WrapEngine/NewConcurrentEngine publish at construction), so ready
// implies queryable.
func (s *Server) Attach(eng *simrank.ConcurrentEngine) {
	if s.ready.Load() {
		panic("server: Attach called twice")
	}
	s.eng = eng
	if s.cfg.WAL != nil {
		// Replication tail: every durably appended record reaches the
		// GET /wal subscribers. The hub's publish is non-blocking, as the
		// hook contract (it runs under the engine's writer mutex) demands.
		eng.SetWALNotify(s.walHub.publish)
	}
	var sync func() error
	if w := s.cfg.WAL; w != nil && w.Policy() == wal.SyncInterval {
		// Group commit: ?wait=1 acknowledgements force the cycle's record
		// to disk. Redundant under SyncAlways (every append fsyncs),
		// deliberately absent under SyncNone (the operator opted out of
		// durability).
		sync = w.Sync
	}
	s.pipe = newPipeline(eng.ApplyBatch, sync, s.cfg.QueueSize, s.cfg.MaxBatch, s.cfg.BatchWindow)
	s.ready.Store(true)
}

// SetReplica installs the follower's stream client on a pending server
// — the replica needs the booted engine, which NewPending by definition
// does not have yet. Call before Attach: handlers only dereference
// cfg.Replica after observing ready, and Attach's ready flip publishes
// this write to them. (New-path callers set Config.Replica directly.)
func (s *Server) SetReplica(rep *replica.Replica) {
	if s.ready.Load() {
		panic("server: SetReplica after Attach")
	}
	s.cfg.Replica = rep
}

// errNotReady answers every engine-backed endpoint before Attach.
var errNotReady = errors.New("engine is still booting (watch /readyz)")

// engineReady gates handlers on Attach having completed.
func (s *Server) engineReady() bool { return s.ready.Load() }

// requireReady wraps an engine-backed handler with the 503-until-Attach
// gate of the pending-boot flow.
func (s *Server) requireReady(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.engineReady() {
			writeError(w, http.StatusServiceUnavailable, errNotReady)
			return
		}
		h(w, r)
	}
}

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close shuts the write path down gracefully: new writes are rejected,
// the pipeline drains and commits everything already accepted, and —
// when a snapshot path is configured — the final engine state is
// persisted atomically. Idempotent; later calls return the first error.
// Call after the HTTP listener has stopped accepting requests (e.g.
// http.Server.Shutdown) so no accepted write is ever dropped.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if !s.engineReady() {
			// Never attached: nothing queued, nothing worth persisting.
			s.snapMu.Lock()
			s.snapDone = true
			s.snapMu.Unlock()
			return
		}
		s.pipe.close()
		s.snapMu.Lock()
		defer s.snapMu.Unlock()
		if s.cfg.SnapshotPath != "" {
			s.closeErr = s.writeSnapshotAndTruncate()
		}
		s.snapDone = true
	})
	return s.closeErr
}

// writeSnapshotAndTruncate persists the engine to the configured
// snapshot path and, on success, drops WAL segments every record of
// which the snapshot now covers. Caller holds snapMu.
func (s *Server) writeSnapshotAndTruncate() error {
	// The published epoch read BEFORE serialization is a safe truncation
	// floor: WriteSnapshotFile pins its own view, which can only be this
	// epoch or newer, and under-truncating merely keeps records the next
	// boot's replay will skip as already-covered.
	epoch := s.eng.Epoch()
	if err := simrank.WriteSnapshotFile(s.eng, s.cfg.SnapshotPath); err != nil {
		return err
	}
	if w := s.cfg.WAL; w != nil {
		if err := w.Truncate(epoch); err != nil {
			return fmt.Errorf("snapshot persisted, but truncating the wal below epoch %d failed: %w", epoch, err)
		}
	}
	return nil
}

// Stats returns the current counters (also served as GET /stats). Only
// valid on a ready server; the /stats handler gates on that. Everything
// view-derived (size, backend, store bytes, epoch gauges) comes from
// ONE ViewInfo reading, so a response cannot report an epoch alongside
// another epoch's node counts.
func (s *Server) Stats() StatsResponse {
	st := &s.pipe.stats
	vi := s.eng.ViewInfo()
	cs := vi.Cache
	updP50, updP99 := s.pipe.lat.percentiles()
	resp := StatsResponse{
		Nodes:           vi.N,
		Edges:           vi.M,
		Backend:         string(vi.Backend),
		StoreBytes:      vi.StoreBytes,
		Epoch:           vi.Epoch,
		ViewAgeMS:       float64(vi.Age.Microseconds()) / 1e3,
		InflightReaders: vi.Readers,
		ViewsPublished:  vi.Published,
		UpdatesEnqueued: st.enqueued.Load(),
		UpdatesApplied:  st.applied.Load(),
		UpdatesRejected: st.rejected.Load(),
		Batches:         st.batches.Load(),
		FailedBatches:   st.failedBatches.Load(),
		MaxBatch:        st.maxBatch.Load(),
		QueueDepth:      st.depth.Load(),

		UpdateP50Us:   updP50,
		UpdateP99Us:   updP99,
		UpdateWorkers: s.eng.Options().Workers,

		CacheRowHits:         cs.RowHits,
		CacheRowMisses:       cs.RowMisses,
		CacheGlobalHits:      cs.GlobalHits,
		CacheGlobalMisses:    cs.GlobalMisses,
		CacheInvalidatedRows: cs.InvalidatedRows,
		CacheFlushes:         cs.Flushes,
		CacheEvictions:       cs.Evictions,
		CachedRows:           cs.Rows,

		WalksRepaired:        vi.WalksRepaired,
		WalkResampleFraction: vi.WalkResampleFraction,

		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if w := s.cfg.WAL; w != nil {
		ws := w.Stats()
		resp.WALEnabled = true
		resp.WALEpoch = ws.LastEpoch
		resp.WALSegments = ws.Segments
		resp.WALBytes = ws.Bytes
		resp.WALFsyncs = ws.Fsyncs
		resp.WALFailures = st.walFailures.Load()
		resp.WALSubscribers = s.walHub.subscribers()
	}
	if rep := s.cfg.Replica; rep != nil {
		rs := rep.Stats()
		resp.Leader = s.cfg.Leader
		resp.ReplicaLagEpochs = rs.LagEpochs
		resp.ReplicaLagMS = rs.LagMS
		resp.RecordsStreamed = rs.Records
		resp.Reconnects = rs.Reconnects
		resp.ReplicaConnected = rs.Connected
	}
	return resp
}

// checkNode validates a node id against the current graph size.
func (s *Server) checkNode(name string, v int) error {
	if n := s.eng.N(); v < 0 || v >= n {
		return fmt.Errorf("%s=%d out of range [0,%d)", name, v, n)
	}
	return nil
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	simrank "repro"
	"repro/internal/core"
)

// maxBodyBytes bounds POST bodies; at ~30 bytes per wire update this
// still admits six-figure batches in one request.
const maxBodyBytes = 8 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// intParam parses a required (or defaulted) integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		if def >= 0 {
			return def, nil
		}
		return 0, errors.New("missing query parameter " + name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, errors.New("query parameter " + name + " is not an integer")
	}
	return v, nil
}

// GET /similarity?a=0&b=1 — one score, served lock-free off the
// current MVCC view.
func (s *Server) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	a, err := intParam(r, "a", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b, err := intParam(r, "b", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkNode("a", a); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkNode("b", b); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	score, stderr := s.eng.SimilarityStderr(a, b)
	writeJSON(w, http.StatusOK, SimilarityResponse{A: a, B: b, Score: score, Stderr: stderr})
}

// maxTopK caps the k accepted by the top-k endpoints: metrics.TopKPairs
// allocates a k-sized heap up front, so an unclamped client k would let
// one GET request demand arbitrary memory.
const maxTopK = 1 << 20

func clampTopK(k, pairs int) int {
	return min(k, pairs, maxTopK)
}

// GET /topk?k=10 — the k most similar pairs globally. The approx
// backend has no materialized matrix to scan, so the endpoint answers
// 501 there (use /topkfor per node, which samples).
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if s.eng.Backend() == simrank.BackendApprox {
		writeError(w, http.StatusNotImplemented,
			errors.New("global top-k requires an exact backend; the approx tier serves per-node /topkfor"))
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, errors.New("k must be a positive integer"))
		return
	}
	n := s.eng.N()
	k = clampTopK(k, n*(n-1)/2)
	writeJSON(w, http.StatusOK, TopKResponse{Pairs: toPairJSON(s.eng.TopK(k))})
}

// GET /topkfor?node=3&k=10 — the k nodes most similar to one node.
func (s *Server) handleTopKFor(w http.ResponseWriter, r *http.Request) {
	node, err := intParam(r, "node", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.checkNode("node", node); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, errors.New("k must be a positive integer"))
		return
	}
	k = clampTopK(k, s.eng.N())
	writeJSON(w, http.StatusOK, TopKResponse{Pairs: toPairJSON(s.eng.TopKFor(node, k))})
}

// GET /stats — engine size plus the pipeline's coalescing counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// GET /healthz — pure liveness: the process is up and serving HTTP.
// Deliberately engine-free, so an orchestrator never restarts a pod
// that is merely still restoring a large snapshot; that state is
// /readyz's to report.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// GET /readyz — readiness: 503 until the engine is booted (-restore
// replayed, initial batch computation done) and its first MVCC view is
// published; 200 with the serving epoch afterwards. On a read replica
// the gate is stricter: the follower must also be connected to its
// leader and within the configured lag bound (replica.CaughtUp), so a
// follower that is alive but stale — still catching up, or cut off from
// the leader — is held out of rotation while continuing to serve
// explicit reads. Load balancers and rollout gates watch this one.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.engineReady() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Ready: false})
		return
	}
	resp := ReadyResponse{Ready: true, Epoch: s.eng.ViewInfo().Epoch}
	if rep := s.cfg.Replica; rep != nil {
		rs := rep.Stats()
		resp.ReplicaLagEpochs = rs.LagEpochs
		resp.ReplicaConnected = rs.Connected
		if !rep.CaughtUp() {
			resp.Ready = false
			writeJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// rejectOnFollower answers writes arriving at a read replica: 409 with
// the leader's address in the body, so a misconfigured client learns
// where writes belong instead of silently forking the follower from the
// stream it replays.
func (s *Server) rejectOnFollower(w http.ResponseWriter) bool {
	if s.cfg.Leader == "" {
		return false
	}
	writeJSON(w, http.StatusConflict, ErrorResponse{
		Error:  "this server is a read replica; send writes to the leader",
		Leader: s.cfg.Leader,
	})
	return true
}

// POST /updates[?wait=1] — enqueue one update or an array of them onto
// the coalescing pipeline. Fire-and-forget answers 202 as soon as the
// request is queued; wait mode blocks until the request's batch commits
// and answers 200 (or 409 if the engine rejected the update, e.g. an
// insert of an edge that already exists).
func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	ups, err := decodeUpdates(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wait := false
	if v := r.URL.Query().Get("wait"); v != "" && v != "0" && v != "false" {
		wait = true
	}
	done, err := s.pipe.submit(ups, wait)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if !wait {
		writeJSON(w, http.StatusAccepted, UpdateResponse{Enqueued: len(ups)})
		return
	}
	verdict := func(err error) {
		if err != nil {
			status := http.StatusInternalServerError
			var bad *core.ErrBadUpdate
			if errors.As(err, &bad) {
				status = http.StatusConflict
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, UpdateResponse{Applied: len(ups)})
	}
	select {
	case err := <-done:
		verdict(err)
	case <-r.Context().Done():
		// The client went away mid-wait. Prefer a verdict that already
		// landed (the commit may have raced the cancellation); otherwise
		// the write is still queued and WILL commit with its batch, so
		// answer as an accepted async write — a 5xx here would invite a
		// retry of a write that is about to land.
		select {
		case err := <-done:
			verdict(err)
		default:
			writeJSON(w, http.StatusAccepted, UpdateResponse{Enqueued: len(ups)})
		}
	}
}

// POST /nodes {"count":2} — grow the graph by isolated nodes. This
// goes through the writer mutex directly (it is rare and O(n²) anyway). It is NOT
// ordered relative to updates already queued in the pipeline: a
// fire-and-forget update that references the new ids and was enqueued
// before this call may still be rejected. The supported pattern is the
// other direction — POST /nodes, then write to the returned ids.
func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	if s.rejectOnFollower(w) {
		return
	}
	var req NodesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Count < 1 {
		writeError(w, http.StatusBadRequest, errors.New("count must be positive"))
		return
	}
	s.nodesMu.Lock()
	defer s.nodesMu.Unlock()
	if n := s.eng.N(); req.Count > s.cfg.MaxNodes-n {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("count %d would grow the graph past the %d-node limit (now %d); raise -max-nodes if intended", req.Count, s.cfg.MaxNodes, n))
		return
	}
	first, err := s.eng.AddNodes(req.Count)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, NodesResponse{First: first, Nodes: s.eng.N()})
}

// POST /snapshot — atomically persist the engine to the configured
// path, serialized from a pinned MVCC view: queries keep flowing AND
// the write pipeline keeps committing while the bytes stream out (the
// file captures the view's epoch; later commits are not in it).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		writeError(w, http.StatusConflict, errors.New("no snapshot path configured (start with -snapshot)"))
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snapDone {
		// Shutdown already wrote the final snapshot; a late on-demand
		// write would overwrite it with (at best) the same state.
		writeError(w, http.StatusServiceUnavailable, errors.New("server is shutting down; final snapshot already written"))
		return
	}
	if err := s.writeSnapshotAndTruncate(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Path: s.cfg.SnapshotPath})
}

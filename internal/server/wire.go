package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	simrank "repro"
)

// UpdateJSON is the wire form of one link update. Op is "insert" or
// "delete"; an empty Op means insert, so the minimal body
// {"from":0,"to":1} inserts an edge.
type UpdateJSON struct {
	From int    `json:"from"`
	To   int    `json:"to"`
	Op   string `json:"op,omitempty"`
}

// rawUpdate is the decode-side twin of UpdateJSON: pointer fields make
// missing from/to detectable, so bodies like `null` or `{}` are rejected
// instead of silently becoming an "insert edge 0→0".
type rawUpdate struct {
	From *int   `json:"from"`
	To   *int   `json:"to"`
	Op   string `json:"op"`
}

func (u rawUpdate) toUpdate() (simrank.Update, error) {
	var up simrank.Update
	if u.From == nil || u.To == nil {
		return up, fmt.Errorf(`"from" and "to" are required`)
	}
	up.Edge = simrank.Edge{From: *u.From, To: *u.To}
	switch u.Op {
	case "", "insert", "+":
		up.Insert = true
	case "delete", "-":
		up.Insert = false
	default:
		return up, fmt.Errorf(`op %q is not "insert" or "delete"`, u.Op)
	}
	return up, nil
}

// decodeUpdates accepts either a single update object or an array of
// them — POST /updates treats both as one write request. The shape is
// sniffed from the first non-whitespace byte so the body is parsed once.
func decodeUpdates(body []byte) ([]simrank.Update, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	var wire []rawUpdate
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &wire); err != nil {
			return nil, err
		}
	} else {
		var one rawUpdate
		if err := json.Unmarshal(trimmed, &one); err != nil {
			return nil, err
		}
		wire = []rawUpdate{one}
	}
	if len(wire) == 0 {
		return nil, fmt.Errorf("empty update batch")
	}
	ups := make([]simrank.Update, len(wire))
	for i, w := range wire {
		up, err := w.toUpdate()
		if err != nil {
			return nil, fmt.Errorf("update %d: %w", i, err)
		}
		ups[i] = up
	}
	return ups, nil
}

// PairJSON is the wire form of a scored node-pair.
type PairJSON struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Score float64 `json:"score"`
}

func toPairJSON(ps []simrank.Pair) []PairJSON {
	out := make([]PairJSON, len(ps))
	for i, p := range ps {
		out[i] = PairJSON{A: p.A, B: p.B, Score: p.Score}
	}
	return out
}

// SimilarityResponse answers GET /similarity. Stderr is the sampling
// standard error of the score on the approx backend (|true − score| ≤
// 3·stderr with ≈99% confidence); exact backends omit it.
type SimilarityResponse struct {
	A      int     `json:"a"`
	B      int     `json:"b"`
	Score  float64 `json:"score"`
	Stderr float64 `json:"stderr,omitempty"`
}

// TopKResponse answers GET /topk and GET /topkfor.
type TopKResponse struct {
	Pairs []PairJSON `json:"pairs"`
}

// UpdateResponse answers POST /updates: Enqueued for fire-and-forget
// (202), Applied once the request's batch has committed (200, wait mode).
type UpdateResponse struct {
	Enqueued int `json:"enqueued,omitempty"`
	Applied  int `json:"applied,omitempty"`
}

// NodesRequest and NodesResponse serve POST /nodes.
type NodesRequest struct {
	Count int `json:"count"`
}

type NodesResponse struct {
	First int `json:"first"`
	Nodes int `json:"nodes"`
}

// SnapshotResponse answers POST /snapshot.
type SnapshotResponse struct {
	Path string `json:"path"`
}

// StatsResponse answers GET /stats. The pipeline counters make the write
// coalescing observable: Batches is the number of ApplyBatch commits, so
// UpdatesApplied/Batches is the realized coalescing factor.
type StatsResponse struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`

	// Backend names the similarity store serving this engine (dense,
	// packed or approx); StoreBytes is its resident size — the number an
	// operator watches when deciding which tier a graph belongs on.
	Backend    string `json:"backend"`
	StoreBytes int64  `json:"store_bytes"`

	// MVCC read-path gauges. Epoch is the published view's version
	// (strictly monotone, +1 per committed mutation); ViewAgeMS is how
	// long ago that view was published — how stale the data a fresh read
	// observes can be, normally bounded by the write inter-arrival time;
	// InflightReaders counts calls inside the current view right now;
	// ViewsPublished counts publishes over the process lifetime.
	Epoch           uint64  `json:"epoch"`
	ViewAgeMS       float64 `json:"view_age_ms"`
	InflightReaders int64   `json:"inflight_readers"`
	ViewsPublished  int64   `json:"views_published"`

	UpdatesEnqueued int64 `json:"updates_enqueued"`
	UpdatesApplied  int64 `json:"updates_applied"`
	UpdatesRejected int64 `json:"updates_rejected"`
	Batches         int64 `json:"batches"`
	FailedBatches   int64 `json:"failed_batches"`
	MaxBatch        int64 `json:"max_batch"`
	QueueDepth      int64 `json:"queue_depth"`

	// Update commit latency over a sliding window of recent apply calls
	// (µs per coalesced cycle, the engine-side cost a ?wait=1 client
	// waits through), and the worker count the update path fans out to
	// (0 = auto, 1 = serial). Both zero until the first commit.
	UpdateP50Us   int64 `json:"update_p50_us"`
	UpdateP99Us   int64 `json:"update_p99_us"`
	UpdateWorkers int   `json:"update_workers"`

	// Query-cache counters (all zero with -topk-cache 0). The miss
	// counters are the scans actually performed: /topkfor traffic is
	// served entirely from cache while cache_row_misses holds still, and
	// cache_invalidated_rows / updates_applied is the realized precision
	// of the dirty-row invalidation.
	CacheRowHits         int64 `json:"cache_row_hits"`
	CacheRowMisses       int64 `json:"cache_row_misses"`
	CacheGlobalHits      int64 `json:"cache_global_hits"`
	CacheGlobalMisses    int64 `json:"cache_global_misses"`
	CacheInvalidatedRows int64 `json:"cache_invalidated_rows"`
	CacheFlushes         int64 `json:"cache_flushes"`
	CacheEvictions       int64 `json:"cache_evictions"`
	CachedRows           int   `json:"cached_rows"`

	// Approx-tier repair gauges (zero on the exact backends):
	// WalksRepaired is the cumulative count of stored walks whose suffix
	// was resampled by incremental repair; WalkResampleFraction is that
	// work divided by what full per-update rebuilds would have resampled
	// — the affected-area win, ≈ the mean walk-visit probability of the
	// updated nodes.
	WalksRepaired        uint64  `json:"walks_repaired"`
	WalkResampleFraction float64 `json:"walk_resample_fraction"`

	// Write-ahead-log gauges, populated only when the process runs with
	// -wal-dir (WALEnabled says so; the others are zero otherwise).
	// WALEpoch is the newest logged record's epoch — it tracks the view
	// epoch minus any unlogged knob bumps; WALFailures counts commits
	// whose record or group-commit fsync failed (nonzero means
	// acknowledged state could be lost in a crash — page someone).
	WALEnabled  bool   `json:"wal_enabled"`
	WALEpoch    uint64 `json:"wal_epoch"`
	WALSegments int    `json:"wal_segments"`
	WALBytes    int64  `json:"wal_bytes"`
	WALFsyncs   int64  `json:"wal_fsyncs"`
	WALFailures int64  `json:"wal_failures"`
	// WALSubscribers counts live GET /wal replication streams (0 without
	// a WAL).
	WALSubscribers int64 `json:"wal_subscribers,omitempty"`

	// Replication gauges, populated only on a follower (-follow; Leader
	// names who it follows). ReplicaLagEpochs and ReplicaLagMS measure
	// how far behind the leader's last known committed epoch this
	// follower's serving view is — in versions and in wall time
	// continuously spent behind; RecordsStreamed counts records applied
	// off the stream this process lifetime (a restarted follower that
	// resumed from its local snapshot+log shows a small number here, not
	// the leader's full history); Reconnects counts stream re-dials — a
	// climbing value with flat RecordsStreamed is a stalled or flapping
	// leader.
	Leader           string  `json:"leader,omitempty"`
	ReplicaLagEpochs uint64  `json:"replica_lag_epochs,omitempty"`
	ReplicaLagMS     float64 `json:"replica_lag_ms,omitempty"`
	RecordsStreamed  int64   `json:"records_streamed,omitempty"`
	Reconnects       int64   `json:"reconnects,omitempty"`
	ReplicaConnected bool    `json:"replica_connected,omitempty"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ReadyResponse answers GET /readyz: Ready is false (with a 503) until
// the engine is booted/restored and its first MVCC view is published,
// after which Epoch reports the serving view's version. On a follower,
// Ready additionally requires the replication stream to be connected
// and within the configured lag bound; the replica fields report the
// gate's inputs either way. /healthz stays pure liveness — a booting
// process is alive but not ready.
type ReadyResponse struct {
	Ready bool   `json:"ready"`
	Epoch uint64 `json:"epoch"`

	ReplicaLagEpochs uint64 `json:"replica_lag_epochs,omitempty"`
	ReplicaConnected bool   `json:"replica_connected,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer. Leader is set on
// the 409 a read replica answers to writes: the base URL they belong at.
type ErrorResponse struct {
	Error  string `json:"error"`
	Leader string `json:"leader,omitempty"`
}

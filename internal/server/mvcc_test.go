package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	simrank "repro"
)

// A pending server must be alive but not ready: /healthz 200, /readyz
// 503, every engine-backed endpoint 503 — then flip wholesale on
// Attach, with /readyz reporting the serving epoch.
func TestPendingServerReadiness(t *testing.T) {
	srv := NewPending(Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("pending /healthz = %d, want 200 (liveness is engine-free)", code)
	}
	var ready ReadyResponse
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("pending /readyz = %d, want 503", code)
	}
	for _, ep := range []string{"/similarity?a=0&b=1", "/topk", "/topkfor?node=0", "/stats"} {
		if code := getJSON(t, ts.URL+ep, nil); code != http.StatusServiceUnavailable {
			t.Fatalf("pending %s = %d, want 503", ep, code)
		}
	}
	if code := postJSON(t, ts.URL+"/updates", UpdateJSON{From: 0, To: 1}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("pending POST /updates = %d, want 503", code)
	}

	eng, err := simrank.NewConcurrentEngine(4, []simrank.Edge{{From: 0, To: 1}, {From: 2, To: 1}}, simrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Attach(eng)

	var readyNow ReadyResponse
	if code := getJSON(t, ts.URL+"/readyz", &readyNow); code != http.StatusOK || !readyNow.Ready {
		t.Fatalf("attached /readyz = %d %+v, want 200 ready", code, readyNow)
	}
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK || st.Nodes != 4 {
		t.Fatalf("attached /stats = %d %+v", code, st)
	}
}

// /stats must surface the MVCC gauges, and the epoch must advance once
// per committed write while views_published keeps pace.
func TestStatsEpochAdvances(t *testing.T) {
	_, _, ts := newTestServer(t, 6, Config{})

	var st0 StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st0); code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	if st0.Epoch != 0 || st0.ViewsPublished < 1 {
		t.Fatalf("boot stats: epoch=%d views=%d, want 0 and >=1", st0.Epoch, st0.ViewsPublished)
	}
	if st0.ViewAgeMS < 0 {
		t.Fatalf("view_age_ms negative: %v", st0.ViewAgeMS)
	}

	// One synchronous write = one committed mutation = epoch +1.
	if code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 0, To: 2}, nil); code != http.StatusOK {
		t.Fatalf("write = %d", code)
	}
	var st1 StatsResponse
	getJSON(t, ts.URL+"/stats", &st1)
	if st1.Epoch != st0.Epoch+1 {
		t.Fatalf("epoch after one write = %d, want %d", st1.Epoch, st0.Epoch+1)
	}
	if st1.ViewsPublished <= st0.ViewsPublished {
		t.Fatalf("views_published did not advance: %d -> %d", st0.ViewsPublished, st1.ViewsPublished)
	}
	// The commit-latency window has at least one sample now; percentiles
	// must be live (a commit cannot take less than a microsecond — p50 of
	// zero would mean the window never recorded) and ordered. Before the
	// first commit they read zero.
	if st0.UpdateP50Us != 0 || st0.UpdateP99Us != 0 {
		t.Fatalf("boot stats report update latency %d/%d µs with no commits", st0.UpdateP50Us, st0.UpdateP99Us)
	}
	if st1.UpdateP50Us < 1 || st1.UpdateP99Us < st1.UpdateP50Us {
		t.Fatalf("update latency percentiles not live after a commit: p50=%dµs p99=%dµs",
			st1.UpdateP50Us, st1.UpdateP99Us)
	}

	// /readyz reports the same serving epoch.
	var ready ReadyResponse
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK || ready.Epoch != st1.Epoch {
		t.Fatalf("/readyz = %d %+v, want epoch %d", code, ready, st1.Epoch)
	}
}

// Closing a never-attached pending server must be a clean no-op.
func TestPendingServerClose(t *testing.T) {
	srv := NewPending(Config{SnapshotPath: t.TempDir() + "/never.simr"})
	if err := srv.Close(); err != nil {
		t.Fatalf("pending Close: %v", err)
	}
}

package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	simrank "repro"
)

func up(from, to int) simrank.Update {
	return simrank.Update{Edge: simrank.Edge{From: from, To: to}, Insert: true}
}

// gatedApplier makes drain cycles deterministic with a two-step
// handshake: every apply call first signals entered, then blocks until
// the test sends on gate. Anything submitted between the entered signal
// and the gate release is therefore guaranteed to queue behind the
// in-flight commit and share the NEXT drain cycle.
type gatedApplier struct {
	mu      sync.Mutex
	calls   [][]simrank.Update
	entered chan struct{}
	gate    chan struct{}
	fail    func([]simrank.Update) error
}

func newGatedApplier() *gatedApplier {
	return &gatedApplier{entered: make(chan struct{}), gate: make(chan struct{})}
}

func (g *gatedApplier) apply(ups []simrank.Update) error {
	g.entered <- struct{}{}
	<-g.gate
	g.mu.Lock()
	g.calls = append(g.calls, append([]simrank.Update(nil), ups...))
	g.mu.Unlock()
	if g.fail != nil {
		return g.fail(ups)
	}
	return nil
}

func (g *gatedApplier) callSizes() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, len(g.calls))
	for i, c := range g.calls {
		out[i] = len(c)
	}
	return out
}

func mustSubmit(t *testing.T, p *pipeline, ups []simrank.Update, wait bool) <-chan error {
	t.Helper()
	done, err := p.submit(ups, wait)
	if err != nil {
		t.Fatal(err)
	}
	return done
}

// TestPipelineCoalesces pins the core guarantee deterministically: four
// requests submitted while the first commit is in flight fold into ONE
// apply call (one write-lock acquisition for the whole burst).
func TestPipelineCoalesces(t *testing.T) {
	g := newGatedApplier()
	p := newPipeline(g.apply, nil, 16, 0, 0)
	defer p.close()

	mustSubmit(t, p, []simrank.Update{up(0, 1)}, false)
	<-g.entered // cycle 1 = {(0,1)} is committing; queue is empty
	for _, ups := range [][]simrank.Update{
		{up(1, 2)}, {up(2, 3), up(3, 4)}, {up(4, 5), up(5, 6)},
	} {
		mustSubmit(t, p, ups, false)
	}
	done := mustSubmit(t, p, []simrank.Update{up(6, 7)}, true)
	g.gate <- struct{}{} // cycle 1 commits
	<-g.entered          // cycle 2 = everything queued above
	g.gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	sizes := g.callSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 6 {
		t.Fatalf("apply call sizes = %v, want [1 6]", sizes)
	}
	if got := p.stats.batches.Load(); got != 2 {
		t.Fatalf("batches = %d, want 2", got)
	}
	if got := p.stats.applied.Load(); got != 7 {
		t.Fatalf("applied = %d, want 7", got)
	}
	if got := p.stats.maxBatch.Load(); got != 6 {
		t.Fatalf("maxBatch = %d, want 6", got)
	}
	if got := p.stats.depth.Load(); got != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", got)
	}
}

// TestPipelineMaxBatchCap verifies a drain cycle stops coalescing at
// maxBatch updates: five queued singletons behind an in-flight commit
// split into cycles of at most two.
func TestPipelineMaxBatchCap(t *testing.T) {
	g := newGatedApplier()
	p := newPipeline(g.apply, nil, 16, 2, 0)
	defer p.close()

	mustSubmit(t, p, []simrank.Update{up(0, 1)}, false)
	<-g.entered
	for i := 1; i <= 4; i++ {
		mustSubmit(t, p, []simrank.Update{up(i, i+1)}, false)
	}
	done := mustSubmit(t, p, []simrank.Update{up(9, 10)}, true)
	g.gate <- struct{}{} // cycle 1 = {1}
	for i := 0; i < 3; i++ {
		<-g.entered // cycles {2}, {2}, {1}
		g.gate <- struct{}{}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	sizes := g.callSizes()
	if len(sizes) != 4 {
		t.Fatalf("apply calls = %v, want 4 cycles", sizes)
	}
	for _, n := range sizes {
		if n > 2 {
			t.Fatalf("a drain cycle coalesced %d updates, max is 2 (%v)", n, sizes)
		}
	}
}

// TestPipelineFailedBatchFallsBackPerRequest: when the coalesced batch
// is rejected, each request is retried on its own, so one client's bad
// update cannot poison writes that merely shared its drain cycle — and
// each waiter receives its own verdict.
func TestPipelineFailedBatchFallsBackPerRequest(t *testing.T) {
	poison := errors.New("poisoned update")
	g := newGatedApplier()
	g.fail = func(ups []simrank.Update) error {
		for _, u := range ups {
			if u.Edge.From == 99 {
				return poison
			}
		}
		return nil
	}
	p := newPipeline(g.apply, nil, 16, 0, 0)
	defer p.close()

	mustSubmit(t, p, []simrank.Update{up(0, 1)}, false)
	<-g.entered
	goodDone := mustSubmit(t, p, []simrank.Update{up(1, 2)}, true)
	badDone := mustSubmit(t, p, []simrank.Update{up(99, 0)}, true)
	g.gate <- struct{}{} // cycle 1 commits
	<-g.entered          // cycle 2 = {good, bad}: coalesced apply fails
	g.gate <- struct{}{}
	<-g.entered // fallback apply of good alone
	g.gate <- struct{}{}
	<-g.entered // fallback apply of bad alone
	g.gate <- struct{}{}
	if err := <-goodDone; err != nil {
		t.Fatalf("good request poisoned by cycle-mate: %v", err)
	}
	if err := <-badDone; !errors.Is(err, poison) {
		t.Fatalf("bad request error = %v, want %v", err, poison)
	}
	if got := p.stats.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if got := p.stats.applied.Load(); got != 2 {
		t.Fatalf("applied = %d, want 2", got)
	}
	if got := p.stats.batches.Load(); got != 2 {
		t.Fatalf("batches = %d, want 2 (cycle 1 + fallback good)", got)
	}
	// One logical rejection must read as ONE failure, not the coalesced
	// attempt plus its fallback.
	if got := p.stats.failedBatches.Load(); got != 1 {
		t.Fatalf("failedBatches = %d, want 1", got)
	}
}

// TestPipelineBatchWindow: with a batching window, requests arriving
// while the cycle is held open coalesce even though the applier is
// instantly available — the deterministic form of the burst behavior the
// e2e suite observes over HTTP.
func TestPipelineBatchWindow(t *testing.T) {
	var mu sync.Mutex
	var calls []int
	p := newPipeline(func(ups []simrank.Update) error {
		mu.Lock()
		calls = append(calls, len(ups))
		mu.Unlock()
		return nil
	}, nil, 64, 0, 200*time.Millisecond)
	defer p.close()

	// All ten submits land well inside the first cycle's window.
	for i := 0; i < 10; i++ {
		mustSubmit(t, p, []simrank.Update{up(i, i+1)}, false)
	}
	done := mustSubmit(t, p, []simrank.Update{up(20, 21)}, true)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 || calls[0] != 11 {
		t.Fatalf("apply calls = %v, want one call of 11 updates", calls)
	}
}

// TestPipelineCloseDrains: close must commit everything accepted before
// returning, then reject later submits.
func TestPipelineCloseDrains(t *testing.T) {
	var mu sync.Mutex
	applied := 0
	p := newPipeline(func(ups []simrank.Update) error {
		mu.Lock()
		applied += len(ups)
		mu.Unlock()
		time.Sleep(time.Millisecond)
		return nil
	}, nil, 64, 0, 0)

	for i := 0; i < 32; i++ {
		if _, err := p.submit([]simrank.Update{up(i, i+1)}, false); err != nil {
			t.Fatal(err)
		}
	}
	p.close()
	mu.Lock()
	got := applied
	mu.Unlock()
	if got != 32 {
		t.Fatalf("close dropped writes: %d applied, want 32", got)
	}
	if _, err := p.submit([]simrank.Update{up(0, 1)}, false); !errors.Is(err, errPipelineClosed) {
		t.Fatalf("submit after close = %v, want errPipelineClosed", err)
	}
	p.close() // idempotent
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	simrank "repro"
	"repro/internal/matrix"
)

// newTestServer builds a server (and its engine) over a ring graph of n
// nodes (plus any extra edges), returning both plus the httptest
// listener. A bare directed ring has every off-diagonal similarity
// exactly zero — tests that need non-trivial scores add co-citations.
func newTestServer(t *testing.T, n int, cfg Config, extra ...simrank.Edge) (*Server, *simrank.ConcurrentEngine, *httptest.Server) {
	t.Helper()
	edges := make([]simrank.Edge, n, n+len(extra))
	for i := 0; i < n; i++ {
		edges[i] = simrank.Edge{From: i, To: (i + 1) % n}
	}
	edges = append(edges, extra...)
	eng, err := simrank.NewConcurrentEngine(n, edges, simrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, eng, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func TestServerQueryEndpoints(t *testing.T) {
	// Co-citations 0→3 and 0→5 give node 1 (cited by 0) non-zero
	// similarity to nodes 3 and 5, so topkfor has something to return.
	_, eng, ts := newTestServer(t, 6, Config{},
		simrank.Edge{From: 0, To: 3}, simrank.Edge{From: 0, To: 5})

	var sim SimilarityResponse
	if code := getJSON(t, ts.URL+"/similarity?a=0&b=2", &sim); code != http.StatusOK {
		t.Fatalf("similarity status %d", code)
	}
	if want := eng.Similarity(0, 2); sim.Score != want {
		t.Fatalf("similarity = %v, want %v", sim.Score, want)
	}

	var topk TopKResponse
	if code := getJSON(t, ts.URL+"/topk?k=3", &topk); code != http.StatusOK {
		t.Fatalf("topk status %d", code)
	}
	want := eng.TopK(3)
	if len(topk.Pairs) != len(want) {
		t.Fatalf("topk returned %d pairs, want %d", len(topk.Pairs), len(want))
	}
	for i, p := range want {
		if topk.Pairs[i] != (PairJSON{A: p.A, B: p.B, Score: p.Score}) {
			t.Fatalf("topk pair %d = %+v, want %+v", i, topk.Pairs[i], p)
		}
	}

	var fork TopKResponse
	if code := getJSON(t, ts.URL+"/topkfor?node=1&k=2", &fork); code != http.StatusOK {
		t.Fatalf("topkfor status %d", code)
	}
	if len(fork.Pairs) != 2 {
		t.Fatalf("topkfor returned %d pairs", len(fork.Pairs))
	}

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Nodes != 6 || st.Edges != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}

	// Parameter validation.
	for _, url := range []string{
		"/similarity?a=0", "/similarity?a=0&b=99", "/similarity?a=x&b=1",
		"/topk?k=0", "/topkfor?node=99", "/topkfor?node=0&k=-1",
	} {
		if code := getJSON(t, ts.URL+url, nil); code != http.StatusBadRequest {
			t.Fatalf("GET %s status %d, want 400", url, code)
		}
	}
	// Wrong method.
	if code := postJSON(t, ts.URL+"/topk", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /topk status %d, want 405", code)
	}
}

// TestServerSyncWriteObservesOwnUpdate: a ?wait=1 write answers 200 only
// after its batch commits, so an immediately following read must see it.
func TestServerSyncWriteObservesOwnUpdate(t *testing.T) {
	_, _, ts := newTestServer(t, 6, Config{})

	var before SimilarityResponse
	getJSON(t, ts.URL+"/similarity?a=3&b=5", &before)

	// Make 3 and 5 co-cited by 0, so s(3,5) must strictly rise.
	batch := []UpdateJSON{{From: 0, To: 3}, {From: 0, To: 5}}
	var ur UpdateResponse
	if code := postJSON(t, ts.URL+"/updates?wait=1", batch, &ur); code != http.StatusOK {
		t.Fatalf("sync write status %d", code)
	}
	if ur.Applied != 2 {
		t.Fatalf("applied = %d, want 2", ur.Applied)
	}
	var after SimilarityResponse
	getJSON(t, ts.URL+"/similarity?a=3&b=5", &after)
	if after.Score <= before.Score {
		t.Fatalf("sync write not observed: s(3,5) %v → %v", before.Score, after.Score)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Edges != 8 {
		t.Fatalf("edges = %d, want 8", st.Edges)
	}
	if st.UpdatesApplied != 2 || st.UpdatesRejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServerCoalescingBurst is the acceptance check: a burst of N
// single-update POSTs must commit in FEWER than N ApplyBatch calls, and
// none may be lost. The final ?wait=1 write is the barrier: the queue is
// FIFO, so when it commits everything enqueued before it has committed.
func TestServerCoalescingBurst(t *testing.T) {
	const n, burst = 40, 120
	// The 10ms batching window guarantees bursts coalesce even when the
	// engine could keep up with the posters.
	_, _, ts := newTestServer(t, n, Config{BatchWindow: 10 * time.Millisecond})

	// Distinct, always-applicable inserts: chords (i, i+2) and (i, i+3).
	var wg sync.WaitGroup
	errs := make(chan error, burst)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < burst; i += 8 {
				from := i % n
				to := (i + 2 + i/n) % n
				b, _ := json.Marshal(UpdateJSON{From: from, To: to})
				resp, err := http.Post(ts.URL+"/updates", "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("burst write %d: status %d", i, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Barrier write: everything above committed once this returns.
	if code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 0, To: n/2 + 1}, nil); code != http.StatusOK {
		t.Fatalf("barrier write status %d", code)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.UpdatesApplied != burst+1 || st.UpdatesRejected != 0 {
		t.Fatalf("lost writes: %+v", st)
	}
	if st.Batches >= burst+1 {
		t.Fatalf("no coalescing: %d updates took %d batches", st.UpdatesApplied, st.Batches)
	}
	if st.Edges != n+burst+1 {
		t.Fatalf("edges = %d, want %d", st.Edges, n+burst+1)
	}
	t.Logf("coalescing: %d updates in %d batches (max batch %d)", st.UpdatesApplied, st.Batches, st.MaxBatch)
}

// TestServerConcurrentReadersAndWriters hammers queries while a writer
// stream commits, under -race: correctness is "no data race, no 5xx, and
// a consistent final state".
func TestServerConcurrentReadersAndWriters(t *testing.T) {
	const n = 24
	_, _, ts := newTestServer(t, n, Config{})

	var readers, writers sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			urls := []string{
				fmt.Sprintf("%s/similarity?a=%d&b=%d", ts.URL, r, (r+3)%n),
				ts.URL + "/topk?k=5",
				fmt.Sprintf("%s/topkfor?node=%d&k=4", ts.URL, r),
				ts.URL + "/stats",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(urls[i%len(urls)])
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					errs <- fmt.Errorf("reader got %d", resp.StatusCode)
					return
				}
			}
		}(r)
	}
	// Writer stream: insert chords then delete them again, all sync.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 30; i++ {
				from := (w*n/2 + i) % n
				to := (from + 5) % n
				ins, _ := json.Marshal(UpdateJSON{From: from, To: to})
				del, _ := json.Marshal(UpdateJSON{From: from, To: to, Op: "delete"})
				url := ts.URL + "/updates?wait=1"
				for _, body := range [][]byte{ins, del} {
					resp, err := http.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					// 409 is legal (the two writers may collide on an
					// edge); 5xx is not.
					if resp.StatusCode >= 500 {
						errs <- fmt.Errorf("writer got %d", resp.StatusCode)
						return
					}
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	// Every insert is paired with its delete in program order per writer,
	// so the graph must end exactly where it started.
	if st.Edges != n {
		t.Fatalf("edges = %d after balanced stream, want %d", st.Edges, n)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after quiesce", st.QueueDepth)
	}
}

// TestServerNodesEndpoint grows the graph and then writes against the
// new ids.
func TestServerNodesEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, 4, Config{})
	var nr NodesResponse
	if code := postJSON(t, ts.URL+"/nodes", NodesRequest{Count: 2}, &nr); code != http.StatusOK {
		t.Fatalf("nodes status %d", code)
	}
	if nr.First != 4 || nr.Nodes != 6 {
		t.Fatalf("nodes response %+v", nr)
	}
	if code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 5, To: 0}, nil); code != http.StatusOK {
		t.Fatalf("write to new node status %d", code)
	}
	if code := postJSON(t, ts.URL+"/nodes", NodesRequest{Count: 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("count=0 status %d, want 400", code)
	}
}

// TestServerResourceBounds: a single request must not be able to demand
// unbounded memory, neither via a huge top-k nor via a huge node count.
func TestServerResourceBounds(t *testing.T) {
	_, _, ts := newTestServer(t, 6, Config{MaxNodes: 64})
	var topk TopKResponse
	if code := getJSON(t, ts.URL+"/topk?k=2000000000", &topk); code != http.StatusOK {
		t.Fatalf("huge-k topk status %d, want 200 (clamped)", code)
	}
	if len(topk.Pairs) > 15 { // 6·5/2 possible pairs
		t.Fatalf("clamped topk returned %d pairs", len(topk.Pairs))
	}
	if code := getJSON(t, ts.URL+"/topkfor?node=0&k=2000000000", nil); code != http.StatusOK {
		t.Fatalf("huge-k topkfor status %d, want 200 (clamped)", code)
	}
	if code := postJSON(t, ts.URL+"/nodes", NodesRequest{Count: 1 << 30}, nil); code != http.StatusBadRequest {
		t.Fatalf("huge node count status %d, want 400", code)
	}
	// Growth up to the limit still works.
	if code := postJSON(t, ts.URL+"/nodes", NodesRequest{Count: 58}, nil); code != http.StatusOK {
		t.Fatalf("in-bounds growth status %d, want 200", code)
	}
	if code := postJSON(t, ts.URL+"/nodes", NodesRequest{Count: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("growth past limit status %d, want 400", code)
	}
}

// TestServerRejectsBadWrites covers the write-path error surface.
func TestServerRejectsBadWrites(t *testing.T) {
	_, _, ts := newTestServer(t, 4, Config{})
	// Insert of an existing ring edge → 409 in wait mode.
	if code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 0, To: 1}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate insert status %d, want 409", code)
	}
	// Delete of an absent edge → 409.
	if code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 0, To: 3, Op: "delete"}, nil); code != http.StatusConflict {
		t.Fatalf("absent delete status %d, want 409", code)
	}
	// Unknown op / malformed JSON / empty batch → 400.
	if code := postJSON(t, ts.URL+"/updates", UpdateJSON{From: 0, To: 2, Op: "upsert"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad op status %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/updates", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status %d, want 400", resp.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/updates", []UpdateJSON{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", code)
	}
	// Bodies with no explicit from/to must not become "insert 0→0".
	for _, body := range []string{"null", "{}", `{"op":"insert"}`, `[{"from":1},null]`} {
		resp, err := http.Post(ts.URL+"/updates", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q status %d, want 400", body, resp.StatusCode)
		}
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.UpdatesApplied != 0 || st.UpdatesRejected != 2 {
		t.Fatalf("stats after rejected writes: %+v", st)
	}
}

// TestServerShutdownSnapshotRestore is the kill-with-snapshot acceptance
// path: accepted fire-and-forget writes survive a graceful shutdown, and
// a server restored from the final snapshot answers an identical TopK.
func TestServerShutdownSnapshotRestore(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "state.simr")
	srv, eng, ts := newTestServer(t, 10, Config{SnapshotPath: snap})

	// Fire-and-forget writes (202) that shutdown must not drop.
	for i := 0; i < 6; i++ {
		if code := postJSON(t, ts.URL+"/updates", UpdateJSON{From: i, To: (i + 4) % 10}, nil); code != http.StatusAccepted {
			t.Fatalf("write %d status %d", i, code)
		}
	}
	// Graceful shutdown: listener first, then drain + final snapshot.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := simrank.ReadSnapshotFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.M() != eng.M() || restored.N() != eng.N() {
		t.Fatalf("restored graph %d/%d, live %d/%d", restored.N(), restored.M(), eng.N(), eng.M())
	}
	if d := matrix.MaxAbsDiff(restored.Similarities(), eng.Similarities()); d != 0 {
		t.Fatalf("restored similarities differ by %g, want bit-identical", d)
	}
	// A new server over the restored engine answers identical TopK.
	ts2 := httptest.NewServer(New(simrank.WrapEngine(restored), Config{}))
	defer ts2.Close()
	var got TopKResponse
	getJSON(t, ts2.URL+"/topk?k=10", &got)
	for i, p := range eng.TopK(10) {
		if got.Pairs[i] != (PairJSON{A: p.A, B: p.B, Score: p.Score}) {
			t.Fatalf("restored topk[%d] = %+v, want %+v", i, got.Pairs[i], p)
		}
	}
	// The closed server rejects new writes instead of dropping them.
	if _, err := srv.pipe.submit([]simrank.Update{up(0, 9)}, false); err == nil {
		t.Fatal("want error submitting after Close")
	}
}

// TestServerSnapshotEndpoint persists on demand and refuses when no path
// is configured.
func TestServerSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "ondemand.simr")
	_, eng, ts := newTestServer(t, 6, Config{SnapshotPath: snap})

	if code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 0, To: 2}, nil); code != http.StatusOK {
		t.Fatalf("write status %d", code)
	}
	var sr SnapshotResponse
	if code := postJSON(t, ts.URL+"/snapshot", nil, &sr); code != http.StatusOK {
		t.Fatalf("snapshot status %d", code)
	}
	restored, err := simrank.ReadSnapshotFile(sr.Path)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(restored.Similarities(), eng.Similarities()); d != 0 {
		t.Fatalf("on-demand snapshot differs by %g", d)
	}

	_, _, ts2 := newTestServer(t, 4, Config{})
	if code := postJSON(t, ts2.URL+"/snapshot", nil, nil); code != http.StatusConflict {
		t.Fatalf("unconfigured snapshot status %d, want 409", code)
	}
}

// TestServerTopKCacheCounters: with the query cache enabled, repeat
// /topkfor traffic is served without rescanning similarity rows — the
// cache_row_misses counter in /stats holds still while hits advance —
// and a committed write invalidates exactly the dirty rows.
func TestServerTopKCacheCounters(t *testing.T) {
	_, eng, ts := newTestServer(t, 6, Config{},
		simrank.Edge{From: 0, To: 3}, simrank.Edge{From: 0, To: 5})
	eng.SetTopKCacheRows(64)

	get := func(url string) {
		t.Helper()
		if code := getJSON(t, ts.URL+url, nil); code != http.StatusOK {
			t.Fatalf("GET %s status %d", url, code)
		}
	}
	stats := func() StatsResponse {
		t.Helper()
		var st StatsResponse
		if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
			t.Fatalf("stats status %d", code)
		}
		return st
	}

	get("/topkfor?node=1&k=2") // cold: one scan
	get("/topkfor?node=1&k=2") // warm ×3: zero scans
	get("/topkfor?node=1&k=1")
	get("/topkfor?node=1&k=2")
	get("/topk?k=3")
	get("/topk?k=3")
	st := stats()
	if st.CacheRowMisses != 1 || st.CacheRowHits != 3 {
		t.Fatalf("row counters %+v; want 1 miss, 3 hits", st)
	}
	if st.CacheGlobalMisses != 1 || st.CacheGlobalHits != 1 {
		t.Fatalf("global counters %+v; want 1 miss, 1 hit", st)
	}
	if st.CachedRows != 1 {
		t.Fatalf("cached_rows = %d, want 1", st.CachedRows)
	}

	// A synchronous write commits before the response; the dirty rows it
	// reports must show up as invalidations and re-miss on next query.
	code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 0, To: 4}, nil)
	if code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	st = stats()
	if st.CacheInvalidatedRows == 0 {
		t.Fatalf("no invalidations after committed write: %+v", st)
	}
	get("/topkfor?node=1&k=2")
	if after := stats(); after.CacheRowMisses != st.CacheRowMisses+1 {
		t.Fatalf("dirty row not rescanned: %+v then %+v", st, after)
	}
}

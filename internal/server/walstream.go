package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// walHub fans committed WAL records out to GET /wal subscribers. Its
// publish side runs inside the engine's commit path (the SetWALNotify
// hook, under the writer mutex, after the durable append and before the
// view publishes), so it must never block: each subscriber gets a
// buffered channel, and one that falls subBuffer records behind is
// dropped on the spot — its stream ends, and the client reconnects from
// its last applied epoch, re-reading the backlog from the log files
// instead of stalling every writer in the process.
type walHub struct {
	mu   sync.Mutex
	subs map[chan *wal.Record]struct{}
	n    atomic.Int64 // current subscriber count, for /stats
}

// subBuffer is each subscriber's cushion between the commit path and
// its network writer. At ~30 bytes a record this is a few KiB per
// follower; a healthy follower drains far faster than commits arrive.
const subBuffer = 256

func newWALHub() *walHub {
	return &walHub{subs: make(map[chan *wal.Record]struct{})}
}

// publish hands one committed record to every subscriber, copying the
// Updates slice first (the engine shares it with the committing caller,
// and subscribers consume asynchronously). Non-blocking by
// construction: a full subscriber is evicted, not waited on.
func (h *walHub) publish(rec *wal.Record) {
	cp := &wal.Record{Epoch: rec.Epoch, Kind: rec.Kind, Count: rec.Count}
	if len(rec.Updates) > 0 {
		cp.Updates = append(rec.Updates[:0:0], rec.Updates...)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- cp:
		default:
			delete(h.subs, ch)
			close(ch)
			h.n.Add(-1)
		}
	}
}

// subscribe registers a new tail. The returned channel is closed by the
// hub (eviction or unsubscribe), never by the receiver.
func (h *walHub) subscribe() chan *wal.Record {
	ch := make(chan *wal.Record, subBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	h.n.Add(1)
	return ch
}

// unsubscribe removes ch if the hub still owns it; a channel already
// evicted by publish is left alone (it is closed and counted out).
func (h *walHub) unsubscribe(ch chan *wal.Record) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
		h.n.Add(-1)
	}
}

// subscribers reports the number of live streams.
func (h *walHub) subscribers() int64 { return h.n.Load() }

// defaultHeartbeatInterval paces the liveness frames on an idle stream;
// Config.HeartbeatInterval overrides it.
const defaultHeartbeatInterval = time.Second

// GET /wal?from=<epoch> — the replication stream: every WAL record with
// epoch strictly greater than from, framed exactly as on disk
// (wal.EncodeFrame), backlog first and live tail forever after, with
// heartbeat frames carrying the leader's newest committed epoch so a
// follower of an idle leader still measures its lag. The handler
// subscribes to live commits BEFORE replaying the backlog and dedups by
// epoch, so a record landing between the two phases is sent exactly
// once and none is skipped.
//
// Failure answers: 409 when the process runs without a WAL (nothing to
// stream), 410 Gone when from lies below the truncation floor — the
// records the follower needs were dropped after a snapshot covered
// them, and it must re-seed from a leader snapshot instead of retrying.
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	lw := s.cfg.WAL
	if lw == nil {
		writeError(w, http.StatusConflict,
			errors.New("this server runs without a write-ahead log (-wal-dir); there is no stream to follow"))
		return
	}
	from := uint64(0)
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("from=%q is not an unsigned integer epoch", raw))
			return
		}
		from = v
	}
	if floor := lw.Stats().TruncatedThrough; from < floor {
		writeError(w, http.StatusGone,
			fmt.Errorf("records through epoch %d were truncated after a snapshot covered them; a follower at epoch %d must re-seed from a leader snapshot", floor, from))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}

	// Subscribe first: anything committed from here on reaches the
	// channel, anything committed before is on disk for Replay, and the
	// overlap (committed between subscribe and Replay's segment
	// snapshot) is deduped by lastSent below.
	ch := s.walHub.subscribe()
	defer s.walHub.unsubscribe(ch)

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	var buf []byte
	send := func(rec *wal.Record) error {
		buf = wal.EncodeFrame(buf[:0], rec)
		if _, err := w.Write(buf); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}

	// Lead with a heartbeat: the follower learns the leader's committed
	// position (and so its own lag) before the first byte of backlog,
	// even when the leader is idle and the backlog is empty. Heartbeats
	// carry the engine's SERVING epoch, not the log's last record epoch —
	// the two diverge on a leader restored from a snapshot whose covered
	// records were truncated away, and the serving epoch is the position
	// a follower actually measures its lag against.
	if err := send(wal.Heartbeat(s.eng.Epoch())); err != nil {
		return
	}

	lastSent := from
	if err := lw.Replay(from, func(rec *wal.Record) error {
		lastSent = rec.Epoch
		return send(rec)
	}); err != nil {
		// Either the connection broke mid-backlog or the log became
		// unreadable under us (e.g. a concurrent truncation removed a
		// segment). The client reconnects from its applied epoch and gets
		// a fresh verdict — including the 410 if it is now below the floor.
		return
	}

	interval := s.cfg.HeartbeatInterval
	if interval <= 0 {
		interval = defaultHeartbeatInterval
	}
	hb := time.NewTicker(interval)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case rec, live := <-ch:
			if !live {
				// Evicted as a slow subscriber; end the stream so the client
				// reconnects and re-reads the backlog at its own pace.
				return
			}
			if rec.Epoch <= lastSent {
				continue // already sent during the backlog replay
			}
			lastSent = rec.Epoch
			if err := send(rec); err != nil {
				return
			}
		case <-hb.C:
			if err := send(wal.Heartbeat(s.eng.Epoch())); err != nil {
				return
			}
		}
	}
}

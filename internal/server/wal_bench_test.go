package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	simrank "repro"
	"repro/internal/wal"
)

// BenchmarkWALWaitAck measures the full ?wait=1 acknowledgement latency
// — HTTP in, pipeline, commit, WAL append, fsync per policy, HTTP out —
// the end-to-end price of "your write is durable". Reports mean ns/op
// plus sampled p50/p99 (custom metrics, so cmd/benchjson lands them in
// BENCH_wal.json): always pays one fsync per ack, interval amortizes it
// into the group-commit Sync, none skips durability entirely and is the
// no-WAL pipeline baseline plus one buffered write.
func BenchmarkWALWaitAck(b *testing.B) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNone} {
		b.Run("sync="+policy.String(), func(b *testing.B) {
			w, err := wal.Open(b.TempDir(), wal.Options{Sync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			eng, err := simrank.NewConcurrentEngine(16, []simrank.Edge{{From: 0, To: 1}, {From: 1, To: 2}}, simrank.Options{K: 8})
			if err != nil {
				b.Fatal(err)
			}
			eng.SetWAL(w)
			srv := New(eng, Config{WAL: w})
			ts := httptest.NewServer(srv)
			defer func() {
				ts.Close()
				srv.Close()
			}()

			client := ts.Client()
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Alternate insert/delete of one edge: every request is a
				// valid single-update commit, indefinitely.
				op := "insert"
				if i%2 == 1 {
					op = "delete"
				}
				body := fmt.Sprintf(`{"from":3,"to":4,"op":%q}`, op)
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/updates?wait=1", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				lat = append(lat, time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("ack status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			if len(lat) > 0 {
				sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
				p := func(q float64) float64 {
					return float64(lat[int(q*float64(len(lat)-1))].Nanoseconds())
				}
				b.ReportMetric(p(0.50), "p50-ack-ns")
				b.ReportMetric(p(0.99), "p99-ack-ns")
			}
		})
	}
}

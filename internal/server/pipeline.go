// Package server exposes a simrank.ConcurrentEngine over HTTP/JSON:
// query endpoints served lock-free off the engine's published MVCC
// views (readers never wait on writers, or vice versa), and a write
// path that never touches the writer mutex per request — incoming
// updates flow through an asynchronous coalescing pipeline that folds
// everything queued into one ApplyBatch per drain cycle, published as
// one new view. Burst traffic therefore pays one writer-mutex
// acquisition and one view publish per cycle, and a large enough burst
// crosses ApplyBatch's recompute threshold exactly as Exp-1 of the
// paper prescribes (batch recomputation beats folding unit updates once
// the batch is a sizable fraction of |E|).
package server

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	simrank "repro"
)

// errPipelineClosed rejects writes submitted after shutdown began.
var errPipelineClosed = errors.New("server: write pipeline closed")

// writeReq is one client write: a group of updates that must commit
// together, plus an optional completion-notify handle for synchronous
// requests (done receives the commit error exactly once).
type writeReq struct {
	ups  []simrank.Update
	done chan error // nil for fire-and-forget
}

// pipelineStats are the atomically-maintained counters surfaced by
// GET /stats; batches counts ApplyBatch commits, so updatesApplied ≫
// batches is the observable signature of coalescing at work.
type pipelineStats struct {
	enqueued      atomic.Int64
	applied       atomic.Int64
	rejected      atomic.Int64
	batches       atomic.Int64
	failedBatches atomic.Int64
	maxBatch      atomic.Int64
	depth         atomic.Int64
	// walFailures counts commits whose durability step failed — the
	// mutation is applied and visible, but its WAL record (or the group
	// -commit fsync a ?wait=1 waiter demanded) is not on disk. Nonzero
	// here means acknowledged-in-memory state could be lost in a crash.
	walFailures atomic.Int64
}

// latWindowSize bounds the sliding window of recent commit latencies the
// /stats update percentiles are computed over: big enough that p99 rests
// on several observations, small enough that the percentiles track the
// current load, not the process's whole history.
const latWindowSize = 512

// latencyWindow is a fixed-size ring of the most recent apply-call
// latencies (µs). Writes come only from the drain goroutine, reads from
// any /stats request, so a small mutex suffices — the critical sections
// are a ring store and an O(window) copy.
type latencyWindow struct {
	mu      sync.Mutex
	buf     [latWindowSize]int64
	n       int // filled entries
	next    int
	scratch []int64 // reused percentile sort buffer, allocated on first use
}

// record stores one commit latency, evicting the oldest once full. A
// sub-microsecond commit rounds up to 1µs so a zero percentile always
// means "no commits yet", never "very fast commits".
func (lw *latencyWindow) record(us int64) {
	if us < 1 {
		us = 1
	}
	lw.mu.Lock()
	lw.buf[lw.next] = us
	lw.next = (lw.next + 1) % latWindowSize
	if lw.n < latWindowSize {
		lw.n++
	}
	lw.mu.Unlock()
}

// percentiles returns the p50 and p99 of the window (0, 0 while empty),
// by nearest-rank over a sorted copy.
func (lw *latencyWindow) percentiles() (p50, p99 int64) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.n == 0 {
		return 0, 0
	}
	if cap(lw.scratch) < lw.n {
		lw.scratch = make([]int64, lw.n)
	}
	s := lw.scratch[:lw.n]
	copy(s, lw.buf[:lw.n])
	slices.Sort(s)
	return s[(lw.n-1)*50/100], s[(lw.n-1)*99/100]
}

// pipeline is the coalescing write path. submit enqueues a request onto
// a buffered channel and returns immediately; a single drain goroutine
// takes the first queued request, greedily gathers everything else that
// has arrived (up to maxBatch updates), and commits the lot through one
// apply call. Because the drain goroutine is the only writer, one MVCC
// view is published per cycle no matter how many requests coalesced
// into it.
type pipeline struct {
	apply func([]simrank.Update) error
	// sync, when non-nil, is the group-commit hook: called once per
	// committed cycle that carries at least one synchronous waiter,
	// before any waiter is notified, so a ?wait=1 acknowledgement
	// implies the cycle's WAL record is on stable storage. The server
	// wires it to WAL.Sync under the interval fsync policy only —
	// always-fsync makes it redundant, none makes it unwanted.
	sync     func() error
	reqs     chan writeReq
	maxBatch int
	// window > 0 keeps a drain cycle open that long after its first
	// request arrives, deepening coalescing at the cost of added write
	// latency; 0 commits as soon as the engine is free.
	window time.Duration

	mu       sync.Mutex // guards closed against concurrent submit/close
	closed   bool
	inflight sync.WaitGroup // in-flight submits that passed the closed check
	done     chan struct{}  // drain goroutine exited

	stats pipelineStats
	// lat holds the recent commit latencies behind the /stats
	// update_p50_us/update_p99_us gauges: how long one apply call (the
	// engine-side work of a coalesced cycle) took, measured by the drain
	// goroutine around every commit attempt.
	lat latencyWindow
}

func newPipeline(apply func([]simrank.Update) error, sync func() error, queueSize, maxBatch int, window time.Duration) *pipeline {
	if queueSize <= 0 {
		queueSize = 1024
	}
	if maxBatch <= 0 {
		maxBatch = 1 << 16
	}
	p := &pipeline{
		apply:    apply,
		sync:     sync,
		reqs:     make(chan writeReq, queueSize),
		maxBatch: maxBatch,
		window:   window,
		done:     make(chan struct{}),
	}
	go p.drain()
	return p
}

// submit enqueues one write request. When wait is true the returned
// channel receives the commit result after the request's batch has been
// applied and its view published, so a subsequent read is guaranteed to
// observe the update.
func (p *pipeline) submit(ups []simrank.Update, wait bool) (<-chan error, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errPipelineClosed
	}
	p.inflight.Add(1)
	p.mu.Unlock()
	defer p.inflight.Done()

	req := writeReq{ups: ups}
	if wait {
		req.done = make(chan error, 1)
	}
	p.stats.enqueued.Add(int64(len(ups)))
	p.stats.depth.Add(int64(len(ups)))
	p.reqs <- req
	return req.done, nil
}

// close stops accepting writes, waits for the drain goroutine to commit
// everything already queued, and returns. Safe to call once.
func (p *pipeline) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.inflight.Wait() // every accepted submit has finished enqueueing
	close(p.reqs)     // drain goroutine exits after the buffer empties
	<-p.done
}

func (p *pipeline) drain() {
	defer close(p.done)
	for {
		req, ok := <-p.reqs
		if !ok {
			return
		}
		cycle := []writeReq{req}
		total := len(req.ups)
		if p.window > 0 {
			// Hold the cycle open for the batching window so a burst in
			// flight coalesces even when the engine could keep up.
			timer := time.NewTimer(p.window)
		windowed:
			for total < p.maxBatch {
				select {
				case r, ok := <-p.reqs:
					if !ok {
						break windowed
					}
					cycle = append(cycle, r)
					total += len(r.ups)
				case <-timer.C:
					break windowed
				}
			}
			timer.Stop()
		}
	coalesce:
		for total < p.maxBatch {
			select {
			case r, ok := <-p.reqs:
				if !ok {
					break coalesce
				}
				cycle = append(cycle, r)
				total += len(r.ups)
			default:
				break coalesce
			}
		}
		p.commit(cycle, total)
	}
}

// commit folds one drain cycle through a single apply call. ApplyBatch
// is atomic (a failed batch mutates nothing), so when the coalesced
// batch is rejected the cycle falls back to applying each request on its
// own — one client's inapplicable update must not poison the writes that
// merely shared a drain cycle with it — and every waiter learns its own
// request's fate.
//
// A durability failure (simrank.ErrDurability) is the one error that
// must NOT take the fallback path: the batch is committed and visible,
// only its log record is missing, and re-applying an already-applied
// batch would reject every update in it ("edge already present") —
// misreporting a durability incident as a client error. Instead the
// cycle is acknowledged with the durability error itself.
func (p *pipeline) commit(cycle []writeReq, total int) {
	defer p.stats.depth.Add(int64(-total))
	var ups []simrank.Update
	if len(cycle) == 1 {
		ups = cycle[0].ups
	} else {
		ups = make([]simrank.Update, 0, total)
		for _, r := range cycle {
			ups = append(ups, r.ups...)
		}
	}
	err := p.timedApply(ups)
	if err == nil || errors.Is(err, simrank.ErrDurability) {
		p.acknowledge(cycle, len(ups), err)
		return
	}
	if len(cycle) == 1 {
		p.stats.failedBatches.Add(1)
		p.stats.rejected.Add(int64(len(ups)))
		notify(cycle[0].done, err)
		return
	}
	// Only terminal (post-fallback) failures count in the stats, so one
	// bad update rejected once reads as one failure, not two.
	for _, r := range cycle {
		e := p.timedApply(r.ups)
		if e == nil || errors.Is(e, simrank.ErrDurability) {
			p.acknowledge([]writeReq{r}, len(r.ups), e)
		} else {
			p.stats.failedBatches.Add(1)
			p.stats.rejected.Add(int64(len(r.ups)))
			notify(r.done, e)
		}
	}
}

// acknowledge finishes one COMMITTED cycle: counts it applied, runs the
// group-commit sync if a synchronous waiter demands durability, and
// notifies every waiter — with nil on the fully-durable path, or with a
// durability error when the record or its fsync failed (the updates are
// visible either way; the error is about the disk, not the mutation).
func (p *pipeline) acknowledge(cycle []writeReq, n int, err error) {
	p.noteBatch(n)
	if err == nil && p.sync != nil {
		for _, r := range cycle {
			if r.done != nil {
				if serr := p.sync(); serr != nil {
					err = fmt.Errorf("%w: %v", simrank.ErrDurability, serr)
				}
				break
			}
		}
	}
	if err != nil {
		p.stats.walFailures.Add(1)
	}
	for _, r := range cycle {
		notify(r.done, err)
	}
}

// timedApply runs one apply call with its wall time recorded into the
// latency window — rejected batches included, since a client waiting on
// ?wait=1 experiences that latency too.
func (p *pipeline) timedApply(ups []simrank.Update) error {
	start := time.Now()
	err := p.apply(ups)
	p.lat.record(time.Since(start).Microseconds())
	return err
}

func (p *pipeline) noteBatch(n int) {
	p.stats.batches.Add(1)
	p.stats.applied.Add(int64(n))
	for {
		cur := p.stats.maxBatch.Load()
		if int64(n) <= cur || p.stats.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

func notify(done chan error, err error) {
	if done != nil {
		done <- err // buffered, never blocks
	}
}

package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	simrank "repro"
	"repro/internal/wal"
)

// newWALServer builds a server whose engine logs to a fresh WAL in dir,
// the way simrankd wires the two together: SetWAL before Attach, the
// handle shared with the server config for stats/group-commit/truncate.
func newWALServer(t *testing.T, n int, dir string, wopts wal.Options, cfg Config) (*Server, *simrank.ConcurrentEngine, *wal.WAL, *httptest.Server) {
	t.Helper()
	w, err := wal.Open(dir, wopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	edges := make([]simrank.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = simrank.Edge{From: i, To: (i + 1) % n}
	}
	eng, err := simrank.NewConcurrentEngine(n, edges, simrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetWAL(w)
	cfg.WAL = w
	srv := New(eng, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, eng, w, ts
}

// TestServerWALStatsAndVisibility drives acknowledged writes through
// the full HTTP path and asserts the /stats wal_* gauges move, plus the
// ?wait=1 contract: once the 200 lands, the update is visible to the
// next read AND its record is in the log. Run under -race this also
// hammers the pipeline/WAL interplay for data races.
func TestServerWALStatsAndVisibility(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			_, eng, w, ts := newWALServer(t, 6, dir, wal.Options{Sync: policy}, Config{})

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						from, to := g, (g+i+2)%6
						if from == to {
							continue
						}
						body := fmt.Sprintf(`{"from":%d,"to":%d}`, from, to)
						resp, err := http.Post(ts.URL+"/updates?wait=1", "application/json", strings.NewReader(body))
						if err != nil {
							t.Error(err)
							return
						}
						resp.Body.Close()
						switch resp.StatusCode {
						case http.StatusOK:
							// Acknowledged ⇒ visible to the very next read.
							var sim struct {
								Score float64 `json:"score"`
							}
							if code := getJSON(t, fmt.Sprintf("%s/similarity?a=%d&b=%d", ts.URL, from, to), &sim); code != http.StatusOK {
								t.Errorf("similarity after acked write: %d", code)
							}
							if !eng.HasEdge(from, to) {
								t.Errorf("acked insert %d->%d not visible", from, to)
							}
						case http.StatusConflict:
							// Two goroutines raced the same edge; fine.
						default:
							t.Errorf("unexpected status %d", resp.StatusCode)
						}
					}
				}(g)
			}
			wg.Wait()

			// Acknowledged ⇒ durable: reopening the log must replay to the
			// engine's exact state. (Close flushes; under SyncInterval the
			// group commit already synced each acked cycle.)
			var st StatsResponse
			if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
				t.Fatalf("/stats: %d", code)
			}
			if !st.WALEnabled {
				t.Fatal("wal_enabled false on a WAL-backed server")
			}
			if st.WALEpoch == 0 || st.WALSegments == 0 || st.WALBytes == 0 {
				t.Fatalf("wal gauges did not move: %+v", st)
			}
			if policy != wal.SyncNone && st.WALFsyncs == 0 {
				t.Fatal("no fsyncs recorded under a syncing policy")
			}
			if st.WALFailures != 0 {
				t.Fatalf("wal_failures = %d on a healthy disk", st.WALFailures)
			}
			if st.WALEpoch != eng.Epoch() {
				t.Fatalf("wal epoch %d behind view epoch %d", st.WALEpoch, eng.Epoch())
			}
			_ = w
		})
	}
}

// TestServerSnapshotTruncatesWAL: POST /snapshot captures the epoch
// floor and removes every sealed segment the snapshot covers; the
// replayable tail after a "crash" at that point is empty.
func TestServerSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	snapDir := t.TempDir()
	// Tiny segments so the stream seals several of them.
	_, eng, w, ts := newWALServer(t, 8, dir, wal.Options{SegmentBytes: 64},
		Config{SnapshotPath: filepath.Join(snapDir, "state.simr")})

	posted := 0
	for a := 0; a < 8 && posted < 20; a++ {
		for b := 0; b < 8 && posted < 20; b++ {
			if a == b || b == (a+1)%8 { // self-loop or already in the ring
				continue
			}
			body := fmt.Sprintf(`{"from":%d,"to":%d}`, a, b)
			resp, err := http.Post(ts.URL+"/updates?wait=1", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("insert %d->%d: %d", a, b, resp.StatusCode)
			}
			posted++
		}
	}
	before := w.Stats()
	if before.Segments < 3 {
		t.Fatalf("stream sealed only %d segments; the truncation test needs several", before.Segments)
	}

	resp, err := http.Post(ts.URL+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot: %d", resp.StatusCode)
	}
	after := w.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("snapshot left %d segments (was %d); sealed segments below the epoch floor must go", after.Segments, before.Segments)
	}

	// The snapshot covers the whole log: restore + replay is a no-op and
	// lands exactly on the serving state.
	restored, err := simrank.ReadSnapshotFile(filepath.Join(snapDir, "state.simr"))
	if err != nil {
		t.Fatal(err)
	}
	c2 := simrank.WrapEngine(restored)
	applied, err := c2.ReplayWAL(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 {
		t.Fatalf("replay applied %d records past a covering snapshot", applied)
	}
	if c2.Epoch() != eng.Epoch() {
		t.Fatalf("restored epoch %d, serving epoch %d", c2.Epoch(), eng.Epoch())
	}
}

// TestServerWALAppendFailureIsNotAClientError: when the log dies
// mid-serving, an acked ?wait=1 write gets a 500 (durability failed),
// NOT a 409 — the pipeline must not fall back to re-applying a batch
// that already committed, which would misread the incident as "edge
// already present". The update itself stays visible, and wal_failures
// counts the incident.
func TestServerWALAppendFailureIsNotAClientError(t *testing.T) {
	dir := t.TempDir()
	srv, eng, w, ts := newWALServer(t, 6, dir, wal.Options{}, Config{})

	// Kill the log out from under the server: every Append now fails.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Two distinct valid inserts in one request: with the old fallback
	// they would be re-applied one by one and both answer 409.
	body := `[{"from":0,"to":3},{"from":1,"to":4}]`
	resp, err := http.Post(ts.URL+"/updates?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d (%s), want 500: a durability failure is the server's fault", resp.StatusCode, buf.String())
	}
	if !eng.HasEdge(0, 3) || !eng.HasEdge(1, 4) {
		t.Fatal("committed updates vanished after the durability failure")
	}
	st := srv.Stats()
	if st.WALFailures == 0 {
		t.Fatal("wal_failures did not count the lost record")
	}
	if st.UpdatesRejected != 0 {
		t.Fatalf("durability failure miscounted as %d rejected updates", st.UpdatesRejected)
	}
}

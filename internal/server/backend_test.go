package server

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	simrank "repro"
)

// newBackendServer builds a server over an engine with the given
// backend on a small co-citation graph (non-trivial similarities).
func newBackendServer(t *testing.T, backend simrank.Backend) (*simrank.ConcurrentEngine, *httptest.Server) {
	t.Helper()
	const n = 12
	var edges []simrank.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, simrank.Edge{From: i, To: (i + 1) % n})
		edges = append(edges, simrank.Edge{From: i, To: (i + 5) % n})
	}
	eng, err := simrank.NewConcurrentEngine(n, edges, simrank.Options{Backend: backend, ApproxWalks: 32})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return eng, ts
}

// waitForEpoch polls /readyz until the published epoch reaches want —
// how tests observe the async update pipeline draining.
func waitForEpoch(t *testing.T, baseURL string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var rr ReadyResponse
		getJSON(t, baseURL+"/readyz", &rr)
		if rr.Epoch >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch stuck at %d, want %d", rr.Epoch, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Every backend must surface its identity and memory footprint through
// /stats, and the packed store must come in at roughly half the dense
// bytes for the same graph.
func TestServerStatsReportsBackend(t *testing.T) {
	bytesOf := map[simrank.Backend]int64{}
	for _, backend := range []simrank.Backend{simrank.BackendDense, simrank.BackendPacked, simrank.BackendApprox} {
		t.Run(string(backend), func(t *testing.T) {
			_, ts := newBackendServer(t, backend)
			var st StatsResponse
			if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
				t.Fatalf("/stats = %d", code)
			}
			if st.Backend != string(backend) {
				t.Fatalf("/stats backend %q, want %q", st.Backend, backend)
			}
			if st.StoreBytes <= 0 {
				t.Fatalf("/stats store_bytes = %d, want positive", st.StoreBytes)
			}
			bytesOf[backend] = st.StoreBytes
		})
	}
	// At this tiny n the packed store's O(n) offset/scratch overhead is
	// visible, so the check here is only ordering; the ≤ 55% acceptance
	// bar at n = 2000 lives in the root suite's store-bytes test.
	if d, p := bytesOf[simrank.BackendDense], bytesOf[simrank.BackendPacked]; d > 0 && p >= d {
		t.Fatalf("packed store_bytes %d not below dense %d", p, d)
	}
}

// The exact backends serve identical query surfaces; packed answers must
// track dense within 1e-12 through the HTTP layer too.
func TestServerPackedServesQueries(t *testing.T) {
	_, dts := newBackendServer(t, simrank.BackendDense)
	_, pts := newBackendServer(t, simrank.BackendPacked)
	for a := 0; a < 12; a++ {
		var ds, ps SimilarityResponse
		url := fmt.Sprintf("/similarity?a=%d&b=%d", a, (a+3)%12)
		if code := getJSON(t, dts.URL+url, &ds); code != 200 {
			t.Fatalf("dense %s = %d", url, code)
		}
		if code := getJSON(t, pts.URL+url, &ps); code != 200 {
			t.Fatalf("packed %s = %d", url, code)
		}
		if d := ds.Score - ps.Score; d > 1e-12 || d < -1e-12 {
			t.Fatalf("%s: dense %v packed %v", url, ds.Score, ps.Score)
		}
	}
	var dk, pk TopKResponse
	if code := getJSON(t, dts.URL+"/topk?k=6", &dk); code != 200 {
		t.Fatalf("dense /topk = %d", code)
	}
	if code := getJSON(t, pts.URL+"/topk?k=6", &pk); code != 200 {
		t.Fatalf("packed /topk = %d", code)
	}
	if len(dk.Pairs) != len(pk.Pairs) {
		t.Fatalf("topk lengths %d vs %d", len(dk.Pairs), len(pk.Pairs))
	}
	for i := range dk.Pairs {
		if d := dk.Pairs[i].Score - pk.Pairs[i].Score; d > 1e-12 || d < -1e-12 {
			t.Fatalf("topk[%d]: dense %v packed %v", i, dk.Pairs[i].Score, pk.Pairs[i].Score)
		}
	}
}

// The approx tier serves the full read surface — /similarity with a
// populated stderr, /topkfor, /stats, /healthz — AND the full write
// surface: POST /updates repairs the walk index incrementally, POST
// /nodes grows it, and /stats reports the repair telemetry. Only the
// global /topk, which would demand the n²/2 scan the tier exists to
// avoid, still answers 501.
func TestServerApproxWritable(t *testing.T) {
	eng, ts := newBackendServer(t, simrank.BackendApprox)

	var sim SimilarityResponse
	if code := getJSON(t, ts.URL+"/similarity?a=0&b=3", &sim); code != 200 {
		t.Fatalf("/similarity = %d", code)
	}
	if sim.Stderr < 0 {
		t.Fatalf("negative stderr %v", sim.Stderr)
	}
	var tk TopKResponse
	if code := getJSON(t, ts.URL+"/topkfor?node=2&k=5", &tk); code != 200 {
		t.Fatalf("/topkfor = %d", code)
	}
	if len(tk.Pairs) == 0 {
		t.Fatal("/topkfor returned no pairs on a co-citation ring")
	}
	if code := getJSON(t, ts.URL+"/topk?k=5", nil); code != 501 {
		t.Fatalf("/topk on approx = %d, want 501", code)
	}

	// Synchronous write: applied before the response, epoch committed.
	var ur UpdateResponse
	if code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 0, To: 2}, &ur); code != 200 {
		t.Fatalf("POST /updates?wait=1 on approx = %d, want 200", code)
	}
	if ur.Applied != 1 {
		t.Fatalf("applied %d updates, want 1", ur.Applied)
	}
	// Asynchronous write: accepted and drained by the apply loop.
	if code := postJSON(t, ts.URL+"/updates", UpdateJSON{From: 0, To: 2, Op: "delete"}, nil); code != 202 {
		t.Fatalf("POST /updates on approx = %d, want 202", code)
	}
	var nr NodesResponse
	if code := postJSON(t, ts.URL+"/nodes", NodesRequest{Count: 2}, &nr); code != 200 {
		t.Fatalf("POST /nodes on approx = %d, want 200", code)
	}
	if nr.First != 12 || nr.Nodes != 14 {
		t.Fatalf("POST /nodes = %+v, want first 12, nodes 14", nr)
	}
	if n, _ := eng.Size(); n != 14 {
		t.Fatalf("engine did not grow: %d nodes", n)
	}
	// A duplicate insert is still a clean 409 — bad update, not read-only.
	if code := postJSON(t, ts.URL+"/updates?wait=1", UpdateJSON{From: 0, To: 1}, nil); code != 409 {
		t.Fatalf("duplicate insert = %d, want 409", code)
	}

	// Repair telemetry flows through /stats once the async write drains.
	waitForEpoch(t, ts.URL, 3)
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.UpdatesApplied != 2 {
		t.Fatalf("stats report %d updates applied, want 2", st.UpdatesApplied)
	}
	if st.WalksRepaired == 0 {
		t.Fatal("stats report zero walks repaired after two repairs")
	}
	if st.WalkResampleFraction <= 0 || st.WalkResampleFraction > 1 {
		t.Fatalf("walk_resample_fraction %v outside (0,1]", st.WalkResampleFraction)
	}
}

// The acceptance workload: an n = 100,000 graph — whose dense matrix
// would be 8·10¹⁰ bytes, far past any sane budget — boots on the approx
// backend in O(n·(W·L+d)) memory and serves /topkfor end to end over
// HTTP. The stored-walk index (walk rows plus repair postings) costs
// real bytes the old transient estimator didn't, so the bar here is
// "hundreds of times below dense", not thousands.
func TestServerApprox100kTopKFor(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node boot in -short mode")
	}
	const n = 100_000
	rng := rand.New(rand.NewSource(9))
	edges := make([]simrank.Edge, 0, 3*n)
	// A ring guarantees every node an in-neighbor; random chords give the
	// walks something to coalesce on.
	for i := 0; i < n; i++ {
		edges = append(edges, simrank.Edge{From: i, To: (i + 1) % n})
	}
	for len(edges) < 3*n {
		edges = append(edges, simrank.Edge{From: rng.Intn(n), To: rng.Intn(n)})
	}
	eng, err := simrank.NewConcurrentEngine(n, edges, simrank.Options{Backend: simrank.BackendApprox, ApproxWalks: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	denseBytes := int64(n) * int64(n) * 8
	if st.StoreBytes >= denseBytes/500 {
		t.Fatalf("approx store %d bytes is not far below the %d-byte dense matrix", st.StoreBytes, denseBytes)
	}
	var tk TopKResponse
	if code := getJSON(t, ts.URL+"/topkfor?node=42&k=10", &tk); code != 200 {
		t.Fatalf("/topkfor = %d", code)
	}
	if len(tk.Pairs) == 0 || len(tk.Pairs) > 10 {
		t.Fatalf("/topkfor returned %d pairs", len(tk.Pairs))
	}
	for _, p := range tk.Pairs {
		if p.A != 42 || p.Score <= 0 {
			t.Fatalf("implausible pair %+v", p)
		}
	}
}

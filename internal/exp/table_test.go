package exp

import (
	"strings"
	"testing"
	"time"
)

func TestFormatHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.5" {
		t.Fatalf("ms = %q", got)
	}
	if got := pct(12.34); got != "12.3%" {
		t.Fatalf("pct = %q", got)
	}
	if got := f3(0.5); got != "0.500" {
		t.Fatalf("f3 = %q", got)
	}
	if got := mb(1 << 20); got != "8.00" { // 1M floats = 8 MiB
		t.Fatalf("mb = %q", got)
	}
	if got := pad("ab", 4); got != "ab  " {
		t.Fatalf("pad = %q", got)
	}
	if got := pad("abcd", 2); got != "abcd" {
		t.Fatalf("pad overflow = %q", got)
	}
}

func TestTimeIt(t *testing.T) {
	d := timeIt(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("timeIt = %v", d)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := &Table{ID: "T", Caption: "cap", Header: []string{"col", "x"}}
	tb.AddRow("longer-cell", "1")
	tb.AddRow("s", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + separator + 2 rows + caption line
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// All body lines must share the same width (alignment).
	if len(lines[1]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned: %q", out)
	}
}

func TestDeltaHeaders(t *testing.T) {
	hs := deltaHeaders([]int{3, 7})
	if len(hs) != 2 || hs[0] != "|dE|=3" || hs[1] != "|dE|=7" {
		t.Fatalf("deltaHeaders = %v", hs)
	}
}

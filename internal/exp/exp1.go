package exp

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/incsvd"
	"repro/internal/lin"
	"repro/internal/matrix"
)

// DampingC is the evaluation's damping factor (Section VI-A, C = 0.6).
const DampingC = 0.6

// SVDTargetRank is the Inc-SVD target rank used in time evaluations
// (r = 5, "the highest speedup" setting of [1] per Section VI-A).
const SVDTargetRank = 5

// runIncremental folds a delta one unit update at a time with algo,
// returning the final similarities.
type incAlgo func(g *graph.DiGraph, s *matrix.Dense, up graph.Update, c float64, k int) (core.Stats, error)

func foldDelta(algo incAlgo, base *graph.DiGraph, s *matrix.Dense, delta []graph.Update, c float64, k int) (*matrix.Dense, []core.Stats, error) {
	g := base.Clone()
	cur := s.Clone() // one copy for the whole fold; updates run in place
	stats := make([]core.Stats, 0, len(delta))
	for _, up := range delta {
		st, err := algo(g, cur, up, c, k)
		if err != nil {
			return nil, nil, err
		}
		g.Apply(up)
		stats = append(stats, st)
	}
	return cur, stats, nil
}

// applyAll returns a clone of base with every update applied.
func applyAll(base *graph.DiGraph, delta []graph.Update) *graph.DiGraph {
	g := base.Clone()
	for _, up := range delta {
		g.Apply(up)
	}
	return g
}

// Exp1Real regenerates Fig. 2a for one dataset: elapsed time of Inc-SR,
// Inc-uSR, Inc-SVD and Batch as |E|+|ΔE| grows through the snapshot
// deltas. Inc-SVD is skipped (reported as "crash") on datasets whose SVD
// exceeds the feasibility budget, mirroring the paper's YOUTU memory
// crash.
func Exp1Real(d *gen.Dataset, deltas []int) (*Table, error) {
	c, k := DampingC, d.K
	sOld := batch.MatrixForm(d.Base, c, k)
	// The initial factorization is Inc-SVD's offline precomputation
	// (Section I: "factorizes the graph via the SVD first, then
	// incrementally maintains this factorization"), so it is built once
	// here and cloned per sweep point — only updates are timed.
	var pristine *incsvd.Engine
	if d.SVDFeasible {
		var err error
		pristine, err = incsvd.New(d.Base, c, SVDTargetRank)
		if err != nil {
			return nil, fmt.Errorf("exp: Exp1Real Inc-SVD precompute: %w", err)
		}
	}

	t := &Table{
		ID:      "EXP1a/" + d.Name,
		Caption: fmt.Sprintf("Fig.2a — elapsed time (ms) vs |E|+|dE| on %s (n=%d, |E|=%d, K=%d)", d.Name, d.Base.N(), d.Base.M(), k),
		Header:  []string{"|E|+|dE|", "Inc-SR", "Inc-uSR", "Inc-SVD", "Batch"},
	}
	for _, dl := range deltas {
		delta := d.Delta(dl)
		row := []string{fmt.Sprintf("%d", d.Base.M()+len(delta))}

		tSR := timeIt(func() {
			if _, _, err := foldDelta(core.IncSRInPlace, d.Base, sOld, delta, c, k); err != nil {
				panic(err)
			}
		})
		row = append(row, ms(tSR))

		tUSR := timeIt(func() {
			if _, _, err := foldDelta(core.IncUSRInPlace, d.Base, sOld, delta, c, k); err != nil {
				panic(err)
			}
		})
		row = append(row, ms(tUSR))

		if d.SVDFeasible {
			eng := pristine.Clone()
			var svdErr error
			tSVD := timeIt(func() {
				g := d.Base.Clone()
				for _, up := range delta {
					if err := eng.Update(g, up); err != nil {
						svdErr = err
						return
					}
					g.Apply(up)
					// Like Inc-SR/Inc-uSR, the baseline maintains all n²
					// similarities after every unit update ([1] updates all
					// node-pair scores per link change), with the faithful
					// per-pair tensor reconstruction.
					eng.SimilaritiesPerPair()
				}
			})
			if svdErr != nil {
				return nil, fmt.Errorf("exp: Exp1Real Inc-SVD: %w", svdErr)
			}
			row = append(row, ms(tSVD))
		} else {
			row = append(row, "crash")
		}

		tBatch := timeIt(func() {
			batch.PartialSumsShared(applyAll(d.Base, delta), c, k)
		})
		row = append(row, ms(tBatch))

		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp1Syn regenerates Fig. 2c: elapsed time on a synthetic graph with
// fixed |V| while |E| is swept upward (insertions) or downward
// (deletions) in equal steps. The base graph follows the linkage
// generation model of the paper's reference [20] (preferential
// attachment), like GraphGen.
func Exp1Syn(n, outDeg, step, points int, insert bool, seed int64) (*Table, error) {
	c, k := DampingC, 10
	g := gen.PrefAttach(n, outDeg, seed)
	sOld := batch.MatrixForm(g, c, k)
	pristine, err := incsvd.New(g, c, SVDTargetRank)
	if err != nil {
		return nil, fmt.Errorf("exp: Exp1Syn Inc-SVD precompute: %w", err)
	}

	dir := "insertion"
	if !insert {
		dir = "deletion"
	}
	t := &Table{
		ID:      "EXP1c/" + dir,
		Caption: fmt.Sprintf("Fig.2c — elapsed time (ms), synthetic %s sweep (n=%d, |E|=%d, step=%d)", dir, n, g.M(), step),
		Header:  []string{"|E| after", "Inc-SR", "Inc-uSR", "Inc-SVD", "Batch"},
	}
	for p := 1; p <= points; p++ {
		var delta []graph.Update
		if insert {
			delta = gen.InsertStream(g, p*step, seed+int64(p))
		} else {
			delta = gen.DeleteStream(g, p*step, seed+int64(p))
		}
		after := g.M() + len(delta)
		if !insert {
			after = g.M() - len(delta)
		}
		row := []string{fmt.Sprintf("%d", after)}

		tSR := timeIt(func() {
			if _, _, err := foldDelta(core.IncSRInPlace, g, sOld, delta, c, k); err != nil {
				panic(err)
			}
		})
		tUSR := timeIt(func() {
			if _, _, err := foldDelta(core.IncUSRInPlace, g, sOld, delta, c, k); err != nil {
				panic(err)
			}
		})
		eng := pristine.Clone()
		var svdErr error
		tSVD := timeIt(func() {
			scratch := g.Clone()
			for _, up := range delta {
				if err := eng.Update(scratch, up); err != nil {
					svdErr = err
					return
				}
				scratch.Apply(up)
				eng.SimilaritiesPerPair() // maintain all n² scores per update, like the others
			}
		})
		if svdErr != nil {
			return nil, fmt.Errorf("exp: Exp1Syn Inc-SVD: %w", svdErr)
		}
		tBatch := timeIt(func() {
			batch.PartialSumsShared(applyAll(g, delta), c, k)
		})
		t.AddRow(row[0], ms(tSR), ms(tUSR), ms(tSVD), ms(tBatch))
	}
	return t, nil
}

// Fig2b regenerates Fig. 2b: the percentage r/n of the lossless SVD rank
// of the auxiliary matrix C_aux = Σ + Uᵀ·ΔQ·V as the update size |ΔE|
// grows.
func Fig2b(datasets []*gen.Dataset, deltas []int) (*Table, error) {
	t := &Table{
		ID:      "FIG2b",
		Caption: "Fig.2b — lossless SVD rank of C_aux as % of n, per |dE|",
		Header:  append([]string{"dataset"}, deltaHeaders(deltas)...),
	}
	for _, d := range datasets {
		if !d.SVDFeasible {
			continue // the paper reports Fig.2b on DBLP and CITH only
		}
		eng, err := incsvd.New(d.Base, DampingC, 0)
		if err != nil {
			return nil, fmt.Errorf("exp: Fig2b SVD of %s: %w", d.Name, err)
		}
		qOld := d.Base.BackwardTransition().Dense()
		row := []string{d.Name}
		for _, dl := range deltas {
			delta := d.Delta(dl)
			qNew := applyAll(d.Base, delta).BackwardTransition().Dense()
			dq := qNew
			for i := range dq.Data {
				dq.Data[i] -= qOld.Data[i]
			}
			// C_aux = Σ + Uᵀ·ΔQ·V.
			r := eng.Rank()
			caux := matrix.NewDense(r, r)
			for i := 0; i < r; i++ {
				caux.Set(i, i, eng.Sig[i])
			}
			ut := eng.U.T()
			caux.AddMat(1, matrix.Mul(matrix.Mul(ut, dq), eng.V))
			rank := lin.NumericRank(caux, 1e-10)
			row = append(row, pct(100*float64(rank)/float64(d.Base.N())))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func deltaHeaders(deltas []int) []string {
	hs := make([]string, len(deltas))
	for i, d := range deltas {
		hs[i] = fmt.Sprintf("|dE|=%d", d)
	}
	return hs
}

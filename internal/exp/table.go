// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Fig. 1's table, Fig. 2a–e, Fig. 3,
// Fig. 4) as plain-text tables, at a configurable scale so the same code
// backs unit tests, `go test -bench`, and the cmd/experiments binary.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment artifact: one table or one figure's
// series, with a caption tying it back to the paper.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "FIG1",
	// "EXP1a/DBLP-sim").
	ID string
	// Caption describes what the paper's corresponding artifact shows.
	Caption string
	Header  []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s\n", t.ID, t.Caption)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// timeIt measures the wall-clock time of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// ms formats a duration in milliseconds with 1 decimal.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// pct formats a percentage with 1 decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// f3 formats a float with 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// mb converts a float64 count to mebibytes (8 bytes each).
func mb(floats int) string {
	return fmt.Sprintf("%.2f", float64(floats)*8/(1<<20))
}

package exp

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/incsvd"
)

// Fig1 regenerates the table of Fig. 1: SimRank scores of selected
// node-pairs of the 15-node citation graph, in the old G and in G ∪ {(i,j)},
// comparing the true (batch) scores with Li et al.'s incremental SVD.
// Pairs whose score is unchanged correspond to the paper's gray rows.
func Fig1() (*Table, error) {
	g, ins := graph.Fig1Graph()
	c := 0.8 // the damping factor of Example 1
	const k = 40

	sOld := batch.MatrixForm(g, c, k)

	// True new scores via our exact incremental algorithm (verified
	// against batch recomputation in the test suite).
	up := graph.Update{Edge: ins, Insert: true}
	sTrue, _, err := core.IncSR(g, sOld, up, c, k)
	if err != nil {
		return nil, fmt.Errorf("exp: Fig1 incremental update: %w", err)
	}

	// Li et al.'s scores via the lossless incremental SVD.
	eng, err := incsvd.New(g, c, 0)
	if err != nil {
		return nil, fmt.Errorf("exp: Fig1 SVD engine: %w", err)
	}
	if err := eng.Update(g, up); err != nil {
		return nil, fmt.Errorf("exp: Fig1 SVD update: %w", err)
	}
	sLi := eng.Similarities()

	pairs := [][2]int{
		{graph.FigA, graph.FigB},
		{graph.FigA, graph.FigD},
		{graph.FigI, graph.FigF},
		{graph.FigK, graph.FigG},
		{graph.FigK, graph.FigH},
		{graph.FigB, graph.FigJ},
		{graph.FigM, graph.FigL},
		{graph.FigD, graph.FigJ},
	}
	t := &Table{
		ID: "FIG1",
		Caption: "node-pair scores on the Fig.1 graph before/after inserting (i,j); " +
			"'unchanged' marks the paper's gray rows",
		Header: []string{"pair", "sim (G)", "simtrue (G+dG)", "simLi et al.", "unchanged?"},
	}
	for _, p := range pairs {
		a, b := p[0], p[1]
		unchanged := ""
		if diff := sTrue.At(a, b) - sOld.At(a, b); diff < 1e-9 && diff > -1e-9 {
			unchanged = "yes"
		}
		t.AddRow(
			fmt.Sprintf("(%s,%s)", graph.Fig1NodeName(a), graph.Fig1NodeName(b)),
			f3(sOld.At(a, b)),
			f3(sTrue.At(a, b)),
			f3(sLi.At(a, b)),
			unchanged,
		)
	}
	return t, nil
}

package exp

import (
	"fmt"
	"io"

	"repro/internal/gen"
)

// Scale selects the size of the experiment datasets.
type Scale int

const (
	// ScaleSmall uses the reduced datasets (fast; used by tests and the
	// default benchmarks).
	ScaleSmall Scale = iota
	// ScaleFull uses the full-size dataset simulators (minutes of
	// runtime; used by cmd/experiments -full).
	ScaleFull
)

// Config parameterizes a full experiment run.
type Config struct {
	Scale Scale
	// Deltas are the |ΔE| sweep sizes for EXP1a/FIG2b/EXP2e; nil selects
	// a default per scale.
	Deltas []int
	// PruningDelta is the |ΔE| for EXP2d/EXP3/EXP4; 0 selects a default.
	PruningDelta int
}

func (c Config) withDefaults() Config {
	if c.Deltas == nil {
		if c.Scale == ScaleFull {
			c.Deltas = []int{40, 80, 120, 160, 200}
		} else {
			c.Deltas = []int{5, 10, 15}
		}
	}
	if c.PruningDelta == 0 {
		if c.Scale == ScaleFull {
			c.PruningDelta = 100
		} else {
			c.PruningDelta = 10
		}
	}
	return c
}

func (c Config) datasets() []*gen.Dataset {
	if c.Scale == ScaleFull {
		return gen.Datasets()
	}
	return gen.SmallDatasets()
}

// Run executes the named experiment ("fig1", "exp1a", "fig2b", "exp1c",
// "exp2", "exp2e", "exp3", "exp4", "conv" or "all") and renders its
// tables to w.
func Run(w io.Writer, name string, cfg Config) error {
	cfg = cfg.withDefaults()
	ds := cfg.datasets()
	emit := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}
	switch name {
	case "fig1":
		return emit(Fig1())
	case "exp1a":
		for _, d := range ds {
			if err := emit(Exp1Real(d, cfg.Deltas)); err != nil {
				return err
			}
		}
		return nil
	case "fig2b":
		return emit(Fig2b(ds, cfg.Deltas))
	case "exp1c":
		n, outDeg, step, points := 150, 5, 8, 4
		if cfg.Scale == ScaleFull {
			n, outDeg, step, points = 800, 6, 50, 6
		}
		if err := emit(Exp1Syn(n, outDeg, step, points, true, 11)); err != nil {
			return err
		}
		return emit(Exp1Syn(n, outDeg, step, points, false, 13))
	case "exp2":
		return emit(Exp2Pruning(ds, cfg.PruningDelta))
	case "exp2e":
		return emit(Exp2Affected(ds, cfg.Deltas))
	case "exp3":
		return emit(Exp3Memory(ds, cfg.PruningDelta))
	case "exp4":
		return emit(Exp4Exactness(ds, cfg.PruningDelta))
	case "conv":
		ks := []int{5, 10, 15, 20}
		return emit(Convergence(ds[0], cfg.PruningDelta, ks))
	case "all":
		for _, sub := range []string{"fig1", "exp1a", "fig2b", "exp1c", "exp2", "exp2e", "exp3", "exp4", "conv"} {
			if err := Run(w, sub, cfg); err != nil {
				return fmt.Errorf("exp: %s: %w", sub, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("exp: unknown experiment %q", name)
	}
}

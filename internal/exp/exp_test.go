package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/gen"
)

// small returns fast-running datasets for harness tests.
func small() []*gen.Dataset { return gen.SmallDatasets() }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as float: %v", s, err)
	}
	return v
}

func TestFig1Table(t *testing.T) {
	tb, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("Fig1 rows = %d, want 8", len(tb.Rows))
	}
	unchanged, changed, liDiffers := 0, 0, 0
	for _, row := range tb.Rows {
		if row[4] == "yes" {
			unchanged++
			continue
		}
		changed++
		if row[2] != row[3] {
			liDiffers++
		}
	}
	if unchanged == 0 || changed == 0 {
		t.Fatalf("Fig1 should mix changed and unchanged rows: %d / %d", changed, unchanged)
	}
	if liDiffers == 0 {
		t.Fatal("Inc-SVD should disagree with the true scores on at least one changed pair")
	}
}

func TestExp1RealShape(t *testing.T) {
	d := small()[0]
	tb, err := Exp1Real(d, []int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 || len(tb.Header) != 5 {
		t.Fatalf("shape: %d rows, %d cols", len(tb.Rows), len(tb.Header))
	}
	// |E|+|ΔE| strictly increases down the sweep.
	e0 := parseF(t, tb.Rows[0][0])
	e1 := parseF(t, tb.Rows[1][0])
	if e1 <= e0 {
		t.Fatalf("edge counts not increasing: %v, %v", e0, e1)
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if parseF(t, cell) < 0 {
				t.Fatalf("negative time %q", cell)
			}
		}
	}
}

func TestExp1RealSVDCrashOnLargeDataset(t *testing.T) {
	d := small()[2] // YouTu-small: SVDFeasible=false
	tb, err := Exp1Real(d, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][3] != "crash" {
		t.Fatalf("Inc-SVD column = %q, want crash", tb.Rows[0][3])
	}
}

func TestExp1SynBothDirections(t *testing.T) {
	for _, insert := range []bool{true, false} {
		tb, err := Exp1Syn(60, 4, 6, 2, insert, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != 2 {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
		e0 := parseF(t, tb.Rows[0][0])
		e1 := parseF(t, tb.Rows[1][0])
		if insert && e1 <= e0 {
			t.Fatal("insert sweep should grow |E|")
		}
		if !insert && e1 >= e0 {
			t.Fatal("delete sweep should shrink |E|")
		}
	}
}

func TestFig2bHighRankFraction(t *testing.T) {
	tb, err := Fig2b(small(), []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("Fig2b rows = %d, want 2 (SVD-feasible datasets only)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if v := parseF(t, cell); v < 30 || v > 100 {
				t.Fatalf("%s: lossless rank %% = %v, expected a large fraction of n", row[0], v)
			}
		}
	}
}

func TestExp2PruningSpeedupAndRatio(t *testing.T) {
	tb, err := Exp2Pruning(small()[:2], 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		pruned := parseF(t, row[4])
		if pruned <= 0 || pruned >= 100 {
			t.Fatalf("%s: pruned %% = %v out of range", row[0], pruned)
		}
		if parseF(t, row[3]) <= 0 {
			t.Fatalf("%s: non-positive speedup", row[0])
		}
	}
}

func TestExp2AffectedSmallAndMildlyGrowing(t *testing.T) {
	tb, err := Exp2Affected(small()[:1], []int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	a0, a1 := parseF(t, row[1]), parseF(t, row[2])
	if a0 <= 0 || a0 >= 100 || a1 <= 0 || a1 >= 100 {
		t.Fatalf("affected %% out of range: %v %v", a0, a1)
	}
}

func TestExp3MemoryOrdering(t *testing.T) {
	tb, err := Exp3Memory(small(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		sr, usr := parseF(t, row[1]), parseF(t, row[2])
		if sr > usr {
			t.Fatalf("%s: Inc-SR memory %v should not exceed Inc-uSR %v", row[0], sr, usr)
		}
		if row[0] == "YouTu-small" {
			for _, cell := range row[3:] {
				if cell != "crash" {
					t.Fatalf("Inc-SVD should crash on the largest dataset, got %q", cell)
				}
			}
			continue
		}
		// Inc-SVD footprint must dominate the incremental algorithms and
		// grow with the target rank.
		svd5, svd25 := parseF(t, row[3]), parseF(t, row[5])
		if svd5 <= sr {
			t.Fatalf("%s: Inc-SVD(5) %v should exceed Inc-SR %v", row[0], svd5, sr)
		}
		if svd25 < svd5 {
			t.Fatalf("%s: Inc-SVD memory should grow with rank: %v vs %v", row[0], svd5, svd25)
		}
	}
}

func TestExp4ExactnessOrdering(t *testing.T) {
	tb, err := Exp4Exactness(small()[:2], 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		sr5, sr15 := parseF(t, row[1]), parseF(t, row[2])
		usr5, usr15 := parseF(t, row[3]), parseF(t, row[4])
		svd15 := parseF(t, row[6])
		if sr5 != usr5 || sr15 != usr15 {
			t.Fatalf("%s: pruning must not change NDCG: %v/%v vs %v/%v", row[0], sr5, sr15, usr5, usr15)
		}
		if sr15 < 0.95 {
			t.Fatalf("%s: Inc-SR(15) NDCG %v too low", row[0], sr15)
		}
		if svd15 >= sr15 {
			t.Fatalf("%s: Inc-SVD(15) NDCG %v should trail Inc-SR(15) %v", row[0], svd15, sr15)
		}
	}
}

func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := Run(&buf, "all", Config{Scale: ScaleSmall, Deltas: []int{3, 6}, PruningDelta: 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"FIG1", "EXP1a", "FIG2b", "EXP1c", "EXP2d", "EXP2e", "EXP3", "EXP4", "CONV"} {
		if !strings.Contains(out, id) {
			t.Fatalf("output missing %s", id)
		}
	}
}

func TestConvergenceDecaysAndRespectsBound(t *testing.T) {
	tb, err := Convergence(small()[0], 3, []int{5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e9
	for _, row := range tb.Rows {
		errV, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if errV > bound+1e-12 {
			t.Fatalf("K=%s: measured error %v exceeds bound %v", row[0], errV, bound)
		}
		if errV > prev+1e-12 {
			t.Fatalf("K=%s: error did not decay (%v after %v)", row[0], errV, prev)
		}
		prev = errV
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "nope", Config{}); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "X", Caption: "c", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	out := tb.String()
	if !strings.Contains(out, "== X — c") || !strings.Contains(out, "bb") {
		t.Fatalf("render: %q", out)
	}
}

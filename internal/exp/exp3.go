package exp

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incsvd"
	"repro/internal/lin"
)

// svdMemBudgetFloats caps the intermediate memory Inc-SVD may allocate
// before the experiment declares the paper's "memory crash" (Fig. 3 shows
// Inc-SVD exploding to GBs where Inc-SR needs MBs; we mirror the blow-up
// with an explicit budget so the harness stays laptop-sized).
const svdMemBudgetFloats = 64 << 20 // 64M float64 = 512 MiB

// Exp3Memory regenerates Fig. 3: intermediate memory (MB) of Inc-SR,
// Inc-uSR and Inc-SVD at target ranks 5, 15, 25. "crash" marks datasets
// or ranks whose estimated footprint exceeds the budget, mirroring the
// paper's SVD memory crashes on larger graphs.
func Exp3Memory(datasets []*gen.Dataset, deltaSize int) (*Table, error) {
	t := &Table{
		ID:      "EXP3",
		Caption: fmt.Sprintf("Fig.3 — intermediate memory (MB), |dE|=%d", deltaSize),
		Header:  []string{"dataset", "Inc-SR", "Inc-uSR", "Inc-SVD(5)", "Inc-SVD(15)", "Inc-SVD(25)"},
	}
	for _, d := range datasets {
		c, k := DampingC, d.K
		sOld := batch.MatrixForm(d.Base, c, k)
		delta := d.Delta(deltaSize)

		_, statsSR, err := foldDelta(core.IncSRInPlace, d.Base, sOld, delta, c, k)
		if err != nil {
			return nil, fmt.Errorf("exp: Exp3Memory Inc-SR on %s: %w", d.Name, err)
		}
		var peakSR int
		for _, st := range statsSR {
			if st.AuxFloats > peakSR {
				peakSR = st.AuxFloats
			}
		}
		_, statsUSR, err := foldDelta(core.IncUSRInPlace, d.Base, sOld, delta, c, k)
		if err != nil {
			return nil, fmt.Errorf("exp: Exp3Memory Inc-uSR on %s: %w", d.Name, err)
		}
		var peakUSR int
		for _, st := range statsUSR {
			if st.AuxFloats > peakUSR {
				peakUSR = st.AuxFloats
			}
		}

		row := []string{d.Name, mb(peakSR), mb(peakUSR)}
		// One lossless factorization per dataset; each rank derives from it.
		var full *lin.SVD
		if d.SVDFeasible {
			full = lin.ComputeSVD(d.Base.BackwardTransition().Dense(), 1e-10)
		}
		for _, r := range []int{5, 15, 25} {
			// Estimated footprint before running: 2nr factors + r² SVD
			// workspace + the dense n×n SVD input.
			est := 2*d.Base.N()*r + 3*r*r + d.Base.N()*d.Base.N()
			if !d.SVDFeasible || est > svdMemBudgetFloats {
				row = append(row, "crash")
				continue
			}
			eng, err := incsvd.NewFromSVD(d.Base.N(), c, r, full)
			if err != nil {
				return nil, fmt.Errorf("exp: Exp3Memory Inc-SVD(%d) on %s: %w", r, d.Name, err)
			}
			g := d.Base.Clone()
			for _, up := range delta {
				if err := eng.Update(g, up); err != nil {
					return nil, err
				}
				g.Apply(up)
			}
			// Include the dense Q working copy the factorization needed.
			row = append(row, mb(eng.AuxFloats()+d.Base.N()*d.Base.N()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

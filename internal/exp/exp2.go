package exp

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
)

// Exp2Pruning regenerates Fig. 2d: per dataset, the elapsed time of
// Inc-uSR vs Inc-SR for one snapshot delta, together with the percentage
// of node-pairs the pruning skipped (the black bars).
func Exp2Pruning(datasets []*gen.Dataset, deltaSize int) (*Table, error) {
	t := &Table{
		ID:      "EXP2d",
		Caption: fmt.Sprintf("Fig.2d — pruning effect: elapsed time (ms) and %% pruned pairs (|dE|=%d)", deltaSize),
		Header:  []string{"dataset", "Inc-uSR", "Inc-SR", "speedup", "pruned pairs"},
	}
	for _, d := range datasets {
		c, k := DampingC, d.K
		sOld := batch.MatrixForm(d.Base, c, k)
		delta := d.Delta(deltaSize)

		var uErr, sErr error
		tUSR := timeIt(func() {
			_, _, uErr = foldDelta(core.IncUSRInPlace, d.Base, sOld, delta, c, k)
		})
		var stats []core.Stats
		tSR := timeIt(func() {
			_, stats, sErr = foldDelta(core.IncSRInPlace, d.Base, sOld, delta, c, k)
		})
		if uErr != nil || sErr != nil {
			return nil, fmt.Errorf("exp: Exp2Pruning on %s: %v / %v", d.Name, uErr, sErr)
		}
		var affected float64
		for _, st := range stats {
			affected += float64(st.AffectedPairs)
		}
		affected /= float64(len(stats))
		pruned := metrics.PrunedRatio(int(affected), d.Base.N())
		speedup := float64(tUSR) / float64(tSR)
		t.AddRow(d.Name, ms(tUSR), ms(tSR), fmt.Sprintf("%.1fx", speedup), pct(pruned))
	}
	return t, nil
}

// Exp2Affected regenerates Fig. 2e: the percentage of "affected areas" in
// the similarity update as |ΔE| grows, per dataset. The affected area of
// one delta is the union of node-pairs any unit update touched, relative
// to n².
func Exp2Affected(datasets []*gen.Dataset, deltas []int) (*Table, error) {
	t := &Table{
		ID:      "EXP2e",
		Caption: "Fig.2e — % of affected node-pairs in dS per |dE|",
		Header:  append([]string{"dataset"}, deltaHeaders(deltas)...),
	}
	for _, d := range datasets {
		c, k := DampingC, d.K
		sOld := batch.MatrixForm(d.Base, c, k)
		row := []string{d.Name}
		for _, dl := range deltas {
			delta := d.Delta(dl)
			_, stats, err := foldDelta(core.IncSRInPlace, d.Base, sOld, delta, c, k)
			if err != nil {
				return nil, fmt.Errorf("exp: Exp2Affected on %s: %w", d.Name, err)
			}
			// Average affected pairs per unit update (the per-update
			// |AFF| of the complexity bound).
			var avg float64
			for _, st := range stats {
				avg += float64(st.AffectedPairs)
			}
			avg /= float64(len(stats))
			row = append(row, pct(metrics.AffectedRatio(int(avg), d.Base.N())))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

package exp

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/incsvd"
	"repro/internal/lin"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

// exactBaselineK is the iteration count of the exact baseline (the paper
// uses K = 35, enough to cover every dataset diameter; footnote 26).
const exactBaselineK = 35

// NDCGTopK is the cut-off of the exactness metric (NDCG₃₀, Exp-4).
const NDCGTopK = 30

// Exp4Exactness regenerates Fig. 4: NDCG₃₀ of Inc-SR and Inc-uSR at
// K ∈ {5, 15} and of Inc-SVD at ranks {5, 15}, all against the batch
// K=35 baseline on the updated graph.
func Exp4Exactness(datasets []*gen.Dataset, deltaSize int) (*Table, error) {
	t := &Table{
		ID:      "EXP4",
		Caption: fmt.Sprintf("Fig.4 — NDCG%d vs batch K=%d baseline, |dE|=%d", NDCGTopK, exactBaselineK, deltaSize),
		Header: []string{"dataset", "Inc-SR(5)", "Inc-SR(15)", "Inc-uSR(5)", "Inc-uSR(15)",
			"Inc-SVD(5)", "Inc-SVD(15)"},
	}
	for _, d := range datasets {
		delta := d.Delta(deltaSize)
		gNew := applyAll(d.Base, delta)
		ideal := batch.MatrixForm(gNew, DampingC, exactBaselineK)
		row := []string{d.Name}

		for _, k := range []int{5, 15} {
			sOld := batch.MatrixForm(d.Base, DampingC, k)
			got, _, err := foldDelta(core.IncSRInPlace, d.Base, sOld, delta, DampingC, k)
			if err != nil {
				return nil, fmt.Errorf("exp: Exp4 Inc-SR on %s: %w", d.Name, err)
			}
			row = append(row, f3(metrics.NDCG(got, ideal, NDCGTopK)))
		}
		for _, k := range []int{5, 15} {
			sOld := batch.MatrixForm(d.Base, DampingC, k)
			got, _, err := foldDelta(core.IncUSRInPlace, d.Base, sOld, delta, DampingC, k)
			if err != nil {
				return nil, fmt.Errorf("exp: Exp4 Inc-uSR on %s: %w", d.Name, err)
			}
			row = append(row, f3(metrics.NDCG(got, ideal, NDCGTopK)))
		}
		var full *lin.SVD
		if d.SVDFeasible {
			full = lin.ComputeSVD(d.Base.BackwardTransition().Dense(), 1e-10)
		}
		for _, r := range []int{5, 15} {
			if !d.SVDFeasible {
				row = append(row, "crash")
				continue
			}
			got, err := incSVDScores(d, delta, r, full)
			if err != nil {
				return nil, fmt.Errorf("exp: Exp4 Inc-SVD(%d) on %s: %w", r, d.Name, err)
			}
			row = append(row, f3(metrics.NDCG(got, ideal, NDCGTopK)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// incSVDScores folds a delta through the Inc-SVD engine and reconstructs
// the final similarities.
func incSVDScores(d *gen.Dataset, delta []graph.Update, r int, full *lin.SVD) (*matrix.Dense, error) {
	eng, err := incsvd.NewFromSVD(d.Base.N(), DampingC, r, full)
	if err != nil {
		return nil, err
	}
	g := d.Base.Clone()
	for _, up := range delta {
		if err := eng.Update(g, up); err != nil {
			return nil, err
		}
		g.Apply(up)
	}
	return eng.Similarities(), nil
}

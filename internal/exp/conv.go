package exp

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matrix"
)

// Convergence regenerates the accuracy analysis behind Section VI-A's
// choice of K = 15: for a snapshot delta folded incrementally at several
// iteration counts, it reports the max-norm error against a
// high-iteration baseline, next to the theoretical bound C^{K+1}/(1−C).
// Both the measured error and the bound should decay geometrically in K,
// with the measurement below the bound.
func Convergence(d *gen.Dataset, deltaSize int, ks []int) (*Table, error) {
	c := DampingC
	const baselineK = 60
	delta := d.Delta(deltaSize)
	gNew := applyAll(d.Base, delta)
	exact := batch.MatrixForm(gNew, c, baselineK)

	t := &Table{
		ID: "CONV/" + d.Name,
		Caption: fmt.Sprintf("residual of incrementally folded scores vs K (dataset %s, |dE|=%d, C=%.1f)",
			d.Name, len(delta), c),
		Header: []string{"K", "max error", "bound C^(K+1)/(1-C)"},
	}
	for _, k := range ks {
		sOld := batch.MatrixForm(d.Base, c, k)
		got, _, err := foldDelta(core.IncSRInPlace, d.Base, sOld, delta, c, k)
		if err != nil {
			return nil, fmt.Errorf("exp: Convergence on %s: %w", d.Name, err)
		}
		bound := 1.0
		for i := 0; i <= k; i++ {
			bound *= c
		}
		bound /= 1 - c
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2e", matrix.MaxAbsDiff(got, exact)),
			fmt.Sprintf("%.2e", bound))
	}
	return t, nil
}

// Package incsvd implements the comparison baseline of the paper: Li et
// al.'s SVD-based SimRank for static and dynamic graphs ("Fast computation
// of SimRank for static and dynamic information networks", EDBT 2010 — the
// paper's reference [1], called Inc-SVD in the evaluation).
//
// The batch path factorizes the backward transition matrix Q = U·Σ·Vᵀ and
// computes SimRank from the factors. The incremental path (Algorithm 3 of
// [1], Eqs. 4–5 of the paper) updates the factors for a link change:
//
//	C_aux = Σ + Uᵀ·ΔQ·V,   C_aux = U_C·Σ_C·V_Cᵀ (SVD)
//	Ũ = U·U_C,  Σ̃ = Σ_C,  Ṽ = V·V_C
//
// As Section IV of the reproduced paper proves, this update rests on
// U·Uᵀ = V·Vᵀ = Iₙ, which fails whenever rank(Q) < n, so the maintained
// factorization drifts from the true Q̃ — the package intentionally
// reproduces that inexactness (see TestExample3 in the tests).
package incsvd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lin"
	"repro/internal/matrix"
)

// svdDropTol is the singular-value cutoff used for "lossless" SVDs.
const svdDropTol = 1e-10

// Engine maintains the SVD factors of Q and answers SimRank queries from
// them.
type Engine struct {
	N          int
	C          float64
	TargetRank int // ≤ 0 means lossless (keep every σ above svdDropTol)

	U, V *matrix.Dense // n×r column-orthonormal factors
	Sig  []float64     // r singular values
}

// New factorizes the transition matrix of g. targetRank ≤ 0 keeps the
// lossless rank; otherwise the SVD is truncated to targetRank (the paper's
// low-rank r, a time/accuracy trade-off).
func New(g *graph.DiGraph, c float64, targetRank int) (*Engine, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("incsvd: damping factor %v outside (0,1)", c)
	}
	q := g.BackwardTransition().Dense()
	d := lin.ComputeSVD(q, svdDropTol)
	if targetRank > 0 {
		d = d.Truncate(targetRank)
	}
	return &Engine{
		N: g.N(), C: c, TargetRank: targetRank,
		U: d.U, V: d.V, Sig: d.S,
	}, nil
}

// NewFromSVD builds an engine from a precomputed factorization of Q,
// truncating to targetRank when positive. It lets experiment sweeps pay
// the O(n³) factorization once and derive engines per configuration.
func NewFromSVD(n int, c float64, targetRank int, d *lin.SVD) (*Engine, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("incsvd: damping factor %v outside (0,1)", c)
	}
	if targetRank > 0 {
		d = d.Truncate(targetRank)
	}
	return &Engine{
		N: n, C: c, TargetRank: targetRank,
		U: d.U, V: d.V, Sig: append([]float64(nil), d.S...),
	}, nil
}

// Clone returns an independent copy of the engine, so one precomputed
// factorization can seed several update sequences (the paper treats the
// initial SVD as offline precomputation, not update time).
func (e *Engine) Clone() *Engine {
	return &Engine{
		N: e.N, C: e.C, TargetRank: e.TargetRank,
		U: e.U.Clone(), V: e.V.Clone(),
		Sig: append([]float64(nil), e.Sig...),
	}
}

// Rank returns the current number of retained singular triplets.
func (e *Engine) Rank() int { return len(e.Sig) }

// Update applies one unit link update to the maintained factorization via
// Algorithm 3 of [1]. g must be the graph *before* the update.
func (e *Engine) Update(g *graph.DiGraph, up graph.Update) error {
	if g.N() != e.N {
		return fmt.Errorf("incsvd: graph size %d does not match engine %d", g.N(), e.N)
	}
	ro, err := core.Decompose(g, up)
	if err != nil {
		return err
	}
	r := e.Rank()
	// C_aux = Σ + Uᵀ·ΔQ·V = Σ + (Uᵀu)·(Vᵀv)ᵀ, a diagonal plus a rank-one.
	uu := e.U.MulVecT(ro.U.Dense()) // Uᵀ·u ∈ R^r
	vv := e.V.MulVecT(ro.V.Dense()) // Vᵀ·v ∈ R^r
	caux := matrix.NewDense(r, r)
	for i := 0; i < r; i++ {
		caux.Set(i, i, e.Sig[i])
	}
	matrix.AddOuter(caux, 1, uu, vv)
	// SVD of C_aux; the lossless rank of C_aux is what Fig. 2b reports.
	d := lin.ComputeSVD(caux, svdDropTol)
	if e.TargetRank > 0 {
		d = d.Truncate(e.TargetRank)
	}
	// Ũ = U·U_C, Ṽ = V·V_C, Σ̃ = Σ_C (Eq. 4) — the step that silently
	// assumes U·Uᵀ = V·Vᵀ = Iₙ.
	e.U = matrix.Mul(e.U, d.U)
	e.V = matrix.Mul(e.V, d.V)
	e.Sig = d.S
	return nil
}

// AuxRankLossless returns the lossless rank of the auxiliary matrix
// C_aux = Σ + Uᵀ·ΔQ·V for the given update, without mutating the engine
// (the quantity on the y-axis of Fig. 2b).
func (e *Engine) AuxRankLossless(g *graph.DiGraph, up graph.Update) (int, error) {
	ro, err := core.Decompose(g, up)
	if err != nil {
		return 0, err
	}
	r := e.Rank()
	uu := e.U.MulVecT(ro.U.Dense())
	vv := e.V.MulVecT(ro.V.Dense())
	caux := matrix.NewDense(r, r)
	for i := 0; i < r; i++ {
		caux.Set(i, i, e.Sig[i])
	}
	matrix.AddOuter(caux, 1, uu, vv)
	return lin.NumericRank(caux, svdDropTol), nil
}

// Similarities reconstructs the full SimRank matrix from the current
// factors:
//
//	S = (1−C)·Iₙ + (1−C)·C·U·T·Uᵀ
//
// where the r×r matrix T solves T = Σ² + C·(ΣW)·T·(ΣW)ᵀ with W = Vᵀ·U
// (derived by substituting Q = UΣVᵀ into the series of Eq. 34 and using
// VᵀV = Iᵣ). T is computed by fixed-point iteration, which converges
// geometrically because ‖C·(ΣW)⊗(ΣW)‖ < 1 for a sub-stochastic Q.
func (e *Engine) Similarities() *matrix.Dense {
	n, r, c := e.N, e.Rank(), e.C
	out := matrix.Identity(n).Scale(1 - c)
	if r == 0 {
		return out
	}
	tmat := e.solveT()
	// S = (1−c)·I + (1−c)·c·U·T·Uᵀ.
	utu := matrix.Mul(matrix.Mul(e.U, tmat), e.U.T())
	out.AddMat((1-c)*c, utu)
	return out
}

// SimilaritiesPerPair computes the same scores as Similarities but with
// the per-pair tensor contraction s(a,b) = (1−C)δ_ab + (1−C)·C·u_aᵀ·T·u_b
// evaluated independently for every pair — O(n²r²) total, the closest
// honest analogue of [1]'s per-pair tensor-product reconstruction (their
// Lemma 2 accounting is O(n²r⁴)). Experiments use this method so the
// baseline is not silently given a better algorithm than its paper;
// library users should call Similarities, which reassociates the products
// into O(n²r + nr²).
func (e *Engine) SimilaritiesPerPair() *matrix.Dense {
	n, r, c := e.N, e.Rank(), e.C
	out := matrix.Identity(n).Scale(1 - c)
	if r == 0 {
		return out
	}
	tmat := e.solveT()
	scale := (1 - c) * c
	tb := make([]float64, r)
	for a := 0; a < n; a++ {
		ua := e.U.Row(a)
		for b := a; b < n; b++ {
			ub := e.U.Row(b)
			// tb = T·u_b, recomputed per pair (no cross-pair reuse).
			for i := 0; i < r; i++ {
				tb[i] = matrix.Dot(tmat.Row(i), ub)
			}
			v := scale * matrix.Dot(ua, tb)
			out.Add(a, b, v)
			if a != b {
				out.Add(b, a, v)
			}
		}
	}
	return out
}

// solveT computes the r×r fixed point T = Σ² + C·(ΣW)·T·(ΣW)ᵀ shared by
// both reconstructions.
func (e *Engine) solveT() *matrix.Dense {
	r, c := e.Rank(), e.C
	a := matrix.Mul(e.V.T(), e.U)
	for i := 0; i < r; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] *= e.Sig[i]
		}
	}
	tmat := matrix.NewDense(r, r)
	for i := 0; i < r; i++ {
		tmat.Set(i, i, e.Sig[i]*e.Sig[i])
	}
	at := a.T()
	for iter := 0; iter < 300; iter++ {
		next := matrix.Mul(matrix.Mul(a, tmat), at).Scale(c)
		for i := 0; i < r; i++ {
			next.Add(i, i, e.Sig[i]*e.Sig[i])
		}
		if matrix.MaxAbsDiff(next, tmat) < 1e-13 {
			tmat = next
			break
		}
		tmat = next
	}
	return tmat
}

// AuxFloats estimates the intermediate memory footprint in float64 counts:
// the two n×r factors, the r values, and the r×r working matrices of the
// reconstruction (Fig. 3's "intermediate space").
func (e *Engine) AuxFloats() int {
	r := e.Rank()
	return 2*e.N*r + r + 3*r*r
}

// Batch computes SimRank of g from a fresh (optionally truncated) SVD —
// the static-graph algorithm of [1].
func Batch(g *graph.DiGraph, c float64, targetRank int) (*matrix.Dense, error) {
	e, err := New(g, c, targetRank)
	if err != nil {
		return nil, err
	}
	return e.Similarities(), nil
}

package incsvd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/graph"
	"repro/internal/lin"
	"repro/internal/matrix"
)

func randGraph(rng *rand.Rand, n, m int) *graph.DiGraph {
	if max := n * n; m > max/2 {
		m = max / 2 // keep headroom so random probing terminates fast
	}
	g := graph.New(n)
	for g.M() < m {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestBatchLosslessMatchesMatrixForm(t *testing.T) {
	// With the lossless SVD, the batch SVD SimRank must match the
	// matrix-form fixed point (both compute Eq. 2 exactly).
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		g := randGraph(rng, 4+rng.Intn(8), 8+rng.Intn(20))
		c := 0.6
		got, err := Batch(g, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := batch.MatrixForm(g, c, 150)
		if d := matrix.MaxAbsDiff(got, want); d > 1e-7 {
			t.Fatalf("trial %d: lossless SVD batch diverges by %g", trial, d)
		}
	}
}

func TestBatchTruncatedIsApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randGraph(rng, 12, 40)
	c := 0.6
	exact := batch.MatrixForm(g, c, 150)
	full, err := New(g, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rank() <= 2 {
		t.Skip("graph degenerated to tiny rank")
	}
	lowS, err := Batch(g, c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(lowS, exact); d < 1e-9 {
		t.Fatalf("rank-2 truncation should lose accuracy, diff = %g", d)
	}
}

func TestBadDampingFactor(t *testing.T) {
	g := graph.New(3)
	if _, err := New(g, 0, 0); err == nil {
		t.Fatal("want error for C=0")
	}
	if _, err := New(g, 1.5, 0); err == nil {
		t.Fatal("want error for C>1")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.New(4)
	s, err := Batch(g, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Identity(4).Scale(0.2)
	if matrix.MaxAbsDiff(s, want) > 1e-12 {
		t.Fatal("empty graph: S must be (1−C)·I")
	}
}

// TestExample3 reproduces Example 3 of the paper: for Q = [0 1; 0 0] and
// an inserted edge giving ΔQ = [0 0; 1 0], Li et al.'s incremental update
// yields Ũ·Σ̃·Ṽᵀ = [0 1; 0 0] ≠ Q̃ = [0 1; 1 0] — the factorization misses
// the new eigenvector and the error ‖Q̃ − ŨΣ̃Ṽᵀ‖₂ = 1.
func TestExample3EigenInformationLoss(t *testing.T) {
	// Graph with 2 nodes and edge (1→0)... in our convention Q[j][i] for
	// edge (i,j): Q = [0 1; 0 0] means [Q]_{0,1} = 1, i.e. I(0) = {1},
	// i.e. edge (1, 0).
	g := graph.FromEdges(2, []graph.Edge{{From: 1, To: 0}})
	e, err := New(g, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rank() != 1 {
		t.Fatalf("rank(Q) = %d, want 1", e.Rank())
	}
	// Insert edge (0, 1): ΔQ has [ΔQ]_{1,0} = 1.
	up := graph.Update{Edge: graph.Edge{From: 0, To: 1}, Insert: true}
	if err := e.Update(g, up); err != nil {
		t.Fatal(err)
	}
	// Reconstruct Q̃ from the updated factors.
	rec := matrix.NewDense(2, 2)
	for k := 0; k < e.Rank(); k++ {
		matrix.AddOuter(rec, e.Sig[k], e.U.Col(k), e.V.Col(k))
	}
	g2 := g.Clone()
	g2.Apply(up)
	trueQ := g2.BackwardTransition().Dense()
	errNorm := matrix.MaxAbsDiff(rec, trueQ)
	if errNorm < 0.9 {
		t.Fatalf("expected ≈1 factorization error (missed eigenvector), got %g", errNorm)
	}
}

func TestIncrementalInexactOnRankDeficient(t *testing.T) {
	// On a rank-deficient citation-style graph, incremental SVD updates
	// drift from the true similarities even with lossless per-step SVDs —
	// while staying a *valid* similarity matrix. This is the paper's
	// Example 1 behaviour.
	g, ins := graph.Fig1Graph()
	c := 0.8
	e, err := New(g, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rank() >= g.N() {
		t.Skip("Fig1 graph unexpectedly full-rank")
	}
	up := graph.Update{Edge: ins, Insert: true}
	if err := e.Update(g, up); err != nil {
		t.Fatal(err)
	}
	got := e.Similarities()
	g2 := g.Clone()
	g2.Apply(up)
	want := batch.MatrixForm(g2, c, 150)
	if d := matrix.MaxAbsDiff(got, want); d < 1e-6 {
		t.Fatalf("Inc-SVD should be inexact on rank-deficient graphs, diff = %g", d)
	}
}

func TestIncrementalExactOnFullRank(t *testing.T) {
	// Section IV: Li et al.'s method is exact only when Q stays full-rank
	// and the SVD is lossless. A permutation-like graph (every node has
	// exactly one in-neighbor) has orthogonal, full-rank Q.
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 0},
	})
	c := 0.6
	e, err := New(g, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rank() != 4 {
		t.Fatalf("cycle Q should be full-rank, got %d", e.Rank())
	}
	// Insert (0, 2): d_2 = 1 → new Q still full rank? Verify via engine
	// against batch; the update keeps rank n here.
	up := graph.Update{Edge: graph.Edge{From: 0, To: 2}, Insert: true}
	if err := e.Update(g, up); err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	g2.Apply(up)
	if nr := lin.NumericRank(g2.BackwardTransition().Dense(), 1e-10); nr == 4 && e.Rank() == 4 {
		got := e.Similarities()
		want := batch.MatrixForm(g2, c, 200)
		if d := matrix.MaxAbsDiff(got, want); d > 1e-6 {
			t.Fatalf("full-rank lossless update should be exact, diff = %g", d)
		}
	}
}

func TestAuxRankLossless(t *testing.T) {
	g, ins := graph.Fig1Graph()
	e, err := New(g, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.AuxRankLossless(g, graph.Update{Edge: ins, Insert: true})
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || r > e.Rank() {
		t.Fatalf("aux rank %d outside (0, %d]", r, e.Rank())
	}
}

func TestAuxFloatsGrowsWithRank(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := randGraph(rng, 15, 60)
	e5, _ := New(g, 0.6, 5)
	eFull, _ := New(g, 0.6, 0)
	if eFull.Rank() > 5 && eFull.AuxFloats() <= e5.AuxFloats() {
		t.Fatalf("memory must grow with rank: r5=%d rfull=%d", e5.AuxFloats(), eFull.AuxFloats())
	}
}

func TestUpdateErrors(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	e, _ := New(g, 0.8, 0)
	if err := e.Update(g, graph.Update{Edge: graph.Edge{From: 0, To: 1}, Insert: true}); err == nil {
		t.Fatal("want error for duplicate insert")
	}
	big := graph.New(5)
	if err := e.Update(big, graph.Update{Edge: graph.Edge{From: 0, To: 1}, Insert: true}); err == nil {
		t.Fatal("want error for size mismatch")
	}
}

func TestSimilaritiesSymmetricBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	g := randGraph(rng, 10, 30)
	s, err := Batch(g, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsSymmetric(1e-9) {
		t.Fatal("SVD batch S must be symmetric")
	}
	for i := 0; i < g.N(); i++ {
		if d := s.At(i, i); d < 0.2-1e-9 || math.IsNaN(d) {
			t.Fatalf("diag[%d] = %v", i, d)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 2, To: 1}, {From: 1, To: 3}})
	e, err := New(g, 0.6, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	if err := c.Update(g, graph.Update{Edge: graph.Edge{From: 3, To: 1}, Insert: true}); err != nil {
		t.Fatal(err)
	}
	// The original engine's factors must be untouched.
	s1 := e.Similarities()
	e2, _ := New(g, 0.6, 0)
	s2 := e2.Similarities()
	if matrix.MaxAbsDiff(s1, s2) != 0 {
		t.Fatal("Clone leaked mutations into the original")
	}
}

func TestNewFromSVDMatchesNew(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 2, To: 1}, {From: 1, To: 3}, {From: 3, To: 4},
	})
	full := lin.ComputeSVD(g.BackwardTransition().Dense(), 1e-10)
	for _, r := range []int{0, 2} {
		a, err := New(g, 0.6, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewFromSVD(g.N(), 0.6, r, full)
		if err != nil {
			t.Fatal(err)
		}
		if matrix.MaxAbsDiff(a.Similarities(), b.Similarities()) > 1e-12 {
			t.Fatalf("rank %d: NewFromSVD diverges from New", r)
		}
	}
	if _, err := NewFromSVD(3, 0, 0, full); err == nil {
		t.Fatal("want error for bad C")
	}
}

func TestSimilaritiesPerPairMatchesOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 4; trial++ {
		g := randGraph(rng, 4+rng.Intn(10), 25)
		for _, r := range []int{0, 3} {
			e, err := New(g, 0.7, r)
			if err != nil {
				t.Fatal(err)
			}
			if d := matrix.MaxAbsDiff(e.Similarities(), e.SimilaritiesPerPair()); d > 1e-10 {
				t.Fatalf("trial %d rank %d: reconstructions differ by %g", trial, r, d)
			}
		}
	}
}

// Package metrics implements the measurements of the paper's evaluation:
// top-k node-pair extraction, NDCG@k exactness scoring against a batch
// baseline (Exp-4), entrywise error norms, and affected-area ratios
// (Exp-2).
package metrics

import (
	"container/heap"
	"math"

	"repro/internal/matrix"
)

// Pair is a scored node-pair.
type Pair struct {
	A, B  int
	Score float64
}

// TopKPairs extracts the k highest-scoring off-diagonal node-pairs from a
// symmetric similarity matrix, each unordered pair counted once, ties
// broken by (A, B) for determinism. A bounded min-heap keeps the scan at
// O(n²·log k) time and O(k) memory instead of materializing and sorting
// all pairs.
func TopKPairs(s *matrix.Dense, k int) []Pair {
	return TopKPairsUpper(s.Rows, func(a int) []float64 { return s.Row(a)[a:] }, k)
}

// TopKPairsUpper is TopKPairs over any symmetric store that can expose
// its upper triangle row by row: upperRow(a)[d] must be s(a, a+d), with
// d = 0 the (skipped) diagonal. The scan order — a ascending, b = a+1
// ascending — and therefore the deterministic result is identical to the
// dense TopKPairs it generalizes; a packed-triangular store serves each
// upperRow as a zero-copy alias.
func TopKPairsUpper(n int, upperRow func(a int) []float64, k int) []Pair {
	if k <= 0 {
		return nil
	}
	if max := n * (n - 1) / 2; k > max {
		k = max // at most n(n-1)/2 candidates; don't size the heap to a huge k
	}
	h := make(pairHeap, 0, k+1)
	for a := 0; a < n; a++ {
		row := upperRow(a)
		for d := 1; d < len(row); d++ {
			if row[d] == 0 {
				continue
			}
			p := Pair{A: a, B: a + d, Score: row[d]}
			if len(h) < k {
				heap.Push(&h, p)
				continue
			}
			if better(p, h[0]) {
				h[0] = p
				heap.Fix(&h, 0)
			}
		}
	}
	out := make([]Pair, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Pair)
	}
	return out
}

// TopKRow extracts up to k highest-scoring entries of one similarity row
// (node a's row), skipping the diagonal and zero scores — the
// single-source analogue of TopKPairs. The same bounded min-heap keeps
// the scan at O(n·log k) time and O(k) memory, and the result order is
// deterministic: score descending, ties by neighbor id ascending.
func TopKRow(row []float64, a, k int) []Pair {
	if k <= 0 {
		return nil
	}
	if k > len(row) {
		k = len(row) // at most n-1 candidates; don't size the heap to a huge k
	}
	h := make(pairHeap, 0, k+1)
	for b, v := range row {
		if b == a || v == 0 {
			continue
		}
		p := Pair{A: a, B: b, Score: v}
		if len(h) < k {
			heap.Push(&h, p)
			continue
		}
		if better(p, h[0]) {
			h[0] = p
			heap.Fix(&h, 0)
		}
	}
	out := make([]Pair, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Pair)
	}
	return out
}

// ClonePairs returns an independent copy of a pair slice, so a result
// can be both retained (e.g. by a query cache) and handed to a caller
// free to mutate it. Clones of nil are nil.
func ClonePairs(ps []Pair) []Pair {
	if ps == nil {
		return nil
	}
	out := make([]Pair, len(ps))
	copy(out, ps)
	return out
}

// NDCG computes the normalized discounted cumulative gain at k of a
// ranking produced by `got` against ideal relevances taken from `ideal`
// (both symmetric similarity matrices), the exactness metric of Exp-4:
// the top-k pairs of `got` are looked up in `ideal` for their true gains,
// and the DCG is normalized by the ideal ordering's DCG.
func NDCG(got, ideal *matrix.Dense, k int) float64 {
	gotTop := TopKPairs(got, k)
	idealTop := TopKPairs(ideal, k)
	if len(idealTop) == 0 {
		return 1 // nothing to rank
	}
	dcg := 0.0
	for rank, p := range gotTop {
		rel := ideal.At(p.A, p.B)
		dcg += (math.Pow(2, rel) - 1) / math.Log2(float64(rank)+2)
	}
	idcg := 0.0
	for rank, p := range idealTop {
		idcg += (math.Pow(2, p.Score) - 1) / math.Log2(float64(rank)+2)
	}
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

// MaxError returns ‖a−b‖_max over all entries.
func MaxError(a, b *matrix.Dense) float64 { return matrix.MaxAbsDiff(a, b) }

// MeanAbsError returns the mean absolute entrywise difference.
func MeanAbsError(a, b *matrix.Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("metrics: MeanAbsError dimension mismatch")
	}
	if len(a.Data) == 0 {
		return 0
	}
	var sum float64
	for i, v := range a.Data {
		sum += math.Abs(v - b.Data[i])
	}
	return sum / float64(len(a.Data))
}

// AffectedRatio returns affected/total node-pairs as a percentage in
// [0, 100] (Fig. 2e's y-axis).
func AffectedRatio(affectedPairs, n int) float64 {
	if n == 0 {
		return 0
	}
	return 100 * float64(affectedPairs) / float64(n*n)
}

// PrunedRatio is the complement of AffectedRatio: the percentage of
// node-pairs the pruning skipped (the black bars of Fig. 2d).
func PrunedRatio(affectedPairs, n int) float64 {
	return 100 - AffectedRatio(affectedPairs, n)
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func symRand(rng *rand.Rand, n int) *matrix.Dense {
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestTopKPairs(t *testing.T) {
	s := matrix.NewDenseFrom([][]float64{
		{1, 0.5, 0.2},
		{0.5, 1, 0.9},
		{0.2, 0.9, 1},
	})
	top := TopKPairs(s, 2)
	if len(top) != 2 {
		t.Fatalf("len=%d", len(top))
	}
	if top[0].A != 1 || top[0].B != 2 || top[0].Score != 0.9 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].A != 0 || top[1].B != 1 {
		t.Fatalf("top[1] = %+v", top[1])
	}
}

func TestTopKPairsSkipsZerosAndDiagonal(t *testing.T) {
	s := matrix.Identity(4)
	if got := TopKPairs(s, 10); len(got) != 0 {
		t.Fatalf("identity should have no off-diagonal pairs, got %v", got)
	}
}

func TestTopKPairsTieBreakDeterministic(t *testing.T) {
	s := matrix.NewDense(3, 3)
	s.Set(0, 1, 0.5)
	s.Set(1, 0, 0.5)
	s.Set(0, 2, 0.5)
	s.Set(2, 0, 0.5)
	top := TopKPairs(s, 2)
	if top[0].B != 1 || top[1].B != 2 {
		t.Fatalf("tie break unstable: %+v", top)
	}
}

func TestNDCGPerfect(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	s := symRand(rng, 8)
	if g := NDCG(s, s, 10); math.Abs(g-1) > 1e-12 {
		t.Fatalf("NDCG(x,x) = %v, want 1", g)
	}
}

func TestNDCGDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	ideal := symRand(rng, 12)
	noisy := ideal.Clone()
	// Scramble: replace scores with fresh random values.
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			v := rng.Float64()
			noisy.Set(i, j, v)
			noisy.Set(j, i, v)
		}
	}
	g := NDCG(noisy, ideal, 10)
	if g >= 1 {
		t.Fatalf("scrambled ranking should lose NDCG, got %v", g)
	}
	if g < 0 || math.IsNaN(g) {
		t.Fatalf("NDCG out of range: %v", g)
	}
}

func TestNDCGEmptyIdeal(t *testing.T) {
	if g := NDCG(matrix.Identity(3), matrix.Identity(3), 5); g != 1 {
		t.Fatalf("empty ideal NDCG = %v", g)
	}
}

func TestMaxAndMeanError(t *testing.T) {
	a := matrix.NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := matrix.NewDenseFrom([][]float64{{1, 2.5}, {3, 3}})
	if MaxError(a, b) != 1 {
		t.Fatalf("MaxError = %v", MaxError(a, b))
	}
	if MeanAbsError(a, b) != 1.5/4 {
		t.Fatalf("MeanAbsError = %v", MeanAbsError(a, b))
	}
}

func TestAffectedAndPrunedRatio(t *testing.T) {
	if AffectedRatio(25, 10) != 25 {
		t.Fatalf("AffectedRatio = %v", AffectedRatio(25, 10))
	}
	if PrunedRatio(25, 10) != 75 {
		t.Fatalf("PrunedRatio = %v", PrunedRatio(25, 10))
	}
	if AffectedRatio(5, 0) != 0 {
		t.Fatal("zero nodes should give 0")
	}
}

// Property: NDCG is within [0, 1+ε] for random matrices (it can only reach
// 1 when the rankings' gains coincide).
func TestQuickNDCGRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		got, ideal := symRand(rng, n), symRand(rng, n)
		g := NDCG(got, ideal, 1+rng.Intn(15))
		return g >= 0 && g <= 1+1e-9 && !math.IsNaN(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopKPairs returns pairs in non-increasing score order.
func TestQuickTopKSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := symRand(rng, 3+rng.Intn(10))
		top := TopKPairs(s, 1+rng.Intn(20))
		for i := 1; i < len(top); i++ {
			if top[i].Score > top[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

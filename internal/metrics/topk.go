package metrics

// pairHeap is a min-heap of Pairs ordered by (Score, then reverse (A,B)),
// so the root is the weakest pair currently retained and ties evict the
// lexicographically larger pair — matching TopKPairs' deterministic order.
type pairHeap []Pair

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(x, y int) bool {
	if h[x].Score != h[y].Score {
		return h[x].Score < h[y].Score
	}
	if h[x].A != h[y].A {
		return h[x].A > h[y].A
	}
	return h[x].B > h[y].B
}
func (h pairHeap) Swap(x, y int)       { h[x], h[y] = h[y], h[x] }
func (h *pairHeap) Push(v interface{}) { *h = append(*h, v.(Pair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// better reports whether p should replace the heap root r.
func better(p, r Pair) bool {
	if p.Score != r.Score {
		return p.Score > r.Score
	}
	if p.A != r.A {
		return p.A < r.A
	}
	return p.B < r.B
}

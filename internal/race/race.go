//go:build race

// Package race exposes whether the binary was built with the race
// detector, so tests can skip assertions the detector's instrumentation
// invalidates (notably AllocsPerRun: shadow-memory bookkeeping
// allocates, making "zero allocations" unprovable) — explicitly, with a
// logged reason, instead of failing or silently passing.
package race

// Enabled reports whether -race instrumentation is compiled in.
const Enabled = true

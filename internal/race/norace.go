//go:build !race

package race

// Enabled reports whether -race instrumentation is compiled in.
const Enabled = false

package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestERSizeAndDeterminism(t *testing.T) {
	g := ER(50, 200, 7)
	if g.N() != 50 || g.M() != 200 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	g2 := ER(50, 200, 7)
	if len(g.Edges()) != len(g2.Edges()) {
		t.Fatal("same seed must give same graph")
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Fatal("same seed must give same edges")
		}
	}
	g3 := ER(50, 200, 8)
	same := true
	e3 := g3.Edges()
	for i, e := range g.Edges() {
		if e3[i] != e {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestERNoSelfLoopsAndCap(t *testing.T) {
	g := ER(5, 100, 1) // m capped at n(n-1) = 20
	if g.M() != 20 {
		t.Fatalf("M=%d, want 20", g.M())
	}
	for _, e := range g.Edges() {
		if e.From == e.To {
			t.Fatal("self loop generated")
		}
	}
}

func TestPrefAttachShape(t *testing.T) {
	g := PrefAttach(300, 5, 42)
	if g.N() != 300 {
		t.Fatalf("N=%d", g.N())
	}
	if g.M() < 5*250 {
		t.Fatalf("M=%d too small", g.M())
	}
	// Citations go to earlier nodes only.
	for _, e := range g.Edges() {
		if e.To >= e.From {
			t.Fatalf("edge %v cites a later node", e)
		}
	}
	// Preferential attachment should produce a skewed in-degree profile:
	// the max in-degree should exceed several times the average.
	st := graph.Summarize(g)
	if float64(st.MaxInDeg) < 3*st.AvgInDeg {
		t.Fatalf("no skew: max=%d avg=%v", st.MaxInDeg, st.AvgInDeg)
	}
}

func TestPrefAttachStreamArrivalsMatchGraph(t *testing.T) {
	g, arr := PrefAttachStream(100, 4, 9)
	if len(arr) != g.M() {
		t.Fatalf("arrivals %d vs edges %d", len(arr), g.M())
	}
	rebuilt := graph.New(100)
	for _, e := range arr {
		if !rebuilt.AddEdge(e.From, e.To) {
			t.Fatalf("duplicate arrival %v", e)
		}
	}
	if rebuilt.M() != g.M() {
		t.Fatal("rebuilt graph differs")
	}
}

func TestInsertStreamApplies(t *testing.T) {
	g := ER(30, 60, 3)
	ups := InsertStream(g, 25, 4)
	if len(ups) != 25 {
		t.Fatalf("len=%d", len(ups))
	}
	scratch := g.Clone()
	for _, u := range ups {
		if !u.Insert {
			t.Fatal("insert stream with deletion")
		}
		if !scratch.Apply(u) {
			t.Fatalf("update %v not applicable", u)
		}
	}
}

func TestDeleteStreamApplies(t *testing.T) {
	g := ER(30, 60, 3)
	ups := DeleteStream(g, 20, 5)
	if len(ups) != 20 {
		t.Fatalf("len=%d", len(ups))
	}
	scratch := g.Clone()
	for _, u := range ups {
		if u.Insert {
			t.Fatal("delete stream with insertion")
		}
		if !scratch.Apply(u) {
			t.Fatalf("update %v not applicable", u)
		}
	}
	if scratch.M() != 40 {
		t.Fatalf("M=%d after deletions", scratch.M())
	}
}

func TestDeleteStreamExhaustsGracefully(t *testing.T) {
	g := ER(5, 4, 6)
	ups := DeleteStream(g, 100, 7)
	if len(ups) != 4 {
		t.Fatalf("len=%d, want 4 (graph exhausted)", len(ups))
	}
}

func TestMixedStreamApplies(t *testing.T) {
	g := ER(30, 60, 8)
	ups := MixedStream(g, 40, 0.5, 9)
	scratch := g.Clone()
	ins, del := 0, 0
	for _, u := range ups {
		if !scratch.Apply(u) {
			t.Fatalf("update %v not applicable", u)
		}
		if u.Insert {
			ins++
		} else {
			del++
		}
	}
	if ins == 0 || del == 0 {
		t.Fatalf("mix degenerate: ins=%d del=%d", ins, del)
	}
}

func TestDatasetDeltaApplies(t *testing.T) {
	for _, d := range SmallDatasets() {
		ups := d.Delta(30)
		if len(ups) != 30 {
			t.Fatalf("%s: delta len %d", d.Name, len(ups))
		}
		scratch := d.Base.Clone()
		for _, u := range ups {
			if !scratch.Apply(u) {
				t.Fatalf("%s: arrival %v not applicable", d.Name, u)
			}
		}
	}
}

func TestDatasetDeltaClamped(t *testing.T) {
	d := SmallDatasets()[0]
	ups := d.Delta(1 << 30)
	if len(ups) != len(d.Arrivals) {
		t.Fatal("delta should clamp to available arrivals")
	}
}

func TestDatasetsMetadata(t *testing.T) {
	ds := SmallDatasets()
	if len(ds) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(ds))
	}
	if ds[0].K != 10 || ds[2].K != 5 {
		t.Fatalf("iteration counts wrong: %d %d", ds[0].K, ds[2].K)
	}
	if !ds[0].SVDFeasible || ds[2].SVDFeasible {
		t.Fatal("SVD feasibility flags wrong")
	}
	// Largest dataset must actually be the largest.
	if ds[2].Base.N() <= ds[0].Base.N() {
		t.Fatal("YouTu-small should be the largest")
	}
}

// Property: insert streams never propose existing edges; delete streams
// never propose absent ones (relative to the evolving graph).
func TestQuickStreamsWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		g := ER(20, 50, seed)
		scratch := g.Clone()
		for _, u := range MixedStream(g, 30, 0.6, seed+1) {
			if u.Insert == scratch.HasEdge(u.Edge.From, u.Edge.To) {
				return false // inserting an existing edge or deleting an absent one
			}
			scratch.Apply(u)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFullDatasetsMetadata(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generators are slow")
	}
	ds := Datasets()
	if len(ds) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(ds))
	}
	names := map[string]bool{}
	var prevN int
	for i, d := range ds {
		names[d.Name] = true
		if d.Base.N() == 0 || d.Base.M() == 0 {
			t.Fatalf("%s: empty base", d.Name)
		}
		if len(d.Arrivals) < 200 {
			t.Fatalf("%s: only %d arrivals", d.Name, len(d.Arrivals))
		}
		if d.Base.N() <= prevN {
			t.Fatalf("datasets must grow in size: %s has n=%d after %d", d.Name, d.Base.N(), prevN)
		}
		prevN = d.Base.N()
		// Every arrival applies cleanly in order.
		scratch := d.Base.Clone()
		for _, u := range d.Delta(50) {
			if !scratch.Apply(u) {
				t.Fatalf("%s: arrival %v not applicable", d.Name, u)
			}
		}
		if i < 2 && !d.SVDFeasible {
			t.Fatalf("%s should be SVD-feasible", d.Name)
		}
	}
	if ds[2].SVDFeasible {
		t.Fatal("largest dataset must mirror the paper's SVD memory crash")
	}
	if ds[0].K != 15 || ds[2].K != 5 {
		t.Fatalf("paper iteration counts wrong: %d, %d", ds[0].K, ds[2].K)
	}
	if len(names) != 3 {
		t.Fatal("dataset names must be distinct")
	}
}

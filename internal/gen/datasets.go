package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// Dataset is a scaled-down synthetic stand-in for one of the paper's
// evaluation graphs, exposed as a base snapshot plus timestamped edge
// arrivals, so experiments can slice snapshot deltas "by year" exactly as
// Section VI-A does with the real DBLP/CITH/YOUTU attributes.
type Dataset struct {
	Name string
	// Base is the oldest snapshot (the graph G the old similarities are
	// computed on).
	Base *graph.DiGraph
	// Arrivals are the edges that land after Base, in arrival order;
	// Snapshot deltas are prefixes of this stream.
	Arrivals []graph.Edge
	// K is the iteration count the paper uses on this dataset (15
	// everywhere, 5 on the large YOUTU).
	K int
	// SVDFeasible mirrors the paper's observation that Inc-SVD crashes on
	// the largest dataset: experiments skip Inc-SVD when false.
	SVDFeasible bool
}

// Delta returns the first k arrival edges as an insertion stream.
func (d *Dataset) Delta(k int) []graph.Update {
	if k > len(d.Arrivals) {
		k = len(d.Arrivals)
	}
	ups := make([]graph.Update, k)
	for i := 0; i < k; i++ {
		ups[i] = graph.Update{Edge: d.Arrivals[i], Insert: true}
	}
	return ups
}

// splitStream builds a dataset by generating a preferential-attachment
// stream and holding out the last holdout edges as future arrivals.
func splitStream(name string, n, outDeg int, holdout int, seed int64, k int, svdOK bool) *Dataset {
	full, arrivals := PrefAttachStream(n, outDeg, seed)
	if holdout > len(arrivals) {
		holdout = len(arrivals) / 2
	}
	cut := len(arrivals) - holdout
	base := graph.New(n)
	for _, e := range arrivals[:cut] {
		base.AddEdge(e.From, e.To)
	}
	_ = full
	return &Dataset{
		Name:        name,
		Base:        base,
		Arrivals:    arrivals[cut:],
		K:           k,
		SVDFeasible: svdOK,
	}
}

// DBLPSim is the scaled stand-in for the DBLP co-citation snapshots
// (paper: 13,634 nodes / 93,560 edges; here ~1/18 scale, same evolution
// mechanism). K = 15 as in the paper.
func DBLPSim() *Dataset { return splitStream("DBLP-sim", 750, 8, 600, 101, 15, true) }

// CitHSim is the stand-in for cit-HepPh (denser than DBLPSim, matching the
// paper's density ordering). K = 15.
func CitHSim() *Dataset { return splitStream("CitH-sim", 1100, 10, 900, 202, 15, true) }

// YouTuSim is the stand-in for the YouTube related-video graph: the
// largest of the three, on which the paper reports Inc-SVD fails with a
// memory crash — mirrored here by SVDFeasible=false. K = 5 as in the
// paper. Related-video links are less citation-like, so a fraction of
// random rewiring is layered on top of preferential attachment.
func YouTuSim() *Dataset {
	d := splitStream("YouTu-sim", 2300, 11, 1800, 303, 5, false)
	// Random rewiring: related-video lists also link sideways.
	rng := rand.New(rand.NewSource(304))
	n := d.Base.N()
	for k := 0; k < n/4; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			d.Base.AddEdge(i, j)
		}
	}
	return d
}

// SmallDatasets returns reduced-size variants of the three dataset
// simulators for unit tests and quick benchmarks: same generators, ~¼ the
// nodes.
func SmallDatasets() []*Dataset {
	return []*Dataset{
		splitStream("DBLP-small", 120, 6, 100, 111, 10, true),
		splitStream("CitH-small", 170, 7, 140, 222, 10, true),
		splitStream("YouTu-small", 240, 7, 200, 333, 5, false),
	}
}

// Datasets returns the three full-size dataset simulators in the paper's
// order.
func Datasets() []*Dataset {
	return []*Dataset{DBLPSim(), CitHSim(), YouTuSim()}
}

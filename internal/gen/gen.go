// Package gen builds the synthetic workloads of the evaluation: random
// (Erdős–Rényi) and preferential-attachment digraphs, timestamped evolving
// snapshot streams standing in for the paper's DBLP/CITH/YOUTU dumps, and
// insert/delete update streams in the style of GraphGen (Section VI-A).
//
// Every generator is deterministic given its seed, so experiments and
// benchmarks are reproducible run to run.
package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// ER returns an Erdős–Rényi style digraph with n nodes and exactly m
// distinct edges (self-loops excluded), drawn uniformly.
func ER(n, m int, seed int64) *graph.DiGraph {
	if max := n * (n - 1); m > max {
		m = max
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.M() < m {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			g.AddEdge(i, j)
		}
	}
	return g
}

// PrefAttach returns a citation-style digraph grown by preferential
// attachment (the linkage generation model of the paper's reference [20]):
// nodes arrive in order; node t issues up to outDeg citations to earlier
// nodes, chosen proportionally to in-degree+1 — yielding the power-law
// in-degree profile of real citation networks.
func PrefAttach(n, outDeg int, seed int64) *graph.DiGraph {
	g, _ := PrefAttachStream(n, outDeg, seed)
	return g
}

// PrefAttachStream is PrefAttach but also returns the edge arrival order,
// which snapshot streams slice into "years".
func PrefAttachStream(n, outDeg int, seed int64) (*graph.DiGraph, []graph.Edge) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	var arrivals []graph.Edge
	// urn holds each node once (base weight 1) plus once per in-edge, so a
	// uniform draw from urn[:limit] is preferential sampling in O(1).
	urn := make([]int, 0, n*(outDeg+1))
	urn = append(urn, 0)
	for t := 1; t < n; t++ {
		cites := outDeg
		if t < outDeg {
			cites = t
		}
		limit := len(urn) // only nodes < t are in the urn so far
		for c := 0; c < cites; c++ {
			target := -1
			for attempt := 0; attempt < 12; attempt++ {
				cand := urn[rng.Intn(limit)]
				if !g.HasEdge(t, cand) {
					target = cand
					break
				}
			}
			if target < 0 {
				// Fallback: first non-duplicate earlier node.
				for v := 0; v < t; v++ {
					if !g.HasEdge(t, v) {
						target = v
						break
					}
				}
			}
			if target < 0 {
				break
			}
			g.AddEdge(t, target)
			arrivals = append(arrivals, graph.Edge{From: t, To: target})
			urn = append(urn, target)
		}
		urn = append(urn, t)
	}
	return g, arrivals
}

// InsertStream returns k edge insertions applicable in sequence to g
// (g is not modified; the stream references a scratch clone).
func InsertStream(g *graph.DiGraph, k int, seed int64) []graph.Update {
	rng := rand.New(rand.NewSource(seed))
	scratch := g.Clone()
	n := scratch.N()
	ups := make([]graph.Update, 0, k)
	for len(ups) < k {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || scratch.HasEdge(i, j) {
			continue
		}
		scratch.AddEdge(i, j)
		ups = append(ups, graph.Update{Edge: graph.Edge{From: i, To: j}, Insert: true})
	}
	return ups
}

// DeleteStream returns k edge deletions applicable in sequence to g.
func DeleteStream(g *graph.DiGraph, k int, seed int64) []graph.Update {
	rng := rand.New(rand.NewSource(seed))
	scratch := g.Clone()
	ups := make([]graph.Update, 0, k)
	for len(ups) < k && scratch.M() > 0 {
		es := scratch.Edges()
		e := es[rng.Intn(len(es))]
		scratch.RemoveEdge(e.From, e.To)
		ups = append(ups, graph.Update{Edge: e, Insert: false})
	}
	return ups
}

// MixedStream returns k updates mixing insertions and deletions with the
// given insert fraction.
func MixedStream(g *graph.DiGraph, k int, insertFrac float64, seed int64) []graph.Update {
	rng := rand.New(rand.NewSource(seed))
	scratch := g.Clone()
	n := scratch.N()
	ups := make([]graph.Update, 0, k)
	for len(ups) < k {
		if rng.Float64() < insertFrac || scratch.M() == 0 {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || scratch.HasEdge(i, j) {
				continue
			}
			scratch.AddEdge(i, j)
			ups = append(ups, graph.Update{Edge: graph.Edge{From: i, To: j}, Insert: true})
		} else {
			es := scratch.Edges()
			e := es[rng.Intn(len(es))]
			scratch.RemoveEdge(e.From, e.To)
			ups = append(ups, graph.Update{Edge: e, Insert: false})
		}
	}
	return ups
}

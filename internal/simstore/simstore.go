// Package simstore provides the pluggable similarity-store backends the
// engine keeps its SimRank matrix S in. The store is the memory wall of
// the whole system — S is Θ(n²) output — so the backend choice decides
// which graphs are servable at all:
//
//   - dense:  the classic row-major n×n float64 matrix (8n² bytes), the
//     bit-exact baseline every other backend is measured against;
//   - packed: symmetric upper-triangular storage (8·n(n+1)/2 ≈ 4n²
//     bytes) — SimRank's S is symmetric, so the dense layout stores every
//     off-diagonal score twice; packed halves that while keeping the
//     exact incremental-update machinery (every write flows through the
//     symmetric AddSym, landing on one backing cell);
//   - approx: no materialized S at all — a Monte-Carlo sampling tier
//     over a stored-walk index (internal/montecarlo), O(n·(W·L + d))
//     memory, answering queries by reading the meeting points of stored
//     coalescing reverse walks with a reported standard error. Writable
//     through the graph: an edge update repairs exactly the invalidated
//     walk suffixes (ApplyUpdate), bit-identical to a fresh rebuild at
//     the same seed.
//
// The exact stores (dense, packed) satisfy internal/core.SimStore, so
// Inc-SR/Inc-uSR run unmodified against either; the approx store has no
// matrix cells for those exact write-backs (Set/Add/AddSym panic), so
// the engine routes its writes through ApplyUpdate instead.
package simstore

import (
	"errors"
	"fmt"

	"repro/internal/matrix"
	"repro/internal/metrics"
)

// Backend names a similarity-store implementation.
type Backend string

const (
	// BackendDense is the n×n row-major float64 store (8n² bytes).
	BackendDense Backend = "dense"
	// BackendPacked is the symmetric upper-triangular store (≈4n² bytes).
	BackendPacked Backend = "packed"
	// BackendApprox is the Monte-Carlo stored-walk sampling tier
	// (O(n·(W·L+d)) bytes, writable via incremental walk repair).
	BackendApprox Backend = "approx"
)

// ParseBackend validates a backend name ("" selects dense), the single
// parser behind Options.Backend and the simrankd -backend flag.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", BackendDense:
		return BackendDense, nil
	case BackendPacked:
		return BackendPacked, nil
	case BackendApprox:
		return BackendApprox, nil
	}
	return "", fmt.Errorf("simstore: unknown backend %q (want dense, packed or approx)", s)
}

// Store is a similarity matrix S behind an interface, so the engine, the
// batch kernel, snapshots and the HTTP server are all backend-agnostic.
// Every store is square (n×n) and logically symmetric.
//
// Concurrency: At, ConcurrentRow and UpperRow are safe for concurrent
// readers. Row and ColInto may use store-internal scratch — they belong
// to the single-writer update path, and a returned row view is valid
// only until the next Row/ColInto call or mutation. All mutations
// require exclusive access.
//
// # The Seal/Writable copy-on-write contract
//
// Seal returns an immutable point-in-time view of the store: the MVCC
// read path publishes one per epoch, and any number of readers may query
// it concurrently while the single writer keeps mutating the original.
// Sealing is cheap — it shares the backing payload — and the writer
// copies only what it is about to change:
//
//   - dense double-buffers: the first write after a Seal flips to the
//     second n×n buffer, re-syncing just the rows that went stale since
//     that buffer last held the front (the dirty sets reported through
//     MarkRowsDirty), so a warm writer re-uses two fixed buffers and
//     stays allocation-free;
//   - packed copy-on-writes its triangle in row-aligned chunks: sealed
//     views share every chunk, and the writer duplicates a chunk the
//     first time it lands a write in it after a Seal;
//   - approx copy-on-writes per node: a sealed view shares every node's
//     stored walks, and the writer clones one node's walk row the first
//     time a repair touches it after a Seal.
//
// Writers that mutate a sealable store outside the incremental core must
// report every row of S they wrote via MarkRowsDirty before the next
// Seal — the dense double-buffer syncs exactly those rows on its next
// flip. The engine threads core.Stats.DirtyRows through after each
// update; wholesale rewrites (recompute) use the backend's own
// mark-everything hook. A store that has never been sealed pays nothing
// for any of this: MarkRowsDirty is a no-op and the write paths skip the
// copy-on-write checks' slow half entirely.
//
// # The concurrent write-back contract
//
// The exact stores additionally implement core.ConcurrentWriteStore,
// which the row-parallel incremental write-back uses to mutate disjoint
// cells from several goroutines at once:
//
//   - BeginConcurrentWrites runs once, serially, before the fan-out and
//     performs any internal transition that must not race — the dense
//     store runs its pending double-buffer flip here, so the concurrent
//     Add calls that follow are plain cell writes; the packed store has
//     nothing to flip (chunk COW is per-write) but relies on alignment.
//     Its return value reports whether the layout stores both triangles
//     (dense: true), in which case the caller writes each pair's
//     canonical upper cell first and lands the mirrors in a separate
//     phase, so no cell is ever touched by two goroutines.
//   - AlignConcurrentBoundary rounds a row-partition boundary up to the
//     store's concurrent-write granularity: dense returns it unchanged
//     (any row split works); packed rounds up to the next chunk-start
//     row, because a write may duplicate (COW) its whole chunk and two
//     goroutines must never share one.
//
// The approx store is not a ConcurrentWriteStore — its writes flow
// through ApplyUpdate, which parallelizes internally across affected
// walks (SetWorkers) — and any store without the interface simply gets
// the serial write-back.
type Store interface {
	// N returns the node count.
	N() int
	// At returns s(i, j). On the approx backend this is a sampling
	// estimate — a deterministic pure read of the stored walks.
	At(i, j int) float64
	// Set writes entry (i, j); symmetric layouts alias the mirror entry.
	Set(i, j int, v float64)
	// Add accumulates v into entry (i, j).
	Add(i, j int, v float64)
	// AddSym applies v·(e_i·e_jᵀ + e_j·e_iᵀ): both mirror entries
	// accumulate v (the diagonal twice) — the one mutation shape of the
	// incremental write-backs; see core.SimStore.
	AddSym(i, j int, v float64)
	// Row returns row i as a view that may alias internal scratch (see
	// the concurrency note above).
	Row(i int) []float64
	// ConcurrentRow returns row i in a form safe under concurrent
	// readers: an immutable alias (dense) or a fresh copy (packed,
	// approx).
	ConcurrentRow(i int) []float64
	// UpperRow returns the entries (a, a), (a, a+1), …, (a, n−1) as a
	// race-free alias of backing storage — the global top-k scan shape.
	// Exact stores only; the approx store panics.
	UpperRow(a int) []float64
	// ColInto copies column j into dst (single-writer path; symmetric
	// layouts serve it from row storage).
	ColInto(dst []float64, j int)
	// Clone returns an independent deep copy.
	Clone() Store
	// ToDense materializes the full matrix, or nil when that is the
	// point of the backend not to (approx).
	ToDense() *matrix.Dense
	// AddNodes returns a store over n+count nodes: old scores preserved,
	// new rows zero except s(v, v) = diag (the approx backend grows its
	// walk index in place — diag is implicit, s(v,v) = 1 by definition —
	// and returns the receiver).
	AddNodes(count int, diag float64) Store
	// MemBytes reports the store's resident size in bytes — the
	// /stats "store_bytes" figure. The serving payload only: the dense
	// backend's transient MVCC double-buffer is not counted (it is the
	// writer's cost, not the view's).
	MemBytes() int64
	// Backend names the implementation.
	Backend() Backend
	// Seal returns an immutable point-in-time view of the store, safe
	// for any number of concurrent readers; see the package contract
	// above. Sealing an already-sealed view returns the receiver.
	//
	// Dense caveat: the double-buffer recycles the buffer of the
	// second-newest view, so before the first write after a Seal the
	// caller must either know that every older view has no readers left
	// or call (*Dense).AbandonBack to orphan the buffer to the GC.
	// Packed and approx views are intrinsically safe at any age.
	Seal() Store
	// Writable reports whether the receiver accepts mutation: false for
	// sealed views.
	Writable() bool
	// MarkRowsDirty reports rows of S written since the last Seal (or
	// the last MarkRowsDirty call) — the dense double-buffer's re-sync
	// set. No-op on backends that track sharing themselves (packed,
	// approx), and on stores never sealed.
	MarkRowsDirty(rows []int)
}

// Sampler is the optional query surface of sampling backends: top-k by
// estimation with refinement, and per-pair standard errors. The engine
// routes queries through it when the store provides it.
type Sampler interface {
	// TopKRow estimates the k nodes most similar to a, highest first.
	TopKRow(a, k int) []metrics.Pair
	// PairStderr estimates s(a, b) together with the standard error of
	// the estimate.
	PairStderr(a, b int) (est, stderr float64)
}

// New constructs an empty (all-zero) exact store of the given backend.
// The approx backend is graph-backed and has its own constructor
// (NewApprox); requesting it here is an error.
func New(b Backend, n int) (Store, error) {
	switch b {
	case "", BackendDense:
		return NewDense(n), nil
	case BackendPacked:
		return NewPacked(n), nil
	case BackendApprox:
		return nil, errors.New("simstore: approx stores are built from a graph; use NewApprox")
	}
	return nil, fmt.Errorf("simstore: unknown backend %q", b)
}

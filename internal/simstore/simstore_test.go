package simstore

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// randSym returns a random symmetric n×n matrix.
func randSym(rng *rand.Rand, n int) *matrix.Dense {
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// exactStores builds a dense and a packed store holding the same
// symmetric content.
func exactStores(src *matrix.Dense) (*Dense, *Packed) {
	d := WrapDense(src.Clone())
	p := NewPacked(src.Rows)
	p.SetFromDense(src)
	return d, p
}

// Packed must agree with dense on every access path when both hold the
// same symmetric content and receive the same mutation stream.
func TestPackedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 17
	d, p := exactStores(randSym(rng, n))

	// A mutation stream through the SimStore surface: AddSym everywhere
	// (the incremental write-back shape), including diagonals.
	for step := 0; step < 200; step++ {
		i, j, v := rng.Intn(n), rng.Intn(n), rng.NormFloat64()
		d.AddSym(i, j, v)
		p.AddSym(i, j, v)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d.At(i, j) != p.At(i, j) {
				t.Fatalf("At(%d,%d): dense %v, packed %v", i, j, d.At(i, j), p.At(i, j))
			}
		}
	}
	// Row, ConcurrentRow, UpperRow, ColInto all agree.
	col := make([]float64, n)
	pcol := make([]float64, n)
	for i := 0; i < n; i++ {
		drow, prow := d.Row(i), p.Row(i)
		crow := p.ConcurrentRow(i)
		for j := 0; j < n; j++ {
			if drow[j] != prow[j] || drow[j] != crow[j] {
				t.Fatalf("row %d col %d: dense %v packed %v concurrent %v", i, j, drow[j], prow[j], crow[j])
			}
		}
		du, pu := d.UpperRow(i), p.UpperRow(i)
		if len(du) != len(pu) {
			t.Fatalf("UpperRow(%d) lengths %d vs %d", i, len(du), len(pu))
		}
		for k := range du {
			if du[k] != pu[k] {
				t.Fatalf("UpperRow(%d)[%d]: %v vs %v", i, k, du[k], pu[k])
			}
		}
		d.ColInto(col, i)
		p.ColInto(pcol, i)
		for j := 0; j < n; j++ {
			if col[j] != pcol[j] {
				t.Fatalf("ColInto(%d)[%d]: %v vs %v", i, j, col[j], pcol[j])
			}
		}
	}
	// ToDense round-trips.
	if diff := matrix.MaxAbsDiff(d.ToDense(), p.ToDense()); diff != 0 {
		t.Fatalf("ToDense differs by %v", diff)
	}
}

// AddSym's diagonal contract: two sequential adds, ((x+v)+v), on every
// backend — the bit pattern the dense write-back always produced.
func TestAddSymDiagonalTwoSequentialAdds(t *testing.T) {
	const x, v = 0.1, 0.3 // (x+v)+v != x+2v in float64
	want := (x + v) + v
	for _, s := range []Store{NewDense(3), NewPacked(3)} {
		s.Set(1, 1, x)
		s.AddSym(1, 1, v)
		if got := s.At(1, 1); got != want {
			t.Fatalf("%s diagonal AddSym = %v, want %v", s.Backend(), got, want)
		}
	}
}

// AddNodes must preserve old scores and initialize new diagonals.
func TestAddNodesExtendsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, extra, diag = 9, 4, 0.4
	src := randSym(rng, n)
	d, p := exactStores(src)
	for _, grown := range []Store{d.AddNodes(extra, diag), p.AddNodes(extra, diag)} {
		if grown.N() != n+extra {
			t.Fatalf("%s AddNodes size %d, want %d", grown.Backend(), grown.N(), n+extra)
		}
		for i := 0; i < n+extra; i++ {
			for j := 0; j < n+extra; j++ {
				want := 0.0
				switch {
				case i < n && j < n:
					want = src.At(i, j)
				case i == j:
					want = diag
				}
				if got := grown.At(i, j); got != want {
					t.Fatalf("%s grown At(%d,%d) = %v, want %v", grown.Backend(), i, j, got, want)
				}
			}
		}
	}
}

// Clone must be independent of the original.
func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, p := exactStores(randSym(rng, 8))
	for _, s := range []Store{d, p} {
		c := s.Clone()
		before := s.At(2, 5)
		c.AddSym(2, 5, 1)
		if s.At(2, 5) != before {
			t.Fatalf("%s clone aliases the original", s.Backend())
		}
	}
}

// The packed payload must come in at about half the dense bytes — the
// point of the backend. At n = 2000 the acceptance bar is ≤ 55%.
func TestPackedMemBytesHalvesDense(t *testing.T) {
	const n = 2000
	d, p := NewDense(n), NewPacked(n)
	ratio := float64(p.MemBytes()) / float64(d.MemBytes())
	if ratio > 0.55 {
		t.Fatalf("packed/dense store bytes = %.4f at n=%d, want ≤ 0.55 (packed %d, dense %d)",
			ratio, n, p.MemBytes(), d.MemBytes())
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendDense, true},
		{"dense", BackendDense, true},
		{"packed", BackendPacked, true},
		{"approx", BackendApprox, true},
		{"sparse", "", false},
	} {
		got, err := ParseBackend(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// The approx store has no matrix cells, so the exact write-back surface
// (Set/Add/AddSym, the triangle scan) panics if reached — writes go
// through ApplyUpdate/AddNodes/Recompute instead, and the engine routes
// them there.
func TestApproxExactWritebacksPanic(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	a, err := NewApprox(g, 0.6, 5, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"Set":      func() { a.Set(0, 1, 1) },
		"Add":      func() { a.Add(0, 1, 1) },
		"AddSym":   func() { a.AddSym(0, 1, 1) },
		"UpperRow": func() { a.UpperRow(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("approx %s did not panic", name)
				}
			}()
			f()
		}()
	}
	if a.ToDense() != nil {
		t.Fatal("approx ToDense should refuse materialization with nil")
	}
	if a.Clone() == Store(a) {
		t.Fatal("approx Clone must be an independent deep copy now that the store is writable")
	}
}

// The graph-level write surface works and matches a fresh rebuild:
// ApplyUpdate repairs, AddNodes grows in place, Recompute resamples —
// all landing on the same pure function of (graph, seed).
func TestApproxWritableSurface(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	a, err := NewApprox(g, 0.6, 5, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Writable() {
		t.Fatal("writer store must be writable")
	}
	up := graph.Update{Edge: graph.Edge{From: 3, To: 1}, Insert: true}
	g.Apply(up)
	dirty := a.ApplyUpdate(up)
	if len(dirty) == 0 {
		t.Fatal("inserting an in-edge of a live node should dirty some walk rows")
	}
	if a.RepairGen() != 1 {
		t.Fatalf("repair generation = %d, want 1", a.RepairGen())
	}
	if a.AddNodes(2, 0.4) != Store(a) {
		t.Fatal("approx AddNodes grows in place and returns the receiver")
	}
	g.AddNodes(2)
	fresh, err := NewApprox(g, 0.6, 5, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if a.At(i, j) != fresh.At(i, j) {
				t.Fatalf("s(%d,%d): repaired %v vs rebuilt %v", i, j, a.At(i, j), fresh.At(i, j))
			}
		}
	}
	if repaired, _ := a.RepairStats(); repaired == 0 {
		t.Fatal("repair counters must advance")
	}
	if f := a.ResampleFraction(); f <= 0 || f > 1 {
		t.Fatalf("resample fraction %v outside (0,1]", f)
	}
}

// Approx stores walks, not a matrix: memory is O(n·(W·L + d)), far
// below the dense n² wall at serving sizes (here walk rows ≈ n·W·(L+1)
// ·4 bytes + postings vs 8n² dense — about an order of magnitude).
func TestApproxMemBytesLinear(t *testing.T) {
	const n = 4096
	g := graph.New(n)
	rng := rand.New(rand.NewSource(4))
	for g.M() < 3*n {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	a, err := NewApprox(g, 0.6, 10, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	dense := int64(n) * int64(n) * 8
	if a.MemBytes() >= dense/10 {
		t.Fatalf("approx store reports %d bytes; expected far below the dense %d", a.MemBytes(), dense)
	}
}

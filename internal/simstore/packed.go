package simstore

import "repro/internal/matrix"

// Packed stores the symmetric S in upper-triangular row-major packed
// form: entry (i, j) with i ≤ j lives at start[i] + (j − i), for
// n(n+1)/2 float64s total — 8·n(n+1)/2 bytes, just over half the dense
// layout's 8n². Both mirror entries of a pair share one cell, so the
// symmetric write-backs of Inc-SR/Inc-uSR (AddSym) touch half the
// memory, and the store halves the serving footprint of every exact
// engine.
//
// The triangle is held in row-aligned chunks (each chunk a run of whole
// rows' packed segments, ~packedChunkFloats floats) so the store can be
// sealed copy-on-write for the MVCC read path: Seal shares every chunk
// with the returned immutable view, and the writer duplicates a chunk
// the first time it lands a write in it after a Seal. A store that is
// never sealed never copies a chunk — the exact-update hot path stays
// allocation-free — and a sealed view's chunks are never written in
// place, so any number of views of any age read safely with no reader
// tracking at all.
//
// Row materializes into a single reusable scratch buffer (allocated at
// construction), preserving the warm-Apply zero-allocation guarantee;
// concurrent readers must use ConcurrentRow/UpperRow/At, which never
// touch the scratch.
type Packed struct {
	n     int
	start []int // start[i] = packed offset of (i, i)

	// Chunked triangle payload. rowChunk[i] names the chunk holding row
	// i's packed segment; chunkOff[c] is the global packed offset where
	// chunk c begins. All three index tables are immutable after
	// construction and shared with sealed views.
	rowChunk []int
	chunkOff []int
	chunks   [][]float64

	// owned is nil until the first Seal (never-sealed stores skip COW
	// entirely); afterwards owned[c] reports that chunk c is exclusively
	// the writer's. Seal clears it; a write into a shared chunk
	// duplicates the chunk first.
	owned []bool

	// sealed marks this instance as an immutable view: every mutation
	// panics, Seal returns the receiver, Row materializes fresh.
	sealed bool

	row []float64 // scratch for Row (single-writer contract)
}

// packedChunkFloats is the COW granularity target: ~64 KiB of payload
// per chunk. Chunks hold whole rows so UpperRow can keep returning a
// contiguous alias; a single row longer than the target becomes its own
// chunk.
const packedChunkFloats = 8192

// NewPacked returns a zeroed n-node packed store.
func NewPacked(n int) *Packed {
	if n < 0 {
		panic("simstore: negative node count")
	}
	p := &Packed{
		n:        n,
		start:    make([]int, n),
		rowChunk: make([]int, n),
		row:      make([]float64, n),
	}
	off := 0
	for i := 0; i < n; i++ {
		p.start[i] = off
		off += n - i
	}
	// Cut the triangle into runs of whole rows of ~packedChunkFloats.
	chunkFirst := 0
	for i := 0; i < n; i++ {
		if i > chunkFirst && p.start[i]+n-i-p.start[chunkFirst] > packedChunkFloats {
			p.chunkOff = append(p.chunkOff, p.start[chunkFirst])
			p.chunks = append(p.chunks, make([]float64, p.start[i]-p.start[chunkFirst]))
			chunkFirst = i
		}
		p.rowChunk[i] = len(p.chunks)
	}
	if n > 0 {
		p.chunkOff = append(p.chunkOff, p.start[chunkFirst])
		p.chunks = append(p.chunks, make([]float64, off-p.start[chunkFirst]))
	}
	return p
}

// idx maps (i, j) to its global packed offset, folding the lower
// triangle onto the upper one.
func (p *Packed) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return p.start[i] + j - i
}

// loc resolves (i, j) to its chunk and in-chunk offset.
func (p *Packed) loc(i, j int) (c, off int) {
	if i > j {
		i, j = j, i
	}
	c = p.rowChunk[i]
	return c, p.start[i] + j - i - p.chunkOff[c]
}

// ensureOwned duplicates chunk c if it is shared with a sealed view, so
// the coming write cannot race that view's readers.
func (p *Packed) ensureOwned(c int) {
	if p.sealed {
		panic("simstore: write to a sealed packed view")
	}
	if p.owned != nil && !p.owned[c] {
		dup := make([]float64, len(p.chunks[c]))
		copy(dup, p.chunks[c])
		p.chunks[c] = dup
		p.owned[c] = true
	}
}

// Seal returns an immutable view sharing every chunk; subsequent writes
// to the receiver copy-on-write the chunks they touch.
func (p *Packed) Seal() Store {
	if p.sealed {
		return p
	}
	if p.owned == nil {
		p.owned = make([]bool, len(p.chunks))
	} else {
		for c := range p.owned {
			p.owned[c] = false
		}
	}
	view := &Packed{
		n:        p.n,
		start:    p.start,
		rowChunk: p.rowChunk,
		chunkOff: p.chunkOff,
		chunks:   append([][]float64(nil), p.chunks...),
		sealed:   true,
	}
	return view
}

// Writable reports whether the receiver accepts mutation.
func (p *Packed) Writable() bool { return !p.sealed }

// MarkRowsDirty is a no-op: chunk sharing is tracked by the store
// itself, write by write.
func (p *Packed) MarkRowsDirty([]int) {}

// N returns the node count.
func (p *Packed) N() int { return p.n }

// At returns s(i, j) — pure index arithmetic, safe for concurrent
// readers.
func (p *Packed) At(i, j int) float64 {
	c, off := p.loc(i, j)
	return p.chunks[c][off]
}

// Set writes the shared cell of the unordered pair {i, j}.
func (p *Packed) Set(i, j int, v float64) {
	c, off := p.loc(i, j)
	if p.sealed || p.owned != nil {
		p.ensureOwned(c)
	}
	p.chunks[c][off] = v
}

// Add accumulates v into the shared cell of {i, j}.
func (p *Packed) Add(i, j int, v float64) {
	c, off := p.loc(i, j)
	if p.sealed || p.owned != nil {
		p.ensureOwned(c)
	}
	p.chunks[c][off] += v
}

// AddSym applies v·(e_i·e_jᵀ + e_j·e_iᵀ). Off-diagonal the two mirror
// entries are one packed cell, which accumulates v once; the diagonal is
// bumped twice (two sequential adds), matching the dense layout's
// ((x+v)+v) bit for bit.
func (p *Packed) AddSym(i, j int, v float64) {
	c, off := p.loc(i, j)
	if p.sealed || p.owned != nil {
		p.ensureOwned(c)
	}
	p.chunks[c][off] += v
	if i == j {
		p.chunks[c][off] += v
	}
}

// BeginConcurrentWrites readies the store for the row-parallel update
// write-back (core.ConcurrentWriteStore). There is no up-front flip —
// chunk copy-on-write happens write by write — but concurrent owners
// must never share a chunk, which partitions aligned through
// AlignConcurrentBoundary guarantee: a pair {a, b}'s cell lives in row
// min(a, b)'s chunk, so every write (including a COW duplication of the
// chunk and its owned-bit update) stays inside the owning worker's
// chunks. Returns false: a pair's mirror entries share one packed cell,
// so AddSym is already a single-cell write and no mirror phase exists.
func (p *Packed) BeginConcurrentWrites() bool {
	if p.sealed {
		panic("simstore: write to a sealed packed view")
	}
	return false
}

// AlignConcurrentBoundary rounds r up to the next chunk-start row (or
// n): writing any cell of a chunk may duplicate the whole chunk, so a
// partition boundary inside a chunk would let two goroutines race on
// it.
func (p *Packed) AlignConcurrentBoundary(r int) int {
	for r > 0 && r < p.n && p.rowChunk[r] == p.rowChunk[r-1] {
		r++
	}
	return r
}

// upperSeg returns the contiguous packed segment of row i — (i, i), …,
// (i, n−1) — aliasing chunk storage. Chunks hold whole rows, so the
// segment never straddles a chunk boundary.
func (p *Packed) upperSeg(i int) []float64 {
	c := p.rowChunk[i]
	off := p.start[i] - p.chunkOff[c]
	return p.chunks[c][off : off+p.n-i]
}

// rowInto materializes row i into dst: the prefix j < i gathers the
// column stored in earlier rows' cells, the suffix j ≥ i is the
// contiguous packed segment.
func (p *Packed) rowInto(dst []float64, i int) {
	for j := 0; j < i; j++ {
		c := p.rowChunk[j]
		dst[j] = p.chunks[c][p.start[j]+i-j-p.chunkOff[c]]
	}
	copy(dst[i:], p.upperSeg(i))
}

// Row materializes row i into the store's scratch buffer. The view is
// valid until the next Row/ColInto call — the single-writer contract of
// core.SimStore — and allocates nothing. On a sealed view (which has no
// scratch, because concurrent readers would race on it) Row allocates a
// fresh slice per call.
func (p *Packed) Row(i int) []float64 {
	if p.sealed {
		return p.ConcurrentRow(i)
	}
	p.rowInto(p.row, i)
	return p.row
}

// ConcurrentRow materializes row i into a fresh slice, safe under
// concurrent readers (one O(n) copy per cold query row is the packed
// backend's read-path trade).
func (p *Packed) ConcurrentRow(i int) []float64 {
	out := make([]float64, p.n)
	p.rowInto(out, i)
	return out
}

// UpperRow returns the packed segment (a, a), …, (a, n−1) aliasing
// storage: race-free and copy-free, the global top-k scan shape.
// Callers must not write through it on a store that has been sealed
// (snapshot restore fills a fresh store through it, which is fine).
func (p *Packed) UpperRow(a int) []float64 { return p.upperSeg(a) }

// ColInto copies column j into dst — by symmetry, row j.
func (p *Packed) ColInto(dst []float64, j int) { p.rowInto(dst, j) }

// Clone returns an independent writable deep copy.
func (p *Packed) Clone() Store {
	c := NewPacked(p.n)
	for i := range p.chunks {
		copy(c.chunks[i], p.chunks[i])
	}
	return c
}

// ToDense materializes the full symmetric matrix.
func (p *Packed) ToDense() *matrix.Dense {
	d := matrix.NewDense(p.n, p.n)
	for i := 0; i < p.n; i++ {
		p.rowInto(d.Row(i), i)
	}
	return d
}

// SetFromDense overwrites the store with src's upper triangle (src must
// be n×n; the batch kernel's output is symmetric up to rounding, and the
// packed store canonicalizes on the upper entries).
func (p *Packed) SetFromDense(src *matrix.Dense) {
	if src.Rows != p.n || src.Cols != p.n {
		panic("simstore: SetFromDense dimension mismatch")
	}
	for i := 0; i < p.n; i++ {
		if p.sealed || p.owned != nil {
			p.ensureOwned(p.rowChunk[i])
		}
		copy(p.upperSeg(i), src.Row(i)[i:])
	}
}

// AddNodes returns a packed store over n+count nodes: each old row's
// packed segment is copied into the prefix of its new (longer) segment,
// new diagonals get diag. The result is a fresh, never-sealed store.
func (p *Packed) AddNodes(count int, diag float64) Store {
	next := NewPacked(p.n + count)
	for i := 0; i < p.n; i++ {
		copy(next.upperSeg(i)[:p.n-i], p.upperSeg(i))
	}
	for v := p.n; v < next.n; v++ {
		next.Set(v, v, diag)
	}
	return next
}

// MemBytes reports the packed payload plus the offset tables and row
// scratch — ≈ 4n² + 24n bytes, about half of dense.
func (p *Packed) MemBytes() int64 {
	var payload int64
	for _, c := range p.chunks {
		payload += int64(len(c))
	}
	return payload*8 + int64(len(p.start)+len(p.rowChunk)+len(p.chunkOff))*8 + int64(len(p.row))*8
}

// Backend names the implementation.
func (p *Packed) Backend() Backend { return BackendPacked }

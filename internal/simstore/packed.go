package simstore

import "repro/internal/matrix"

// Packed stores the symmetric S in upper-triangular row-major packed
// form: entry (i, j) with i ≤ j lives at start[i] + (j − i), for
// n(n+1)/2 float64s total — 8·n(n+1)/2 bytes, just over half the dense
// layout's 8n². Both mirror entries of a pair share one cell, so the
// symmetric write-backs of Inc-SR/Inc-uSR (AddSym) touch half the
// memory, and the store halves the serving footprint of every exact
// engine.
//
// Row materializes into a single reusable scratch buffer (allocated at
// construction), preserving the warm-Apply zero-allocation guarantee;
// concurrent readers must use ConcurrentRow/UpperRow/At, which never
// touch the scratch.
type Packed struct {
	n     int
	start []int     // start[i] = packed offset of (i, i)
	data  []float64 // len n(n+1)/2, upper triangle row-major
	row   []float64 // scratch for Row (single-writer contract)
}

// NewPacked returns a zeroed n-node packed store.
func NewPacked(n int) *Packed {
	if n < 0 {
		panic("simstore: negative node count")
	}
	p := &Packed{
		n:     n,
		start: make([]int, n),
		data:  make([]float64, n*(n+1)/2),
		row:   make([]float64, n),
	}
	off := 0
	for i := 0; i < n; i++ {
		p.start[i] = off
		off += n - i
	}
	return p
}

// idx maps (i, j) to its packed offset, folding the lower triangle onto
// the upper one.
func (p *Packed) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return p.start[i] + j - i
}

// N returns the node count.
func (p *Packed) N() int { return p.n }

// At returns s(i, j) — pure index arithmetic, safe for concurrent
// readers.
func (p *Packed) At(i, j int) float64 { return p.data[p.idx(i, j)] }

// Set writes the shared cell of the unordered pair {i, j}.
func (p *Packed) Set(i, j int, v float64) { p.data[p.idx(i, j)] = v }

// Add accumulates v into the shared cell of {i, j}.
func (p *Packed) Add(i, j int, v float64) { p.data[p.idx(i, j)] += v }

// AddSym applies v·(e_i·e_jᵀ + e_j·e_iᵀ). Off-diagonal the two mirror
// entries are one packed cell, which accumulates v once; the diagonal is
// bumped twice (two sequential adds), matching the dense layout's
// ((x+v)+v) bit for bit.
func (p *Packed) AddSym(i, j int, v float64) {
	k := p.idx(i, j)
	p.data[k] += v
	if i == j {
		p.data[k] += v
	}
}

// rowInto materializes row i into dst: the prefix j < i gathers the
// column stored in earlier rows' cells, the suffix j ≥ i is the
// contiguous packed segment.
func (p *Packed) rowInto(dst []float64, i int) {
	for j := 0; j < i; j++ {
		dst[j] = p.data[p.start[j]+i-j]
	}
	copy(dst[i:], p.data[p.start[i]:p.start[i]+p.n-i])
}

// Row materializes row i into the store's scratch buffer. The view is
// valid until the next Row/ColInto call — the single-writer contract of
// core.SimStore — and allocates nothing.
func (p *Packed) Row(i int) []float64 {
	p.rowInto(p.row, i)
	return p.row
}

// ConcurrentRow materializes row i into a fresh slice, safe under
// concurrent readers (one O(n) copy per cold query row is the packed
// backend's read-path trade).
func (p *Packed) ConcurrentRow(i int) []float64 {
	out := make([]float64, p.n)
	p.rowInto(out, i)
	return out
}

// UpperRow returns the packed segment (a, a), …, (a, n−1) aliasing
// storage: race-free and copy-free, the global top-k scan shape.
func (p *Packed) UpperRow(a int) []float64 {
	return p.data[p.start[a] : p.start[a]+p.n-a]
}

// ColInto copies column j into dst — by symmetry, row j.
func (p *Packed) ColInto(dst []float64, j int) { p.rowInto(dst, j) }

// Clone returns an independent deep copy.
func (p *Packed) Clone() Store {
	c := NewPacked(p.n)
	copy(c.data, p.data)
	return c
}

// ToDense materializes the full symmetric matrix.
func (p *Packed) ToDense() *matrix.Dense {
	d := matrix.NewDense(p.n, p.n)
	for i := 0; i < p.n; i++ {
		p.rowInto(d.Row(i), i)
	}
	return d
}

// SetFromDense overwrites the store with src's upper triangle (src must
// be n×n; the batch kernel's output is symmetric up to rounding, and the
// packed store canonicalizes on the upper entries).
func (p *Packed) SetFromDense(src *matrix.Dense) {
	if src.Rows != p.n || src.Cols != p.n {
		panic("simstore: SetFromDense dimension mismatch")
	}
	for i := 0; i < p.n; i++ {
		copy(p.data[p.start[i]:p.start[i]+p.n-i], src.Row(i)[i:])
	}
}

// AddNodes returns a packed store over n+count nodes: each old row's
// packed segment is copied into the prefix of its new (longer) segment,
// new diagonals get diag.
func (p *Packed) AddNodes(count int, diag float64) Store {
	next := NewPacked(p.n + count)
	for i := 0; i < p.n; i++ {
		copy(next.data[next.start[i]:next.start[i]+p.n-i],
			p.data[p.start[i]:p.start[i]+p.n-i])
	}
	for v := p.n; v < next.n; v++ {
		next.data[next.start[v]] = diag
	}
	return next
}

// MemBytes reports the packed payload plus the offset table and row
// scratch — ≈ 4n² + 16n bytes, about half of dense.
func (p *Packed) MemBytes() int64 {
	return int64(len(p.data))*8 + int64(len(p.start))*8 + int64(len(p.row))*8
}

// Backend names the implementation.
func (p *Packed) Backend() Backend { return BackendPacked }

package simstore

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/montecarlo"
)

// Approx is the sampling tier: no materialized S at all. Queries are
// answered by coalescing reverse random walks over a shared reusable
// walk index (montecarlo.Index, O(n + m) memory, built once and shared
// by every estimator and clone), with per-answer standard errors
// available through the Sampler interface. This is the backend for
// graphs where O(n²) exact storage is infeasible — the paper's own
// fallback regime for large n.
//
// The store is read-only: the exact incremental-update machinery has no
// matrix to fold deltas into, so every mutation panics (the engine
// rejects writes with ErrReadOnly long before reaching the store).
//
// Scores are the *iterative-form* SimRank estimates (s(a,a) = 1) the
// estimator targets, truncated at walkLen steps — pick walkLen = K to
// mirror an exact engine's K-iteration truncation.
type Approx struct {
	idx   *montecarlo.Index
	est   *montecarlo.Estimator
	walks int
	seed  int64
	// refineFactor multiplies the walk budget on the provisional top-2k
	// candidates of a TopKRow query.
	refineFactor int
}

// DefaultRefineFactor is the top-k refinement multiplier (see
// montecarlo.Estimator.TopK).
const DefaultRefineFactor = 4

// MaxWalks bounds the per-pair walk budget everywhere it is accepted —
// engine options, store construction and snapshot restore share this
// one constant, so a budget a running engine accepts is always a budget
// its snapshot can restore (and it fits a snapshot's uint32 field).
const MaxWalks = 1 << 20

// NewApprox builds a sampling store over g's current topology: c is the
// damping factor, walkLen the walk cap (use the exact engines' K),
// walks the per-pair walk budget, seed the deterministic RNG seed.
func NewApprox(g *graph.DiGraph, c float64, walkLen, walks int, seed int64) (*Approx, error) {
	if walks <= 0 || walks > MaxWalks {
		return nil, fmt.Errorf("simstore: approx walk budget %d outside (0, %d]", walks, MaxWalks)
	}
	idx := montecarlo.NewIndex(g)
	est, err := idx.NewEstimator(c, walkLen, seed)
	if err != nil {
		return nil, err
	}
	return &Approx{idx: idx, est: est, walks: walks, seed: seed, refineFactor: DefaultRefineFactor}, nil
}

// Walks returns the per-pair walk budget (persisted in snapshots).
func (a *Approx) Walks() int { return a.walks }

// Seed returns the RNG seed the estimator was built with (persisted in
// snapshots; a restored store replays the same walk sequence from the
// start).
func (a *Approx) Seed() int64 { return a.seed }

// Estimator exposes the underlying estimator (tests, diagnostics).
func (a *Approx) Estimator() *montecarlo.Estimator { return a.est }

// N returns the node count.
func (a *Approx) N() int { return a.idx.N() }

// Seal returns the receiver: the sampling store is already immutable
// (its estimator's RNG is internally locked), so every epoch's view is
// the store itself.
func (a *Approx) Seal() Store { return a }

// Writable reports false: the sampling tier rejects all mutation.
func (a *Approx) Writable() bool { return false }

// MarkRowsDirty is a no-op: nothing is ever written.
func (a *Approx) MarkRowsDirty([]int) {}

// At estimates s(i, j) with the store's walk budget. Safe for
// concurrent readers (the estimator's RNG is locked); deterministic only
// under a sequential fixed-seed run.
func (a *Approx) At(i, j int) float64 { return a.est.Pair(i, j, a.walks) }

func (a *Approx) readOnly() string {
	return "simstore: " + ErrReadOnly.Error() + " (engine guards must reject writes first)"
}

// Set panics: the sampling tier is read-only.
func (a *Approx) Set(i, j int, v float64) { panic(a.readOnly()) }

// Add panics: the sampling tier is read-only.
func (a *Approx) Add(i, j int, v float64) { panic(a.readOnly()) }

// AddSym panics: the sampling tier is read-only.
func (a *Approx) AddSym(i, j int, v float64) { panic(a.readOnly()) }

// Row estimates the full row s(i, ·) — O(n·walks·walkLen) walk steps —
// into a fresh slice.
func (a *Approx) Row(i int) []float64 { return a.est.SingleSource(i, a.walks) }

// ConcurrentRow is Row: every call samples into its own slice.
func (a *Approx) ConcurrentRow(i int) []float64 { return a.Row(i) }

// UpperRow panics: a global O(n²) scan is exactly what the sampling tier
// exists to avoid (the engine answers global top-k as unavailable).
func (a *Approx) UpperRow(int) []float64 {
	panic("simstore: approx backend has no materialized triangle to scan")
}

// ColInto estimates column j (= row j by symmetry) into dst.
func (a *Approx) ColInto(dst []float64, j int) { copy(dst, a.Row(j)) }

// Clone returns the store itself: the index is immutable and the
// estimator is safe for concurrent use, so there is nothing to copy.
func (a *Approx) Clone() Store { return a }

// ToDense returns nil: materializing n² estimates is the workload this
// backend exists to refuse.
func (a *Approx) ToDense() *matrix.Dense { return nil }

// AddNodes panics: the sampling tier is read-only (rebuild the store
// over the grown graph instead).
func (a *Approx) AddNodes(count int, diag float64) Store { panic(a.readOnly()) }

// MemBytes reports the shared walk index's O(n + m) footprint.
func (a *Approx) MemBytes() int64 { return a.idx.MemBytes() }

// Backend names the implementation.
func (a *Approx) Backend() Backend { return BackendApprox }

// TopKRow estimates the k nodes most similar to node q via the two-pass
// refinement of montecarlo.Estimator.TopK, mapped to the engine's Pair
// shape.
func (a *Approx) TopKRow(q, k int) []metrics.Pair {
	scored := a.est.TopK(q, k, a.walks, a.refineFactor)
	out := make([]metrics.Pair, 0, len(scored))
	for _, s := range scored {
		// The refinement pass re-estimates each provisional candidate and
		// can land on 0 (no meeting in the bigger budget); a zero-score
		// "similar node" is noise, not an answer — drop it, matching the
		// exact backends' skip of zero entries.
		if s.Score > 0 {
			out = append(out, metrics.Pair{A: q, B: s.Node, Score: s.Score})
		}
	}
	return out
}

// PairStderr estimates s(a, b) together with its standard error.
func (a *Approx) PairStderr(i, j int) (est, stderr float64) {
	return a.est.PairStderr(i, j, a.walks)
}

package simstore

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/montecarlo"
)

// Approx is the sampling tier: no materialized S at all. Queries read a
// stored-walk index (montecarlo.Index) of W truncated reverse walks per
// node — O(n·(W·L + d)) memory, still far below the exact tiers' Θ(n²)
// — and score a pair by the first-meeting-time estimator, with
// per-answer standard errors through the Sampler interface.
//
// The store is *writable through the graph*: ApplyUpdate mutates one
// in-neighbor list and repairs exactly the walk suffixes the change
// invalidates (the paper's affected-area idea applied to the walk
// index), and AddNodes grows the index by isolated nodes. Because every
// walk position derives from a pure (seed, node, walk, step) hash, the
// repaired index is bit-identical to a fresh rebuild over the updated
// graph — determinism, WAL-replay equivalence and snapshot round-trips
// all reduce to that one invariant.
//
// What stays unsupported are the *exact write-backs* Set/Add/AddSym/
// UpperRow: there is no matrix cell for an Inc-SR delta to land in, so
// the engine routes approx writes through ApplyUpdate instead of the
// incremental core, and those methods panic if reached.
//
// Scores are the *iterative-form* SimRank estimates (s(a,a) = 1) the
// estimator targets, truncated at walkLen steps — pick walkLen = K to
// mirror an exact engine's K-iteration truncation.
type Approx struct {
	idx   *montecarlo.Index
	walks int
	seed  int64
	// refineFactor multiplies the walk budget on the provisional top-2k
	// candidates of a TopKRow query.
	refineFactor int
	sealed       bool
}

// DefaultRefineFactor is the top-k refinement multiplier (see
// montecarlo.Index.TopK).
const DefaultRefineFactor = 4

// MaxWalks bounds the per-pair walk budget everywhere it is accepted —
// engine options, store construction and snapshot restore share this
// one constant, so a budget a running engine accepts is always a budget
// its snapshot can restore (and it fits a snapshot's uint32 field).
// With stored walks the budget is also the per-node memory multiplier
// (W·(L+1) int32 positions per node), so large budgets are priced in
// RAM, not per-query CPU.
const MaxWalks = 1 << 20

// NewApprox builds a sampling store over g's current topology: c is the
// damping factor, walkLen the walk cap (use the exact engines' K),
// walks the per-pair walk budget, seed the derived-seed root. All W
// walks per node are sampled and stored up front.
func NewApprox(g *graph.DiGraph, c float64, walkLen, walks int, seed int64) (*Approx, error) {
	if walks <= 0 || walks > MaxWalks {
		return nil, fmt.Errorf("simstore: approx walk budget %d outside (0, %d]", walks, MaxWalks)
	}
	idx, err := montecarlo.NewIndex(g, c, walkLen, walks, seed)
	if err != nil {
		return nil, err
	}
	return &Approx{idx: idx, walks: walks, seed: seed, refineFactor: DefaultRefineFactor}, nil
}

// Walks returns the per-pair walk budget (persisted in snapshots).
func (a *Approx) Walks() int { return a.walks }

// Seed returns the derived-seed root the walks are positioned with
// (persisted in snapshots; a restored store reproduces the exact same
// walk set from the graph).
func (a *Approx) Seed() int64 { return a.seed }

// Index exposes the underlying walk index (tests, diagnostics).
func (a *Approx) Index() *montecarlo.Index { return a.idx }

// SetWorkers bounds the goroutines one walk repair fans suffix
// resampling across (see montecarlo.Index.SetWorkers): 0 selects
// GOMAXPROCS, 1 forces the serial path. Every repaired position is a
// pure function of (seed, node, walk, step), so the index is
// bit-identical at every setting. Single-writer path — call it only
// between updates.
func (a *Approx) SetWorkers(workers int) { a.idx.SetWorkers(workers) }

// N returns the node count.
func (a *Approx) N() int { return a.idx.N() }

// ApplyUpdate mutates the graph topology inside the walk index and
// repairs the invalidated walk suffixes. It returns the ascending list
// of nodes whose stored walks changed — the engine's DirtyRows set for
// this update. Single-writer path.
func (a *Approx) ApplyUpdate(up graph.Update) []int {
	a.ensureWritable()
	dirty, _ := a.idx.Apply(up)
	return dirty
}

// Recompute rebuilds the whole walk set from g — the full-resample path
// behind Engine.Recompute. Equivalent in outcome to any sequence of
// repairs reaching the same topology (both equal the pure function of
// (graph, seed)), so it exists for cost, not correctness: once an
// update batch is large enough that most walks are affected anyway,
// one O(n·W·L) resample beats per-edge repair.
func (a *Approx) Recompute(g *graph.DiGraph) {
	a.ensureWritable()
	a.idx.Reset(g)
}

// RepairGen returns the repair-generation counter (persisted in
// snapshots).
func (a *Approx) RepairGen() uint64 { return a.idx.Gen() }

// SetRepairGen restores the repair-generation counter from a snapshot.
func (a *Approx) SetRepairGen(gen uint64) { a.idx.SetGen(gen) }

// RepairStats returns cumulative repair work: walks whose suffix was
// resampled and individual walk steps resampled (process counters, not
// persisted).
func (a *Approx) RepairStats() (walksRepaired, stepsResampled uint64) {
	return a.idx.RepairStats()
}

// ResampleFraction is walksRepaired over the total walk-resample work a
// full rebuild per repaired update would have cost (gen·n·W) — the
// /stats figure quantifying the affected-area win; 0 before any repair.
func (a *Approx) ResampleFraction() float64 {
	repaired, _ := a.idx.RepairStats()
	gen := a.idx.Gen()
	if gen == 0 {
		return 0
	}
	return float64(repaired) / (float64(gen) * float64(a.idx.N()) * float64(a.walks))
}

// Seal returns an immutable point-in-time view of the walk set (O(n)
// pointer copies; the writer copy-on-writes a node's walks before its
// next repair of them). Queries on a sealed view are pure reads of
// frozen positions — no RNG, no lock, bit-stable forever.
func (a *Approx) Seal() Store {
	if a.sealed {
		return a
	}
	return &Approx{idx: a.idx.Seal(), walks: a.walks, seed: a.seed, refineFactor: a.refineFactor, sealed: true}
}

// Writable reports whether the receiver is the writer instance (true)
// or a sealed view (false).
func (a *Approx) Writable() bool { return !a.sealed }

// MarkRowsDirty is a no-op: the walk index tracks its own copy-on-write
// sharing per node.
func (a *Approx) MarkRowsDirty([]int) {}

// At estimates s(i, j) with the store's walk budget. A deterministic
// pure read of the stored walks — safe for any number of concurrent
// readers with no serialization.
func (a *Approx) At(i, j int) float64 { return a.idx.Pair(i, j, a.walks) }

func (a *Approx) ensureWritable() {
	if a.sealed {
		panic("simstore: mutation on a sealed approx view")
	}
}

func (a *Approx) noExactWrites() string {
	return "simstore: approx backend has no matrix cells for exact write-backs (route updates through ApplyUpdate)"
}

// Set panics: the sampling tier has no matrix cell to write.
func (a *Approx) Set(i, j int, v float64) { panic(a.noExactWrites()) }

// Add panics: the sampling tier has no matrix cell to accumulate into.
func (a *Approx) Add(i, j int, v float64) { panic(a.noExactWrites()) }

// AddSym panics: the sampling tier has no matrix cells for the
// symmetric write-back shape.
func (a *Approx) AddSym(i, j int, v float64) { panic(a.noExactWrites()) }

// Row estimates the full row s(i, ·) — O(n·walks·walkLen) position
// reads — into a fresh slice.
func (a *Approx) Row(i int) []float64 { return a.idx.SingleSource(i, a.walks) }

// ConcurrentRow is Row: every call estimates into its own slice.
func (a *Approx) ConcurrentRow(i int) []float64 { return a.Row(i) }

// UpperRow panics: a global O(n²) scan is exactly what the sampling tier
// exists to avoid (the engine answers global top-k as unavailable).
func (a *Approx) UpperRow(int) []float64 {
	panic("simstore: approx backend has no materialized triangle to scan")
}

// ColInto estimates column j (= row j by symmetry) into dst.
func (a *Approx) ColInto(dst []float64, j int) { copy(dst, a.Row(j)) }

// Clone returns an independent deep copy of the walk index, so a cloned
// engine can absorb updates without affecting the original.
func (a *Approx) Clone() Store {
	return &Approx{idx: a.idx.Clone(), walks: a.walks, seed: a.seed, refineFactor: a.refineFactor, sealed: a.sealed}
}

// ToDense returns nil: materializing n² estimates is the workload this
// backend exists to refuse.
func (a *Approx) ToDense() *matrix.Dense { return nil }

// AddNodes grows the walk index by count isolated nodes. diag is
// ignored — the estimator scores s(v, v) = 1 by definition, and an
// isolated node's walks die at home, exactly what a fresh rebuild over
// the grown graph samples.
func (a *Approx) AddNodes(count int, diag float64) Store {
	a.ensureWritable()
	a.idx.AddNodes(count)
	return a
}

// MemBytes reports the walk index's O(n·(W·L + d)) footprint: stored
// walk positions plus (writer only) in-neighbor lists and repair
// postings. Sealed views count just the walk payload they serve.
func (a *Approx) MemBytes() int64 { return a.idx.MemBytes() }

// Backend names the implementation.
func (a *Approx) Backend() Backend { return BackendApprox }

// TopKRow estimates the k nodes most similar to node q via the two-pass
// refinement of montecarlo.Index.TopK: a cheap scan with a 1/refine
// fraction of the stored walks, then the provisional top 2k re-scored
// with the full budget. Deterministic — both passes read stored
// positions.
func (a *Approx) TopKRow(q, k int) []metrics.Pair {
	// Ceiling division so the refinement budget short·refineFactor is ≥
	// walks — Pair clamps it back to exactly the stored W, making
	// refined scores identical to At(q, ·).
	short := (a.walks + a.refineFactor - 1) / a.refineFactor
	scored := a.idx.TopK(q, k, short, a.refineFactor)
	out := make([]metrics.Pair, 0, len(scored))
	for _, s := range scored {
		// The refinement pass re-estimates each provisional candidate and
		// can land on 0 (no meeting in the bigger budget); a zero-score
		// "similar node" is noise, not an answer — drop it, matching the
		// exact backends' skip of zero entries.
		if s.Score > 0 {
			out = append(out, metrics.Pair{A: q, B: s.Node, Score: s.Score})
		}
	}
	return out
}

// PairStderr estimates s(a, b) together with its standard error.
func (a *Approx) PairStderr(i, j int) (est, stderr float64) {
	return a.idx.PairStderr(i, j, a.walks)
}

package simstore

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// fill writes a deterministic symmetric pattern through AddSym/Set.
func fill(t *testing.T, s Store, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := s.N()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s.Set(i, j, rng.Float64())
			if i != j {
				s.Set(j, i, s.At(i, j))
			}
		}
	}
}

// snapshotOf copies every entry for later comparison.
func snapshotOf(s Store) []float64 {
	n := s.N()
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out[i*n+j] = s.At(i, j)
		}
	}
	return out
}

func assertEquals(t *testing.T, s Store, want []float64, label string) {
	t.Helper()
	n := s.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got := s.At(i, j); got != want[i*n+j] {
				t.Fatalf("%s: entry (%d,%d) = %v, want %v", label, i, j, got, want[i*n+j])
			}
		}
	}
}

// Sealed views must be frozen at seal time while the writer keeps
// mutating — across repeated seal/mutate rounds, for both exact
// backends, and regardless of which write primitive is used.
func TestSealIsolatesViews(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(n int) Store
	}{
		{"dense", func(n int) Store { return NewDense(n) }},
		{"packed", func(n int) Store { return NewPacked(n) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 37 // > 1 packed chunk once squared? small but multi-row
			s := tc.mk(n)
			fill(t, s, 1)

			type sealed struct {
				view Store
				want []float64
			}
			var views []sealed
			rng := rand.New(rand.NewSource(2))
			for round := 0; round < 6; round++ {
				v := s.Seal()
				if v.Writable() {
					t.Fatal("sealed view reports Writable")
				}
				views = append(views, sealed{v, snapshotOf(s)})
				// This test keeps every view alive, so play the facade's
				// busy-reader move on dense: the buffer the next flip would
				// recycle is still pinned (by views[len-2]), so abandon it.
				// Packed views share chunks that are never written in place
				// and need no such step.
				if d, ok := s.(*Dense); ok && len(views) > 1 {
					d.AbandonBack()
				}
				// Mutate a scattering of cells, reporting dirty rows as the
				// engine would.
				var dirty []int
				for w := 0; w < 25; w++ {
					i, j := rng.Intn(n), rng.Intn(n)
					s.AddSym(i, j, rng.NormFloat64())
					dirty = append(dirty, i, j)
				}
				s.MarkRowsDirty(dirty)
				// Every sealed view so far must still read its frozen state.
				for vi, sv := range views {
					assertEquals(t, sv.view, sv.want, tc.name+" view "+string(rune('0'+vi)))
				}
			}
			// The writer's own reads must always see the latest state.
			live := snapshotOf(s)
			v := s.Seal()
			assertEquals(t, v, live, tc.name+" final seal")
			// UpperRow and ConcurrentRow on sealed views agree with At.
			for i := 0; i < n; i++ {
				row := v.ConcurrentRow(i)
				up := v.UpperRow(i)
				for j := 0; j < n; j++ {
					if row[j] != v.At(i, j) {
						t.Fatalf("ConcurrentRow(%d)[%d] mismatch", i, j)
					}
				}
				for j := i; j < n; j++ {
					if up[j-i] != v.At(i, j) {
						t.Fatalf("UpperRow(%d)[%d] mismatch", i, j-i)
					}
				}
			}
		})
	}
}

// A dense store keeps flipping between exactly two buffers: after the
// first flip, further seal/mutate rounds must not allocate new matrices,
// only re-sync dirty rows.
func TestDenseDoubleBufferReuse(t *testing.T) {
	const n = 16
	d := NewDense(n)
	fill(t, d, 3)
	seen := map[*float64]bool{}
	buf := func() *float64 { return &d.m.Data[0] }
	for round := 0; round < 8; round++ {
		d.Seal()
		d.AddSym(round%n, (round*3)%n, 1.5)
		d.MarkRowsDirty([]int{round % n, (round * 3) % n})
		seen[buf()] = true
	}
	if len(seen) != 2 {
		t.Fatalf("dense writer cycled %d distinct buffers, want exactly 2", len(seen))
	}
}

// AbandonBack must orphan the second buffer: the next flip gets a fresh
// one, and the sealed view that pinned the old buffer stays intact.
func TestDenseAbandonBack(t *testing.T) {
	const n = 8
	d := NewDense(n)
	fill(t, d, 4)
	v1 := d.Seal()
	w1 := snapshotOf(d)
	d.AddSym(1, 2, 9)
	d.MarkRowsDirty([]int{1, 2})
	d.Seal()
	d.AbandonBack() // pretend v1's buffer is still pinned by a reader
	d.AddSym(3, 4, 7)
	d.MarkRowsDirty([]int{3, 4})
	assertEquals(t, v1, w1, "abandoned view")
	if got := d.At(3, 4); got == w1[3*n+4] {
		t.Fatal("writer write lost after abandon")
	}
}

// Sealing must not change what a writer-side full rewrite produces:
// WritableMatrix + MarkAllRowsDirty is the recompute path.
func TestDenseWritableMatrixRewrite(t *testing.T) {
	const n = 9
	d := NewDense(n)
	fill(t, d, 5)
	v := d.Seal()
	w := snapshotOf(d)
	m := d.WritableMatrix()
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	d.MarkAllRowsDirty()
	assertEquals(t, v, w, "sealed view after rewrite")
	if d.At(0, 1) != 1 {
		t.Fatalf("rewrite not visible to writer: %v", d.At(0, 1))
	}
	// Next seal/flip round must carry the rewrite, not stale rows.
	d.Seal()
	d.AddSym(0, 0, 0.5)
	d.MarkRowsDirty([]int{0})
	if d.At(2, 2) != float64(2*n+2) {
		t.Fatalf("post-rewrite flip lost data: %v", d.At(2, 2))
	}
}

// The discard variant must preserve sealed views and writer-visible
// state exactly like the syncing flip — it only skips copying bytes the
// caller is about to overwrite.
func TestDenseWritableMatrixDiscard(t *testing.T) {
	const n = 9
	d := NewDense(n)
	fill(t, d, 6)
	v := d.Seal()
	w := snapshotOf(d)
	m := d.WritableMatrixDiscard()
	// Contract: every cell must be rewritten before any read.
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	d.MarkAllRowsDirty()
	assertEquals(t, v, w, "sealed view after discard rewrite")
	if d.At(0, 1) != 1 {
		t.Fatalf("rewrite not visible to writer: %v", d.At(0, 1))
	}
	// The next seal/flip round must carry the rewrite, not pre-rewrite
	// rows left behind by the skipped sync.
	d.Seal()
	d.AddSym(0, 0, 0.5)
	d.MarkRowsDirty([]int{0})
	if d.At(2, 2) != float64(2*n+2) {
		t.Fatalf("post-discard flip lost data: %v", d.At(2, 2))
	}
	// Without a pending seal it must hand back the live buffer directly.
	cur := d.WritableMatrixDiscard()
	if cur.At(2, 2) != float64(2*n+2) {
		t.Fatal("no-cow discard did not return the live buffer")
	}
}

// Writes to sealed views must panic loudly rather than corrupt readers.
func TestSealedViewWritesPanic(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Store
	}{
		{"dense", func() Store { return NewDense(4).Seal() }},
		{"packed", func() Store { return NewPacked(4).Seal() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v := tc.mk()
			for name, fn := range map[string]func(){
				"Set":    func() { v.Set(0, 1, 1) },
				"Add":    func() { v.Add(0, 1, 1) },
				"AddSym": func() { v.AddSym(0, 1, 1) },
			} {
				func() {
					defer func() {
						if recover() == nil {
							t.Fatalf("%s on sealed view did not panic", name)
						}
					}()
					fn()
				}()
			}
		})
	}
}

// Packed chunking is pure layout: every (i, j) must land where the flat
// upper-triangular formula says, across sizes that straddle chunk
// boundaries.
func TestPackedChunkLayout(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 129, 200} {
		p := NewPacked(n)
		rng := rand.New(rand.NewSource(int64(n)))
		want := make([]float64, n*(n+1)/2)
		for k := range want {
			want[k] = rng.Float64()
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				p.Set(i, j, want[p.idx(i, j)])
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if p.At(i, j) != want[p.idx(i, j)] {
					t.Fatalf("n=%d: At(%d,%d) misplaced", n, i, j)
				}
			}
		}
		// Row segments must be chunk-contiguous for UpperRow aliasing.
		for i := 0; i < n; i++ {
			seg := p.UpperRow(i)
			if len(seg) != n-i {
				t.Fatalf("n=%d: UpperRow(%d) len %d", n, i, len(seg))
			}
		}
	}
}

// Approx sealing: the writer stays writable, the view is immutable and
// keeps serving its frozen walk set while the writer repairs past it
// (per-node copy-on-write on the walk rows).
func TestApproxSealedViewSurvivesRepairs(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	a, err := NewApprox(g, 0.6, 5, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := a.Seal()
	if v == Store(a) {
		t.Fatal("approx Seal must return a distinct sealed view, not the writer")
	}
	if v.Writable() {
		t.Fatal("sealed view reports Writable")
	}
	if !a.Writable() {
		t.Fatal("writer must stay writable after Seal")
	}
	if v.Seal() != v {
		t.Fatal("sealing a sealed view must return the receiver")
	}
	a.MarkRowsDirty([]int{1}) // must be a harmless no-op
	frozen := v.At(1, 3)
	up := graph.Update{Edge: graph.Edge{From: 0, To: 3}, Insert: true}
	g.Apply(up)
	a.ApplyUpdate(up)
	if got := v.At(1, 3); got != frozen {
		t.Fatalf("sealed view drifted under repair: %v vs %v", got, frozen)
	}
	if a.At(1, 3) <= 0 {
		t.Fatal("writer should now score s(1,3) > 0 (common parent 0)")
	}
	// Mutating a sealed view must fail loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyUpdate on a sealed view did not panic")
		}
	}()
	v.(*Approx).ApplyUpdate(graph.Update{Edge: graph.Edge{From: 1, To: 2}, Insert: true})
}

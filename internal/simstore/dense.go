package simstore

import "repro/internal/matrix"

// Dense is the classic backend: a row-major n×n matrix.Dense. Every
// operation delegates straight to the matrix, so an engine on this store
// is bit-identical (values and allocation profile) to the pre-interface
// engine that held the matrix directly.
//
// MVCC: Seal hands out an immutable wrapper around the current buffer
// and arms the double-buffer — the first write after a Seal flips to the
// second buffer, first re-syncing only the rows the sealed buffer is
// ahead by (the MarkRowsDirty sets accumulated since that buffer was
// last the front). A warm single-writer therefore ping-pongs between two
// fixed n×n buffers with zero steady-state allocations, and readers of
// any sealed view are never raced: the writer only ever touches the
// buffer no live view references (the facade checks, and abandons the
// buffer to the GC instead when a straggling reader still pins it).
type Dense struct {
	m *matrix.Dense

	// sealed marks this instance as an immutable view: every mutation
	// panics, Seal returns the receiver.
	sealed bool

	// Double-buffer state, dormant (zero-cost) until the first Seal:
	// cowSeen arms the machinery, cow means the latest sealed view
	// references m and the next write must flip first. back is the other
	// buffer; backAll says it is wholly stale (fresh, abandoned, or
	// post-recompute), otherwise it differs from m exactly on the rows in
	// behind.
	cowSeen    bool
	cow        bool
	back       *matrix.Dense
	backAll    bool
	behind     []int
	behindMark []bool
}

// NewDense returns a zeroed n×n dense store.
func NewDense(n int) *Dense { return &Dense{m: matrix.NewDense(n, n)} }

// WrapDense adopts an existing square matrix (snapshot restore, tests).
func WrapDense(m *matrix.Dense) *Dense {
	if m.Rows != m.Cols {
		panic("simstore: dense store requires a square matrix")
	}
	return &Dense{m: m}
}

// Matrix exposes the current backing matrix for reads (snapshot
// serialization, tests). Writers that bypass Set/Add/AddSym must use
// WritableMatrix instead once the store has ever been sealed.
func (d *Dense) Matrix() *matrix.Dense { return d.m }

// WritableMatrix returns the buffer the next writes belong in, flipping
// the double-buffer first if the current one is referenced by a sealed
// view. The flip brings the buffer fully up to date, so partial writes
// are safe.
func (d *Dense) WritableMatrix() *matrix.Dense {
	d.beforeWrite()
	return d.m
}

// WritableMatrixDiscard is WritableMatrix for callers about to rewrite
// EVERY cell (the batch recompute): a needed flip swaps buffers without
// syncing any content — the returned buffer holds garbage until the
// caller's full rewrite lands. Skips the 8n²-byte copy a syncing flip
// would immediately see overwritten. Callers must still follow up with
// MarkAllRowsDirty (idempotent here; the swap already declared the
// other buffer wholly stale).
func (d *Dense) WritableMatrixDiscard() *matrix.Dense {
	if d.sealed {
		panic("simstore: write to a sealed dense view")
	}
	if d.cow {
		if d.back == nil {
			d.back = matrix.NewDense(d.m.Rows, d.m.Cols)
		}
		d.resetBehind()
		d.m, d.back = d.back, d.m
		d.backAll = true // back = the pre-rewrite front: wholly stale
		d.cow = false
	}
	return d.m
}

// beforeWrite guards every mutation: panics on sealed views and flips
// the double-buffer when the current front is held by a sealed view.
func (d *Dense) beforeWrite() {
	if d.sealed {
		panic("simstore: write to a sealed dense view")
	}
	if d.cow {
		d.flip()
	}
}

// flip makes back the write target: allocate it on first need, bring it
// up to date (full copy when wholly stale, otherwise just the behind
// rows), and swap. The buffer being released to the sealed view(s) is
// exactly current, so the new behind set starts empty.
func (d *Dense) flip() {
	if d.back == nil {
		d.back = matrix.NewDense(d.m.Rows, d.m.Cols)
		d.backAll = true
	}
	if d.backAll {
		copy(d.back.Data, d.m.Data)
		d.backAll = false
	} else {
		for _, r := range d.behind {
			copy(d.back.Row(r), d.m.Row(r))
		}
	}
	d.resetBehind()
	d.m, d.back = d.back, d.m
	d.cow = false
}

func (d *Dense) resetBehind() {
	for _, r := range d.behind {
		d.behindMark[r] = false
	}
	d.behind = d.behind[:0]
}

// Seal returns an immutable view of the current buffer and marks it
// copy-on-write: the next mutation flips to the other buffer.
func (d *Dense) Seal() Store {
	if d.sealed {
		return d
	}
	if !d.cowSeen {
		d.cowSeen = true
		d.backAll = true // nothing synced into back yet
		d.behindMark = make([]bool, d.m.Rows)
	}
	d.cow = true
	return &Dense{m: d.m, sealed: true}
}

// Writable reports whether the receiver accepts mutation.
func (d *Dense) Writable() bool { return !d.sealed }

// MarkRowsDirty records rows written since the last flip, so the next
// flip re-syncs only those. No-op until the store is first sealed, or
// while the back buffer is wholly stale anyway.
func (d *Dense) MarkRowsDirty(rows []int) {
	if !d.cowSeen || d.backAll {
		return
	}
	for _, r := range rows {
		if !d.behindMark[r] {
			d.behindMark[r] = true
			d.behind = append(d.behind, r)
		}
	}
}

// MarkAllRowsDirty declares the back buffer wholly stale — the follow-up
// to a full rewrite through WritableMatrix (recompute).
func (d *Dense) MarkAllRowsDirty() {
	if !d.cowSeen {
		return
	}
	d.resetBehind()
	d.backAll = true
}

// RecyclesBufferOf reports whether the sealed view shares the buffer
// the receiver's next flip would write into — the exact test an MVCC
// facade needs before recycling: only a straggling reader on THIS
// buffer forces an AbandonBack; stragglers on older, already-orphaned
// buffers are harmless.
func (d *Dense) RecyclesBufferOf(view *Dense) bool {
	return d.back != nil && view.m == d.back
}

// DoubleBuffered reports whether the second buffer is currently held
// (false before the first flip and after AbandonBack) — observability
// for tests and memory accounting.
func (d *Dense) DoubleBuffered() bool { return d.back != nil }

// AbandonBack detaches the second buffer without touching it, leaving it
// to the garbage collector once the sealed views referencing it drain.
// The MVCC facade calls this instead of blocking the writer when a
// long-running reader (an O(n²) Similarities copy, a snapshot) still
// pins the buffer the next flip would recycle; the following flip
// allocates a fresh one.
func (d *Dense) AbandonBack() {
	if d.back == nil {
		return
	}
	d.resetBehind()
	d.back = nil
	d.backAll = true
}

// N returns the node count.
func (d *Dense) N() int { return d.m.Rows }

// At returns s(i, j).
func (d *Dense) At(i, j int) float64 { return d.m.At(i, j) }

// Set writes entry (i, j) only — the dense layout stores both triangles.
func (d *Dense) Set(i, j int, v float64) {
	if d.sealed || d.cow {
		d.beforeWrite()
	}
	d.m.Set(i, j, v)
}

// Add accumulates v into entry (i, j).
func (d *Dense) Add(i, j int, v float64) {
	if d.sealed || d.cow {
		d.beforeWrite()
	}
	d.m.Add(i, j, v)
}

// AddSym accumulates v into (i, j) and (j, i); see matrix.Dense.AddSym.
func (d *Dense) AddSym(i, j int, v float64) {
	if d.sealed || d.cow {
		d.beforeWrite()
	}
	d.m.AddSym(i, j, v)
}

// BeginConcurrentWrites readies the store for the row-parallel update
// write-back (core.ConcurrentWriteStore): the copy-on-write flip a
// sealed view would force on the first mutation runs here, once,
// serially — after it d.cow is false, so the concurrent Add calls that
// follow go straight to matrix cells and goroutines writing disjoint
// cells never race. Returns true: the dense layout stores both
// triangles, so the parallel write-back lands each pair's mirror cell
// in a separate phase rather than via AddSym.
func (d *Dense) BeginConcurrentWrites() bool {
	d.beforeWrite()
	return true
}

// AlignConcurrentBoundary returns r unchanged: every dense row is an
// independent write target, so any row partition is conflict-free.
func (d *Dense) AlignConcurrentBoundary(r int) int { return r }

// Row returns row i aliasing the matrix storage (no scratch involved, so
// for this backend the view stays valid across calls).
func (d *Dense) Row(i int) []float64 { return d.m.Row(i) }

// ConcurrentRow is Row: the alias is immutable on a sealed view (and
// under the single-writer contract on a live store), so concurrent
// readers share it safely.
func (d *Dense) ConcurrentRow(i int) []float64 { return d.m.Row(i) }

// UpperRow returns the suffix (a, a), …, (a, n−1) of row a, aliasing
// storage.
func (d *Dense) UpperRow(a int) []float64 { return d.m.Row(a)[a:] }

// ColInto copies column j into dst.
func (d *Dense) ColInto(dst []float64, j int) { d.m.ColInto(dst, j) }

// Clone returns an independent writable deep copy of the current
// contents (double-buffer state is not cloned).
func (d *Dense) Clone() Store { return &Dense{m: d.m.Clone()} }

// ToDense returns an independent dense copy of S.
func (d *Dense) ToDense() *matrix.Dense { return d.m.Clone() }

// AddNodes returns a dense store over n+count nodes: old rows copied
// into the top-left block, new diagonal entries set to diag — exactly
// the fixed-point extension the engine's AddNodes always performed.
// The result is a fresh, never-sealed store; sealed views of the old
// size keep their own buffers.
func (d *Dense) AddNodes(count int, diag float64) Store {
	oldN := d.m.Rows
	n := oldN + count
	next := matrix.NewDense(n, n)
	for r := 0; r < oldN; r++ {
		copy(next.Row(r)[:oldN], d.m.Row(r))
	}
	for v := oldN; v < n; v++ {
		next.Set(v, v, diag)
	}
	return &Dense{m: next}
}

// MemBytes reports the 8n² serving payload (the MVCC double-buffer, when
// armed, is writer-side working memory and intentionally not counted).
func (d *Dense) MemBytes() int64 { return int64(len(d.m.Data)) * 8 }

// Backend names the implementation.
func (d *Dense) Backend() Backend { return BackendDense }

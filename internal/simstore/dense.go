package simstore

import "repro/internal/matrix"

// Dense is the classic backend: a row-major n×n matrix.Dense. Every
// operation delegates straight to the matrix, so an engine on this store
// is bit-identical (values and allocation profile) to the pre-interface
// engine that held the matrix directly.
type Dense struct {
	m *matrix.Dense
}

// NewDense returns a zeroed n×n dense store.
func NewDense(n int) *Dense { return &Dense{m: matrix.NewDense(n, n)} }

// WrapDense adopts an existing square matrix (snapshot restore, tests).
func WrapDense(m *matrix.Dense) *Dense {
	if m.Rows != m.Cols {
		panic("simstore: dense store requires a square matrix")
	}
	return &Dense{m: m}
}

// Matrix exposes the backing matrix: the batch kernel writes its
// ping-pong iterations directly into it, and snapshots serialize it.
func (d *Dense) Matrix() *matrix.Dense { return d.m }

// N returns the node count.
func (d *Dense) N() int { return d.m.Rows }

// At returns s(i, j).
func (d *Dense) At(i, j int) float64 { return d.m.At(i, j) }

// Set writes entry (i, j) only — the dense layout stores both triangles.
func (d *Dense) Set(i, j int, v float64) { d.m.Set(i, j, v) }

// Add accumulates v into entry (i, j).
func (d *Dense) Add(i, j int, v float64) { d.m.Add(i, j, v) }

// AddSym accumulates v into (i, j) and (j, i); see matrix.Dense.AddSym.
func (d *Dense) AddSym(i, j int, v float64) { d.m.AddSym(i, j, v) }

// Row returns row i aliasing the matrix storage (no scratch involved, so
// for this backend the view stays valid across calls).
func (d *Dense) Row(i int) []float64 { return d.m.Row(i) }

// ConcurrentRow is Row: the alias is immutable under the engine's read
// lock, so concurrent readers share it safely.
func (d *Dense) ConcurrentRow(i int) []float64 { return d.m.Row(i) }

// UpperRow returns the suffix (a, a), …, (a, n−1) of row a, aliasing
// storage.
func (d *Dense) UpperRow(a int) []float64 { return d.m.Row(a)[a:] }

// ColInto copies column j into dst.
func (d *Dense) ColInto(dst []float64, j int) { d.m.ColInto(dst, j) }

// Clone returns an independent deep copy.
func (d *Dense) Clone() Store { return &Dense{m: d.m.Clone()} }

// ToDense returns an independent dense copy of S.
func (d *Dense) ToDense() *matrix.Dense { return d.m.Clone() }

// AddNodes returns a dense store over n+count nodes: old rows copied
// into the top-left block, new diagonal entries set to diag — exactly
// the fixed-point extension the engine's AddNodes always performed.
func (d *Dense) AddNodes(count int, diag float64) Store {
	oldN := d.m.Rows
	n := oldN + count
	next := matrix.NewDense(n, n)
	for r := 0; r < oldN; r++ {
		copy(next.Row(r)[:oldN], d.m.Row(r))
	}
	for v := oldN; v < n; v++ {
		next.Set(v, v, diag)
	}
	return &Dense{m: next}
}

// MemBytes reports the 8n² backing payload.
func (d *Dense) MemBytes() int64 { return int64(len(d.m.Data)) * 8 }

// Backend names the implementation.
func (d *Dense) Backend() Backend { return BackendDense }

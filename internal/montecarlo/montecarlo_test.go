package montecarlo

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/batch"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestNewValidation(t *testing.T) {
	g := graph.New(3)
	if _, err := New(g, 0, 0, 1); err == nil {
		t.Fatal("want error for C=0")
	}
	if _, err := New(g, 1, 0, 1); err == nil {
		t.Fatal("want error for C=1")
	}
	e, err := New(g, 0.6, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.WalkLen() <= 0 {
		t.Fatal("default walk length must be positive")
	}
}

func TestPairIdentity(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	e, _ := New(g, 0.6, 0, 1)
	if e.Pair(1, 1, 10) != 1 {
		t.Fatal("s(a,a) must be 1")
	}
}

func TestPairZeroWhenNoInLinks(t *testing.T) {
	// Node 0 has no in-neighbors → s(0, x) = 0 for x ≠ 0.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	e, _ := New(g, 0.8, 0, 1)
	if got := e.Pair(0, 1, 200); got != 0 {
		t.Fatalf("s(0,1) = %v, want 0", got)
	}
}

func TestPairSingleCommonParent(t *testing.T) {
	// 0→1, 0→2: walks from 1 and 2 both step to 0 and meet at t=1
	// with probability 1, so ŝ(1,2) = C exactly.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	e, _ := New(g, 0.8, 0, 7)
	if got := e.Pair(1, 2, 100); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("s(1,2) = %v, want 0.8", got)
	}
}

func TestPairMatchesDeterministicWithinCI(t *testing.T) {
	// On random graphs the MC estimate must agree with the Jeh–Widom
	// fixed point within a 5-sigma confidence interval.
	rng := rand.New(rand.NewSource(61))
	g := graph.New(12)
	for g.M() < 30 {
		g.AddEdge(rng.Intn(12), rng.Intn(12))
	}
	c := 0.6
	exact := batch.JehWidom(g, c, 40)
	e, _ := New(g, c, 40, 99)
	const walks = 4000
	checked := 0
	for a := 0; a < 12 && checked < 8; a++ {
		for b := a + 1; b < 12 && checked < 8; b++ {
			if exact.At(a, b) < 0.02 {
				continue
			}
			est, stderr := e.PairStderr(a, b, walks)
			slack := 5*stderr + 0.01 // CI plus truncation slack
			if math.Abs(est-exact.At(a, b)) > slack {
				t.Fatalf("pair (%d,%d): MC %v vs exact %v (slack %v)", a, b, est, exact.At(a, b), slack)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no sufficiently similar pairs in this random graph")
	}
}

func TestPairStderrShrinksWithWalks(t *testing.T) {
	g := gen.PrefAttach(60, 4, 5)
	e, _ := New(g, 0.6, 0, 11)
	_, se1 := e.PairStderr(10, 11, 200)
	_, se2 := e.PairStderr(10, 11, 5000)
	if se2 > se1 && se1 > 0 {
		t.Fatalf("stderr should shrink with walks: %v → %v", se1, se2)
	}
}

func TestSingleSource(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}})
	e, _ := New(g, 0.8, 0, 3)
	scores := e.SingleSource(1, 200)
	if len(scores) != 4 {
		t.Fatalf("len = %d", len(scores))
	}
	if scores[1] != 1 {
		t.Fatal("self-similarity must be 1")
	}
	if scores[2] <= 0 {
		t.Fatal("s(1,2) should be positive (co-cited by 0)")
	}
}

func TestTopK(t *testing.T) {
	// 0→{1,2,3}: nodes 1, 2, 3 are mutually similar with the same score;
	// TopK(1) must rank them above unrelated node 4.
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}, {From: 4, To: 0},
	})
	e, _ := New(g, 0.8, 0, 9)
	top := e.TopK(1, 2, 200, 4)
	if len(top) != 2 {
		t.Fatalf("TopK len = %d", len(top))
	}
	for _, s := range top {
		if s.Node != 2 && s.Node != 3 {
			t.Fatalf("unexpected top node %d", s.Node)
		}
		if math.Abs(s.Score-0.8) > 1e-12 {
			t.Fatalf("score %v, want 0.8", s.Score)
		}
	}
}

func TestTopKSmallGraph(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	e, _ := New(g, 0.6, 0, 2)
	if top := e.TopK(0, 5, 50, 1); len(top) > 1 {
		t.Fatalf("TopK on 2-node graph returned %d results", len(top))
	}
}

func TestPairPanicsOnBadWalks(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	e, _ := New(g, 0.6, 0, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	e.Pair(0, 1, 0)
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := gen.PrefAttach(40, 3, 8)
	e1, _ := New(g, 0.6, 0, 42)
	e2, _ := New(g, 0.6, 0, 42)
	if e1.Pair(5, 7, 500) != e2.Pair(5, 7, 500) {
		t.Fatal("same seed must reproduce the estimate")
	}
}

// One Estimator queried from many goroutines must be race-free: the
// walks share a single seeded source, which is now serialized by a
// locking wrapper. Run under -race (CI does) — before the guard this
// test was a reliable data-race report on e.rng.
func TestEstimatorConcurrentQueries(t *testing.T) {
	g := lineGraphForRace()
	est, err := New(g, 0.6, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a, b := (w+i)%g.N(), (w+2*i+1)%g.N()
				if s := est.Pair(a, b, 20); s < 0 || s > 1 {
					t.Errorf("Pair(%d,%d) = %v outside [0,1]", a, b, s)
				}
				if e, se := est.PairStderr(a, b, 20); math.IsNaN(e) || math.IsNaN(se) {
					t.Errorf("PairStderr(%d,%d) = %v ± %v", a, b, e, se)
				}
			}
		}(w)
	}
	wg.Wait()
}

// lineGraphForRace builds a small graph where walks actually move (every
// node except 0 has an in-neighbor).
func lineGraphForRace() *graph.DiGraph {
	g := graph.New(10)
	for v := 1; v < 10; v++ {
		g.AddEdge(v-1, v)
		g.AddEdge((v+4)%10, v)
	}
	return g
}

// The locked source must not change what sequential callers observe:
// same seed, same estimates, before and after the concurrency guard.
func TestEstimatorSequentialDeterminism(t *testing.T) {
	g := lineGraphForRace()
	run := func() []float64 {
		est, err := New(g, 0.6, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 20)
		for i := 0; i < 20; i++ {
			out = append(out, est.Pair(i%10, (i+3)%10, 50))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed sequential runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Zero or negative walk counts must fail loudly in both estimators
// instead of dividing by zero into a silent NaN.
func TestNonPositiveWalksPanic(t *testing.T) {
	g := lineGraphForRace()
	est, err := New(g, 0.6, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"Pair":           func() { est.Pair(1, 2, 0) },
		"PairStderr":     func() { est.PairStderr(1, 2, 0) },
		"PairNeg":        func() { est.Pair(1, 2, -5) },
		"PairStderrDiag": func() { est.PairStderr(3, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with non-positive walks did not panic", name)
				}
			}()
			f()
		}()
	}
}

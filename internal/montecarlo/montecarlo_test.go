package montecarlo

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/batch"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestNewValidation(t *testing.T) {
	g := graph.New(3)
	if _, err := NewIndex(g, 0, 0, 8, 1); err == nil {
		t.Fatal("want error for C=0")
	}
	if _, err := NewIndex(g, 1, 0, 8, 1); err == nil {
		t.Fatal("want error for C=1")
	}
	if _, err := NewIndex(g, 0.6, 0, 0, 1); err == nil {
		t.Fatal("want error for zero walks")
	}
	if _, err := NewIndex(g, 0.6, 300, 8, 1); err == nil {
		t.Fatal("want error for a walk length past the posting limit")
	}
	e, err := NewIndex(g, 0.6, 0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.WalkLen() <= 0 {
		t.Fatal("default walk length must be positive")
	}
}

func TestPairIdentity(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	e, _ := NewIndex(g, 0.6, 0, 10, 1)
	if e.Pair(1, 1, 10) != 1 {
		t.Fatal("s(a,a) must be 1")
	}
}

func TestPairZeroWhenNoInLinks(t *testing.T) {
	// Node 0 has no in-neighbors → s(0, x) = 0 for x ≠ 0.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	e, _ := NewIndex(g, 0.8, 0, 200, 1)
	if got := e.Pair(0, 1, 200); got != 0 {
		t.Fatalf("s(0,1) = %v, want 0", got)
	}
}

func TestPairSingleCommonParent(t *testing.T) {
	// 0→1, 0→2: walks from 1 and 2 both step to 0 and meet at t=1
	// with probability 1, so ŝ(1,2) = C exactly.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}})
	e, _ := NewIndex(g, 0.8, 0, 100, 7)
	if got := e.Pair(1, 2, 100); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("s(1,2) = %v, want 0.8", got)
	}
}

func TestPairMatchesDeterministicWithinCI(t *testing.T) {
	// On random graphs the MC estimate must agree with the Jeh–Widom
	// fixed point within a 5-sigma confidence interval.
	rng := rand.New(rand.NewSource(61))
	g := graph.New(12)
	for g.M() < 30 {
		g.AddEdge(rng.Intn(12), rng.Intn(12))
	}
	c := 0.6
	exact := batch.JehWidom(g, c, 40)
	e, _ := NewIndex(g, c, 40, 4000, 99)
	const walks = 4000
	checked := 0
	for a := 0; a < 12 && checked < 8; a++ {
		for b := a + 1; b < 12 && checked < 8; b++ {
			if exact.At(a, b) < 0.02 {
				continue
			}
			est, stderr := e.PairStderr(a, b, walks)
			slack := 5*stderr + 0.01 // CI plus truncation slack
			if math.Abs(est-exact.At(a, b)) > slack {
				t.Fatalf("pair (%d,%d): MC %v vs exact %v (slack %v)", a, b, est, exact.At(a, b), slack)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no sufficiently similar pairs in this random graph")
	}
}

func TestPairStderrShrinksWithWalks(t *testing.T) {
	g := gen.PrefAttach(60, 4, 5)
	e, _ := NewIndex(g, 0.6, 0, 5000, 11)
	_, se1 := e.PairStderr(10, 11, 200)
	_, se2 := e.PairStderr(10, 11, 5000)
	if se2 > se1 && se1 > 0 {
		t.Fatalf("stderr should shrink with walks: %v → %v", se1, se2)
	}
}

func TestSingleSource(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}})
	e, _ := NewIndex(g, 0.8, 0, 200, 3)
	scores := e.SingleSource(1, 200)
	if len(scores) != 4 {
		t.Fatalf("len = %d", len(scores))
	}
	if scores[1] != 1 {
		t.Fatal("self-similarity must be 1")
	}
	if scores[2] <= 0 {
		t.Fatal("s(1,2) should be positive (co-cited by 0)")
	}
}

func TestTopK(t *testing.T) {
	// 0→{1,2,3}: nodes 1, 2, 3 are mutually similar with the same score;
	// TopK(1) must rank them above unrelated node 4.
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}, {From: 4, To: 0},
	})
	e, _ := NewIndex(g, 0.8, 0, 800, 9)
	top := e.TopK(1, 2, 200, 4)
	if len(top) != 2 {
		t.Fatalf("TopK len = %d", len(top))
	}
	for _, s := range top {
		if s.Node != 2 && s.Node != 3 {
			t.Fatalf("unexpected top node %d", s.Node)
		}
		if math.Abs(s.Score-0.8) > 1e-12 {
			t.Fatalf("score %v, want 0.8", s.Score)
		}
	}
}

func TestTopKSmallGraph(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	e, _ := NewIndex(g, 0.6, 0, 50, 2)
	if top := e.TopK(0, 5, 50, 1); len(top) > 1 {
		t.Fatalf("TopK on 2-node graph returned %d results", len(top))
	}
}

func TestPairPanicsOnBadWalks(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	e, _ := NewIndex(g, 0.6, 0, 10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	e.Pair(0, 1, 0)
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := gen.PrefAttach(40, 3, 8)
	e1, _ := NewIndex(g, 0.6, 0, 500, 42)
	e2, _ := NewIndex(g, 0.6, 0, 500, 42)
	if e1.Pair(5, 7, 500) != e2.Pair(5, 7, 500) {
		t.Fatal("same seed must reproduce the estimate")
	}
}

// One Index queried from many goroutines must be race-free: queries are
// pure reads of the stored walks — no RNG, no lock, nothing shared but
// immutable data. Run under -race (CI does); before the stored-walk
// design this was a reliable data-race report on a shared rand source.
func TestIndexConcurrentQueries(t *testing.T) {
	g := lineGraphForRace()
	est, err := NewIndex(g, 0.6, 0, 20, 99)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a, b := (w+i)%g.N(), (w+2*i+1)%g.N()
				if s := est.Pair(a, b, 20); s < 0 || s > 1 {
					t.Errorf("Pair(%d,%d) = %v outside [0,1]", a, b, s)
				}
				if e, se := est.PairStderr(a, b, 20); math.IsNaN(e) || math.IsNaN(se) {
					t.Errorf("PairStderr(%d,%d) = %v ± %v", a, b, e, se)
				}
			}
		}(w)
	}
	wg.Wait()
}

// lineGraphForRace builds a small graph where walks actually move (every
// node except 0 has an in-neighbor).
func lineGraphForRace() *graph.DiGraph {
	g := graph.New(10)
	for v := 1; v < 10; v++ {
		g.AddEdge(v-1, v)
		g.AddEdge((v+4)%10, v)
	}
	return g
}

// Pure-read queries must stay deterministic across repeated sequential
// runs: same seed, same stored walks, same estimates.
func TestSequentialDeterminism(t *testing.T) {
	g := lineGraphForRace()
	run := func() []float64 {
		est, err := NewIndex(g, 0.6, 0, 50, 7)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, 20)
		for i := 0; i < 20; i++ {
			out = append(out, est.Pair(i%10, (i+3)%10, 50))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed sequential runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Zero or negative walk counts must fail loudly instead of dividing by
// zero into a silent NaN.
func TestNonPositiveWalksPanic(t *testing.T) {
	g := lineGraphForRace()
	est, err := NewIndex(g, 0.6, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"Pair":           func() { est.Pair(1, 2, 0) },
		"PairStderr":     func() { est.PairStderr(1, 2, 0) },
		"PairNeg":        func() { est.Pair(1, 2, -5) },
		"PairStderrDiag": func() { est.PairStderr(3, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with non-positive walks did not panic", name)
				}
			}()
			f()
		}()
	}
}

// --- incremental repair ---

// requireRowsEqual asserts two same-shape indexes store bit-identical
// walk positions — the repair ≡ rebuild invariant at its rawest.
func requireRowsEqual(t *testing.T, got, want *Index, label string) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("%s: n = %d vs %d", label, got.n, want.n)
	}
	for u := 0; u < want.n; u++ {
		gr, wr := got.rows[u], want.rows[u]
		if len(gr) != len(wr) {
			t.Fatalf("%s: node %d row length %d vs %d", label, u, len(gr), len(wr))
		}
		for i := range wr {
			if gr[i] != wr[i] {
				t.Fatalf("%s: node %d position %d: %d vs %d", label, u, i, gr[i], wr[i])
			}
		}
	}
}

// randomStream drives a mixed insert/delete stream through ix.Apply,
// mirroring the topology in g, and returns the number of effective
// updates.
func randomStream(t *testing.T, ix *Index, g *graph.DiGraph, rng *rand.Rand, steps int) int {
	t.Helper()
	applied := 0
	for s := 0; s < steps; s++ {
		n := g.N()
		from, to := rng.Intn(n), rng.Intn(n)
		up := graph.Update{Edge: graph.Edge{From: from, To: to}, Insert: !g.HasEdge(from, to)}
		g.Apply(up)
		if _, changed := ix.Apply(up); !changed {
			t.Fatalf("step %d: update %+v reported no change", s, up)
		}
		applied++
	}
	return applied
}

// The tentpole invariant: a stream of incremental repairs lands on the
// exact walk set a fresh rebuild at the same seed produces on the final
// graph — bit-identical positions, not just close estimates.
func TestRepairMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gen.PrefAttach(30, 3, 5)
	ix, err := NewIndex(g, 0.6, 8, 16, 77)
	if err != nil {
		t.Fatal(err)
	}
	randomStream(t, ix, g, rng, 120)
	fresh, err := NewIndex(g, 0.6, 8, 16, 77)
	if err != nil {
		t.Fatal(err)
	}
	requireRowsEqual(t, ix, fresh, "after 120 mixed updates")
	if repaired, steps := ix.RepairStats(); repaired == 0 || steps == 0 {
		t.Fatal("repairs ran but counters stayed zero")
	}
	if ix.Gen() != 120 {
		t.Fatalf("repair generation = %d, want 120", ix.Gen())
	}
}

// Inserting a present edge / deleting an absent one must be a no-op
// that reports changed=false and touches nothing.
func TestApplyNoopUpdates(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}})
	ix, _ := NewIndex(g, 0.6, 5, 8, 3)
	before := ix.Gen()
	if dirty, changed := ix.Apply(graph.Update{Edge: graph.Edge{From: 0, To: 1}, Insert: true}); changed || dirty != nil {
		t.Fatalf("duplicate insert: dirty=%v changed=%v", dirty, changed)
	}
	if dirty, changed := ix.Apply(graph.Update{Edge: graph.Edge{From: 2, To: 3}, Insert: false}); changed || dirty != nil {
		t.Fatalf("absent delete: dirty=%v changed=%v", dirty, changed)
	}
	if ix.Gen() != before {
		t.Fatal("no-op updates must not advance the repair generation")
	}
}

// Dirty rows must name exactly the owners of changed walks: sorted,
// unique, and consistent with a before/after row diff.
func TestApplyDirtyRowsMatchChangedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gen.PrefAttach(25, 3, 9)
	ix, _ := NewIndex(g, 0.6, 7, 12, 13)
	for s := 0; s < 40; s++ {
		n := g.N()
		from, to := rng.Intn(n), rng.Intn(n)
		up := graph.Update{Edge: graph.Edge{From: from, To: to}, Insert: !g.HasEdge(from, to)}
		before := ix.Clone()
		g.Apply(up)
		dirty, _ := ix.Apply(up)
		for i := 1; i < len(dirty); i++ {
			if dirty[i-1] >= dirty[i] {
				t.Fatalf("dirty rows not sorted/unique: %v", dirty)
			}
		}
		isDirty := make(map[int]bool, len(dirty))
		for _, u := range dirty {
			isDirty[u] = true
		}
		for u := 0; u < ix.n; u++ {
			changed := false
			for i, v := range ix.rows[u] {
				if before.rows[u][i] != v {
					changed = true
					break
				}
			}
			if changed != isDirty[u] {
				t.Fatalf("step %d node %d: row changed=%v but dirty=%v (dirty set %v)", s, u, changed, isDirty[u], dirty)
			}
		}
	}
}

// Hammering one high-traffic node must trigger postings compaction and
// keep the live/total accounting consistent with a from-scratch recount.
func TestPostingsCompaction(t *testing.T) {
	g := gen.PrefAttach(20, 4, 2)
	ix, _ := NewIndex(g, 0.6, 6, 10, 5)
	rng := rand.New(rand.NewSource(31))
	for s := 0; s < 400; s++ {
		from, to := rng.Intn(20), rng.Intn(20)
		up := graph.Update{Edge: graph.Edge{From: from, To: to}, Insert: !g.HasEdge(from, to)}
		g.Apply(up)
		ix.Apply(up)
		if ix.total > 2*ix.live+ix.n {
			t.Fatalf("step %d: compaction threshold violated (total=%d live=%d)", s, ix.total, ix.live)
		}
	}
	// live must equal the number of alive positions at steps 1..L-1.
	want := 0
	stride := ix.stride()
	for u := 0; u < ix.n; u++ {
		for w := 0; w < ix.walks; w++ {
			for st := 1; st < ix.walkLen; st++ {
				if ix.rows[u][w*stride+st] >= 0 {
					want++
				}
			}
		}
	}
	if ix.live != want {
		t.Fatalf("live = %d, recount = %d", ix.live, want)
	}
	fresh, _ := NewIndex(g, 0.6, 6, 10, 5)
	requireRowsEqual(t, ix, fresh, "after compaction-heavy stream")
}

// AddNodes must grow the index exactly as a fresh rebuild over the
// grown graph would, including when edges then arrive at the new ids.
func TestAddNodesMatchesRebuild(t *testing.T) {
	g := gen.PrefAttach(15, 3, 4)
	ix, _ := NewIndex(g, 0.6, 6, 8, 21)
	g.AddNodes(5)
	ix.AddNodes(5)
	for i := 0; i < 5; i++ {
		up := graph.Update{Edge: graph.Edge{From: i, To: 15 + i}, Insert: true}
		g.Apply(up)
		ix.Apply(up)
	}
	fresh, _ := NewIndex(g, 0.6, 6, 8, 21)
	requireRowsEqual(t, ix, fresh, "after AddNodes + edges to new ids")
}

// A sealed view must keep serving its frozen walk set while the writer
// repairs — per-node copy-on-write, verified by value.
func TestSealIsolatesRepairs(t *testing.T) {
	g := gen.PrefAttach(20, 3, 6)
	ix, _ := NewIndex(g, 0.6, 6, 16, 9)
	view := ix.Seal()
	if !view.Sealed() {
		t.Fatal("Seal must mark the view sealed")
	}
	frozen := make(map[int]float64)
	for a := 0; a < 20; a++ {
		frozen[a] = view.Pair(a, (a+7)%20, 16)
	}
	rng := rand.New(rand.NewSource(41))
	randomStream(t, ix, g, rng, 60)
	for a := 0; a < 20; a++ {
		if got := view.Pair(a, (a+7)%20, 16); got != frozen[a] {
			t.Fatalf("sealed view drifted at pair (%d,%d): %v vs %v", a, (a+7)%20, got, frozen[a])
		}
	}
	// And the writer still agrees with a fresh rebuild.
	fresh, _ := NewIndex(g, 0.6, 6, 16, 9)
	requireRowsEqual(t, ix, fresh, "writer after seal + stream")
}

// Reset (the Recompute path) must land on the same pure function of
// (graph, seed) that repairs reach.
func TestResetMatchesRepairs(t *testing.T) {
	g := gen.PrefAttach(18, 3, 3)
	ix, _ := NewIndex(g, 0.6, 6, 8, 33)
	other := ix.Clone()
	rng := rand.New(rand.NewSource(51))
	gg := g.Clone()
	randomStream(t, ix, gg, rng, 50)
	other.Reset(gg)
	requireRowsEqual(t, other, ix, "Reset vs repair stream")
}

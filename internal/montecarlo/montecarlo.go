// Package montecarlo implements the probabilistic SimRank estimators of
// the paper's related work (Section II-B): Fogaras and Rácz's P-SimRank
// [5,11] interprets s(a,b) as E[C^τ] where τ is the first meeting time of
// two coalescing reverse random walks; Li et al. [10] use the same walks
// for fast single-pair queries; Lee et al. [12] for approximate top-k.
//
// These estimators target the *iterative form* of SimRank (s(a,a) = 1).
// They trade exactness for locality: a single pair costs O(W·T) walk
// steps, independent of n², which is why the paper contrasts them with
// the deterministic algorithms it builds on.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
)

// lockedSource serializes draws from a shared rand.Source64, making one
// Estimator safe for concurrent queries (an approximate read tier fans
// Pair/TopK calls across request goroutines). Sequential callers see the
// exact same draw sequence as an unwrapped source; concurrent callers
// interleave draws, so their individual estimates are not reproducible —
// but they are races no more.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// Index is the reusable walk substrate: the per-node in-neighbor lists a
// reverse random walk samples from, pre-extracted once in O(n + m) and
// shared by every Estimator (and every clone of an approximate store
// tier) over the same graph snapshot. It is immutable after construction
// — safe for any number of concurrent estimators — and it is the only
// O(n + m) state the sampling tier holds, which is what lets the approx
// backend serve graphs whose n×n similarity matrix could never be
// materialized.
type Index struct {
	n int
	// ins[v] is the in-neighbor list of v, for O(1) uniform sampling.
	ins [][]int
}

// NewIndex extracts the walk index of g's current topology.
func NewIndex(g *graph.DiGraph) *Index {
	n := g.N()
	ins := make([][]int, n)
	for v := 0; v < n; v++ {
		ins[v] = g.InNeighbors(v)
	}
	return &Index{n: n, ins: ins}
}

// N returns the node count the index was built for.
func (ix *Index) N() int { return ix.n }

// MemBytes reports the index's approximate resident size: the adjacency
// payload plus slice headers — O(n + m), never O(n²).
func (ix *Index) MemBytes() int64 {
	b := int64(len(ix.ins)) * 24 // slice headers
	for _, row := range ix.ins {
		b += int64(len(row)) * 8
	}
	return b
}

// NewEstimator builds an estimator over the shared index. walkLen ≤ 0
// selects a default that bounds the truncation error below 10⁻³ for the
// given C. The index is shared, not copied — many estimators (different
// seeds, different walk budgets) can draw from one index concurrently.
func (ix *Index) NewEstimator(c float64, walkLen int, seed int64) (*Estimator, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("montecarlo: damping factor %v outside (0,1)", c)
	}
	if walkLen <= 0 {
		walkLen = int(math.Ceil(math.Log(1e-3)/math.Log(c))) + 1
	}
	return &Estimator{
		idx: ix, c: c,
		rng:     rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)}),
		walkLen: walkLen,
	}, nil
}

// Estimator draws coalescing reverse random walks over a fixed graph to
// estimate SimRank scores. All query methods are safe for concurrent
// use; the graph itself must not change underneath (build a new
// Estimator — or Index — after updates).
type Estimator struct {
	idx *Index
	c   float64
	rng *rand.Rand
	// walkLen caps the walk length (the contribution of a meeting at
	// step t is C^t, so truncation error ≤ C^{walkLen+1}).
	walkLen int
}

// New builds an estimator together with a private walk index; callers
// running several estimators over one graph should build the Index once
// and use Index.NewEstimator instead.
func New(g *graph.DiGraph, c float64, walkLen int, seed int64) (*Estimator, error) {
	return NewIndex(g).NewEstimator(c, walkLen, seed)
}

// Index returns the shared walk index the estimator draws from.
func (e *Estimator) Index() *Index { return e.idx }

// WalkLen returns the effective walk-length cap.
func (e *Estimator) WalkLen() int { return e.walkLen }

// meet simulates one pair of coalescing reverse walks from (a, b) and
// returns the first meeting step, or -1 if the walks never meet within
// the cap (including dying at a node with no in-neighbors).
func (e *Estimator) meet(a, b int) int {
	if a == b {
		return 0
	}
	x, y := a, b
	for t := 1; t <= e.walkLen; t++ {
		ix, iy := e.idx.ins[x], e.idx.ins[y]
		if len(ix) == 0 || len(iy) == 0 {
			return -1
		}
		x = ix[e.rng.Intn(len(ix))]
		y = iy[e.rng.Intn(len(iy))]
		if x == y {
			return t
		}
	}
	return -1
}

// Pair estimates s(a, b) from walks independent walk-pairs:
// ŝ = (1/W)·Σ C^{τ_w}, the P-SimRank estimator.
func (e *Estimator) Pair(a, b int, walks int) float64 {
	if walks <= 0 {
		panic("montecarlo: non-positive walk count")
	}
	if a == b {
		return 1
	}
	var sum float64
	for w := 0; w < walks; w++ {
		if t := e.meet(a, b); t >= 0 {
			sum += math.Pow(e.c, float64(t))
		}
	}
	return sum / float64(walks)
}

// PairStderr estimates s(a, b) together with the standard error of the
// estimate, for confidence-interval reporting. Like Pair it panics on a
// non-positive walk count — with zero walks the mean is 0/0, and
// returning NaN would poison every downstream comparison silently.
func (e *Estimator) PairStderr(a, b int, walks int) (est, stderr float64) {
	if walks <= 0 {
		panic("montecarlo: non-positive walk count")
	}
	if a == b {
		return 1, 0
	}
	var sum, sumSq float64
	for w := 0; w < walks; w++ {
		var v float64
		if t := e.meet(a, b); t >= 0 {
			v = math.Pow(e.c, float64(t))
		}
		sum += v
		sumSq += v * v
	}
	n := float64(walks)
	mean := sum / n
	varr := (sumSq - n*mean*mean) / math.Max(1, n-1)
	if varr < 0 {
		varr = 0
	}
	return mean, math.Sqrt(varr / n)
}

// SingleSource estimates s(a, v) for every v with the given walk budget
// per pair (the single-source query of [10]).
func (e *Estimator) SingleSource(a int, walks int) []float64 {
	out := make([]float64, e.idx.n)
	for v := 0; v < e.idx.n; v++ {
		out[v] = e.Pair(a, v, walks)
	}
	return out
}

// Scored is a node with its estimated similarity to a query node.
type Scored struct {
	Node  int
	Score float64
}

// TopK estimates the k nodes most similar to a (excluding a itself),
// in the style of [12]: a cheap first pass over all candidates followed
// by a refinement pass with refineFactor× more walks on the provisional
// top 2k.
func (e *Estimator) TopK(a, k, walks, refineFactor int) []Scored {
	if refineFactor < 1 {
		refineFactor = 1
	}
	n := e.idx.n
	cands := make([]Scored, 0, n-1)
	for v := 0; v < n; v++ {
		if v == a {
			continue
		}
		if s := e.Pair(a, v, walks); s > 0 {
			cands = append(cands, Scored{Node: v, Score: s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Node < cands[j].Node
	})
	short := 2 * k
	if short > len(cands) {
		short = len(cands)
	}
	refined := cands[:short]
	for i := range refined {
		refined[i].Score = e.Pair(a, refined[i].Node, walks*refineFactor)
	}
	sort.Slice(refined, func(i, j int) bool {
		if refined[i].Score != refined[j].Score {
			return refined[i].Score > refined[j].Score
		}
		return refined[i].Node < refined[j].Node
	})
	if k > len(refined) {
		k = len(refined)
	}
	return refined[:k]
}

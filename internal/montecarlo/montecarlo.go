// Package montecarlo implements the probabilistic SimRank estimators of
// the paper's related work (Section II-B): Fogaras and Rácz's P-SimRank
// [5,11] interprets s(a,b) as E[C^τ] where τ is the first meeting time of
// two coalescing reverse random walks; Li et al. [10] use the same walks
// for fast single-pair queries; Lee et al. [12] for approximate top-k.
//
// These estimators target the *iterative form* of SimRank (s(a,a) = 1).
// They trade exactness for locality: a single pair costs O(W·T) walk
// steps, independent of n², which is why the paper contrasts them with
// the deterministic algorithms it builds on.
//
// # Stored walks and incremental repair
//
// The Index stores W truncated reverse walks per node, in the
// fingerprint style of [5]: walk w of node u starts at u and each step t
// draws uniformly from the in-neighbors of the previous position. The
// draw at (u, w, t) comes from a derived seed — a pure hash of
// (seed, u, w, t) — rather than a shared RNG stream, which buys three
// properties at once:
//
//   - the entire walk set is a pure function of (graph, seed, W, L), so
//     a fresh rebuild at the same seed reproduces it bit-identically;
//   - queries are pure reads over the stored positions — no RNG, no
//     lock, no serialization of concurrent readers;
//   - an edge update at node j invalidates only the walk *suffixes*
//     that pass through j (the paper's affected-area idea applied to
//     the walk index): every other draw keys on unchanged (u, w, t)
//     and unchanged in-neighbor lists, so repairing exactly the
//     invalidated suffixes is bit-identical to rebuilding everything.
//
// Repair finds the affected walks in O(1) per occurrence through a
// per-node postings index: postings[v] lists the (walk, step) positions
// whose stored location is v. An update at j resamples, for each walk
// touching j at earliest step t, only the steps t+1..L — expected cost
// O(affected walks · remaining length) instead of the full O(n·W·L)
// rebuild. The expected affected fraction is the walk-visit probability
// of j, so low-degree nodes repair in microseconds while a full rebuild
// scales with the whole graph.
package montecarlo

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"

	"repro/internal/graph"
)

// maxWalkLen bounds the walk cap so a (walk, step) occurrence packs into
// one uint64 posting with 8 bits of step.
const maxWalkLen = 255

// stepBits is the width of the step field in a packed posting.
const stepBits = 8

// mix64 is the splitmix64 finalizer: a cheap invertible hash whose output
// bits pass statistical independence tests — the substrate of the derived
// per-step seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Index is the stored-walk substrate of the sampling tier: W reverse
// walks of length ≤ L per node, positioned by derived seeds, plus the
// per-node postings that make incremental repair affected-area-local.
// A writer mutates it through Apply/AddNodes/Reset; Seal publishes an
// immutable point-in-time view for concurrent readers (per-node walk
// rows are copy-on-write, so sealing is O(n) pointer copies).
type Index struct {
	n       int
	c       float64
	walkLen int // L: steps per walk beyond the start position
	walks   int // W: walks stored per node
	seed    int64

	// powc[t] = C^t, the meeting-contribution table.
	powc []float64

	// ins[v] is the in-neighbor list of v in ascending order — the
	// sampling population of a draw made *from* v. Writer-owned; nil on
	// sealed views (queries never sample, they read stored positions).
	ins [][]int32

	// rows[u] holds node u's W walks contiguously: walk w occupies
	// rows[u][w*(L+1) .. w*(L+1)+L], position -1 marking a dead walk
	// (it reached a node with no in-neighbors). rows[u][w*(L+1)] == u.
	rows [][]int32

	// shared is the copy-on-write ledger: shared[u] means rows[u] is
	// referenced by at least one sealed view, so a repair of u's walks
	// clones the row first. Nil until the first Seal.
	shared []bool
	sealed bool

	// postings[v] packs the (walk, step) occurrences at v for steps
	// 1..L-1 as walkID<<stepBits | step, walkID = u*W + w. Step-0
	// occurrences are implicit (the W walks owned by v) and step-L
	// occurrences are irrelevant (no further draw is made from them).
	// Entries go stale lazily — an entry is live iff the row still holds
	// v at that step — and the whole structure is compacted when
	// tombstones dominate. Writer-owned; nil on sealed views.
	postings [][]uint64
	// total and live track posting entries including and excluding
	// tombstones; total > 2·live + n triggers compaction.
	total, live int

	// gen counts repair events (persisted by snapshots as the
	// repair-generation counter); walksRepaired and stepsResampled are
	// the cumulative work counters behind /stats.
	gen            uint64
	walksRepaired  uint64
	stepsResampled uint64

	// workers bounds the goroutines one repair fans suffix resampling
	// across: 0 selects GOMAXPROCS, 1 forces the serial path. Every
	// resampled position is a pure function of (seed, node, walk, step),
	// so the repaired index is bit-identical at any setting.
	workers int
}

// NewIndex builds the stored-walk index of g's current topology: c is
// the damping factor in (0,1), walkLen the walk cap (≤ 0 selects a
// default bounding the truncation error below 10⁻³ for the given c;
// the cap must stay ≤ 255 so postings pack), walks the per-node walk
// count, seed the derived-seed root. Construction costs O(n·walks·len).
func NewIndex(g *graph.DiGraph, c float64, walkLen, walks int, seed int64) (*Index, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("montecarlo: damping factor %v outside (0,1)", c)
	}
	if walkLen <= 0 {
		walkLen = int(math.Ceil(math.Log(1e-3)/math.Log(c))) + 1
	}
	if walkLen > maxWalkLen {
		return nil, fmt.Errorf("montecarlo: walk length %d exceeds the %d-step posting limit", walkLen, maxWalkLen)
	}
	if walks <= 0 {
		return nil, fmt.Errorf("montecarlo: non-positive walk count %d", walks)
	}
	ix := &Index{c: c, walkLen: walkLen, walks: walks, seed: seed}
	ix.powc = make([]float64, walkLen+1)
	ix.powc[0] = 1
	for t := 1; t <= walkLen; t++ {
		ix.powc[t] = ix.powc[t-1] * c
	}
	ix.Reset(g)
	return ix, nil
}

// N returns the node count the index currently covers.
func (ix *Index) N() int { return ix.n }

// WalkLen returns the walk-length cap L (truncation error ≤ C^{L+1}).
func (ix *Index) WalkLen() int { return ix.walkLen }

// Walks returns W, the number of stored walks per node.
func (ix *Index) Walks() int { return ix.walks }

// Seed returns the derived-seed root the walks were positioned with.
func (ix *Index) Seed() int64 { return ix.seed }

// Gen returns the repair-generation counter: +1 per repaired update,
// reset only by an explicit Reset. Snapshots persist it.
func (ix *Index) Gen() uint64 { return ix.gen }

// SetGen overrides the repair-generation counter — the snapshot-restore
// hook that lets a rebuilt index resume the generation numbering of the
// serialized one (the walks themselves are a pure function of the graph
// and seed, so only the counter needs carrying).
func (ix *Index) SetGen(gen uint64) { ix.gen = gen }

// RepairStats returns the cumulative repair work: walks whose suffix was
// resampled and individual steps resampled.
func (ix *Index) RepairStats() (walksRepaired, stepsResampled uint64) {
	return ix.walksRepaired, ix.stepsResampled
}

// SetWorkers bounds the goroutines one repair fans suffix resampling
// across: 0 (the default) selects GOMAXPROCS, 1 forces the serial path.
// Single-writer path — call it only between Apply calls.
func (ix *Index) SetWorkers(workers int) {
	if workers < 0 {
		workers = 0
	}
	ix.workers = workers
}

// resolveWorkers maps the configured worker count to an effective
// fan-out width.
func (ix *Index) resolveWorkers() int {
	if ix.workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return ix.workers
}

// walkBase derives the per-walk seed base; stepDraw folds the step in.
// Chained splitmix64 finalizers keep draws statistically independent
// across (u, w, t) while staying pure — the whole point: position
// (u, w, t) resamples to the same value no matter when or why.
func (ix *Index) walkBase(u, w int) uint64 {
	x := mix64(uint64(ix.seed) ^ (uint64(u)+1)*0x9e3779b97f4a7c15)
	return mix64(x ^ (uint64(w)+1)*0xc2b2ae3d27d4eb4f)
}

func stepDraw(base uint64, t int) uint64 {
	return mix64(base + uint64(t)*0x165667b19e3779f9)
}

// stride is the per-walk row stride.
func (ix *Index) stride() int { return ix.walkLen + 1 }

// Reset rebuilds the whole index from g — the full-resample safety
// valve behind Recompute and the constructor. Fresh rows are allocated
// wholesale, so sealed views keep serving their frozen walks untouched.
// The repair-generation counter survives (a recompute is itself a
// generation), the work counters keep accumulating.
func (ix *Index) Reset(g *graph.DiGraph) {
	if ix.sealed {
		panic("montecarlo: Reset on a sealed index view")
	}
	n := g.N()
	ix.n = n
	ix.ins = make([][]int32, n)
	for v := 0; v < n; v++ {
		nbrs := g.InNeighbors(v)
		row := make([]int32, len(nbrs))
		for i, u := range nbrs {
			row[i] = int32(u)
		}
		ix.ins[v] = row
	}
	ix.rows = make([][]int32, n)
	ix.shared = nil
	ix.postings = make([][]uint64, n)
	ix.total, ix.live = 0, 0
	for u := 0; u < n; u++ {
		ix.rows[u] = ix.sampleNode(u)
	}
	for u := 0; u < n; u++ {
		ix.postNode(u)
	}
}

// sampleNode positions all W walks of node u from their derived seeds.
func (ix *Index) sampleNode(u int) []int32 {
	stride := ix.stride()
	row := make([]int32, ix.walks*stride)
	for w := 0; w < ix.walks; w++ {
		off := w * stride
		row[off] = int32(u)
		base := ix.walkBase(u, w)
		for t := 1; t <= ix.walkLen; t++ {
			row[off+t] = ix.step(row[off+t-1], base, t)
		}
	}
	return row
}

// step draws the next position from prev's in-neighbors (-1 propagates
// and marks death at a node with no in-links).
func (ix *Index) step(prev int32, base uint64, t int) int32 {
	if prev < 0 {
		return -1
	}
	nbrs := ix.ins[prev]
	if len(nbrs) == 0 {
		return -1
	}
	return nbrs[stepDraw(base, t)%uint64(len(nbrs))]
}

// postNode appends node u's live walk occurrences to the postings.
func (ix *Index) postNode(u int) {
	stride := ix.stride()
	row := ix.rows[u]
	for w := 0; w < ix.walks; w++ {
		wid := uint64(u)*uint64(ix.walks) + uint64(w)
		off := w * stride
		for t := 1; t < ix.walkLen; t++ {
			if v := row[off+t]; v >= 0 {
				ix.postings[v] = append(ix.postings[v], wid<<stepBits|uint64(t))
				ix.total++
				ix.live++
			}
		}
	}
}

// Apply mutates the in-neighbor list for one edge update and repairs
// exactly the invalidated walk suffixes. It returns the ascending list
// of nodes whose stored walks changed (the MVCC DirtyRows set) and
// whether the graph actually changed (false for an insert of a present
// edge or a delete of an absent one — then nothing was touched).
func (ix *Index) Apply(up graph.Update) (dirty []int, changed bool) {
	if ix.sealed {
		panic("montecarlo: Apply on a sealed index view")
	}
	j := up.Edge.To
	if j < 0 || j >= ix.n || up.Edge.From < 0 || up.Edge.From >= ix.n {
		return nil, false
	}
	from := int32(up.Edge.From)
	if up.Insert {
		next, ok := insertSorted(ix.ins[j], from)
		if !ok {
			return nil, false
		}
		ix.ins[j] = next
	} else {
		next, ok := removeSorted(ix.ins[j], from)
		if !ok {
			return nil, false
		}
		ix.ins[j] = next
	}
	return ix.repair(j), true
}

// repair resamples every walk suffix invalidated by a change to ins[j]:
// the W walks owned by j (their first draw samples ins[j]) plus every
// live postings[j] occurrence, deduplicated per walk to its earliest
// affected step. Suffixes are resampled in full — an early exit on a
// re-converged position would be unsound when the old suffix revisits j
// later — and each changed position updates the postings incrementally.
// Returns the ascending owners of changed walks.
func (ix *Index) repair(j int) []int {
	ix.gen++
	W, stride := ix.walks, ix.stride()

	// Earliest affected step per walk. Walk IDs are dense per owner, so
	// a (walkID → step) map stays small: |affected| entries.
	aff := make(map[uint64]int, W+len(ix.postings[j]))
	for w := 0; w < W; w++ {
		aff[uint64(j)*uint64(W)+uint64(w)] = 0
	}
	for _, p := range ix.postings[j] {
		wid, t := p>>stepBits, int(p&(1<<stepBits-1))
		u, w := int(wid/uint64(W)), int(wid%uint64(W))
		if ix.rows[u][w*stride+t] != int32(j) {
			continue // tombstone: the walk has since moved off j at this step
		}
		if prev, ok := aff[wid]; !ok || t < prev {
			aff[wid] = t
		}
	}

	// Flatten the map into a sorted work list (walkID<<stepBits | t0):
	// ascending walk IDs mean ascending owners, so the serial scan and
	// any contiguous partition of the list both emit dirty owners in
	// ascending order with consecutive-duplicate merging — no set needed.
	list := make([]uint64, 0, len(aff))
	//simrank:orderinvariant collects keys only; sorted before use
	for wid, t0 := range aff {
		list = append(list, wid<<stepBits|uint64(t0))
	}
	slices.Sort(list)
	ix.walksRepaired += uint64(len(list))

	var dirty []int
	if workers := ix.resolveWorkers(); workers > 1 && len(list) >= minParallelRepair {
		dirty = ix.repairParallel(list, workers)
	} else {
		for _, e := range list {
			wid, t0 := e>>stepBits, int(e&(1<<stepBits-1))
			u, w := int(wid/uint64(W)), int(wid%uint64(W))
			if ix.resampleSuffix(u, w, t0) {
				if len(dirty) == 0 || dirty[len(dirty)-1] != u {
					dirty = append(dirty, u)
				}
			}
		}
	}
	if ix.total > 2*ix.live+ix.n {
		ix.compact()
	}
	return dirty
}

// minParallelRepair is the smallest affected-walk count worth fanning
// out: below it goroutine startup dominates the resampling itself.
const minParallelRepair = 32

// postEvent is one deferred posting append: entry p belongs in
// postings[v].
type postEvent struct {
	v int32
	p uint64
}

// repairLog buffers one worker's side effects so the shared structures
// (postings, live/total, the work counters) are only touched serially
// after the barrier, in worker order — the walk rows themselves are
// written in place, each walk by exactly one worker.
type repairLog struct {
	posts       []postEvent
	dirty       []int
	live, total int
	steps       uint64
}

// repairParallel resamples the sorted affected-walk list across workers
// goroutines. Every resampled position is a pure function of
// (seed, node, walk, step) and each walk belongs to exactly one chunk,
// so the rows come out bit-identical to the serial scan; the buffered
// side effects merge in worker order, keeping postings content and
// counters deterministic too. Walk rows are claimed (copy-on-write)
// serially up front — the COW ledger must not race.
func (ix *Index) repairParallel(list []uint64, workers int) []int {
	W := ix.walks
	prev := -1
	for _, e := range list {
		if u := int(e >> stepBits / uint64(W)); u != prev {
			ix.ownRow(u)
			prev = u
		}
	}
	if workers > len(list) {
		workers = len(list)
	}
	logs := make([]repairLog, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo, hi := wk*len(list)/workers, (wk+1)*len(list)/workers
		wg.Add(1)
		go func(lg *repairLog, chunk []uint64) {
			defer wg.Done()
			for _, e := range chunk {
				wid, t0 := e>>stepBits, int(e&(1<<stepBits-1))
				u, w := int(wid/uint64(W)), int(wid%uint64(W))
				if ix.resampleLogged(u, w, t0, lg) {
					if len(lg.dirty) == 0 || lg.dirty[len(lg.dirty)-1] != u {
						lg.dirty = append(lg.dirty, u)
					}
				}
			}
		}(&logs[wk], list[lo:hi])
	}
	wg.Wait()
	var dirty []int
	for wk := range logs {
		lg := &logs[wk]
		ix.stepsResampled += lg.steps
		ix.live += lg.live
		ix.total += lg.total
		for _, pe := range lg.posts {
			ix.postings[pe.v] = append(ix.postings[pe.v], pe.p)
		}
		for _, u := range lg.dirty {
			if len(dirty) == 0 || dirty[len(dirty)-1] != u {
				dirty = append(dirty, u)
			}
		}
	}
	return dirty
}

// resampleLogged is resampleSuffix writing its side effects into a
// worker-private log instead of the shared index state: positions land
// in the (pre-claimed) walk row directly, posting appends and counter
// bumps are deferred to the serial merge.
func (ix *Index) resampleLogged(u, w, t0 int, lg *repairLog) (changedAny bool) {
	L, stride := ix.walkLen, ix.stride()
	row := ix.rows[u] // claimed by repairParallel's serial ownRow pass
	off := w * stride
	base := ix.walkBase(u, w)
	wid := uint64(u)*uint64(ix.walks) + uint64(w)
	for t := t0 + 1; t <= L; t++ {
		lg.steps++
		np := ix.step(row[off+t-1], base, t)
		op := row[off+t]
		if np == op {
			continue
		}
		changedAny = true
		if t < L {
			if op >= 0 {
				lg.live--
			}
			if np >= 0 {
				lg.posts = append(lg.posts, postEvent{np, wid<<stepBits | uint64(t)})
				lg.total++
				lg.live++
			}
		}
		row[off+t] = np
	}
	return changedAny
}

// resampleSuffix recomputes walk w of node u from step t0+1 onward with
// the walk's derived seeds and the current in-neighbor lists, reporting
// whether any position changed. Changed positions at steps 1..L-1 are
// re-posted; the displaced entries become lazy tombstones.
func (ix *Index) resampleSuffix(u, w, t0 int) (changedAny bool) {
	L, stride := ix.walkLen, ix.stride()
	ix.ownRow(u)
	row := ix.rows[u]
	off := w * stride
	base := ix.walkBase(u, w)
	wid := uint64(u)*uint64(ix.walks) + uint64(w)
	for t := t0 + 1; t <= L; t++ {
		ix.stepsResampled++
		np := ix.step(row[off+t-1], base, t)
		op := row[off+t]
		if np == op {
			continue
		}
		changedAny = true
		if t < L {
			if op >= 0 {
				ix.live-- // the stale posting at op is now a tombstone
			}
			if np >= 0 {
				ix.postings[np] = append(ix.postings[np], wid<<stepBits|uint64(t))
				ix.total++
				ix.live++
			}
		}
		row[off+t] = np
	}
	return changedAny
}

// compact rebuilds the postings from the rows, dropping every tombstone
// — O(n·W·L), amortized free since it runs only once tombstones exceed
// the live entries.
func (ix *Index) compact() {
	for v := range ix.postings {
		ix.postings[v] = ix.postings[v][:0]
	}
	ix.total, ix.live = 0, 0
	for u := 0; u < ix.n; u++ {
		ix.postNode(u)
	}
}

// ownRow makes rows[u] exclusively the writer's, cloning it if a sealed
// view still references it. Free (one nil check) on never-sealed
// indexes.
func (ix *Index) ownRow(u int) {
	if ix.shared == nil || u >= len(ix.shared) || !ix.shared[u] {
		return
	}
	ix.rows[u] = append([]int32(nil), ix.rows[u]...)
	ix.shared[u] = false
}

// AddNodes appends count isolated nodes: their walks start at home and
// die immediately (no in-neighbors), which is exactly what a fresh
// rebuild over the grown graph would sample — determinism holds across
// growth too.
func (ix *Index) AddNodes(count int) {
	if ix.sealed {
		panic("montecarlo: AddNodes on a sealed index view")
	}
	if count < 0 {
		panic(fmt.Sprintf("montecarlo: negative node count %d", count))
	}
	stride := ix.stride()
	for i := 0; i < count; i++ {
		u := ix.n + i
		row := make([]int32, ix.walks*stride)
		for w := 0; w < ix.walks; w++ {
			off := w * stride
			row[off] = int32(u)
			for t := 1; t <= ix.walkLen; t++ {
				row[off+t] = -1
			}
		}
		ix.rows = append(ix.rows, row)
		ix.ins = append(ix.ins, nil)
		ix.postings = append(ix.postings, nil)
		if ix.shared != nil {
			ix.shared = append(ix.shared, false)
		}
	}
	ix.n += count
}

// Seal returns an immutable point-in-time view of the walk set: O(n)
// pointer copies, no walk data copied. The writer's next repair of a
// node clones that node's row first (copy-on-write), so the view serves
// frozen walks forever. Sealed views carry only the query surface —
// in-neighbor lists and postings stay writer-private.
func (ix *Index) Seal() *Index {
	if ix.sealed {
		return ix
	}
	if len(ix.shared) != ix.n {
		ix.shared = make([]bool, ix.n)
	}
	for i := range ix.shared {
		ix.shared[i] = true
	}
	return &Index{
		n: ix.n, c: ix.c, walkLen: ix.walkLen, walks: ix.walks, seed: ix.seed,
		powc:   ix.powc,
		rows:   append([][]int32(nil), ix.rows...),
		sealed: true,
		gen:    ix.gen, walksRepaired: ix.walksRepaired, stepsResampled: ix.stepsResampled,
	}
}

// Sealed reports whether the receiver is an immutable Seal view.
func (ix *Index) Sealed() bool { return ix.sealed }

// Clone returns an independent deep copy the writer can mutate without
// affecting the receiver.
func (ix *Index) Clone() *Index {
	dup := &Index{
		n: ix.n, c: ix.c, walkLen: ix.walkLen, walks: ix.walks, seed: ix.seed,
		powc: ix.powc,
		gen:  ix.gen, walksRepaired: ix.walksRepaired, stepsResampled: ix.stepsResampled,
		total: ix.total, live: ix.live,
		workers: ix.workers,
	}
	dup.rows = make([][]int32, ix.n)
	for u, row := range ix.rows {
		dup.rows[u] = append([]int32(nil), row...)
	}
	if ix.sealed {
		// A clone of a sealed view is a full writable index again only if
		// the writer-side structures exist; sealed views have none, so the
		// clone stays a frozen query surface.
		dup.sealed = true
		return dup
	}
	dup.ins = make([][]int32, ix.n)
	for v, nbrs := range ix.ins {
		dup.ins[v] = append([]int32(nil), nbrs...)
	}
	dup.postings = make([][]uint64, ix.n)
	for v, ps := range ix.postings {
		dup.postings[v] = append([]uint64(nil), ps...)
	}
	return dup
}

// MemBytes reports the resident size: the stored walks plus (on the
// writer) the in-neighbor lists and postings — O(n·(W·L + d)) total,
// never O(n²). Sealed views count only the walk payload they serve.
func (ix *Index) MemBytes() int64 {
	b := int64(len(ix.rows)) * 24
	for _, row := range ix.rows {
		b += int64(len(row)) * 4
	}
	for _, nbrs := range ix.ins {
		b += 24 + int64(len(nbrs))*4
	}
	for _, ps := range ix.postings {
		b += 24 + int64(len(ps))*8
	}
	return b
}

// meetStep returns the first step at which walk w of a and walk w of b
// coalesce (both alive at the same node), or -1 within the cap.
func (ix *Index) meetStep(rowA, rowB []int32, off int) int {
	for t := 1; t <= ix.walkLen; t++ {
		x := rowA[off+t]
		if x >= 0 && x == rowB[off+t] {
			return t
		}
	}
	return -1
}

// clampWalks validates and caps a per-query walk budget at the stored W.
func (ix *Index) clampWalks(walks int) int {
	if walks <= 0 {
		panic("montecarlo: non-positive walk count")
	}
	if walks > ix.walks {
		return ix.walks
	}
	return walks
}

// Pair estimates s(a, b) from the first `walks` stored walk-pairs
// (capped at the index's W): ŝ = (1/W)·Σ C^{τ_w}, the P-SimRank
// estimator. A pure read — deterministic, lock-free, safe for any
// number of concurrent callers.
func (ix *Index) Pair(a, b int, walks int) float64 {
	walks = ix.clampWalks(walks)
	if a == b {
		return 1
	}
	rowA, rowB := ix.rows[a], ix.rows[b]
	stride := ix.stride()
	var sum float64
	for w := 0; w < walks; w++ {
		if t := ix.meetStep(rowA, rowB, w*stride); t >= 0 {
			sum += ix.powc[t]
		}
	}
	return sum / float64(walks)
}

// PairStderr estimates s(a, b) together with the standard error of the
// estimate, for confidence-interval reporting. Like Pair it panics on a
// non-positive walk count — with zero walks the mean is 0/0, and
// returning NaN would poison every downstream comparison silently.
func (ix *Index) PairStderr(a, b int, walks int) (est, stderr float64) {
	walks = ix.clampWalks(walks)
	if a == b {
		return 1, 0
	}
	rowA, rowB := ix.rows[a], ix.rows[b]
	stride := ix.stride()
	var sum, sumSq float64
	for w := 0; w < walks; w++ {
		var v float64
		if t := ix.meetStep(rowA, rowB, w*stride); t >= 0 {
			v = ix.powc[t]
		}
		sum += v
		sumSq += v * v
	}
	n := float64(walks)
	mean := sum / n
	varr := (sumSq - n*mean*mean) / math.Max(1, n-1)
	if varr < 0 {
		varr = 0
	}
	return mean, math.Sqrt(varr / n)
}

// SingleSource estimates s(a, v) for every v with the given walk budget
// per pair (the single-source query of [10]).
func (ix *Index) SingleSource(a int, walks int) []float64 {
	out := make([]float64, ix.n)
	for v := 0; v < ix.n; v++ {
		out[v] = ix.Pair(a, v, walks)
	}
	return out
}

// Scored is a node with its estimated similarity to a query node.
type Scored struct {
	Node  int
	Score float64
}

// TopK estimates the k nodes most similar to a (excluding a itself),
// in the style of [12]: a cheap first pass over all candidates followed
// by a refinement pass with refineFactor× more walks on the provisional
// top 2k. Both passes read the same stored walks, so the answer is
// deterministic.
func (ix *Index) TopK(a, k, walks, refineFactor int) []Scored {
	if refineFactor < 1 {
		refineFactor = 1
	}
	n := ix.n
	cands := make([]Scored, 0, n-1)
	for v := 0; v < n; v++ {
		if v == a {
			continue
		}
		if s := ix.Pair(a, v, walks); s > 0 {
			cands = append(cands, Scored{Node: v, Score: s})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Node < cands[j].Node
	})
	short := 2 * k
	if short > len(cands) {
		short = len(cands)
	}
	refined := cands[:short]
	for i := range refined {
		refined[i].Score = ix.Pair(a, refined[i].Node, walks*refineFactor)
	}
	sort.Slice(refined, func(i, j int) bool {
		if refined[i].Score != refined[j].Score {
			return refined[i].Score > refined[j].Score
		}
		return refined[i].Node < refined[j].Node
	})
	if k > len(refined) {
		k = len(refined)
	}
	return refined[:k]
}

// insertSorted adds v to an ascending slice, reporting false if present.
func insertSorted(s []int32, v int32) ([]int32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// removeSorted deletes v from an ascending slice, reporting false if
// absent.
func removeSorted(s []int32, v int32) ([]int32, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s, false
	}
	return append(s[:i], s[i+1:]...), true
}

package lin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func randDense(rng *rand.Rand, r, c int) *matrix.Dense {
	m := matrix.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// orthonormalCols reports whether MᵀM ≈ I within tol.
func orthonormalCols(m *matrix.Dense, tol float64) bool {
	g := matrix.Mul(m.T(), m)
	return matrix.MaxAbsDiff(g, matrix.Identity(m.Cols)) <= tol
}

func TestSVDExample2(t *testing.T) {
	// The paper's Example 2: Q = [0 1; 0 0] has lossless SVD with
	// U = [1;0], Σ = [1], V = [0;1], and U·Uᵀ ≠ I₂ while Uᵀ·U = I₁.
	q := matrix.NewDenseFrom([][]float64{{0, 1}, {0, 0}})
	d := ComputeSVD(q, 1e-12)
	if d.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", d.Rank())
	}
	if math.Abs(d.S[0]-1) > 1e-12 {
		t.Fatalf("σ = %v, want 1", d.S[0])
	}
	if matrix.MaxAbsDiff(d.Reconstruct(), q) > 1e-12 {
		t.Fatal("reconstruction mismatch")
	}
	// UᵀU = I_ρ must hold; U·Uᵀ must NOT be I_n (the crux of Section IV).
	if !orthonormalCols(d.U, 1e-12) || !orthonormalCols(d.V, 1e-12) {
		t.Fatal("columns not orthonormal")
	}
	uut := matrix.Mul(d.U, d.U.T())
	if matrix.MaxAbsDiff(uut, matrix.Identity(2)) < 0.5 {
		t.Fatal("U·Uᵀ should differ from I when rank < n")
	}
}

func TestSVDReconstructRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		m := 2 + rng.Intn(12)
		x := randDense(rng, n, m)
		d := ComputeSVD(x, 1e-12)
		if matrix.MaxAbsDiff(d.Reconstruct(), x) > 1e-9 {
			t.Fatalf("trial %d: reconstruction error %g", trial, matrix.MaxAbsDiff(d.Reconstruct(), x))
		}
		if !orthonormalCols(d.U, 1e-9) || !orthonormalCols(d.V, 1e-9) {
			t.Fatalf("trial %d: not orthonormal", trial)
		}
		for k := 1; k < len(d.S); k++ {
			if d.S[k] > d.S[k-1]+1e-12 {
				t.Fatalf("singular values not descending: %v", d.S)
			}
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-2 4×4 matrix built from two outer products.
	x := matrix.Outer([]float64{1, 2, 3, 4}, []float64{1, 0, 1, 0})
	x.AddMat(1, matrix.Outer([]float64{0, 1, 0, 1}, []float64{2, 1, 0, 0}))
	d := ComputeSVD(x, 1e-9)
	if d.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", d.Rank())
	}
	if matrix.MaxAbsDiff(d.Reconstruct(), x) > 1e-9 {
		t.Fatal("rank-deficient reconstruction mismatch")
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	d := ComputeSVD(matrix.NewDense(3, 3), 1e-12)
	if d.Rank() != 0 {
		t.Fatalf("zero matrix rank = %d", d.Rank())
	}
}

func TestSVDTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randDense(rng, 6, 6)
	d := ComputeSVD(x, 1e-12)
	tr := d.Truncate(2)
	if tr.Rank() != 2 {
		t.Fatalf("truncated rank = %d", tr.Rank())
	}
	// Truncation keeps the largest singular values.
	if tr.S[0] != d.S[0] || tr.S[1] != d.S[1] {
		t.Fatal("truncate kept wrong values")
	}
	// Eckart–Young sanity: error norm equals next singular value (spectral),
	// so Frobenius error must be at least σ₃ and reconstruction differs.
	err := matrix.MaxAbsDiff(tr.Reconstruct(), x)
	if err == 0 && d.Rank() > 2 {
		t.Fatal("truncation should lose information")
	}
	if got := d.Truncate(99).Rank(); got != d.Rank() {
		t.Fatalf("over-truncate rank = %d", got)
	}
}

func TestNumericRank(t *testing.T) {
	id := matrix.Identity(5)
	if r := NumericRank(id, 1e-10); r != 5 {
		t.Fatalf("rank(I₅) = %d", r)
	}
	r2 := matrix.Outer([]float64{1, 1, 1}, []float64{1, 2, 3})
	if r := NumericRank(r2, 1e-10); r != 1 {
		t.Fatalf("rank(outer) = %d", r)
	}
	if r := NumericRank(matrix.NewDense(4, 4), 1e-10); r != 0 {
		t.Fatalf("rank(0) = %d", r)
	}
}

func TestSolveKnown(t *testing.T) {
	a := matrix.NewDenseFrom([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a.Clone(), []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := matrix.NewDenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("want singular error")
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	if _, err := Solve(matrix.NewDense(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := matrix.NewDenseFrom([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v", x)
	}
}

// Property: Solve then multiply back recovers b.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randDense(rng, n, n)
		// Diagonal boost keeps the system well-conditioned.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a.Clone(), b)
		if err != nil {
			return false
		}
		back := a.MulVec(x)
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SVD of random matrices reconstructs within tolerance and U, V
// have orthonormal columns.
func TestQuickSVDProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(9), 1+rng.Intn(9)
		x := randDense(rng, n, m)
		d := ComputeSVD(x, 1e-12)
		if matrix.MaxAbsDiff(d.Reconstruct(), x) > 1e-8 {
			return false
		}
		return orthonormalCols(d.U, 1e-8) && orthonormalCols(d.V, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

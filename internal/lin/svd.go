// Package lin provides the dense linear-algebra routines required by the
// Inc-SVD baseline of Li et al. [1]: a one-sided Jacobi singular value
// decomposition, a Gaussian-elimination linear solver (for the small
// Kronecker system in the SimRank reconstruction), and numeric rank
// estimation (Fig. 2b reports the lossless SVD rank of the auxiliary
// matrix C_aux).
package lin

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// SVD holds a (possibly truncated) singular value decomposition
// X ≈ U·diag(S)·Vᵀ with column-orthonormal U (n×r) and V (m×r) and
// non-negative singular values S sorted in descending order.
type SVD struct {
	U *matrix.Dense // n×r
	S []float64     // r singular values, descending
	V *matrix.Dense // m×r
}

// Rank returns the number of retained singular values.
func (d *SVD) Rank() int { return len(d.S) }

// Reconstruct returns U·diag(S)·Vᵀ.
func (d *SVD) Reconstruct() *matrix.Dense {
	n, m, r := d.U.Rows, d.V.Rows, len(d.S)
	out := matrix.NewDense(n, m)
	for k := 0; k < r; k++ {
		uk := d.U.Col(k)
		vk := d.V.Col(k)
		matrix.AddOuter(out, d.S[k], uk, vk)
	}
	return out
}

// Truncate returns a copy of d keeping only the top r singular triplets
// (the low-rank SVD of footnote 6). r larger than Rank() is clamped.
func (d *SVD) Truncate(r int) *SVD {
	if r >= d.Rank() {
		r = d.Rank()
	}
	if r < 0 {
		r = 0
	}
	u := matrix.NewDense(d.U.Rows, r)
	v := matrix.NewDense(d.V.Rows, r)
	for i := 0; i < d.U.Rows; i++ {
		copy(u.Row(i), d.U.Row(i)[:r])
	}
	for i := 0; i < d.V.Rows; i++ {
		copy(v.Row(i), d.V.Row(i)[:r])
	}
	s := make([]float64, r)
	copy(s, d.S[:r])
	return &SVD{U: u, S: s, V: v}
}

// jacobiSweeps bounds the number of one-sided Jacobi sweeps; convergence is
// typically reached in far fewer for the modest sizes used here.
const jacobiSweeps = 60

// ComputeSVD computes the SVD of a (square or rectangular, n ≥ 1) dense
// matrix via the one-sided Jacobi method: it orthogonalizes the columns of
// a working copy A by Givens rotations accumulated into V, after which the
// column norms are the singular values and the normalized columns form U.
// Columns with norm below dropTol are dropped (rank truncation), so the
// result is the "lossless" SVD in the paper's sense when dropTol is the
// numeric-rank tolerance.
func ComputeSVD(x *matrix.Dense, dropTol float64) *SVD {
	n, m := x.Rows, x.Cols
	if n == 0 || m == 0 {
		return &SVD{U: matrix.NewDense(n, 0), V: matrix.NewDense(m, 0)}
	}
	// Work on Aᵀ-free column-major copies for cache-friendly column ops.
	cols := make([][]float64, m)
	for j := 0; j < m; j++ {
		cols[j] = x.Col(j)
	}
	v := make([][]float64, m) // V accumulated as columns
	for j := 0; j < m; j++ {
		v[j] = make([]float64, m)
		v[j][j] = 1
	}
	eps := 1e-14
	for sweep := 0; sweep < jacobiSweeps; sweep++ {
		off := 0.0
		for p := 0; p < m-1; p++ {
			for q := p + 1; q < m; q++ {
				alpha := matrix.Dot(cols[p], cols[p])
				beta := matrix.Dot(cols[q], cols[q])
				gamma := matrix.Dot(cols[p], cols[q])
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta)+1e-300 {
					continue
				}
				off += math.Abs(gamma)
				// Compute the rotation annihilating the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotate(cols[p], cols[q], c, s)
				rotate(v[p], v[q], c, s)
			}
		}
		if off < 1e-15 {
			break
		}
	}
	// Extract singular values and left vectors.
	type trip struct {
		sv  float64
		idx int
	}
	trips := make([]trip, m)
	for j := 0; j < m; j++ {
		trips[j] = trip{matrix.Norm2(cols[j]), j}
	}
	sort.Slice(trips, func(a, b int) bool { return trips[a].sv > trips[b].sv })
	var kept []trip
	for _, tr := range trips {
		if tr.sv > dropTol {
			kept = append(kept, tr)
		}
	}
	r := len(kept)
	u := matrix.NewDense(n, r)
	vv := matrix.NewDense(m, r)
	s := make([]float64, r)
	for k, tr := range kept {
		s[k] = tr.sv
		cj := cols[tr.idx]
		inv := 1 / tr.sv
		for i := 0; i < n; i++ {
			u.Set(i, k, cj[i]*inv)
		}
		vj := v[tr.idx]
		for i := 0; i < m; i++ {
			vv.Set(i, k, vj[i])
		}
	}
	return &SVD{U: u, S: s, V: vv}
}

// rotate applies the Givens rotation [c s; -s c] to the column pair (a, b)
// in place: a' = c·a − s·b, b' = s·a + c·b.
func rotate(a, b []float64, c, s float64) {
	for i := range a {
		ai, bi := a[i], b[i]
		a[i] = c*ai - s*bi
		b[i] = s*ai + c*bi
	}
}

// NumericRank returns the number of singular values of x above tol·σ_max
// (with an absolute floor of tol for the all-tiny case). This is the
// "lossless SVD rank" reported on the y-axis of Fig. 2b.
func NumericRank(x *matrix.Dense, tol float64) int {
	d := ComputeSVD(x, 0)
	if len(d.S) == 0 {
		return 0
	}
	thresh := tol * d.S[0]
	if thresh < tol {
		thresh = tol
	}
	r := 0
	for _, s := range d.S {
		if s > thresh {
			r++
		}
	}
	return r
}

// Solve solves the linear system A·x = b by Gaussian elimination with
// partial pivoting. A is destroyed. Returns an error on (near-)singular A.
func Solve(a *matrix.Dense, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("lin: Solve wants square system, got %d×%d with b of %d", a.Rows, a.Cols, len(b))
	}
	x := matrix.CloneVec(b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				piv, best = r, v
			}
		}
		if best < 1e-13 {
			return nil, fmt.Errorf("lin: singular system at column %d (pivot %g)", col, best)
		}
		if piv != col {
			pr, cr := a.Row(piv), a.Row(col)
			for k := col; k < n; k++ {
				pr[k], cr[k] = cr[k], pr[k]
			}
			x[piv], x[col] = x[col], x[piv]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := a.Row(r), a.Row(col)
			for k := col; k < n; k++ {
				rr[k] -= f * cr[k]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		row := a.Row(col)
		for k := col + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[col] = s / row[col]
	}
	return x, nil
}
